/**
 * @file
 * GL command recording, serialization and replay - the reproduction of
 * the paper's `gldebug`-based trace capability (section 4.1, second
 * component).
 *
 * A GlRecorder implements GlApi by appending commands to a stream
 * (optionally forwarding to a live context, as the paper's parser ran
 * alongside the application). Streams serialize to a binary .gltrc
 * file and replay against any GlApi implementation, so a captured
 * frame can be re-rendered under different pipeline configurations
 * without the generating application.
 *
 * File format (little-endian):
 *   [0..7]  magic "GLTRC001"
 *   [8..15] uint64 command count
 *   then per command: 1-byte opcode + op-specific payload; texImage2D
 *   carries the raw RGBA8 base image.
 */

#ifndef TEXCACHE_GL_COMMAND_STREAM_HH
#define TEXCACHE_GL_COMMAND_STREAM_HH

#include <string>
#include <vector>

#include "gl/gl_api.hh"
#include "pipeline/scene_types.hh"

namespace texcache {

/** Opcode of one recorded GL call. */
enum class GlOp : uint8_t
{
    Viewport = 1,
    LoadProjection,
    LoadModelView,
    GenTexture,
    BindTexture,
    TexImage2D,
    Begin,
    TexCoord,
    Shade,
    Vertex,
    End,
};

/** One recorded call (a fat struct; streams are triangle-scale). */
struct GlCommand
{
    GlOp op;
    uint32_t u32a = 0; ///< viewport w / texture name / primitive
    uint32_t u32b = 0; ///< viewport h
    float f0 = 0.0f;   ///< vertex x / texcoord u / shade
    float f1 = 0.0f;   ///< vertex y / texcoord v
    float f2 = 0.0f;   ///< vertex z
    Mat4 matrix;       ///< for Load* ops
    Image image;       ///< for TexImage2D
};

/** A recorded sequence of GL calls. */
using GlCommandStream = std::vector<GlCommand>;

/** Records GlApi calls, optionally forwarding to a live sink. */
class GlRecorder : public GlApi
{
  public:
    /** @param forward_to live context to also execute against (may be
     *         nullptr for record-only operation). */
    explicit GlRecorder(GlApi *forward_to = nullptr)
        : forward_(forward_to)
    {}

    void viewport(unsigned width, unsigned height) override;
    void loadProjection(const Mat4 &m) override;
    void loadModelView(const Mat4 &m) override;
    GlTexture genTexture() override;
    void bindTexture(GlTexture tex) override;
    void texImage2D(const Image &base) override;
    void begin(GlPrimitive prim) override;
    void texCoord(float u, float v) override;
    void shade(float s) override;
    void vertex(float x, float y, float z) override;
    void end() override;

    const GlCommandStream &stream() const { return stream_; }
    GlCommandStream takeStream() { return std::move(stream_); }

  private:
    GlApi *forward_;
    GlCommandStream stream_;
    GlTexture nextName_ = 1;
};

/**
 * Replay a command stream against @p target. Texture names recorded
 * in the stream are remapped to the names the target hands out, so
 * replay composes with prior activity on the target.
 */
void playCommands(const GlCommandStream &stream, GlApi &target);

/** Serialize a stream to @p path; fatal()s on I/O failure. */
void writeGlTrace(const GlCommandStream &stream,
                  const std::string &path);

/** Read a stream written by writeGlTrace; fatal()s on corruption. */
GlCommandStream readGlTrace(const std::string &path);

/**
 * Issue an assembled Scene through the GlApi (viewport, matrices,
 * textures, then triangles batched into GL_TRIANGLES runs by
 * texture). Replaying the result through a GlContext reconstructs a
 * scene that renders the identical texel trace.
 */
void emitScene(const Scene &scene, GlApi &api);

} // namespace texcache

#endif // TEXCACHE_GL_COMMAND_STREAM_HH
