/**
 * @file
 * Reproduces Figure 5.6: the effect of the blocked representation on
 * miss rates across cache sizes (Guitar scene, fully associative).
 *
 * Series are (line size, block dims) pairs. The paper's finding: for
 * caches *smaller* than the working set, a blocked representation with
 * large matched lines cuts capacity misses dramatically, whereas the
 * nonblocked representation with a large line is worse than with a
 * small line.
 *
 * Each series is one single-pass FA capacity sweep; the six series run
 * in parallel.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    struct Series
    {
        const char *label;
        unsigned line;
        LayoutParams params;
    };
    std::vector<Series> series;
    {
        LayoutParams nb;
        nb.kind = LayoutKind::Nonblocked;
        series.push_back({"32B nonblocked", 32, nb});
        series.push_back({"128B nonblocked", 128, nb});
        series.push_back({"32B 4x2 blocked", 32, blockedForLine(32)});
        series.push_back({"64B 4x4 blocked", 64, blockedForLine(64)});
        series.push_back({"128B 8x4 blocked", 128,
                          blockedForLine(128)});
        series.push_back({"256B 8x8 blocked", 256,
                          blockedForLine(256)});
    }

    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 128 << 10);

    const TexelTrace &trace =
        store().trace(BenchScene::Guitar, sceneOrder(BenchScene::Guitar));

    struct Point
    {
        const Series *series;
        std::shared_ptr<SceneLayout> layout;
    };
    std::vector<Point> points;
    for (const Series &ser : series)
        points.push_back({&ser,
                          std::make_shared<SceneLayout>(
                              store().scene(BenchScene::Guitar),
                              ser.params)});

    auto results = Sweep::run(points, [&](const Point &p) {
        std::vector<double> rates;
        for (const CacheStats &s :
             runFaSweep(trace, *p.layout, p.series->line, sizes))
            rates.push_back(s.missRate());
        return rates;
    });

    TextTable table("Figure 5.6: Guitar-horizontal, FA, miss rate vs "
                    "cache size per (line, block)");
    std::vector<std::string> header = {"Series"};
    for (uint64_t s : sizes)
        header.push_back(fmtBytes(s));
    table.header(header);

    for (size_t i = 0; i < series.size(); ++i) {
        std::vector<std::string> row = {series[i].label};
        for (double r : results[i].value)
            row.push_back(fmtPercent(r));
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: blocking + large lines reduces "
                 "capacity misses below the working-set size; large "
                 "lines without blocking increase them.\n";

    dumpStats("fig_5_6", [&](RunManifest &m, stats::Group &root) {
        m.setScene("Guitar");
        m.config("assoc", "full");
        m.config("sizes", std::to_string(sizes.front()) + ".." +
                              std::to_string(sizes.back()));
        exportPointTimes(*root.findGroup("sweep"), results);
        double sum = 0.0;
        size_t k = 0;
        for (size_t i = 0; i < series.size(); ++i) {
            // Series labels carry spaces; legal stat names, and the
            // JSON keys read exactly like the printed table rows.
            stats::Group &sg = root.group(series[i].label);
            for (size_t j = 0; j < sizes.size(); ++j) {
                double r = results[i].value[j];
                sg.real(fmtBytes(sizes[j]), r, "miss rate");
                sum += r;
                ++k;
            }
        }
        m.metric("mean_miss_rate", sum / static_cast<double>(k),
                 "exact");
    });
    return 0;
}
