/**
 * @file
 * Rasterizer data types: screen-space vertices, fragments and the
 * traversal-order configuration (paper section 6).
 */

#ifndef TEXCACHE_RASTER_RASTER_TYPES_HH
#define TEXCACHE_RASTER_RASTER_TYPES_HH

#include <cstdint>
#include <string>

namespace texcache {

/**
 * A vertex after projection and viewport transform, carrying the
 * perspective-correct interpolants (attribute / w and 1 / w).
 */
struct ScreenVertex
{
    float x = 0.0f;      ///< window x (pixel centers at integer + 0.5)
    float y = 0.0f;      ///< window y
    float z = 0.0f;      ///< depth in [0, 1]
    float invW = 1.0f;   ///< 1 / clip-space w
    float uOverW = 0.0f; ///< texture u / w
    float vOverW = 0.0f; ///< texture v / w
    float shade = 1.0f;  ///< scalar shading intensity (flat-ish lighting)
};

/** One covered pixel with perspective-correct attributes. */
struct Fragment
{
    int x = 0;
    int y = 0;
    float depth = 0.0f;
    float u = 0.0f; ///< normalized texture coordinate
    float v = 0.0f;
    float dudx = 0.0f; ///< screen-space derivatives of (u, v)
    float dvdx = 0.0f;
    float dudy = 0.0f;
    float dvdy = 0.0f;
    float shade = 1.0f;
};

/** Scan direction of the rasterizer (paper section 5.2.3). */
enum class ScanDirection : uint8_t
{
    Horizontal, ///< row-major: x varies fastest
    Vertical,   ///< column-major: y varies fastest
};

/** Pixel traversal order: direction plus optional screen tiling.
 *
 *  The Peano-Hilbert order (an extension; paper footnote 1) traverses
 *  pixels along the Hilbert curve over the screen, the path the paper
 *  identifies as working-set optimal. It supersedes dir/tiling when
 *  set.
 */
struct RasterOrder
{
    ScanDirection dir = ScanDirection::Horizontal;
    bool tiled = false;
    unsigned tileW = 8; ///< tile width in pixels (power of two)
    unsigned tileH = 8;
    bool hilbert = false;

    static RasterOrder
    horizontal()
    {
        return {ScanDirection::Horizontal, false, 0, 0};
    }

    static RasterOrder
    vertical()
    {
        return {ScanDirection::Vertical, false, 0, 0};
    }

    static RasterOrder
    tiledOrder(unsigned tw, unsigned th,
               ScanDirection d = ScanDirection::Horizontal)
    {
        return {d, true, tw, th, false};
    }

    static RasterOrder
    hilbertOrder()
    {
        RasterOrder o;
        o.hilbert = true;
        return o;
    }

    /** Display string like "horizontal" or "tiled-8x8-vertical". */
    std::string str() const;
};

} // namespace texcache

#endif // TEXCACHE_RASTER_RASTER_TYPES_HH
