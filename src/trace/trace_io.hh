/**
 * @file
 * Binary texel-trace files.
 *
 * The paper's methodology separates trace capture (running the graphics
 * pipeline) from trace consumption (the cache simulator). Persisting
 * traces makes that split usable offline: render once, then sweep cache
 * organizations without re-rendering - or exchange traces between
 * machines.
 *
 * Format (little-endian):
 *   [0..7]   magic "TEXTRC01"
 *   [8..15]  uint64 record count
 *   [16..]   packed 64-bit TexelRecords (texel_trace.hh layout)
 */

#ifndef TEXCACHE_TRACE_TRACE_IO_HH
#define TEXCACHE_TRACE_TRACE_IO_HH

#include <string>

#include "trace/texel_trace.hh"

namespace texcache {

/** Write @p trace to @p path; fatal()s on I/O failure. */
void writeTrace(const TexelTrace &trace, const std::string &path);

/**
 * Read a trace file written by writeTrace.
 *
 * fatal()s on missing file, bad magic, or truncated payload, so a
 * corrupt trace can never silently yield wrong cache statistics.
 */
TexelTrace readTrace(const std::string &path);

} // namespace texcache

#endif // TEXCACHE_TRACE_TRACE_IO_HH
