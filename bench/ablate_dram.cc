/**
 * @file
 * Ablation for the paper's section-3.2 DRAM argument: cache-line block
 * transfers amortize DRAM setup costs, so larger lines extract a
 * larger fraction of the memory's peak bandwidth.
 *
 * For each line size (with its matched block), the 32 KB 2-way cache's
 * miss stream feeds the open-row DRAM model. Reported per scene and
 * line: miss rate, DRAM row-hit rate, bus utilization, and the
 * *effective* memory-system demand in bus cycles per fragment - the
 * figure of merit that decides whether the 50 Mfragment/s machine is
 * sustainable.
 */

#include "bench/bench_util.hh"
#include "timing/dram_model.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    const unsigned lines[] = {32, 64, 128, 256};

    TextTable table("Section 3.2: line size vs DRAM efficiency, 32KB "
                    "2-way, blocked+padded, tiled 8x8");
    table.header({"Scene", "Line", "MissRate", "RowHitRate",
                  "BusUtilization", "BusCycles/frag"});

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, /*tiled=*/true, 8));
        for (unsigned line : lines) {
            LayoutParams params =
                blockedForLine(line, LayoutKind::PaddedBlocked);
            SceneLayout layout(store().scene(s), params);

            CacheSim cache({32 * 1024, line, 2});
            DramModel dram(DramConfig{});
            layout.forEachAddress(out.trace, [&](Addr a) {
                if (!cache.access(a))
                    dram.fill(a & ~static_cast<Addr>(line - 1), line);
            });

            double cycles_per_frag =
                static_cast<double>(dram.stats().cycles) /
                static_cast<double>(out.stats.fragments);
            table.row({benchSceneName(s), fmtBytes(line),
                       fmtPercent(cache.stats().missRate()),
                       fmtPercent(dram.stats().rowHitRate(), 0),
                       fmtPercent(dram.stats().busUtilization(
                                      DramConfig{}.busBytes),
                                  0),
                       fmtFixed(cycles_per_frag, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpectation: bus utilization rises with line size "
                 "(burst amortization); the best bus-cycles-per-"
                 "fragment sits at a mid-to-large line even when raw "
                 "fetched bytes grow.\n";
    return 0;
}
