/**
 * @file
 * Experiment harness: scene/trace caching and the simulation runners
 * behind every figure and table reproduction.
 *
 * Rendering the benchmark scenes is the expensive step, so a TraceStore
 * memoizes (scene, rasterization order) -> RenderOutput within one
 * process. The runner functions replay a trace through a SceneLayout
 * into cache models and return the statistics the paper plots.
 */

#ifndef TEXCACHE_CORE_EXPERIMENT_HH
#define TEXCACHE_CORE_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "cache/cache_sim.hh"
#include "cache/multi_sim.hh"
#include "cache/stack_dist.hh"
#include "cache/three_c.hh"
#include "core/scene_layout.hh"
#include "core/sweep.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

namespace texcache {

/**
 * Memoizes built scenes and rendered traces for one process.
 *
 * When TEXCACHE_TRACE_CACHE_DIR is set, rendered texel traces are
 * additionally persisted there (via trace_io) keyed by scene, raster
 * order and a build stamp, so repeated bench invocations from the
 * same build skip the expensive re-render. Consumers that need only
 * the trace should call trace(), which serves disk hits without
 * rendering; output() always renders (and still populates the disk
 * cache) because the framebuffer and pipeline statistics cannot be
 * reconstructed from a trace file.
 */
class TraceStore
{
  public:
    /** The (memoized) scene object. */
    const Scene &scene(BenchScene s);

    /** The (memoized) render output for a scene and raster order. */
    const RenderOutput &output(BenchScene s, const RasterOrder &order);

    /** The texel trace only - served from the disk cache if possible. */
    const TexelTrace &trace(BenchScene s, const RasterOrder &order);

  private:
    std::map<int, Scene> scenes_;
    std::map<std::pair<int, std::string>, RenderOutput> outputs_;
    std::map<std::pair<int, std::string>, TexelTrace> diskTraces_;
};

/** Replay a trace through a layout into a stack-distance profiler. */
StackDistProfiler profileTrace(const TexelTrace &trace,
                               const SceneLayout &layout,
                               unsigned line_bytes);

/** Replay a trace through a layout into one cache configuration. */
CacheStats runCache(const TexelTrace &trace, const SceneLayout &layout,
                    const CacheConfig &config);

/** Replay with side-by-side FA twin for 3-C classification. */
MissBreakdown classifyCache(const TexelTrace &trace,
                            const SceneLayout &layout,
                            const CacheConfig &config);

/**
 * Exact fully-associative LRU stats for every capacity in @p sizes
 * from ONE pass over the trace (Mattson inclusion; see
 * cache/multi_sim.hh). Equivalent to |sizes| runCache calls at
 * kFullyAssoc but paying the replay once.
 */
std::vector<CacheStats> runFaSweep(const TexelTrace &trace,
                                   const SceneLayout &layout,
                                   unsigned line_bytes,
                                   const std::vector<uint64_t> &sizes);

/**
 * One shared replay pass driving every configuration in @p configs
 * (typically the associativities of one (size, line) family). Results
 * align with the config list.
 */
std::vector<CacheStats>
runCacheGroup(const TexelTrace &trace, const SceneLayout &layout,
              const std::vector<CacheConfig> &configs);

/**
 * Exact stats for an arbitrary config list using the fewest possible
 * trace passes: fully associative configs collapse into one
 * stack-distance pass per distinct line size, set-associative ones
 * group by (size, line) family; the resulting passes execute on the
 * sweep thread pool (core/sweep.hh). Results align with @p configs
 * and are bit-identical to per-config runCache replays.
 */
std::vector<CacheStats>
runCacheSweep(const TexelTrace &trace, const SceneLayout &layout,
              const std::vector<CacheConfig> &configs);

/** Power-of-two cache sizes from @p lo to @p hi inclusive (bytes). */
std::vector<uint64_t> cacheSizeSweep(uint64_t lo = 1 << 10,
                                     uint64_t hi = 512 << 10);

/**
 * First significant working set (section 5.2.3): the smallest swept
 * size capturing at least @p capture of the achievable miss-rate
 * reduction between the smallest and largest swept caches - i.e. the
 * end of the steep part of the miss-rate-versus-size curve.
 */
uint64_t firstWorkingSet(const StackDistProfiler &prof,
                         const std::vector<uint64_t> &sizes,
                         double capture = 0.85);

/** firstWorkingSet over precomputed miss rates (aligned with sizes). */
uint64_t firstWorkingSet(const std::vector<double> &rates,
                         const std::vector<uint64_t> &sizes,
                         double capture = 0.85);

} // namespace texcache

#endif // TEXCACHE_CORE_EXPERIMENT_HH
