/**
 * @file
 * Width-4 SSE4.1 traits for the kernel body. Every operation used is
 * IEEE-exact per lane (addps/subps/mulps/divps/sqrtps/roundps,
 * cvtdq2ps/cvttps2dq), so lane results match the scalar reference bit
 * for bit; see maxStd for the one deliberate operand swap.
 */

#ifndef TEXCACHE_SIMD_VEC_SSE41_HH
#define TEXCACHE_SIMD_VEC_SSE41_HH

#if !defined(__SSE4_1__)
#error "vec_sse41.hh requires -msse4.1 (include it from kernels_sse41.cc only)"
#endif

#include <cstdint>
#include <smmintrin.h>

namespace texcache {
namespace simd {

struct VecSse41
{
    static constexpr int kW = 4;
    using f32 = __m128;
    using i32 = __m128i;
    using m32 = __m128;

    static f32 set1(float x) { return _mm_set1_ps(x); }
    static i32 iset1(int32_t x) { return _mm_set1_epi32(x); }
    static f32 load(const float *p) { return _mm_loadu_ps(p); }

    static i32
    iload(const int32_t *p)
    {
        return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    }

    static void store(float *p, f32 v) { _mm_storeu_ps(p, v); }

    static void
    istore(int32_t *p, i32 v)
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }

    static f32 toF(i32 v) { return _mm_cvtepi32_ps(v); }
    static f32 add(f32 a, f32 b) { return _mm_add_ps(a, b); }
    static f32 sub(f32 a, f32 b) { return _mm_sub_ps(a, b); }
    static f32 mul(f32 a, f32 b) { return _mm_mul_ps(a, b); }
    static f32 div(f32 a, f32 b) { return _mm_div_ps(a, b); }
    static f32 sqrt(f32 a) { return _mm_sqrt_ps(a); }
    static f32 floor(f32 a) { return _mm_floor_ps(a); }

    /**
     * std::max(a, b) returns a when equal or unordered; MAXPS returns
     * its *second* operand in those cases, so swapping the operands
     * reproduces std::max exactly: maxps(b, a) = (b > a) ? b : a.
     */
    static f32 maxStd(f32 a, f32 b) { return _mm_max_ps(b, a); }

    static i32 trunc(f32 a) { return _mm_cvttps_epi32(a); }
    static i32 iadd(i32 a, i32 b) { return _mm_add_epi32(a, b); }
    static i32 iand(i32 a, i32 b) { return _mm_and_si128(a, b); }
    static i32 ior(i32 a, i32 b) { return _mm_or_si128(a, b); }
    static i32 ishl16(i32 a) { return _mm_slli_epi32(a, 16); }
    static i32 imin(i32 a, i32 b) { return _mm_min_epi32(a, b); }
    static i32 imax(i32 a, i32 b) { return _mm_max_epi32(a, b); }
    static m32 cmpLt(f32 a, f32 b) { return _mm_cmplt_ps(a, b); }
    static m32 cmpLe(f32 a, f32 b) { return _mm_cmple_ps(a, b); }
    static m32 cmpGt(f32 a, f32 b) { return _mm_cmpgt_ps(a, b); }

    static m32
    trueMask()
    {
        return _mm_castsi128_ps(_mm_set1_epi32(-1));
    }

    static m32 andnot(m32 a, m32 b) { return _mm_andnot_ps(a, b); }
    static m32 and_(m32 a, m32 b) { return _mm_and_ps(a, b); }

    static uint32_t
    moveMask(m32 m)
    {
        return static_cast<uint32_t>(_mm_movemask_ps(m));
    }
};

} // namespace simd
} // namespace texcache

#endif // TEXCACHE_SIMD_VEC_SSE41_HH
