/**
 * @file
 * Dump sinks for the tracer: Chrome trace-event JSON and the binary
 * event log, plus the log reader the report tool and tests share.
 *
 * Chrome trace layout: pid 1 ("texcache wall-clock") holds one track
 * per thread ring with the B/E spans; pid 2 ("texcache sim-ticks")
 * holds vt fetch-queue activity, completions as X duration events
 * spanning issue tick to data-arrival tick. Cache miss/texel events
 * are deliberately NOT emitted into the JSON (they would swamp the
 * timeline); they live in the binary log for texcache-report.
 */

#include <cstdio>
#include <istream>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "tracing/sink_internal.hh"
#include "tracing/tracing.hh"

namespace texcache {
namespace tracing {

namespace {

/** Emit one trace-event object's shared fields. */
void
eventHeader(JsonWriter &w, const char *ph, double ts_us, int pid,
            uint32_t tid)
{
    w.kv("ph", ph);
    w.kv("ts", ts_us);
    w.kv("pid", pid);
    w.kv("tid", static_cast<uint64_t>(tid));
}

/** Async correlation id as the hex-string form the viewers expect. */
std::string
asyncIdString(uint64_t id)
{
    char buf[19];
    int n = std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(id));
    return std::string(buf, buf + n);
}

void
processName(JsonWriter &w, int pid, const char *name)
{
    w.beginObject();
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("name", "process_name");
    w.key("args");
    w.beginObject();
    w.kv("name", name);
    w.endObject();
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os)
{
    std::vector<std::string> names;
    uint64_t sample_n = 1;

    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    processName(w, 1, "texcache wall-clock");
    processName(w, 2, "texcache sim-ticks");

    detail::visitRings(
        [&](uint32_t tid, uint64_t, const std::vector<Event> &events) {
            for (const Event &ev : events) {
                switch (static_cast<EventKind>(ev.kind)) {
                  case EventKind::SpanBegin:
                    w.beginObject();
                    w.kv("name", ev.a < names.size()
                                     ? std::string_view(names[ev.a])
                                     : std::string_view("?"));
                    eventHeader(w, "B", ev.ts / 1e3, 1, tid);
                    if (ev.addr) {
                        w.key("args");
                        w.beginObject();
                        w.kv("detail", ev.addr);
                        w.endObject();
                    }
                    w.endObject();
                    break;
                  case EventKind::SpanEnd:
                    w.beginObject();
                    w.kv("name", ev.a < names.size()
                                     ? std::string_view(names[ev.a])
                                     : std::string_view("?"));
                    eventHeader(w, "E", ev.ts / 1e3, 1, tid);
                    w.endObject();
                    break;
                  case EventKind::AsyncBegin:
                  case EventKind::AsyncEnd: {
                    // Nestable async events: Perfetto matches "b"/"e"
                    // pairs by (cat, id, name) across threads, which
                    // is how one request's phases line up on a single
                    // track whichever thread emitted them.
                    bool begin = static_cast<EventKind>(ev.kind) ==
                                 EventKind::AsyncBegin;
                    w.beginObject();
                    w.kv("name", ev.a < names.size()
                                     ? std::string_view(names[ev.a])
                                     : std::string_view("?"));
                    eventHeader(w, begin ? "b" : "e", ev.ts / 1e3, 1,
                                tid);
                    w.kv("cat", "async");
                    w.kv("id", asyncIdString(ev.addr));
                    if (begin && ev.c) {
                        w.key("args");
                        w.beginObject();
                        w.kv("detail", static_cast<uint64_t>(ev.c));
                        w.endObject();
                    }
                    w.endObject();
                    break;
                  }
                  case EventKind::FetchComplete:
                    // Span the fetch from issue to data arrival in
                    // the sim-tick domain (1 tick = 1 "us" in the
                    // viewer; only relative durations matter).
                    w.beginObject();
                    w.kv("name", "fetch");
                    eventHeader(w, "X",
                                static_cast<double>(ev.ts - ev.b), 2,
                                tid);
                    w.kv("dur", static_cast<double>(ev.b));
                    w.key("args");
                    w.beginObject();
                    w.kv("page", ev.addr);
                    w.endObject();
                    w.endObject();
                    break;
                  case EventKind::FetchDrop:
                  case EventKind::FetchMerge:
                  case EventKind::PageEvict:
                    w.beginObject();
                    w.kv("name",
                         static_cast<EventKind>(ev.kind) ==
                                 EventKind::FetchDrop
                             ? "fetch-drop"
                             : static_cast<EventKind>(ev.kind) ==
                                       EventKind::FetchMerge
                                   ? "fetch-merge"
                                   : "page-evict");
                    eventHeader(w, "i", static_cast<double>(ev.ts), 2,
                                tid);
                    w.kv("s", "t");
                    w.endObject();
                    break;
                  default:
                    break; // misses/texels: binary log only
                }
            }
        },
        names, sample_n);

    w.endArray();
    w.kv("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.kv("tool", "texcache");
    w.kv("sample_n", sample_n);
    w.endObject();
    w.endObject();
    os << "\n";
}

namespace {

template <typename T>
void
put(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}

} // namespace

void
writeEventLog(std::ostream &os)
{
    std::vector<std::string> names;
    uint64_t sample_n = 1;

    // First pass to count rings (visitRings copies under the lock,
    // so buffering sections locally keeps the format single-pass).
    struct Section
    {
        uint32_t tid;
        uint64_t dropped;
        std::vector<Event> events;
    };
    std::vector<Section> sections;
    uint64_t dropped_total = 0;
    detail::visitRings(
        [&](uint32_t tid, uint64_t dropped,
            const std::vector<Event> &events) {
            sections.push_back({tid, dropped, events});
            dropped_total += dropped;
        },
        names, sample_n);

    os.write(kLogMagic, sizeof(kLogMagic));
    put(os, kLogVersion);
    put(os, static_cast<uint32_t>(sections.size()));
    put(os, sample_n);
    put(os, dropped_total);
    put(os, static_cast<uint32_t>(names.size()));
    for (const std::string &n : names) {
        put(os, static_cast<uint16_t>(n.size()));
        os.write(n.data(), static_cast<std::streamsize>(n.size()));
    }
    for (const Section &s : sections) {
        put(os, s.tid);
        put(os, uint32_t(0)); // reserved
        put(os, static_cast<uint64_t>(s.events.size()));
        put(os, s.dropped);
        os.write(reinterpret_cast<const char *>(s.events.data()),
                 static_cast<std::streamsize>(s.events.size() *
                                              sizeof(Event)));
    }
}

bool
readEventLog(std::istream &is, EventLog &out, std::string &err)
{
    out = EventLog{};
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::char_traits<char>::compare(magic, kLogMagic, 8)) {
        err = "bad magic (not a texcache event log)";
        return false;
    }
    uint32_t version = 0, ring_count = 0, name_count = 0;
    if (!get(is, version) || version != kLogVersion) {
        err = "unsupported event log version";
        return false;
    }
    if (!get(is, ring_count) || !get(is, out.sampleN) ||
        !get(is, out.dropped) || !get(is, name_count)) {
        err = "truncated header";
        return false;
    }
    for (uint32_t i = 0; i < name_count; ++i) {
        uint16_t len = 0;
        if (!get(is, len)) {
            err = "truncated name table";
            return false;
        }
        std::string n(len, '\0');
        is.read(n.data(), len);
        if (!is) {
            err = "truncated name table";
            return false;
        }
        out.names.push_back(std::move(n));
    }
    for (uint32_t r = 0; r < ring_count; ++r) {
        RingData ring;
        uint32_t reserved = 0;
        uint64_t count = 0;
        if (!get(is, ring.tid) || !get(is, reserved) ||
            !get(is, count) || !get(is, ring.dropped)) {
            err = "truncated ring header";
            return false;
        }
        ring.events.resize(count);
        is.read(reinterpret_cast<char *>(ring.events.data()),
                static_cast<std::streamsize>(count * sizeof(Event)));
        if (!is) {
            err = "truncated ring events";
            return false;
        }
        out.rings.push_back(std::move(ring));
    }
    return true;
}

} // namespace tracing
} // namespace texcache
