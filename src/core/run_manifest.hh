/**
 * @file
 * Uniform JSON run manifests for bench binaries.
 *
 * Every bench dumps one schema ("texcache-bench-1"): build identity
 * (git SHA, build type, compiler, compile stamp), the TEXCACHE_* env
 * overrides in effect, free-form config rows, cumulative process
 * wall-clock, a set of gated metrics, and the run's stats tree
 * (stats/stats.hh). tools/check_bench.py compares the metrics block
 * of a fresh manifest against a committed baseline with per-metric
 * tolerances - the perf-regression gate CI runs.
 *
 * Manifests write to BENCH_<bench>.json in the current directory, or
 * under TEXCACHE_STATS_DIR when set. Writing reports the path via
 * inform() (stderr) so bench stdout stays byte-identical.
 */

#ifndef TEXCACHE_CORE_RUN_MANIFEST_HH
#define TEXCACHE_CORE_RUN_MANIFEST_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.hh"

namespace texcache {

/** One bench run's metadata, metrics and stats tree. */
class RunManifest
{
  public:
    explicit RunManifest(std::string bench)
        : bench_(std::move(bench))
    {}

    /** Scene(s) the run rendered, free-form ("all", "guitar", ...). */
    void setScene(std::string scene) { scene_ = std::move(scene); }

    /**
     * Deterministic mode for service responses: the manifest must be
     * a pure function of the request so byte-identity checks against
     * another run of the same request hold. write() then omits the
     * env block (daemon process environment is not request state) and
     * emits wall_ms as 0 (the schema key stays; the daemon reports
     * real latency through its own stats, not per-response bodies).
     */
    void setDeterministic(bool on) { deterministic_ = on; }

    /** Free-form configuration row (swept sizes, layout kind, ...). */
    void config(std::string key, std::string value);
    void config(std::string key, uint64_t value);
    void config(std::string key, double value);

    /**
     * Gated metric. @p direction tells tools/check_bench.py how to
     * compare a fresh value against the baseline's:
     *   "higher"  - regression when fresh < base * (1 - tolerance);
     *   "lower"   - regression when fresh > base * (1 + tolerance);
     *   "ceiling" - like "lower" but the baseline value is a hard
     *               budget, not a noisy measurement: the default
     *               tolerance is 0 instead of 0.15 (resource bounds,
     *               e.g. peak RSS of a streamed replay);
     *   "exact"   - any difference fails (determinism pins);
     *   "report"  - printed, never compared (machine-dependent).
     */
    void metric(std::string name, double value,
                std::string direction = "report",
                double tolerance = 0.0);

    /** Trace artifacts of the run (tracing::DumpInfo shape). */
    struct TraceInfo
    {
        std::string chromePath; ///< Chrome trace-event JSON
        std::string eventsPath; ///< binary event log
        uint64_t recorded = 0;  ///< events kept in the buffers
        uint64_t dropped = 0;   ///< events lost to full rings
        uint64_t sampleN = 1;   ///< TEXCACHE_TRACE_SAMPLE divisor
    };

    /** Record where the run's trace dump landed (emitted as a
     *  "trace" block so tooling can find the files). */
    void setTrace(TraceInfo info) { trace_ = std::move(info); }

    /** Profile artifacts of the run (prof::DumpInfo shape). */
    struct ProfileInfo
    {
        std::string collapsedPath;  ///< flamegraph.pl collapsed text
        std::string speedscopePath; ///< speedscope-loadable JSON
        uint64_t samples = 0;       ///< samples retained and dumped
        uint64_t dropped = 0;       ///< lost to ring wraparound
        unsigned hz = 0;            ///< per-thread sample rate
    };

    /** Record where the run's CPU profile landed (a "profile" block,
     *  next to "trace"; omitted in deterministic mode - sample counts
     *  are not a function of the request). */
    void setProfile(ProfileInfo info) { profile_ = std::move(info); }

    /** Render the manifest; @p root (may be null) is the stats tree. */
    void write(std::ostream &os, const stats::Group *root) const;

    /** write() into a string (service responses, comparisons). */
    std::string toString(const stats::Group *root = nullptr) const;

    /** BENCH_<bench>.json under TEXCACHE_STATS_DIR (default: cwd). */
    std::string defaultPath() const;

    /** write() to defaultPath(), reporting the path via inform(). */
    void writeFile(const stats::Group *root = nullptr) const;

  private:
    struct ConfigRow
    {
        std::string key;
        std::string text;  ///< string form (numbers rendered raw)
        bool quoted;       ///< emit as JSON string vs raw number
    };
    struct Metric
    {
        std::string name;
        double value;
        std::string direction;
        double tolerance;
    };

    std::string bench_;
    std::string scene_;
    bool deterministic_ = false;
    std::vector<ConfigRow> configs_;
    std::vector<Metric> metrics_;
    TraceInfo trace_;     ///< empty paths = no trace block emitted
    ProfileInfo profile_; ///< empty paths = no profile block emitted
};

} // namespace texcache

#endif // TEXCACHE_CORE_RUN_MANIFEST_HH
