/**
 * @file
 * Pixel traversal and fragment generation (paper sections 2 and 6).
 *
 * The rasterization order determines the texture access pattern and is
 * one of the paper's three key levers. Supported orders:
 *
 *  - horizontal (row major): the classic scanline order (Fig 6.1(a));
 *  - vertical (column major): used to demonstrate the base
 *    representation's orientation sensitivity (Fig 5.2(b));
 *  - tiled: the screen is statically decomposed into tiles and each
 *    triangle's pixels are visited tile by tile (Fig 6.1(b)); the scan
 *    direction applies both within tiles and to the tile order.
 */

#ifndef TEXCACHE_RASTER_RASTERIZER_HH
#define TEXCACHE_RASTER_RASTERIZER_HH

#include <functional>

#include "raster/triangle.hh"

namespace texcache {

/** Receives each covered fragment in traversal order. */
using FragmentSink = std::function<void(const Fragment &)>;

/**
 * Rasterize one prepared triangle over a screen of the given size,
 * visiting pixels in the configured order and invoking @p sink for each
 * covered pixel.
 */
void rasterizeTriangle(const TriangleSetup &tri, unsigned screen_w,
                       unsigned screen_h, const RasterOrder &order,
                       const FragmentSink &sink);

/**
 * Visit all pixels of @p rect in the given order (exposed for tests and
 * for the working-set discussion in section 6.1). Tiles are aligned to
 * the screen origin, so @p rect is traversed tile-aligned exactly as a
 * full-screen traversal would visit it.
 */
void traverseRect(const PixelRect &rect, const RasterOrder &order,
                  const std::function<void(int, int)> &visit);

} // namespace texcache

#endif // TEXCACHE_RASTER_RASTERIZER_HH
