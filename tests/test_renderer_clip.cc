/** @file
 * Renderer tests for geometry that crosses the near plane, plus the
 * animated Flight camera used by the inter-frame study.
 */

#include <gtest/gtest.h>

#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

using namespace texcache;

namespace {

/** A ground plane running from in front of the camera to behind it. */
Scene
throughCameraScene()
{
    Scene s;
    s.name = "through";
    s.screenW = s.screenH = 64;
    s.textures.emplace_back(Image(64, 64, Rgba8{200, 100, 50, 255}));
    // Camera at origin looking down -z; quad spans z = -10 .. +5,
    // so two of its vertices are behind the eye.
    SceneVertex v0{{-5, -1, 5}, {0, 0}, 1.0f};
    SceneVertex v1{{5, -1, 5}, {1, 0}, 1.0f};
    SceneVertex v2{{5, -1, -10}, {1, 1}, 1.0f};
    SceneVertex v3{{-5, -1, -10}, {0, 1}, 1.0f};
    s.triangles.push_back({{v0, v1, v2}, 0});
    s.triangles.push_back({{v0, v2, v3}, 0});
    s.view = Mat4::identity();
    s.proj = Mat4::perspective(1.2f, 1.0f, 0.5f, 100.0f);
    return s;
}

} // namespace

TEST(RendererClip, NearCrossingTrianglesStillRender)
{
    RenderOutput out =
        render(throughCameraScene(), RasterOrder::horizontal());
    // The visible part of the plane must produce fragments; nothing
    // behind the eye may rasterize (no NaN/huge coordinates).
    EXPECT_GT(out.stats.fragments, 100u);
    EXPECT_LT(out.stats.fragments, 64u * 64u + 1);
    EXPECT_EQ(out.stats.trianglesculled, 0u);
    // Clipping splits the crossing triangles into more screen
    // triangles than were submitted.
    EXPECT_GE(out.stats.trianglesRasterized, 2u);
}

TEST(RendererClip, FullyBehindGeometryIsCulled)
{
    Scene s = throughCameraScene();
    // Move everything behind the camera.
    for (SceneTriangle &t : s.triangles)
        for (SceneVertex &v : t.v)
            v.pos.z = 10.0f + v.pos.z * 0.01f;
    RenderOutput out = render(s, RasterOrder::horizontal());
    EXPECT_EQ(out.stats.fragments, 0u);
    EXPECT_EQ(out.stats.trianglesculled, 2u);
}

TEST(RendererClip, FragmentsStayOnScreen)
{
    RenderOptions opts;
    opts.onFragment = [](const Fragment &f, const SampleResult &,
                         uint16_t) {
        ASSERT_GE(f.x, 0);
        ASSERT_LT(f.x, 64);
        ASSERT_GE(f.y, 0);
        ASSERT_LT(f.y, 64);
        ASSERT_TRUE(std::isfinite(f.u));
        ASSERT_TRUE(std::isfinite(f.v));
    };
    render(throughCameraScene(), RasterOrder::horizontal(), opts);
}

TEST(FlightAnimation, FrameZeroMatchesDefaultScene)
{
    Scene a = makeFlightScene();
    Scene b = makeFlightSceneAt(0.0f);
    ASSERT_EQ(a.triangles.size(), b.triangles.size());
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(a.view.m[r][c], b.view.m[r][c]);
}

TEST(FlightAnimation, LaterFramesMoveTheCamera)
{
    Scene a = makeFlightSceneAt(0.0f);
    Scene b = makeFlightSceneAt(2.0f);
    bool differs = false;
    for (int r = 0; r < 4 && !differs; ++r)
        for (int c = 0; c < 4 && !differs; ++c)
            differs = a.view.m[r][c] != b.view.m[r][c];
    EXPECT_TRUE(differs);
    // Geometry and textures are the frame-invariant part.
    EXPECT_EQ(a.triangles.size(), b.triangles.size());
    EXPECT_EQ(a.textures.size(), b.textures.size());
}
