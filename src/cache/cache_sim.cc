#include "cache/cache_sim.hh"

#include "common/table.hh"
#include "tracing/tracing.hh"

namespace texcache {

std::string
CacheConfig::str() const
{
    std::string s = fmtBytes(sizeBytes) + "/" + fmtBytes(lineBytes);
    if (assoc == kFullyAssoc)
        s += "/full";
    else
        s += "/" + std::to_string(assoc) + "way";
    return s;
}

CacheSim::CacheSim(const CacheConfig &config) : config_(config)
{
    fatal_if(!isPowerOfTwo(config.sizeBytes) ||
                 !isPowerOfTwo(config.lineBytes),
             "cache geometry must be powers of two: ", config.str());
    fatal_if(config.lineBytes > config.sizeBytes,
             "line larger than cache: ", config.str());
    lineShift_ = log2Exact(config.lineBytes);
    uint64_t lines = config.numLines();
    if (config.assoc == CacheConfig::kFullyAssoc) {
        if (lines > 64) {
            // The O(ways) scan is hopeless at this size; the hash-map
            // LRU is exact for any fully associative LRU cache.
            fa_ = std::make_unique<FullyAssocLru>(config.sizeBytes,
                                                  config.lineBytes);
            ways_ = 0;
            setMask_ = 0;
            return;
        }
        ways_ = static_cast<unsigned>(lines);
        setMask_ = 0;
    } else {
        fatal_if(lines % config.assoc != 0,
                 "associativity does not divide line count: ",
                 config.str());
        uint64_t sets = lines / config.assoc;
        fatal_if(!isPowerOfTwo(sets), "set count not a power of two: ",
                 config.str());
        ways_ = config.assoc;
        setMask_ = sets - 1;
    }
    table_.assign(config.numSets() * ways_, Way{});
}

CacheSim::~CacheSim() = default;
CacheSim::CacheSim(CacheSim &&) noexcept = default;
CacheSim &CacheSim::operator=(CacheSim &&) noexcept = default;

const CacheStats &
CacheSim::stats() const
{
    return fa_ ? fa_->stats() : stats_;
}

void
CacheSim::setTraceTag(uint16_t tag)
{
    traceTag_ = tag;
    if (fa_)
        fa_->setTraceTag(tag);
}

bool
CacheSim::access(Addr addr)
{
    if (fa_)
        return fa_->access(addr);
    uint64_t line = addr >> lineShift_;
    uint64_t set = line & setMask_;
    Way *ways = &table_[set * ways_];

    ++stats_.accesses;
    ++tick_;

    unsigned victim = 0;
    uint64_t oldest = ~0ULL;
    for (unsigned w = 0; w < ways_; ++w) {
        if (ways[w].tag == line) {
            ways[w].lastUse = tick_;
            if (tracing::enabled(tracing::kTexels)) [[unlikely]]
                tracing::cacheHit(addr, traceTag_);
            return true;
        }
        if (ways[w].lastUse < oldest) {
            oldest = ways[w].lastUse;
            victim = w;
        }
    }

    ++stats_.misses;
    bool cold = touched_.insert(line);
    if (cold)
        ++stats_.coldMisses;
    if (tracing::enabled(tracing::kMisses | tracing::kTexels))
        [[unlikely]]
        tracing::cacheMiss(addr,
                           cold ? tracing::MissClass::Cold
                                : tracing::MissClass::Other,
                           traceTag_);
    if (ways[victim].tag != kInvalid)
        ++stats_.evictions;
    ways[victim].tag = line;
    ways[victim].lastUse = tick_;
    return false;
}

void
CacheSim::flush()
{
    if (fa_) {
        fa_->flush();
        return;
    }
    table_.assign(table_.size(), Way{});
    tick_ = 0;
}

void
CacheSim::reset()
{
    if (fa_) {
        fa_->reset();
        return;
    }
    table_.assign(table_.size(), Way{});
    touched_.clear();
    tick_ = 0;
    stats_ = CacheStats{};
}

FullyAssocLru::FullyAssocLru(uint64_t size_bytes, unsigned line_bytes)
{
    fatal_if(!isPowerOfTwo(size_bytes) || !isPowerOfTwo(line_bytes),
             "cache geometry must be powers of two");
    fatal_if(line_bytes > size_bytes, "line larger than cache");
    lineShift_ = log2Exact(line_bytes);
    capacity_ = size_bytes / line_bytes;
    pool_.reserve(capacity_);
}

void
FullyAssocLru::unlink(uint32_t n)
{
    Node &node = pool_[n];
    if (node.prev != kNil)
        pool_[node.prev].next = node.next;
    else
        head_ = node.next;
    if (node.next != kNil)
        pool_[node.next].prev = node.prev;
    else
        tail_ = node.prev;
}

void
FullyAssocLru::pushFront(uint32_t n)
{
    Node &node = pool_[n];
    node.prev = kNil;
    node.next = head_;
    if (head_ != kNil)
        pool_[head_].prev = n;
    head_ = n;
    if (tail_ == kNil)
        tail_ = n;
}

bool
FullyAssocLru::access(Addr addr)
{
    uint64_t line = addr >> lineShift_;
    ++stats_.accesses;

    auto it = map_.find(line);
    if (it != map_.end()) {
        uint32_t n = it->second;
        if (n != head_) {
            unlink(n);
            pushFront(n);
        }
        if (tracing::enabled(tracing::kTexels)) [[unlikely]]
            tracing::cacheHit(addr, traceTag_);
        return true;
    }

    ++stats_.misses;
    bool cold = touched_.insert(line);
    if (cold)
        ++stats_.coldMisses;
    if (tracing::enabled(tracing::kMisses | tracing::kTexels))
        [[unlikely]]
        tracing::cacheMiss(addr,
                           cold ? tracing::MissClass::Cold
                                : tracing::MissClass::Other,
                           traceTag_);

    uint32_t n;
    if (map_.size() >= capacity_) {
        // Evict the least recently used line and reuse its node.
        ++stats_.evictions;
        n = tail_;
        map_.erase(pool_[n].line);
        unlink(n);
    } else if (!freeList_.empty()) {
        n = freeList_.back();
        freeList_.pop_back();
    } else {
        n = static_cast<uint32_t>(pool_.size());
        pool_.push_back(Node{});
    }
    pool_[n].line = line;
    pushFront(n);
    map_[line] = n;
    return false;
}

void
FullyAssocLru::flush()
{
    pool_.clear();
    freeList_.clear();
    map_.clear();
    head_ = tail_ = kNil;
}

void
FullyAssocLru::reset()
{
    pool_.clear();
    freeList_.clear();
    map_.clear();
    touched_.clear();
    head_ = tail_ = kNil;
    stats_ = CacheStats{};
}

} // namespace texcache
