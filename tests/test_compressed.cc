/** @file Tests for the compressed blocked layout (section 8 extension). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "layout/blocked.hh"
#include "layout/compressed.hh"

using namespace texcache;

namespace {

std::vector<LevelDims>
pyramid(unsigned w, unsigned h)
{
    std::vector<LevelDims> d;
    while (true) {
        d.push_back({w, h});
        if (w == 1 && h == 1)
            break;
        w = w > 1 ? w / 2 : 1;
        h = h > 1 ? h / 2 : 1;
    }
    return d;
}

} // namespace

TEST(Compressed, FootprintShrinksByRatio)
{
    AddressSpace s1, s2;
    BlockedLayout plain(pyramid(256, 256), s1, 8, 8);
    CompressedBlockedLayout comp(pyramid(256, 256), s2, 8, 8, 8);
    // Per-level allocation alignment (4 KB) adds slack on top of the
    // 8:1 payload reduction; require at least ~4x overall.
    EXPECT_LT(comp.footprint(), plain.footprint() / 4);
}

TEST(Compressed, RejectsBadRatio)
{
    AddressSpace s;
    EXPECT_EXIT(CompressedBlockedLayout(pyramid(64, 64), s, 8, 8, 3),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(CompressedBlockedLayout(pyramid(64, 64), s, 8, 8, 1),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Compressed, RatioTexelsShareBytes)
{
    // 8:1 over 8x8 blocks: the 64 texels of a block map onto 32 bytes,
    // i.e. exactly 8 texels per 4-byte granule.
    AddressSpace s;
    CompressedBlockedLayout lay(pyramid(64, 64), s, 8, 8, 8);
    std::map<Addr, unsigned> per_addr;
    for (unsigned v = 0; v < 8; ++v)
        for (unsigned u = 0; u < 8; ++u) {
            Addr a[3];
            lay.addresses({0, static_cast<uint16_t>(u),
                           static_cast<uint16_t>(v)},
                          a);
            ++per_addr[a[0]];
        }
    // The block compresses 256 B -> 32 B: the 64 texels' byte offsets
    // scale onto 32 distinct stored bytes, two texels per byte.
    EXPECT_EQ(per_addr.size(), 32u);
    for (const auto &[addr, count] : per_addr)
        EXPECT_EQ(count, 2u) << "addr " << addr;
}

TEST(Compressed, BlocksRemainDisjoint)
{
    AddressSpace s;
    CompressedBlockedLayout lay(pyramid(64, 64), s, 8, 8, 4);
    // Distinct blocks never share addresses.
    std::set<Addr> block_a, block_b;
    for (unsigned v = 0; v < 8; ++v)
        for (unsigned u = 0; u < 8; ++u) {
            Addr a[3];
            lay.addresses({0, static_cast<uint16_t>(u),
                           static_cast<uint16_t>(v)},
                          a);
            block_a.insert(a[0]);
            lay.addresses({0, static_cast<uint16_t>(u + 8),
                           static_cast<uint16_t>(v)},
                          a);
            block_b.insert(a[0]);
        }
    for (Addr a : block_a)
        EXPECT_EQ(block_b.count(a), 0u);
}

TEST(Compressed, TinyLevelsClampTheRatio)
{
    // A 1x1 level (4 bytes raw) cannot compress below 1 byte; the
    // layout must still produce a valid in-footprint address.
    AddressSpace s;
    CompressedBlockedLayout lay(pyramid(64, 64), s, 8, 8, 16);
    Addr a[3];
    unsigned levels = lay.numLevels();
    lay.addresses({static_cast<uint16_t>(levels - 1), 0, 0}, a);
    EXPECT_LT(a[0], s.used());
}

TEST(Compressed, NameEncodesParameters)
{
    AddressSpace s;
    CompressedBlockedLayout lay(pyramid(16, 16), s, 4, 4, 8);
    EXPECT_EQ(lay.name(), "compressed-4x4@8:1");
}

TEST(Compressed, FactoryBuildsIt)
{
    AddressSpace s;
    LayoutParams p;
    p.kind = LayoutKind::CompressedBlocked;
    p.blockW = p.blockH = 8;
    p.compressionRatio = 4;
    auto lay = makeLayout(p, pyramid(32, 32), s);
    ASSERT_NE(lay, nullptr);
    EXPECT_EQ(lay->cost().accessesPerTexel, 1u);
}
