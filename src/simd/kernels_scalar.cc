// Width-1 instantiation of the kernel body. Compiled with the
// project's baseline flags (plus -ffp-contract=off for uniformity):
// this is the portable fallback and the forced-scalar ablation
// baseline, available in every build on every architecture.

#include "simd/span_kernels.hh"

#include "simd/kernel_body.hh"
#include "simd/vec_scalar.hh"

namespace texcache {
namespace simd {

const SpanKernels *
scalarKernels()
{
    static const SpanKernels k = {&touchesKernel<VecScalar>,
                                  &coverKernel<VecScalar>};
    return &k;
}

} // namespace simd
} // namespace texcache
