/**
 * @file
 * Reproduces Figure 6.2: the effect of tiled rasterization on the
 * working-set size (Guitar scene, blocked 8x8 textures, 128-byte
 * lines, fully associative caches).
 *
 * Going from tiny tiles to medium tiles (a) shrinks the working set -
 * miss rates drop at cache sizes that previously missed; going from
 * medium to very large tiles (b) converges back to the non-tiled
 * behavior. A second table shows Goblet, whose small triangles make it
 * insensitive to the tile size (section 6.1's robustness claim).
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

void
panel(const char *title, BenchScene s)
{
    constexpr unsigned kLine = 128;
    LayoutParams params = blockedForLine(256); // 8x8 blocks
    params.blockW = params.blockH = 8;

    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 64 << 10);
    TextTable table(title);
    std::vector<std::string> header = {"Tiles"};
    for (uint64_t sz : sizes)
        header.push_back(fmtBytes(sz));
    table.header(header);

    const unsigned tile_sizes[] = {0, 2, 4, 8, 16, 32, 64, 128};
    for (unsigned tile : tile_sizes) {
        RasterOrder order = sceneOrder(s, tile != 0, tile);
        const RenderOutput &out = store().output(s, order);
        SceneLayout layout(store().scene(s), params);
        StackDistProfiler prof = profileTrace(out.trace, layout, kLine);
        std::vector<std::string> row = {
            tile == 0 ? "nontiled"
                      : std::to_string(tile) + "x" +
                            std::to_string(tile)};
        for (uint64_t size : sizes)
            row.push_back(fmtPercent(prof.missRate(size)));
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    panel("Figure 6.2: Guitar, 8x8 blocks, 128B lines, FA, miss rate "
          "vs cache size per tile size",
          BenchScene::Guitar);
    panel("Robustness check (section 6.1): Goblet, same configuration",
          BenchScene::Goblet);
    std::cout << "Paper reference: medium tiles minimize the working "
                 "set for large-triangle scenes (Guitar); small-triangle "
                 "scenes (Goblet) are unaffected by tiling.\n";
    return 0;
}
