/**
 * @file
 * Fixed-point texture filtering, as the hardware the paper models
 * would implement it.
 *
 * Table 2.1 lists the trilinear/bilinear interpolation phase as
 * *fixed*-point arithmetic: real fragment generators carry filter
 * weights in a few fractional bits, not floats. This implementation
 * mirrors sampleMipMap with 8-bit weights (the precision of the texel
 * data itself) and integer multiply-adds:
 *
 *   Interpolated = Texel(n) + (Weight * (Texel(n+1) - Texel(n))) >> 8
 *
 * exactly the core expression of section 7.1.2. The fixed-point result
 * is guaranteed (and tested) to match the float filter within 2/255
 * per channel, and the texel *touches* are identical, so cache studies
 * are unaffected by the arithmetic choice.
 */

#ifndef TEXCACHE_TEXTURE_FIXED_FILTER_HH
#define TEXCACHE_TEXTURE_FIXED_FILTER_HH

#include "texture/sampler.hh"

namespace texcache {

/** Result of a fixed-point filter: 8-bit color plus the touches. */
struct FixedSampleResult
{
    Rgba8 color;
    FilterKind kind;
    unsigned numTouches;
    TexelTouch touches[8];
};

/**
 * Fixed-point counterpart of sampleMipMap: identical level selection
 * and texel addressing, 8.8 fixed-point interpolation arithmetic.
 */
FixedSampleResult sampleMipMapFixed(const MipMap &mip, float u, float v,
                                    float lambda,
                                    WrapMode wrap = WrapMode::Repeat);

} // namespace texcache

#endif // TEXCACHE_TEXTURE_FIXED_FILTER_HH
