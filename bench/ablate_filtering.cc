/**
 * @file
 * Ablation (extension): the texture filter's cost in texel traffic and
 * memory bandwidth.
 *
 * The paper's machine model assumes trilinear filtering (8 texel reads
 * per fragment, Table 2.1). The cheaper GL 1.0 minification filters
 * trade image quality for traffic: GL_LINEAR_MIPMAP_NEAREST reads 4
 * texels, GL_NEAREST_MIPMAP_NEAREST reads 1. This harness quantifies
 * how much of that per-fragment saving survives the cache - reuse
 * means cache *miss* traffic shrinks less than raw access counts.
 */

#include "bench/bench_util.hh"
#include "cache/bandwidth.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    MachineModel machine;
    constexpr unsigned kLine = 128;
    const CacheConfig cache{32 * 1024, kLine, 2};
    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;

    struct Mode
    {
        const char *label;
        FilterMode mode;
    };
    const Mode modes[] = {
        {"trilinear (paper)", FilterMode::Trilinear},
        {"bilinear-mip-nearest", FilterMode::BilinearMipNearest},
        {"nearest-mip-nearest", FilterMode::NearestMipNearest},
    };

    TextTable table("Extension: filter mode vs texel traffic and "
                    "memory bandwidth, 32KB 2-way, 128B lines");
    table.header({"Scene", "Filter", "Texels/frag", "MissRate",
                  "BW (MB/s)"});

    for (BenchScene s : {BenchScene::Goblet, BenchScene::Flight}) {
        const Scene &scene = store().scene(s);
        for (const Mode &m : modes) {
            RenderOptions opts;
            opts.writeFramebuffer = false;
            opts.countRepetition = false;
            opts.filterMode = m.mode;
            RenderOutput out =
                render(scene, sceneOrder(s, /*tiled=*/true, 8), opts);
            SceneLayout layout(scene, params);
            CacheStats stats = runCache(out.trace, layout, cache);
            double per_frag =
                static_cast<double>(out.stats.texelAccesses) /
                out.stats.fragments;
            // Bandwidth at 50M fragments/s with this filter's access
            // count: misses/frag * line bytes * frag rate.
            double misses_per_frag =
                static_cast<double>(stats.misses) /
                out.stats.fragments;
            double bw = misses_per_frag * kLine *
                        machine.fragmentsPerSecond();
            table.row({benchSceneName(s), m.label,
                       fmtFixed(per_frag, 2),
                       fmtPercent(stats.missRate()),
                       fmtFixed(bw / 1e6, 0)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpectation: cheaper filters cut accesses 2x/8x "
                 "but cut *memory* bandwidth by less - the cache "
                 "already absorbs most of the overlapping reads that "
                 "trilinear filtering performs.\n";
    return 0;
}
