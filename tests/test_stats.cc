/** @file
 * The stats layer's contract (stats/stats.hh): names register once and
 * panic on duplicates, distributions bucket by powers of two exactly
 * at the edges, formulas evaluate lazily against live counters, the
 * JSON dump is stable, and the cache export views (cache/stats_export)
 * read identical numbers to the legacy CacheStats counters they wrap.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/cache_sim.hh"
#include "cache/stats_export.hh"
#include "common/json.hh"
#include "common/json_reader.hh"
#include "stats/prometheus.hh"
#include "stats/snapshot.hh"
#include "stats/stats.hh"

using namespace texcache;

TEST(StatsScalar, RegistersAndCounts)
{
    stats::Group root;
    stats::Scalar &hits = root.scalar("hits", "demo counter");
    ++hits;
    hits += 4;
    EXPECT_EQ(hits.value(), 5u);
    EXPECT_EQ(root.value("hits"), 5.0);
    EXPECT_EQ(root.find("hits")->desc(), "demo counter");
}

TEST(StatsScalar, DetachedThenAdded)
{
    stats::Scalar counter;
    ++counter; // hot-path increments before registration are kept
    stats::Group root;
    root.add(counter, "late");
    ++counter;
    EXPECT_EQ(root.value("late"), 2.0);
}

TEST(StatsGroup, DottedPathsResolveThroughNesting)
{
    stats::Group root;
    stats::Group &l1 = root.group("l1");
    stats::Group &bank = l1.group("bank0");
    bank.constant("misses", 7);
    EXPECT_EQ(root.value("l1.bank0.misses"), 7.0);
    EXPECT_NE(root.findGroup("l1.bank0"), nullptr);
    EXPECT_EQ(root.find("l1.bank0.nope"), nullptr);
    EXPECT_EQ(root.findGroup("l2"), nullptr);
}

TEST(StatsGroupDeathTest, DuplicateAndIllegalNamesPanic)
{
    stats::Group root;
    root.scalar("x");
    EXPECT_DEATH(root.scalar("x"), "duplicate name");
    EXPECT_DEATH(root.group("x"), "duplicate name");
    EXPECT_DEATH(root.scalar("a.b"), "path separator");
    EXPECT_DEATH(root.scalar(""), "empty name");
    EXPECT_DEATH(root.value("missing"), "no stat at path");
}

TEST(StatsDistribution, BucketsAtPowerOfTwoEdges)
{
    // Bucket 0 holds value 0; bucket k >= 1 holds [2^(k-1), 2^k).
    EXPECT_EQ(stats::Distribution::bucketOf(0), 0u);
    EXPECT_EQ(stats::Distribution::bucketOf(1), 1u);
    EXPECT_EQ(stats::Distribution::bucketOf(2), 2u);
    EXPECT_EQ(stats::Distribution::bucketOf(3), 2u);
    EXPECT_EQ(stats::Distribution::bucketOf(4), 3u);
    EXPECT_EQ(stats::Distribution::bucketOf(7), 3u);
    EXPECT_EQ(stats::Distribution::bucketOf(8), 4u);
    EXPECT_EQ(stats::Distribution::bucketOf((1ull << 32) - 1), 32u);
    EXPECT_EQ(stats::Distribution::bucketOf(1ull << 32), 33u);
    EXPECT_EQ(stats::Distribution::bucketOf(~0ull), 64u);

    stats::Distribution d;
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1024ull})
        d.sample(v);
    EXPECT_EQ(d.count(), 6u);
    EXPECT_EQ(d.sum(), 1034u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 1024u);
    EXPECT_DOUBLE_EQ(d.mean(), 1034.0 / 6.0);
    EXPECT_EQ(d.bucket(0), 1u); // 0
    EXPECT_EQ(d.bucket(1), 1u); // 1
    EXPECT_EQ(d.bucket(2), 2u); // 2, 3
    EXPECT_EQ(d.bucket(3), 1u); // 4
    EXPECT_EQ(d.bucket(11), 1u); // 1024
}

TEST(StatsDistribution, MergeAndSnapshot)
{
    stats::Distribution a, b;
    a.sample(1);
    a.sample(100);
    b.sample(50);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 100u);

    stats::Group root;
    stats::Distribution &snap =
        root.distribution("depth", "snapshot", a);
    a.sample(7); // the snapshot must not follow the source
    EXPECT_EQ(snap.count(), 3u);
    EXPECT_EQ(root.value("depth"), 3.0);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.min(), 0u);
}

TEST(StatsFormula, EvaluatesLazilyAgainstLiveCounters)
{
    uint64_t hits = 0, accesses = 0;
    stats::Group root;
    root.formula("hit_rate", "hits / accesses", [&] {
        return accesses ? double(hits) / double(accesses) : 0.0;
    });
    EXPECT_EQ(root.value("hit_rate"), 0.0);
    hits = 3;
    accesses = 4;
    // No re-registration: the formula reads the counters at call time.
    EXPECT_DOUBLE_EQ(root.value("hit_rate"), 0.75);
}

TEST(StatsJson, DumpMatchesTheDocumentedShape)
{
    stats::Group root;
    root.constant("n", 2);
    root.real("rate", 0.5);
    stats::Group &sub = root.group("sub");
    stats::Distribution &d = sub.distribution("lat", "");
    d.sample(0);
    d.sample(3);

    std::ostringstream os;
    root.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"n\": 2,\n"
              "  \"rate\": 0.5,\n"
              "  \"sub\": {\n"
              "    \"lat\": {\n"
              "      \"count\": 2,\n"
              "      \"sum\": 3,\n"
              "      \"min\": 0,\n"
              "      \"max\": 3,\n"
              "      \"mean\": 1.5,\n"
              "      \"p50\": 3,\n"
              "      \"p95\": 3,\n"
              "      \"p99\": 3,\n"
              "      \"bucketing\": \"log2\",\n"
              "      \"buckets\": [\n"
              "        1,\n"
              "        0,\n"
              "        1\n"
              "      ]\n"
              "    }\n"
              "  }\n"
              "}\n");
}

TEST(StatsJson, WriterEscapesAndPanicsOnMisuse)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("a\"b\n", "x\ty");
        w.endObject();
        EXPECT_TRUE(w.done());
    }
    EXPECT_EQ(os.str(), "{\"a\\\"b\\n\":\"x\\ty\"}");
}

TEST(StatsJsonDeathTest, UnbalancedNestingPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_DEATH(w.endObject(), "unbalanced");
    w.beginObject();
    EXPECT_DEATH(w.value(1), "needs a key");
    w.key("k");
    EXPECT_DEATH(w.key("k2"), "awaits");
}

TEST(StatsExport, CacheViewMatchesLegacyCounters)
{
    // Tiny direct-mapped cache over a deterministic stream: the
    // export formulas must read exactly the legacy CacheStats fields.
    CacheSim sim({1024, 64, 1});
    uint32_t x = 9;
    for (int i = 0; i < 20000; ++i) {
        x = x * 1664525u + 1013904223u;
        sim.access((x >> 8) & 0xffff8);
    }
    const CacheStats &s = sim.stats();
    ASSERT_GT(s.misses, 0u);
    ASSERT_GT(s.evictions, 0u);

    stats::Group root;
    exportCacheStats(root.group("l1"), s, 64);
    EXPECT_EQ(root.value("l1.accesses"), double(s.accesses));
    EXPECT_EQ(root.value("l1.misses"), double(s.misses));
    EXPECT_EQ(root.value("l1.hits"), double(s.accesses - s.misses));
    EXPECT_EQ(root.value("l1.cold_misses"), double(s.coldMisses));
    EXPECT_EQ(root.value("l1.evictions"), double(s.evictions));
    EXPECT_DOUBLE_EQ(root.value("l1.miss_rate"), s.missRate());
    EXPECT_EQ(root.value("l1.bytes_fetched"),
              double(s.misses) * 64.0);

    // Evictions lag misses by at most the cache's line count, and a
    // cache this small over this stream must have recycled lines.
    EXPECT_LE(s.evictions, s.misses);
    EXPECT_GE(s.evictions, s.misses - 1024 / 64);
}

TEST(StatsExport, LiveViewFollowsTheCounter)
{
    CacheSim sim({1024, 64, 1});
    stats::Group root;
    exportCacheStats(root.group("l1"), sim.stats(), 64);
    EXPECT_EQ(root.value("l1.accesses"), 0.0);
    sim.access(0);
    sim.access(64);
    EXPECT_EQ(root.value("l1.accesses"), 2.0);
    EXPECT_EQ(root.value("l1.misses"), 2.0);
}

TEST(StatsDistribution, PercentilesOnEmptyAndSingleSample)
{
    stats::Distribution d;
    EXPECT_EQ(d.percentile(0.5), 0.0);
    d.sample(42);
    // One sample: every quantile is that sample (clamped to min/max).
    EXPECT_EQ(d.percentile(0.0), 42.0);
    EXPECT_EQ(d.percentile(0.5), 42.0);
    EXPECT_EQ(d.percentile(1.0), 42.0);
}

TEST(StatsDistribution, PercentilesTrackTheSampleMass)
{
    // 100 samples of 1 and 1 sample of 1000: the median must sit in
    // the low bucket and p99+ must reach toward the outlier's bucket.
    stats::Distribution d;
    for (int i = 0; i < 100; ++i)
        d.sample(1);
    d.sample(1000);
    // All of the mass below p99 sits in bucket [1, 2); interpolation
    // within the bucket may return any value in it.
    EXPECT_GE(d.percentile(0.50), 1.0);
    EXPECT_LT(d.percentile(0.50), 2.0);
    EXPECT_GE(d.percentile(0.95), 1.0);
    EXPECT_LT(d.percentile(0.95), 2.0);
    double p99_5 = d.percentile(0.995);
    EXPECT_GE(p99_5, 512.0);  // the outlier's bucket is [512, 1024)
    EXPECT_LE(p99_5, 1000.0); // clamped at the observed max
}

TEST(StatsDistribution, PercentilesAreMonotoneAndBounded)
{
    stats::Distribution d;
    for (uint64_t v = 1; v <= 1024; ++v)
        d.sample(v);
    double prev = 0.0;
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
        double v = d.percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        EXPECT_GE(v, static_cast<double>(d.min()));
        EXPECT_LE(v, static_cast<double>(d.max()));
        prev = v;
    }
    // The uniform 1..1024 median lands in the right log2 bucket
    // (exactness is bounded by the histogram's bucket resolution).
    double p50 = d.percentile(0.5);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
}

TEST(StatsDistribution, PercentileGuardsNonFiniteP)
{
    stats::Distribution d;
    d.sample(10);
    d.sample(20);
    // A non-finite p (e.g. a rate formula that divided by zero
    // upstream) must clamp instead of poisoning the result with NaN.
    double nan = std::numeric_limits<double>::quiet_NaN();
    double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(d.percentile(nan), d.percentile(0.0));
    EXPECT_EQ(d.percentile(inf), d.percentile(1.0));
    EXPECT_EQ(d.percentile(-inf), d.percentile(0.0));
}

TEST(StatsFormula, NonFiniteEvaluationsReadAsZero)
{
    stats::Group root;
    uint64_t hits = 1, accesses = 0;
    // The classic dump-time hazard: a ratio whose denominator is
    // still zero. total() must never surface NaN/inf into JSON.
    root.formula("bad_rate", "", [&] {
        return double(hits) / double(accesses);
    });
    EXPECT_EQ(root.value("bad_rate"), 0.0);
    accesses = 4;
    EXPECT_DOUBLE_EQ(root.value("bad_rate"), 0.25);

    std::ostringstream os;
    root.dumpJson(os);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(StatsDistribution, SubtractCountsYieldsTheIntervalDelta)
{
    stats::Distribution earlier;
    earlier.sample(1);
    earlier.sample(100);

    stats::Distribution later = earlier; // copy, then keep sampling
    later.sample(3);
    later.sample(1000);

    stats::Distribution delta = later;
    delta.subtractCounts(earlier);
    EXPECT_EQ(delta.count(), 2u);
    EXPECT_EQ(delta.sum(), 1003u);
    EXPECT_EQ(delta.bucket(stats::Distribution::bucketOf(3)), 1u);
    EXPECT_EQ(delta.bucket(stats::Distribution::bucketOf(1000)), 1u);
    EXPECT_EQ(delta.bucket(stats::Distribution::bucketOf(1)), 0u);
    // min/max are the later reading's (documented approximation).
    EXPECT_EQ(delta.min(), 1u);
    EXPECT_EQ(delta.max(), 1000u);

    // Subtracting a distribution from itself is empty, not negative.
    stats::Distribution zero = later;
    zero.subtractCounts(later);
    EXPECT_EQ(zero.count(), 0u);
    EXPECT_EQ(zero.sum(), 0u);
    EXPECT_EQ(zero.min(), 0u);
    EXPECT_EQ(zero.max(), 0u);
}

namespace {

/** A small tree exercising all three snapshot kinds. */
void
buildTelemetryTree(stats::Group &root, stats::Scalar *&hits,
                   stats::Distribution *&lat)
{
    hits = &root.scalar("hits", "counter");
    root.formula("rate", "gauge", [] { return 0.5; });
    stats::Group &svc = root.group("svc");
    lat = &svc.distribution("latency_us", "histogram");
}

} // namespace

TEST(StatsSnapshot, CaptureFlattensKindsAndPaths)
{
    stats::Group root;
    stats::Scalar *hits;
    stats::Distribution *lat;
    buildTelemetryTree(root, hits, lat);
    *hits += 7;
    lat->sample(3);
    lat->sample(100);

    stats::Snapshot snap = stats::Snapshot::capture(root);
    const stats::Snapshot::Entry *h = snap.find("hits");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->kind, stats::Snapshot::Kind::Counter);
    EXPECT_EQ(h->value, 7.0);
    const stats::Snapshot::Entry *r = snap.find("rate");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->kind, stats::Snapshot::Kind::Gauge);
    EXPECT_EQ(r->value, 0.5);
    const stats::Snapshot::Entry *l = snap.find("svc.latency_us");
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->kind, stats::Snapshot::Kind::Dist);
    EXPECT_EQ(l->dist.count(), 2u);

    // The snapshot is frozen: later writes do not leak in.
    *hits += 100;
    lat->sample(5);
    EXPECT_EQ(snap.value("hits"), 7.0);
    EXPECT_EQ(snap.find("svc.latency_us")->dist.count(), 2u);
    EXPECT_EQ(snap.value("missing", -1.0), -1.0);
}

TEST(StatsSnapshot, DeltaSubtractsCountersKeepsGauges)
{
    stats::Group root;
    stats::Scalar *hits;
    stats::Distribution *lat;
    buildTelemetryTree(root, hits, lat);

    *hits += 10;
    lat->sample(4);
    stats::Snapshot t0 = stats::Snapshot::capture(root);
    *hits += 5;
    lat->sample(8);
    lat->sample(16);
    stats::Snapshot t1 = stats::Snapshot::capture(root);

    stats::Snapshot d = t1.deltaFrom(t0);
    EXPECT_EQ(d.value("hits"), 5.0);
    EXPECT_EQ(d.value("rate"), 0.5); // gauge: newer value, no subtract
    EXPECT_EQ(d.find("svc.latency_us")->dist.count(), 2u);
    EXPECT_EQ(d.find("svc.latency_us")->dist.sum(), 24u);

    // Synthetic entries absent from the earlier snapshot pass through.
    stats::Snapshot t2 = stats::Snapshot::capture(root);
    t2.counter("host.cycles", 1234.0);
    stats::Snapshot d2 = t2.deltaFrom(t0);
    EXPECT_EQ(d2.value("host.cycles"), 1234.0);
}

TEST(StatsSnapshot, RingEvictsOldestAndDumpsValidJson)
{
    stats::Group root;
    stats::Scalar &n = root.scalar("n", "");
    stats::SnapshotRing ring(3);
    for (int i = 1; i <= 5; ++i) {
        ++n;
        stats::Snapshot s = stats::Snapshot::capture(root);
        s.unixMs = i;
        ring.push(std::move(s));
    }
    EXPECT_EQ(ring.capacity(), 3u);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pushed(), 5u);
    // Oldest-first: pushes 3, 4, 5 survive.
    EXPECT_EQ(ring.at(0).value("n"), 3.0);
    EXPECT_EQ(ring.at(2).value("n"), 5.0);
    EXPECT_EQ(ring.at(0).unixMs, 3);

    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        ring.writeJson(w);
    }
    json::Value v;
    json::ParseError err;
    ASSERT_TRUE(json::parse(os.str(), v, err)) << err.message;
    EXPECT_EQ(v.find("schema")->str(), "texcache-snapshots-1");
    EXPECT_DOUBLE_EQ(v.find("pushed")->number(), 5.0);
    // Each retained snapshot carries counter deltas vs its
    // predecessor; n grows by exactly one per push.
    const json::Value *snaps = v.find("snapshots");
    ASSERT_NE(snaps, nullptr);
    ASSERT_EQ(snaps->size(), 3u);
    const json::Value *delta = snaps->at(1).find("delta");
    ASSERT_NE(delta, nullptr);
    EXPECT_DOUBLE_EQ(delta->find("n")->number(), 1.0);
}

TEST(StatsSnapshot, RingWraparoundKeepsDeltasAndReportsWindow)
{
    // Push far past capacity with a recognizable increment per step
    // (push i adds i, so n = i*(i+1)/2 after push i): every retained
    // delta must match its own step even after the ring has wrapped
    // several times over.
    stats::Group root;
    stats::Scalar &n = root.scalar("n", "");
    stats::SnapshotRing ring(4);
    for (int i = 1; i <= 11; ++i) {
        n += i;
        stats::Snapshot s = stats::Snapshot::capture(root);
        s.unixMs = i;
        ring.push(std::move(s));
    }
    ASSERT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushed(), 11u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).unixMs, int64_t(8 + i)) << i;
    // In-memory deltas across the wrapped window: push k added k.
    for (size_t i = 1; i < 4; ++i) {
        stats::Snapshot d = ring.at(i).deltaFrom(ring.at(i - 1));
        EXPECT_DOUBLE_EQ(d.value("n"), double(8 + i)) << i;
    }

    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        ring.writeJson(w);
    }
    json::Value v;
    json::ParseError err;
    ASSERT_TRUE(json::parse(os.str(), v, err)) << err.message;
    // The dump reports the true retained window, not just capacity.
    EXPECT_DOUBLE_EQ(v.find("pushed")->number(), 11.0);
    EXPECT_DOUBLE_EQ(v.find("retained")->number(), 4.0);
    EXPECT_DOUBLE_EQ(v.find("evicted")->number(), 7.0);
    const json::Value *snaps = v.find("snapshots");
    ASSERT_NE(snaps, nullptr);
    ASSERT_EQ(snaps->size(), 4u);
    // The oldest retained snapshot has no delta (its predecessor was
    // evicted); every later one deltas against its true neighbour.
    EXPECT_EQ(snaps->at(0).find("delta"), nullptr);
    for (size_t i = 1; i < 4; ++i) {
        const json::Value *d = snaps->at(i).find("delta");
        ASSERT_NE(d, nullptr) << i;
        EXPECT_DOUBLE_EQ(d->find("n")->number(), double(8 + i)) << i;
        EXPECT_DOUBLE_EQ(snaps->at(i).find("t_unix_ms")->number(),
                         double(8 + i))
            << i;
    }

    // A partially filled ring reports zero evictions.
    stats::SnapshotRing fresh(8);
    fresh.push(stats::Snapshot::capture(root));
    std::ostringstream os2;
    {
        JsonWriter w(os2, /*pretty=*/false);
        fresh.writeJson(w);
    }
    ASSERT_TRUE(json::parse(os2.str(), v, err)) << err.message;
    EXPECT_DOUBLE_EQ(v.find("retained")->number(), 1.0);
    EXPECT_DOUBLE_EQ(v.find("evicted")->number(), 0.0);
}

TEST(StatsPrometheus, MetricNameMangling)
{
    EXPECT_EQ(stats::promMetricName("svc.latency_us"),
              "svc_latency_us");
    EXPECT_EQ(stats::promMetricName("a-b c"), "a_b_c");
    EXPECT_EQ(stats::promMetricName("ok_name:x9"), "ok_name:x9");
}

TEST(StatsPrometheus, ExpositionShapeForAllKinds)
{
    stats::Group root;
    stats::Scalar *hits;
    stats::Distribution *lat;
    buildTelemetryTree(root, hits, lat);
    *hits += 3;
    lat->sample(0);
    lat->sample(5); // bucket [4, 8): le="7"
    lat->sample(1000);

    stats::Snapshot snap = stats::Snapshot::capture(root);
    std::string text = stats::expositionText(snap, "tc");

    EXPECT_NE(text.find("# TYPE tc_hits counter\ntc_hits 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE tc_rate gauge\ntc_rate 0.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE tc_svc_latency_us histogram"),
              std::string::npos);
    // Cumulative log2 buckets: le bounds are 2^k - 1, 0 for bucket 0.
    EXPECT_NE(text.find("tc_svc_latency_us_bucket{le=\"0\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("tc_svc_latency_us_bucket{le=\"7\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("tc_svc_latency_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("tc_svc_latency_us_sum 1005"),
              std::string::npos);
    EXPECT_NE(text.find("tc_svc_latency_us_count 3"),
              std::string::npos);
    // Companion percentile gauges ride along with the histogram.
    EXPECT_NE(text.find("tc_svc_latency_us_p50"), std::string::npos);
    EXPECT_NE(text.find("tc_svc_latency_us_p99"), std::string::npos);
    // Never NaN/inf anywhere in the exposition.
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("NaN"), std::string::npos);
}

TEST(StatsPrometheus, BucketCountsAreCumulative)
{
    stats::Distribution d;
    for (uint64_t v : {1ull, 2ull, 4ull, 8ull, 16ull})
        d.sample(v);
    stats::Group root;
    root.distribution("lat", "", d);
    std::string text = stats::expositionText(
        stats::Snapshot::capture(root), "tc");

    // Walk the bucket lines: counts never decrease and end at count.
    double prev = -1.0;
    size_t pos = 0;
    int buckets = 0;
    while ((pos = text.find("tc_lat_bucket{le=", pos)) !=
           std::string::npos) {
        size_t sp = text.find("} ", pos);
        ASSERT_NE(sp, std::string::npos);
        double v = std::stod(text.substr(sp + 2));
        EXPECT_GE(v, prev);
        prev = v;
        ++buckets;
        pos = sp;
    }
    EXPECT_GE(buckets, 5);
    EXPECT_EQ(prev, 5.0); // +Inf bucket == count
}
