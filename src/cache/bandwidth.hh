/**
 * @file
 * Memory bandwidth model (paper section 7.2).
 *
 * The machine model is a fragment generator running at 100 MHz that
 * reads four texels per cycle, i.e. 50 million trilinearly textured
 * fragments per second. A cache-less system fetches 4 bytes/texel *
 * 8 texels/fragment * 50M fragments/s = 1.5 GB/s from texture memory;
 * a cached system fetches (misses/access) * line bytes per texel access.
 */

#ifndef TEXCACHE_CACHE_BANDWIDTH_HH
#define TEXCACHE_CACHE_BANDWIDTH_HH

#include <cstdint>

namespace texcache {

/** Machine-model constants from section 7.1. */
struct MachineModel
{
    double clockHz = 100e6;          ///< fragment generator clock
    unsigned texelsPerCycle = 4;     ///< cache read ports
    unsigned texelsPerFragment = 8;  ///< trilinear interpolation
    unsigned bytesPerTexel = 4;      ///< RGBA8
    double memLatencyCycles = 50;    ///< 128B line fill (section 7.1.1)

    /** Peak textured fragments per second (50M in the paper). */
    double
    fragmentsPerSecond() const
    {
        return clockHz * texelsPerCycle / texelsPerFragment;
    }

    /** Texel accesses per second at peak. */
    double
    texelAccessesPerSecond() const
    {
        return fragmentsPerSecond() * texelsPerFragment;
    }

    /** Bandwidth of an uncached system in bytes/second (1.5 GB/s). */
    double
    uncachedBandwidth() const
    {
        return texelAccessesPerSecond() * bytesPerTexel;
    }

    /**
     * Bandwidth of a cached system in bytes/second, given the measured
     * miss rate (misses per texel access) and the line size.
     */
    double
    cachedBandwidth(double miss_rate, unsigned line_bytes) const
    {
        return texelAccessesPerSecond() * miss_rate * line_bytes;
    }

    /** Bandwidth-reduction factor of caching vs no cache. */
    double
    reductionFactor(double miss_rate, unsigned line_bytes) const
    {
        double c = cachedBandwidth(miss_rate, line_bytes);
        return c > 0.0 ? uncachedBandwidth() / c : 0.0;
    }
};

} // namespace texcache

#endif // TEXCACHE_CACHE_BANDWIDTH_HH
