#include "core/experiment.hh"

namespace texcache {

const Scene &
TraceStore::scene(BenchScene s)
{
    int key = static_cast<int>(s);
    auto it = scenes_.find(key);
    if (it == scenes_.end()) {
        inform("building scene ", benchSceneName(s));
        it = scenes_.emplace(key, makeScene(s)).first;
    }
    return it->second;
}

const RenderOutput &
TraceStore::output(BenchScene s, const RasterOrder &order)
{
    auto key = std::make_pair(static_cast<int>(s), order.str());
    auto it = outputs_.find(key);
    if (it == outputs_.end()) {
        const Scene &sc = scene(s);
        inform("rendering ", benchSceneName(s), " (", order.str(), ")");
        RenderOptions opts;
        opts.writeFramebuffer = false; // figures need traces only
        it = outputs_.emplace(key, render(sc, order, opts)).first;
    }
    return it->second;
}

StackDistProfiler
profileTrace(const TexelTrace &trace, const SceneLayout &layout,
             unsigned line_bytes)
{
    StackDistProfiler prof(line_bytes);
    layout.forEachAddress(trace, [&](Addr a) { prof.access(a); });
    return prof;
}

CacheStats
runCache(const TexelTrace &trace, const SceneLayout &layout,
         const CacheConfig &config)
{
    if (config.assoc == CacheConfig::kFullyAssoc) {
        FullyAssocLru cache(config.sizeBytes, config.lineBytes);
        layout.forEachAddress(trace, [&](Addr a) { cache.access(a); });
        return cache.stats();
    }
    CacheSim cache(config);
    layout.forEachAddress(trace, [&](Addr a) { cache.access(a); });
    return cache.stats();
}

MissBreakdown
classifyCache(const TexelTrace &trace, const SceneLayout &layout,
              const CacheConfig &config)
{
    MissClassifier cls(config);
    layout.forEachAddress(trace, [&](Addr a) { cls.access(a); });
    return cls.breakdown();
}

std::vector<uint64_t>
cacheSizeSweep(uint64_t lo, uint64_t hi)
{
    std::vector<uint64_t> sizes;
    for (uint64_t s = lo; s <= hi; s <<= 1)
        sizes.push_back(s);
    return sizes;
}

uint64_t
firstWorkingSet(const StackDistProfiler &prof,
                const std::vector<uint64_t> &sizes, double capture)
{
    panic_if(sizes.empty(), "empty size sweep");
    // The first significant working set is where the steep part of the
    // miss-rate curve ends: the smallest size capturing at least
    // `capture` of the achievable miss-rate reduction between the
    // smallest and largest swept caches (section 5.2.3).
    double top = prof.missRate(sizes.front());
    double floor_rate = prof.missRate(sizes.back());
    double threshold = top - capture * (top - floor_rate);
    for (uint64_t s : sizes) {
        if (prof.missRate(s) <= threshold)
            return s;
    }
    return sizes.back();
}

} // namespace texcache
