/** @file
 * Tests for the GL command layer: primitive assembly, state handling,
 * recording, serialization and replay equivalence.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "gl/command_stream.hh"
#include "gl/gl_context.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

using namespace texcache;

namespace {

/** Bind a fresh 8x8 texture so drawing is legal. */
GlTexture
setupTexture(GlApi &gl, uint8_t red = 99)
{
    GlTexture t = gl.genTexture();
    gl.bindTexture(t);
    gl.texImage2D(Image(8, 8, Rgba8{red, 0, 0, 255}));
    return t;
}

} // namespace

TEST(GlContext, TrianglesAssembleInTriples)
{
    GlContext gl;
    gl.viewport(64, 64);
    setupTexture(gl);
    gl.begin(GlPrimitive::Triangles);
    for (int i = 0; i < 6; ++i) {
        gl.texCoord(i * 0.1f, 0.0f);
        gl.vertex(static_cast<float>(i), 0.0f, 0.0f);
    }
    gl.end();
    ASSERT_EQ(gl.scene().triangles.size(), 2u);
    EXPECT_FLOAT_EQ(gl.scene().triangles[1].v[0].pos.x, 3.0f);
    EXPECT_FLOAT_EQ(gl.scene().triangles[1].v[0].uv.x, 0.3f);
}

TEST(GlContext, StripSharesVerticesWithAlternatingWinding)
{
    GlContext gl;
    setupTexture(gl);
    gl.begin(GlPrimitive::TriangleStrip);
    // A quad strip: 4 vertices -> 2 triangles.
    gl.vertex(0, 0, 0);
    gl.vertex(1, 0, 0);
    gl.vertex(0, 1, 0);
    gl.vertex(1, 1, 0);
    gl.end();
    ASSERT_EQ(gl.scene().triangles.size(), 2u);
    const SceneTriangle &t0 = gl.scene().triangles[0];
    const SceneTriangle &t1 = gl.scene().triangles[1];
    // First: v0 v1 v2; second (even) swaps to keep winding: v2 v1 v3.
    EXPECT_FLOAT_EQ(t0.v[0].pos.x, 0.0f);
    EXPECT_FLOAT_EQ(t0.v[2].pos.y, 1.0f);
    EXPECT_FLOAT_EQ(t1.v[0].pos.y, 1.0f); // v2
    EXPECT_FLOAT_EQ(t1.v[1].pos.x, 1.0f); // v1
    EXPECT_FLOAT_EQ(t1.v[2].pos.y, 1.0f); // v3
}

TEST(GlContext, FanPivotsOnFirstVertex)
{
    GlContext gl;
    setupTexture(gl);
    gl.begin(GlPrimitive::TriangleFan);
    gl.vertex(9, 9, 0); // pivot
    for (int i = 0; i < 4; ++i)
        gl.vertex(static_cast<float>(i), 0, 0);
    gl.end();
    ASSERT_EQ(gl.scene().triangles.size(), 3u);
    for (const SceneTriangle &t : gl.scene().triangles)
        EXPECT_FLOAT_EQ(t.v[0].pos.x, 9.0f);
}

TEST(GlContext, AttributesLatchLikeGl)
{
    GlContext gl;
    setupTexture(gl);
    gl.begin(GlPrimitive::Triangles);
    gl.shade(0.5f);
    gl.texCoord(0.25f, 0.75f);
    gl.vertex(0, 0, 0); // captures shade 0.5, uv (.25,.75)
    gl.vertex(1, 0, 0); // same latched attributes
    gl.shade(1.0f);
    gl.vertex(0, 1, 0); // new shade, old uv
    gl.end();
    const SceneTriangle &t = gl.scene().triangles[0];
    EXPECT_FLOAT_EQ(t.v[1].shade, 0.5f);
    EXPECT_FLOAT_EQ(t.v[1].uv.y, 0.75f);
    EXPECT_FLOAT_EQ(t.v[2].shade, 1.0f);
    EXPECT_FLOAT_EQ(t.v[2].uv.x, 0.25f);
}

TEST(GlContext, MisuseIsFatal)
{
    {
        GlContext gl;
        EXPECT_EXIT(gl.bindTexture(0), ::testing::ExitedWithCode(1),
                    "name 0");
    }
    {
        GlContext gl;
        EXPECT_EXIT(gl.bindTexture(7), ::testing::ExitedWithCode(1),
                    "never generated");
    }
    {
        GlContext gl;
        EXPECT_EXIT(gl.begin(GlPrimitive::Triangles),
                    ::testing::ExitedWithCode(1), "bound texture");
    }
    {
        GlContext gl;
        setupTexture(gl);
        gl.begin(GlPrimitive::Triangles);
        gl.vertex(0, 0, 0);
        EXPECT_EXIT(gl.end(), ::testing::ExitedWithCode(1),
                    "multiple of 3");
    }
    {
        GlContext gl;
        EXPECT_EXIT(gl.vertex(0, 0, 0), ::testing::ExitedWithCode(1),
                    "outside begin/end");
    }
}

TEST(GlContext, TexImageRedefinitionReplacesPyramid)
{
    GlContext gl;
    GlTexture t = setupTexture(gl, 10);
    gl.bindTexture(t);
    gl.texImage2D(Image(16, 16, Rgba8{200, 0, 0, 255}));
    ASSERT_EQ(gl.scene().textures.size(), 1u);
    EXPECT_EQ(gl.scene().textures[0].width(0), 16u);
    EXPECT_EQ(gl.scene().textures[0].level(0).at(0, 0).r, 200);
}

TEST(GlRecorder, RecordsAndForwards)
{
    GlContext live;
    GlRecorder rec(&live);
    setupTexture(rec);
    rec.begin(GlPrimitive::Triangles);
    rec.vertex(0, 0, 0);
    rec.vertex(1, 0, 0);
    rec.vertex(0, 1, 0);
    rec.end();
    EXPECT_EQ(live.scene().triangles.size(), 1u);
    // gen, bind, texImage, begin, 3x vertex, end = 8 commands.
    EXPECT_EQ(rec.stream().size(), 8u);
}

TEST(GlStream, ReplayRebuildsTheSameScene)
{
    // Record a small scene, replay into a fresh context, compare the
    // assembled scenes structurally.
    GlRecorder rec;
    rec.viewport(128, 128);
    rec.loadProjection(Mat4::perspective(1.0f, 1.0f, 0.1f, 10.0f));
    rec.loadModelView(Mat4::lookAt({0, 0, 2}, {0, 0, 0}, {0, 1, 0}));
    setupTexture(rec, 42);
    rec.begin(GlPrimitive::TriangleStrip);
    for (int i = 0; i < 5; ++i) {
        rec.texCoord(i * 0.2f, 0.1f);
        rec.vertex(static_cast<float>(i % 2), i * 0.5f, 0.0f);
    }
    rec.end();

    GlContext replayed;
    playCommands(rec.stream(), replayed);
    const Scene &s = replayed.scene();
    EXPECT_EQ(s.screenW, 128u);
    EXPECT_EQ(s.textures.size(), 1u);
    EXPECT_EQ(s.triangles.size(), 3u);
    EXPECT_EQ(s.textures[0].level(0).at(0, 0).r, 42);
}

TEST(GlStream, FileRoundTrip)
{
    GlRecorder rec;
    rec.viewport(64, 32);
    rec.loadModelView(Mat4::translate({1, 2, 3}));
    setupTexture(rec, 7);
    rec.begin(GlPrimitive::Triangles);
    rec.texCoord(0.5f, 0.25f);
    rec.shade(0.8f);
    rec.vertex(1, 2, 3);
    rec.vertex(4, 5, 6);
    rec.vertex(7, 8, 9);
    rec.end();

    std::string path = ::testing::TempDir() + "/gl_roundtrip.gltrc";
    writeGlTrace(rec.stream(), path);
    GlCommandStream back = readGlTrace(path);
    ASSERT_EQ(back.size(), rec.stream().size());

    GlContext replayed;
    playCommands(back, replayed);
    const Scene &s = replayed.scene();
    EXPECT_EQ(s.screenW, 64u);
    ASSERT_EQ(s.triangles.size(), 1u);
    EXPECT_FLOAT_EQ(s.triangles[0].v[2].pos.z, 9.0f);
    EXPECT_FLOAT_EQ(s.triangles[0].v[0].uv.x, 0.5f);
    EXPECT_FLOAT_EQ(s.triangles[0].v[0].shade, 0.8f);
    EXPECT_EQ(s.textures[0].level(0).at(3, 3).r, 7);
    std::remove(path.c_str());
}

TEST(GlStream, BadFileIsFatal)
{
    EXPECT_EXIT(readGlTrace(::testing::TempDir() + "/nope.gltrc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(GlStream, EmitSceneRoundTripsTexelTrace)
{
    // The full equivalence the paper's methodology needs: a scene
    // issued through the GL layer, recorded, replayed and re-rendered
    // must produce the *identical* texel trace as direct rendering.
    Scene direct = makeQuadTestScene(64, 96, 1.5f);

    GlRecorder rec;
    emitScene(direct, rec);

    GlContext ctx;
    playCommands(rec.stream(), ctx);
    Scene rebuilt = ctx.takeScene();
    rebuilt.name = direct.name;

    RenderOptions opts;
    opts.writeFramebuffer = false;
    RenderOutput a = render(direct, RasterOrder::horizontal(), opts);
    RenderOutput b = render(rebuilt, RasterOrder::horizontal(), opts);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); i += 101)
        ASSERT_EQ(a.trace[i].pack(), b.trace[i].pack()) << i;
    EXPECT_EQ(a.stats.fragments, b.stats.fragments);
}

TEST(GlStream, EmitSceneBatchesByTextureRuns)
{
    Scene s = makeQuadTestScene(32, 32);
    // Duplicate the quad with a second texture to force two runs.
    s.textures.emplace_back(Image(16, 16, Rgba8{1, 2, 3, 255}));
    SceneTriangle t = s.triangles[0];
    t.texture = 1;
    s.triangles.push_back(t);

    GlRecorder rec;
    emitScene(s, rec);
    unsigned begins = 0;
    for (const GlCommand &c : rec.stream())
        begins += c.op == GlOp::Begin;
    EXPECT_EQ(begins, 2u);
}
