/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Backs every machine-readable artifact the harness emits - the stats
 * tree (stats/stats.hh), bench run manifests (core/run_manifest.hh) -
 * so they all share one escaping/formatting implementation. The writer
 * is strictly streaming: begin/end calls must nest correctly (panics
 * otherwise), commas and indentation are inserted automatically, and
 * doubles are printed with the shortest round-trippable representation.
 */

#ifndef TEXCACHE_COMMON_JSON_HH
#define TEXCACHE_COMMON_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace texcache {

/** Streaming JSON emitter with automatic commas and 2-space indent. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true)
        : os_(os), pretty_(pretty)
    {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Member key; must be inside an object, and precede its value. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(bool v);
    void value(double v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(unsigned v) { value(static_cast<uint64_t>(v)); }

    /** Pre-rendered JSON token (e.g. a number), emitted verbatim. */
    void rawValue(std::string_view v);

    /** key(k) followed by value(v). */
    template <typename T>
    void
    kv(std::string_view k, T &&v)
    {
        key(k);
        value(std::forward<T>(v));
    }

    /** All containers closed? (sanity check before destruction). */
    bool done() const { return frames_.empty(); }

  private:
    enum class Frame : uint8_t { Object, Array };

    /** Comma/newline/indent bookkeeping before a key or bare value. */
    void preValue(bool is_key);
    void writeEscaped(std::string_view s);

    std::ostream &os_;
    bool pretty_;
    std::vector<Frame> frames_;
    std::vector<bool> firstInFrame_;
    bool keyPending_ = false;
};

} // namespace texcache

#endif // TEXCACHE_COMMON_JSON_HH
