/**
 * @file
 * Scene description consumed by the software pipeline: textured
 * triangles in submission order, a camera, and mip-mapped textures.
 *
 * Triangles are rendered in exactly the order they appear (the paper
 * notes the triangles are rasterized in the order specified in the
 * input, which its runlength measurements depend on).
 */

#ifndef TEXCACHE_PIPELINE_SCENE_TYPES_HH
#define TEXCACHE_PIPELINE_SCENE_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "geom/mat4.hh"
#include "geom/vec.hh"
#include "texture/mipmap.hh"

namespace texcache {

/** A vertex with object-space position and texture coordinates. */
struct SceneVertex
{
    Vec3 pos;
    Vec2 uv;     ///< may exceed [0,1]; wraps via GL_REPEAT
    float shade = 1.0f; ///< precomputed scalar lighting
};

/** One textured triangle. */
struct SceneTriangle
{
    SceneVertex v[3];
    uint16_t texture = 0; ///< index into Scene::textures
};

/** A complete single-frame benchmark scene. */
struct Scene
{
    std::string name;
    unsigned screenW = 640;
    unsigned screenH = 480;
    Mat4 view = Mat4::identity();
    Mat4 proj = Mat4::identity();
    std::vector<MipMap> textures;
    std::vector<SceneTriangle> triangles;

    /** Total mip-mapped texture storage in bytes (Table 4.1 column). */
    uint64_t
    textureStorageBytes() const
    {
        uint64_t total = 0;
        for (const MipMap &m : textures)
            total += m.storageBytes();
        return total;
    }
};

} // namespace texcache

#endif // TEXCACHE_PIPELINE_SCENE_TYPES_HH
