/**
 * @file
 * Stats-tree exports for the cache layer (stats/stats.hh).
 *
 * Each export registers dump-time views - formulas reading the live
 * legacy counters - under a caller-provided group, the gem5 regStats
 * pattern: hot paths keep their plain uint64_t counters, the tree
 * materializes numbers only when dumped. The counter source must
 * outlive every dump of the group.
 */

#ifndef TEXCACHE_CACHE_STATS_EXPORT_HH
#define TEXCACHE_CACHE_STATS_EXPORT_HH

#include "cache/cache_sim.hh"
#include "cache/hierarchy.hh"
#include "cache/three_c.hh"
#include "stats/stats.hh"

namespace texcache {

/**
 * Register one cache's hit/miss/eviction counters plus derived rate
 * and bandwidth formulas under @p g. @p line_bytes sizes the
 * bytes_fetched formula (the cache's configured line size).
 */
void exportCacheStats(stats::Group &g, const CacheStats &s,
                      unsigned line_bytes);

/** Register a 3-C miss classification (cold/capacity/conflict). */
void exportMissBreakdown(stats::Group &g, const MissBreakdown &b);

/**
 * Register a two-level hierarchy: per-L1 subgroups ("l1.<i>.misses"),
 * aggregate L1 formulas, the shared L2 and memory-side bandwidth.
 */
void exportHierarchyStats(stats::Group &g, const TwoLevelCache &h);

} // namespace texcache

#endif // TEXCACHE_CACHE_STATS_EXPORT_HH
