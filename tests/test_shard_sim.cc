/**
 * @file
 * Exactness tests for the sharded replay engine: set-partitioned
 * CacheSim shards and time-partitioned stack-distance passes must
 * merge to byte-identical statistics against the serial simulators,
 * for every organization and shard count - that is the whole contract
 * (cache/shard_sim.hh, core/shard_replay.hh).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "cache/cache_sim.hh"
#include "cache/shard_sim.hh"
#include "cache/stack_dist.hh"
#include "cache/three_c.hh"
#include "common/rng.hh"
#include "core/experiment.hh"
#include "core/scene_layout.hh"
#include "core/shard_replay.hh"
#include "trace/chunked_trace.hh"
#include "trace/trace_source.hh"

using namespace texcache;

namespace {

/** A reuse-heavy synthetic address stream: random walk over a bounded
 *  footprint plus periodic returns to a hot region, so every stack
 *  distance band and both hit paths get exercised. */
std::vector<Addr>
syntheticStream(uint32_t seed, size_t n, uint64_t footprint)
{
    Rng rng(seed);
    std::vector<Addr> a;
    a.reserve(n);
    uint64_t cur = 0;
    for (size_t i = 0; i < n; ++i) {
        if (rng.below(8) == 0)
            cur = rng.below(256) * 4; // hot region revisit
        else
            cur = (cur + rng.below(2048)) % footprint;
        a.push_back(cur);
    }
    return a;
}

void
expectStatsEq(const CacheStats &got, const CacheStats &want,
              const std::string &what)
{
    EXPECT_EQ(got.accesses, want.accesses) << what;
    EXPECT_EQ(got.misses, want.misses) << what;
    EXPECT_EQ(got.coldMisses, want.coldMisses) << what;
    EXPECT_EQ(got.evictions, want.evictions) << what;
}

/** Histogram equality modulo trailing zeros (merged histograms may be
 *  sized differently than the serial profiler's). */
void
expectHistEq(const std::vector<uint64_t> &got,
             const std::vector<uint64_t> &want)
{
    size_t n = std::max(got.size(), want.size());
    for (size_t d = 0; d < n; ++d) {
        uint64_t g = d < got.size() ? got[d] : 0;
        uint64_t w = d < want.size() ? want[d] : 0;
        EXPECT_EQ(g, w) << "histogram bin " << d;
    }
}

/** Run the time-partitioned pass over @p cuts-defined segments and
 *  merge. Segments are replayed in order, as the sharded runner's
 *  merge step does. */
ShardedStackProfile
segmentedProfile(const std::vector<Addr> &a, unsigned line_bytes,
                 const std::vector<size_t> &cuts)
{
    std::vector<StackShardPass> passes;
    size_t begin = 0;
    for (size_t cut : cuts) {
        StackSegmentPass pass(line_bytes);
        pass.accessRange(a.data() + begin, cut - begin);
        passes.push_back(pass.finish());
        begin = cut;
    }
    StackSegmentPass last(line_bytes);
    last.accessRange(a.data() + begin, a.size() - begin);
    passes.push_back(last.finish());
    return mergeStackShards(passes, line_bytes);
}

std::vector<size_t>
evenCuts(size_t n, unsigned segs)
{
    std::vector<size_t> cuts;
    for (unsigned s = 1; s < segs; ++s)
        cuts.push_back(n * s / segs);
    return cuts;
}

} // namespace

// ---- Set partitioning ----------------------------------------------

TEST(SetShard, MergesExactlyAcrossConfigsAndShardCounts)
{
    std::vector<Addr> a = syntheticStream(7, 60000, 1 << 18);
    std::vector<CacheConfig> configs;
    Rng rng(11);
    const uint64_t sizes[] = {8 << 10, 16 << 10, 32 << 10, 64 << 10};
    const unsigned lines[] = {16, 32, 64};
    const unsigned assocs[] = {1, 2, 4, 8, CacheConfig::kFullyAssoc};
    for (int i = 0; i < 8; ++i)
        configs.push_back({sizes[rng.below(4)], lines[rng.below(3)],
                           assocs[rng.below(5)]});

    std::vector<CacheStats> serial;
    for (const CacheConfig &c : configs) {
        CacheSim sim(c);
        for (Addr addr : a)
            sim.access(addr);
        serial.push_back(sim.stats());
    }

    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        std::vector<std::vector<CacheStats>> per;
        for (unsigned s = 0; s < shards; ++s) {
            SetShardSim shard(configs, s, shards);
            shard.accessRange(a.data(), a.size());
            per.push_back(shard.stats());
        }
        std::vector<CacheStats> merged = mergeShardStats(per);
        ASSERT_EQ(merged.size(), configs.size());
        for (size_t i = 0; i < configs.size(); ++i)
            expectStatsEq(merged[i], serial[i],
                          configs[i].str() + " @" +
                              std::to_string(shards) + " shards");
    }
}

TEST(SetShard, EveryAccessLandsOnExactlyOneShard)
{
    std::vector<Addr> a = syntheticStream(3, 20000, 1 << 16);
    std::vector<CacheConfig> configs{{16 << 10, 32, 2}};
    for (unsigned shards : {2u, 4u, 8u}) {
        uint64_t total = 0;
        for (unsigned s = 0; s < shards; ++s) {
            SetShardSim shard(configs, s, shards);
            shard.accessRange(a.data(), a.size());
            total += shard.stats()[0].accesses;
        }
        EXPECT_EQ(total, a.size()) << shards << " shards";
    }
}

// ---- Time partitioning ---------------------------------------------

TEST(StackShard, SegmentedProfileMatchesSerial)
{
    std::vector<Addr> a = syntheticStream(19, 50000, 1 << 17);
    StackDistProfiler serial(32);
    for (Addr addr : a)
        serial.access(addr);

    for (unsigned segs : {1u, 2u, 3u, 4u, 7u, 8u}) {
        ShardedStackProfile merged =
            segmentedProfile(a, 32, evenCuts(a.size(), segs));
        EXPECT_EQ(merged.accesses, serial.accesses()) << segs;
        EXPECT_EQ(merged.cold, serial.coldMisses()) << segs;
        expectHistEq(merged.histogram(), serial.histogram());
        for (uint64_t size = 32; size <= (1 << 18); size <<= 1)
            EXPECT_EQ(merged.misses(size), serial.misses(size))
                << segs << " segments @" << size << "B";
    }
}

TEST(StackShard, SkewedCutsMatchSerial)
{
    // Pathological partitions: a 1-access segment, an empty-adjacent
    // cut, and a giant tail must all reconcile exactly.
    std::vector<Addr> a = syntheticStream(23, 9000, 1 << 14);
    StackDistProfiler serial(64);
    for (Addr addr : a)
        serial.access(addr);
    ShardedStackProfile merged =
        segmentedProfile(a, 64, {1, 2, 17, 8000});
    EXPECT_EQ(merged.accesses, serial.accesses());
    EXPECT_EQ(merged.cold, serial.coldMisses());
    expectHistEq(merged.histogram(), serial.histogram());
}

TEST(StackShard, CyclicTopKPatternAcrossBoundaries)
{
    // <= 8 distinct lines cycles stay entirely inside the profiler's
    // top-K fast path; a boundary mid-cycle is the adversarial case
    // for finish()'s stack reconstruction (the map entries of top
    // lines are stale by design).
    std::vector<Addr> a;
    for (int rep = 0; rep < 400; ++rep)
        for (uint64_t line = 0; line < 7; ++line)
            a.push_back(line * 32);
    // Shift phase so segment boundaries never align with cycles.
    for (int rep = 0; rep < 100; ++rep)
        for (uint64_t line = 7; line-- > 2;)
            a.push_back(line * 32);

    StackDistProfiler serial(32);
    for (Addr addr : a)
        serial.access(addr);
    for (unsigned segs : {2u, 3u, 5u}) {
        ShardedStackProfile merged =
            segmentedProfile(a, 32, evenCuts(a.size(), segs));
        EXPECT_EQ(merged.cold, serial.coldMisses()) << segs;
        expectHistEq(merged.histogram(), serial.histogram());
    }
}

TEST(StackShard, OracleDistancesAreGlobal)
{
    LruStackOracle o;
    EXPECT_EQ(o.touch(1), 0u); // cold
    EXPECT_EQ(o.touch(2), 0u); // cold; stack: 2,1
    EXPECT_EQ(o.touch(1), 2u); // stack: 1,2
    EXPECT_EQ(o.touch(2), 2u); // stack: 2,1
    o.promote(1);              // stack: 1,2
    EXPECT_EQ(o.touch(2), 2u);
    EXPECT_EQ(o.touch(2), 1u);
    EXPECT_EQ(o.lines(), 2u);
}

TEST(StackShard, OraclePromoteOfAbsentLineDies)
{
    LruStackOracle o;
    o.touch(1);
    EXPECT_DEATH(o.promote(99), "absent");
}

// ---- Core runners over rendered traces -----------------------------

namespace {

struct Fixture
{
    SceneSpec spec = SceneSpec::quadScene(64, 128, 2.0f);
    RasterOrder order = RasterOrder::horizontal();
    TraceStore store;
    Scene scene = spec.build();
    SceneLayout layout;
    const TexelTrace &trace;

    Fixture()
        : layout(scene,
                 [] {
                     LayoutParams p;
                     p.kind = LayoutKind::Nonblocked;
                     return p;
                 }()),
          trace(store.trace(spec, order))
    {}
};

Fixture &
fix()
{
    static Fixture f;
    return f;
}

std::vector<CacheConfig>
testConfigs()
{
    return {{8 << 10, 32, 1},
            {8 << 10, 32, CacheConfig::kFullyAssoc},
            {16 << 10, 64, 4},
            {32 << 10, 32, 2},
            {32 << 10, 64, CacheConfig::kFullyAssoc}};
}

} // namespace

TEST(ShardReplay, SweepAndGroupMatchSerial)
{
    Fixture &f = fix();
    std::vector<CacheConfig> configs = testConfigs();
    std::vector<CacheStats> sweepSerial =
        runCacheSweep(f.trace, f.layout, configs);
    std::vector<CacheStats> groupSerial =
        runCacheGroup(f.trace, f.layout, configs);

    MemoryTraceSource mem(f.trace);
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        std::vector<CacheStats> sweep =
            runCacheSweepSharded(mem, f.layout, configs, shards);
        std::vector<CacheStats> group =
            runCacheGroupSharded(mem, f.layout, configs, shards);
        for (size_t i = 0; i < configs.size(); ++i) {
            expectStatsEq(sweep[i], sweepSerial[i],
                          "sweep " + configs[i].str());
            expectStatsEq(group[i], groupSerial[i],
                          "group " + configs[i].str());
        }
    }
}

TEST(ShardReplay, SingleReplayDerivesFaEvictions)
{
    Fixture &f = fix();
    MemoryTraceSource mem(f.trace);
    // The FA single-replay path goes through the stack profiler and
    // *derives* evictions; serial runCache counts them in an explicit
    // FA LRU cache. They must agree - including the eviction count.
    CacheConfig fa{8 << 10, 32, CacheConfig::kFullyAssoc};
    CacheStats serial = runCache(f.trace, f.layout, fa);
    ASSERT_GT(serial.evictions, 0u);
    expectStatsEq(runCacheSharded(mem, f.layout, fa, 4), serial,
                  "fa single");
    CacheConfig sa{16 << 10, 32, 2};
    expectStatsEq(runCacheSharded(mem, f.layout, sa, 4),
                  runCache(f.trace, f.layout, sa), "sa single");
}

TEST(ShardReplay, ClassificationMatchesSerial)
{
    Fixture &f = fix();
    MemoryTraceSource mem(f.trace);
    CacheConfig c{16 << 10, 32, 2};
    MissBreakdown want = classifyCache(f.trace, f.layout, c);
    MissBreakdown got = classifySharded(mem, f.layout, c, 4);
    EXPECT_EQ(got.accesses, want.accesses);
    EXPECT_EQ(got.misses, want.misses);
    EXPECT_EQ(got.cold, want.cold);
    EXPECT_EQ(got.capacity, want.capacity);
    EXPECT_EQ(got.conflict, want.conflict);
}

TEST(ShardReplay, ProfileMatchesSerialAtAllSizes)
{
    Fixture &f = fix();
    MemoryTraceSource mem(f.trace);
    StackDistProfiler serial = profileTrace(f.trace, f.layout, 32);
    ShardedStackProfile merged =
        profileTraceSharded(mem, f.layout, 32, 4);
    EXPECT_EQ(merged.accesses, serial.accesses());
    EXPECT_EQ(merged.cold, serial.coldMisses());
    for (uint64_t size : cacheSizeSweep(1 << 10, 1 << 20))
        EXPECT_EQ(merged.misses(size), serial.misses(size))
            << size << "B";
}

TEST(ShardReplay, FaSweepMatchesProfiler)
{
    Fixture &f = fix();
    MemoryTraceSource mem(f.trace);
    std::vector<uint64_t> sizes = cacheSizeSweep(4 << 10, 256 << 10);
    std::vector<CacheStats> sharded =
        runFaSweepSharded(mem, f.layout, 32, sizes, 3);
    StackDistProfiler serial = profileTrace(f.trace, f.layout, 32);
    ASSERT_EQ(sharded.size(), sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_EQ(sharded[i].accesses, serial.accesses());
        EXPECT_EQ(sharded[i].misses, serial.misses(sizes[i]));
        EXPECT_EQ(sharded[i].coldMisses, serial.coldMisses());
        // The collapsed sweep does not model evictions (multi_sim's
        // FaCapacitySweep contract) - sharded must match that too.
        EXPECT_EQ(sharded[i].evictions, 0u);
    }
}

TEST(ShardReplay, FileSourceMatchesMemorySource)
{
    Fixture &f = fix();
    std::string dir = ::testing::TempDir() + "texcache-shard-replay";
    std::filesystem::create_directories(dir);
    std::string path = f.store.spillTrace(f.spec, f.order, dir);

    // The spilled stream is byte-identical to the materialized trace.
    ChunkedTraceFile cf = ChunkedTraceFile::mustOpen(path);
    TexelTrace back = cf.readAll();
    ASSERT_EQ(back.size(), f.trace.size());
    EXPECT_TRUE(back.packed() == f.trace.packed());

    FileTraceSource file(path);
    MemoryTraceSource mem(f.trace);
    std::vector<CacheConfig> configs = testConfigs();
    std::vector<CacheStats> fromFile =
        runCacheGroupSharded(file, f.layout, configs, 3);
    std::vector<CacheStats> fromMem =
        runCacheGroupSharded(mem, f.layout, configs, 3);
    for (size_t i = 0; i < configs.size(); ++i)
        expectStatsEq(fromFile[i], fromMem[i], configs[i].str());
    std::filesystem::remove_all(dir);
}

TEST(ShardReplay, FrameReplicationMatchesConcatenation)
{
    Fixture &f = fix();
    TexelTrace three;
    three.reserve(f.trace.size() * 3);
    for (int i = 0; i < 3; ++i)
        three.appendPacked(f.trace.packed().data(), f.trace.size());

    MemoryTraceSource replicated(f.trace, 3);
    EXPECT_EQ(replicated.records(), three.size());
    std::vector<CacheConfig> configs = testConfigs();
    std::vector<CacheStats> serial =
        runCacheGroup(three, f.layout, configs);
    std::vector<CacheStats> sharded =
        runCacheGroupSharded(replicated, f.layout, configs, 4);
    for (size_t i = 0; i < configs.size(); ++i)
        expectStatsEq(sharded[i], serial[i], configs[i].str());

    // And the FA profile over the replicated stream.
    StackDistProfiler serialProf = profileTrace(three, f.layout, 32);
    ShardedStackProfile prof =
        profileTraceSharded(replicated, f.layout, 32, 4);
    EXPECT_EQ(prof.accesses, serialProf.accesses());
    EXPECT_EQ(prof.cold, serialProf.coldMisses());
    for (uint64_t size : cacheSizeSweep(1 << 10, 1 << 19))
        EXPECT_EQ(prof.misses(size), serialProf.misses(size));
}

TEST(ShardReplay, ResolveShardsDefaultsToThreadCount)
{
    EXPECT_EQ(resolveShards(0), Sweep::threadCount());
    EXPECT_EQ(resolveShards(5), 5u);
}
