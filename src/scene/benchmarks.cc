#include <cmath>

#include "scene/benchmarks.hh"

#include "img/procedural.hh"
#include "scene/mesh_util.hh"

namespace texcache {

std::vector<BenchScene>
allBenchScenes()
{
    return {BenchScene::Flight, BenchScene::Town, BenchScene::Guitar,
            BenchScene::Goblet};
}

const char *
benchSceneName(BenchScene s)
{
    switch (s) {
      case BenchScene::Flight:
        return "Flight";
      case BenchScene::Town:
        return "Town";
      case BenchScene::Guitar:
        return "Guitar";
      case BenchScene::Goblet:
        return "Goblet";
    }
    panic("unknown scene");
}

ScanDirection
paperScanDirection(BenchScene s)
{
    // Section 5.2.3: Town is reported with vertical rasterization (its
    // worst case); the other scenes with horizontal.
    return s == BenchScene::Town ? ScanDirection::Vertical
                                 : ScanDirection::Horizontal;
}

Scene
makeScene(BenchScene s)
{
    switch (s) {
      case BenchScene::Flight:
        return makeFlightScene();
      case BenchScene::Town:
        return makeTownScene();
      case BenchScene::Guitar:
        return makeGuitarScene();
      case BenchScene::Goblet:
        return makeGobletScene();
    }
    panic("unknown scene");
}

Scene
makeQuadTestScene(unsigned tex_size, unsigned screen, float uv_repeat)
{
    Scene scene;
    scene.name = "QuadTest";
    scene.screenW = screen;
    scene.screenH = screen;
    scene.textures.emplace_back(
        makeChecker(tex_size, 8, Rgba8{220, 220, 220, 255},
                    Rgba8{40, 40, 80, 255}));

    Vec3 light{0.3f, -1.0f, -0.5f};
    addQuadPatch(scene, 0, Vec3{-1, -1, 0}, Vec3{1, -1, 0}, Vec3{1, 1, 0},
                 Vec3{-1, 1, 0}, Vec2{0, 0}, Vec2{uv_repeat, uv_repeat},
                 1, 1, light);

    scene.view = Mat4::lookAt(Vec3{0, 0, 2.2f}, Vec3{0, 0, 0},
                              Vec3{0, 1, 0});
    scene.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 10.0f);
    return scene;
}

Scene
makeWorstCaseScene(unsigned tex_size, unsigned screen,
                   float angle_radians)
{
    Scene scene;
    scene.name = "WorstCase";
    scene.screenW = screen;
    scene.screenH = screen;
    scene.textures.emplace_back(
        makeChecker(tex_size, 16, Rgba8{230, 230, 230, 255},
                    Rgba8{30, 30, 60, 255}));

    // Head-on quad spanning the viewport exactly; uv scaled so level 0
    // maps ~1 texel per pixel, rotated by the requested angle.
    float c = std::cos(angle_radians), s = std::sin(angle_radians);
    // Clip x spans [-1, 1] = `screen` pixels; one texel per pixel
    // means the uv span across the quad is screen / tex_size.
    float scale = static_cast<float>(screen) / (2.0f * tex_size);
    auto uv_at = [&](float x, float y) {
        // Rotate screen-aligned coordinates into texture space.
        return Vec2{scale * (c * x - s * y), scale * (s * x + c * y)};
    };
    auto vert = [&](float x, float y) {
        SceneVertex v;
        v.pos = {x, y, 0.0f};
        v.uv = uv_at(x, y);
        v.shade = 1.0f;
        return v;
    };
    SceneVertex v00 = vert(-1, -1), v10 = vert(1, -1);
    SceneVertex v11 = vert(1, 1), v01 = vert(-1, 1);
    scene.triangles.push_back({{v00, v10, v11}, 0});
    scene.triangles.push_back({{v00, v11, v01}, 0});

    // Orthographic-like view: quad exactly fills the clip volume.
    scene.view = Mat4::identity();
    scene.proj = Mat4::identity();
    return scene;
}

} // namespace texcache
