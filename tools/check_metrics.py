#!/usr/bin/env python3
"""check_metrics: strict line-by-line Prometheus exposition validator.

CI's telemetry job scrapes a loaded texcached daemon and feeds the
text through here; any malformed series fails the run. The checks are
the ones a real scrape pipeline depends on:

 - every line is a comment (# HELP / # TYPE) or a sample
   ``name[{labels}] value``;
 - metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
 - sample values parse as finite floats - NaN/Inf fail (the stats
   layer guarantees it never emits them);
 - every sample belongs to a family announced by a preceding # TYPE;
 - histograms are complete and consistent: cumulative ``_bucket``
   counts are monotonically non-decreasing, the ``+Inf`` bucket is
   present and equals ``_count``, and ``_sum``/``_count`` exist.

Usage:
  check_metrics.py [--min-series N] [FILE]     (stdin when no FILE)

Prints a one-line summary and exits 0 when valid, 1 otherwise.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$'
)


class Checker:
    def __init__(self):
        self.errors = []
        self.types = {}      # family name -> declared type
        self.samples = 0
        self.histograms = {} # family -> {"buckets": [(le, v)], ...}

    def error(self, lineno, msg):
        self.errors.append("line %d: %s" % (lineno, msg))

    def check_line(self, lineno, line):
        if not line.strip():
            return
        if line.startswith("#"):
            self.check_comment(lineno, line)
            return
        m = SAMPLE_RE.match(line.strip())
        if not m:
            self.error(lineno, "not a valid sample line: %r" % line)
            return
        name = m.group("name")
        labels = m.group("labels")
        if labels is not None:
            body = labels[1:-1]
            for pair in filter(None, body.split(",")):
                if not LABEL_RE.match(pair.strip()):
                    self.error(lineno, "bad label %r" % pair)
        try:
            value = float(m.group("value"))
        except ValueError:
            self.error(lineno, "unparseable value %r" % m.group("value"))
            return
        if not math.isfinite(value):
            self.error(lineno, "non-finite value in %s" % name)
            return
        family = self.family_of(name)
        if family not in self.types:
            self.error(lineno, "sample %s precedes its # TYPE" % name)
        self.samples += 1
        self.track_histogram(lineno, name, labels, value)

    def check_comment(self, lineno, line):
        parts = line.split(None, 3)
        if parts[0] != "#" or len(parts) < 2:
            self.error(lineno, "malformed comment: %r" % line)
            return
        if parts[1] not in ("TYPE", "HELP"):
            # Other comments are legal exposition; accept them.
            return
        if len(parts) < 3 or not NAME_RE.match(parts[2]):
            self.error(lineno, "bad metric name in %r" % line)
            return
        if parts[1] == "TYPE":
            if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                self.error(lineno, "bad TYPE in %r" % line)
                return
            if parts[2] in self.types:
                self.error(lineno, "duplicate # TYPE for %s" % parts[2])
            self.types[parts[2]] = parts[3]
            if parts[3] == "histogram":
                self.histograms[parts[2]] = {
                    "buckets": [], "sum": None, "count": None,
                    "line": lineno,
                }

    def family_of(self, name):
        """Collapse histogram sample suffixes onto their family."""
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and self.types.get(base) == "histogram":
                return base
        return name

    def track_histogram(self, lineno, name, labels, value):
        for suffix, key in (("_bucket", "buckets"), ("_sum", "sum"),
                            ("_count", "count")):
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            h = self.histograms.get(base)
            if h is None:
                continue
            if key == "buckets":
                le = None
                if labels:
                    for pair in labels[1:-1].split(","):
                        k, _, v = pair.partition("=")
                        if k.strip() == "le":
                            le = v.strip().strip('"')
                if le is None:
                    self.error(lineno,
                               "%s_bucket without an le label" % base)
                    return
                h["buckets"].append((lineno, le, value))
            else:
                h[key] = (lineno, value)
            return

    def finish(self):
        for base, h in self.histograms.items():
            where = "histogram %s (line %d)" % (base, h["line"])
            if h["sum"] is None:
                self.errors.append("%s: missing _sum" % where)
            if h["count"] is None:
                self.errors.append("%s: missing _count" % where)
            if not h["buckets"]:
                self.errors.append("%s: no _bucket series" % where)
                continue
            prev = -1.0
            inf_value = None
            for lineno, le, value in h["buckets"]:
                if le != "+Inf":
                    try:
                        float(le)
                    except ValueError:
                        self.errors.append(
                            "line %d: bad le=%r" % (lineno, le))
                if value < prev:
                    self.errors.append(
                        "line %d: %s buckets not cumulative"
                        % (lineno, base))
                prev = value
                if le == "+Inf":
                    inf_value = value
            if inf_value is None:
                self.errors.append("%s: missing le=\"+Inf\"" % where)
            elif h["count"] is not None and inf_value != h["count"][1]:
                self.errors.append(
                    "%s: +Inf bucket %g != _count %g"
                    % (where, inf_value, h["count"][1]))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="exposition text (stdin)")
    ap.add_argument("--min-series", type=int, default=1,
                    help="fail when fewer sample lines than this")
    args = ap.parse_args()

    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    checker = Checker()
    for lineno, line in enumerate(text.splitlines(), 1):
        checker.check_line(lineno, line)
    checker.finish()

    if checker.samples < args.min_series:
        checker.errors.append(
            "only %d sample series (need >= %d)"
            % (checker.samples, args.min_series))

    if checker.errors:
        for e in checker.errors:
            print("check_metrics: %s" % e, file=sys.stderr)
        print("check_metrics: FAIL (%d samples, %d errors)"
              % (checker.samples, len(checker.errors)))
        return 1
    print("check_metrics: OK (%d samples, %d families)"
          % (checker.samples, len(checker.types)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
