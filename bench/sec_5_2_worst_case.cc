/**
 * @file
 * Reproduces the worst-case working-set *analysis* of section 5.2.3.
 *
 * The paper bounds the first-level working set of a screen-filling
 * triangle textured at ~1 texel/pixel:
 *
 *  - texture smaller than the screen (accesses wrap): bounded by
 *    line size x diagonal of the texture image, "since this is the
 *    maximum length through the texture and the texture can appear in
 *    an arbitrary orientation on the screen";
 *  - texture larger than the screen: bounded by line size x the
 *    screen dimension along the scan direction.
 *
 * This harness renders the analysis scene across texture orientations
 * and sizes, measures the first-level working set with the stack
 * profiler, and checks it against the analytical bound. It also shows
 * the base representation's orientation sensitivity directly: a
 * 90-degree texture rotation under row-major storage is the worst
 * case the Town scene's vertical rasterization exhibits.
 */

#include <algorithm>
#include <cmath>

#include "bench/bench_util.hh"

#include "common/bits.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    constexpr unsigned kScreen = 512;
    constexpr unsigned kLine = 32;

    TextTable table("Section 5.2.3: worst-case working-set bound, "
                    "512x512 screen, nonblocked, FA, 32B lines");
    table.header({"Texture", "Angle", "Measured WS",
                  "Analytical bound", "Within"});

    for (unsigned tex : {256u, 2048u}) {
        // The paper's bound.
        uint64_t bound;
        if (tex < kScreen) {
            double diagonal = std::sqrt(2.0) * tex;
            bound = static_cast<uint64_t>(kLine * diagonal);
        } else {
            bound = static_cast<uint64_t>(kLine) * kScreen;
        }

        for (float deg : {0.0f, 15.0f, 45.0f, 90.0f}) {
            Scene scene = makeWorstCaseScene(
                tex, kScreen, deg * 3.14159265f / 180.0f);
            RenderOptions opts;
            opts.writeFramebuffer = false;
            opts.countRepetition = false;
            RenderOutput out =
                render(scene, RasterOrder::horizontal(), opts);

            LayoutParams params;
            params.kind = LayoutKind::Nonblocked;
            SceneLayout layout(scene, params);
            StackDistProfiler prof =
                profileTrace(out.trace, layout, kLine);
            // Cap the sweep below the full-texture footprint: repeated
            // textures have a *second* working-set level there (whole-
            // texture reuse across repeats) which is not the scanline-
            // level set the bound describes.
            uint64_t cap =
                std::min<uint64_t>(1 << 20,
                                   nextPowerOfTwo(static_cast<uint64_t>(
                                       tex) * tex * 4) /
                                       4);
            auto sizes = cacheSizeSweep(1 << 10, cap);
            uint64_t ws = firstWorkingSet(prof, sizes);

            uint64_t bound_pow2 = nextPowerOfTwo(bound);
            table.row({std::to_string(tex) + "^2",
                       fmtFixed(deg, 0) + " deg", fmtBytes(ws),
                       fmtBytes(bound),
                       ws <= bound_pow2 ? "yes" : "NO"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: measured first-level working "
                 "sets stay within the analytical bound at every "
                 "orientation; rotated orientations need more of the "
                 "bound than axis-aligned ones.\n";
    return 0;
}
