/** @file Tests for homogeneous near-plane clipping. */

#include <gtest/gtest.h>

#include "pipeline/clip.hh"

using namespace texcache;

namespace {

ClipVertex
cv(float x, float y, float z, float w, float u = 0, float v = 0)
{
    ClipVertex r;
    r.pos = {x, y, z, w};
    r.uv = {u, v};
    r.shade = 1.0f;
    return r;
}

} // namespace

TEST(Clip, FullyVisiblePassesThrough)
{
    ClipVertex in[3] = {cv(0, 0, 0, 1), cv(1, 0, 0, 1), cv(0, 1, 0, 1)};
    ClipVertex out[4];
    ASSERT_EQ(clipNear(in, out), 3u);
    EXPECT_FLOAT_EQ(out[0].pos.x, 0);
    EXPECT_FLOAT_EQ(out[1].pos.x, 1);
    EXPECT_FLOAT_EQ(out[2].pos.y, 1);
}

TEST(Clip, FullyBehindIsRejected)
{
    // z + w < 0 for all vertices.
    ClipVertex in[3] = {cv(0, 0, -2, 1), cv(1, 0, -3, 1),
                        cv(0, 1, -2.5f, 1)};
    ClipVertex out[4];
    EXPECT_EQ(clipNear(in, out), 0u);
}

TEST(Clip, OneVertexBehindYieldsQuad)
{
    ClipVertex in[3] = {cv(0, 0, 1, 1), cv(4, 0, 1, 1),
                        cv(0, 4, -3, 1)};
    ClipVertex out[4];
    ASSERT_EQ(clipNear(in, out), 4u);
    // Every output vertex satisfies the near-plane condition.
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(out[i].pos.z + out[i].pos.w, -1e-4f);
}

TEST(Clip, TwoVerticesBehindYieldsTriangle)
{
    ClipVertex in[3] = {cv(0, 0, 1, 1), cv(4, 0, -3, 1),
                        cv(0, 4, -3, 1)};
    ClipVertex out[4];
    ASSERT_EQ(clipNear(in, out), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(out[i].pos.z + out[i].pos.w, -1e-4f);
}

TEST(Clip, IntersectionInterpolatesAttributes)
{
    // Edge from (z+w = 2) to (z+w = -2): the crossing is at t = 0.5.
    ClipVertex a = cv(0, 0, 1, 1, /*u=*/0.0f, /*v=*/0.0f);
    ClipVertex b = cv(2, 0, -3, 1, /*u=*/1.0f, /*v=*/2.0f);
    ClipVertex c = cv(0, 2, 1, 1, /*u=*/0.0f, /*v=*/0.0f);
    ClipVertex in[3] = {a, b, c};
    ClipVertex out[4];
    ASSERT_EQ(clipNear(in, out), 4u);
    // Find the vertex on the a->b edge (x between 0 and 2, y == 0).
    bool found = false;
    for (int i = 0; i < 4; ++i) {
        if (out[i].pos.y == 0.0f && out[i].pos.x > 0.1f &&
            out[i].pos.x < 1.9f) {
            EXPECT_NEAR(out[i].pos.x, 1.0f, 1e-3f);
            EXPECT_NEAR(out[i].uv.x, 0.5f, 1e-3f);
            EXPECT_NEAR(out[i].uv.y, 1.0f, 1e-3f);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}
