/**
 * @file
 * Mip-map image pyramid (Williams 1983), the texture representation the
 * whole study rests on.
 *
 * Level 0 is the original image; each subsequent level is a box-filtered
 * 2x down-sampling of its predecessor, ending at 1x1. Dimensions must be
 * powers of two (as required by OpenGL 1.0 and assumed by every memory
 * layout in the paper).
 */

#ifndef TEXCACHE_TEXTURE_MIPMAP_HH
#define TEXCACHE_TEXTURE_MIPMAP_HH

#include <cstdint>
#include <vector>

#include "img/image.hh"

namespace texcache {

/** A full image pyramid for one texture. */
class MipMap
{
  public:
    MipMap() = default;

    /**
     * Build the pyramid from a base image by repeated 2x2 box filtering.
     * Non-square images are supported; the smaller dimension clamps at 1.
     *
     * @param base level-0 image; dimensions must be powers of two.
     */
    explicit MipMap(Image base);

    unsigned numLevels() const
    {
        return static_cast<unsigned>(levels_.size());
    }

    /** Width of level @p l in texels (>= 1). */
    unsigned width(unsigned l) const { return level(l).width(); }

    /** Height of level @p l in texels (>= 1). */
    unsigned height(unsigned l) const { return level(l).height(); }

    const Image &
    level(unsigned l) const
    {
        panic_if(l >= levels_.size(), "MipMap level ", l, " of ",
                 levels_.size());
        return levels_[l];
    }

    /**
     * Total storage for the pyramid in bytes at kBytesPerTexel per texel.
     * For a square map this is ~4/3 the size of level 0.
     */
    uint64_t storageBytes() const;

  private:
    std::vector<Image> levels_;
};

} // namespace texcache

#endif // TEXCACHE_TEXTURE_MIPMAP_HH
