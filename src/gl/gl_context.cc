#include "gl/gl_context.hh"

namespace texcache {

void
GlContext::viewport(unsigned width, unsigned height)
{
    fatal_if(width == 0 || height == 0, "empty viewport");
    scene_.screenW = width;
    scene_.screenH = height;
}

void
GlContext::loadProjection(const Mat4 &m)
{
    scene_.proj = m;
}

void
GlContext::loadModelView(const Mat4 &m)
{
    scene_.view = m;
}

GlTexture
GlContext::genTexture()
{
    return nextName_++;
}

void
GlContext::bindTexture(GlTexture tex)
{
    fatal_if(tex == 0, "cannot bind texture name 0");
    fatal_if(tex >= nextName_, "texture name ", tex,
             " was never generated");
    bound_ = tex;
    boundValid_ = true;
}

void
GlContext::texImage2D(const Image &base)
{
    fatal_if(!boundValid_, "texImage2D with no texture bound");
    auto it = textureSlots_.find(bound_);
    if (it == textureSlots_.end()) {
        uint16_t slot = static_cast<uint16_t>(scene_.textures.size());
        scene_.textures.emplace_back(base);
        textureSlots_[bound_] = slot;
    } else {
        // Redefinition replaces the pyramid (textures may change
        // between frames; the cache would be flushed, section 3.2).
        scene_.textures[it->second] = MipMap(base);
    }
}

void
GlContext::begin(GlPrimitive prim)
{
    fatal_if(inPrimitive_, "begin() inside begin/end");
    fatal_if(!boundValid_ || !textureSlots_.count(bound_),
             "drawing requires a bound texture with an image");
    inPrimitive_ = true;
    prim_ = prim;
    assembly_.clear();
}

void
GlContext::texCoord(float u, float v)
{
    current_.uv = {u, v};
}

void
GlContext::shade(float s)
{
    current_.shade = s;
}

void
GlContext::vertex(float x, float y, float z)
{
    fatal_if(!inPrimitive_, "vertex() outside begin/end");
    current_.pos = {x, y, z};
    assembly_.push_back(current_);

    size_t n = assembly_.size();
    switch (prim_) {
      case GlPrimitive::Triangles:
        if (n == 3) {
            emitTriangle(assembly_[0], assembly_[1], assembly_[2]);
            assembly_.clear();
        }
        break;
      case GlPrimitive::TriangleStrip:
        if (n >= 3) {
            // Alternate winding so all triangles face the same way.
            if (n % 2 == 1)
                emitTriangle(assembly_[n - 3], assembly_[n - 2],
                             assembly_[n - 1]);
            else
                emitTriangle(assembly_[n - 2], assembly_[n - 3],
                             assembly_[n - 1]);
        }
        break;
      case GlPrimitive::TriangleFan:
        if (n >= 3)
            emitTriangle(assembly_[0], assembly_[n - 2],
                         assembly_[n - 1]);
        break;
    }
}

void
GlContext::end()
{
    fatal_if(!inPrimitive_, "end() outside begin/end");
    if (prim_ == GlPrimitive::Triangles)
        fatal_if(!assembly_.empty(),
                 "GL_TRIANGLES vertex count not a multiple of 3");
    inPrimitive_ = false;
    assembly_.clear();
}

void
GlContext::emitTriangle(const SceneVertex &a, const SceneVertex &b,
                        const SceneVertex &c)
{
    SceneTriangle tri;
    tri.v[0] = a;
    tri.v[1] = b;
    tri.v[2] = c;
    tri.texture = textureSlots_.at(bound_);
    scene_.triangles.push_back(tri);
}

Scene
GlContext::takeScene()
{
    fatal_if(inPrimitive_, "takeScene() inside begin/end");
    Scene s = std::move(scene_);
    scene_ = Scene{};
    textureSlots_.clear();
    nextName_ = 1;
    boundValid_ = false;
    return s;
}

} // namespace texcache
