/**
 * @file
 * Texel-coordinate traces.
 *
 * The key methodological observation (DESIGN.md section 5): the stream of
 * texel *coordinates* a scene generates depends only on the scene and the
 * rasterization order - not on the memory representation. We record that
 * stream once per (scene, rasterization order) and map it through each
 * memory layout to obtain the byte-address stream the cache simulator
 * consumes. One record is one texel touch, packed into 64 bits.
 */

#ifndef TEXCACHE_TRACE_TEXEL_TRACE_HH
#define TEXCACHE_TRACE_TEXEL_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "texture/sampler.hh"

namespace texcache {

/** Which role a texel touch played in its fragment's filter. */
enum class TouchKind : uint8_t
{
    Bilinear = 0,       ///< single-level bilinear filter
    TrilinearLower = 1, ///< the more detailed of the two mip levels
    TrilinearUpper = 2, ///< the less detailed level
    Nearest = 3,        ///< single-texel nearest filter (extension)
};

/** One texel touch: texture, level, texel coordinates, filter role. */
struct TexelRecord
{
    uint16_t texture;
    uint16_t level;
    uint16_t u;
    uint16_t v;
    TouchKind kind;

    /** Pack into 64 bits (u:16 | v:16 | level:5 | texture:11 | kind:2). */
    uint64_t
    pack() const
    {
        panic_if(level >= 32, "level ", level, " exceeds 5-bit field");
        panic_if(texture >= 2048, "texture id ", texture,
                 " exceeds 11-bit field");
        return static_cast<uint64_t>(u) |
               (static_cast<uint64_t>(v) << 16) |
               (static_cast<uint64_t>(level) << 32) |
               (static_cast<uint64_t>(texture) << 37) |
               (static_cast<uint64_t>(kind) << 48);
    }

    static TexelRecord
    unpack(uint64_t bits)
    {
        TexelRecord r;
        r.u = static_cast<uint16_t>(bits & 0xffff);
        r.v = static_cast<uint16_t>((bits >> 16) & 0xffff);
        r.level = static_cast<uint16_t>((bits >> 32) & 0x1f);
        r.texture = static_cast<uint16_t>((bits >> 37) & 0x7ff);
        r.kind = static_cast<TouchKind>((bits >> 48) & 0x3);
        return r;
    }
};

/**
 * Pack all touches of one filtered sample into @p out (room for 8)
 * with the same touch-role mapping as TexelTrace::appendSample.
 *
 * @return the number of records written (s.numTouches)
 */
unsigned packSampleRecords(uint16_t tex, const SampleResult &s,
                           uint64_t *out);

/**
 * Incremental consumer of packed trace records. The render pipeline
 * streams captured records into a sink (RenderOptions::traceSink)
 * instead of materializing them in RenderOutput::trace, which keeps
 * peak RSS flat no matter how long the trace is; ChunkedTraceWriter
 * (chunked_trace.hh) is the on-disk implementation.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume @p n packed records (texel_trace layout, in order). */
    virtual void append(const uint64_t *records, size_t n) = 0;
};

/** An in-memory texel trace for one rendered frame. */
class TexelTrace
{
  public:
    void
    append(const TexelRecord &r)
    {
        records_.push_back(r.pack());
    }

    /** Append all touches of one filtered sample for texture @p tex. */
    void appendSample(uint16_t tex, const SampleResult &s);

    /** Bulk-append @p n already-packed records (per-span batching and
     *  the tile render engine's deterministic merge). */
    void
    appendPacked(const uint64_t *records, size_t n)
    {
        records_.insert(records_.end(), records, records + n);
    }

    /** Size the record vector so concurrent writers can fill disjoint
     *  ranges in place through mutablePacked() (the tile render
     *  engine's merge precomputes every segment's destination offset
     *  and copies segments in parallel). */
    void
    resizePacked(size_t n)
    {
        records_.resize(n);
    }

    /** Mutable base pointer for resizePacked()-style in-place fills. */
    uint64_t *mutablePacked() { return records_.data(); }

    /** The packed records, in order (bulk copies and comparisons). */
    const std::vector<uint64_t> &packed() const { return records_; }

    size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    TexelRecord
    operator[](size_t i) const
    {
        return TexelRecord::unpack(records_[i]);
    }

    /** Visit every record in order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (uint64_t bits : records_)
            fn(TexelRecord::unpack(bits));
    }

    void
    clear()
    {
        records_.clear();
    }

    void
    reserve(size_t n)
    {
        records_.reserve(n);
    }

  private:
    std::vector<uint64_t> records_;
};

} // namespace texcache

#endif // TEXCACHE_TRACE_TEXEL_TRACE_HH
