/**
 * @file
 * GL trace capture and replay - the workflow of the paper's second
 * simulation component (gldebug-style call tracing).
 *
 * Usage:
 *   gl_capture record <scene> <out.gltrc>
 *   gl_capture replay <in.gltrc> <out.ppm>
 *
 * `record` issues a benchmark scene through the GL command layer and
 * serializes the call stream (including texture payloads - flight's
 * file is ~60 MB, goblet's ~1 MB). `replay` executes a captured stream
 * against a fresh context and renders the frame it describes, exactly
 * as the paper fed captured GL traces to its software pipeline.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "gl/command_stream.hh"
#include "gl/gl_context.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

using namespace texcache;

namespace {

[[noreturn]] void
usage()
{
    std::cerr << "usage:\n"
                 "  gl_capture record <scene> <out.gltrc>\n"
                 "  gl_capture replay <in.gltrc> <out.ppm>\n"
                 "scenes: flight town guitar goblet\n";
    std::exit(1);
}

BenchScene
parseScene(const std::string &s)
{
    if (s == "flight")
        return BenchScene::Flight;
    if (s == "town")
        return BenchScene::Town;
    if (s == "guitar")
        return BenchScene::Guitar;
    if (s == "goblet")
        return BenchScene::Goblet;
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 4)
        usage();
    std::string cmd = argv[1];

    if (cmd == "record") {
        Scene scene = makeScene(parseScene(argv[2]));
        GlRecorder recorder;
        emitScene(scene, recorder);
        writeGlTrace(recorder.stream(), argv[3]);
        std::cout << "recorded " << recorder.stream().size()
                  << " GL commands (" << scene.triangles.size()
                  << " triangles, " << scene.textures.size()
                  << " textures) to " << argv[3] << "\n";
        return 0;
    }

    if (cmd == "replay") {
        GlCommandStream stream = readGlTrace(argv[2]);
        GlContext ctx;
        playCommands(stream, ctx);
        Scene scene = ctx.takeScene();
        scene.name = "replayed";
        std::cerr << "replaying " << stream.size() << " commands -> "
                  << scene.triangles.size() << " triangles\n";
        RenderOutput out = render(scene, RasterOrder::tiledOrder(8, 8));
        out.framebuffer.writePpm(argv[3]);
        std::cout << "rendered " << out.stats.fragments
                  << " fragments, " << out.trace.size()
                  << " texel accesses; wrote " << argv[3] << "\n";
        return 0;
    }

    usage();
}
