/**
 * @file
 * On-disk and in-memory formats of the event-tracing layer.
 *
 * One trace event is a fixed 32-byte POD so per-thread ring buffers
 * are flat arrays and the binary event log is a straight memory dump.
 * Two time domains coexist: wall-domain events (spans, cache misses)
 * carry nanoseconds since the tracer's epoch; sim-domain events (vt
 * fetch queue) carry the virtual-texturing subsystem's tick counter.
 * The Chrome trace writer keeps them apart as two trace "processes".
 *
 * The binary event log ("TXEV" container) holds the span-name string
 * table followed by one section per thread ring; tools/texcache-report
 * and tests/test_tracing.cc parse it with readEventLog().
 */

#ifndef TEXCACHE_TRACING_TRACE_FORMAT_HH
#define TEXCACHE_TRACING_TRACE_FORMAT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace texcache {
namespace tracing {

/** Event categories, enabled via TEXCACHE_TRACE (comma list). */
enum Category : uint32_t
{
    kSpans = 1u << 0,   ///< "spans": begin/end timeline spans
    kMisses = 1u << 1,  ///< "misses": sampled cache-miss events
    kTexels = 1u << 2,  ///< "texels": sampled access events (hit+miss)
    kFetches = 1u << 3, ///< "fetches": vt fetch-queue events
    kAll = kSpans | kMisses | kTexels | kFetches,
    /**
     * Internal pseudo-category: maintain the per-thread stack of
     * active span name ids (tracing.hh tlsSpanStack) without
     * recording any events. The sampling profiler (src/prof) sets it
     * so its signal handler can attribute samples to the innermost
     * span; it is never part of kAll and TEXCACHE_TRACE cannot
     * enable it.
     */
    kSpanCtx = 1u << 16,
};

/** What one event records (Event::kind). */
enum class EventKind : uint8_t
{
    SpanBegin = 0,     ///< wall domain; a = span name id, c = detail
    SpanEnd = 1,       ///< wall domain; a = span name id
    CacheMiss = 2,     ///< wall domain; addr + 3C class + texel context
    CacheAccess = 3,   ///< wall domain; addr + hit/miss + texel context
    FetchIssue = 4,    ///< sim domain; addr = page, b = queue depth
    FetchMerge = 5,    ///< sim domain; merged into an in-flight fetch
    FetchDrop = 6,     ///< sim domain; outstanding limit reached
    FetchComplete = 7, ///< sim domain; b = issue-to-data latency ticks
    PageEvict = 8,     ///< sim domain; addr = victim page, b = resident
    AsyncBegin = 9,    ///< wall domain; a = name id, addr = async id,
                       ///< c = detail - spans that cross threads
    AsyncEnd = 10,     ///< wall domain; a = name id, addr = async id
};

/** 3-C classification carried by CacheMiss events (Event::cls). */
enum class MissClass : uint8_t
{
    Cold = 0,     ///< first touch of the line anywhere in the run
    Capacity = 1, ///< non-cold miss the FA twin also missed
    Conflict = 2, ///< non-cold miss the FA twin hit (MissClassifier)
    Other = 3,    ///< non-cold; no FA twin running to refine it
};

/** Which simulator an event came from (Event::tag). */
enum : uint16_t
{
    kTagStandalone = 0, ///< a lone CacheSim / FullyAssocLru
    kTagL1 = 1,         ///< private L1 inside a TwoLevelCache
    kTagL2 = 2,         ///< shared L2 inside a TwoLevelCache
    kTagClassified = 3, ///< refined events from a MissClassifier
    kTagSilent = 0xffff ///< suppress this simulator's events
};

/**
 * One trace event. Wall-domain events timestamp with nanoseconds
 * since the tracer epoch; sim-domain events with the subsystem tick.
 * Field use by kind is documented on EventKind.
 */
struct Event
{
    uint64_t ts;   ///< nanoseconds since epoch, or sim tick
    uint64_t addr; ///< byte address / page id / 0
    uint32_t a;    ///< span name id, or screen (x << 16 | y)
    uint32_t b;    ///< (texture << 16 | level), or depth/latency
    uint32_t c;    ///< (u << 16 | v) texel coords, or span detail
    uint8_t kind;  ///< EventKind
    uint8_t cls;   ///< MissClass / hit flag / FetchResult
    uint16_t tag;  ///< source tag (kTag*)
};

static_assert(sizeof(Event) == 32, "trace events must stay 32 bytes");

/** Sentinel for "no texel context": the replay driver never set one. */
constexpr uint32_t kNoContext = 0xffffffffu;

/** Binary event log container version ("TXEV" magic). */
constexpr uint32_t kLogVersion = 1;
constexpr char kLogMagic[8] = {'T', 'X', 'E', 'V', '1', 0, 0, 0};

/** One thread ring's parsed section of an event log. */
struct RingData
{
    uint32_t tid = 0;
    uint64_t dropped = 0;
    std::vector<Event> events;
};

/** A parsed binary event log. */
struct EventLog
{
    uint64_t sampleN = 1;
    uint64_t dropped = 0; ///< total across rings
    std::vector<std::string> names;
    std::vector<RingData> rings;

    /** All events of all rings; within one ring the order is the
     *  emission order. */
    uint64_t
    eventCount() const
    {
        uint64_t n = 0;
        for (const RingData &r : rings)
            n += r.events.size();
        return n;
    }

    const std::string &
    name(uint32_t id) const
    {
        static const std::string unknown = "?";
        return id < names.size() ? names[id] : unknown;
    }
};

/**
 * Parse a binary event log. Returns false (with @p err set) on a
 * malformed stream; never throws.
 */
bool readEventLog(std::istream &is, EventLog &out, std::string &err);

} // namespace tracing
} // namespace texcache

#endif // TEXCACHE_TRACING_TRACE_FORMAT_HH
