#!/bin/sh
# Regenerate every figure/table of the reproduction into results/.
# Usage: tools/run_all.sh [--fail-fast] [build_dir] [out_dir]
# Set TEXCACHE_CSV=1 for machine-readable output.
#
# Each bench writes stdout to $OUT/<name>.txt and stderr to
# $OUT/<name>.err. By default a failing bench does not stop the run;
# the script exits nonzero at the end listing every failure. With
# --fail-fast the run stops at the first failing bench instead (the
# partial run_manifest.json still covers every bench that ran).
#
# Rendered texel traces are cached under $OUT/trace-cache (see
# DESIGN.md section 8), so re-runs skip the expensive renders; delete
# that directory to force re-rendering. Per-bench and cumulative
# wall-clock are printed as each bench finishes.
#
# Besides the per-bench BENCH_*.json run manifests the benches write
# into $OUT themselves (TEXCACHE_STATS_DIR), the whole run is
# summarized in $OUT/run_manifest.json: per-bench pass/fail and
# wall-clock plus the totals.
set -u
FAIL_FAST=0
case "${1:-}" in
    --fail-fast)
        FAIL_FAST=1
        shift
        ;;
    --*)
        echo "usage: tools/run_all.sh [--fail-fast] [build_dir] [out_dir]" >&2
        exit 2
        ;;
esac
BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"
TEXCACHE_TRACE_CACHE_DIR="${TEXCACHE_TRACE_CACHE_DIR:-$OUT/trace-cache}"
export TEXCACHE_TRACE_CACHE_DIR
TEXCACHE_STATS_DIR="${TEXCACHE_STATS_DIR:-$OUT}"
export TEXCACHE_STATS_DIR
failed=""
total=0
npass=0
nfail=0
rows=""
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    start=$(date +%s)
    if "$b" > "$OUT/$name.txt" 2> "$OUT/$name.err"; then
        status=ok
        npass=$((npass + 1))
    else
        echo "== $name FAILED (exit $?); stderr in $OUT/$name.err" >&2
        failed="$failed $name"
        status=FAILED
        nfail=$((nfail + 1))
    fi
    end=$(date +%s)
    elapsed=$((end - start))
    total=$((total + elapsed))
    echo "== $name ${elapsed}s (cumulative ${total}s) $status"
    row="    {\"bench\": \"$name\", \"status\": \"$status\", \"seconds\": $elapsed}"
    if [ -n "$rows" ]; then
        rows="$rows,
$row"
    else
        rows="$row"
    fi
    if [ "$FAIL_FAST" = 1 ] && [ "$status" = FAILED ]; then
        echo "== stopping: --fail-fast and $name failed" >&2
        break
    fi
done
{
    printf '{\n'
    printf '  "schema": "texcache-runall-1",\n'
    printf '  "passed": %s,\n' "$npass"
    printf '  "failed": %s,\n' "$nfail"
    printf '  "total_seconds": %s,\n' "$total"
    printf '  "benches": [\n%s\n  ]\n' "$rows"
    printf '}\n'
} > "$OUT/run_manifest.json"
echo "wrote $(ls "$OUT" | wc -l) result files to $OUT/ in ${total}s"
if [ -n "$failed" ]; then
    echo "FAILED benches:$failed" >&2
    exit 1
fi
