#include "timing/dram_model.hh"

namespace texcache {

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    fatal_if(!isPowerOfTwo(config.rowBytes) ||
                 !isPowerOfTwo(config.numBanks) ||
                 !isPowerOfTwo(config.busBytes),
             "DRAM geometry must be powers of two");
    openRow_.assign(config.numBanks, kNoRow);
}

uint64_t
DramModel::fill(Addr addr, unsigned bytes)
{
    panic_if(bytes == 0, "zero-byte DRAM fill");
    // Consecutive rows interleave across banks.
    uint64_t row_index = addr / config_.rowBytes;
    unsigned bank =
        static_cast<unsigned>(row_index & (config_.numBanks - 1));
    uint64_t row = row_index / config_.numBanks;

    uint64_t setup;
    if (openRow_[bank] == row) {
        setup = config_.tCas;
        ++stats_.rowHits;
    } else {
        setup = config_.tRowMiss;
        ++stats_.rowMisses;
        openRow_[bank] = row;
    }

    uint64_t burst =
        (bytes + config_.busBytes - 1) / config_.busBytes;
    uint64_t cycles = setup + burst;

    ++stats_.fills;
    stats_.bytes += bytes;
    stats_.cycles += cycles;
    return cycles;
}

} // namespace texcache
