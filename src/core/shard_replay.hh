/**
 * @file
 * Sharded, streamed replay of ONE simulation across the sweep pool.
 *
 * The sweep engine (core/sweep.hh) parallelizes across independent
 * sweep points; these runners parallelize *inside* a single point by
 * sharding the simulation itself (cache/shard_sim.hh) and consuming
 * the trace as a stream of chunks (trace/trace_source.hh):
 *
 *  - set-associative configurations: every worker streams the full
 *    chunk range and filters to its exclusive subset of sets;
 *  - fully associative profiles: the chunk range is cut into
 *    contiguous segments profiled independently and reconciled
 *    exactly.
 *
 * All runners return statistics bit-identical to their serial
 * counterparts in core/experiment.hh for every shard count (the
 * decompositions are exact, not approximate), and peak memory stays
 * bounded by the chunk window regardless of trace length - the
 * billion-access runs of bench/micro_shard.cc never materialize a
 * trace.
 *
 * @p shards selects the decomposition width; 0 means the sweep
 * thread count. Shard count and thread count are independent: 8
 * shards on a 1-thread pool produce the same bytes as 8 shards on 8
 * threads (tests/test_shard_sim.cc sweeps both).
 */

#ifndef TEXCACHE_CORE_SHARD_REPLAY_HH
#define TEXCACHE_CORE_SHARD_REPLAY_HH

#include <algorithm>
#include <vector>

#include "cache/shard_sim.hh"
#include "cache/three_c.hh"
#include "core/scene_layout.hh"
#include "trace/trace_source.hh"

namespace texcache {

/** @p shards, or the sweep thread count when @p shards is 0. */
unsigned resolveShards(unsigned shards);

/**
 * Stream chunks [@p chunk_begin, @p chunk_end) of @p src, map each
 * span of records through @p layout, and hand the resulting address
 * spans to @p fn(const Addr *, size_t). The address buffer is reused
 * across spans, so memory stays O(kMapChunk) however long the range.
 */
template <typename Fn>
void
replaySegment(const TraceSource &src, const SceneLayout &layout,
              uint64_t chunk_begin, uint64_t chunk_end, Fn &&fn)
{
    std::vector<Addr> buf;
    src.visitChunks(
        chunk_begin, chunk_end, [&](const uint64_t *recs, size_t n) {
            for (size_t i = 0; i < n; i += SceneLayout::kMapChunk) {
                size_t take =
                    std::min(SceneLayout::kMapChunk, n - i);
                layout.mapPacked(recs + i, take, buf);
                fn(static_cast<const Addr *>(buf.data()), buf.size());
            }
        });
}

/** Sharded profileTrace: exact whole-stream stack profile. */
ShardedStackProfile profileTraceSharded(const TraceSource &src,
                                        const SceneLayout &layout,
                                        unsigned line_bytes,
                                        unsigned shards = 0);

/** Sharded runCache: bit-identical to the serial single replay. */
CacheStats runCacheSharded(const TraceSource &src,
                           const SceneLayout &layout,
                           const CacheConfig &config,
                           unsigned shards = 0);

/** Sharded classifyCache: the same 3-C breakdown, with the FA twin
 *  served by the reconciled stack profile. */
MissBreakdown classifySharded(const TraceSource &src,
                              const SceneLayout &layout,
                              const CacheConfig &config,
                              unsigned shards = 0);

/** Sharded runFaSweep: per-capacity stats from one segmented pass. */
std::vector<CacheStats>
runFaSweepSharded(const TraceSource &src, const SceneLayout &layout,
                  unsigned line_bytes,
                  const std::vector<uint64_t> &sizes,
                  unsigned shards = 0);

/** Sharded runCacheGroup (any mix of configurations). */
std::vector<CacheStats>
runCacheGroupSharded(const TraceSource &src, const SceneLayout &layout,
                     const std::vector<CacheConfig> &configs,
                     unsigned shards = 0);

/**
 * Sharded runCacheSweep. The sharded engine already collapses every
 * set-associative configuration into one filtered pass and every
 * fully associative line size into one segmented stack pass, so this
 * is the same engine as runCacheGroupSharded except that fully
 * associative results carry evictions == 0, matching runCacheSweep's
 * collapsed passes (see CacheStats::evictions).
 */
std::vector<CacheStats>
runCacheSweepSharded(const TraceSource &src, const SceneLayout &layout,
                     const std::vector<CacheConfig> &configs,
                     unsigned shards = 0);

} // namespace texcache

#endif // TEXCACHE_CORE_SHARD_REPLAY_HH
