#include "stats/prometheus.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "stats/snapshot.hh"

namespace texcache {
namespace stats {

namespace {

/// Shortest round-trippable number; integral values print without a
/// decimal point (counters read naturally). Non-finite renders as 0.
std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf), int64_t(v));
        return std::string(buf, res.ptr);
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
num(uint64_t v)
{
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

/// Inclusive upper bound of log2 bucket @p k as exposition text:
/// bucket 0 holds the value 0; bucket k >= 1 holds [2^(k-1), 2^k),
/// whose largest integer sample is 2^k - 1.
std::string
bucketLe(unsigned k)
{
    if (k == 0)
        return "0";
    if (k >= 64)
        return "18446744073709551615"; // 2^64 - 1
    return num((uint64_t(1) << k) - 1);
}

void
writeGauge(std::ostream &os, const std::string &name, double v)
{
    os << "# TYPE " << name << " gauge\n" << name << ' ' << num(v) << '\n';
}

void
writeHistogram(std::ostream &os, const std::string &name,
               const Distribution &d)
{
    os << "# TYPE " << name << " histogram\n";
    unsigned top = 0;
    for (unsigned i = 0; i < Distribution::kBuckets; ++i)
        if (d.bucket(i))
            top = i + 1;
    uint64_t cum = 0;
    for (unsigned i = 0; i < top; ++i) {
        cum += d.bucket(i);
        os << name << "_bucket{le=\"" << bucketLe(i) << "\"} "
           << num(cum) << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << num(d.count()) << '\n';
    os << name << "_sum " << num(d.sum()) << '\n';
    os << name << "_count " << num(d.count()) << '\n';
    // Companion quantile gauges: log2 buckets are too coarse for good
    // server-side quantile math, and the registry already interpolates.
    writeGauge(os, name + "_p50", d.percentile(0.50));
    writeGauge(os, name + "_p95", d.percentile(0.95));
    writeGauge(os, name + "_p99", d.percentile(0.99));
}

} // namespace

std::string
promMetricName(std::string_view path)
{
    std::string out;
    out.reserve(path.size());
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty())
        out = "_";
    // Metric names may not start with a digit.
    if (out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

void
writeExposition(std::ostream &os, const Snapshot &snap,
                std::string_view prefix)
{
    std::string pfx = promMetricName(prefix);
    for (const Snapshot::Entry &e : snap.entries()) {
        std::string name = pfx.empty()
                               ? promMetricName(e.path)
                               : pfx + "_" + promMetricName(e.path);
        switch (e.kind) {
          case Snapshot::Kind::Counter:
            os << "# TYPE " << name << " counter\n"
               << name << ' ' << num(e.value) << '\n';
            break;
          case Snapshot::Kind::Gauge:
            writeGauge(os, name, e.value);
            break;
          case Snapshot::Kind::Dist:
            writeHistogram(os, name, e.dist);
            break;
        }
    }
}

std::string
expositionText(const Snapshot &snap, std::string_view prefix)
{
    std::ostringstream os;
    writeExposition(os, snap, prefix);
    return os.str();
}

} // namespace stats
} // namespace texcache
