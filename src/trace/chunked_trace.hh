/**
 * @file
 * Chunked on-disk texel traces for streamed replay.
 *
 * The flat format (trace_io.hh) is written from a fully materialized
 * TexelTrace, so generating or replaying a billion-access trace costs
 * a billion records of RAM. The chunked format removes both limits:
 * a ChunkedTraceWriter is a TraceSink the render pipeline streams
 * records into as they are produced, and a ChunkedTraceFile hands the
 * records back one fixed-size chunk at a time through a bounded mmap
 * window (sequential-advised, unmapped as the cursor advances), so
 * peak RSS - and, under ulimit -v, peak address space - stays O(one
 * window) regardless of trace length.
 *
 * Format (little-endian), 32-byte header followed by packed 64-bit
 * TexelRecords (texel_trace.hh layout), chunkRecords per chunk with a
 * partial final chunk:
 *   [0..7]   magic "TEXCHK01"
 *   [8..11]  uint32 version (1)
 *   [12..15] uint32 chunkRecords (power of two)
 *   [16..23] uint64 record count
 *   [24..27] uint32 flags (bit 0: finalized)
 *   [28..31] uint32 reserved (0)
 *
 * The writer emits the header with the finalized bit clear and
 * rewrites it in finalize(), so a crash mid-spill leaves a file that
 * readers reject ("writer never finalized") instead of a silently
 * short trace. Readers validate everything up front and report
 * corruption as a typed TraceFileError (byte offset + reason) rather
 * than reading past the end of a short file.
 */

#ifndef TEXCACHE_TRACE_CHUNKED_TRACE_HH
#define TEXCACHE_TRACE_CHUNKED_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/texel_trace.hh"

namespace texcache {

/** Why a chunked trace file was rejected, and where. */
struct TraceFileError
{
    uint64_t offset = 0; ///< byte offset of the problem
    std::string reason;

    /** "offset N: reason" - the form fatal() paths and tests use. */
    std::string str() const;
};

/** Parsed header of a chunked trace file. */
struct ChunkedTraceInfo
{
    uint32_t version = 0;
    uint32_t chunkRecords = 0;
    uint64_t records = 0;
    bool finalized = false;

    /** Chunks in the file (last one possibly partial). */
    uint64_t
    chunks() const
    {
        return chunkRecords
                   ? (records + chunkRecords - 1) / chunkRecords
                   : 0;
    }
};

/** Records per chunk unless a writer overrides it; matches the replay
 *  loops' SceneLayout::kMapChunk span so one chunk is one map span. */
constexpr uint32_t kDefaultChunkRecords = 1u << 16;

/**
 * Streaming writer: buffers one chunk, appends it to disk when full.
 * I/O failures on our own write path are fatal() (like trace_io);
 * the typed-error surface is the *reader's*, where corrupt input is
 * an expected condition.
 */
class ChunkedTraceWriter : public TraceSink
{
  public:
    explicit ChunkedTraceWriter(const std::string &path,
                                uint32_t chunk_records =
                                    kDefaultChunkRecords);
    ~ChunkedTraceWriter() override;

    ChunkedTraceWriter(const ChunkedTraceWriter &) = delete;
    ChunkedTraceWriter &operator=(const ChunkedTraceWriter &) = delete;

    void append(const uint64_t *records, size_t n) override;

    /** Records appended so far. */
    uint64_t written() const { return written_; }

    /**
     * Flush the tail chunk and rewrite the header with the final
     * record count and the finalized bit. Until this runs the file on
     * disk is deliberately unreadable (see header comment). Must be
     * called exactly once; the destructor closes an unfinalized file
     * as-is so a crashed spill stays detectable.
     */
    void finalize();

  private:
    void flushBuffer();

    std::string path_;
    uint32_t chunkRecords_;
    std::FILE *file_ = nullptr;
    std::vector<uint64_t> buf_;
    uint64_t written_ = 0;
    bool finalized_ = false;
};

/**
 * Validated read handle over a chunked trace file. visitChunks() is
 * const and uses only positioned reads / private mappings, so any
 * number of threads may stream disjoint (or identical) chunk ranges
 * through one open file concurrently - that is how sharded replay
 * gives every worker its own cursor.
 */
class ChunkedTraceFile
{
  public:
    ChunkedTraceFile() = default;
    ~ChunkedTraceFile();

    ChunkedTraceFile(ChunkedTraceFile &&other) noexcept;
    ChunkedTraceFile &operator=(ChunkedTraceFile &&other) noexcept;

    /**
     * Open and fully validate @p path. Returns false and fills
     * @p err (offset + reason) on any defect: unreadable file, short
     * or bad header, unsupported version, unfinalized writer, or a
     * payload whose size disagrees with the header's record count.
     */
    bool open(const std::string &path, TraceFileError &err);

    /** open() that fatal()s with the typed error's offset + reason. */
    static ChunkedTraceFile mustOpen(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }
    const ChunkedTraceInfo &info() const { return info_; }
    const std::string &path() const { return path_; }

    /**
     * Stream chunks [begin, end) in order: fn(records, count) per
     * chunk. Chunks are presented through a bounded mapping window
     * (madvise-sequential, dropped as the cursor advances), with a
     * plain pread fallback where mmap is unavailable; peak memory is
     * O(window), independent of the range length.
     */
    void visitChunks(uint64_t begin, uint64_t end,
                     const std::function<void(const uint64_t *, size_t)>
                         &fn) const;

    /** Materialize the whole file - the non-streamed path (tests and
     *  the small-RAM smoke's deliberate failure mode). */
    TexelTrace readAll() const;

  private:
    void close();

    int fd_ = -1;
    std::string path_;
    ChunkedTraceInfo info_;
};

} // namespace texcache

#endif // TEXCACHE_TRACE_CHUNKED_TRACE_HH
