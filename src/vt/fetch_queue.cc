#include "vt/fetch_queue.hh"

namespace texcache {

FetchQueue::FetchQueue(const FetchQueueConfig &config,
                       const DramConfig &dram, unsigned page_bytes)
    : config_(config), dram_(dram), pageBytes_(page_bytes)
{
    fatal_if(config.maxInFlight == 0,
             "fetch queue needs at least one outstanding request");
    fatal_if(!isPowerOfTwo(page_bytes), "page size ", page_bytes,
             " is not a power of two");
}

FetchResult
FetchQueue::request(PageId page, Addr page_base, uint64_t now)
{
    ++stats_.requests;
    stats_.depth.sample(queue_.size());

    if (inFlight_.count(page)) {
        ++stats_.dedupHits;
        if (tracing::enabled(tracing::kFetches))
            tracing::fetchEvent(tracing::EventKind::FetchMerge, page,
                                now,
                                static_cast<uint32_t>(queue_.size()));
        return FetchResult::Merged;
    }
    if (queue_.size() >= config_.maxInFlight) {
        ++stats_.drops;
        if (tracing::enabled(tracing::kFetches))
            tracing::fetchEvent(tracing::EventKind::FetchDrop, page,
                                now,
                                static_cast<uint32_t>(queue_.size()));
        return FetchResult::Dropped;
    }

    // The page transfer serializes on the shared DRAM bus behind any
    // burst still in progress; data arrives a fixed request latency
    // after the burst completes.
    uint64_t start = now > busFree_ ? now : busFree_;
    uint64_t burst = dram_.fill(page_base, pageBytes_);
    busFree_ = start + burst;
    uint64_t ready = busFree_ + config_.baseLatency;
    panic_if(!queue_.empty() && ready < queue_.back().ready,
             "fetch completion times must be monotone");

    queue_.push_back({page, ready, now});
    inFlight_.insert(page);
    ++stats_.issued;
    if (tracing::enabled(tracing::kFetches))
        tracing::fetchEvent(tracing::EventKind::FetchIssue, page, now,
                            static_cast<uint32_t>(queue_.size()));
    return FetchResult::Issued;
}

} // namespace texcache
