/**
 * @file
 * RGBA8 image container used for texture level storage and framebuffers.
 *
 * The paper allocates 32 bits per texel (R, G, B, A at 8 bits each); this
 * container mirrors that. Texel *values* never influence the cache study
 * (only addresses do) but they are kept real so the renderer can produce
 * verifiable output images.
 */

#ifndef TEXCACHE_IMG_IMAGE_HH
#define TEXCACHE_IMG_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace texcache {

/** An 8-bit-per-channel RGBA color. */
struct Rgba8
{
    uint8_t r = 0;
    uint8_t g = 0;
    uint8_t b = 0;
    uint8_t a = 255;

    bool
    operator==(const Rgba8 &o) const
    {
        return r == o.r && g == o.g && b == o.b && a == o.a;
    }
};

/** Bytes per texel, fixed at 4 throughout the study (paper section 4.1). */
constexpr unsigned kBytesPerTexel = 4;

/** A width x height RGBA8 raster stored row-major. */
class Image
{
  public:
    Image() = default;

    Image(unsigned width, unsigned height, Rgba8 fill = Rgba8{})
        : width_(width), height_(height),
          pixels_(static_cast<size_t>(width) * height, fill)
    {}

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }
    bool empty() const { return pixels_.empty(); }

    /** Pixel accessor with bounds checking via panic. */
    Rgba8 &
    at(unsigned x, unsigned y)
    {
        panic_if(x >= width_ || y >= height_,
                 "Image::at(", x, ",", y, ") out of ", width_, "x",
                 height_);
        return pixels_[static_cast<size_t>(y) * width_ + x];
    }

    const Rgba8 &
    at(unsigned x, unsigned y) const
    {
        panic_if(x >= width_ || y >= height_,
                 "Image::at(", x, ",", y, ") out of ", width_, "x",
                 height_);
        return pixels_[static_cast<size_t>(y) * width_ + x];
    }

    /** Unchecked accessor for hot loops. */
    const Rgba8 &
    texel(unsigned x, unsigned y) const
    {
        return pixels_[static_cast<size_t>(y) * width_ + x];
    }

    Rgba8 &
    texel(unsigned x, unsigned y)
    {
        return pixels_[static_cast<size_t>(y) * width_ + x];
    }

    const std::vector<Rgba8> &pixels() const { return pixels_; }

    /** Mutable raw pixel pointer (row-major), for bulk loads. */
    Rgba8 *data() { return pixels_.data(); }

    /** Write the image as a binary PPM (P6) file; alpha is dropped. */
    void writePpm(const std::string &path) const;

  private:
    unsigned width_ = 0;
    unsigned height_ = 0;
    std::vector<Rgba8> pixels_;
};

} // namespace texcache

#endif // TEXCACHE_IMG_IMAGE_HH
