#!/bin/sh
# Regenerate every figure/table of the reproduction into results/.
# Usage: tools/run_all.sh [build_dir] [out_dir]
# Set TEXCACHE_CSV=1 for machine-readable output.
#
# Each bench writes stdout to $OUT/<name>.txt and stderr to
# $OUT/<name>.err. A failing bench does not stop the run; the script
# exits nonzero at the end listing every failure.
#
# Rendered texel traces are cached under $OUT/trace-cache (see
# DESIGN.md section 8), so re-runs skip the expensive renders; delete
# that directory to force re-rendering. Per-bench and cumulative
# wall-clock are printed as each bench finishes.
set -u
BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"
TEXCACHE_TRACE_CACHE_DIR="${TEXCACHE_TRACE_CACHE_DIR:-$OUT/trace-cache}"
export TEXCACHE_TRACE_CACHE_DIR
failed=""
total=0
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    start=$(date +%s)
    if "$b" > "$OUT/$name.txt" 2> "$OUT/$name.err"; then
        status=ok
    else
        echo "== $name FAILED (exit $?); stderr in $OUT/$name.err" >&2
        failed="$failed $name"
        status=FAILED
    fi
    end=$(date +%s)
    elapsed=$((end - start))
    total=$((total + elapsed))
    echo "== $name ${elapsed}s (cumulative ${total}s) $status"
done
echo "wrote $(ls "$OUT" | wc -l) result files to $OUT/ in ${total}s"
if [ -n "$failed" ]; then
    echo "FAILED benches:$failed" >&2
    exit 1
fi
