/**
 * @file
 * Experiment harness: scene/trace caching and the simulation runners
 * behind every figure and table reproduction.
 *
 * Rendering the benchmark scenes is the expensive step, so a TraceStore
 * memoizes (scene, rasterization order) -> RenderOutput within one
 * process. The runner functions replay a trace through a SceneLayout
 * into cache models and return the statistics the paper plots.
 */

#ifndef TEXCACHE_CORE_EXPERIMENT_HH
#define TEXCACHE_CORE_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "cache/cache_sim.hh"
#include "cache/stack_dist.hh"
#include "cache/three_c.hh"
#include "core/scene_layout.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

namespace texcache {

/** Memoizes built scenes and rendered traces for one process. */
class TraceStore
{
  public:
    /** The (memoized) scene object. */
    const Scene &scene(BenchScene s);

    /** The (memoized) render output for a scene and raster order. */
    const RenderOutput &output(BenchScene s, const RasterOrder &order);

    /** Shorthand for output(...).trace. */
    const TexelTrace &
    trace(BenchScene s, const RasterOrder &order)
    {
        return output(s, order).trace;
    }

  private:
    std::map<int, Scene> scenes_;
    std::map<std::pair<int, std::string>, RenderOutput> outputs_;
};

/** Replay a trace through a layout into a stack-distance profiler. */
StackDistProfiler profileTrace(const TexelTrace &trace,
                               const SceneLayout &layout,
                               unsigned line_bytes);

/** Replay a trace through a layout into one cache configuration. */
CacheStats runCache(const TexelTrace &trace, const SceneLayout &layout,
                    const CacheConfig &config);

/** Replay with side-by-side FA twin for 3-C classification. */
MissBreakdown classifyCache(const TexelTrace &trace,
                            const SceneLayout &layout,
                            const CacheConfig &config);

/** Power-of-two cache sizes from @p lo to @p hi inclusive (bytes). */
std::vector<uint64_t> cacheSizeSweep(uint64_t lo = 1 << 10,
                                     uint64_t hi = 512 << 10);

/**
 * First significant working set (section 5.2.3): the smallest swept
 * size capturing at least @p capture of the achievable miss-rate
 * reduction between the smallest and largest swept caches - i.e. the
 * end of the steep part of the miss-rate-versus-size curve.
 */
uint64_t firstWorkingSet(const StackDistProfiler &prof,
                         const std::vector<uint64_t> &sizes,
                         double capture = 0.85);

} // namespace texcache

#endif // TEXCACHE_CORE_EXPERIMENT_HH
