/**
 * @file
 * Asynchronous page fetch queue with MSHR-style deduplication.
 *
 * A page miss does not stall the pipeline (the sampler degrades
 * instead, vt_sampler.hh); it enqueues an asynchronous fetch. The
 * queue mirrors a hardware miss-status holding register file:
 *
 *  - a request for a page already in flight merges into the existing
 *    entry (a dedup hit) - the same page is never issued twice while
 *    outstanding;
 *  - at most maxInFlight fetches are outstanding; requests beyond
 *    that are dropped and must be re-requested by a later access
 *    (the degradation path keeps rendering meanwhile);
 *  - each issued fetch is charged real transfer time on the shared
 *    DRAM bus via timing/dram_model, plus a fixed request latency, so
 *    completion times reflect burst setup, row locality and bus
 *    serialization.
 *
 * Time is the vt subsystem's access tick (one tick per page-granular
 * touch, see vt_memory.hh); DRAM bus cycles are taken 1:1 as ticks.
 */

#ifndef TEXCACHE_VT_FETCH_QUEUE_HH
#define TEXCACHE_VT_FETCH_QUEUE_HH

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "stats/stats.hh"
#include "timing/dram_model.hh"
#include "tracing/tracing.hh"
#include "vt/page_pool.hh"

namespace texcache {

/** Fetch queue parameters. */
struct FetchQueueConfig
{
    unsigned maxInFlight = 16;  ///< outstanding-request (MSHR) limit
    uint64_t baseLatency = 64;  ///< fixed ticks from issue to first data
};

/** Queue behavior counters accumulated over a run. */
struct FetchQueueStats
{
    uint64_t requests = 0;  ///< all request() calls
    uint64_t issued = 0;    ///< fetches actually sent to memory
    uint64_t dedupHits = 0; ///< merged into an in-flight fetch
    uint64_t drops = 0;     ///< rejected: outstanding limit reached
    uint64_t completed = 0;
    /** Queue depth observed at each request (log2 buckets; its count
     *  equals requests, its max the deepest observed queue). */
    stats::Distribution depth;

    double avgDepth() const { return depth.mean(); }
    uint64_t maxDepth() const { return depth.max(); }
};

/** Outcome of one fetch request. */
enum class FetchResult : uint8_t
{
    Issued, ///< new fetch sent to memory
    Merged, ///< dedup hit on an in-flight fetch
    Dropped ///< outstanding-request limit reached
};

/** Bounded in-flight fetch tracker charged against a DRAM model. */
class FetchQueue
{
  public:
    FetchQueue(const FetchQueueConfig &config, const DramConfig &dram,
               unsigned page_bytes);

    /**
     * Request @p page (whose first byte is @p page_base) at time
     * @p now. Never issues a page that is already in flight.
     */
    FetchResult request(PageId page, Addr page_base, uint64_t now);

    /**
     * Retire every fetch whose data has arrived by @p now, invoking
     * @p sink(page) for each in completion order.
     */
    template <typename Fn>
    void
    drain(uint64_t now, Fn &&sink)
    {
        while (!queue_.empty() && queue_.front().ready <= now) {
            const Pending &front = queue_.front();
            PageId p = front.page;
            if (tracing::enabled(tracing::kFetches))
                tracing::fetchEvent(
                    tracing::EventKind::FetchComplete, p, front.ready,
                    static_cast<uint32_t>(front.ready - front.issued));
            queue_.pop_front();
            inFlight_.erase(p);
            ++stats_.completed;
            sink(p);
        }
    }

    /** Retire everything regardless of time (end-of-frame settle). */
    template <typename Fn>
    void
    drainAll(Fn &&sink)
    {
        drain(~0ULL, sink);
    }

    bool inFlight(PageId p) const { return inFlight_.count(p) != 0; }
    unsigned depth() const
    {
        return static_cast<unsigned>(queue_.size());
    }

    const FetchQueueStats &stats() const { return stats_; }
    const DramStats &dramStats() const { return dram_.stats(); }
    const FetchQueueConfig &config() const { return config_; }

  private:
    struct Pending
    {
        PageId page;
        uint64_t ready;  ///< tick the data arrives
        uint64_t issued; ///< tick the request entered the queue
    };

    FetchQueueConfig config_;
    DramModel dram_;
    unsigned pageBytes_;
    /// Completion times are monotone in issue order (one shared bus),
    /// so a FIFO holds the in-flight set sorted by readiness.
    std::deque<Pending> queue_;
    std::unordered_set<PageId> inFlight_;
    uint64_t busFree_ = 0;
    FetchQueueStats stats_;
};

} // namespace texcache

#endif // TEXCACHE_VT_FETCH_QUEUE_HH
