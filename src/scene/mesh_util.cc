#include "scene/mesh_util.hh"

#include <algorithm>

namespace texcache {

float
lambertShade(Vec3 normal, Vec3 light_dir, float ambient)
{
    float ndl = normal.normalized().dot(light_dir.normalized() * -1.0f);
    ndl = std::max(0.0f, ndl);
    return std::min(1.0f, ambient + (1.0f - ambient) * ndl);
}

unsigned
addQuadPatch(Scene &scene, uint16_t texture, Vec3 p00, Vec3 p10, Vec3 p11,
             Vec3 p01, Vec2 uv00, Vec2 uv11, unsigned nu, unsigned nv,
             Vec3 light_dir)
{
    Vec3 normal = (p10 - p00).cross(p01 - p00);
    float shade = lambertShade(normal, light_dir);

    auto corner = [&](float s, float t) {
        Vec3 bottom = p00 + (p10 - p00) * s;
        Vec3 top = p01 + (p11 - p01) * s;
        SceneVertex v;
        v.pos = bottom + (top - bottom) * t;
        v.uv = {uv00.x + (uv11.x - uv00.x) * s,
                uv00.y + (uv11.y - uv00.y) * t};
        v.shade = shade;
        return v;
    };

    unsigned added = 0;
    for (unsigned j = 0; j < nv; ++j) {
        for (unsigned i = 0; i < nu; ++i) {
            float s0 = static_cast<float>(i) / nu;
            float s1 = static_cast<float>(i + 1) / nu;
            float t0 = static_cast<float>(j) / nv;
            float t1 = static_cast<float>(j + 1) / nv;
            SceneVertex v00 = corner(s0, t0);
            SceneVertex v10 = corner(s1, t0);
            SceneVertex v11 = corner(s1, t1);
            SceneVertex v01 = corner(s0, t1);
            scene.triangles.push_back({{v00, v10, v11}, texture});
            scene.triangles.push_back({{v00, v11, v01}, texture});
            added += 2;
        }
    }
    return added;
}

} // namespace texcache
