/**
 * @file
 * Reproduces Figure 6.4: the effect of tiled rasterization (8x8 pixel
 * tiles) combined with padded or 6-D blocked texture representations on
 * block conflict misses. Textures in 8x8 blocks, 128-byte lines,
 * 2-way set-associative caches (vs a fully associative reference).
 *
 * Panel (a) Town (column-major within and between tiles): tiling alone
 * removes most same-array block conflicts.
 * Panel (b) Flight: its large terrain textures make whole block rows a
 * multiple of the cache size, so tiling alone is NOT enough - padding
 * or 6-D blocking is needed to stop same-column neighbor conflicts.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

constexpr unsigned kLine = 128;

LayoutParams
withKind(LayoutKind kind, uint64_t cache_size)
{
    LayoutParams p;
    p.kind = kind;
    p.blockW = p.blockH = 8;
    p.padBlocks = 4;
    p.coarseBytes = cache_size;
    return p;
}

void
panel(const char *title, BenchScene s)
{
    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 128 << 10);
    TextTable table(title);
    std::vector<std::string> header = {"Series"};
    for (uint64_t sz : sizes)
        header.push_back(fmtBytes(sz));
    table.header(header);

    struct Series
    {
        const char *label;
        bool tiled;
        LayoutKind kind;
        bool fully;
    };
    const Series series[] = {
        {"2way blocked nontiled", false, LayoutKind::Blocked, false},
        {"2way blocked tiled", true, LayoutKind::Blocked, false},
        {"2way padded tiled", true, LayoutKind::PaddedBlocked, false},
        {"2way 6D tiled", true, LayoutKind::Blocked6D, false},
        {"full blocked tiled", true, LayoutKind::Blocked, true},
    };

    for (const Series &ser : series) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, ser.tiled, 8));
        std::vector<std::string> row = {ser.label};
        for (uint64_t size : sizes) {
            // 6-D blocking sizes its super-block to the cache.
            SceneLayout layout(store().scene(s),
                               withKind(ser.kind, size));
            CacheConfig cfg{size, kLine,
                            ser.fully ? CacheConfig::kFullyAssoc : 2u};
            if (!ser.fully && size / kLine < 2) {
                row.push_back("-");
                continue;
            }
            CacheStats stats = runCache(out.trace, layout, cfg);
            row.push_back(fmtPercent(stats.missRate()));
        }
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    panel("Figure 6.4(a): Town-vertical, 8x8 blocks, 128B lines, 8x8 "
          "tiles",
          BenchScene::Town);
    panel("Figure 6.4(b): Flight-horizontal, 8x8 blocks, 128B lines, "
          "8x8 tiles",
          BenchScene::Flight);
    std::cout << "Paper reference: tiling alone fixes Town's block "
                 "conflicts; Flight's big textures also need padding "
                 "or 6-D blocking to approach the FA curve.\n";
    return 0;
}
