/** @file
 * Unit and property tests for the texture memory representations
 * (paper sections 5 and 6.2).
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "layout/blocked.hh"
#include "layout/layout.hh"
#include "layout/nonblocked.hh"
#include "layout/williams.hh"

using namespace texcache;

namespace {

std::vector<LevelDims>
pyramid(unsigned w, unsigned h)
{
    std::vector<LevelDims> d;
    while (true) {
        d.push_back({w, h});
        if (w == 1 && h == 1)
            break;
        w = w > 1 ? w / 2 : 1;
        h = h > 1 ? h / 2 : 1;
    }
    return d;
}

} // namespace

TEST(AddressSpace, AlignsAndGrows)
{
    AddressSpace space(4096);
    Addr a = space.allocate(100);
    Addr b = space.allocate(100);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_GE(space.used(), b + 100);
}

TEST(AddressSpace, RejectsNonPowerAlignment)
{
    EXPECT_EXIT(AddressSpace(100), ::testing::ExitedWithCode(1),
                "not a power of two");
}

TEST(Nonblocked, MatchesPaperFormula)
{
    // Texel address = base + ((tv << lw) + tu) * 4.
    AddressSpace space;
    NonblockedLayout lay(pyramid(8, 8), space);
    Addr a0[3], a1[3], a2[3];
    lay.addresses({0, 0, 0}, a0);
    lay.addresses({0, 3, 0}, a1);
    lay.addresses({0, 0, 2}, a2);
    EXPECT_EQ(a1[0] - a0[0], 3u * 4);
    EXPECT_EQ(a2[0] - a0[0], 2u * 8 * 4);
}

TEST(Nonblocked, LevelsAreDisjointArrays)
{
    AddressSpace space;
    NonblockedLayout lay(pyramid(16, 16), space);
    Addr lo[3], hi[3];
    lay.addresses({0, 15, 15}, lo); // last texel of level 0
    lay.addresses({1, 0, 0}, hi);   // first texel of level 1
    EXPECT_GE(hi[0], lo[0] + 4);
}

TEST(Williams, EmitsThreeComponentAddresses)
{
    AddressSpace space;
    WilliamsLayout lay(pyramid(8, 8), space);
    Addr a[3];
    EXPECT_EQ(lay.addresses({0, 0, 0}, a), 3u);
    // Component planes are separated by power-of-two offsets: R at
    // (8,0), G at (0,8), B at (8,8) in a 16-wide byte array.
    EXPECT_EQ(a[1] - a[0], 8u * 16 - 8); // G - R
    EXPECT_EQ(a[2] - a[0], 8u * 16);     // B - R
}

TEST(Williams, RejectsNonSquareTextures)
{
    AddressSpace space;
    EXPECT_EXIT(WilliamsLayout(pyramid(8, 32), space),
                ::testing::ExitedWithCode(1), "square");
}

TEST(Williams, CostReflectsThreeAccesses)
{
    AddressSpace space;
    WilliamsLayout lay(pyramid(8, 8), space);
    EXPECT_EQ(lay.cost().accessesPerTexel, 3u);
}

TEST(Blocked, TexelsWithinBlockAreContiguous)
{
    AddressSpace space;
    BlockedLayout lay(pyramid(16, 16), space, 4, 4);
    // All 16 texels of block (0,0) of level 0 occupy one 64-byte run.
    Addr base[3];
    lay.addresses({0, 0, 0}, base);
    std::set<Addr> seen;
    for (unsigned v = 0; v < 4; ++v)
        for (unsigned u = 0; u < 4; ++u) {
            Addr a[3];
            lay.addresses({0, static_cast<uint16_t>(u),
                           static_cast<uint16_t>(v)},
                          a);
            EXPECT_GE(a[0], base[0]);
            EXPECT_LT(a[0], base[0] + 64);
            seen.insert(a[0]);
        }
    EXPECT_EQ(seen.size(), 16u); // all distinct
}

TEST(Blocked, NeighboringBlocksAreBlockBytesApart)
{
    AddressSpace space;
    BlockedLayout lay(pyramid(32, 32), space, 4, 4);
    Addr a[3], b[3];
    lay.addresses({0, 0, 0}, a);
    lay.addresses({0, 4, 0}, b); // next block in the row
    EXPECT_EQ(b[0] - a[0], 4u * 4 * 4);
}

TEST(Blocked, MatchesPaperTwoStepFormula)
{
    // Verify against a hand-computed example: 16x16 level, 4x4 blocks.
    // Texel (tu=7, tv=5): bx=1, by=1, sx=3, sy=1.
    // rs = width*bh*4 = 16*4*4 = 256; bs = 64.
    // addr = base + 1*256 + 1*64 + (1*4 + 3)*4 = base + 348.
    AddressSpace space;
    BlockedLayout lay(pyramid(16, 16), space, 4, 4);
    Addr base[3], t[3];
    lay.addresses({0, 0, 0}, base);
    lay.addresses({0, 7, 5}, t);
    EXPECT_EQ(t[0] - base[0], 256u + 64 + 28);
}

TEST(Blocked, CoarseLevelsClampBlockDims)
{
    // A 2x2 level with 8x8 blocks must still address within 2x2*4
    // bytes and stay bijective.
    AddressSpace space;
    BlockedLayout lay(pyramid(8, 8), space, 8, 8);
    std::set<Addr> seen;
    for (unsigned v = 0; v < 2; ++v)
        for (unsigned u = 0; u < 2; ++u) {
            Addr a[3];
            lay.addresses({2, static_cast<uint16_t>(u),
                           static_cast<uint16_t>(v)},
                          a);
            seen.insert(a[0]);
        }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Padded, ShiftsBlockRowsApart)
{
    // With pad blocks, vertically adjacent blocks differ by the pad in
    // addition to the row stride.
    AddressSpace s1, s2;
    BlockedLayout plain(pyramid(64, 64), s1, 8, 8);
    PaddedBlockedLayout padded(pyramid(64, 64), s2, 8, 8, 4);

    Addr p0[3], p1[3], q0[3], q1[3];
    plain.addresses({0, 0, 0}, p0);
    plain.addresses({0, 0, 8}, p1); // next block row
    padded.addresses({0, 0, 0}, q0);
    padded.addresses({0, 0, 8}, q1);

    uint64_t plain_stride = p1[0] - p0[0];
    uint64_t padded_stride = q1[0] - q0[0];
    // Pad = 4 blocks of 8x8 texels = 1024 bytes.
    EXPECT_EQ(padded_stride, plain_stride + 4u * 8 * 8 * 4);
}

TEST(Padded, FootprintIncludesPad)
{
    AddressSpace s1, s2;
    BlockedLayout plain(pyramid(64, 64), s1, 8, 8);
    PaddedBlockedLayout padded(pyramid(64, 64), s2, 8, 8, 4);
    EXPECT_GT(padded.footprint(), plain.footprint());
}

TEST(Blocked6D, SuperBlockFitsCoarseBudget)
{
    AddressSpace space;
    Blocked6DLayout lay(pyramid(256, 256), space, 8, 8, 32 * 1024);
    // Largest square power-of-two region <= 32 KB at 4 B/texel: 64x64
    // (16 KB); 128x128 would be 64 KB.
    EXPECT_EQ(lay.coarseW(), 64u);
    uint64_t bytes =
        static_cast<uint64_t>(lay.coarseW()) * lay.coarseW() * 4;
    EXPECT_LE(bytes, 32u * 1024);
}

TEST(Blocked6D, SuperBlockIsContiguous)
{
    AddressSpace space;
    Blocked6DLayout lay(pyramid(256, 256), space, 8, 8, 32 * 1024);
    unsigned cw = lay.coarseW();
    uint64_t cb_bytes = static_cast<uint64_t>(cw) * cw * 4;
    Addr first[3];
    lay.addresses({0, 0, 0}, first);
    // Every texel of super-block (0,0) lands inside one cb_bytes run.
    for (unsigned v = 0; v < cw; v += 7)
        for (unsigned u = 0; u < cw; u += 7) {
            Addr a[3];
            lay.addresses({0, static_cast<uint16_t>(u),
                           static_cast<uint16_t>(v)},
                          a);
            ASSERT_GE(a[0], first[0]);
            ASSERT_LT(a[0], first[0] + cb_bytes);
        }
    // And the next super-block starts exactly cb_bytes later.
    Addr next[3];
    lay.addresses({0, static_cast<uint16_t>(cw), 0}, next);
    EXPECT_EQ(next[0] - first[0], cb_bytes);
}

TEST(LayoutFactory, BuildsEveryKind)
{
    for (LayoutKind k :
         {LayoutKind::Williams, LayoutKind::Nonblocked,
          LayoutKind::Blocked, LayoutKind::PaddedBlocked,
          LayoutKind::Blocked6D}) {
        AddressSpace space;
        LayoutParams p;
        p.kind = k;
        auto lay = makeLayout(p, pyramid(32, 32), space);
        ASSERT_NE(lay, nullptr);
        EXPECT_GT(lay->footprint(), 0u);
        EXPECT_FALSE(lay->name().empty());
    }
}

TEST(LayoutCosts, BlockedFamilyAddsTheStatedAdders)
{
    // Section 5.3.1: blocked costs two extra adds over nonblocked;
    // section 6.2: padding adds one more, 6-D blocking two more.
    AddressSpace s;
    NonblockedLayout base(pyramid(8, 8), s);
    BlockedLayout blocked(pyramid(8, 8), s, 4, 4);
    PaddedBlockedLayout padded(pyramid(8, 8), s, 4, 4, 4);
    Blocked6DLayout six(pyramid(8, 8), s, 4, 4, 32 * 1024);
    EXPECT_EQ(blocked.cost().adds, base.cost().adds + 2);
    EXPECT_EQ(padded.cost().adds, blocked.cost().adds + 1);
    EXPECT_EQ(six.cost().adds, blocked.cost().adds + 2);
}

/**
 * Property test: every layout maps distinct texel coordinates to
 * distinct primary addresses (bijectivity), across the whole pyramid,
 * including levels smaller than the block dimensions.
 */
class LayoutBijectivity
    : public ::testing::TestWithParam<std::tuple<LayoutKind, unsigned,
                                                 unsigned>>
{};

TEST_P(LayoutBijectivity, DistinctTexelsDistinctAddresses)
{
    auto [kind, w, h] = GetParam();
    if (kind == LayoutKind::Williams && w != h)
        GTEST_SKIP() << "Williams requires square textures";
    AddressSpace space;
    LayoutParams p;
    p.kind = kind;
    p.blockW = 4;
    p.blockH = 4;
    p.padBlocks = 2;
    p.coarseBytes = 4 * 1024;
    auto lay = makeLayout(p, pyramid(w, h), space);

    std::set<Addr> seen;
    uint64_t texels = 0;
    for (unsigned l = 0; l < lay->numLevels(); ++l) {
        LevelDims d = lay->dims(l);
        for (unsigned v = 0; v < d.h; ++v)
            for (unsigned u = 0; u < d.w; ++u) {
                Addr a[3];
                unsigned n = lay->addresses(
                    {static_cast<uint16_t>(l),
                     static_cast<uint16_t>(u),
                     static_cast<uint16_t>(v)},
                    a);
                // Primary address unique across the texture. (For
                // Williams all three component addresses must be
                // globally unique.)
                for (unsigned i = 0; i < n; ++i)
                    ASSERT_TRUE(seen.insert(a[i]).second)
                        << lay->name() << " level " << l << " (" << u
                        << "," << v << ")";
                ++texels;
            }
    }
    EXPECT_GT(texels, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayoutsAndShapes, LayoutBijectivity,
    ::testing::Combine(
        ::testing::Values(LayoutKind::Williams, LayoutKind::Nonblocked,
                          LayoutKind::Blocked, LayoutKind::PaddedBlocked,
                          LayoutKind::Blocked6D),
        ::testing::Values(8u, 32u, 64u), ::testing::Values(8u, 32u)));

/** Addresses always fall inside the texture's allocated footprint. */
class LayoutContainment : public ::testing::TestWithParam<LayoutKind>
{};

TEST_P(LayoutContainment, AddressesWithinFootprint)
{
    AddressSpace space;
    LayoutParams p;
    p.kind = GetParam();
    auto lay = makeLayout(p, pyramid(32, 32), space);
    uint64_t hi = space.used();
    for (unsigned l = 0; l < lay->numLevels(); ++l) {
        LevelDims d = lay->dims(l);
        for (unsigned v = 0; v < d.h; ++v)
            for (unsigned u = 0; u < d.w; ++u) {
                Addr a[3];
                unsigned n = lay->addresses(
                    {static_cast<uint16_t>(l),
                     static_cast<uint16_t>(u),
                     static_cast<uint16_t>(v)},
                    a);
                for (unsigned i = 0; i < n; ++i)
                    ASSERT_LT(a[i], hi);
            }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutContainment,
    ::testing::Values(LayoutKind::Williams, LayoutKind::Nonblocked,
                      LayoutKind::Blocked, LayoutKind::PaddedBlocked,
                      LayoutKind::Blocked6D));
