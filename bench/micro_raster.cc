/**
 * @file
 * Google-benchmark microbenchmark for the rasterizer and sampler hot
 * paths: fragments/second through triangle traversal and mip-mapped
 * trilinear filtering.
 */

#include <benchmark/benchmark.h>

#include "img/procedural.hh"
#include "raster/rasterizer.hh"
#include "raster/span_rasterizer.hh"
#include "texture/sampler.hh"

using namespace texcache;

namespace {

ScreenVertex
sv(float x, float y, float w, float u, float v)
{
    ScreenVertex r;
    r.x = x;
    r.y = y;
    r.z = 0.5f;
    r.invW = 1.0f / w;
    r.uOverW = u / w;
    r.vOverW = v / w;
    return r;
}

void
rasterizeBigTriangle(benchmark::State &state)
{
    RasterOrder order = state.range(0) == 0
                            ? RasterOrder::horizontal()
                            : RasterOrder::tiledOrder(8, 8);
    TriangleSetup tri(sv(0, 0, 1, 0, 0), sv(255, 0, 2, 1, 0),
                      sv(0, 255, 2, 0, 1));
    uint64_t frags = 0;
    for (auto _ : state) {
        frags = 0;
        rasterizeTriangle(tri, 256, 256, order,
                          [&](const Fragment &f) {
                              benchmark::DoNotOptimize(f.u);
                              ++frags;
                          });
    }
    state.SetItemsProcessed(state.iterations() * frags);
    state.counters["fragments"] = static_cast<double>(frags);
}

void
trilinearSample(benchmark::State &state)
{
    static MipMap mip(makeChecker(256, 32, Rgba8{255, 255, 255, 255},
                                  Rgba8{0, 0, 0, 255}));
    uint32_t x = 99;
    for (auto _ : state) {
        x = x * 1664525u + 1013904223u;
        float u = static_cast<float>(x & 0xffff) / 65536.0f;
        float v = static_cast<float>((x >> 16) & 0x7fff) / 32768.0f;
        float lambda = static_cast<float>((x >> 28) & 7) * 0.7f;
        SampleResult s = sampleMipMap(mip, u, v, lambda);
        benchmark::DoNotOptimize(s.color.x);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

void
rasterizeBigTriangleSpans(benchmark::State &state)
{
    TriangleSetup tri(sv(0, 0, 1, 0, 0), sv(255, 0, 2, 1, 0),
                      sv(0, 255, 2, 0, 1));
    uint64_t frags = 0;
    for (auto _ : state) {
        frags = 0;
        rasterizeTriangleSpans(tri, 256, 256,
                               ScanDirection::Horizontal,
                               [&](const Fragment &f) {
                                   benchmark::DoNotOptimize(f.u);
                                   ++frags;
                               });
    }
    state.SetItemsProcessed(state.iterations() * frags);
    state.counters["fragments"] = static_cast<double>(frags);
}

BENCHMARK(rasterizeBigTriangle)
    ->Arg(0)
    ->ArgName("order")
    ->Arg(1);
BENCHMARK(rasterizeBigTriangleSpans);
BENCHMARK(trilinearSample);

BENCHMARK_MAIN();
