/** @file Tests for the two-level (private L1 + shared L2) hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"

using namespace texcache;

namespace {

const CacheConfig kL1{1024, 32, 2};
const CacheConfig kL2{16 * 1024, 32, 4};

} // namespace

TEST(Hierarchy, MissPathEscalates)
{
    TwoLevelCache h(2, kL1, kL2);
    EXPECT_EQ(h.access(0, 0), HierarchyHit::Memory); // cold everywhere
    EXPECT_EQ(h.access(0, 0), HierarchyHit::L1);     // now in L1 #0
    // Same line from the other generator: misses its L1, hits the
    // shared L2 - the read-only sharing the design exploits.
    EXPECT_EQ(h.access(1, 0), HierarchyHit::L2);
    EXPECT_EQ(h.access(1, 0), HierarchyHit::L1);
}

TEST(Hierarchy, L2SeesOnlyL1Misses)
{
    TwoLevelCache h(1, kL1, kL2);
    for (int i = 0; i < 100; ++i)
        h.access(0, 0); // 1 miss + 99 L1 hits
    EXPECT_EQ(h.l1Stats(0).accesses, 100u);
    EXPECT_EQ(h.l2Stats().accesses, 1u);
    EXPECT_EQ(h.memoryFills(), 1u);
}

TEST(Hierarchy, SharedL2AbsorbsCrossGeneratorRefetches)
{
    // Interleave one working set across 4 generators: private L1s
    // each re-fetch the lines, but only the first touch reaches
    // memory.
    TwoLevelCache h(4, kL1, kL2);
    for (unsigned pass = 0; pass < 4; ++pass)
        for (uint64_t line = 0; line < 64; ++line)
            h.access((pass + static_cast<unsigned>(line)) % 4,
                     line * 32);
    EXPECT_EQ(h.memoryFills(), 64u);
    EXPECT_GT(h.l2Stats().accesses, 64u); // cross-generator misses
}

TEST(Hierarchy, TotalAccessesSumsL1s)
{
    TwoLevelCache h(3, kL1, kL2);
    h.access(0, 0);
    h.access(1, 32);
    h.access(1, 64);
    h.access(2, 0);
    EXPECT_EQ(h.totalAccesses(), 4u);
}

TEST(Hierarchy, MemoryBytesUseL2Line)
{
    CacheConfig l2 = kL2;
    l2.lineBytes = 128;
    TwoLevelCache h(1, kL1, l2);
    h.access(0, 0);
    EXPECT_EQ(h.memoryBytes(), 128u);
}

TEST(Hierarchy, RejectsBadGeometry)
{
    EXPECT_EXIT(TwoLevelCache(0, kL1, kL2),
                ::testing::ExitedWithCode(1), "at least one");
    CacheConfig small_line = kL2;
    small_line.lineBytes = 16;
    EXPECT_EXIT(TwoLevelCache(1, kL1, small_line),
                ::testing::ExitedWithCode(1), "smaller than L1");
}

TEST(Hierarchy, NeverWorseThanNoL2OnMemoryTraffic)
{
    // Property: for any trace, memory fills through the hierarchy are
    // at most the L1s' total misses (the L2 can only filter).
    Rng rng(3);
    TwoLevelCache h(2, kL1, kL2);
    uint64_t cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        cursor = (cursor + rng.below(256)) & 0x7fff;
        h.access(rng.below(2), cursor);
    }
    uint64_t l1_misses =
        h.l1Stats(0).misses + h.l1Stats(1).misses;
    EXPECT_LE(h.memoryFills(), l1_misses);
    EXPECT_EQ(h.l2Stats().accesses, l1_misses);
}
