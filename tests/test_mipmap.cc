/** @file Unit tests for the mip-map pyramid builder. */

#include <gtest/gtest.h>

#include "img/procedural.hh"
#include "texture/mipmap.hh"

using namespace texcache;

TEST(MipMap, LevelCountAndDims)
{
    MipMap m(Image(64, 64));
    EXPECT_EQ(m.numLevels(), 7u); // 64,32,16,8,4,2,1
    EXPECT_EQ(m.width(0), 64u);
    EXPECT_EQ(m.width(6), 1u);
    EXPECT_EQ(m.height(3), 8u);
}

TEST(MipMap, NonSquareClampsAtOne)
{
    MipMap m(Image(16, 4));
    // 16x4, 8x2, 4x1, 2x1, 1x1 -> 5 levels.
    EXPECT_EQ(m.numLevels(), 5u);
    EXPECT_EQ(m.width(2), 4u);
    EXPECT_EQ(m.height(2), 1u);
    EXPECT_EQ(m.width(4), 1u);
    EXPECT_EQ(m.height(4), 1u);
}

TEST(MipMap, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(MipMap(Image(48, 64)), ::testing::ExitedWithCode(1),
                "not powers of two");
}

TEST(MipMap, ConstantImageStaysConstant)
{
    MipMap m(Image(32, 32, Rgba8{100, 150, 200, 255}));
    for (unsigned l = 0; l < m.numLevels(); ++l) {
        const Image &img = m.level(l);
        for (unsigned y = 0; y < img.height(); ++y)
            for (unsigned x = 0; x < img.width(); ++x)
                ASSERT_EQ(img.texel(x, y),
                          (Rgba8{100, 150, 200, 255}));
    }
}

TEST(MipMap, BoxFilterAverages2x2)
{
    Image base(2, 2);
    base.at(0, 0) = {0, 0, 0, 255};
    base.at(1, 0) = {40, 0, 0, 255};
    base.at(0, 1) = {80, 0, 0, 255};
    base.at(1, 1) = {120, 0, 0, 255};
    MipMap m(std::move(base));
    ASSERT_EQ(m.numLevels(), 2u);
    EXPECT_EQ(m.level(1).at(0, 0).r, 60); // (0+40+80+120+2)/4 = 60
}

TEST(MipMap, CheckerCollapsesToGray)
{
    MipMap m(makeChecker(16, 16, Rgba8{0, 0, 0, 255},
                         Rgba8{255, 255, 255, 255}));
    // One checker cell per pixel; the first filtered level averages
    // one black and one white texel pair -> mid gray everywhere.
    const Image &l1 = m.level(1);
    for (unsigned y = 0; y < l1.height(); ++y)
        for (unsigned x = 0; x < l1.width(); ++x)
            ASSERT_NEAR(l1.texel(x, y).r, 128, 1);
}

TEST(MipMap, StorageBytesIsFourThirds)
{
    MipMap m(Image(256, 256));
    uint64_t base = 256ull * 256 * kBytesPerTexel;
    EXPECT_GT(m.storageBytes(), base);
    EXPECT_LT(m.storageBytes(), base * 4 / 3 + 64);
}
