/**
 * @file
 * In-process sampling profiler with span and request attribution.
 *
 * Always compiled, runtime-armed: TEXCACHE_PROF_HZ=<hz> arms a
 * per-thread POSIX interval timer (timer_create on each thread's CPU
 * clock, SIGEV_THREAD_ID delivery of SIGPROF) so every running thread
 * is sampled at the requested rate of *its own* CPU time - idle
 * threads cost nothing and are never sampled. Disarmed (the default)
 * the profiler costs nothing at all: no handler is installed, no
 * timers exist, and no memory is allocated, matching the tracing
 * layer's discipline.
 *
 * The SIGPROF handler is strictly async-signal-safe: it captures the
 * interrupted PC from the ucontext, walks the frame-pointer chain
 * reading each frame pair through a raw process_vm_readv(2) syscall
 * (which reports EFAULT instead of faulting on a garbage frame
 * pointer), snapshots the thread's innermost active tracing span
 * (tracing::currentSpanId) and the process-wide request tag, and
 * publishes the sample into a fixed-size global ring guarded by
 * per-slot sequence counters. No allocation, no locks, no library
 * calls that might take them; errno is saved and restored.
 * Symbolization happens strictly at dump time via dladdr(3) (the
 * build exports executable symbols for this; see CMAKE_ENABLE_EXPORTS)
 * with an unresolved-PC fallback of module+offset from the mapping
 * base.
 *
 * New threads are discovered by a watcher thread that rescans
 * /proc/self/task every 100 ms and creates a timer for each new tid,
 * so the sweep pool, tile renderers and service dispatcher are all
 * profiled without hooking any thread-creation site. Threads born
 * between scans lose at most 100 ms of samples.
 *
 * Attribution axes carried by every sample:
 *  - span: the innermost active tracing span on the sampled thread
 *    (sweep point, render phase, ...), maintained via the tracing
 *    layer's kSpanCtx mask bit even when event tracing is off;
 *  - tag: a process-wide request id (setRequestTag) the texcached
 *    dispatcher publishes around each batch execution, so per-request
 *    CPU profiles slice out of one shared ring. The tag is global,
 *    not per-thread, because a request's sweep fans out across the
 *    worker pool; batches execute serially on one dispatcher, so a
 *    global tag attributes pool workers correctly.
 *
 * Dump formats: collapsed-stack text (flamegraph.pl compatible,
 * "span:<name>;outer;...;leaf count" lines) and speedscope-loadable
 * JSON, both written next to the other run artifacts under
 * TEXCACHE_STATS_DIR and registered in run manifests.
 */

#ifndef TEXCACHE_PROF_PROF_HH
#define TEXCACHE_PROF_PROF_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace texcache {
namespace prof {

/** Deepest stack the handler records (leaf plus 39 callers). */
constexpr unsigned kMaxFrames = 40;

/** One captured sample. frames[0] is the interrupted (leaf) PC;
 *  frames[1..nframes-1] are return addresses, innermost first. */
struct Sample
{
    uint64_t frames[kMaxFrames];
    uint64_t tag;     ///< request tag at capture time (0 = none)
    uint32_t tid;     ///< kernel tid of the sampled thread
    uint16_t span;    ///< tracing span name id, or tracing::kNoSpanId
    uint16_t nframes; ///< valid frames (>= 1)
};

/** Arming parameters (env: TEXCACHE_PROF_HZ, TEXCACHE_PROF_BUF). */
struct Options
{
    unsigned hz = 997;              ///< per-thread CPU-time sample rate
    uint64_t capacity = 1ull << 16; ///< samples the global ring holds
};

/**
 * Arm the profiler: allocate the ring, install the SIGPROF handler,
 * enable tracing span context and start the thread watcher. Safe to
 * call once threads are already running - they are discovered on the
 * first scan. Returns false (with a warn()) if the kernel refuses
 * per-thread CPU-clock timers; true if already armed.
 */
bool start(const Options &opts);

/**
 * Disarm: gate the handler off, delete all timers, stop the watcher
 * and disable span context. Captured samples are kept for dumping.
 */
void stop();

/** Is the profiler currently armed? */
bool armed();

/** The armed sample rate in Hz (0 when disarmed). */
unsigned hz();

/** Ring accounting. */
struct Counts
{
    uint64_t total = 0;    ///< samples ever captured
    uint64_t retained = 0; ///< samples currently in the ring
    uint64_t dropped = 0;  ///< overwritten by ring wraparound
};

Counts counts();

/**
 * Publish the request id the process is currently executing (0 to
 * clear). A single relaxed atomic store; the handler snapshots it
 * into every sample on every thread.
 */
void setRequestTag(uint64_t tag);

/**
 * Copy out every sample currently retained in the ring, skipping
 * slots a concurrent writer is mid-update on. Oldest first.
 */
std::vector<Sample> snapshotSamples();

/**
 * Dump-time PC -> name resolver. dladdr per unique PC, demangled,
 * cached; falls back to "module+0x<offset>". Return addresses
 * (frame index > 0) are resolved at pc-1 so they land inside the
 * call instruction.
 */
class Symbolizer
{
  public:
    Symbolizer();

    /** Name for one frame of a sample. */
    std::string frameName(uint64_t pc, bool return_address);

    /** "span:<name>;outer;...;leaf" for @p s (no trailing count). */
    std::string stackLine(const Sample &s);

    /** The sample's span frame alone ("span:<name>"). */
    std::string spanFrame(const Sample &s) const;

  private:
    std::string resolve(uint64_t pc);

    std::vector<std::string> spanNames_;
    std::map<uint64_t, std::string> cache_;
};

/** Write collapsed-stack text: one "stack count" line per unique
 *  stack, flamegraph.pl compatible. */
void writeCollapsed(std::ostream &os);

/** Write a speedscope-loadable JSON profile (unique stacks with
 *  weights; one synthetic "span:<name>" root frame per stack). */
void writeSpeedscope(std::ostream &os, const std::string &name);

/**
 * Write the per-request profile document served by the texcached
 * "profile" control request: ring accounting plus, per request tag,
 * the sample count and the top @p max_stacks collapsed stacks. At
 * most @p max_tags tags are emitted (heaviest by sample count;
 * "requests_truncated" counts the rest), bounding the document well
 * below the service frame limit.
 */
void writeProfileJson(std::ostream &os, size_t max_stacks = 50,
                      size_t max_tags = 64);

/** Where a dump landed, plus its accounting (for run manifests). */
struct DumpInfo
{
    std::string collapsedPath;
    std::string speedscopePath;
    uint64_t samples = 0; ///< retained samples dumped
    uint64_t dropped = 0; ///< lost to ring wraparound
    unsigned hz = 0;
};

/**
 * Write PROF_<name>.collapsed and PROF_<name>.speedscope.json under
 * TEXCACHE_STATS_DIR (default: cwd), reporting both paths via
 * inform() on stderr.
 */
DumpInfo dumpToFiles(const std::string &name);

} // namespace prof
} // namespace texcache

#endif // TEXCACHE_PROF_PROF_HH
