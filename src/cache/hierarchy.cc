#include "cache/hierarchy.hh"

#include "tracing/tracing.hh"

namespace texcache {

TwoLevelCache::TwoLevelCache(unsigned num_l1, const CacheConfig &l1,
                             const CacheConfig &l2)
    : l2_(l2)
{
    fatal_if(num_l1 == 0, "hierarchy needs at least one L1");
    fatal_if(l2.lineBytes < l1.lineBytes,
             "L2 line (", l2.lineBytes, "B) smaller than L1 line (",
             l1.lineBytes, "B)");
    l1s_.reserve(num_l1);
    for (unsigned i = 0; i < num_l1; ++i) {
        l1s_.emplace_back(l1);
        l1s_.back().setTraceTag(tracing::kTagL1);
    }
    // Trace events from the levels are distinguished by tag, so a
    // miss burst can be attributed to a private L1 vs the shared L2.
    l2_.setTraceTag(tracing::kTagL2);
}

HierarchyHit
TwoLevelCache::access(unsigned l1_index, Addr addr)
{
    panic_if(l1_index >= l1s_.size(), "L1 index ", l1_index, " of ",
             l1s_.size());
    if (l1s_[l1_index].access(addr))
        return HierarchyHit::L1;
    // L1 miss: the fill request goes to the shared level.
    if (l2_.access(addr))
        return HierarchyHit::L2;
    if (backend_)
        backend_(addr);
    return HierarchyHit::Memory;
}

uint64_t
TwoLevelCache::totalAccesses() const
{
    uint64_t total = 0;
    for (const CacheSim &c : l1s_)
        total += c.stats().accesses;
    return total;
}

} // namespace texcache
