#include "vt/vt_stats.hh"

namespace texcache {

double
vtAvgResidentPages(const VirtualTextureMemory &mem)
{
    const std::vector<uint64_t> &samples = mem.residencySamples();
    if (samples.empty())
        return 0.0;
    uint64_t sum = 0;
    for (uint64_t s : samples)
        sum += s;
    return static_cast<double>(sum) / samples.size();
}

TextTable
vtSummaryTable(const std::string &title,
               const VirtualTextureMemory &mem,
               const DegradationStats *deg)
{
    const VtConfig &cfg = mem.config();
    const PagePoolStats &pool = mem.pool().stats();
    const FetchQueueStats &fq = mem.fetchQueue().stats();
    const DramStats &dram = mem.fetchQueue().dramStats();

    TextTable t(title);
    t.header({"Metric", "Value"});
    t.row({"Page size", fmtBytes(cfg.pageBytes)});
    t.row({"Pool", fmtBytes(cfg.poolBytes()) + " (" +
                       std::to_string(cfg.poolPages) + " pages)"});
    t.row({"Pages touched", std::to_string(mem.pagesTouched())});
    t.row({"Resident high water",
           std::to_string(pool.residentHighWater)});
    t.row({"Resident avg (sampled)",
           fmtFixed(vtAvgResidentPages(mem), 1)});
    t.row({"Pool lookups", std::to_string(pool.lookups)});
    t.row({"Pool hit rate", fmtPercent(pool.hitRate())});
    t.row({"Evictions", std::to_string(pool.evictions)});
    t.row({"Fetches issued", std::to_string(fq.issued)});
    t.row({"Fetch dedup hits", std::to_string(fq.dedupHits)});
    t.row({"Fetch drops (queue full)", std::to_string(fq.drops)});
    t.row({"Fetch queue depth avg/max",
           fmtFixed(fq.avgDepth(), 2) + "/" +
               std::to_string(fq.maxDepth())});
    t.row({"DRAM row hit rate", fmtPercent(dram.rowHitRate())});
    t.row({"DRAM bus cycles", std::to_string(dram.cycles)});
    if (deg) {
        t.row({"Fragments", std::to_string(deg->fragments)});
        t.row({"Degraded fragments",
               std::to_string(deg->degraded) + " (" +
                   fmtPercent(deg->degradedFraction()) + ")"});
        t.row({"Degradation avg/max delta",
               fmtFixed(deg->avgDelta(), 2) + "/" +
                   std::to_string(deg->maxDelta())});
    }
    return t;
}

void
exportVtStats(stats::Group &g, const VirtualTextureMemory &mem,
              const DegradationStats *deg)
{
    const PagePoolStats &pool = mem.pool().stats();
    const FetchQueueStats &fq = mem.fetchQueue().stats();
    const DramStats &dram = mem.fetchQueue().dramStats();

    g.formula("pages_touched", "unique pages accessed",
              [&mem] { return double(mem.pagesTouched()); });
    g.formula("resident_avg", "mean sampled resident-set size (pages)",
              [&mem] { return vtAvgResidentPages(mem); });

    stats::Group &pg = g.group("pool");
    pg.formula("lookups", "page-granular touches",
               [&pool] { return double(pool.lookups); });
    pg.formula("hits", "touches that found the page resident",
               [&pool] { return double(pool.hits); });
    pg.formula("hit_rate", "hits / lookups",
               [&pool] { return pool.hitRate(); });
    pg.formula("insertions", "pages made resident",
               [&pool] { return double(pool.insertions); });
    pg.formula("evictions", "LRU victims dropped for a new page",
               [&pool] { return double(pool.evictions); });
    pg.formula("resident_high_water", "peak resident pages",
               [&pool] { return double(pool.residentHighWater); });

    stats::Group &fg = g.group("fetch");
    fg.formula("requests", "all fetch requests",
               [&fq] { return double(fq.requests); });
    fg.formula("issued", "fetches sent to memory",
               [&fq] { return double(fq.issued); });
    fg.formula("dedup_hits", "merged into an in-flight fetch",
               [&fq] { return double(fq.dedupHits); });
    fg.formula("drops", "rejected at the outstanding limit",
               [&fq] { return double(fq.drops); });
    fg.formula("completed", "fetches retired",
               [&fq] { return double(fq.completed); });
    fg.distribution("depth", "queue depth observed at each request",
                    fq.depth);

    stats::Group &dg = g.group("dram");
    dg.formula("fills", "page bursts served",
               [&dram] { return double(dram.fills); });
    dg.formula("bytes", "bytes moved on the bus",
               [&dram] { return double(dram.bytes); });
    dg.formula("cycles", "bus-occupied cycles",
               [&dram] { return double(dram.cycles); });
    dg.formula("row_hit_rate", "row-buffer hit rate",
               [&dram] { return dram.rowHitRate(); });

    if (deg) {
        stats::Group &sg = g.group("degradation");
        sg.formula("fragments", "fragments resolved",
                   [deg] { return double(deg->fragments); });
        sg.formula("degraded", "fragments that fell back",
                   [deg] { return double(deg->degraded); });
        sg.formula("degraded_fraction", "degraded / fragments",
                   [deg] { return deg->degradedFraction(); });
        sg.formula("avg_delta", "mean fallback distance (levels)",
                   [deg] { return deg->avgDelta(); });
        sg.formula("max_delta", "deepest fallback (levels)",
                   [deg] { return double(deg->maxDelta()); });
    }
}

TextTable
vtDegradationTable(const std::string &title,
                   const DegradationStats &deg)
{
    TextTable t(title);
    t.header({"LevelsCoarser", "Fragments", "OfDegraded"});
    for (size_t d = 0; d < deg.histogram.size(); ++d) {
        if (!deg.histogram[d])
            continue;
        t.row({std::to_string(d), std::to_string(deg.histogram[d]),
               fmtPercent(deg.degraded
                              ? static_cast<double>(deg.histogram[d]) /
                                    deg.degraded
                              : 0.0)});
    }
    return t;
}

} // namespace texcache
