/**
 * @file
 * Fixed-rate compressed blocked texture representation.
 *
 * The paper's future-work section (8) points at rendering directly
 * from compressed textures (Beers, Agrawala & Chaddha, SIGGRAPH'96)
 * and asks how compression interacts with a texture cache. This layout
 * models the arrangement those systems use: each bw x bh texel block
 * is compressed at a fixed rate (e.g. 8:1 vector quantization) and the
 * *compressed* blocks are what live in memory and in the cache;
 * decompression happens between the cache and the filter.
 *
 * A texel access therefore touches one byte-range inside its block's
 * compressed image. Texel->address mapping is deliberately *not*
 * injective (ratio texels share each compressed byte) - that is the
 * point: one cache line now covers `ratio` times more texture area, so
 * both the working set and the fetched bytes shrink.
 */

#ifndef TEXCACHE_LAYOUT_COMPRESSED_HH
#define TEXCACHE_LAYOUT_COMPRESSED_HH

#include "layout/layout.hh"

namespace texcache {

/** Blocked layout over fixed-rate compressed blocks. */
class CompressedBlockedLayout : public TextureLayout
{
  public:
    /**
     * @param ratio fixed compression ratio (texel bytes : stored
     *              bytes); must be a power of two and divide the block
     *              byte size.
     */
    CompressedBlockedLayout(const std::vector<LevelDims> &d,
                            AddressSpace &space, unsigned block_w,
                            unsigned block_h, unsigned ratio);

    unsigned addresses(const TexelTouch &t, Addr out[3]) const override;
    std::string name() const override;

    AddressingCost
    cost() const override
    {
        // Blocked addressing plus one constant shift to scale the
        // intra-block offset down by the compression ratio.
        return {/*adds=*/4, /*shifts=*/1, /*constShifts=*/5, /*ands=*/2,
                /*accessesPerTexel=*/1};
    }

    unsigned ratio() const { return ratio_; }

  private:
    struct Level
    {
        Addr base;
        unsigned lbw;
        unsigned lbh;
        unsigned bsLog;    ///< log2(compressed block bytes)
        unsigned rsLog;    ///< log2(compressed row-of-blocks stride)
        unsigned ratioLog; ///< log2(effective ratio at this level)
    };
    std::vector<Level> levels_;
    unsigned blockW_;
    unsigned blockH_;
    unsigned ratio_;
};

} // namespace texcache

#endif // TEXCACHE_LAYOUT_COMPRESSED_HH
