/**
 * @file
 * Reproduces Figure 5.4: the interaction between texture block size
 * and cache line size, measured on fully associative 32 KB caches.
 *
 * Panel (a) Town (vertical rasterization), panel (b) Guitar
 * (horizontal). The paper's finding: the lowest miss rate at each line
 * size occurs when the block's storage matches the line size; blocks
 * much larger or smaller than the line inflate the working set and
 * cause capacity misses. Increasing the line size *without* blocking
 * (the 1-wide "nonblocked" row) makes things worse.
 *
 * Each (scene, block) row shares one layout; its five line sizes are
 * independent FA passes, so all rows x lines fan out as one parallel
 * sweep (Sweep::run) after the two traces are rendered up front.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

constexpr uint64_t kCacheSize = 32 * 1024;

struct BlockChoice
{
    const char *label;
    LayoutKind kind;
    unsigned w, h;
};

const BlockChoice kBlocks[] = {
    {"nonblocked", LayoutKind::Nonblocked, 0, 0},
    {"2x2", LayoutKind::Blocked, 2, 2},
    {"4x4", LayoutKind::Blocked, 4, 4},
    {"8x8", LayoutKind::Blocked, 8, 8},
    {"16x16", LayoutKind::Blocked, 16, 16},
};

const unsigned kLines[] = {16, 32, 64, 128, 256};

struct Point
{
    const TexelTrace *trace;
    std::shared_ptr<SceneLayout> layout;
    unsigned line;
};

} // namespace

int
main()
{
    const BenchScene scenes[] = {BenchScene::Town, BenchScene::Guitar};

    // Serial phase: render traces, build every row's layout.
    std::vector<Point> points;
    for (BenchScene s : scenes) {
        const TexelTrace &trace = store().trace(s, sceneOrder(s));
        for (const BlockChoice &b : kBlocks) {
            LayoutParams params;
            params.kind = b.kind;
            if (b.kind == LayoutKind::Blocked) {
                params.blockW = b.w;
                params.blockH = b.h;
            }
            auto layout = std::make_shared<SceneLayout>(
                store().scene(s), params);
            for (unsigned line : kLines)
                points.push_back({&trace, layout, line});
        }
    }

    auto results = Sweep::run(points, [](const Point &p) {
        return runCache(*p.trace, *p.layout,
                        {kCacheSize, p.line, CacheConfig::kFullyAssoc})
            .missRate();
    });

    size_t i = 0;
    for (BenchScene s : scenes) {
        TextTable table(
            s == BenchScene::Town
                ? "Figure 5.4(a): Town-vertical, FA 32KB, miss rate by "
                  "block and line size"
                : "Figure 5.4(b): Guitar-horizontal, FA 32KB, miss "
                  "rate by block and line size");
        std::vector<std::string> header = {"Block \\ Line"};
        for (unsigned l : kLines)
            header.push_back(fmtBytes(l));
        table.header(header);
        for (const BlockChoice &b : kBlocks) {
            std::vector<std::string> row = {b.label};
            for (unsigned l : kLines) {
                (void)l;
                row.push_back(fmtPercent(results[i++].value));
            }
            table.row(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper reference: minima on the diagonal where block "
                 "storage == line size (e.g. 4x4 = 64B); large lines "
                 "without blocking degrade.\n";

    dumpStats("fig_5_4", [&](RunManifest &m, stats::Group &root) {
        m.setScene("Town,Guitar");
        m.config("cache_bytes", kCacheSize);
        m.config("assoc", "full");
        exportPointTimes(*root.findGroup("sweep"), results);
        size_t k = 0;
        double sum = 0.0;
        for (BenchScene s : scenes) {
            stats::Group &sg = root.group(benchSceneName(s));
            for (const BlockChoice &b : kBlocks) {
                stats::Group &bg = sg.group(b.label);
                for (unsigned l : kLines) {
                    double r = results[k++].value;
                    bg.real("line_" + std::to_string(l), r,
                            "miss rate");
                    sum += r;
                }
            }
        }
        // Deterministic simulation: one exact pin over the whole grid
        // catches any simulator or layout change in CI.
        m.metric("mean_miss_rate", sum / static_cast<double>(k),
                 "exact");
    });
    return 0;
}
