/**
 * @file
 * Uniform chunked access to a texel-record stream.
 *
 * The sharded replay engine (core/shard_replay.hh) consumes traces as
 * a sequence of fixed-size chunks of packed records so it can (a)
 * stream them - no full materialization - and (b) partition them into
 * contiguous chunk ranges for parallel workers. A TraceSource is that
 * chunk sequence, whether the records live in RAM (MemoryTraceSource
 * over a TexelTrace) or on disk (FileTraceSource over a chunked trace
 * file, the streamed path).
 *
 * Both sources take a frame-replication count: the logical stream is
 * the underlying records repeated `frames` times back to back, which
 * is how multi-frame (animated-stream surrogate) workloads reach 10^9
 * accesses from one rendered frame without a 10^9-record file. Chunk
 * indices run over the whole logical stream (frames x per-frame
 * chunks), so replication is invisible to consumers.
 *
 * visitChunks() is const and reentrant: concurrent workers may stream
 * overlapping ranges of one source (each file visit maps its own
 * bounded window; the memory source just aliases the vector).
 */

#ifndef TEXCACHE_TRACE_TRACE_SOURCE_HH
#define TEXCACHE_TRACE_TRACE_SOURCE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "trace/chunked_trace.hh"
#include "trace/texel_trace.hh"

namespace texcache {

/** A logical record stream presented as fixed-size chunks. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Total logical records (frame replication folded in). */
    virtual uint64_t records() const = 0;

    /** Total logical chunks (frame replication folded in). */
    virtual uint64_t chunkCount() const = 0;

    /** Stream chunks [begin, end) in order: fn(records, count). */
    virtual void
    visitChunks(uint64_t begin, uint64_t end,
                const std::function<void(const uint64_t *, size_t)> &fn)
        const = 0;
};

/** TraceSource over an in-memory TexelTrace (zero-copy). */
class MemoryTraceSource final : public TraceSource
{
  public:
    explicit MemoryTraceSource(const TexelTrace &trace,
                               uint64_t frames = 1,
                               uint32_t chunk_records =
                                   kDefaultChunkRecords);

    uint64_t records() const override;
    uint64_t chunkCount() const override;
    void visitChunks(uint64_t begin, uint64_t end,
                     const std::function<void(const uint64_t *, size_t)>
                         &fn) const override;

  private:
    const TexelTrace &trace_;
    uint64_t frames_;
    uint32_t chunkRecords_;
    uint64_t perFrame_; ///< chunks per frame
};

/** TraceSource over a chunked on-disk trace file (streamed). */
class FileTraceSource final : public TraceSource
{
  public:
    /** Opens @p path; fatal()s with the typed offset+reason error on
     *  a truncated or corrupt file. */
    explicit FileTraceSource(const std::string &path,
                             uint64_t frames = 1);

    uint64_t records() const override;
    uint64_t chunkCount() const override;
    void visitChunks(uint64_t begin, uint64_t end,
                     const std::function<void(const uint64_t *, size_t)>
                         &fn) const override;

    const ChunkedTraceFile &file() const { return file_; }

  private:
    ChunkedTraceFile file_;
    uint64_t frames_;
};

} // namespace texcache

#endif // TEXCACHE_TRACE_TRACE_SOURCE_HH
