/** @file Unit and property tests for the trace-driven cache simulator. */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"
#include "common/rng.hh"

using namespace texcache;

TEST(CacheConfig, Geometry)
{
    CacheConfig c{32 * 1024, 32, 2};
    EXPECT_EQ(c.numLines(), 1024u);
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.str(), "32KB/32B/2way");

    CacheConfig fa{4096, 64, CacheConfig::kFullyAssoc};
    EXPECT_EQ(fa.numSets(), 1u);
    EXPECT_EQ(fa.str(), "4KB/64B/full");
}

TEST(CacheSim, HitsWithinLine)
{
    CacheSim c({1024, 32, 1});
    EXPECT_FALSE(c.access(0));  // miss: first touch
    EXPECT_TRUE(c.access(31));  // same line
    EXPECT_FALSE(c.access(32)); // next line
    EXPECT_EQ(c.stats().accesses, 3u);
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().coldMisses, 2u);
}

TEST(CacheSim, DirectMappedConflict)
{
    // 1 KB direct mapped, 32 B lines -> 32 sets. Addresses 0 and 1024
    // map to set 0 and evict each other; 32 does not.
    CacheSim c({1024, 32, 1});
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(1024));
    EXPECT_FALSE(c.access(0));    // conflict miss, not cold
    EXPECT_FALSE(c.access(1024)); // conflict miss
    EXPECT_EQ(c.stats().misses, 4u);
    EXPECT_EQ(c.stats().coldMisses, 2u);
}

TEST(CacheSim, TwoWayAbsorbsPingPong)
{
    CacheSim c({1024, 32, 2});
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(1024));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(1024));
    // A third conflicting line evicts the LRU way (line 0); re-fetching
    // line 0 then evicts line 1024, leaving {2048, 0} resident.
    EXPECT_FALSE(c.access(2048));
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(2048));
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(1024));
}

TEST(CacheSim, LruEvictsLeastRecent)
{
    // Fully associative 4-line cache.
    CacheSim c({128, 32, CacheConfig::kFullyAssoc});
    c.access(0);
    c.access(32);
    c.access(64);
    c.access(96);
    c.access(0); // refresh line 0; LRU is now line 32
    c.access(128);
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(32)); // evicted
}

TEST(CacheSim, ResetClearsEverything)
{
    CacheSim c({1024, 32, 1});
    c.access(0);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0)); // cold again
    EXPECT_EQ(c.stats().coldMisses, 1u);
}

TEST(CacheSim, RejectsBadGeometry)
{
    EXPECT_EXIT(CacheSim({1000, 32, 1}), ::testing::ExitedWithCode(1),
                "powers of two");
    EXPECT_EXIT(CacheSim({32, 64, 1}), ::testing::ExitedWithCode(1),
                "line larger than cache");
}

TEST(FullyAssocLru, BasicHitMiss)
{
    FullyAssocLru c(128, 32); // 4 lines
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(16));
    c.access(32);
    c.access(64);
    c.access(96);
    c.access(0); // hit, refresh
    c.access(128);
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(32)); // evicted as LRU
}

TEST(FullyAssocLru, ColdMissesCountFirstTouches)
{
    FullyAssocLru c(64, 32); // 2 lines
    c.access(0);
    c.access(32);
    c.access(64); // evicts 0
    c.access(0);  // capacity miss, not cold
    EXPECT_EQ(c.stats().misses, 4u);
    EXPECT_EQ(c.stats().coldMisses, 3u);
}

TEST(FullyAssocLru, BytesFetched)
{
    FullyAssocLru c(64, 32);
    c.access(0);
    c.access(32);
    c.access(64);
    EXPECT_EQ(c.stats().bytesFetched(32), 3u * 32);
}

/**
 * Property: CacheSim configured fully associative and FullyAssocLru
 * must agree exactly on every access of a random-but-local trace.
 */
class FaEquivalence : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FaEquivalence, CacheSimMatchesFullyAssocLru)
{
    CacheSim a({2048, 32, CacheConfig::kFullyAssoc});
    FullyAssocLru b(2048, 32);
    Rng rng(GetParam());
    uint64_t cursor = 0;
    for (int i = 0; i < 20000; ++i) {
        // Random walk with occasional jumps, texture-access-like.
        if (rng.below(100) < 5)
            cursor = rng.below(1 << 16);
        else
            cursor = (cursor + rng.below(256)) & 0xffff;
        ASSERT_EQ(a.access(cursor), b.access(cursor)) << "access " << i;
    }
    EXPECT_EQ(a.stats().misses, b.stats().misses);
    EXPECT_EQ(a.stats().coldMisses, b.stats().coldMisses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaEquivalence,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

/**
 * Property: increasing associativity at fixed size never increases the
 * miss count on a local trace... not guaranteed in general (LRU
 * anomalies exist), but holds for these structured traces and guards
 * against gross set-indexing bugs.
 */
class AssocSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AssocSweep, FullyAssociativeBeatsDirectMappedOnPingPong)
{
    // Deliberate pathological trace: two power-of-two separated
    // streams.
    CacheSim dm({4096, 32, 1});
    CacheSim fa({4096, 32, CacheConfig::kFullyAssoc});
    Rng rng(GetParam());
    for (int i = 0; i < 5000; ++i) {
        uint64_t a = (i % 64) * 32;
        uint64_t b = a + 65536; // same set index in the DM cache
        dm.access(a);
        dm.access(b);
        fa.access(a);
        fa.access(b);
    }
    EXPECT_GT(dm.stats().misses, fa.stats().misses * 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssocSweep, ::testing::Values(7u));

TEST(CacheSim, FlushInvalidatesButKeepsColdTracking)
{
    // Section 3.2: the cache is flushed when textures change; the
    // refetch is a miss but not a *cold* miss.
    CacheSim c({1024, 32, 2});
    c.access(0);
    EXPECT_TRUE(c.access(0));
    c.flush();
    EXPECT_FALSE(c.access(0));
    EXPECT_EQ(c.stats().misses, 2u);
    EXPECT_EQ(c.stats().coldMisses, 1u);
}

TEST(FullyAssocLru, FlushInvalidatesButKeepsColdTracking)
{
    FullyAssocLru c(1024, 32);
    c.access(0);
    c.access(64);
    c.flush();
    EXPECT_FALSE(c.access(0));
    EXPECT_FALSE(c.access(64));
    EXPECT_TRUE(c.access(0));
    EXPECT_EQ(c.stats().coldMisses, 2u);
    EXPECT_EQ(c.stats().misses, 4u);
}
