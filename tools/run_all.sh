#!/bin/sh
# Regenerate every figure/table of the reproduction into results/.
# Usage: tools/run_all.sh [build_dir] [out_dir]
# Set TEXCACHE_CSV=1 for machine-readable output.
set -e
BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"
for b in "$BUILD"/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    "$b" > "$OUT/$name.txt" 2> /dev/null
done
echo "wrote $(ls "$OUT" | wc -l) result files to $OUT/"
