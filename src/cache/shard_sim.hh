/**
 * @file
 * Sharding one cache simulation across workers, bit-exactly.
 *
 * Two decompositions, matched to the two simulator families
 * (DESIGN.md section 16):
 *
 *  - Set partitioning (SetShardSim), for set-associative caches. LRU
 *    within a set depends only on the relative order of that set's own
 *    accesses, and a line maps to exactly one set, so giving each
 *    worker an exclusive subset of sets (set % shards == shard) and
 *    replaying the *whole* stream through a filter yields per-shard
 *    statistics whose field-wise sum equals the serial run exactly -
 *    including evictions and cold misses.
 *
 *  - Time partitioning (StackSegmentPass + mergeStackShards), for the
 *    fully associative stack-distance profile, in the style of PARDA
 *    [Niu et al., IPDPS'12]. Each worker profiles one contiguous
 *    segment of the stream independently: distances of accesses whose
 *    previous touch lies inside the segment are already globally
 *    correct; the rest - each segment's locally-cold accesses, which
 *    are exactly its first touches in order - are resolved by a
 *    sequential reconciliation pass against a global LRU-stack oracle.
 *    Touching the first-touch log in order places every distinct line
 *    the segment saw earlier above the queried line, so the oracle
 *    distance equals |lines seen in earlier segments since the
 *    previous touch  UNION  lines seen locally before this access| + 1
 *    - the exact global stack distance. A final promote() fixup in the
 *    segment's last-access order (LRU first) restores the true global
 *    stack before the next segment merges. The merged histogram, cold
 *    count and access count are bucket-identical to a serial
 *    StackDistProfiler pass.
 *
 * Reconciliation cost is O(distinct lines per segment), not O(segment
 * accesses), so the serial fraction stays small for texture streams.
 */

#ifndef TEXCACHE_CACHE_SHARD_SIM_HH
#define TEXCACHE_CACHE_SHARD_SIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/multi_sim.hh"
#include "cache/stack_dist.hh"

namespace texcache {

/**
 * One shard of a set-partitioned multi-config simulation: the member
 * sims consume only the accesses whose set index belongs to this
 * shard. Run one instance per shard over the full stream and merge
 * with mergeShardStats().
 */
class SetShardSim
{
  public:
    /** @p shard in [0, shards); shards == 1 bypasses the filter. */
    SetShardSim(const std::vector<CacheConfig> &configs, unsigned shard,
                unsigned shards);

    /** Feed a contiguous span of addresses (sims-outermost, each
     *  filtered to this shard's sets). */
    void accessRange(const Addr *a, size_t n);

    /** Per-config statistics over this shard's sets only. */
    std::vector<CacheStats> stats() const;

  private:
    struct Member
    {
        CacheSim sim;
        unsigned lineShift;
        uint64_t setMask;
    };

    std::vector<Member> members_;
    unsigned shard_;
    unsigned shards_;
};

/**
 * Field-wise sum of per-shard statistics; element [c] of the result
 * merges element [c] of every shard. Exact for set-partitioned runs
 * because every set (and hence every line and every eviction) is owned
 * by exactly one shard.
 */
std::vector<CacheStats>
mergeShardStats(const std::vector<std::vector<CacheStats>> &per_shard);

/**
 * What one segment's stack-distance pass hands to the merger. Plain
 * data so sweep workers can return it by value (and the work-stealing
 * pool's result slots can default-construct it).
 */
struct StackShardPass
{
    /** Accesses profiled in this segment. */
    uint64_t accesses = 0;
    /** Local distance histogram (locally-cold accesses excluded). */
    std::vector<uint64_t> hist;
    /** Locally-cold lines in first-touch order - the accesses whose
     *  distances the reconciliation pass resolves. */
    std::vector<uint64_t> firstTouch;
    /** Every distinct line the segment saw, LRU first / MRU last. */
    std::vector<uint64_t> finalOrder;
};

/** Profiles one contiguous stream segment for later reconciliation. */
class StackSegmentPass
{
  public:
    explicit StackSegmentPass(unsigned line_bytes);
    StackSegmentPass(const StackSegmentPass &) = delete;
    StackSegmentPass &operator=(const StackSegmentPass &) = delete;

    void
    accessRange(const Addr *a, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            prof_.access(a[i]);
    }

    /** Extract the pass; the object must not be fed afterwards. */
    StackShardPass finish();

  private:
    StackDistProfiler prof_;
    std::vector<uint64_t> firstTouch_;
};

/**
 * Exact global LRU stack over line addresses, driven by the
 * reconciliation pass: touch() computes a global stack distance and
 * promotes; promote() only reorders. Same Fenwick-over-timestamps
 * machinery as StackDistProfiler, minus the histogram and the
 * top-of-stack fast path (reconciliation touches each distinct line
 * once per segment, so there is no hot small working set to exploit).
 */
class LruStackOracle
{
  public:
    LruStackOracle() = default;

    /**
     * Record a touch of @p line: returns its stack distance (>= 1), or
     * 0 when the line was never seen (globally cold; inserted at the
     * top of the stack).
     */
    uint64_t touch(uint64_t line);

    /** Move @p line to the top of the stack; it must be present. */
    void promote(uint64_t line);

    uint64_t lines() const { return lastTime_.size(); }

  private:
    void ensureRoom();
    void compact();
    void fenwickAdd(size_t pos, int delta);
    uint64_t fenwickSuffix(size_t pos) const;
    void moveToTop(uint64_t *slot);

    LineMap lastTime_;           ///< line -> last touch timestamp
    std::vector<uint64_t> tree_; ///< Fenwick over timestamps
    std::vector<bool> present_;  ///< timestamp still live
    uint64_t now_ = 0;
};

/**
 * The merged whole-trace stack profile: same queries as
 * StackDistProfiler, reassembled from segment passes.
 */
struct ShardedStackProfile
{
    unsigned lineShift = 0;
    uint64_t accesses = 0;
    uint64_t cold = 0;
    /** hist[d] = accesses with global stack distance d (d >= 1). */
    std::vector<uint64_t> hist;

    uint64_t coldMisses() const { return cold; }

    uint64_t
    misses(uint64_t size_bytes) const
    {
        uint64_t capacity = size_bytes >> lineShift;
        uint64_t m = cold;
        for (uint64_t d = capacity + 1; d < hist.size(); ++d)
            m += hist[d];
        return m;
    }

    double
    missRate(uint64_t size_bytes) const
    {
        return accesses
                   ? static_cast<double>(misses(size_bytes)) / accesses
                   : 0.0;
    }

    const std::vector<uint64_t> &histogram() const { return hist; }
};

/**
 * Reconcile segment passes (in stream order) into the exact
 * whole-trace profile. @p line_bytes must match the passes'.
 */
ShardedStackProfile
mergeStackShards(const std::vector<StackShardPass> &passes,
                 unsigned line_bytes);

} // namespace texcache

#endif // TEXCACHE_CACHE_SHARD_SIM_HH
