/**
 * @file
 * Reproduces Figure 5.5: miss rate versus matched line/block size for
 * all four scenes on fully associative 32 KB caches.
 *
 * At 32 KB the remaining misses are mostly cold, so growing the
 * matched line+block size keeps cutting the miss rate: the paper
 * reports e.g. Flight 2.8% -> 0.87% and Town 0.8% -> 0.21% going from
 * 32 B to 128 B.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    constexpr uint64_t kCacheSize = 32 * 1024;
    const unsigned lines[] = {16, 32, 64, 128, 256};

    TextTable table("Figure 5.5: miss rate vs matched line/block size, "
                    "FA 32KB");
    std::vector<std::string> header = {"Scene"};
    for (unsigned l : lines)
        header.push_back(fmtBytes(l) + " (" +
                         std::to_string(benchutil::blockedForLine(l)
                                            .blockW) +
                         "x" +
                         std::to_string(benchutil::blockedForLine(l)
                                            .blockH) +
                         ")");
    table.header(header);

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out = store().output(s, sceneOrder(s));
        std::vector<std::string> row = {benchSceneName(s)};
        for (unsigned line : lines) {
            SceneLayout layout(store().scene(s), blockedForLine(line));
            CacheStats stats =
                runCache(out.trace, layout,
                         {kCacheSize, line, CacheConfig::kFullyAssoc});
            row.push_back(fmtPercent(stats.missRate()));
        }
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper reference @32B->128B: Flight 2.8%->0.87%, "
                 "Goblet 1.5%->0.41%, Guitar 1.2%->0.36%, Town "
                 "0.8%->0.21%.\n";
    return 0;
}
