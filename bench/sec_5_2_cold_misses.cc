/**
 * @file
 * Reproduces the cold-miss measurements of section 5.2.2: the
 * asymptotic (large-cache) miss rates of the base representation at 32
 * and 128 byte lines.
 *
 * Paper values: 32 B lines -> Town 0.55%, Guitar 0.87%, Goblet 1.5%,
 * Flight 2.8%; 128 B lines -> 0.15%, 0.25%, 0.42%, 1.1%. The ordering
 * (Flight worst, Town best) follows texture repetition and
 * level-of-detail fragmentation; larger lines cut cold misses ~4x,
 * showing strong spatial locality.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    TextTable table("Section 5.2.2: cold miss rates of the base "
                    "representation (fully associative)");
    table.header({"Scene", "ColdMiss 32B line", "ColdMiss 128B line",
                  "Reduction"});

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out = store().output(s, sceneOrder(s));
        LayoutParams params;
        params.kind = LayoutKind::Nonblocked;
        SceneLayout layout(store().scene(s), params);

        // Cold misses are first touches; rate = cold / accesses.
        StackDistProfiler p32 = profileTrace(out.trace, layout, 32);
        StackDistProfiler p128 = profileTrace(out.trace, layout, 128);
        double r32 = static_cast<double>(p32.coldMisses()) /
                     p32.accesses();
        double r128 = static_cast<double>(p128.coldMisses()) /
                      p128.accesses();
        table.row({benchSceneName(s), fmtPercent(r32),
                   fmtPercent(r128),
                   fmtFixed(r32 / r128, 1) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference @32B: Town 0.55%, Guitar 0.87%, "
                 "Goblet 1.5%, Flight 2.8%; @128B: 0.15%, 0.25%, "
                 "0.42%, 1.1%.\n";
    return 0;
}
