#include "layout/nonblocked.hh"

namespace texcache {

NonblockedLayout::NonblockedLayout(const std::vector<LevelDims> &d,
                                   AddressSpace &space)
    : TextureLayout(d)
{
    Addr first = 0;
    for (size_t l = 0; l < dims_.size(); ++l) {
        uint64_t bytes = static_cast<uint64_t>(dims_[l].w) * dims_[l].h *
                         kBytesPerTexel;
        Addr base = space.allocate(bytes);
        if (l == 0)
            first = base;
        levels_.push_back({base, log2Exact(dims_[l].w)});
    }
    footprint_ = space.used() - first;
}

unsigned
NonblockedLayout::addresses(const TexelTouch &t, Addr out[3]) const
{
    const Level &lv = levels_[t.level];
    uint64_t texel_index = (static_cast<uint64_t>(t.v) << lv.lw) + t.u;
    out[0] = lv.base + (texel_index << 2);
    return 1;
}

} // namespace texcache
