/**
 * @file
 * Minimal recursive-descent JSON reader.
 *
 * The counterpart of JsonWriter (common/json.hh): where every artifact
 * the harness *emits* flows through the writer, every JSON document it
 * *accepts* - texcached service requests, manifest post-processing in
 * the load driver - flows through this parser, so escaping rules agree
 * by construction (tests round-trip one through the other).
 *
 * Design constraints, in order:
 *  - typed errors: a daemon fed hostile bytes must reject them with a
 *    structured reason (kind + byte offset), never abort;
 *  - bounded recursion: nesting deeper than kMaxDepth is an error, not
 *    a stack overflow;
 *  - strictness: exactly one JSON value per document; trailing bytes
 *    beyond insignificant whitespace are an error.
 *
 * Numbers are held as double (plus an exact-integer fast path for
 * values that fit, which covers every counter and byte size the
 * harness exchanges). Object members preserve insertion order;
 * duplicate keys keep both entries, find() returns the first.
 */

#ifndef TEXCACHE_COMMON_JSON_READER_HH
#define TEXCACHE_COMMON_JSON_READER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace texcache {
namespace json {

/** Nesting beyond this many containers is a ParseError::TooDeep. */
constexpr unsigned kMaxDepth = 64;

/** What went wrong, and where (byte offset into the input). */
struct ParseError
{
    enum class Kind
    {
        None,            ///< parse succeeded
        Truncated,       ///< input ended inside a value
        BadToken,        ///< unexpected character where a token starts
        BadString,       ///< unterminated string or raw control char
        BadEscape,       ///< malformed \x or \uXXXX escape
        BadNumber,       ///< malformed numeric literal
        TooDeep,         ///< nesting exceeded kMaxDepth
        TrailingGarbage, ///< bytes after the first complete value
    };

    Kind kind = Kind::None;
    size_t offset = 0;   ///< byte position the error was detected at
    std::string message; ///< human-readable detail

    explicit operator bool() const { return kind != Kind::None; }

    /** Stable lowercase identifier ("bad_token", ...) for wire use. */
    const char *code() const;
};

/** One parsed JSON value; a tree of these is a document. */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }

    /** True when the number is an exact non-negative integer. */
    bool isU64() const;
    uint64_t u64() const;

    /** Array elements / object member count. */
    size_t
    size() const
    {
        return type_ == Type::Object ? members_.size() : elems_.size();
    }
    /** Array element @p i (valid for arrays only; bounds-checked). */
    const Value &at(size_t i) const;

    /** Object member list in insertion order. */
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return members_;
    }

    /** First member named @p key, or nullptr. */
    const Value *find(std::string_view key) const;

    // Construction helpers (used by the parser; handy in tests).
    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray();
    static Value makeObject();
    void append(Value v) { elems_.push_back(std::move(v)); }
    void
    set(std::string key, Value v)
    {
        members_.emplace_back(std::move(key), std::move(v));
    }

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> elems_;
    std::vector<std::pair<std::string, Value>> members_;
};

/**
 * Parse @p text as exactly one JSON document.
 *
 * On success returns true and fills @p out; on failure returns false
 * and fills @p err (out is left in an unspecified but valid state).
 */
bool parse(std::string_view text, Value &out, ParseError &err);

} // namespace json
} // namespace texcache

#endif // TEXCACHE_COMMON_JSON_READER_HH
