#!/bin/sh
# Regenerate every figure/table of the reproduction into results/.
# Usage: tools/run_all.sh [build_dir] [out_dir]
# Set TEXCACHE_CSV=1 for machine-readable output.
#
# Each bench writes stdout to $OUT/<name>.txt and stderr to
# $OUT/<name>.err. A failing bench does not stop the run; the script
# exits nonzero at the end listing every failure.
set -u
BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"
failed=""
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "== $name"
    if "$b" > "$OUT/$name.txt" 2> "$OUT/$name.err"; then
        :
    else
        echo "== $name FAILED (exit $?); stderr in $OUT/$name.err" >&2
        failed="$failed $name"
    fi
done
echo "wrote $(ls "$OUT" | wc -l) result files to $OUT/"
if [ -n "$failed" ]; then
    echo "FAILED benches:$failed" >&2
    exit 1
fi
