#include "simd/span_kernels.hh"

#include "common/logging.hh"
#include "texture/mipmap.hh"

namespace texcache {
namespace simd {

SpanContext
makeSpanContext(const TriangleSetup &setup, const MipMap &mip,
                uint16_t texture, float texW, float texH,
                FilterMode mode, WrapMode wrap)
{
    SpanContext c;
    TriangleSetup::EdgeView iw = setup.invWPlane();
    c.iwE0 = iw.e0;
    c.iwEx = iw.ex;
    c.iwEy = iw.ey;
    TriangleSetup::EdgeView uw = setup.uOverWPlane();
    c.uwE0 = uw.e0;
    c.uwEx = uw.ex;
    c.uwEy = uw.ey;
    TriangleSetup::EdgeView vw = setup.vOverWPlane();
    c.vwE0 = vw.e0;
    c.vwEx = vw.ex;
    c.vwEy = vw.ey;
    for (int i = 0; i < 3; ++i) {
        TriangleSetup::EdgeView e = setup.edge(i);
        c.edgeE0[i] = e.e0;
        c.edgeEx[i] = e.ex;
        c.edgeEy[i] = e.ey;
        c.topLeft[i] = e.topLeft;
    }
    c.texW = texW;
    c.texH = texH;
    c.mip = &mip;
    c.texture = texture;
    c.mode = mode;
    c.wrap = wrap;
    return c;
}

const SpanKernels *
kernelsFor(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return scalarKernels();
      case Isa::Sse41:
        return sse41Kernels();
      case Isa::Avx2:
        return avx2Kernels();
    }
    return nullptr;
}

const SpanKernels &
kernels()
{
    const SpanKernels *k = kernelsFor(activeIsa());
    panic_if(!k, "active ISA level has no compiled kernels");
    return *k;
}

} // namespace simd
} // namespace texcache
