#include "core/sweep.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "tracing/tracing.hh"

namespace texcache {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** TEXCACHE_PROGRESS enables the sweep heartbeat ("0" disables). */
bool
progressEnabled()
{
    const char *env = std::getenv("TEXCACHE_PROGRESS");
    return env && *env && std::string_view(env) != "0";
}

/** Heartbeat line: completed/total plus an ETA from the rate so far. */
void
informProgress(uint64_t completed, uint64_t total, double elapsed_ms)
{
    double eta_s = completed
                       ? elapsed_ms / 1e3 *
                             static_cast<double>(total - completed) /
                             static_cast<double>(completed)
                       : 0.0;
    inform("sweep progress: ", completed, "/", total, " points, ETA ",
           static_cast<uint64_t>(eta_s + 0.5), "s");
}

/** Nesting depth of runIndexed across all threads; only the run that
 *  entered at depth 0 publishes SweepRunStats. */
std::atomic<int> activeRuns{0};
std::mutex lastStatsMutex;
SweepRunStats lastStats;

/**
 * A worker's remaining index range, packed (begin << 32 | end) into
 * one atomic word so the owner's pop and a thief's steal are both
 * single CAS operations.
 */
class StealRange
{
  public:
    void
    set(uint32_t begin, uint32_t end)
    {
        r_.store(pack(begin, end), std::memory_order_release);
    }

    /** Owner side: take the front index. */
    bool
    pop(uint32_t &idx)
    {
        uint64_t cur = r_.load(std::memory_order_acquire);
        for (;;) {
            uint32_t b = begin(cur), e = end(cur);
            if (b >= e)
                return false;
            if (r_.compare_exchange_weak(cur, pack(b + 1, e),
                                         std::memory_order_acq_rel)) {
                idx = b;
                return true;
            }
        }
    }

    /** Thief side: take the back half of the remaining range. */
    bool
    stealHalf(uint32_t &sb, uint32_t &se)
    {
        uint64_t cur = r_.load(std::memory_order_acquire);
        for (;;) {
            uint32_t b = begin(cur), e = end(cur);
            if (b >= e)
                return false;
            uint32_t mid = b + (e - b + 1) / 2;
            if (r_.compare_exchange_weak(cur, pack(b, mid),
                                         std::memory_order_acq_rel)) {
                sb = mid;
                se = e;
                return true;
            }
        }
    }

  private:
    static uint64_t
    pack(uint32_t b, uint32_t e)
    {
        return (static_cast<uint64_t>(b) << 32) | e;
    }
    static uint32_t begin(uint64_t r) { return static_cast<uint32_t>(r >> 32); }
    static uint32_t end(uint64_t r) { return static_cast<uint32_t>(r); }

    std::atomic<uint64_t> r_{0};
};

} // namespace

unsigned
Sweep::threadCount()
{
    if (const char *env = std::getenv("TEXCACHE_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        fatal_if(end == env || *end != '\0',
                 "TEXCACHE_THREADS='", env, "' is not a number");
        fatal_if(v < 1, "TEXCACHE_THREADS must be >= 1, got '", env,
                 "'");
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunStats
Sweep::lastRunStats()
{
    std::lock_guard<std::mutex> g(lastStatsMutex);
    return lastStats;
}

void
Sweep::runIndexed(size_t n, const std::function<void(size_t)> &work)
{
    panic_if(n > ~0u, "sweep of ", n, " points exceeds 32-bit indices");
    static const uint16_t kRunSpan = tracing::nameId("sweep.run");
    static const uint16_t kPointSpan = tracing::nameId("sweep.point");
    tracing::ScopedSpan run_span(kRunSpan, n);
    unsigned threads = threadCount();
    if (threads > n)
        threads = static_cast<unsigned>(n);

    bool top = activeRuns.fetch_add(1, std::memory_order_acq_rel) == 0;
    struct ActiveGuard
    {
        ~ActiveGuard()
        {
            activeRuns.fetch_sub(1, std::memory_order_acq_rel);
        }
    } active_guard;
    auto run_start = Clock::now();
    bool progress = progressEnabled();
    constexpr auto kHeartbeat = std::chrono::seconds(2);

    auto publish = [&](uint64_t steals, double busy_ms) {
        if (!top)
            return;
        std::lock_guard<std::mutex> g(lastStatsMutex);
        lastStats.points = n;
        lastStats.threads = threads ? threads : 1;
        lastStats.steals = steals;
        lastStats.wallMillis = millisSince(run_start);
        lastStats.busyMillis = busy_ms;
    };

    if (threads <= 1) {
        auto next_beat = run_start + kHeartbeat;
        for (size_t i = 0; i < n; ++i) {
            {
                tracing::ScopedSpan point_span(kPointSpan, i);
                work(i);
            }
            if (progress && Clock::now() >= next_beat) {
                informProgress(i + 1, n, millisSince(run_start));
                next_beat = Clock::now() + kHeartbeat;
            }
        }
        // Serial execution is points back to back: busy == wall.
        publish(0, millisSince(run_start));
        return;
    }

    std::vector<StealRange> queues(threads);
    for (unsigned t = 0; t < threads; ++t)
        queues[t].set(static_cast<uint32_t>(n * t / threads),
                      static_cast<uint32_t>(n * (t + 1) / threads));

    std::atomic<uint64_t> done{0};
    std::atomic<uint64_t> steals{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::vector<double> busy(threads, 0.0);

    auto worker = [&](unsigned self) {
        StealRange &own = queues[self];
        for (;;) {
            uint32_t i;
            if (own.pop(i)) {
                auto t0 = Clock::now();
                try {
                    tracing::ScopedSpan point_span(kPointSpan, i);
                    work(i);
                } catch (...) {
                    {
                        std::lock_guard<std::mutex> g(error_mu);
                        if (!error)
                            error = std::current_exception();
                    }
                    failed.store(true);
                }
                busy[self] += millisSince(t0);
                done.fetch_add(1, std::memory_order_acq_rel);
                continue;
            }
            if (failed.load())
                return;
            bool got = false;
            for (unsigned k = 1; k < threads && !got; ++k) {
                uint32_t b, e;
                if (queues[(self + k) % threads].stealHalf(b, e)) {
                    own.set(b, e);
                    steals.fetch_add(1, std::memory_order_relaxed);
                    got = true;
                }
            }
            if (!got) {
                if (done.load(std::memory_order_acquire) >= n)
                    return;
                std::this_thread::yield();
            }
        }
    };

    // Opt-in heartbeat: a monitor thread wakes every heartbeat period
    // and reports progress; a condition variable lets the run end it
    // promptly once all points are done.
    std::mutex beat_mu;
    std::condition_variable beat_cv;
    bool finished = false;
    std::thread monitor;
    if (progress) {
        monitor = std::thread([&] {
            std::unique_lock<std::mutex> lk(beat_mu);
            for (;;) {
                if (beat_cv.wait_for(lk, kHeartbeat,
                                     [&] { return finished; }))
                    return;
                uint64_t d = done.load(std::memory_order_acquire);
                if (d < n)
                    informProgress(d, n, millisSince(run_start));
            }
        });
    }

    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (std::thread &th : pool)
        th.join();

    if (monitor.joinable()) {
        {
            std::lock_guard<std::mutex> g(beat_mu);
            finished = true;
        }
        beat_cv.notify_all();
        monitor.join();
    }

    double busy_ms = 0.0;
    for (double b : busy)
        busy_ms += b;
    publish(steals.load(), busy_ms);

    if (error)
        std::rethrow_exception(error);
}

} // namespace texcache
