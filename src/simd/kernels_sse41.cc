// Width-4 instantiation of the kernel body, compiled with -msse4.1
// -ffp-contract=off (see src/simd/CMakeLists.txt). When the compiler
// cannot target SSE4.1 (non-x86 hosts), the entry degrades to a null
// table and the dispatcher treats the level as not compiled in.

#include "simd/span_kernels.hh"

#if defined(__SSE4_1__)

#include "simd/kernel_body.hh"
#include "simd/vec_sse41.hh"

namespace texcache {
namespace simd {

const SpanKernels *
sse41Kernels()
{
    static const SpanKernels k = {&touchesKernel<VecSse41>,
                                  &coverKernel<VecSse41>};
    return &k;
}

} // namespace simd
} // namespace texcache

#else // !__SSE4_1__

namespace texcache {
namespace simd {

const SpanKernels *
sse41Kernels()
{
    return nullptr;
}

} // namespace simd
} // namespace texcache

#endif
