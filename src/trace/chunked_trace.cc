#include "trace/chunked_trace.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/bits.hh"
#include "common/logging.hh"

namespace texcache {

namespace {

constexpr char kMagic[8] = {'T', 'E', 'X', 'C', 'H', 'K', '0', '1'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagFinalized = 1u << 0;
constexpr uint64_t kHeaderBytes = 32;

/** Bytes per mapping window; bounds RSS *and* address space (the
 *  small-RAM smoke runs under ulimit -v), so windows are mapped and
 *  unmapped as the cursor advances instead of mapping whole files. */
constexpr uint64_t kWindowBytes = 16ull << 20;

struct Header
{
    char magic[8];
    uint32_t version;
    uint32_t chunkRecords;
    uint64_t records;
    uint32_t flags;
    uint32_t reserved;
};
static_assert(sizeof(Header) == kHeaderBytes, "header layout");

Header
makeHeader(uint32_t chunk_records, uint64_t records, uint32_t flags)
{
    Header h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kVersion;
    h.chunkRecords = chunk_records;
    h.records = records;
    h.flags = flags;
    h.reserved = 0;
    return h;
}

} // namespace

std::string
TraceFileError::str() const
{
    return "offset " + std::to_string(offset) + ": " + reason;
}

// ---- Writer --------------------------------------------------------

ChunkedTraceWriter::ChunkedTraceWriter(const std::string &path,
                                       uint32_t chunk_records)
    : path_(path), chunkRecords_(chunk_records)
{
    fatal_if(!chunk_records || !isPowerOfTwo(chunk_records),
             "chunk size ", chunk_records, " not a power of two");
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open chunked trace '", path,
             "' for writing: ", std::strerror(errno));
    buf_.reserve(chunkRecords_);
    Header h = makeHeader(chunkRecords_, 0, 0);
    fatal_if(std::fwrite(&h, sizeof(h), 1, file_) != 1,
             "short header write to '", path, "'");
}

ChunkedTraceWriter::~ChunkedTraceWriter()
{
    // An unfinalized file stays on disk with the finalized bit clear,
    // so readers reject it; do not silently finalize here.
    if (file_)
        std::fclose(file_);
}

void
ChunkedTraceWriter::flushBuffer()
{
    if (buf_.empty())
        return;
    fatal_if(std::fwrite(buf_.data(), sizeof(uint64_t), buf_.size(),
                         file_) != buf_.size(),
             "short write to chunked trace '", path_, "'");
    buf_.clear();
}

void
ChunkedTraceWriter::append(const uint64_t *records, size_t n)
{
    fatal_if(finalized_, "append to finalized chunked trace '", path_,
             "'");
    written_ += n;
    while (n) {
        size_t room = chunkRecords_ - buf_.size();
        size_t take = std::min(n, room);
        buf_.insert(buf_.end(), records, records + take);
        records += take;
        n -= take;
        if (buf_.size() == chunkRecords_)
            flushBuffer();
    }
}

void
ChunkedTraceWriter::finalize()
{
    fatal_if(finalized_, "double finalize of '", path_, "'");
    flushBuffer();
    Header h = makeHeader(chunkRecords_, written_, kFlagFinalized);
    fatal_if(std::fseek(file_, 0, SEEK_SET) != 0 ||
                 std::fwrite(&h, sizeof(h), 1, file_) != 1,
             "cannot finalize header of '", path_, "'");
    fatal_if(std::fclose(file_) != 0, "close failed for '", path_,
             "': ", std::strerror(errno));
    file_ = nullptr;
    finalized_ = true;
}

// ---- Reader --------------------------------------------------------

ChunkedTraceFile::~ChunkedTraceFile()
{
    close();
}

ChunkedTraceFile::ChunkedTraceFile(ChunkedTraceFile &&other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), info_(other.info_)
{
    other.fd_ = -1;
}

ChunkedTraceFile &
ChunkedTraceFile::operator=(ChunkedTraceFile &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        info_ = other.info_;
        other.fd_ = -1;
    }
    return *this;
}

void
ChunkedTraceFile::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ChunkedTraceFile::open(const std::string &path, TraceFileError &err)
{
    close();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        err = {0, std::string("cannot open: ") + std::strerror(errno)};
        return false;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        err = {0, std::string("cannot stat: ") + std::strerror(errno)};
        ::close(fd);
        return false;
    }
    uint64_t size = static_cast<uint64_t>(st.st_size);
    if (size < kHeaderBytes) {
        err = {size, "truncated header (need " +
                         std::to_string(kHeaderBytes) +
                         " bytes, file has " + std::to_string(size) +
                         ")"};
        ::close(fd);
        return false;
    }
    Header h{};
    if (::pread(fd, &h, sizeof(h), 0) !=
        static_cast<ssize_t>(sizeof(h))) {
        err = {0, "header read failed"};
        ::close(fd);
        return false;
    }
    if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
        err = {0, "bad magic (not a chunked texcache trace)"};
        ::close(fd);
        return false;
    }
    if (h.version != kVersion) {
        err = {8, "unsupported version " + std::to_string(h.version)};
        ::close(fd);
        return false;
    }
    if (!h.chunkRecords || !isPowerOfTwo(h.chunkRecords)) {
        err = {12, "chunk size " + std::to_string(h.chunkRecords) +
                       " not a power of two"};
        ::close(fd);
        return false;
    }
    if (!(h.flags & kFlagFinalized)) {
        err = {24, "incomplete trace (writer never finalized)"};
        ::close(fd);
        return false;
    }
    uint64_t expect = kHeaderBytes + h.records * sizeof(uint64_t);
    if (size != expect) {
        err = {std::min(size, expect),
               "truncated payload: header claims " +
                   std::to_string(h.records) + " records (" +
                   std::to_string(expect) + " bytes), file has " +
                   std::to_string(size)};
        ::close(fd);
        return false;
    }
    fd_ = fd;
    path_ = path;
    info_ = {h.version, h.chunkRecords, h.records, true};
    return true;
}

ChunkedTraceFile
ChunkedTraceFile::mustOpen(const std::string &path)
{
    ChunkedTraceFile f;
    TraceFileError err;
    fatal_if(!f.open(path, err), "chunked trace '", path, "': ",
             err.str());
    return f;
}

void
ChunkedTraceFile::visitChunks(
    uint64_t begin, uint64_t end,
    const std::function<void(const uint64_t *, size_t)> &fn) const
{
    panic_if(fd_ < 0, "visitChunks on a closed trace file");
    uint64_t chunks = info_.chunks();
    panic_if(begin > end || end > chunks, "chunk range [", begin, ", ",
             end, ") of ", chunks);

    const uint64_t chunkBytes = info_.chunkRecords * sizeof(uint64_t);
    // Whole windows of chunks per mapping; at least one chunk.
    const uint64_t windowChunks =
        std::max<uint64_t>(1, kWindowBytes / chunkBytes);
    const long page = ::sysconf(_SC_PAGESIZE);

    std::vector<uint64_t> fallback; // pread path, one chunk at a time
    for (uint64_t w = begin; w < end; w += windowChunks) {
        uint64_t wEnd = std::min(end, w + windowChunks);
        uint64_t firstRec = w * info_.chunkRecords;
        uint64_t lastRec =
            std::min(info_.records, wEnd * info_.chunkRecords);
        uint64_t off = kHeaderBytes + firstRec * sizeof(uint64_t);
        uint64_t len = (lastRec - firstRec) * sizeof(uint64_t);
        if (!len)
            continue;

        uint64_t mapOff = off & ~static_cast<uint64_t>(page - 1);
        uint64_t mapLen = len + (off - mapOff);
        void *map = ::mmap(nullptr, mapLen, PROT_READ, MAP_PRIVATE,
                           fd_, static_cast<off_t>(mapOff));
        if (map != MAP_FAILED) {
            ::madvise(map, mapLen, MADV_SEQUENTIAL);
            const uint64_t *recs = reinterpret_cast<const uint64_t *>(
                static_cast<const char *>(map) + (off - mapOff));
            for (uint64_t c = w; c < wEnd; ++c) {
                uint64_t b = c * info_.chunkRecords;
                uint64_t n =
                    std::min<uint64_t>(info_.chunkRecords,
                                       info_.records - b);
                fn(recs + (b - firstRec), n);
            }
            ::munmap(map, mapLen);
            continue;
        }
        // mmap unavailable (exotic filesystems, tight ulimit -v on
        // the window itself): positioned reads, one chunk at a time.
        for (uint64_t c = w; c < wEnd; ++c) {
            uint64_t b = c * info_.chunkRecords;
            uint64_t n = std::min<uint64_t>(info_.chunkRecords,
                                            info_.records - b);
            fallback.resize(n);
            uint64_t cOff = kHeaderBytes + b * sizeof(uint64_t);
            ssize_t got = ::pread(fd_, fallback.data(),
                                  n * sizeof(uint64_t),
                                  static_cast<off_t>(cOff));
            fatal_if(got != static_cast<ssize_t>(n * sizeof(uint64_t)),
                     "short read from '", path_, "' at offset ", cOff);
            fn(fallback.data(), n);
        }
    }
}

TexelTrace
ChunkedTraceFile::readAll() const
{
    TexelTrace trace;
    trace.reserve(info_.records);
    visitChunks(0, info_.chunks(),
                [&](const uint64_t *recs, size_t n) {
                    trace.appendPacked(recs, n);
                });
    return trace;
}

} // namespace texcache
