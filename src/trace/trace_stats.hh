/**
 * @file
 * Locality statistics over texel traces (paper sections 3.1.2 and 5.2.3).
 *
 *  - accesses per unique texel, split by filter role (the paper reports
 *    ~4 for the trilinear lower level, ~14-16 for the upper level, and
 *    scene-dependent values around 18 for bilinear magnification);
 *  - texture runlengths: the average run of consecutive accesses to the
 *    same texture (hundreds of thousands in the paper, showing the
 *    working set holds one texture at a time);
 *  - texture repetition: how often a texel is reused because texture
 *    coordinates wrap (fed by the renderer, which sees pre-wrap
 *    coordinates).
 */

#ifndef TEXCACHE_TRACE_TRACE_STATS_HH
#define TEXCACHE_TRACE_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <unordered_set>

#include "trace/texel_trace.hh"

namespace texcache {

/** Accesses-per-unique-texel for one filter role. */
struct PerTexelStats
{
    uint64_t accesses = 0;
    uint64_t uniqueTexels = 0;

    double
    accessesPerTexel() const
    {
        return uniqueTexels
                   ? static_cast<double>(accesses) / uniqueTexels
                   : 0.0;
    }
};

/** Result of analyzing a trace. */
struct TraceStats
{
    PerTexelStats bilinear;
    PerTexelStats trilinearLower;
    PerTexelStats trilinearUpper;
    PerTexelStats nearest;

    uint64_t accesses = 0;
    uint64_t textureRuns = 0;

    /** Mean length of a run of accesses to one texture (section 5.2.3). */
    double
    averageRunlength() const
    {
        return textureRuns ? static_cast<double>(accesses) / textureRuns
                           : 0.0;
    }
};

/** Single pass over a trace computing TraceStats. */
TraceStats analyzeTrace(const TexelTrace &trace);

/**
 * Texture-repetition counter (section 3.1.2). The renderer feeds one
 * sample per fragment: the *unwrapped* integer texel coordinate of the
 * filter footprint alongside its wrapped counterpart. The repetition
 * factor is (# distinct unwrapped texels) / (# distinct wrapped texels):
 * 1.0 when no texture repeats, ~3 for heavily tiled brick walls.
 */
class RepetitionCounter
{
  public:
    /**
     * One fragment's pair of set keys. Tile-render workers buffer
     * these in flat vectors (a push is far cheaper than a hash-set
     * insert) and the deterministic merge replays them through
     * insert(), so the total hashing work equals the serial path's.
     */
    struct KeyPair
    {
        uint64_t unwrapped;
        uint64_t wrapped;
    };

    /** The set keys record() would insert for this footprint anchor. */
    static KeyPair
    keys(uint16_t tex, uint16_t level, int32_t unwrapped_u,
         int32_t unwrapped_v, uint16_t wrapped_u, uint16_t wrapped_v)
    {
        uint64_t key_base = (static_cast<uint64_t>(tex) << 48) |
                            (static_cast<uint64_t>(level) << 40);
        uint64_t uw = key_base |
                      (static_cast<uint64_t>(static_cast<uint32_t>(
                           unwrapped_u)) &
                       0xfffff) |
                      ((static_cast<uint64_t>(static_cast<uint32_t>(
                            unwrapped_v)) &
                        0xfffff)
                       << 20);
        uint64_t wr = key_base | wrapped_u |
                      (static_cast<uint64_t>(wrapped_v) << 20);
        return {uw, wr};
    }

    /**
     * The sets are sharded by key hash so the tile render engine's
     * merge can insert different shards from different workers
     * concurrently (each shard is owned by exactly one worker, and a
     * set union is order-free). Serial users never notice: record()
     * and insert() route keys themselves.
     */
    static constexpr unsigned kShards = 16;

    /** Owning shard of a key (top bits of a Fibonacci hash). */
    static unsigned
    shardOf(uint64_t key)
    {
        return static_cast<unsigned>((key * 0x9e3779b97f4a7c15ull) >>
                                     60);
    }

    /** Record one fragment's footprint anchor for texture @p tex. */
    void
    record(uint16_t tex, uint16_t level, int32_t unwrapped_u,
           int32_t unwrapped_v, uint16_t wrapped_u, uint16_t wrapped_v)
    {
        insert(keys(tex, level, unwrapped_u, unwrapped_v, wrapped_u,
                    wrapped_v));
    }

    /** Insert a precomputed key pair (set union, order-free). */
    void
    insert(const KeyPair &k)
    {
        unwrapped_[shardOf(k.unwrapped)].insert(k.unwrapped);
        wrapped_[shardOf(k.wrapped)].insert(k.wrapped);
    }

    /** Bulk-insert unwrapped keys already bucketed to @p shard. Safe
     *  to call concurrently with other shards' inserts, never with
     *  the same shard's. */
    void
    insertUnwrapped(unsigned shard, const uint64_t *keys, size_t n)
    {
        unwrapped_[shard].insert(keys, keys + n);
    }

    /** Bulk-insert wrapped keys already bucketed to @p shard. */
    void
    insertWrapped(unsigned shard, const uint64_t *keys, size_t n)
    {
        wrapped_[shard].insert(keys, keys + n);
    }

    double
    repetitionFactor() const
    {
        uint64_t wrapped = uniqueWrapped();
        return wrapped ? static_cast<double>(uniqueUnwrapped()) /
                             static_cast<double>(wrapped)
                       : 0.0;
    }

    /**
     * Fold another counter into this one. Both sets are plain key
     * unions, so merging per-tile counters in any order yields exactly
     * the counts a single serial counter would have recorded - the
     * property the parallel tile render engine relies on.
     */
    void
    merge(const RepetitionCounter &other)
    {
        for (unsigned s = 0; s < kShards; ++s) {
            unwrapped_[s].insert(other.unwrapped_[s].begin(),
                                 other.unwrapped_[s].end());
            wrapped_[s].insert(other.wrapped_[s].begin(),
                               other.wrapped_[s].end());
        }
    }

    /** Shards hold disjoint keys, so the sizes just add up. */
    uint64_t
    uniqueWrapped() const
    {
        uint64_t n = 0;
        for (const auto &s : wrapped_)
            n += s.size();
        return n;
    }

    uint64_t
    uniqueUnwrapped() const
    {
        uint64_t n = 0;
        for (const auto &s : unwrapped_)
            n += s.size();
        return n;
    }

  private:
    std::array<std::unordered_set<uint64_t>, kShards> unwrapped_;
    std::array<std::unordered_set<uint64_t>, kShards> wrapped_;
};

} // namespace texcache

#endif // TEXCACHE_TRACE_TRACE_STATS_HH
