/**
 * @file
 * Reproduces Table 7.1: memory bandwidth requirements in MB/s (miss
 * rates in parentheses) at the machine model's peak rate of 50 million
 * textured fragments per second.
 *
 * Configuration matches the paper: blocked+padded representation (pad =
 * 4 blocks per block row), 8x8-pixel tiled rasterization, caches of
 * 4 KB and 32 KB (2-way) and 128 KB (direct mapped), line sizes 32/64
 * (4x4 blocks) and 128 bytes (8x8 blocks).
 *
 * The headline reproduction target: a 32 KB cache needs 3x-15x less
 * memory bandwidth than the 1.6 GB/s of an equivalent cache-less
 * system.
 */

#include "bench/bench_util.hh"
#include "cache/bandwidth.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    MachineModel machine;

    struct CacheChoice
    {
        const char *label;
        uint64_t size;
        unsigned assoc;
    };
    const CacheChoice caches[] = {
        {"4KB 2-way", 4 * 1024, 2},
        {"32KB 2-way", 32 * 1024, 2},
        {"128KB direct", 128 * 1024, 1},
    };
    struct LineChoice
    {
        unsigned line;
        unsigned bw, bh;
    };
    const LineChoice lines[] = {{32, 4, 4}, {64, 4, 4}, {128, 8, 8}};

    TextTable table(
        "Table 7.1: memory bandwidth in MB/s (miss rate) at 50M "
        "fragments/s; blocked+padded, tiled 8x8");
    std::vector<std::string> header = {"Scene"};
    for (const CacheChoice &c : caches)
        for (const LineChoice &l : lines)
            header.push_back(std::string(c.label) + " " +
                             fmtBytes(l.line));
    table.header(header);

    // Paper's scene order in Table 7.1.
    const BenchScene order[] = {BenchScene::Flight, BenchScene::Guitar,
                                BenchScene::Town, BenchScene::Goblet};

    double best_reduction = 0.0, worst_reduction = 1e30;
    for (BenchScene s : order) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, /*tiled=*/true, 8));
        std::vector<std::string> row = {benchSceneName(s)};
        for (const CacheChoice &c : caches) {
            for (const LineChoice &l : lines) {
                LayoutParams params;
                params.kind = LayoutKind::PaddedBlocked;
                params.blockW = l.bw;
                params.blockH = l.bh;
                params.padBlocks = 4;
                SceneLayout layout(store().scene(s), params);
                CacheStats stats = runCache(out.trace, layout,
                                            {c.size, l.line, c.assoc});
                double bw =
                    machine.cachedBandwidth(stats.missRate(), l.line);
                row.push_back(fmtFixed(bw / 1e6, 0) + " (" +
                              fmtFixed(stats.missRate() * 100, 2) +
                              ")");
                if (c.size == 32 * 1024) {
                    double red = machine.reductionFactor(
                        stats.missRate(), l.line);
                    best_reduction = std::max(best_reduction, red);
                    worst_reduction = std::min(worst_reduction, red);
                }
            }
        }
        table.row(row);
    }
    table.print(std::cout);

    std::cout << "\nUncached system bandwidth: "
              << fmtFixed(machine.uncachedBandwidth() / 1e9, 2)
              << " GB/s\n32KB-cache bandwidth reduction across "
                 "scenes/lines: "
              << fmtFixed(worst_reduction, 1) << "x to "
              << fmtFixed(best_reduction, 1)
              << "x (paper: 3x to 15x)\n";
    return 0;
}
