#include "cache/multi_sim.hh"

namespace texcache {

FaCapacitySweep::FaCapacitySweep(unsigned line_bytes,
                                 std::vector<uint64_t> sizes)
    : sizes_(std::move(sizes)), prof_(line_bytes)
{
    fatal_if(sizes_.empty(), "capacity sweep with no sizes");
}

std::vector<CacheStats>
FaCapacitySweep::stats() const
{
    std::vector<CacheStats> out;
    out.reserve(sizes_.size());
    for (uint64_t size : sizes_) {
        CacheStats s;
        s.accesses = prof_.accesses();
        s.misses = prof_.misses(size);
        s.coldMisses = prof_.coldMisses();
        out.push_back(s);
    }
    return out;
}

GroupSim::GroupSim(const std::vector<CacheConfig> &configs)
{
    fatal_if(configs.empty(), "group simulation with no configs");
    sims_.reserve(configs.size());
    for (const CacheConfig &c : configs)
        sims_.emplace_back(c);
}

std::vector<CacheStats>
GroupSim::stats() const
{
    std::vector<CacheStats> out;
    out.reserve(sims_.size());
    for (const CacheSim &sim : sims_)
        out.push_back(sim.stats());
    return out;
}

} // namespace texcache
