/**
 * @file
 * Mesh-building helpers shared by the benchmark scene generators.
 */

#ifndef TEXCACHE_SCENE_MESH_UTIL_HH
#define TEXCACHE_SCENE_MESH_UTIL_HH

#include "pipeline/scene_types.hh"

namespace texcache {

/** Simple Lambert term against a fixed directional light, in [amb, 1]. */
float lambertShade(Vec3 normal, Vec3 light_dir, float ambient = 0.35f);

/**
 * Append a bilinear quad patch subdivided into 2 * nu * nv triangles.
 *
 * Corners are given counter-clockwise (p00, p10, p11, p01); texture
 * coordinates interpolate from uv00 to uv11 (exceeding [0,1] repeats the
 * texture). A constant shade from the quad normal is applied.
 *
 * @return number of triangles appended.
 */
unsigned addQuadPatch(Scene &scene, uint16_t texture, Vec3 p00, Vec3 p10,
                      Vec3 p11, Vec3 p01, Vec2 uv00, Vec2 uv11,
                      unsigned nu, unsigned nv, Vec3 light_dir);

} // namespace texcache

#endif // TEXCACHE_SCENE_MESH_UTIL_HH
