#include "img/procedural.hh"

#include <cmath>

namespace texcache {

namespace {

/** Integer lattice hash -> [0,1). */
float
latticeHash(int x, int y, uint32_t seed)
{
    uint32_t h = static_cast<uint32_t>(x) * 0x9e3779b1u;
    h ^= static_cast<uint32_t>(y) * 0x85ebca77u;
    h ^= seed * 0xc2b2ae3du;
    h ^= h >> 16;
    h *= 0x7feb352du;
    h ^= h >> 15;
    h *= 0x846ca68bu;
    h ^= h >> 16;
    return static_cast<float>(h) * (1.0f / 4294967296.0f);
}

float
smooth(float t)
{
    return t * t * (3.0f - 2.0f * t);
}

/** One octave of bilinearly interpolated lattice noise. */
float
noiseOctave(float x, float y, uint32_t seed)
{
    int xi = static_cast<int>(std::floor(x));
    int yi = static_cast<int>(std::floor(y));
    float tx = smooth(x - static_cast<float>(xi));
    float ty = smooth(y - static_cast<float>(yi));
    float v00 = latticeHash(xi, yi, seed);
    float v10 = latticeHash(xi + 1, yi, seed);
    float v01 = latticeHash(xi, yi + 1, seed);
    float v11 = latticeHash(xi + 1, yi + 1, seed);
    float a = v00 + (v10 - v00) * tx;
    float b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

uint8_t
toByte(float v)
{
    v = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
    return static_cast<uint8_t>(v * 255.0f + 0.5f);
}

} // namespace

float
valueNoise(float x, float y, unsigned octaves, uint32_t seed)
{
    float sum = 0.0f;
    float amp = 0.5f;
    float freq = 1.0f;
    float norm = 0.0f;
    for (unsigned o = 0; o < octaves; ++o) {
        sum += amp * noiseOctave(x * freq, y * freq, seed + o * 131u);
        norm += amp;
        amp *= 0.5f;
        freq *= 2.0f;
    }
    return norm > 0.0f ? sum / norm : 0.0f;
}

Image
makeChecker(unsigned size, unsigned cells, Rgba8 a, Rgba8 b)
{
    Image img(size, size);
    unsigned cell = size / (cells ? cells : 1);
    if (cell == 0)
        cell = 1;
    for (unsigned y = 0; y < size; ++y)
        for (unsigned x = 0; x < size; ++x)
            img.texel(x, y) = (((x / cell) + (y / cell)) & 1) ? a : b;
    return img;
}

Image
makeSatellite(unsigned size, uint32_t seed)
{
    Image img(size, size);
    float inv = 8.0f / static_cast<float>(size);
    for (unsigned y = 0; y < size; ++y) {
        for (unsigned x = 0; x < size; ++x) {
            float h = valueNoise(x * inv, y * inv, 5, seed);
            // Elevation-banded coloring: water, fields, forest, rock.
            Rgba8 c;
            if (h < 0.35f)
                c = {30, 60, static_cast<uint8_t>(120 + h * 100), 255};
            else if (h < 0.6f)
                c = {static_cast<uint8_t>(60 + h * 80),
                     static_cast<uint8_t>(120 + h * 60), 50, 255};
            else if (h < 0.8f)
                c = {static_cast<uint8_t>(40 + h * 60),
                     static_cast<uint8_t>(80 + h * 40), 30, 255};
            else
                c = {toByte(h), toByte(h * 0.95f), toByte(h * 0.9f), 255};
            img.texel(x, y) = c;
        }
    }
    return img;
}

Image
makeBricks(unsigned width, unsigned height, uint32_t seed)
{
    Image img(width, height);
    unsigned brick_h = height / 8 ? height / 8 : 1;
    unsigned brick_w = width / 4 ? width / 4 : 1;
    for (unsigned y = 0; y < height; ++y) {
        unsigned row = y / brick_h;
        unsigned offset = (row & 1) ? brick_w / 2 : 0;
        for (unsigned x = 0; x < width; ++x) {
            bool mortar = (y % brick_h) < 2 ||
                          ((x + offset) % brick_w) < 2;
            if (mortar) {
                img.texel(x, y) = {180, 180, 175, 255};
            } else {
                float n = valueNoise(x * 0.05f, y * 0.05f, 3, seed);
                img.texel(x, y) = {toByte(0.55f + 0.2f * n),
                                   toByte(0.25f + 0.1f * n),
                                   toByte(0.2f + 0.05f * n), 255};
            }
        }
    }
    return img;
}

Image
makeWood(unsigned width, unsigned height, uint32_t seed)
{
    Image img(width, height);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            float fx = static_cast<float>(x) / width - 0.5f;
            float fy = static_cast<float>(y) / height - 0.5f;
            float r = std::sqrt(fx * fx + fy * fy);
            float wobble = valueNoise(fx * 6.0f, fy * 6.0f, 3, seed);
            float ring = std::sin((r * 40.0f + wobble * 4.0f)) * 0.5f +
                         0.5f;
            img.texel(x, y) = {toByte(0.45f + 0.3f * ring),
                               toByte(0.27f + 0.18f * ring),
                               toByte(0.12f + 0.08f * ring), 255};
        }
    }
    return img;
}

Image
makeMarble(unsigned size, uint32_t seed)
{
    Image img(size, size);
    float inv = 4.0f / static_cast<float>(size);
    for (unsigned y = 0; y < size; ++y) {
        for (unsigned x = 0; x < size; ++x) {
            float n = valueNoise(x * inv, y * inv, 4, seed);
            float v = std::sin((x * inv + n * 5.0f) * 3.14159f) * 0.5f +
                      0.5f;
            img.texel(x, y) = {toByte(0.7f + 0.3f * v),
                               toByte(0.68f + 0.3f * v),
                               toByte(0.72f + 0.25f * v), 255};
        }
    }
    return img;
}

} // namespace texcache
