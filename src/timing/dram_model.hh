/**
 * @file
 * DRAM memory model for line fills.
 *
 * Section 3.2 of the paper motivates caches partly through DRAM
 * behavior: "block transfers of cache lines between the cache and
 * memory make it possible to get the most bandwidth out of the
 * memory. Present-day DRAM architectures are optimized for long burst
 * transfers ... since this amortizes the setup costs of the transfer
 * over many bytes." This model makes that argument measurable.
 *
 * The memory is a set of independently-buffered banks; consecutive
 * rows interleave across banks. A fill to an open row pays the CAS
 * latency, a fill to a closed row pays precharge+activate+CAS, and
 * the burst itself occupies the bus for bytes/busBytes cycles. Bus
 * utilization = transferred bytes / (busy cycles * bus width).
 */

#ifndef TEXCACHE_TIMING_DRAM_MODEL_HH
#define TEXCACHE_TIMING_DRAM_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/bits.hh"
#include "layout/address_space.hh"

namespace texcache {

/** DRAM timing and geometry parameters (100 MHz bus cycles). */
struct DramConfig
{
    unsigned rowBytes = 2048; ///< row-buffer (page) size per bank
    unsigned numBanks = 4;    ///< independently buffered banks
    unsigned busBytes = 8;    ///< bytes transferred per bus cycle
    unsigned tCas = 4;        ///< cycles to first data, row open
    unsigned tRowMiss = 12;   ///< precharge + activate + CAS
};

/** Accumulated DRAM statistics. */
struct DramStats
{
    uint64_t fills = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t bytes = 0;
    uint64_t cycles = 0; ///< total bus-occupied cycles

    double
    rowHitRate() const
    {
        return fills ? static_cast<double>(rowHits) / fills : 0.0;
    }

    /** Fraction of occupied cycles spent moving data (vs setup). */
    double
    busUtilization(unsigned bus_bytes) const
    {
        return cycles ? static_cast<double>(bytes) /
                            (static_cast<double>(cycles) * bus_bytes)
                      : 0.0;
    }
};

/** Open-row DRAM bank model fed with cache line fills. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /**
     * Account one line fill of @p bytes starting at @p addr.
     * @return bus cycles the fill occupied.
     */
    uint64_t fill(Addr addr, unsigned bytes);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

  private:
    DramConfig config_;
    std::vector<uint64_t> openRow_; ///< per bank; kNoRow when closed
    static constexpr uint64_t kNoRow = ~0ULL;
    DramStats stats_;
};

} // namespace texcache

#endif // TEXCACHE_TIMING_DRAM_MODEL_HH
