/**
 * @file
 * Binding between a scene's textures and a memory representation.
 *
 * A SceneLayout places every texture of a scene into one simulated
 * address space under a chosen representation and then maps recorded
 * texel traces to byte-address streams - the paper's pipeline-coupled
 * cache simulation, factored so one rendered trace can be replayed
 * under many representations (DESIGN.md section 5).
 */

#ifndef TEXCACHE_CORE_SCENE_LAYOUT_HH
#define TEXCACHE_CORE_SCENE_LAYOUT_HH

#include <memory>
#include <vector>

#include "layout/layout.hh"
#include "pipeline/scene_types.hh"
#include "trace/texel_trace.hh"

namespace texcache {

/** Per-scene instantiation of a texture memory representation. */
class SceneLayout
{
  public:
    SceneLayout(const Scene &scene, const LayoutParams &params);

    /** The layout serving texture @p tex. */
    const TextureLayout &
    layout(unsigned tex) const
    {
        panic_if(tex >= layouts_.size(), "texture ", tex, " of ",
                 layouts_.size());
        return *layouts_[tex];
    }

    unsigned numTextures() const
    {
        return static_cast<unsigned>(layouts_.size());
    }

    const LayoutParams &params() const { return params_; }

    /** Bytes of simulated memory all textures occupy together. */
    uint64_t totalFootprint() const { return footprint_; }

    /**
     * Map every record of @p trace to its byte address(es) in order and
     * invoke @p fn(Addr) for each.
     */
    template <typename Fn>
    void
    forEachAddress(const TexelTrace &trace, Fn &&fn) const
    {
        Addr out[3];
        trace.forEach([&](const TexelRecord &r) {
            const TextureLayout &lay = *layouts_[r.texture];
            unsigned n =
                lay.addresses({r.level, r.u, r.v}, out);
            for (unsigned i = 0; i < n; ++i)
                fn(out[i]);
        });
    }

    /**
     * Translate records [@p begin, @p end) of @p trace into @p out
     * (replacing its contents, reusing its storage). Mapping a span
     * once and replaying the flat buffer through one or more
     * simulators is the sweep engine's fast path: the trace decode and
     * the layout address computation are paid once per span instead of
     * once per (access x configuration).
     */
    void
    mapRange(const TexelTrace &trace, size_t begin, size_t end,
             std::vector<Addr> &out) const
    {
        out.clear();
        Addr a[3];
        for (size_t i = begin; i < end; ++i) {
            TexelRecord r = trace[i];
            const TextureLayout &lay = *layouts_[r.texture];
            unsigned n = lay.addresses({r.level, r.u, r.v}, a);
            for (unsigned k = 0; k < n; ++k)
                out.push_back(a[k]);
        }
    }

    /**
     * Like mapRange() but over a span of packed records, as handed out
     * by a TraceSource chunk - the streamed-replay path has no
     * TexelTrace to index into.
     */
    void
    mapPacked(const uint64_t *recs, size_t n,
              std::vector<Addr> &out) const
    {
        out.clear();
        Addr a[3];
        for (size_t i = 0; i < n; ++i) {
            TexelRecord r = TexelRecord::unpack(recs[i]);
            const TextureLayout &lay = *layouts_[r.texture];
            unsigned cnt = lay.addresses({r.level, r.u, r.v}, a);
            for (unsigned k = 0; k < cnt; ++k)
                out.push_back(a[k]);
        }
    }

    /** Span length (in records) the chunked replay loops use. */
    static constexpr size_t kMapChunk = 1 << 16;

  private:
    LayoutParams params_;
    AddressSpace space_;
    std::vector<std::unique_ptr<TextureLayout>> layouts_;
    uint64_t footprint_ = 0;
};

} // namespace texcache

#endif // TEXCACHE_CORE_SCENE_LAYOUT_HH
