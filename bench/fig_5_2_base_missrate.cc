/**
 * @file
 * Reproduces Figure 5.2: miss rate versus cache size for the base
 * nonblocked representation, fully associative caches, 32-byte lines.
 *
 * Panel (a) rasterizes horizontally, panel (b) vertically. The paper's
 * headline observations to reproduce:
 *  - first-level working sets of 4-16 KB (sharp miss-rate drops);
 *  - cold-miss floors below ~3% at large sizes (Flight highest);
 *  - the Town scene degrading badly under vertical rasterization
 *    because its textures appear upright on screen (the base
 *    representation's orientation sensitivity).
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

void
panel(const char *title, ScanDirection dir)
{
    TextTable table(title);
    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 512 << 10);
    std::vector<std::string> header = {"Scene"};
    for (uint64_t s : sizes)
        header.push_back(fmtBytes(s));
    header.push_back("WorkingSet");
    table.header(header);

    for (BenchScene s : allBenchScenes()) {
        RasterOrder order;
        order.dir = dir;
        const RenderOutput &out = store().output(s, order);
        LayoutParams params;
        params.kind = LayoutKind::Nonblocked;
        SceneLayout layout(store().scene(s), params);
        StackDistProfiler prof = profileTrace(out.trace, layout, 32);

        std::vector<std::string> row = {benchSceneName(s)};
        for (uint64_t size : sizes)
            row.push_back(fmtPercent(prof.missRate(size)));
        row.push_back(fmtBytes(firstWorkingSet(prof, sizes)));
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    panel("Figure 5.2(a): base representation, horizontal "
          "rasterization, FA, 32B lines",
          ScanDirection::Horizontal);
    panel("Figure 5.2(b): base representation, vertical rasterization, "
          "FA, 32B lines",
          ScanDirection::Vertical);
    std::cout << "Paper reference: working sets Flight 4KB, Town 8KB "
                 "(16KB vertical), Guitar 16KB, Goblet 16KB; Town's "
                 "small-cache miss rates rise sharply under vertical "
                 "rasterization.\n";
    return 0;
}
