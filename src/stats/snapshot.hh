/**
 * @file
 * Point-in-time snapshots of a stats::Group tree.
 *
 * The live registry (stats.hh) is built for hot-path writers: plain
 * uint64 increments, no locks, dump at end of run. A long-running
 * daemon needs the opposite - cheap consistent *reads* while the
 * writers keep going. A Snapshot flattens the tree once into a value
 * vector (dotted paths, resolved formula values, full histogram
 * copies) that is then immutable: render it as JSON or Prometheus
 * exposition text, diff it against an earlier snapshot for rates, or
 * park it in a SnapshotRing for post-mortem dumps - all without
 * touching the live tree again.
 *
 * Thread-safety contract: capture() reads the live tree with plain
 * loads, so the *caller* synchronizes with writers (the service
 * engine captures under its stats mutex). Everything after capture is
 * value semantics - snapshots can be rendered, diffed and shipped
 * across threads freely.
 *
 * Kinds map onto exposition semantics: Scalars are monotonic Counters
 * (deltas subtract), Formulas are Gauges (deltas keep the newer
 * value), Distributions diff bucket-wise via
 * Distribution::subtractCounts.
 */

#ifndef TEXCACHE_STATS_SNAPSHOT_HH
#define TEXCACHE_STATS_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/stats.hh"

namespace texcache {

class JsonWriter;

namespace stats {

/** One flattened, immutable reading of a Group tree. */
class Snapshot
{
  public:
    enum class Kind : uint8_t
    {
        Counter, ///< monotonic (Scalar); deltas subtract
        Gauge,   ///< instantaneous (Formula / synthetic); deltas keep newer
        Dist,    ///< histogram (Distribution); deltas subtract buckets
    };

    struct Entry
    {
        std::string path; ///< dotted path relative to the captured root
        Kind kind;
        double value = 0.0;     ///< Counter/Gauge reading (finite)
        Distribution dist;      ///< Dist payload; empty otherwise
    };

    Snapshot() = default;

    /**
     * Flatten @p root. Paths are relative to it (the root's own name
     * is not a path component). Caller synchronizes with writers.
     */
    static Snapshot capture(const Group &root);

    /** Wall-clock capture stamp, ms since the epoch (0 = unset). */
    int64_t unixMs = 0;

    /** Append a synthetic instantaneous gauge (live queue depth...). */
    void gauge(std::string path, double value);

    /** Append a synthetic monotonic counter (host perf totals...). */
    void counter(std::string path, double value);

    /** Entry at @p path; nullptr when absent. */
    const Entry *find(std::string_view path) const;

    /** Counter/Gauge value at @p path (@p fallback when absent). */
    double value(std::string_view path, double fallback = 0.0) const;

    /**
     * Per-entry difference vs an @p earlier snapshot of the same tree:
     * counters and histograms subtract, gauges keep this (newer)
     * snapshot's value. Entries absent from @p earlier pass through
     * unchanged (new stats appear as their full value).
     */
    Snapshot deltaFrom(const Snapshot &earlier) const;

    const std::vector<Entry> &entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }

    /**
     * Render as one JSON object: {"t_unix_ms": ..., "stats": {path:
     * number | distribution-object, ...}}. Never emits NaN/inf.
     */
    void writeJson(JsonWriter &w) const;

  private:
    std::vector<Entry> entries_;
};

/**
 * Bounded ring of periodic snapshots - the daemon's flight recorder.
 * push() evicts the oldest once capacity is reached; writeJson()
 * renders oldest-first, attaching each snapshot's counter deltas vs
 * its predecessor so rates are readable straight off the dump.
 */
class SnapshotRing
{
  public:
    explicit SnapshotRing(size_t capacity);

    void push(Snapshot snap);

    size_t size() const { return ring_.size(); }
    size_t capacity() const { return capacity_; }

    /** Snapshot @p i, oldest-first; i < size(). */
    const Snapshot &at(size_t i) const;

    /** Total snapshots ever pushed (>= size() once wrapped). */
    uint64_t pushed() const { return pushed_; }

    /**
     * {"schema": "texcache-snapshots-1", "capacity": ..., "pushed":
     * ..., "retained": size(), "evicted": pushed - size(),
     * "snapshots": [{...snapshot..., "delta": {counter deltas vs the
     * previous retained snapshot}}]}. retained/evicted report the
     * true window after wraparound: the oldest retained snapshot
     * carries no delta (its predecessor was evicted).
     */
    void writeJson(JsonWriter &w) const;

  private:
    size_t capacity_;
    size_t head_ = 0; ///< index of the oldest element
    uint64_t pushed_ = 0;
    std::vector<Snapshot> ring_;
};

} // namespace stats
} // namespace texcache

#endif // TEXCACHE_STATS_SNAPSHOT_HH
