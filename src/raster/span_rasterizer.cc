#include "raster/span_rasterizer.hh"

#include <algorithm>
#include <cmath>

namespace texcache {

bool
spanOnLine(const TriangleSetup &tri, bool horizontal, int fixed,
           int &lo, int &hi)
{
    float fixed_center = static_cast<float>(fixed) + 0.5f;
    float f_lo = static_cast<float>(lo);
    float f_hi = static_cast<float>(hi);

    // Intersect four half-planes (3 edges + positive 1/w) with the
    // line; each contributes a running-coordinate bound.
    for (int i = 0; i < 4; ++i) {
        TriangleSetup::EdgeView e =
            i < 3 ? tri.edge(i) : tri.invWPlane();
        float run_coef = horizontal ? e.ex : e.ey;
        float c = e.e0 +
                  (horizontal ? e.ey : e.ex) * fixed_center +
                  run_coef * 0.5f; // value at pixel index 0's center
        if (run_coef > 0.0f) {
            f_lo = std::max(f_lo, (-c) / run_coef - 1.0f);
        } else if (run_coef < 0.0f) {
            f_hi = std::min(f_hi, (-c) / run_coef + 1.0f);
        } else if (c < 0.0f || (c == 0.0f && (i == 3 || !e.topLeft))) {
            return false; // whole line outside this half-plane
        }
    }
    if (f_hi < f_lo - 2.0f)
        return false;

    lo = std::max(lo, static_cast<int>(std::floor(f_lo)) - 1);
    hi = std::min(hi, static_cast<int>(std::ceil(f_hi)) + 1);

    auto covered = [&](int run) {
        return horizontal ? tri.covers(run, fixed)
                          : tri.covers(fixed, run);
    };
    while (lo <= hi && !covered(lo))
        ++lo;
    while (hi >= lo && !covered(hi))
        --hi;
    return lo <= hi;
}

bool
spanOnScanline(const TriangleSetup &tri, int y, int &x_lo, int &x_hi)
{
    return spanOnLine(tri, /*horizontal=*/true, y, x_lo, x_hi);
}

void
rasterizeTriangleSpans(const TriangleSetup &tri, unsigned screen_w,
                       unsigned screen_h, ScanDirection dir,
                       const FragmentSink &sink)
{
    if (!tri.valid())
        return;
    PixelRect box = tri.bounds(screen_w, screen_h);
    if (box.empty())
        return;

    Fragment frag;
    if (dir == ScanDirection::Horizontal) {
        for (int y = box.y0; y <= box.y1; ++y) {
            int lo = box.x0, hi = box.x1;
            if (!spanOnLine(tri, true, y, lo, hi))
                continue;
            for (int x = lo; x <= hi; ++x) {
                // Interior pixels need no coverage test: coverage is
                // an interval and both endpoints were verified.
                tri.attributesAt(x, y, frag);
                sink(frag);
            }
        }
    } else {
        for (int x = box.x0; x <= box.x1; ++x) {
            int lo = box.y0, hi = box.y1;
            if (!spanOnLine(tri, false, x, lo, hi))
                continue;
            for (int y = lo; y <= hi; ++y) {
                tri.attributesAt(x, y, frag);
                sink(frag);
            }
        }
    }
}

} // namespace texcache
