/**
 * @file
 * Trace capture and offline replay tool.
 *
 * Mirrors the paper's methodology split: capture the texel-coordinate
 * trace of a benchmark frame once, then sweep cache organizations over
 * the saved trace without re-rendering.
 *
 * Usage:
 *   trace_tool capture <scene> <out.trc> [horizontal|vertical]
 *   trace_tool stats   <in.trc>
 *   trace_tool replay  <scene> <in.trc> <size_bytes> <line_bytes>
 *                      <assoc|full>
 *
 * `replay` needs the scene name again because the trace stores texel
 * coordinates, not addresses: the memory representation (here: the
 * paper's padded blocked layout) is applied at replay time.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/experiment.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stats.hh"

using namespace texcache;

namespace {

[[noreturn]] void
usage()
{
    std::cerr << "usage:\n"
                 "  trace_tool capture <scene> <out.trc> "
                 "[horizontal|vertical]\n"
                 "  trace_tool stats <in.trc>\n"
                 "  trace_tool replay <scene> <in.trc> <size> <line> "
                 "<assoc|full>\n"
                 "scenes: flight town guitar goblet\n";
    std::exit(1);
}

BenchScene
parseScene(const std::string &s)
{
    if (s == "flight")
        return BenchScene::Flight;
    if (s == "town")
        return BenchScene::Town;
    if (s == "guitar")
        return BenchScene::Guitar;
    if (s == "goblet")
        return BenchScene::Goblet;
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        usage();
    std::string cmd = argv[1];

    if (cmd == "capture") {
        if (argc < 4)
            usage();
        Scene scene = makeScene(parseScene(argv[2]));
        RasterOrder order;
        if (argc > 4 && std::string(argv[4]) == "vertical")
            order.dir = ScanDirection::Vertical;
        RenderOptions opts;
        opts.writeFramebuffer = false;
        RenderOutput out = render(scene, order, opts);
        writeTrace(out.trace, argv[3]);
        std::cout << "captured " << out.trace.size() << " texel "
                  << "accesses from " << scene.name << " to " << argv[3]
                  << "\n";
        return 0;
    }

    if (cmd == "stats") {
        TexelTrace trace = readTrace(argv[2]);
        TraceStats stats = analyzeTrace(trace);
        TextTable table("trace statistics");
        table.header({"Metric", "Value"});
        table.row({"accesses", std::to_string(stats.accesses)});
        table.row({"texture runs", std::to_string(stats.textureRuns)});
        table.row({"avg runlength",
                   fmtFixed(stats.averageRunlength(), 0)});
        table.row({"acc/texel trilinear-lower",
                   fmtFixed(stats.trilinearLower.accessesPerTexel(),
                            2)});
        table.row({"acc/texel trilinear-upper",
                   fmtFixed(stats.trilinearUpper.accessesPerTexel(),
                            2)});
        table.row({"acc/texel bilinear",
                   fmtFixed(stats.bilinear.accessesPerTexel(), 2)});
        table.print(std::cout);
        return 0;
    }

    if (cmd == "replay") {
        if (argc < 7)
            usage();
        Scene scene = makeScene(parseScene(argv[2]));
        TexelTrace trace = readTrace(argv[3]);
        CacheConfig cache;
        cache.sizeBytes =
            static_cast<uint64_t>(std::atoll(argv[4]));
        cache.lineBytes = static_cast<unsigned>(std::atoi(argv[5]));
        cache.assoc = std::string(argv[6]) == "full"
                          ? CacheConfig::kFullyAssoc
                          : static_cast<unsigned>(std::atoi(argv[6]));

        LayoutParams params;
        params.kind = LayoutKind::PaddedBlocked;
        params.blockW = params.blockH = 8;
        SceneLayout layout(scene, params);

        CacheStats stats = runCache(trace, layout, cache);
        std::cout << cache.str() << ": " << stats.accesses
                  << " accesses, " << stats.misses << " misses ("
                  << fmtPercent(stats.missRate()) << "), "
                  << stats.coldMisses << " cold\n";
        return 0;
    }

    usage();
}
