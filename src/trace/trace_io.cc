#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

namespace texcache {

namespace {

constexpr char kMagic[8] = {'T', 'E', 'X', 'T', 'R', 'C', '0', '1'};

} // namespace

void
writeTrace(const TexelTrace &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot open trace file '", path, "' for writing");

    out.write(kMagic, sizeof(kMagic));
    uint64_t count = trace.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));

    // Stream in chunks to keep memory flat for very large traces.
    std::vector<uint64_t> buf;
    buf.reserve(1 << 16);
    for (size_t i = 0; i < trace.size(); ++i) {
        buf.push_back(trace[i].pack());
        if (buf.size() == buf.capacity()) {
            out.write(reinterpret_cast<const char *>(buf.data()),
                      static_cast<std::streamsize>(buf.size() * 8));
            buf.clear();
        }
    }
    if (!buf.empty())
        out.write(reinterpret_cast<const char *>(buf.data()),
                  static_cast<std::streamsize>(buf.size() * 8));
    fatal_if(!out, "short write to trace file '", path, "'");
}

TexelTrace
readTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open trace file '", path, "'");

    char magic[8];
    in.read(magic, sizeof(magic));
    fatal_if(!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
             "'", path, "' is not a texcache trace file");

    uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    fatal_if(!in, "trace file '", path, "' has a truncated header");

    TexelTrace trace;
    trace.reserve(count);
    std::vector<uint64_t> buf(1 << 16);
    uint64_t remaining = count;
    while (remaining > 0) {
        uint64_t n = std::min<uint64_t>(remaining, buf.size());
        in.read(reinterpret_cast<char *>(buf.data()),
                static_cast<std::streamsize>(n * 8));
        fatal_if(!in, "trace file '", path, "' is truncated (expected ",
                 count, " records)");
        for (uint64_t i = 0; i < n; ++i)
            trace.append(TexelRecord::unpack(buf[i]));
        remaining -= n;
    }
    return trace;
}

} // namespace texcache
