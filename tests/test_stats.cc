/** @file
 * The stats layer's contract (stats/stats.hh): names register once and
 * panic on duplicates, distributions bucket by powers of two exactly
 * at the edges, formulas evaluate lazily against live counters, the
 * JSON dump is stable, and the cache export views (cache/stats_export)
 * read identical numbers to the legacy CacheStats counters they wrap.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/cache_sim.hh"
#include "cache/stats_export.hh"
#include "common/json.hh"
#include "stats/stats.hh"

using namespace texcache;

TEST(StatsScalar, RegistersAndCounts)
{
    stats::Group root;
    stats::Scalar &hits = root.scalar("hits", "demo counter");
    ++hits;
    hits += 4;
    EXPECT_EQ(hits.value(), 5u);
    EXPECT_EQ(root.value("hits"), 5.0);
    EXPECT_EQ(root.find("hits")->desc(), "demo counter");
}

TEST(StatsScalar, DetachedThenAdded)
{
    stats::Scalar counter;
    ++counter; // hot-path increments before registration are kept
    stats::Group root;
    root.add(counter, "late");
    ++counter;
    EXPECT_EQ(root.value("late"), 2.0);
}

TEST(StatsGroup, DottedPathsResolveThroughNesting)
{
    stats::Group root;
    stats::Group &l1 = root.group("l1");
    stats::Group &bank = l1.group("bank0");
    bank.constant("misses", 7);
    EXPECT_EQ(root.value("l1.bank0.misses"), 7.0);
    EXPECT_NE(root.findGroup("l1.bank0"), nullptr);
    EXPECT_EQ(root.find("l1.bank0.nope"), nullptr);
    EXPECT_EQ(root.findGroup("l2"), nullptr);
}

TEST(StatsGroupDeathTest, DuplicateAndIllegalNamesPanic)
{
    stats::Group root;
    root.scalar("x");
    EXPECT_DEATH(root.scalar("x"), "duplicate name");
    EXPECT_DEATH(root.group("x"), "duplicate name");
    EXPECT_DEATH(root.scalar("a.b"), "path separator");
    EXPECT_DEATH(root.scalar(""), "empty name");
    EXPECT_DEATH(root.value("missing"), "no stat at path");
}

TEST(StatsDistribution, BucketsAtPowerOfTwoEdges)
{
    // Bucket 0 holds value 0; bucket k >= 1 holds [2^(k-1), 2^k).
    EXPECT_EQ(stats::Distribution::bucketOf(0), 0u);
    EXPECT_EQ(stats::Distribution::bucketOf(1), 1u);
    EXPECT_EQ(stats::Distribution::bucketOf(2), 2u);
    EXPECT_EQ(stats::Distribution::bucketOf(3), 2u);
    EXPECT_EQ(stats::Distribution::bucketOf(4), 3u);
    EXPECT_EQ(stats::Distribution::bucketOf(7), 3u);
    EXPECT_EQ(stats::Distribution::bucketOf(8), 4u);
    EXPECT_EQ(stats::Distribution::bucketOf((1ull << 32) - 1), 32u);
    EXPECT_EQ(stats::Distribution::bucketOf(1ull << 32), 33u);
    EXPECT_EQ(stats::Distribution::bucketOf(~0ull), 64u);

    stats::Distribution d;
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1024ull})
        d.sample(v);
    EXPECT_EQ(d.count(), 6u);
    EXPECT_EQ(d.sum(), 1034u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 1024u);
    EXPECT_DOUBLE_EQ(d.mean(), 1034.0 / 6.0);
    EXPECT_EQ(d.bucket(0), 1u); // 0
    EXPECT_EQ(d.bucket(1), 1u); // 1
    EXPECT_EQ(d.bucket(2), 2u); // 2, 3
    EXPECT_EQ(d.bucket(3), 1u); // 4
    EXPECT_EQ(d.bucket(11), 1u); // 1024
}

TEST(StatsDistribution, MergeAndSnapshot)
{
    stats::Distribution a, b;
    a.sample(1);
    a.sample(100);
    b.sample(50);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 100u);

    stats::Group root;
    stats::Distribution &snap =
        root.distribution("depth", "snapshot", a);
    a.sample(7); // the snapshot must not follow the source
    EXPECT_EQ(snap.count(), 3u);
    EXPECT_EQ(root.value("depth"), 3.0);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.min(), 0u);
}

TEST(StatsFormula, EvaluatesLazilyAgainstLiveCounters)
{
    uint64_t hits = 0, accesses = 0;
    stats::Group root;
    root.formula("hit_rate", "hits / accesses", [&] {
        return accesses ? double(hits) / double(accesses) : 0.0;
    });
    EXPECT_EQ(root.value("hit_rate"), 0.0);
    hits = 3;
    accesses = 4;
    // No re-registration: the formula reads the counters at call time.
    EXPECT_DOUBLE_EQ(root.value("hit_rate"), 0.75);
}

TEST(StatsJson, DumpMatchesTheDocumentedShape)
{
    stats::Group root;
    root.constant("n", 2);
    root.real("rate", 0.5);
    stats::Group &sub = root.group("sub");
    stats::Distribution &d = sub.distribution("lat", "");
    d.sample(0);
    d.sample(3);

    std::ostringstream os;
    root.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\n"
              "  \"n\": 2,\n"
              "  \"rate\": 0.5,\n"
              "  \"sub\": {\n"
              "    \"lat\": {\n"
              "      \"count\": 2,\n"
              "      \"sum\": 3,\n"
              "      \"min\": 0,\n"
              "      \"max\": 3,\n"
              "      \"mean\": 1.5,\n"
              "      \"p50\": 3,\n"
              "      \"p95\": 3,\n"
              "      \"p99\": 3,\n"
              "      \"bucketing\": \"log2\",\n"
              "      \"buckets\": [\n"
              "        1,\n"
              "        0,\n"
              "        1\n"
              "      ]\n"
              "    }\n"
              "  }\n"
              "}\n");
}

TEST(StatsJson, WriterEscapesAndPanicsOnMisuse)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("a\"b\n", "x\ty");
        w.endObject();
        EXPECT_TRUE(w.done());
    }
    EXPECT_EQ(os.str(), "{\"a\\\"b\\n\":\"x\\ty\"}");
}

TEST(StatsJsonDeathTest, UnbalancedNestingPanics)
{
    std::ostringstream os;
    JsonWriter w(os);
    EXPECT_DEATH(w.endObject(), "unbalanced");
    w.beginObject();
    EXPECT_DEATH(w.value(1), "needs a key");
    w.key("k");
    EXPECT_DEATH(w.key("k2"), "awaits");
}

TEST(StatsExport, CacheViewMatchesLegacyCounters)
{
    // Tiny direct-mapped cache over a deterministic stream: the
    // export formulas must read exactly the legacy CacheStats fields.
    CacheSim sim({1024, 64, 1});
    uint32_t x = 9;
    for (int i = 0; i < 20000; ++i) {
        x = x * 1664525u + 1013904223u;
        sim.access((x >> 8) & 0xffff8);
    }
    const CacheStats &s = sim.stats();
    ASSERT_GT(s.misses, 0u);
    ASSERT_GT(s.evictions, 0u);

    stats::Group root;
    exportCacheStats(root.group("l1"), s, 64);
    EXPECT_EQ(root.value("l1.accesses"), double(s.accesses));
    EXPECT_EQ(root.value("l1.misses"), double(s.misses));
    EXPECT_EQ(root.value("l1.hits"), double(s.accesses - s.misses));
    EXPECT_EQ(root.value("l1.cold_misses"), double(s.coldMisses));
    EXPECT_EQ(root.value("l1.evictions"), double(s.evictions));
    EXPECT_DOUBLE_EQ(root.value("l1.miss_rate"), s.missRate());
    EXPECT_EQ(root.value("l1.bytes_fetched"),
              double(s.misses) * 64.0);

    // Evictions lag misses by at most the cache's line count, and a
    // cache this small over this stream must have recycled lines.
    EXPECT_LE(s.evictions, s.misses);
    EXPECT_GE(s.evictions, s.misses - 1024 / 64);
}

TEST(StatsExport, LiveViewFollowsTheCounter)
{
    CacheSim sim({1024, 64, 1});
    stats::Group root;
    exportCacheStats(root.group("l1"), sim.stats(), 64);
    EXPECT_EQ(root.value("l1.accesses"), 0.0);
    sim.access(0);
    sim.access(64);
    EXPECT_EQ(root.value("l1.accesses"), 2.0);
    EXPECT_EQ(root.value("l1.misses"), 2.0);
}

TEST(StatsDistribution, PercentilesOnEmptyAndSingleSample)
{
    stats::Distribution d;
    EXPECT_EQ(d.percentile(0.5), 0.0);
    d.sample(42);
    // One sample: every quantile is that sample (clamped to min/max).
    EXPECT_EQ(d.percentile(0.0), 42.0);
    EXPECT_EQ(d.percentile(0.5), 42.0);
    EXPECT_EQ(d.percentile(1.0), 42.0);
}

TEST(StatsDistribution, PercentilesTrackTheSampleMass)
{
    // 100 samples of 1 and 1 sample of 1000: the median must sit in
    // the low bucket and p99+ must reach toward the outlier's bucket.
    stats::Distribution d;
    for (int i = 0; i < 100; ++i)
        d.sample(1);
    d.sample(1000);
    // All of the mass below p99 sits in bucket [1, 2); interpolation
    // within the bucket may return any value in it.
    EXPECT_GE(d.percentile(0.50), 1.0);
    EXPECT_LT(d.percentile(0.50), 2.0);
    EXPECT_GE(d.percentile(0.95), 1.0);
    EXPECT_LT(d.percentile(0.95), 2.0);
    double p99_5 = d.percentile(0.995);
    EXPECT_GE(p99_5, 512.0);  // the outlier's bucket is [512, 1024)
    EXPECT_LE(p99_5, 1000.0); // clamped at the observed max
}

TEST(StatsDistribution, PercentilesAreMonotoneAndBounded)
{
    stats::Distribution d;
    for (uint64_t v = 1; v <= 1024; ++v)
        d.sample(v);
    double prev = 0.0;
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
        double v = d.percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        EXPECT_GE(v, static_cast<double>(d.min()));
        EXPECT_LE(v, static_cast<double>(d.max()));
        prev = v;
    }
    // The uniform 1..1024 median lands in the right log2 bucket
    // (exactness is bounded by the histogram's bucket resolution).
    double p50 = d.percentile(0.5);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
}
