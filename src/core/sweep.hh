/**
 * @file
 * Parallel sweep execution over independent simulation points.
 *
 * The figure sweeps that cannot be collapsed into one pass
 * (cache/multi_sim.hh) are embarrassingly parallel: every point owns
 * its simulator state and only reads the shared trace. Sweep::run
 * executes a point list on a work-stealing thread pool - each worker
 * starts with an even slice of the index range and steals the back
 * half of a victim's remaining slice when its own runs dry, which
 * keeps long-running points (big scenes, big caches) from serializing
 * the tail.
 *
 * Results are stored by point index, so their order is deterministic
 * and identical to serial execution regardless of thread count or
 * scheduling; tests/test_sweep.cc asserts bit-identical output.
 * Per-point wall-clock is captured for the perf harness.
 *
 * Thread count: TEXCACHE_THREADS overrides, else hardware concurrency;
 * zero, negative or non-numeric values are a fatal() configuration
 * error. With one thread (or one point) the pool is bypassed entirely.
 *
 * Observability: every top-level run records a SweepRunStats (steal
 * count, thread utilization, wall-clock) retrievable via
 * Sweep::lastRunStats() until the next run; benches export it into
 * their stats tree (bench/bench_util.hh). Setting TEXCACHE_PROGRESS=1
 * makes long runs inform() completed/total points and an ETA every
 * few seconds; it is off by default so bench stderr stays quiet.
 */

#ifndef TEXCACHE_CORE_SWEEP_HH
#define TEXCACHE_CORE_SWEEP_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

namespace texcache {

/** One sweep point's value plus its measured wall-clock. */
template <typename T>
struct SweepResult
{
    T value{};
    double millis = 0.0;
};

/** Aggregate behavior of one Sweep::run (the perf-harness view). */
struct SweepRunStats
{
    uint64_t points = 0;
    unsigned threads = 0;
    uint64_t steals = 0;     ///< successful steal operations
    double wallMillis = 0.0; ///< whole-run wall-clock
    double busyMillis = 0.0; ///< point execution time summed over workers

    /** Fraction of thread-time spent executing points (0..1). */
    double
    utilization() const
    {
        return threads && wallMillis > 0.0
                   ? busyMillis / (threads * wallMillis)
                   : 0.0;
    }
};

class Sweep
{
  public:
    /** Threads the next run will use (TEXCACHE_THREADS or hardware). */
    static unsigned threadCount();

    /**
     * Behavior of the most recent *top-level* run (nested runs - a
     * point that itself sweeps - fold into their enclosing run's
     * busy time and do not overwrite this). Read it right after the
     * run(...) call whose behavior you want.
     */
    static SweepRunStats lastRunStats();

    /**
     * Evaluate @p fn over every point, in parallel, returning results
     * in point order. @p fn must be safe to call concurrently from
     * several threads (give each point its own simulator state; shared
     * inputs must be read-only) and its return type default-
     * constructible.
     */
    template <typename Point, typename Fn>
    static auto
    run(const std::vector<Point> &points, Fn fn)
        -> std::vector<SweepResult<decltype(fn(points[0]))>>
    {
        using R = decltype(fn(points[0]));
        std::vector<SweepResult<R>> results(points.size());
        runIndexed(points.size(), [&](size_t i) {
            auto t0 = std::chrono::steady_clock::now();
            results[i].value = fn(points[i]);
            results[i].millis =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        });
        return results;
    }

  private:
    /** Run work(0..n-1) on the pool; blocks until all complete. */
    static void runIndexed(size_t n,
                           const std::function<void(size_t)> &work);
};

} // namespace texcache

#endif // TEXCACHE_CORE_SWEEP_HH
