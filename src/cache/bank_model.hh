/**
 * @file
 * Multi-banked cache port model (paper section 7.1.2).
 *
 * A trilinear interpolation needs the four texels of a 2x2 quad from a
 * level in the same cycle. The paper interleaves the cache across four
 * independently addressed banks at texel granularity and notes that a
 * *morton* intra-line texel order makes every aligned or unaligned 2x2
 * quad conflict-free, whereas a row-major intra-line order can place two
 * quad texels in the same bank.
 *
 * This model assigns each texel of a quad to a bank under a chosen
 * interleaving scheme and charges one cycle per access to the busiest
 * bank (bank conflicts serialize).
 */

#ifndef TEXCACHE_CACHE_BANK_MODEL_HH
#define TEXCACHE_CACHE_BANK_MODEL_HH

#include <cstdint>

#include "texture/sampler.hh"

namespace texcache {

/** Intra-line texel-to-bank interleaving scheme. */
enum class BankInterleave
{
    /** bank = (v&1)*2 + (u&1): morton 2x2 interleave - conflict-free. */
    Morton,
    /** bank = (row-major texel index) % 4: naive linear interleave. */
    RowMajor,
};

/** Counts quad-access cycles under a 4-bank cache. */
class BankModel
{
  public:
    explicit BankModel(BankInterleave scheme, unsigned row_width_texels = 8)
        : scheme_(scheme), rowWidth_(row_width_texels)
    {}

    /**
     * Account one 2x2 quad read (the four texels of one bilinear
     * filter); texels are identified by their (u, v) coordinates.
     *
     * @return cycles the quad needed (1 = conflict-free, up to 4).
     */
    unsigned
    accessQuad(const TexelTouch quad[4])
    {
        unsigned counts[4] = {0, 0, 0, 0};
        for (int i = 0; i < 4; ++i)
            ++counts[bankOf(quad[i].u, quad[i].v)];
        unsigned cycles = 0;
        for (unsigned c : counts)
            cycles = cycles > c ? cycles : c;
        quads_ += 1;
        cycles_ += cycles;
        conflicts_ += cycles - 1;
        return cycles;
    }

    uint64_t quads() const { return quads_; }
    uint64_t cycles() const { return cycles_; }
    uint64_t conflictCycles() const { return conflicts_; }

    /** Mean cycles per quad (1.0 = perfectly conflict-free). */
    double
    cyclesPerQuad() const
    {
        return quads_ ? static_cast<double>(cycles_) / quads_ : 0.0;
    }

  private:
    unsigned
    bankOf(unsigned u, unsigned v) const
    {
        if (scheme_ == BankInterleave::Morton)
            return ((v & 1) << 1) | (u & 1);
        return (v * rowWidth_ + u) & 3;
    }

    BankInterleave scheme_;
    unsigned rowWidth_;
    uint64_t quads_ = 0;
    uint64_t cycles_ = 0;
    uint64_t conflicts_ = 0;
};

} // namespace texcache

#endif // TEXCACHE_CACHE_BANK_MODEL_HH
