/** @file Tests for 3-C miss classification (cold/capacity/conflict). */

#include <gtest/gtest.h>

#include "cache/three_c.hh"
#include "common/rng.hh"

using namespace texcache;

TEST(ThreeC, PureColdTrace)
{
    MissClassifier c({1024, 32, 1});
    for (int i = 0; i < 10; ++i)
        c.access(i * 32);
    MissBreakdown b = c.breakdown();
    EXPECT_EQ(b.misses, 10u);
    EXPECT_EQ(b.cold, 10u);
    EXPECT_EQ(b.capacity, 0u);
    EXPECT_EQ(b.conflict, 0u);
}

TEST(ThreeC, ConflictOnlyTrace)
{
    // Two lines, same set in a direct-mapped cache, cache far from
    // full: all non-cold misses are conflicts.
    MissClassifier c({1024, 32, 1});
    for (int i = 0; i < 10; ++i) {
        c.access(0);
        c.access(1024);
    }
    MissBreakdown b = c.breakdown();
    EXPECT_EQ(b.cold, 2u);
    EXPECT_EQ(b.capacity, 0u);
    EXPECT_EQ(b.conflict, b.misses - 2u);
    EXPECT_GT(b.conflict, 10u);
}

TEST(ThreeC, CapacityOnlyTrace)
{
    // Cyclic sweep over 8 lines through a 4-line fully-associative-
    // equivalent pattern: use a 2-way cache large enough that set
    // conflicts do not occur beyond what capacity explains... simplest:
    // the set-associative cache is fully associative too.
    MissClassifier c({128, 32, CacheConfig::kFullyAssoc});
    for (int rep = 0; rep < 5; ++rep)
        for (int i = 0; i < 8; ++i)
            c.access(i * 32); // 8 lines > 4-line capacity
    MissBreakdown b = c.breakdown();
    EXPECT_EQ(b.cold, 8u);
    EXPECT_EQ(b.conflict, 0u);
    EXPECT_EQ(b.capacity, b.misses - 8u);
    EXPECT_GT(b.capacity, 0u);
}

TEST(ThreeC, IdentityHoldsOnRandomTraces)
{
    for (uint64_t seed : {1u, 7u, 23u}) {
        MissClassifier c({4096, 64, 2});
        Rng rng(seed);
        uint64_t cur = 0;
        for (int i = 0; i < 20000; ++i) {
            cur = (cur + rng.below(1024)) & 0xfffff;
            c.access(cur);
        }
        MissBreakdown b = c.breakdown();
        EXPECT_EQ(b.cold + b.capacity + b.conflict, b.misses);
        EXPECT_EQ(b.accesses, 20000u);
        EXPECT_GT(b.missRate(), 0.0);
    }
}

TEST(ThreeC, MissRateMatchesSetAssocStats)
{
    MissClassifier c({1024, 32, 1});
    for (int i = 0; i < 100; ++i)
        c.access((i * 7919) & 0xffff);
    EXPECT_EQ(c.breakdown().misses, c.setAssocStats().misses);
    EXPECT_EQ(c.breakdown().accesses, c.setAssocStats().accesses);
}
