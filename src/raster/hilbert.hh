/**
 * @file
 * Peano-Hilbert curve indexing for screen traversal.
 *
 * Footnote 1 of the paper: "The screen rasterization path that would
 * lead to the smallest working set would follow a Peano-Hilbert order
 * since this would traverse a region of the texture in a spatially
 * contiguous manner." This header provides the curve index so the
 * rasterizer can offer that traversal as an (extension) order, and the
 * ablation bench can quantify the footnote.
 */

#ifndef TEXCACHE_RASTER_HILBERT_HH
#define TEXCACHE_RASTER_HILBERT_HH

#include <cstdint>

namespace texcache {

/**
 * Distance of cell (x, y) along the Hilbert curve over a 2^k x 2^k
 * grid.
 *
 * @param k    curve order; the grid must contain all queried points.
 * @param x, y cell coordinates in [0, 2^k).
 */
uint64_t hilbertIndex(unsigned k, uint32_t x, uint32_t y);

/** Inverse of hilbertIndex: the (x, y) cell at distance @p d. */
void hilbertPoint(unsigned k, uint64_t d, uint32_t &x, uint32_t &y);

} // namespace texcache

#endif // TEXCACHE_RASTER_HILBERT_HH
