#include "stats/snapshot.hh"

#include <cmath>
#include <unordered_map>

#include "common/json.hh"
#include "common/logging.hh"

namespace texcache {
namespace stats {

namespace {

double
finiteOrZero(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

void
flatten(const Group &g, const std::string &prefix,
        std::vector<Snapshot::Entry> &out)
{
    for (const StatBase *s : g.statsInOrder()) {
        Snapshot::Entry e;
        e.path = prefix + s->name();
        if (auto *d = dynamic_cast<const Distribution *>(s)) {
            e.kind = Snapshot::Kind::Dist;
            e.dist.merge(*d); // deep copy of the live histogram
            e.value = double(d->count());
        } else if (dynamic_cast<const Scalar *>(s)) {
            e.kind = Snapshot::Kind::Counter;
            e.value = finiteOrZero(s->total());
        } else {
            // Formulas and any future stat kind: resolve to a number
            // now; the snapshot never re-evaluates.
            e.kind = Snapshot::Kind::Gauge;
            e.value = finiteOrZero(s->total());
        }
        out.push_back(std::move(e));
    }
    for (const Group *child : g.groupsInOrder())
        flatten(*child, prefix + child->name() + ".", out);
}

void
writeEntryValue(JsonWriter &w, const Snapshot::Entry &e)
{
    if (e.kind == Snapshot::Kind::Dist)
        e.dist.writeJson(w);
    else
        w.value(finiteOrZero(e.value));
}

} // namespace

Snapshot
Snapshot::capture(const Group &root)
{
    Snapshot snap;
    flatten(root, "", snap.entries_);
    return snap;
}

void
Snapshot::gauge(std::string path, double value)
{
    Entry e;
    e.path = std::move(path);
    e.kind = Kind::Gauge;
    e.value = finiteOrZero(value);
    entries_.push_back(std::move(e));
}

void
Snapshot::counter(std::string path, double value)
{
    Entry e;
    e.path = std::move(path);
    e.kind = Kind::Counter;
    e.value = finiteOrZero(value);
    entries_.push_back(std::move(e));
}

const Snapshot::Entry *
Snapshot::find(std::string_view path) const
{
    for (const Entry &e : entries_)
        if (e.path == path)
            return &e;
    return nullptr;
}

double
Snapshot::value(std::string_view path, double fallback) const
{
    const Entry *e = find(path);
    return e ? e->value : fallback;
}

Snapshot
Snapshot::deltaFrom(const Snapshot &earlier) const
{
    std::unordered_map<std::string_view, const Entry *> old;
    old.reserve(earlier.entries_.size());
    for (const Entry &e : earlier.entries_)
        old.emplace(e.path, &e);

    Snapshot delta;
    delta.unixMs = unixMs;
    delta.entries_.reserve(entries_.size());
    for (const Entry &e : entries_) {
        Entry d = e;
        auto it = old.find(e.path);
        if (it != old.end()) {
            const Entry &prev = *it->second;
            switch (e.kind) {
              case Kind::Counter:
                // Monotonic; clamp guards a reset-under-us race.
                d.value = e.value >= prev.value ? e.value - prev.value
                                                : e.value;
                break;
              case Kind::Gauge:
                break; // instantaneous: keep the newer reading
              case Kind::Dist:
                d.dist.subtractCounts(prev.dist);
                d.value = double(d.dist.count());
                break;
            }
        }
        delta.entries_.push_back(std::move(d));
    }
    return delta;
}

void
Snapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("t_unix_ms", int64_t(unixMs));
    w.key("stats");
    w.beginObject();
    for (const Entry &e : entries_) {
        w.key(e.path);
        writeEntryValue(w, e);
    }
    w.endObject();
    w.endObject();
}

SnapshotRing::SnapshotRing(size_t capacity) : capacity_(capacity)
{
    panic_if(capacity_ == 0, "SnapshotRing: capacity must be >= 1");
    ring_.reserve(capacity_);
}

void
SnapshotRing::push(Snapshot snap)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(snap));
    } else {
        ring_[head_] = std::move(snap);
        head_ = (head_ + 1) % capacity_;
    }
    ++pushed_;
}

const Snapshot &
SnapshotRing::at(size_t i) const
{
    panic_if(i >= ring_.size(), "SnapshotRing: index ", i, " out of ",
             ring_.size());
    return ring_[(head_ + i) % ring_.size()];
}

void
SnapshotRing::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.kv("schema", "texcache-snapshots-1");
    w.kv("capacity", uint64_t(capacity_));
    w.kv("pushed", pushed_);
    // The true retained window: after wraparound the dump holds only
    // the newest `retained` of `pushed` snapshots, and the first one
    // has no delta because its predecessor was evicted.
    w.kv("retained", uint64_t(size()));
    w.kv("evicted", pushed_ - size());
    w.key("snapshots");
    w.beginArray();
    for (size_t i = 0; i < size(); ++i) {
        const Snapshot &snap = at(i);
        w.beginObject();
        w.kv("t_unix_ms", int64_t(snap.unixMs));
        w.key("stats");
        w.beginObject();
        for (const Snapshot::Entry &e : snap.entries()) {
            w.key(e.path);
            writeEntryValue(w, e);
        }
        w.endObject();
        if (i > 0) {
            // Counter deltas vs the previous retained snapshot, so a
            // reader gets rates without re-deriving them.
            Snapshot d = snap.deltaFrom(at(i - 1));
            w.key("delta");
            w.beginObject();
            for (const Snapshot::Entry &e : d.entries()) {
                if (e.kind != Snapshot::Kind::Counter)
                    continue;
                w.key(e.path);
                w.value(e.value);
            }
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace stats
} // namespace texcache
