#!/usr/bin/env python3
"""HTML wrapper around the texcache_report binary.

Runs (or reuses the output of) tools/texcache_report on a binary event
log and folds its artifacts - the screen/texture heatmaps, the
reuse-over-time series and report.json - into one self-contained HTML
page with the images inlined as PNG data URIs. Standard library only:
PGM/PPM parsing is a few lines and PNG encoding is zlib + struct.

Usage:
  texcache_report.py EVENTS.bin [--out DIR] [--report-bin PATH]
  texcache_report.py --from-dir DIR          # artifacts already exist

The page lands at DIR/report.html.
"""

import argparse
import base64
import json
import os
import struct
import subprocess
import sys
import zlib


def read_pnm(path):
    """Parse a binary PGM (P5) or PPM (P6) into (w, h, channels, bytes)."""
    with open(path, "rb") as f:
        data = f.read()
    fields = []
    pos = 0
    while len(fields) < 4 and pos < len(data):
        # Skip whitespace and '#' comment lines in the header.
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos] != 0x0A:
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        fields.append(data[start:pos])
    magic, w, h, maxval = (
        fields[0],
        int(fields[1]),
        int(fields[2]),
        int(fields[3]),
    )
    if magic not in (b"P5", b"P6") or maxval != 255:
        raise ValueError(f"{path}: unsupported PNM flavor")
    channels = 1 if magic == b"P5" else 3
    pixels = data[pos + 1 : pos + 1 + w * h * channels]
    if len(pixels) != w * h * channels:
        raise ValueError(f"{path}: truncated pixel data")
    return w, h, channels, pixels


def encode_png(w, h, channels, pixels):
    """Minimal PNG encoder (gray or RGB, 8-bit, no interlace)."""

    def chunk(tag, payload):
        return (
            struct.pack(">I", len(payload))
            + tag
            + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
        )

    color_type = 0 if channels == 1 else 2
    ihdr = struct.pack(">IIBBBBB", w, h, 8, color_type, 0, 0, 0)
    stride = w * channels
    raw = b"".join(
        b"\x00" + pixels[y * stride : (y + 1) * stride]
        for y in range(h)
    )
    return (
        b"\x89PNG\r\n\x1a\n"
        + chunk(b"IHDR", ihdr)
        + chunk(b"IDAT", zlib.compress(raw, 9))
        + chunk(b"IEND", b"")
    )


def png_data_uri(pnm_path):
    w, h, channels, pixels = read_pnm(pnm_path)
    png = encode_png(w, h, channels, pixels)
    return base64.b64encode(png).decode("ascii"), w, h


def svg_sparkline(rows, key, width=640, height=120):
    """Inline SVG polyline of one reuse_over_time.csv column."""
    values = [float(r[key]) for r in rows]
    if not values or max(values) == 0:
        return "<p>(no data)</p>"
    peak = max(values)
    step = width / max(len(values) - 1, 1)
    points = " ".join(
        f"{i * step:.1f},{height - v / peak * (height - 4):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'style="background:#111">'
        f'<polyline points="{points}" fill="none" '
        f'stroke="#6cf" stroke-width="1.5"/></svg>'
    )


def build_html(out_dir):
    report_path = os.path.join(out_dir, "report.json")
    with open(report_path) as f:
        report = json.load(f)

    rows = []
    csv_path = os.path.join(out_dir, "reuse_over_time.csv")
    if os.path.exists(csv_path):
        with open(csv_path) as f:
            header = f.readline().strip().split(",")
            for line in f:
                rows.append(dict(zip(header, line.strip().split(","))))

    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>texcache miss report</title>",
        "<style>body{font-family:monospace;background:#1a1a1a;"
        "color:#ddd;margin:2em}h1,h2{color:#fff}table{border-collapse:"
        "collapse}td,th{border:1px solid #444;padding:4px 10px;"
        "text-align:right}th{text-align:left}img{image-rendering:"
        "pixelated;border:1px solid #444}</style></head><body>",
        "<h1>texcache miss report</h1>",
        f"<p>source: {report['events_file']}</p>",
        "<h2>totals</h2><table>",
    ]
    for k in (
        "recorded_events",
        "dropped_events",
        "sample_n",
        "misses",
        "misses_with_context",
    ):
        parts.append(f"<tr><th>{k}</th><td>{report[k]}</td></tr>")
    for cls, n in report["by_class"].items():
        parts.append(f"<tr><th>miss class {cls}</th><td>{n}</td></tr>")
    for tag, n in report.get("by_tag", {}).items():
        parts.append(f"<tr><th>source {tag}</th><td>{n}</td></tr>")
    parts.append("</table>")

    screen = os.path.join(out_dir, "screen_misses.pgm")
    if os.path.exists(screen):
        b64, w, h = png_data_uri(screen)
        parts.append(
            f"<h2>screen-space misses ({w}x{h})</h2>"
            f'<img src="data:image/png;base64,{b64}" '
            f'width="{min(w * 2, 1024)}">'
        )

    for name in sorted(os.listdir(out_dir)):
        if not (
            name.startswith("texture_misses_") and name.endswith(".ppm")
        ):
            continue
        b64, w, h = png_data_uri(os.path.join(out_dir, name))
        tex = name[len("texture_misses_") : -len(".ppm")]
        parts.append(
            f"<h2>texture {tex} misses ({w}x{h}, level-0 texels)</h2>"
            "<p>red = conflict, green = capacity, blue = cold</p>"
            f'<img src="data:image/png;base64,{b64}" '
            f'width="{min(w * 2, 1024)}">'
        )

    if rows:
        parts.append("<h2>misses over time</h2>")
        parts.append(svg_sparkline(rows, "misses"))
        parts.append("<h2>mean reuse gap over time</h2>")
        parts.append(svg_sparkline(rows, "mean_reuse_gap"))

    if report.get("hot_lines"):
        parts.append(
            "<h2>hottest lines</h2><table>"
            "<tr><th>address</th><td>misses</td></tr>"
        )
        for entry in report["hot_lines"]:
            parts.append(
                f"<tr><th>0x{entry['addr']:x}</th>"
                f"<td>{entry['misses']}</td></tr>"
            )
        parts.append("</table>")

    parts.append("</body></html>")
    html_path = os.path.join(out_dir, "report.html")
    with open(html_path, "w") as f:
        f.write("\n".join(parts))
    return html_path


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("events", nargs="?", help="binary event log")
    ap.add_argument("--out", default=".", help="artifact directory")
    ap.add_argument(
        "--report-bin",
        default=os.environ.get("TEXCACHE_REPORT_BIN", "texcache_report"),
        help="path to the texcache_report binary",
    )
    ap.add_argument(
        "--from-dir",
        metavar="DIR",
        help="skip the binary; build HTML from existing artifacts",
    )
    args = ap.parse_args()

    if args.from_dir:
        out_dir = args.from_dir
    else:
        if not args.events:
            ap.error("an event log (or --from-dir) is required")
        out_dir = args.out
        os.makedirs(out_dir, exist_ok=True)
        subprocess.run(
            [args.report_bin, args.events, "--out", out_dir],
            check=True,
        )

    html = build_html(out_dir)
    print(f"wrote            {html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
