/**
 * @file
 * Byte-identity of the tile-parallel render engine (DESIGN.md
 * section 11): for every scene, raster order and thread count, the
 * engine's trace, framebuffer and statistics must equal the serial
 * reference renderer's bit for bit. Also covers the dispatch policy
 * (hooks route to the reference path; Force + hooks is a fatal
 * configuration error).
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "simd/isa.hh"

namespace texcache {
namespace {

/** Scoped SIMD ISA-level override (restores the prior level). */
class IsaGuard
{
  public:
    IsaGuard() : saved_(simd::activeIsa()) {}
    ~IsaGuard() { simd::setActiveIsa(saved_); }

  private:
    simd::Isa saved_;
};

/** Scoped TEXCACHE_THREADS override (restores the prior value). */
class ThreadEnv
{
  public:
    explicit ThreadEnv(const char *value)
    {
        const char *old = std::getenv("TEXCACHE_THREADS");
        had_ = old != nullptr;
        if (old)
            saved_ = old;
        if (value)
            setenv("TEXCACHE_THREADS", value, 1);
        else
            unsetenv("TEXCACHE_THREADS");
    }
    ~ThreadEnv()
    {
        if (had_)
            setenv("TEXCACHE_THREADS", saved_.c_str(), 1);
        else
            unsetenv("TEXCACHE_THREADS");
    }

  private:
    bool had_;
    std::string saved_;
};

std::vector<RasterOrder>
allOrders()
{
    return {RasterOrder::horizontal(), RasterOrder::vertical(),
            RasterOrder::tiledOrder(8, 8),
            RasterOrder::tiledOrder(16, 16, ScanDirection::Vertical),
            RasterOrder::hilbertOrder()};
}

/** Assert @p out is byte-identical to the reference output @p ref. */
void
expectIdentical(const RenderOutput &ref, const RenderOutput &out,
                const std::string &what)
{
    SCOPED_TRACE(what);

    // Trace: the packed 64-bit records must match element for element.
    ASSERT_EQ(ref.trace.packed().size(), out.trace.packed().size());
    EXPECT_TRUE(ref.trace.packed() == out.trace.packed())
        << "texel trace diverged";

    // Framebuffer: every pixel.
    ASSERT_EQ(ref.framebuffer.width(), out.framebuffer.width());
    ASSERT_EQ(ref.framebuffer.height(), out.framebuffer.height());
    for (unsigned y = 0; y < ref.framebuffer.height(); ++y)
        for (unsigned x = 0; x < ref.framebuffer.width(); ++x)
            ASSERT_TRUE(ref.framebuffer.texel(x, y) ==
                        out.framebuffer.texel(x, y))
                << "pixel (" << x << ", " << y << ") diverged";

    // Statistics: integer counters and exact doubles.
    EXPECT_EQ(ref.stats.trianglesIn, out.stats.trianglesIn);
    EXPECT_EQ(ref.stats.trianglesculled, out.stats.trianglesculled);
    EXPECT_EQ(ref.stats.trianglesRasterized,
              out.stats.trianglesRasterized);
    EXPECT_EQ(ref.stats.fragments, out.stats.fragments);
    EXPECT_EQ(ref.stats.texelAccesses, out.stats.texelAccesses);
    EXPECT_EQ(ref.stats.bilinearFragments, out.stats.bilinearFragments);
    EXPECT_EQ(ref.stats.trilinearFragments,
              out.stats.trilinearFragments);
    EXPECT_EQ(ref.stats.nearestFragments, out.stats.nearestFragments);
    EXPECT_EQ(ref.stats.sumCoveredArea, out.stats.sumCoveredArea);
    EXPECT_EQ(ref.stats.sumBoxWidth, out.stats.sumBoxWidth);
    EXPECT_EQ(ref.stats.sumBoxHeight, out.stats.sumBoxHeight);
    EXPECT_EQ(ref.stats.boxSamples, out.stats.boxSamples);

    // LOD histogram: every bucket plus the moments.
    EXPECT_EQ(ref.stats.lodLevels.count(), out.stats.lodLevels.count());
    EXPECT_EQ(ref.stats.lodLevels.sum(), out.stats.lodLevels.sum());
    EXPECT_EQ(ref.stats.lodLevels.min(), out.stats.lodLevels.min());
    EXPECT_EQ(ref.stats.lodLevels.max(), out.stats.lodLevels.max());
    for (unsigned b = 0; b < stats::Distribution::kBuckets; ++b)
        EXPECT_EQ(ref.stats.lodLevels.bucket(b),
                  out.stats.lodLevels.bucket(b))
            << "lod bucket " << b;

    // Repetition counter: both sets are unions of the same fragment
    // keys, so equal cardinalities mean equal sets.
    EXPECT_EQ(ref.repetition.uniqueWrapped(),
              out.repetition.uniqueWrapped());
    EXPECT_EQ(ref.repetition.uniqueUnwrapped(),
              out.repetition.uniqueUnwrapped());
}

TEST(ParallelRender, QuadAllOrdersAllThreads)
{
    Scene scene = makeQuadTestScene(128, 128, 1.7f);
    RenderOptions opts;
    opts.captureTrace = true;
    opts.writeFramebuffer = true;
    opts.countRepetition = true;

    for (const RasterOrder &order : allOrders()) {
        RenderOptions serial = opts;
        serial.parallelTiles = ParallelTiles::Serial;
        RenderOutput ref = render(scene, order, serial);
        EXPECT_GT(ref.stats.fragments, 0u);

        for (const char *threads : {"1", "2", "4", "8"}) {
            ThreadEnv env(threads);
            RenderOptions forced = opts;
            forced.parallelTiles = ParallelTiles::Force;
            RenderOutput out = render(scene, order, forced);
            expectIdentical(ref, out,
                            "quad order=" + order.str() +
                                " threads=" + threads);
        }
    }
}

TEST(ParallelRender, FourScenesAllOrders)
{
    RenderOptions opts;
    opts.captureTrace = true;
    opts.writeFramebuffer = true;
    opts.countRepetition = true;

    for (BenchScene s : allBenchScenes()) {
        Scene scene = makeScene(s);
        for (const RasterOrder &order : allOrders()) {
            RenderOptions serial = opts;
            serial.parallelTiles = ParallelTiles::Serial;
            RenderOutput ref = render(scene, order, serial);

            for (const char *threads : {"2", "4", "8"}) {
                ThreadEnv env(threads);
                RenderOptions forced = opts;
                forced.parallelTiles = ParallelTiles::Force;
                RenderOutput out = render(scene, order, forced);
                expectIdentical(ref, out,
                                std::string(benchSceneName(s)) +
                                    " order=" + order.str() +
                                    " threads=" + threads);
            }
        }
    }
}

/**
 * The ISSUE 7 byte-identity matrix: 4 scenes x 5 raster orders x
 * {1, 8} threads x every ISA level compiled and supported on this
 * host, in the trace-only configuration that engages the SIMD span
 * kernels (writeFramebuffer = false, as TraceStore renders). The
 * reference is the serial renderer, whose per-fragment path never
 * touches the kernels, so any vectorization divergence - float
 * ordering, wrap handling, record packing, repetition anchors -
 * fails here.
 */
TEST(ParallelRender, FourScenesTraceOnlyIsaMatrix)
{
    RenderOptions opts;
    opts.captureTrace = true;
    opts.writeFramebuffer = false;
    opts.countRepetition = true;

    IsaGuard guard;
    for (BenchScene s : allBenchScenes()) {
        Scene scene = makeScene(s);
        for (const RasterOrder &order : allOrders()) {
            RenderOptions serial = opts;
            serial.parallelTiles = ParallelTiles::Serial;
            RenderOutput ref = render(scene, order, serial);
            EXPECT_GT(ref.stats.fragments, 0u);

            for (simd::Isa isa : simd::supportedIsas()) {
                simd::setActiveIsa(isa);
                for (const char *threads : {"1", "8"}) {
                    ThreadEnv env(threads);
                    RenderOptions forced = opts;
                    forced.parallelTiles = ParallelTiles::Force;
                    RenderOutput out = render(scene, order, forced);
                    expectIdentical(ref, out,
                                    std::string(benchSceneName(s)) +
                                        " order=" + order.str() +
                                        " isa=" + simd::isaName(isa) +
                                        " threads=" + threads);
                }
            }
        }
    }
}

TEST(ParallelRender, AutoRoutesHooksToReference)
{
    Scene scene = makeQuadTestScene();
    RenderOptions opts;
    opts.writeFramebuffer = false;
    uint64_t hookCalls = 0;
    opts.onFragment = [&](const Fragment &, const SampleResult &,
                          uint16_t) { ++hookCalls; };

    ThreadEnv env("4");
    RenderOutput out = render(scene, RasterOrder::horizontal(), opts);
    // Auto must fall back to the serial path so the hook observes
    // every fragment in traversal order.
    EXPECT_EQ(hookCalls, out.stats.fragments);
    EXPECT_GT(hookCalls, 0u);
}

using ParallelRenderDeathTest = ::testing::Test;

TEST(ParallelRenderDeathTest, ForceWithHooksIsFatal)
{
    Scene scene = makeQuadTestScene();
    RenderOptions opts;
    opts.parallelTiles = ParallelTiles::Force;
    opts.onFragment = [](const Fragment &, const SampleResult &,
                         uint16_t) {};
    EXPECT_EXIT(render(scene, RasterOrder::horizontal(), opts),
                testing::ExitedWithCode(1), "hooks");
}

TEST(ParallelRenderDeathTest, InvalidPolicyIsFatal)
{
    Scene scene = makeQuadTestScene();
    RenderOptions opts;
    opts.parallelTiles = static_cast<ParallelTiles>(99);
    EXPECT_EXIT(render(scene, RasterOrder::horizontal(), opts),
                testing::ExitedWithCode(1), "parallelTiles");
}

} // namespace
} // namespace texcache
