/**
 * @file
 * OpenGL-1.0-conformant mip-mapped texture sampling.
 *
 * Implements the level-of-detail computation and the bilinear / trilinear
 * filters of the GL specification (GL_LINEAR_MIPMAP_LINEAR minification,
 * GL_LINEAR magnification, GL_REPEAT wrap), and reports every texel the
 * filter touches so the renderer can drive the cache simulator - eight
 * texels per trilinearly filtered fragment, four per bilinear one, as in
 * the paper.
 */

#ifndef TEXCACHE_TEXTURE_SAMPLER_HH
#define TEXCACHE_TEXTURE_SAMPLER_HH

#include <cstdint>

#include "geom/vec.hh"
#include "texture/mipmap.hh"

namespace texcache {

/** One texel read by a filter: pyramid level plus integer coordinates. */
struct TexelTouch
{
    uint16_t level;
    uint16_t u;
    uint16_t v;
};

/** The filter kind a fragment used (determines touch count). */
enum class FilterKind : uint8_t
{
    Bilinear,  ///< 4 texels from a single level
    Trilinear, ///< minification: 4 texels from each of 2 adjacent levels
    Nearest,   ///< 1 texel from a single level
};

/**
 * Texture coordinate wrap mode (GL 1.0: GL_REPEAT / GL_CLAMP-to-edge).
 * The paper's scenes all use REPEAT (repeated brick walls etc.); CLAMP
 * is provided for library completeness and affects which texels - and
 * therefore which addresses - border samples touch.
 */
enum class WrapMode : uint8_t
{
    Repeat,
    Clamp,
};

/**
 * Minification filter selection (extension beyond the paper, matching
 * the OpenGL 1.0 filter set). The paper evaluates trilinear
 * (GL_LINEAR_MIPMAP_LINEAR, 8 texels/fragment) throughout; the cheaper
 * modes trade filter quality for texel traffic and are exercised by
 * the filtering ablation bench.
 */
enum class FilterMode : uint8_t
{
    Trilinear,          ///< GL_LINEAR_MIPMAP_LINEAR (the paper's mode)
    BilinearMipNearest, ///< GL_LINEAR_MIPMAP_NEAREST: 4 texels
    NearestMipNearest,  ///< GL_NEAREST_MIPMAP_NEAREST: 1 texel
};

/** Result of filtering one fragment's texture sample. */
struct SampleResult
{
    Vec4 color;          ///< filtered RGBA in [0,1]
    FilterKind kind;     ///< which filter ran
    unsigned numTouches; ///< 4 (bilinear) or 8 (trilinear)
    TexelTouch touches[8];
};

/**
 * Level-of-detail (lambda) from screen-space texture-coordinate
 * derivatives, per the GL spec: log2 of the maximum texel footprint of a
 * one-pixel step in x or y. The derivatives are in *texel* units of
 * level 0 (i.e. already scaled by the level-0 dimensions).
 */
float computeLod(float dudx, float dvdx, float dudy, float dvdy);

/**
 * Sample a mip map at normalized coordinates (u, v) with the given LOD.
 *
 * lambda <= 0 selects bilinear magnification from level 0; lambda > 0
 * selects trilinear minification between floor(lambda) and
 * floor(lambda) + 1 (clamped to the coarsest level; the hardware model
 * still performs eight reads in that case, as a real trilinear unit
 * would).
 *
 * Wrap mode is GL_REPEAT. @p u and @p v may be any real values.
 */
SampleResult sampleMipMap(const MipMap &mip, float u, float v,
                          float lambda,
                          WrapMode wrap = WrapMode::Repeat);

/**
 * Bilinear filter within a single level (the building block of
 * sampleMipMap, exposed for tests). Touches are appended to
 * @p touches starting at @p touch_base.
 */
Vec4 sampleBilinearLevel(const MipMap &mip, unsigned level, float u,
                         float v, TexelTouch *touches,
                         WrapMode wrap = WrapMode::Repeat);

/**
 * Bilinear sample pinned to one explicit pyramid level, regardless of
 * LOD - the virtual-texturing degradation path (src/vt/): when the
 * desired level's pages are not resident, the fragment falls back to
 * the finest fully-resident ancestor level and filters within it.
 */
SampleResult sampleLevelBilinear(const MipMap &mip, unsigned level,
                                 float u, float v,
                                 WrapMode wrap = WrapMode::Repeat);

/**
 * Sample with an explicit minification filter mode. Trilinear matches
 * sampleMipMap exactly; the nearest-mip modes select the level nearest
 * to lambda (round-to-nearest, per the GL spec's 0.5 threshold) and
 * filter within it bilinearly or by nearest-texel.
 */
SampleResult sampleMipMapMode(const MipMap &mip, float u, float v,
                              float lambda, FilterMode mode,
                              WrapMode wrap = WrapMode::Repeat);

/**
 * Touch-only variant of sampleMipMapMode for trace-only renders: fills
 * @p res.kind, numTouches and touches with bit-identical values to the
 * full filter (same level selection, same texel addressing) but skips
 * every color fetch and lerp; res.color is left untouched and must not
 * be read. tests/test_sampler.cc fuzzes the equivalence.
 */
void sampleTouchesMipMapMode(const MipMap &mip, float u, float v,
                             float lambda, FilterMode mode,
                             SampleResult &res,
                             WrapMode wrap = WrapMode::Repeat);

} // namespace texcache

#endif // TEXCACHE_TEXTURE_SAMPLER_HH
