/**
 * @file
 * Width-8 AVX2 traits for the kernel body. Same IEEE-exact operation
 * set as the SSE4.1 traits, one whole kSpanBatch per vector. Compiled
 * without -mfma and with -ffp-contract=off so no multiply-add ever
 * contracts (the scalar reference cannot contract either).
 */

#ifndef TEXCACHE_SIMD_VEC_AVX2_HH
#define TEXCACHE_SIMD_VEC_AVX2_HH

#if !defined(__AVX2__)
#error "vec_avx2.hh requires -mavx2 (include it from kernels_avx2.cc only)"
#endif

#include <cstdint>
#include <immintrin.h>

namespace texcache {
namespace simd {

struct VecAvx2
{
    static constexpr int kW = 8;
    using f32 = __m256;
    using i32 = __m256i;
    using m32 = __m256;

    static f32 set1(float x) { return _mm256_set1_ps(x); }
    static i32 iset1(int32_t x) { return _mm256_set1_epi32(x); }
    static f32 load(const float *p) { return _mm256_loadu_ps(p); }

    static i32
    iload(const int32_t *p)
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
    }

    static void store(float *p, f32 v) { _mm256_storeu_ps(p, v); }

    static void
    istore(int32_t *p, i32 v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    static f32 toF(i32 v) { return _mm256_cvtepi32_ps(v); }
    static f32 add(f32 a, f32 b) { return _mm256_add_ps(a, b); }
    static f32 sub(f32 a, f32 b) { return _mm256_sub_ps(a, b); }
    static f32 mul(f32 a, f32 b) { return _mm256_mul_ps(a, b); }
    static f32 div(f32 a, f32 b) { return _mm256_div_ps(a, b); }
    static f32 sqrt(f32 a) { return _mm256_sqrt_ps(a); }
    static f32 floor(f32 a) { return _mm256_floor_ps(a); }

    /** See VecSse41::maxStd: operand swap reproduces std::max. */
    static f32 maxStd(f32 a, f32 b) { return _mm256_max_ps(b, a); }

    static i32 trunc(f32 a) { return _mm256_cvttps_epi32(a); }
    static i32 iadd(i32 a, i32 b) { return _mm256_add_epi32(a, b); }
    static i32 iand(i32 a, i32 b) { return _mm256_and_si256(a, b); }
    static i32 ior(i32 a, i32 b) { return _mm256_or_si256(a, b); }
    static i32 ishl16(i32 a) { return _mm256_slli_epi32(a, 16); }
    static i32 imin(i32 a, i32 b) { return _mm256_min_epi32(a, b); }
    static i32 imax(i32 a, i32 b) { return _mm256_max_epi32(a, b); }

    static m32
    cmpLt(f32 a, f32 b)
    {
        return _mm256_cmp_ps(a, b, _CMP_LT_OQ);
    }

    static m32
    cmpLe(f32 a, f32 b)
    {
        return _mm256_cmp_ps(a, b, _CMP_LE_OQ);
    }

    static m32
    cmpGt(f32 a, f32 b)
    {
        return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
    }

    static m32
    trueMask()
    {
        return _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    }

    static m32
    andnot(m32 a, m32 b)
    {
        return _mm256_andnot_ps(a, b);
    }

    static m32 and_(m32 a, m32 b) { return _mm256_and_ps(a, b); }

    static uint32_t
    moveMask(m32 m)
    {
        return static_cast<uint32_t>(_mm256_movemask_ps(m));
    }
};

} // namespace simd
} // namespace texcache

#endif // TEXCACHE_SIMD_VEC_AVX2_HH
