#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace texcache {

void
TextTable::print(std::ostream &os) const
{
    const char *csv = std::getenv("TEXCACHE_CSV");
    if (csv != nullptr && csv[0] != '\0') {
        if (!title_.empty())
            os << "# " << title_ << "\n";
        printCsv(os);
        return;
    }

    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

std::string
fmtFixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPercent(double fraction, int digits)
{
    return fmtFixed(fraction * 100.0, digits) + "%";
}

std::string
fmtBytes(uint64_t bytes)
{
    char buf[64];
    if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0)
        std::snprintf(buf, sizeof(buf), "%lluMB",
                      static_cast<unsigned long long>(bytes >> 20));
    else if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0)
        std::snprintf(buf, sizeof(buf), "%lluKB",
                      static_cast<unsigned long long>(bytes >> 10));
    else
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

} // namespace texcache
