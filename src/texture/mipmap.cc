#include "texture/mipmap.hh"

#include "common/bits.hh"

namespace texcache {

MipMap::MipMap(Image base)
{
    fatal_if(base.width() == 0 || base.height() == 0,
             "mip map base image is empty");
    fatal_if(!isPowerOfTwo(base.width()) || !isPowerOfTwo(base.height()),
             "mip map base dimensions ", base.width(), "x", base.height(),
             " are not powers of two");

    levels_.push_back(std::move(base));
    while (levels_.back().width() > 1 || levels_.back().height() > 1) {
        const Image &src = levels_.back();
        unsigned w = src.width() > 1 ? src.width() / 2 : 1;
        unsigned h = src.height() > 1 ? src.height() / 2 : 1;
        Image dst(w, h);
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; ++x) {
                // 2x2 box filter; when a dimension has clamped at 1 the
                // second sample coordinate folds back onto the first.
                unsigned x0 = src.width() > 1 ? 2 * x : x;
                unsigned y0 = src.height() > 1 ? 2 * y : y;
                unsigned x1 = src.width() > 1 ? x0 + 1 : x0;
                unsigned y1 = src.height() > 1 ? y0 + 1 : y0;
                const Rgba8 &p00 = src.texel(x0, y0);
                const Rgba8 &p10 = src.texel(x1, y0);
                const Rgba8 &p01 = src.texel(x0, y1);
                const Rgba8 &p11 = src.texel(x1, y1);
                dst.texel(x, y) = {
                    static_cast<uint8_t>((p00.r + p10.r + p01.r + p11.r +
                                          2) / 4),
                    static_cast<uint8_t>((p00.g + p10.g + p01.g + p11.g +
                                          2) / 4),
                    static_cast<uint8_t>((p00.b + p10.b + p01.b + p11.b +
                                          2) / 4),
                    static_cast<uint8_t>((p00.a + p10.a + p01.a + p11.a +
                                          2) / 4),
                };
            }
        }
        levels_.push_back(std::move(dst));
    }
}

uint64_t
MipMap::storageBytes() const
{
    uint64_t total = 0;
    for (const Image &l : levels_)
        total += static_cast<uint64_t>(l.width()) * l.height() *
                 kBytesPerTexel;
    return total;
}

} // namespace texcache
