/**
 * @file
 * AF_UNIX stream transport for texcached.
 *
 * Framing is a decimal byte-count line ("123\n") followed by exactly
 * that many payload bytes, in both directions. The count line keeps
 * the protocol greppable (socat/nc debugging) while still letting
 * responses carry arbitrary JSON, including embedded newlines from
 * pretty-printed stats dumps. Frames are bounded (kMaxFrame) so a
 * hostile peer cannot make the daemon allocate unbounded memory.
 *
 * All helpers return -1/false with errno preserved instead of
 * throwing; the daemon treats any transport error as "drop this
 * connection", never as fatal.
 */

#ifndef TEXCACHE_SERVICE_SOCKET_HH
#define TEXCACHE_SERVICE_SOCKET_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace texcache {
namespace service {

/** Largest frame either side will accept (1MB body + slack). */
constexpr size_t kMaxFrame = (1 << 20) + 4096;

/** Bind + listen on a unix socket at @p path (unlinks stale files).
 *  @return listening fd, or -1. */
int listenUnix(const std::string &path, int backlog = 64);

/** Connect to the daemon at @p path. @return fd, or -1. */
int connectUnix(const std::string &path);

/**
 * Read one length-prefixed frame into @p out.
 * @return true on a complete frame; false on EOF before any byte
 * (clean close), a malformed/oversized length line, or a short body.
 */
bool readFrame(int fd, std::string &out);

/** Write one length-prefixed frame. @return false on any error. */
bool writeFrame(int fd, std::string_view payload);

} // namespace service
} // namespace texcache

#endif // TEXCACHE_SERVICE_SOCKET_HH
