/** @file
 * Tests for Peano-Hilbert indexing and the Hilbert rasterization order
 * (the paper's footnote-1 extension).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "core/experiment.hh"
#include "raster/hilbert.hh"
#include "raster/rasterizer.hh"

using namespace texcache;

TEST(Hilbert, IndexPointRoundTrip)
{
    for (unsigned k : {1u, 3u, 6u}) {
        uint64_t n = 1ULL << k;
        std::set<uint64_t> seen;
        for (uint32_t y = 0; y < n; ++y) {
            for (uint32_t x = 0; x < n; ++x) {
                uint64_t d = hilbertIndex(k, x, y);
                ASSERT_LT(d, n * n);
                ASSERT_TRUE(seen.insert(d).second)
                    << "duplicate index at (" << x << "," << y << ")";
                uint32_t rx, ry;
                hilbertPoint(k, d, rx, ry);
                ASSERT_EQ(rx, x);
                ASSERT_EQ(ry, y);
            }
        }
    }
}

TEST(Hilbert, ConsecutiveIndicesAreAdjacentCells)
{
    // The defining property of the curve: distance-1 steps move to a
    // 4-connected neighbor.
    unsigned k = 5;
    uint64_t n = 1ULL << k;
    uint32_t px, py;
    hilbertPoint(k, 0, px, py);
    for (uint64_t d = 1; d < n * n; ++d) {
        uint32_t x, y;
        hilbertPoint(k, d, x, y);
        int manhattan = std::abs(static_cast<int>(x) -
                                 static_cast<int>(px)) +
                        std::abs(static_cast<int>(y) -
                                 static_cast<int>(py));
        ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
        px = x;
        py = y;
    }
}

TEST(HilbertOrder, VisitsSamePixelSetAsScan)
{
    PixelRect r{3, 7, 40, 29};
    std::set<std::pair<int, int>> scan, hilbert;
    traverseRect(r, RasterOrder::horizontal(),
                 [&](int x, int y) { scan.insert({x, y}); });
    traverseRect(r, RasterOrder::hilbertOrder(),
                 [&](int x, int y) { hilbert.insert({x, y}); });
    EXPECT_EQ(scan, hilbert);
}

TEST(HilbertOrder, NoDuplicateVisits)
{
    PixelRect r{0, 0, 31, 31};
    unsigned count = 0;
    traverseRect(r, RasterOrder::hilbertOrder(),
                 [&](int, int) { ++count; });
    EXPECT_EQ(count, 32u * 32u);
}

TEST(HilbertOrder, StringName)
{
    EXPECT_EQ(RasterOrder::hilbertOrder().str(), "hilbert");
}

TEST(HilbertOrder, ShrinksSmallCacheMissRateOnBigQuad)
{
    // Footnote 1's claim, made executable: on a screen-filling quad,
    // the Hilbert path's working set beats row-major scan at small
    // cache sizes (and cold misses are identical).
    Scene scene = makeQuadTestScene(512, 256);
    RenderOutput scan_out = render(scene, RasterOrder::horizontal());
    RenderOutput hil_out = render(scene, RasterOrder::hilbertOrder());
    ASSERT_EQ(scan_out.trace.size(), hil_out.trace.size());

    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    p.blockW = p.blockH = 4;
    SceneLayout layout(scene, p);
    StackDistProfiler scan_prof = profileTrace(scan_out.trace, layout,
                                               64);
    StackDistProfiler hil_prof = profileTrace(hil_out.trace, layout,
                                              64);
    EXPECT_EQ(scan_prof.coldMisses(), hil_prof.coldMisses());
    EXPECT_LT(hil_prof.missRate(2048),
              scan_prof.missRate(2048) * 1.001);
    EXPECT_LT(hil_prof.missRate(1024), scan_prof.missRate(1024));
}
