/**
 * @file
 * Google-benchmark microbenchmark for the cache simulator components
 * (set-associative CacheSim, O(1) FullyAssocLru, Mattson profiler,
 * the flat LineSet), followed by a fig_5_2-shaped sweep workload that
 * measures the sweep engine end to end: brute-force one-replay-per-
 * config (the pre-sweep-engine execution model) versus single-pass
 * capacity collapapse + parallel passes. The comparison is written to
 * BENCH_cache_sim.json (accesses/sec before/after) so the perf
 * trajectory is tracked across PRs; EXPERIMENTS.md records the
 * measured history.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench/bench_util.hh"
#include "cache/cache_sim.hh"
#include "cache/line_table.hh"
#include "cache/stack_dist.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"

using namespace texcache;

namespace {

/** Texture-like address stream: mostly local walk, occasional jump. */
inline uint64_t
nextAddr(uint32_t &x, uint64_t &cursor)
{
    x = x * 1664525u + 1013904223u;
    if ((x >> 24) < 8)
        cursor = (x >> 4) & 0xffffff;
    else
        cursor = (cursor + ((x >> 8) & 0xff)) & 0xffffff;
    return cursor;
}

void
cacheSimSetAssoc(benchmark::State &state)
{
    CacheSim cache({32 * 1024, 64, static_cast<unsigned>(state.range(0))});
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(nextAddr(x, cursor)));
    state.SetItemsProcessed(state.iterations());
}

void
fullyAssocLru(benchmark::State &state)
{
    FullyAssocLru cache(32 * 1024, 64);
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(nextAddr(x, cursor)));
    state.SetItemsProcessed(state.iterations());
}

void
stackDistProfiler(benchmark::State &state)
{
    StackDistProfiler prof(64);
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        prof.access(nextAddr(x, cursor));
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(prof.coldMisses());
}

void
lineSetInsert(benchmark::State &state)
{
    LineSet set;
    uint32_t x = 7;
    uint64_t cursor = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(set.insert(nextAddr(x, cursor) >> 6));
    state.SetItemsProcessed(state.iterations());
}

/**
 * The fig_5_2 sweep workload: a rendered texel trace replayed through
 * the nonblocked layout at every cache size of the figure's sweep,
 * for two line sizes. "Before" executes it the way the seed benches
 * did - one full serial replay per configuration; "after" uses the
 * sweep engine - one stack-distance pass per line size, passes run
 * via Sweep::run. Both simulate the same logical accesses; the
 * manifest reports accesses/sec for each, and tools/check_bench.py
 * gates CI on the committed baseline.
 */
void
sweepWorkload()
{
    Scene scene = makeQuadTestScene(256, 512, 4.0f);
    RenderOptions opts;
    opts.writeFramebuffer = false;
    RenderOutput out = render(scene, RasterOrder::horizontal(), opts);
    LayoutParams params;
    params.kind = LayoutKind::Nonblocked;
    SceneLayout layout(scene, params);

    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 512 << 10);
    const unsigned kLineSizes[] = {32, 64};

    // Before: one replay per (line, size) config, serially, exactly
    // as the seed benches ran (runCache is still that brute path).
    struct ConfigPerf
    {
        CacheConfig config;
        uint64_t accesses = 0;
        uint64_t misses = 0;
        double millis = 0.0;
    };
    std::vector<ConfigPerf> perConfig;
    uint64_t logicalAccesses = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned line : kLineSizes) {
        for (uint64_t size : sizes) {
            CacheConfig cfg{size, line, CacheConfig::kFullyAssoc};
            auto c0 = std::chrono::steady_clock::now();
            CacheStats stats = runCache(out.trace, layout, cfg);
            double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - c0)
                            .count();
            perConfig.push_back({cfg, stats.accesses, stats.misses, ms});
            logicalAccesses += stats.accesses;
        }
    }
    double beforeMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    // After: the full sweep collapses into one pass per line size;
    // the passes run on the sweep thread pool.
    std::vector<unsigned> lines(kLineSizes,
                                kLineSizes + std::size(kLineSizes));
    auto t1 = std::chrono::steady_clock::now();
    auto after = Sweep::run(lines, [&](unsigned line) {
        return runFaSweep(out.trace, layout, line, sizes);
    });
    double afterMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t1)
                         .count();

    // The collapsed passes must reproduce the brute-force numbers.
    size_t k = 0;
    for (size_t l = 0; l < lines.size(); ++l) {
        for (size_t s = 0; s < sizes.size(); ++s, ++k) {
            const CacheStats &fast = after[l].value[s];
            panic_if(fast.misses != perConfig[k].misses ||
                         fast.accesses != perConfig[k].accesses,
                     "sweep engine diverged from brute force at ",
                     perConfig[k].config.str());
        }
    }

    double beforeAps = logicalAccesses / (beforeMs / 1e3);
    double afterAps = logicalAccesses / (afterMs / 1e3);

    TextTable table("fig_5_2 sweep workload: per-config brute-force "
                    "replay (texels/s = accesses/s here: 1 address "
                    "per texel in the nonblocked layout)");
    table.header({"Config", "Accesses", "Wall(ms)", "Accesses/s"});
    for (const ConfigPerf &c : perConfig)
        table.row({c.config.str(), std::to_string(c.accesses),
                   fmtFixed(c.millis, 2),
                   fmtFixed(c.accesses / (c.millis / 1e3) / 1e6, 1) +
                       "M"});
    table.print(std::cout);

    std::cout << "\nsweep engine (" << lines.size()
              << " single-pass sweeps via Sweep::run, "
              << Sweep::threadCount() << " threads): "
              << fmtFixed(afterMs, 1) << " ms vs "
              << fmtFixed(beforeMs, 1) << " ms brute force -> "
              << fmtFixed(beforeMs / afterMs, 2) << "x ("
              << fmtFixed(afterAps / 1e6, 1) << "M vs "
              << fmtFixed(beforeAps / 1e6, 1) << "M accesses/s)\n";

    benchutil::dumpStats("cache_sim", [&](RunManifest &m,
                                          stats::Group &root) {
        m.config("workload", "fig_5_2_sweep");
        m.config("threads", uint64_t(Sweep::threadCount()));
        m.config("configs", uint64_t(perConfig.size()));

        // Determinism pins: any simulator change that alters what the
        // workload simulates fails the gate exactly.
        m.metric("configs", double(perConfig.size()), "exact");
        m.metric("logical_accesses", double(logicalAccesses), "exact");
        // Throughput gates: machine-dependent, so the wide tolerance
        // only catches real collapses (CI overrides it when injecting
        // a synthetic regression to prove the gate trips).
        m.metric("before_accesses_per_sec", beforeAps, "higher", 0.5);
        m.metric("after_accesses_per_sec", afterAps, "higher", 0.5);
        m.metric("speedup", beforeMs / afterMs, "report");
        m.metric("before_wall_ms", beforeMs, "report");
        m.metric("after_wall_ms", afterMs, "report");

        stats::Distribution &d = root.distribution(
            "config_us", "per-config brute-force replay wall-clock "
                         "in microseconds");
        for (const ConfigPerf &c : perConfig)
            d.sample(static_cast<uint64_t>(c.millis * 1e3));
    });
}

} // namespace

BENCHMARK(cacheSimSetAssoc)->Arg(1)->Arg(2)->Arg(8);
BENCHMARK(fullyAssocLru);
BENCHMARK(stackDistProfiler);
BENCHMARK(lineSetInsert);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    sweepWorkload();
    return 0;
}
