/**
 * @file
 * Near-plane clipping in homogeneous clip space.
 *
 * Triangles that cross the eye plane cannot be projected directly
 * (w changes sign), so they are clipped against z + w >= epsilon with
 * Sutherland-Hodgman before the perspective divide. Attributes (uv,
 * shade) interpolate linearly in clip space, which is exact.
 */

#ifndef TEXCACHE_PIPELINE_CLIP_HH
#define TEXCACHE_PIPELINE_CLIP_HH

#include "geom/vec.hh"

namespace texcache {

/** A clip-space vertex with its varyings. */
struct ClipVertex
{
    Vec4 pos;  ///< clip coordinates
    Vec2 uv;
    float shade = 1.0f;
};

/**
 * Clip a triangle against the near plane z + w >= epsilon.
 *
 * @param in   three clip-space vertices
 * @param out  receives 0..4 vertices of the clipped convex polygon
 * @return number of vertices written to @p out
 */
unsigned clipNear(const ClipVertex in[3], ClipVertex out[4]);

} // namespace texcache

#endif // TEXCACHE_PIPELINE_CLIP_HH
