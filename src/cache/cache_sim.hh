/**
 * @file
 * Trace-driven texture cache simulator (paper section 4.1, third
 * component).
 *
 * Models a single-level cache parameterized by total size, line size and
 * associativity with LRU replacement, fed one byte-address at a time.
 * Statistics distinguish cold misses (first touch of a line address
 * anywhere in the run) from the rest, which supports the paper's 3-C
 * style analysis when combined with a fully associative run of equal
 * size (see MissClassifier in three_c.hh).
 */

#ifndef TEXCACHE_CACHE_CACHE_SIM_HH
#define TEXCACHE_CACHE_CACHE_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/line_table.hh"
#include "common/bits.hh"
#include "layout/address_space.hh"

namespace texcache {

/** Organization of a cache: size, line size, associativity. */
struct CacheConfig
{
    uint64_t sizeBytes = 32 * 1024;
    unsigned lineBytes = 32;
    /** Ways per set; kFullyAssoc makes the cache fully associative. */
    unsigned assoc = 2;

    static constexpr unsigned kFullyAssoc = 0;

    /** Number of lines in the cache. */
    uint64_t numLines() const { return sizeBytes / lineBytes; }

    /** Number of sets (1 when fully associative). */
    uint64_t
    numSets() const
    {
        return assoc == kFullyAssoc ? 1 : sizeBytes / lineBytes / assoc;
    }

    /** Short display string like "32KB/64B/2way". */
    std::string str() const;
};

/** Hit/miss counters accumulated over a run. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t coldMisses = 0;
    /** Valid lines displaced by fills (single-cache replays only;
     *  the collapsed multi-config passes leave this zero). */
    uint64_t evictions = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }

    /** Bytes fetched from memory given a line size. */
    uint64_t
    bytesFetched(unsigned line_bytes) const
    {
        return misses * line_bytes;
    }
};

class FullyAssocLru;

/**
 * Set-associative LRU cache. Fully associative configurations with
 * more than 64 lines delegate internally to the O(1) FullyAssocLru
 * path, so callers can pass kFullyAssoc without picking the class by
 * hand; smaller ones use the O(ways) scan, which beats the hash map
 * at that scale.
 */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config);
    ~CacheSim();
    CacheSim(CacheSim &&) noexcept;
    CacheSim &operator=(CacheSim &&) noexcept;

    /** Simulate one byte access; returns true on hit. */
    bool access(Addr addr);

    /** Reset contents and statistics. */
    void reset();

    /**
     * Invalidate all contents but keep statistics and cold-miss
     * tracking - the "flush when the textures change" operation the
     * paper notes replaces coherence for read-only texture data
     * (section 3.2). Subsequent re-fetches count as (non-cold) misses.
     */
    void flush();

    const CacheStats &stats() const;
    const CacheConfig &config() const { return config_; }

    /**
     * Tag this simulator's trace events (tracing/trace_format.hh:
     * kTagStandalone/kTagL1/kTagL2; kTagSilent suppresses them).
     * Purely observational - simulation results are unaffected.
     */
    void setTraceTag(uint16_t tag);

  private:
    struct Way
    {
        uint64_t tag = kInvalid;
        uint64_t lastUse = 0;
    };
    static constexpr uint64_t kInvalid = ~0ULL;

    CacheConfig config_;
    unsigned lineShift_;
    uint64_t setMask_;
    unsigned ways_;
    std::vector<Way> table_; ///< numSets * ways_, row-major by set
    LineSet touched_;        ///< line addrs ever seen
    uint64_t tick_ = 0;
    uint16_t traceTag_ = 0;  ///< source tag on emitted trace events
    CacheStats stats_;
    /** Large fully associative configs delegate here (O(1) LRU). */
    std::unique_ptr<FullyAssocLru> fa_;
};

/** Fully associative LRU cache with O(1) accesses (hash map + list). */
class FullyAssocLru
{
  public:
    FullyAssocLru(uint64_t size_bytes, unsigned line_bytes);

    /** Simulate one byte access; returns true on hit. */
    bool access(Addr addr);

    void reset();

    /** Invalidate contents, keep statistics (see CacheSim::flush). */
    void flush();

    const CacheStats &stats() const { return stats_; }

    /** Tag emitted trace events (see CacheSim::setTraceTag). */
    void setTraceTag(uint16_t tag) { traceTag_ = tag; }

  private:
    // Intrusive doubly linked list over a node pool, most recent first.
    struct Node
    {
        uint64_t line;
        uint32_t prev;
        uint32_t next;
    };
    static constexpr uint32_t kNil = ~0u;

    void unlink(uint32_t n);
    void pushFront(uint32_t n);

    unsigned lineShift_;
    uint64_t capacity_; ///< lines
    std::vector<Node> pool_;
    std::vector<uint32_t> freeList_;
    std::unordered_map<uint64_t, uint32_t> map_;
    LineSet touched_;
    uint32_t head_ = kNil;
    uint32_t tail_ = kNil;
    uint16_t traceTag_ = 0;
    CacheStats stats_;
};

} // namespace texcache

#endif // TEXCACHE_CACHE_CACHE_SIM_HH
