/** @file Tests for the extension filter modes (GL 1.0 filter set). */

#include <gtest/gtest.h>

#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "trace/fragment_iter.hh"
#include "trace/trace_stats.hh"

using namespace texcache;

namespace {

MipMap
flatMip(unsigned size, uint8_t red)
{
    return MipMap(Image(size, size, Rgba8{red, 0, 0, 255}));
}

} // namespace

TEST(FilterModes, TrilinearModeMatchesSampleMipMap)
{
    MipMap m = flatMip(64, 120);
    SampleResult a = sampleMipMap(m, 0.3f, 0.7f, 1.8f);
    SampleResult b =
        sampleMipMapMode(m, 0.3f, 0.7f, 1.8f, FilterMode::Trilinear);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.numTouches, b.numTouches);
    for (unsigned i = 0; i < a.numTouches; ++i) {
        EXPECT_EQ(a.touches[i].level, b.touches[i].level);
        EXPECT_EQ(a.touches[i].u, b.touches[i].u);
    }
}

TEST(FilterModes, BilinearMipNearestPicksNearestLevel)
{
    MipMap m = flatMip(64, 80);
    // lambda 1.8 rounds to level 2; lambda 1.4 rounds to level 1.
    SampleResult hi = sampleMipMapMode(m, 0.5f, 0.5f, 1.8f,
                                       FilterMode::BilinearMipNearest);
    SampleResult lo = sampleMipMapMode(m, 0.5f, 0.5f, 1.4f,
                                       FilterMode::BilinearMipNearest);
    EXPECT_EQ(hi.numTouches, 4u);
    EXPECT_EQ(hi.kind, FilterKind::Bilinear);
    EXPECT_EQ(hi.touches[0].level, 2);
    EXPECT_EQ(lo.touches[0].level, 1);
}

TEST(FilterModes, BilinearMipNearestMagnificationStaysOnLevel0)
{
    MipMap m = flatMip(64, 80);
    SampleResult s = sampleMipMapMode(m, 0.5f, 0.5f, -2.0f,
                                      FilterMode::BilinearMipNearest);
    EXPECT_EQ(s.touches[0].level, 0);
}

TEST(FilterModes, NearestTouchesExactlyOneTexel)
{
    MipMap m = flatMip(16, 33);
    SampleResult s = sampleMipMapMode(m, 0.26f, 0.51f, 0.0f,
                                      FilterMode::NearestMipNearest);
    EXPECT_EQ(s.kind, FilterKind::Nearest);
    EXPECT_EQ(s.numTouches, 1u);
    // (0.26, 0.51) on a 16x16 level 0 -> texel (4, 8).
    EXPECT_EQ(s.touches[0].level, 0);
    EXPECT_EQ(s.touches[0].u, 4);
    EXPECT_EQ(s.touches[0].v, 8);
    EXPECT_NEAR(s.color.x * 255.0f, 33.0f, 0.51f);
}

TEST(FilterModes, NearestClampsToCoarsestLevel)
{
    MipMap m = flatMip(16, 10); // levels 0..4
    SampleResult s = sampleMipMapMode(m, 0.9f, 0.9f, 99.0f,
                                      FilterMode::NearestMipNearest);
    EXPECT_EQ(s.touches[0].level, 4);
    EXPECT_EQ(s.touches[0].u, 0);
}

TEST(FilterModes, NearestWrapsRepeat)
{
    MipMap m = flatMip(16, 1);
    SampleResult a = sampleMipMapMode(m, 0.26f, 0.51f, 0.0f,
                                      FilterMode::NearestMipNearest);
    SampleResult b = sampleMipMapMode(m, 2.26f, -0.49f, 0.0f,
                                      FilterMode::NearestMipNearest);
    EXPECT_EQ(a.touches[0].u, b.touches[0].u);
    EXPECT_EQ(a.touches[0].v, b.touches[0].v);
}

TEST(FilterModes, RendererTrafficScalesWithMode)
{
    Scene scene = makeQuadTestScene(512, 64); // minified everywhere
    RenderOptions tri;
    RenderOptions bil;
    bil.filterMode = FilterMode::BilinearMipNearest;
    RenderOptions nst;
    nst.filterMode = FilterMode::NearestMipNearest;

    RenderOutput a = render(scene, RasterOrder::horizontal(), tri);
    RenderOutput b = render(scene, RasterOrder::horizontal(), bil);
    RenderOutput c = render(scene, RasterOrder::horizontal(), nst);

    EXPECT_EQ(a.stats.fragments, b.stats.fragments);
    EXPECT_EQ(b.stats.fragments, c.stats.fragments);
    EXPECT_EQ(a.stats.texelAccesses, 8 * a.stats.fragments);
    EXPECT_EQ(b.stats.texelAccesses, 4 * b.stats.fragments);
    EXPECT_EQ(c.stats.texelAccesses, 1 * c.stats.fragments);
    EXPECT_EQ(c.stats.nearestFragments, c.stats.fragments);
}

TEST(FilterModes, NearestTraceGroupsByFragment)
{
    Scene scene = makeQuadTestScene(128, 32);
    RenderOptions opts;
    opts.filterMode = FilterMode::NearestMipNearest;
    RenderOutput out = render(scene, RasterOrder::horizontal(), opts);
    uint64_t frags = 0;
    forEachFragment(out.trace, [&](const FragmentTouches &f) {
        ASSERT_EQ(f.count, 1u);
        ASSERT_EQ(f.recs[0].kind, TouchKind::Nearest);
        ++frags;
    });
    EXPECT_EQ(frags, out.stats.fragments);
    TraceStats stats = analyzeTrace(out.trace);
    EXPECT_EQ(stats.nearest.accesses, out.stats.texelAccesses);
}
