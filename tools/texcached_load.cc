/**
 * @file
 * texcached_load: concurrency + correctness load driver for texcached.
 *
 * Fires a deterministic mixed workload at a running daemon from N
 * concurrent client connections:
 *
 *  - "hot" requests draw from a small set of sweep templates (a few
 *    scene/order/layout batch keys x config variants), so concurrent
 *    clients keep asking for the same replays and the daemon's batch
 *    window can fold them into shared passes;
 *  - "cold" requests are classify-kind with unique names - never
 *    batchable - so the fold accounting has a known non-coalescible
 *    denominator.
 *
 * Every response must be byte-identical to the manifest the direct
 * library path (runServiceRequest on a local TraceStore) produces for
 * the same body - the end-to-end determinism check that makes daemon
 * results interchangeable with batch-CLI results. queue_full answers
 * are retried with backoff (that is admission control working, not a
 * failure); any other error or any byte mismatch fails the run.
 *
 * After the workload the driver pulls the daemon's stats and computes
 * the batch-fold factor on the coalescible subset:
 *
 *    fold = hot_requests / (batches - cold_requests)
 *
 * and asserts it against --min-fold. Results land in
 * BENCH_texcached.json (gated by tools/check_bench.py): exact pins on
 * request count and byte-identity, a tolerance-gated fold factor, and
 * reported requests/s + p99 latency.
 *
 * Usage:
 *   texcached_load --socket PATH [--clients 8] [--requests 1000]
 *                  [--hot-permille 700] [--min-fold 0] [--shutdown]
 *                  [--dump-dir DIR]
 */

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/json_reader.hh"
#include "common/logging.hh"
#include "core/run_manifest.hh"
#include "service/request.hh"
#include "service/socket.hh"

using namespace texcache;
using namespace texcache::service;

namespace {

struct Args
{
    std::string socketPath = "texcached.sock";
    unsigned clients = 8;
    unsigned requests = 1000;
    unsigned hotPermille = 700;
    double minFold = 0.0;
    bool shutdownDaemon = false;
    std::string dumpDir;
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "texcached_load: " << what
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (a == "--socket" && (v = next("--socket")))
            args.socketPath = v;
        else if (a == "--clients" && (v = next("--clients")))
            args.clients = std::strtoul(v, nullptr, 10);
        else if (a == "--requests" && (v = next("--requests")))
            args.requests = std::strtoul(v, nullptr, 10);
        else if (a == "--hot-permille" && (v = next("--hot-permille")))
            args.hotPermille = std::strtoul(v, nullptr, 10);
        else if (a == "--min-fold" && (v = next("--min-fold")))
            args.minFold = std::strtod(v, nullptr);
        else if (a == "--shutdown")
            args.shutdownDaemon = true;
        else if (a == "--dump-dir" && (v = next("--dump-dir")))
            args.dumpDir = v;
        else if (a == "--help" || a == "-h") {
            std::cout << "usage: texcached_load --socket PATH "
                         "[--clients N] [--requests N]\n"
                         "  [--hot-permille N] [--min-fold F] "
                         "[--shutdown] [--dump-dir DIR]\n";
            return false;
        } else {
            std::cerr << "texcached_load: bad option " << a << "\n";
            return false;
        }
        if (!args.clients || !args.requests ||
            args.hotPermille > 1000) {
            std::cerr << "texcached_load: invalid argument values\n";
            return false;
        }
    }
    return true;
}

/**
 * The hot template pool: 4 batch keys (scene x order x layout) x 3
 * config variants. Bodies are byte-deterministic strings so repeats
 * of a template are the *same* request - the coalescing target.
 */
std::vector<std::string>
hotBodies()
{
    const char *keys[4][3] = {
        // scene fragment, order fragment, layout fragment
        {"\"scene\":\"quad\",\"quad\":{\"tex\":64,\"screen\":128}",
         "\"order\":\"horizontal\"",
         "\"layout\":{\"kind\":\"blocked\",\"block_w\":4,"
         "\"block_h\":4}"},
        {"\"scene\":\"quad\",\"quad\":{\"tex\":64,\"screen\":128}",
         "\"order\":{\"dir\":\"horizontal\",\"tiled\":true,"
         "\"tile_w\":8,\"tile_h\":8}",
         "\"layout\":{\"kind\":\"blocked\",\"block_w\":4,"
         "\"block_h\":4}"},
        {"\"scene\":\"quad\",\"quad\":{\"tex\":64,\"screen\":128}",
         "\"order\":\"horizontal\"", "\"layout\":{\"kind\":\"nonblocked\"}"},
        {"\"scene\":\"quad\",\"quad\":{\"tex\":128,\"screen\":128,"
         "\"repeat\":2}",
         "\"order\":\"horizontal\"",
         "\"layout\":{\"kind\":\"blocked\",\"block_w\":4,"
         "\"block_h\":4}"},
    };
    const char *variants[3] = {
        "\"sweep\":{\"sizes\":[1024,2048,4096,8192],\"lines\":[32]}",
        "\"configs\":[{\"size\":4096,\"line\":32,\"assoc\":2},"
        "{\"size\":8192,\"line\":32,\"assoc\":4}]",
        "\"sweep\":{\"sizes\":[2048,4096,8192,16384],"
        "\"lines\":[64]}",
    };
    std::vector<std::string> bodies;
    for (int t = 0; t < 4; ++t) {
        for (int v = 0; v < 3; ++v) {
            bodies.push_back(
                std::string("{\"kind\":\"sweep\",\"name\":\"hot-t") +
                std::to_string(t) + "-v" + std::to_string(v) +
                "\"," + keys[t][0] + "," + keys[t][1] + "," +
                keys[t][2] + "," + variants[v] + "}");
        }
    }
    return bodies;
}

/** Cold request @p i: classify kind, unique name, not batchable. */
std::string
coldBody(unsigned i)
{
    uint64_t size = 1024u << (i % 5); // 1K..16K
    return "{\"kind\":\"classify\",\"name\":\"cold-" +
           std::to_string(i) +
           "\",\"scene\":\"quad\",\"quad\":{\"tex\":64,"
           "\"screen\":128},\"order\":\"horizontal\","
           "\"layout\":{\"kind\":\"blocked\",\"block_w\":4,"
           "\"block_h\":4},\"configs\":[{\"size\":" +
           std::to_string(size) + ",\"line\":32,\"assoc\":2}]}";
}

bool
isErrorWithCode(const std::string &resp, const char *code)
{
    json::Value v;
    json::ParseError err;
    if (!json::parse(resp, v, err) || !v.isObject())
        return false;
    const json::Value *status = v.find("status");
    const json::Value *c = v.find("code");
    return status && status->isString() && status->str() == "error" &&
           c && c->isString() && c->str() == code;
}

std::string
sanitizeName(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 2;

    // Deterministic schedule: which body each request slot sends.
    std::vector<std::string> hot = hotBodies();
    std::vector<std::string> schedule;
    std::vector<bool> isHot;
    unsigned hotCount = 0, coldCount = 0;
    std::mt19937 rng(0x7eca);
    std::uniform_int_distribution<unsigned> permille(0, 999);
    std::uniform_int_distribution<size_t> pickHot(0, hot.size() - 1);
    for (unsigned i = 0; i < args.requests; ++i) {
        if (permille(rng) < args.hotPermille) {
            schedule.push_back(hot[pickHot(rng)]);
            isHot.push_back(true);
            ++hotCount;
        } else {
            schedule.push_back(coldBody(coldCount));
            isHot.push_back(false);
            ++coldCount;
        }
    }

    // Reference manifests via the direct library path - the same
    // builders the daemon uses, on a private TraceStore.
    inform("computing ", schedule.size(),
           " reference manifests (direct library path)");
    TraceStore refStore;
    std::map<std::string, std::string> reference;
    for (const std::string &body : schedule) {
        if (reference.count(body))
            continue;
        ServiceRequest req;
        RequestError err = parseRequest(body, req);
        if (err) {
            std::cerr << "texcached_load: workload body invalid: "
                      << err.message << "\n";
            return 1;
        }
        reference.emplace(body, runServiceRequest(refStore, req));
    }

    // Fire the workload from N connections; slots are claimed from a
    // shared cursor so the interleaving is concurrency-driven.
    std::atomic<size_t> cursor{0};
    std::atomic<uint64_t> mismatches{0}, transportErrors{0},
        queueFullRetries{0}, otherErrors{0};
    std::vector<std::vector<double>> latencies(args.clients);
    std::mutex dumpMutex;

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < args.clients; ++c) {
        clients.emplace_back([&, c] {
            int fd = connectUnix(args.socketPath);
            if (fd < 0) {
                ++transportErrors;
                return;
            }
            std::string resp;
            for (;;) {
                size_t i = cursor.fetch_add(1);
                if (i >= schedule.size())
                    break;
                const std::string &body = schedule[i];
                bool done = false;
                for (unsigned attempt = 0; attempt < 200 && !done;
                     ++attempt) {
                    auto s0 = std::chrono::steady_clock::now();
                    if (!writeFrame(fd, body) ||
                        !readFrame(fd, resp)) {
                        ++transportErrors;
                        ::close(fd);
                        return;
                    }
                    if (isErrorWithCode(resp, "queue_full")) {
                        ++queueFullRetries;
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(2));
                        continue;
                    }
                    latencies[c].push_back(
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - s0)
                            .count());
                    done = true;
                    const std::string &want = reference.at(body);
                    if (resp != want) {
                        ++mismatches;
                        std::lock_guard<std::mutex> lk(dumpMutex);
                        if (!args.dumpDir.empty()) {
                            std::string stem =
                                args.dumpDir + "/" +
                                sanitizeName(body.substr(0, 48)) +
                                "_" + std::to_string(i);
                            std::ofstream(stem + ".svc.json") << resp;
                            std::ofstream(stem + ".direct.json")
                                << want;
                        }
                        if (isErrorWithCode(resp, "shutting_down") ||
                            isErrorWithCode(resp, "bad_request") ||
                            isErrorWithCode(resp, "parse_error"))
                            ++otherErrors;
                    }
                }
                if (!done)
                    ++otherErrors; // retry budget exhausted
            }
            ::close(fd);
        });
    }
    for (std::thread &t : clients)
        t.join();
    double wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    // Daemon-side accounting: one stats control request.
    double batches = 0, accepted = 0, folded = 0;
    {
        int fd = connectUnix(args.socketPath);
        std::string resp;
        if (fd >= 0 && writeFrame(fd, "{\"kind\":\"stats\"}") &&
            readFrame(fd, resp)) {
            json::Value v;
            json::ParseError jerr;
            if (json::parse(resp, v, jerr) && v.isObject()) {
                if (const json::Value *b = v.find("batches"))
                    batches = b->number();
                if (const json::Value *a = v.find("accepted"))
                    accepted = a->number();
                if (const json::Value *f = v.find("folded"))
                    folded = f->number();
            }
            if (args.shutdownDaemon)
                if (writeFrame(fd, "{\"kind\":\"shutdown\"}"))
                    readFrame(fd, resp);
        } else {
            ++transportErrors;
        }
        if (fd >= 0)
            ::close(fd);
    }

    // fold on the coalescible subset: every cold request is its own
    // batch by construction, so subtract them from the denominator.
    double hotBatches = batches - double(coldCount);
    double fold = hotBatches > 0 ? double(hotCount) / hotBatches : 0.0;

    std::vector<double> all;
    for (const auto &v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    auto pct = [&](double p) {
        if (all.empty())
            return 0.0;
        size_t idx = static_cast<size_t>(p * (all.size() - 1));
        return all[idx];
    };
    double rps = wallMs > 0 ? 1000.0 * double(args.requests) / wallMs
                            : 0.0;

    std::cout << "texcached_load: " << args.requests << " requests, "
              << args.clients << " clients, " << hotCount << " hot / "
              << coldCount << " cold\n"
              << "  wall " << wallMs / 1000.0 << "s  (" << rps
              << " req/s)\n"
              << "  latency ms p50 " << pct(0.50) << "  p95 "
              << pct(0.95) << "  p99 " << pct(0.99) << "\n"
              << "  daemon: accepted " << accepted << ", batches "
              << batches << ", folded " << folded << "\n"
              << "  fold on coalescible subset: " << fold << "\n"
              << "  mismatches " << mismatches.load()
              << ", transport errors " << transportErrors.load()
              << ", queue_full retries " << queueFullRetries.load()
              << ", other errors " << otherErrors.load() << "\n";

    // The gated manifest. Byte-identity and request accounting are
    // exact pins; throughput and latency are machine-dependent.
    RunManifest m("texcached");
    m.setScene("quad");
    m.config("clients", uint64_t(args.clients));
    m.config("requests", uint64_t(args.requests));
    m.config("hot", uint64_t(hotCount));
    m.config("cold", uint64_t(coldCount));
    m.config("templates", uint64_t(hot.size()));
    m.metric("requests", double(args.requests), "exact");
    m.metric("mismatches", double(mismatches.load()), "exact");
    m.metric("transport_errors", double(transportErrors.load()),
             "exact");
    m.metric("other_errors", double(otherErrors.load()), "exact");
    m.metric("fold_coalescible", fold, "higher", 0.6);
    m.metric("requests_per_sec", rps, "report");
    m.metric("p99_ms", pct(0.99), "report");
    m.metric("queue_full_retries", double(queueFullRetries.load()),
             "report");
    stats::Group root;
    stats::Group &g = root.group("load");
    g.constant("sent", args.requests);
    g.constant("hot", hotCount);
    g.constant("cold", coldCount);
    g.constant("mismatches", mismatches.load());
    g.constant("queue_full_retries", queueFullRetries.load());
    g.real("fold_coalescible", fold);
    g.real("requests_per_sec", rps);
    g.real("p50_ms", pct(0.50));
    g.real("p95_ms", pct(0.95));
    g.real("p99_ms", pct(0.99));
    m.writeFile(&root);

    bool ok = mismatches.load() == 0 && transportErrors.load() == 0 &&
              otherErrors.load() == 0;
    if (args.minFold > 0 && fold < args.minFold) {
        std::cerr << "texcached_load: fold " << fold
                  << " below required " << args.minFold << "\n";
        ok = false;
    }
    if (!ok)
        std::cerr << "texcached_load: FAILED\n";
    return ok ? 0 : 1;
}
