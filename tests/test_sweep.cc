/** @file
 * The sweep runner's contract (core/sweep.hh): parallel execution
 * returns results bit-identical to serial execution and in identical
 * (point) order, regardless of thread count, load skew, or which
 * worker stole what; exceptions propagate; per-point wall-clock is
 * captured.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_sim.hh"
#include "core/sweep.hh"

using namespace texcache;

namespace {

/** Scoped TEXCACHE_THREADS override (restores the prior value). */
class ThreadEnv
{
  public:
    explicit ThreadEnv(const char *value)
    {
        const char *old = std::getenv("TEXCACHE_THREADS");
        had_ = old != nullptr;
        if (old)
            saved_ = old;
        if (value)
            setenv("TEXCACHE_THREADS", value, 1);
        else
            unsetenv("TEXCACHE_THREADS");
    }
    ~ThreadEnv()
    {
        if (had_)
            setenv("TEXCACHE_THREADS", saved_.c_str(), 1);
        else
            unsetenv("TEXCACHE_THREADS");
    }

  private:
    bool had_;
    std::string saved_;
};

/** Deterministic per-point work with a heavily skewed cost. */
uint64_t
skewedWork(size_t i)
{
    // Point cost varies by ~3 orders of magnitude so slices are
    // unbalanced and stealing must happen for the pool to finish
    // anywhere near evenly.
    uint64_t iters = 100 + (i * 2654435761u) % 100000;
    uint64_t h = 1469598103934665603ull ^ i;
    for (uint64_t k = 0; k < iters; ++k) {
        h ^= k;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

TEST(Sweep, ThreadCountHonorsEnvOverride)
{
    {
        ThreadEnv env("3");
        EXPECT_EQ(Sweep::threadCount(), 3u);
    }
    {
        ThreadEnv env("1");
        EXPECT_EQ(Sweep::threadCount(), 1u);
    }
    {
        ThreadEnv env(nullptr);
        EXPECT_GE(Sweep::threadCount(), 1u);
    }
}

TEST(SweepDeathTest, RejectsInvalidThreadCounts)
{
    // TEXCACHE_THREADS is user configuration: zero, negative or
    // non-numeric values are a fatal() error, not a silent fallback.
    for (const char *bad : {"0", "-2", "abc", "", "3x"}) {
        ThreadEnv env(bad);
        EXPECT_EXIT(Sweep::threadCount(),
                    testing::ExitedWithCode(1), "TEXCACHE_THREADS")
            << "value '" << bad << "'";
    }
}

TEST(Sweep, RecordsRunStats)
{
    ThreadEnv env("2");
    std::vector<size_t> points(64);
    std::iota(points.begin(), points.end(), 0);
    Sweep::run(points, skewedWork);
    SweepRunStats s = Sweep::lastRunStats();
    EXPECT_EQ(s.points, 64u);
    EXPECT_EQ(s.threads, 2u);
    EXPECT_GT(s.wallMillis, 0.0);
    EXPECT_GT(s.busyMillis, 0.0);
    EXPECT_GT(s.utilization(), 0.0);
    EXPECT_LE(s.utilization(), 1.0);
}

TEST(Sweep, ParallelBitIdenticalAndIdenticallyOrderedToSerial)
{
    std::vector<size_t> points(512);
    std::iota(points.begin(), points.end(), 0);

    std::vector<uint64_t> serial;
    {
        ThreadEnv env("1");
        for (const auto &r : Sweep::run(points, skewedWork))
            serial.push_back(r.value);
    }
    for (const char *threads : {"2", "4", "8"}) {
        ThreadEnv env(threads);
        auto par = Sweep::run(points, skewedWork);
        ASSERT_EQ(par.size(), serial.size()) << threads << " threads";
        for (size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(par[i].value, serial[i])
                << threads << " threads, point " << i;
    }
}

TEST(Sweep, SimulatorPointsMatchSerial)
{
    // The intended use: each point owns a CacheSim over a shared
    // read-only stream; parallel stats must equal serial stats.
    std::vector<Addr> stream;
    uint32_t x = 5;
    for (int i = 0; i < 50000; ++i) {
        x = x * 1664525u + 1013904223u;
        stream.push_back((x >> 6) & 0xffff8);
    }
    std::vector<CacheConfig> points;
    for (uint64_t size : {4 << 10, 16 << 10, 64 << 10})
        for (unsigned assoc : {1u, 2u, CacheConfig::kFullyAssoc})
            points.push_back({size, 64, assoc});

    auto runOne = [&](const CacheConfig &cfg) {
        CacheSim sim(cfg);
        for (Addr a : stream)
            sim.access(a);
        return sim.stats().misses;
    };

    std::vector<uint64_t> serial;
    {
        ThreadEnv env("1");
        for (const auto &r : Sweep::run(points, runOne))
            serial.push_back(r.value);
    }
    ThreadEnv env("4");
    auto par = Sweep::run(points, runOne);
    for (size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(par[i].value, serial[i]) << points[i].str();
}

TEST(Sweep, EmptyAndSinglePointLists)
{
    ThreadEnv env("4");
    std::vector<int> none;
    EXPECT_TRUE(Sweep::run(none, [](int v) { return v; }).empty());

    std::vector<int> one = {41};
    auto r = Sweep::run(one, [](int v) { return v + 1; });
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].value, 42);
}

TEST(Sweep, MorePointsThanASliceEach)
{
    // More threads than points: the pool must clamp, not deadlock.
    ThreadEnv env("16");
    std::vector<int> points = {1, 2, 3};
    auto r = Sweep::run(points, [](int v) { return v * v; });
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0].value, 1);
    EXPECT_EQ(r[1].value, 4);
    EXPECT_EQ(r[2].value, 9);
}

TEST(Sweep, CapturesPerPointWallClock)
{
    ThreadEnv env("2");
    std::vector<int> points = {3, 12};
    auto r = Sweep::run(points, [](int ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        return ms;
    });
    ASSERT_EQ(r.size(), 2u);
    EXPECT_GE(r[0].millis, 2.0);
    EXPECT_GE(r[1].millis, 10.0);
}

TEST(Sweep, PropagatesExceptions)
{
    ThreadEnv env("4");
    std::vector<size_t> points(64);
    std::iota(points.begin(), points.end(), 0);
    EXPECT_THROW(Sweep::run(points,
                            [](size_t i) -> int {
                                if (i == 37)
                                    throw std::runtime_error("point 37");
                                return static_cast<int>(i);
                            }),
                 std::runtime_error);
}
