/**
 * @file
 * SIMD dispatch probe for CI and debugging.
 *
 * Prints the span-kernel ISA levels this build compiled and this CPU
 * supports, one per line, plus the level the dispatcher would select
 * (honoring TEXCACHE_SIMD - so a bogus override fails here, loudly,
 * before any bench runs). CI's TEXCACHE_SIMD matrix asks
 * `simd_probe --supports <level>` per entry and emits an explicit
 * skip line for levels the runner cannot execute, instead of silently
 * testing scalar twice.
 *
 * Usage:
 *   simd_probe                 # report: compiled, supported, selected
 *   simd_probe --supports ISA  # exit 0 iff ISA runs here (quiet)
 *   simd_probe --best          # print the selected level only
 */

#include <cstring>
#include <iostream>

#include "simd/isa.hh"
#include "simd/span_kernels.hh"

using namespace texcache;

int
main(int argc, char **argv)
{
    const simd::Isa all[] = {simd::Isa::Scalar, simd::Isa::Sse41,
                             simd::Isa::Avx2};

    if (argc == 3 && std::strcmp(argv[1], "--supports") == 0) {
        for (simd::Isa isa : all) {
            if (std::strcmp(argv[2], simd::isaName(isa)) != 0)
                continue;
            bool ok = simd::kernelsFor(isa) != nullptr &&
                      simd::isaSupported(isa);
            return ok ? 0 : 1;
        }
        std::cerr << "simd_probe: unknown ISA level '" << argv[2]
                  << "' (scalar|sse41|avx2)\n";
        return 2;
    }
    if (argc == 2 && std::strcmp(argv[1], "--best") == 0) {
        // activeIsa() resolves TEXCACHE_SIMD and is fatal on an
        // unknown or unsupported override - the point: fail here.
        std::cout << simd::isaName(simd::activeIsa()) << "\n";
        return 0;
    }
    if (argc != 1) {
        std::cerr << "usage: simd_probe [--supports ISA | --best]\n";
        return 2;
    }

    for (simd::Isa isa : all) {
        std::cout << simd::isaName(isa) << ": "
                  << (simd::kernelsFor(isa) ? "compiled" : "not compiled")
                  << ", "
                  << (simd::isaSupported(isa) ? "supported"
                                              : "unsupported by this CPU")
                  << "\n";
    }
    std::cout << "selected: " << simd::isaName(simd::activeIsa())
              << "\n";
    return 0;
}
