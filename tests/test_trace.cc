/** @file Tests for texel traces, fragment grouping and trace stats. */

#include <gtest/gtest.h>

#include "trace/fragment_iter.hh"
#include "trace/texel_trace.hh"
#include "trace/trace_stats.hh"

using namespace texcache;

TEST(TexelRecord, PackRoundTrips)
{
    for (uint16_t tex : {0, 1, 511, 2047}) {
        for (uint16_t lvl : {0, 1, 10, 31}) {
            TexelRecord r{tex, lvl, 12345, 54321 & 0xffff,
                          TouchKind::TrilinearUpper};
            TexelRecord q = TexelRecord::unpack(r.pack());
            EXPECT_EQ(q.texture, r.texture);
            EXPECT_EQ(q.level, r.level);
            EXPECT_EQ(q.u, r.u);
            EXPECT_EQ(q.v, r.v);
            EXPECT_EQ(q.kind, r.kind);
        }
    }
}

TEST(TexelRecord, FieldLimitsPanic)
{
    TexelRecord r{2048, 0, 0, 0, TouchKind::Bilinear};
    EXPECT_DEATH(r.pack(), "11-bit");
    TexelRecord r2{0, 32, 0, 0, TouchKind::Bilinear};
    EXPECT_DEATH(r2.pack(), "5-bit");
}

namespace {

SampleResult
fakeTrilinear(uint16_t lower_level)
{
    SampleResult s;
    s.kind = FilterKind::Trilinear;
    s.numTouches = 8;
    for (unsigned i = 0; i < 4; ++i)
        s.touches[i] = {lower_level, static_cast<uint16_t>(i), 0};
    for (unsigned i = 4; i < 8; ++i)
        s.touches[i] = {static_cast<uint16_t>(lower_level + 1),
                        static_cast<uint16_t>(i - 4), 0};
    return s;
}

SampleResult
fakeBilinear()
{
    SampleResult s;
    s.kind = FilterKind::Bilinear;
    s.numTouches = 4;
    for (unsigned i = 0; i < 4; ++i)
        s.touches[i] = {0, static_cast<uint16_t>(i), 1};
    return s;
}

} // namespace

TEST(TexelTrace, AppendSampleTagsKinds)
{
    TexelTrace t;
    t.appendSample(3, fakeTrilinear(2));
    t.appendSample(3, fakeBilinear());
    ASSERT_EQ(t.size(), 12u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(t[i].kind, TouchKind::TrilinearLower);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(t[i].kind, TouchKind::TrilinearUpper);
    for (int i = 8; i < 12; ++i)
        EXPECT_EQ(t[i].kind, TouchKind::Bilinear);
    EXPECT_EQ(t[0].texture, 3);
}

TEST(FragmentIter, RegroupsMixedFragments)
{
    TexelTrace t;
    t.appendSample(0, fakeTrilinear(0));
    t.appendSample(1, fakeBilinear());
    t.appendSample(2, fakeTrilinear(1));

    std::vector<unsigned> counts;
    std::vector<uint16_t> textures;
    forEachFragment(t, [&](const FragmentTouches &f) {
        counts.push_back(f.count);
        textures.push_back(f.recs[0].texture);
    });
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 8u);
    EXPECT_EQ(counts[1], 4u);
    EXPECT_EQ(counts[2], 8u);
    EXPECT_EQ(textures[0], 0);
    EXPECT_EQ(textures[1], 1);
    EXPECT_EQ(textures[2], 2);
    FragmentTouches eight;
    eight.count = 8;
    EXPECT_TRUE(eight.trilinear());
}

TEST(TraceStats, AccessesPerTexelByRole)
{
    TexelTrace t;
    // The same trilinear footprint four times: 4 unique lower texels
    // accessed 16 times, 4 unique upper texels accessed 16 times.
    for (int i = 0; i < 4; ++i)
        t.appendSample(0, fakeTrilinear(0));
    TraceStats s = analyzeTrace(t);
    EXPECT_EQ(s.trilinearLower.accesses, 16u);
    EXPECT_EQ(s.trilinearLower.uniqueTexels, 4u);
    EXPECT_DOUBLE_EQ(s.trilinearLower.accessesPerTexel(), 4.0);
    EXPECT_EQ(s.trilinearUpper.uniqueTexels, 4u);
    EXPECT_EQ(s.bilinear.accesses, 0u);
}

TEST(TraceStats, RunlengthCountsTextureSwitches)
{
    TexelTrace t;
    t.appendSample(0, fakeTrilinear(0)); // 8 accesses, run 1
    t.appendSample(0, fakeTrilinear(0)); // same run
    t.appendSample(1, fakeBilinear());   // run 2 (4 accesses)
    t.appendSample(0, fakeTrilinear(0)); // run 3
    TraceStats s = analyzeTrace(t);
    EXPECT_EQ(s.accesses, 28u);
    EXPECT_EQ(s.textureRuns, 3u);
    EXPECT_NEAR(s.averageRunlength(), 28.0 / 3.0, 1e-9);
}

TEST(TraceStats, RolesAreTrackedIndependently)
{
    TexelTrace t;
    // The same texel (0,0,0) via bilinear and trilinear-lower counts
    // as unique in each role.
    t.appendSample(0, fakeBilinear());
    t.appendSample(0, fakeTrilinear(0));
    TraceStats s = analyzeTrace(t);
    EXPECT_EQ(s.bilinear.uniqueTexels, 4u);
    EXPECT_EQ(s.trilinearLower.uniqueTexels, 4u);
}

TEST(Repetition, CountsWrappedReuse)
{
    RepetitionCounter c;
    // Three distinct unwrapped anchors that wrap onto one texel.
    c.record(0, 0, 5, 5, 5, 5);
    c.record(0, 0, 5 + 64, 5, 5, 5);
    c.record(0, 0, 5 + 128, 5, 5, 5);
    EXPECT_EQ(c.uniqueUnwrapped(), 3u);
    EXPECT_EQ(c.uniqueWrapped(), 1u);
    EXPECT_DOUBLE_EQ(c.repetitionFactor(), 3.0);
}

TEST(Repetition, NoRepeatGivesFactorOne)
{
    RepetitionCounter c;
    for (int i = 0; i < 10; ++i)
        c.record(0, 0, i, 0, static_cast<uint16_t>(i), 0);
    EXPECT_DOUBLE_EQ(c.repetitionFactor(), 1.0);
}

TEST(Repetition, NegativeUnwrappedCoordsAreDistinct)
{
    RepetitionCounter c;
    c.record(0, 0, -1, 0, 63, 0);
    c.record(0, 0, 63, 0, 63, 0);
    EXPECT_EQ(c.uniqueUnwrapped(), 2u);
    EXPECT_EQ(c.uniqueWrapped(), 1u);
}
