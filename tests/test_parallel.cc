/** @file Tests for the multi-fragment-generator simulation (section 8). */

#include <gtest/gtest.h>

#include "core/parallel.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"

using namespace texcache;

namespace {

constexpr CacheConfig kCache{4 * 1024, 64, 2};

} // namespace

TEST(Parallel, ScanlinePolicyAlternatesByRow)
{
    MultiGeneratorSim sim(4, WorkDistribution::ScanlineInterleaved,
                          kCache);
    EXPECT_EQ(sim.generatorFor(100, 0), 0u);
    EXPECT_EQ(sim.generatorFor(5, 1), 1u);
    EXPECT_EQ(sim.generatorFor(5, 5), 1u);
    EXPECT_EQ(sim.generatorFor(0, 7), 3u);
}

TEST(Parallel, BandsPolicySplitsContiguously)
{
    MultiGeneratorSim sim(4, WorkDistribution::Bands, kCache, 32,
                          /*screen_h=*/1024);
    EXPECT_EQ(sim.generatorFor(0, 0), 0u);
    EXPECT_EQ(sim.generatorFor(0, 255), 0u);
    EXPECT_EQ(sim.generatorFor(0, 256), 1u);
    EXPECT_EQ(sim.generatorFor(0, 1023), 3u);
}

TEST(Parallel, TilePolicyKeepsTilesTogether)
{
    MultiGeneratorSim sim(4, WorkDistribution::TileInterleaved, kCache,
                          /*tile=*/32);
    unsigned g = sim.generatorFor(0, 0);
    EXPECT_EQ(sim.generatorFor(31, 31), g);
    // Some other tile lands elsewhere (the policy spreads work).
    bool differs = false;
    for (int t = 1; t < 8 && !differs; ++t)
        differs = sim.generatorFor(t * 32, 0) != g;
    EXPECT_TRUE(differs);
}

TEST(Parallel, SingleGeneratorMatchesPlainCache)
{
    Scene scene = makeQuadTestScene(128, 96);
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    SceneLayout layout(scene, p);

    MultiGeneratorSim sim(1, WorkDistribution::ScanlineInterleaved,
                          kCache);
    CacheSim plain(kCache);

    RenderOptions opts;
    opts.captureTrace = true;
    opts.onFragment = [&](const Fragment &f, const SampleResult &s,
                          uint16_t tex) {
        Addr addrs[24];
        unsigned n = 0;
        for (unsigned i = 0; i < s.numTouches; ++i) {
            Addr out[3];
            unsigned k = layout.layout(tex).addresses(
                {s.touches[i].level, s.touches[i].u, s.touches[i].v},
                out);
            for (unsigned j = 0; j < k; ++j)
                addrs[n++] = out[j];
        }
        sim.addFragment(f.x, f.y, addrs, n);
    };
    RenderOutput out = render(scene, RasterOrder::horizontal(), opts);

    layout.forEachAddress(out.trace, [&](Addr a) { plain.access(a); });

    ParallelStats stats = sim.finish();
    ASSERT_EQ(stats.perGenerator.size(), 1u);
    EXPECT_EQ(stats.perGenerator[0].accesses, plain.stats().accesses);
    EXPECT_EQ(stats.perGenerator[0].misses, plain.stats().misses);
    EXPECT_EQ(stats.fragments, out.stats.fragments);
}

TEST(Parallel, MoreGeneratorsNeverReduceTotalTraffic)
{
    // Splitting one reference stream across private caches can only
    // lose reuse (textures are read-only; no communication).
    Scene scene = makeQuadTestScene(256, 128);
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    SceneLayout layout(scene, p);

    auto run = [&](unsigned n_gen) {
        MultiGeneratorSim sim(n_gen,
                              WorkDistribution::ScanlineInterleaved,
                              kCache, 32, 128);
        RenderOptions opts;
        opts.captureTrace = false;
        opts.writeFramebuffer = false;
        opts.countRepetition = false;
        opts.onFragment = [&](const Fragment &f, const SampleResult &s,
                              uint16_t tex) {
            Addr addrs[24];
            unsigned n = 0;
            for (unsigned i = 0; i < s.numTouches; ++i) {
                Addr out[3];
                unsigned k = layout.layout(tex).addresses(
                    {s.touches[i].level, s.touches[i].u,
                     s.touches[i].v},
                    out);
                for (unsigned j = 0; j < k; ++j)
                    addrs[n++] = out[j];
            }
            sim.addFragment(f.x, f.y, addrs, n);
        };
        render(scene, RasterOrder::horizontal(), opts);
        return sim.finish();
    };

    ParallelStats one = run(1);
    ParallelStats four = run(4);
    EXPECT_EQ(one.totalAccesses(), four.totalAccesses());
    EXPECT_GE(four.totalMisses(), one.totalMisses());
}

TEST(Parallel, LoadImbalanceIsOneWhenEven)
{
    MultiGeneratorSim sim(2, WorkDistribution::ScanlineInterleaved,
                          kCache);
    Addr a = 0;
    for (int y = 0; y < 64; ++y)
        sim.addFragment(0, y, &a, 1);
    ParallelStats stats = sim.finish();
    EXPECT_DOUBLE_EQ(stats.loadImbalance(), 1.0);
}

TEST(Parallel, ZeroGeneratorsIsFatal)
{
    EXPECT_EXIT(MultiGeneratorSim(0,
                                  WorkDistribution::ScanlineInterleaved,
                                  kCache),
                ::testing::ExitedWithCode(1), "at least one");
}

TEST(Parallel, DistributionNames)
{
    EXPECT_STREQ(
        workDistributionName(WorkDistribution::ScanlineInterleaved),
        "scanline-interleaved");
    EXPECT_STREQ(workDistributionName(WorkDistribution::TileInterleaved),
                 "tile-interleaved");
    EXPECT_STREQ(workDistributionName(WorkDistribution::Bands), "bands");
}
