#include "trace/trace_stats.hh"

namespace texcache {

TraceStats
analyzeTrace(const TexelTrace &trace)
{
    TraceStats stats;
    // Unique-texel sets, one per filter role; key = packed coordinates
    // without the kind bits so roles are tracked independently.
    std::unordered_set<uint64_t> uniq[4];

    bool have_prev = false;
    uint16_t prev_tex = 0;

    trace.forEach([&](const TexelRecord &r) {
        ++stats.accesses;
        unsigned k = static_cast<unsigned>(r.kind);
        PerTexelStats *per;
        switch (k) {
          case 0:
            per = &stats.bilinear;
            break;
          case 1:
            per = &stats.trilinearLower;
            break;
          case 2:
            per = &stats.trilinearUpper;
            break;
          default:
            per = &stats.nearest;
            break;
        }
        ++per->accesses;
        uint64_t key = static_cast<uint64_t>(r.u) |
                       (static_cast<uint64_t>(r.v) << 16) |
                       (static_cast<uint64_t>(r.level) << 32) |
                       (static_cast<uint64_t>(r.texture) << 37);
        if (uniq[k].insert(key).second)
            ++per->uniqueTexels;

        if (!have_prev || r.texture != prev_tex) {
            ++stats.textureRuns;
            prev_tex = r.texture;
            have_prev = true;
        }
    });
    return stats;
}

} // namespace texcache
