/**
 * @file
 * Texture memory representations (the paper's sections 5 and 6.2).
 *
 * A TextureLayout maps a texel coordinate (level, u, v) of one mip-mapped
 * texture to the byte address(es) the hardware would read. Five
 * representations are implemented:
 *
 *  - WilliamsLayout       Fig 5.1(a): component planes in one quadtree
 *                         arrangement; three 1-byte accesses per texel.
 *  - NonblockedLayout     Fig 5.1(b): the base representation; one
 *                         row-major 2-D RGBA array per level.
 *  - BlockedLayout        section 5.3: 4-D arrays of bw x bh texel blocks.
 *  - PaddedBlockedLayout  section 6.2 / Fig 6.3(a): blocked plus pad
 *                         blocks at the end of each block row.
 *  - Blocked6DLayout      section 6.2 / Fig 6.3(b): two-level blocking
 *                         (texels in blocks, blocks in cache-sized
 *                         super-blocks).
 */

#ifndef TEXCACHE_LAYOUT_LAYOUT_HH
#define TEXCACHE_LAYOUT_LAYOUT_HH

#include <memory>
#include <string>
#include <vector>

#include "layout/address_space.hh"
#include "texture/mipmap.hh"
#include "texture/sampler.hh"

namespace texcache {

/** Dimensions of each level of a pyramid (layouts never need pixels). */
struct LevelDims
{
    unsigned w;
    unsigned h;
};

/** Extract per-level dimensions from a mip map. */
std::vector<LevelDims> levelDims(const MipMap &mip);

/** Per-texel addressing cost of a representation (paper Table 2.1 and
 *  sections 5.2.1 / 5.3.1 / 6.2). Shift-by-constant operations are
 *  counted separately from general shifts as the paper does. */
struct AddressingCost
{
    unsigned adds = 0;
    unsigned shifts = 0;       ///< variable-amount shifts
    unsigned constShifts = 0;  ///< fixed-amount shifts (wiring in HW)
    unsigned ands = 0;         ///< bit-field masks
    unsigned accessesPerTexel = 1;
};

/**
 * Maps texel coordinates of one texture to simulated memory addresses.
 *
 * Subclasses place the pyramid in an AddressSpace at construction and
 * then serve address queries. All power-of-two assumptions of the paper
 * (texture, block and pad dimensions) are checked at construction.
 */
class TextureLayout
{
  public:
    virtual ~TextureLayout() = default;

    /**
     * Compute the memory addresses read for one texel touch.
     *
     * @param t     texel coordinate (level, u, v); must be in range.
     * @param out   receives 1..3 byte addresses.
     * @return number of addresses written (3 for Williams, else 1).
     */
    virtual unsigned addresses(const TexelTouch &t, Addr out[3]) const = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;

    /** Static per-texel addressing cost of this representation. */
    virtual AddressingCost cost() const = 0;

    /** Total bytes this texture occupies under this representation. */
    uint64_t footprint() const { return footprint_; }

    /** Number of pyramid levels. */
    unsigned numLevels() const
    {
        return static_cast<unsigned>(dims_.size());
    }

    /** Dimensions of level @p l. */
    LevelDims
    dims(unsigned l) const
    {
        panic_if(l >= dims_.size(), "level ", l, " out of range");
        return dims_[l];
    }

  protected:
    explicit TextureLayout(std::vector<LevelDims> dims)
        : dims_(std::move(dims))
    {
        fatal_if(dims_.empty(), "layout with no levels");
        for (const LevelDims &d : dims_) {
            fatal_if(!isPowerOfTwo(d.w) || !isPowerOfTwo(d.h),
                     "texture level ", d.w, "x", d.h,
                     " is not power-of-two");
        }
    }

    std::vector<LevelDims> dims_;
    uint64_t footprint_ = 0;
};

/** Which representation to build. */
enum class LayoutKind
{
    Williams,
    Nonblocked,
    Blocked,
    PaddedBlocked,
    Blocked6D,
    CompressedBlocked, ///< extension: fixed-rate compressed blocks
};

/** Parameters shared by the blocked family. */
struct LayoutParams
{
    LayoutKind kind = LayoutKind::Nonblocked;
    unsigned blockW = 4;      ///< block width in texels (power of two)
    unsigned blockH = 4;      ///< block height in texels (power of two)
    unsigned padBlocks = 4;   ///< pad blocks per block row (power of two)
    uint64_t coarseBytes = 32 * 1024; ///< 6-D super-block budget (bytes)
    unsigned compressionRatio = 8;    ///< compressed layout rate (N:1)
    /** Allocation alignment for each texture array (power of two).
     *  The default mimics page-aligned mallocs; because texture bases
     *  then share low address bits, it is the worst case for
     *  inter-texture cache conflicts. */
    uint64_t baseAlign = 4096;
};

/** Short display name for a layout kind. */
const char *layoutKindName(LayoutKind kind);

/**
 * Build a layout for a texture with the given level dimensions, placing
 * it in @p space.
 */
std::unique_ptr<TextureLayout> makeLayout(const LayoutParams &params,
                                          const std::vector<LevelDims> &d,
                                          AddressSpace &space);

} // namespace texcache

#endif // TEXCACHE_LAYOUT_LAYOUT_HH
