#include "core/experiment.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>

#include "perf/perf_counters.hh"
#include "trace/chunked_trace.hh"
#include "trace/trace_io.hh"

namespace texcache {

namespace {

/**
 * Trace-cache key material. The schema constant must be bumped
 * whenever the packed record format changes; the build stamp rotates
 * whenever this translation unit (or any header it includes -
 * renderer, scenes, sampler) is recompiled, which invalidates cached
 * traces across builds. A stale cache is still possible after an
 * incremental rebuild that does not touch this TU; the cache is
 * opt-in via TEXCACHE_TRACE_CACHE_DIR for exactly that reason.
 */
constexpr uint64_t kTraceSchema = 1;

uint64_t
fnv1a(const std::string &s, uint64_t h = 1469598103934665603ULL)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/** Write @p trace to @p path via a temp file so readers never see a
 *  torn file (benches may share one cache directory). */
void
writeTraceCache(const TexelTrace &trace, const std::string &path)
{
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    std::string tmp = path + ".tmp";
    writeTrace(trace, tmp);
    std::rename(tmp.c_str(), path.c_str());
}

} // namespace

SceneSpec
SceneSpec::quadScene(unsigned tex, unsigned screen, float repeat)
{
    SceneSpec s;
    s.quad = true;
    s.quadTex = tex;
    s.quadScreen = screen;
    s.quadRepeat = repeat;
    return s;
}

std::string
SceneSpec::key() const
{
    if (!quad)
        return benchSceneName(bench);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "quad-%ux%u-r%g", quadTex,
                  quadScreen, static_cast<double>(quadRepeat));
    return buf;
}

Scene
SceneSpec::build() const
{
    return quad ? makeQuadTestScene(quadTex, quadScreen, quadRepeat)
                : makeScene(bench);
}

namespace {

/** Shared trace-cache naming: <dir>/<scene>-<order>-<stamp><ext>. */
std::string
cacheEntryPath(const SceneSpec &s, const RasterOrder &order,
               const std::string &dir, uint64_t revision,
               const char *ext)
{
    // Key material: build stamp, record schema, render-path revision.
    // The revision keeps traces from an older execution model (e.g.
    // the serial-only renderer) from masking a trace-generation bug in
    // a newer one even when the build stamp happens to survive an
    // incremental rebuild.
    uint64_t h = fnv1a(__DATE__ " " __TIME__,
                       fnv1a(std::to_string(kTraceSchema)));
    h = fnv1a(std::to_string(revision), h);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h));
    return dir + "/" + s.key() + "-" + order.str() + "-" + hex + ext;
}

/** @p dir, or TEXCACHE_TRACE_CACHE_DIR, or "". */
std::string
cacheDirOrEnv(const std::string &dir)
{
    if (!dir.empty())
        return dir;
    const char *env = std::getenv("TEXCACHE_TRACE_CACHE_DIR");
    return env && *env ? env : "";
}

} // namespace

std::string
traceCachePath(const SceneSpec &s, const RasterOrder &order,
               uint64_t revision)
{
    std::string dir = cacheDirOrEnv("");
    if (dir.empty())
        return "";
    return cacheEntryPath(s, order, dir, revision, ".trace");
}

std::string
chunkedTracePath(const SceneSpec &s, const RasterOrder &order,
                 const std::string &dir, uint64_t revision)
{
    std::string d = cacheDirOrEnv(dir);
    if (d.empty())
        return "";
    return cacheEntryPath(s, order, d, revision, ".ctrace");
}

uint64_t
traceCacheCapBytes()
{
    const char *env = std::getenv("TEXCACHE_TRACE_CACHE_CAP");
    if (!env || !*env)
        return 0;
    char *rest = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(env, &rest, 10);
    uint64_t mult = 1;
    if (rest != env && *rest) {
        switch (*rest) {
          case 'k': case 'K': mult = 1ull << 10; ++rest; break;
          case 'm': case 'M': mult = 1ull << 20; ++rest; break;
          case 'g': case 'G': mult = 1ull << 30; ++rest; break;
          default: break;
        }
    }
    fatal_if(rest == env || *rest || errno == ERANGE,
             "TEXCACHE_TRACE_CACHE_CAP='", env,
             "' is not a byte count (expected digits with optional "
             "K/M/G suffix)");
    return v * mult;
}

uint64_t
pruneTraceCache(const std::string &dir, uint64_t cap_bytes,
                const std::string &keep)
{
    namespace fs = std::filesystem;
    if (!cap_bytes || dir.empty())
        return 0;

    struct Entry
    {
        fs::path path;
        uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir, ec)) {
        if (!de.is_regular_file(ec))
            continue;
        std::string ext = de.path().extension().string();
        if (ext != ".trace" && ext != ".ctrace" && ext != ".tmp")
            continue;
        uint64_t bytes = de.file_size(ec);
        if (ec)
            continue;
        total += bytes;
        entries.push_back({de.path(), bytes,
                           fs::last_write_time(de.path(), ec)});
    }
    if (total <= cap_bytes)
        return 0;

    // LRU by mtime: evict the least recently written first.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    uint64_t pruned = 0;
    for (const Entry &e : entries) {
        if (total <= cap_bytes)
            break;
        if (!keep.empty() && fs::path(keep) == e.path)
            continue;
        if (!fs::remove(e.path, ec))
            continue;
        total -= e.bytes;
        pruned += e.bytes;
        inform("trace cache: pruned ", e.path.string(), " (", e.bytes,
               " bytes) to meet cap ", cap_bytes);
    }
    return pruned;
}

const Scene &
TraceStore::scene(const SceneSpec &s)
{
    std::string key = s.key();
    auto it = scenes_.find(key);
    if (it == scenes_.end()) {
        inform("building scene ", key);
        it = scenes_.emplace(std::move(key), s.build()).first;
    }
    return it->second;
}

const RenderOutput &
TraceStore::output(const SceneSpec &s, const RasterOrder &order)
{
    auto key = std::make_pair(s.key(), order.str());
    auto it = outputs_.find(key);
    if (it == outputs_.end()) {
        const Scene &sc = scene(s);
        inform("rendering ", key.first, " (", order.str(), ")");
        RenderOptions opts;
        opts.writeFramebuffer = false; // figures need traces only
        auto t0 = std::chrono::steady_clock::now();
        it = outputs_.emplace(key, render(sc, order, opts)).first;
        // Single-writer (dispatcher) accounting; relaxed stores pair
        // with the relaxed reads in the metrics snapshot.
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        renderMillis_.store(
            renderMillis_.load(std::memory_order_relaxed) + ms,
            std::memory_order_relaxed);
        renders_.fetch_add(1, std::memory_order_relaxed);
        std::string path = traceCachePath(s, order);
        if (!path.empty() && !std::filesystem::exists(path)) {
            writeTraceCache(it->second.trace, path);
            pruneTraceCache(
                std::filesystem::path(path).parent_path().string(),
                traceCacheCapBytes(), path);
        }
    }
    return it->second;
}

const TexelTrace &
TraceStore::trace(const SceneSpec &s, const RasterOrder &order)
{
    auto key = std::make_pair(s.key(), order.str());
    if (auto it = outputs_.find(key); it != outputs_.end())
        return it->second.trace;
    if (auto it = diskTraces_.find(key); it != diskTraces_.end())
        return it->second;
    std::string path = traceCachePath(s, order);
    if (!path.empty() && std::filesystem::exists(path)) {
        inform("trace cache hit: ", path);
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        auto it = diskTraces_.emplace(key, readTrace(path)).first;
        return it->second;
    }
    return output(s, order).trace;
}

std::string
TraceStore::spillTrace(const SceneSpec &s, const RasterOrder &order,
                       const std::string &dir)
{
    std::string path = chunkedTracePath(s, order, dir);
    fatal_if(path.empty(),
             "spillTrace needs a cache directory (argument or "
             "TEXCACHE_TRACE_CACHE_DIR)");

    if (std::filesystem::exists(path)) {
        ChunkedTraceFile f;
        TraceFileError err;
        if (f.open(path, err)) {
            inform("chunked trace cache hit: ", path);
            diskHits_.fetch_add(1, std::memory_order_relaxed);
            // The cap holds in the all-hits steady state too (the
            // cap may have been lowered since the file was written).
            pruneTraceCache(
                std::filesystem::path(path).parent_path().string(),
                traceCacheCapBytes(), path);
            return path;
        }
        // A torn writer run (crash before finalize) or foreign bytes
        // under our name: re-render over it.
        inform("chunked trace ", path, " rejected (", err.str(),
               "); re-rendering");
    }

    const Scene &sc = scene(s);
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    std::string tmp = path + ".tmp";
    inform("rendering ", s.key(), " (", order.str(),
           ") streamed to ", path);
    auto t0 = std::chrono::steady_clock::now();
    {
        ChunkedTraceWriter writer(tmp);
        RenderOptions opts;
        opts.writeFramebuffer = false;
        opts.countRepetition = false;
        opts.traceSink = &writer;
        render(sc, order, opts);
        writer.finalize();
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    renderMillis_.store(
        renderMillis_.load(std::memory_order_relaxed) + ms,
        std::memory_order_relaxed);
    renders_.fetch_add(1, std::memory_order_relaxed);
    fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
             "cannot move ", tmp, " into place");
    pruneTraceCache(std::filesystem::path(path).parent_path().string(),
                    traceCacheCapBytes(), path);
    return path;
}

StackDistProfiler
profileTrace(const TexelTrace &trace, const SceneLayout &layout,
             unsigned line_bytes)
{
    StackDistProfiler prof(line_bytes);
    perf::addSimulatedAccesses(trace.size());
    std::vector<Addr> buf;
    for (size_t i = 0; i < trace.size(); i += SceneLayout::kMapChunk) {
        size_t end = std::min(trace.size(), i + SceneLayout::kMapChunk);
        layout.mapRange(trace, i, end, buf);
        for (Addr a : buf)
            prof.access(a);
    }
    return prof;
}

CacheStats
runCache(const TexelTrace &trace, const SceneLayout &layout,
         const CacheConfig &config)
{
    // CacheSim internally takes the O(1) fully associative path for
    // large kFullyAssoc configs, so one code path serves both.
    CacheSim cache(config);
    perf::addSimulatedAccesses(trace.size());
    std::vector<Addr> buf;
    for (size_t i = 0; i < trace.size(); i += SceneLayout::kMapChunk) {
        size_t end = std::min(trace.size(), i + SceneLayout::kMapChunk);
        layout.mapRange(trace, i, end, buf);
        for (Addr a : buf)
            cache.access(a);
    }
    return cache.stats();
}

MissBreakdown
classifyCache(const TexelTrace &trace, const SceneLayout &layout,
              const CacheConfig &config)
{
    MissClassifier cls(config);
    perf::addSimulatedAccesses(trace.size());
    std::vector<Addr> buf;
    for (size_t i = 0; i < trace.size(); i += SceneLayout::kMapChunk) {
        size_t end = std::min(trace.size(), i + SceneLayout::kMapChunk);
        layout.mapRange(trace, i, end, buf);
        for (Addr a : buf)
            cls.access(a);
    }
    return cls.breakdown();
}

std::vector<CacheStats>
runFaSweep(const TexelTrace &trace, const SceneLayout &layout,
           unsigned line_bytes, const std::vector<uint64_t> &sizes)
{
    FaCapacitySweep sweep(line_bytes, sizes);
    perf::addSimulatedAccesses(trace.size());
    std::vector<Addr> buf;
    for (size_t i = 0; i < trace.size(); i += SceneLayout::kMapChunk) {
        size_t end = std::min(trace.size(), i + SceneLayout::kMapChunk);
        layout.mapRange(trace, i, end, buf);
        sweep.accessRange(buf.data(), buf.size());
    }
    return sweep.stats();
}

std::vector<CacheStats>
runCacheGroup(const TexelTrace &trace, const SceneLayout &layout,
              const std::vector<CacheConfig> &configs)
{
    GroupSim group(configs);
    perf::addSimulatedAccesses(trace.size());
    std::vector<Addr> buf;
    for (size_t i = 0; i < trace.size(); i += SceneLayout::kMapChunk) {
        size_t end = std::min(trace.size(), i + SceneLayout::kMapChunk);
        layout.mapRange(trace, i, end, buf);
        group.accessRange(buf.data(), buf.size());
    }
    return group.stats();
}

std::vector<CacheStats>
runCacheSweep(const TexelTrace &trace, const SceneLayout &layout,
              const std::vector<CacheConfig> &configs)
{
    // Partition the configs into single-pass tasks: one stack-distance
    // pass per distinct fully-associative line size, one grouped
    // replay per set-associative (size, line) family.
    struct Task
    {
        bool fa = false;
        unsigned line = 0;
        std::vector<uint64_t> sizes;     ///< FA capacities
        std::vector<CacheConfig> cfgs;   ///< set-associative members
        std::vector<size_t> indices;     ///< positions in `configs`
    };
    std::map<unsigned, size_t> fa_tasks; // line -> task index
    std::map<std::pair<uint64_t, unsigned>, size_t> sa_tasks;
    std::vector<Task> tasks;

    for (size_t i = 0; i < configs.size(); ++i) {
        const CacheConfig &c = configs[i];
        if (c.assoc == CacheConfig::kFullyAssoc) {
            auto [it, fresh] =
                fa_tasks.try_emplace(c.lineBytes, tasks.size());
            if (fresh) {
                tasks.emplace_back();
                tasks.back().fa = true;
                tasks.back().line = c.lineBytes;
            }
            Task &t = tasks[it->second];
            t.sizes.push_back(c.sizeBytes);
            t.indices.push_back(i);
        } else {
            auto [it, fresh] = sa_tasks.try_emplace(
                std::make_pair(c.sizeBytes, c.lineBytes), tasks.size());
            if (fresh)
                tasks.emplace_back();
            Task &t = tasks[it->second];
            t.cfgs.push_back(c);
            t.indices.push_back(i);
        }
    }

    auto results = Sweep::run(tasks, [&](const Task &t) {
        return t.fa ? runFaSweep(trace, layout, t.line, t.sizes)
                    : runCacheGroup(trace, layout, t.cfgs);
    });

    std::vector<CacheStats> out(configs.size());
    for (size_t t = 0; t < tasks.size(); ++t)
        for (size_t k = 0; k < tasks[t].indices.size(); ++k)
            out[tasks[t].indices[k]] = results[t].value[k];
    return out;
}

std::vector<uint64_t>
cacheSizeSweep(uint64_t lo, uint64_t hi)
{
    std::vector<uint64_t> sizes;
    for (uint64_t s = lo; s <= hi; s <<= 1)
        sizes.push_back(s);
    return sizes;
}

uint64_t
firstWorkingSet(const std::vector<double> &rates,
                const std::vector<uint64_t> &sizes, double capture)
{
    panic_if(sizes.empty(), "empty size sweep");
    panic_if(rates.size() != sizes.size(),
             "working-set scan needs one rate per size");
    // The first significant working set is where the steep part of the
    // miss-rate curve ends: the smallest size capturing at least
    // `capture` of the achievable miss-rate reduction between the
    // smallest and largest swept caches (section 5.2.3).
    double top = rates.front();
    double floor_rate = rates.back();
    double threshold = top - capture * (top - floor_rate);
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (rates[i] <= threshold)
            return sizes[i];
    }
    return sizes.back();
}

uint64_t
firstWorkingSet(const StackDistProfiler &prof,
                const std::vector<uint64_t> &sizes, double capture)
{
    std::vector<double> rates;
    rates.reserve(sizes.size());
    for (uint64_t s : sizes)
        rates.push_back(prof.missRate(s));
    return firstWorkingSet(rates, sizes, capture);
}

} // namespace texcache
