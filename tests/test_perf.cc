/**
 * @file
 * Tests for the host perf-counter layer (src/perf/). Hardware
 * counters are frequently unavailable (containers, paranoid sysctl,
 * non-Linux), so every test here must pass in BOTH states: the
 * availability-dependent assertions are gated on perf::available()
 * and the degradation contract is asserted when it is false.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "perf/perf_counters.hh"

using namespace texcache;

TEST(PerfCounters, AvailabilityIsStableAndExplained)
{
    bool first = perf::available();
    // Stable after process start: repeated queries agree.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(first, perf::available());
    if (first) {
        EXPECT_TRUE(perf::unavailableReason().empty());
    } else {
        // Degradation is explained, never silent.
        EXPECT_FALSE(perf::unavailableReason().empty());
    }
}

TEST(PerfCounters, ReadMatchesAvailability)
{
    perf::Reading r = perf::read();
    EXPECT_EQ(perf::available(), r.available);
    if (!r.available) {
        // Unavailable reads are all-zero, so downstream ratio helpers
        // divide by nothing and consumers can emit them blindly.
        EXPECT_EQ(r.cycles, 0u);
        EXPECT_EQ(r.instructions, 0u);
        EXPECT_EQ(r.llcLoads, 0u);
        EXPECT_EQ(r.llcMisses, 0u);
        EXPECT_EQ(r.branchMisses, 0u);
        EXPECT_EQ(r.ipc(), 0.0);
        EXPECT_EQ(r.llcMissRate(), 0.0);
    }
}

TEST(PerfCounters, CumulativeReadsAreMonotone)
{
    if (!perf::available())
        GTEST_SKIP() << "perf unavailable: "
                     << perf::unavailableReason();
    perf::Reading a = perf::read();
    // Burn some user-space work between the two readings.
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 2000000; ++i)
        sink += i * 2654435761u;
    perf::Reading b = perf::read();
    EXPECT_GE(b.cycles, a.cycles);
    EXPECT_GE(b.instructions, a.instructions);
    // The busy loop retired a visible number of instructions.
    perf::Reading d = b.since(a);
    EXPECT_GT(d.instructions, 100000u);
    EXPECT_GT(d.cycles, 0u);
    EXPECT_GT(d.ipc(), 0.0);
}

TEST(PerfCounters, SinceSubtractsCounterWise)
{
    perf::Reading a, b;
    a.available = b.available = true;
    a.cycles = 100;
    a.instructions = 50;
    a.llcLoads = 10;
    a.llcMisses = 4;
    a.branchMisses = 2;
    b.cycles = 300;
    b.instructions = 450;
    b.llcLoads = 30;
    b.llcMisses = 5;
    b.branchMisses = 2;
    b.multiplexed = true;

    perf::Reading d = b.since(a);
    EXPECT_TRUE(d.available);
    EXPECT_TRUE(d.multiplexed); // flags OR together
    EXPECT_EQ(d.cycles, 200u);
    EXPECT_EQ(d.instructions, 400u);
    EXPECT_EQ(d.llcLoads, 20u);
    EXPECT_EQ(d.llcMisses, 1u);
    EXPECT_EQ(d.branchMisses, 0u);
    EXPECT_DOUBLE_EQ(d.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(d.llcMissRate(), 0.05);
}

TEST(PerfCounters, SimulatedAccessesAccumulateAcrossThreads)
{
    // The denominator works regardless of counter availability - it
    // is plain software accounting.
    uint64_t before = perf::simulatedAccesses();
    perf::addSimulatedAccesses(1000);
    EXPECT_EQ(perf::simulatedAccesses(), before + 1000);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < 100; ++i)
                perf::addSimulatedAccesses(10);
        });
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(perf::simulatedAccesses(), before + 1000 + 4 * 100 * 10);
}
