/**
 * @file
 * Ablation for the paper's inter-frame locality remark (section
 * 3.1.2): "We generally do not expect our caches to exploit temporal
 * locality between consecutive frames because the cache sizes that we
 * consider are much smaller than the amount of texture data that is
 * typically used by a single frame. Between memory and disk, however,
 * this kind of temporal locality is of interest."
 *
 * Two consecutive Flight frames (the camera advances ~60 world units)
 * are rendered and their traces concatenated. For each memory size,
 * the table shows frame 2's miss rate given a store warmed by frame 1,
 * versus frame 2 run cold. Cache-sized stores (<= 128 KB) gain
 * nothing; texture-sized stores (MBs) make frame 2 nearly free - the
 * memory-vs-disk regime the paper points to.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    inform("building two Flight frames");
    Scene frame1 = makeFlightSceneAt(0.0f);
    Scene frame2 = makeFlightSceneAt(1.0f);

    RenderOptions opts;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    RasterOrder order = RasterOrder::tiledOrder(8, 8);
    RenderOutput out1 = render(frame1, order, opts);
    RenderOutput out2 = render(frame2, order, opts);

    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;
    // Both frames share the same textures, so either scene's layout
    // describes the address space (textures are placed identically).
    SceneLayout layout(frame1, params);

    constexpr unsigned kLine = 128;

    TextTable table("Section 3.1.2: inter-frame temporal locality, "
                    "Flight frames t and t+1, FA LRU, 128B lines");
    table.header({"Store size", "Frame2 cold", "Frame2 after frame1",
                  "Inter-frame benefit"});

    for (uint64_t size :
         {32ull << 10, 128ull << 10, 512ull << 10, 2ull << 20,
          8ull << 20, 32ull << 20}) {
        // Cold: frame 2 alone.
        FullyAssocLru cold(size, kLine);
        layout.forEachAddress(out2.trace,
                              [&](Addr a) { cold.access(a); });
        double cold_rate = cold.stats().missRate();

        // Warm: frame 1 then frame 2; report frame 2's portion.
        FullyAssocLru warm(size, kLine);
        layout.forEachAddress(out1.trace,
                              [&](Addr a) { warm.access(a); });
        uint64_t misses_before = warm.stats().misses;
        uint64_t accesses_before = warm.stats().accesses;
        layout.forEachAddress(out2.trace,
                              [&](Addr a) { warm.access(a); });
        double warm_rate =
            static_cast<double>(warm.stats().misses - misses_before) /
            static_cast<double>(warm.stats().accesses -
                                accesses_before);

        table.row({fmtBytes(size), fmtPercent(cold_rate),
                   fmtPercent(warm_rate),
                   fmtFixed(warm_rate > 0 ? cold_rate / warm_rate
                                          : 0.0,
                            1) +
                       "x"});
    }
    table.print(std::cout);
    std::cout << "\nExpectation: no benefit at cache-like sizes "
                 "(working sets are per-frame); large benefit once the "
                 "store holds a frame's full texture footprint.\n";
    return 0;
}
