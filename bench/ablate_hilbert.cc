/**
 * @file
 * Ablation for the paper's footnote 1: "The screen rasterization path
 * that would lead to the smallest working set would follow a
 * Peano-Hilbert order."
 *
 * Compares fully associative miss rates across cache sizes for
 * row-major scan, 8x8 tiled, and Hilbert-curve traversal on the two
 * large-triangle scenes (where traversal order matters most) under the
 * blocked representation.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    constexpr unsigned kLine = 128;
    LayoutParams params;
    params.kind = LayoutKind::Blocked;
    params.blockW = params.blockH = 8;

    std::vector<uint64_t> sizes = cacheSizeSweep(1 << 10, 32 << 10);

    for (BenchScene s : {BenchScene::Guitar, BenchScene::Town}) {
        TextTable table(std::string("Footnote 1: traversal order vs "
                                    "working set, ") +
                        benchSceneName(s) +
                        ", blocked 8x8, 128B lines, FA");
        std::vector<std::string> header = {"Order"};
        for (uint64_t sz : sizes)
            header.push_back(fmtBytes(sz));
        table.header(header);

        struct OrderChoice
        {
            const char *label;
            RasterOrder order;
        };
        const OrderChoice orders[] = {
            {"row-major", RasterOrder::horizontal()},
            {"tiled 8x8", RasterOrder::tiledOrder(8, 8)},
            {"hilbert", RasterOrder::hilbertOrder()},
        };

        for (const OrderChoice &oc : orders) {
            const RenderOutput &out = store().output(s, oc.order);
            SceneLayout layout(store().scene(s), params);
            StackDistProfiler prof =
                profileTrace(out.trace, layout, kLine);
            std::vector<std::string> row = {oc.label};
            for (uint64_t size : sizes)
                row.push_back(fmtPercent(prof.missRate(size)));
            table.row(row);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Expectation: hilbert <= tiled <= row-major at small "
                 "cache sizes; all converge to the cold floor.\n";
    return 0;
}
