/**
 * @file
 * Triangle setup: edge functions and perspective-correct attribute
 * planes.
 *
 * 1/w, u/w, v/w, depth and shade all vary linearly in screen space, so
 * setup solves one 3x3 system per attribute (expressed via barycentric
 * edge functions). Per-fragment evaluation then recovers
 * perspective-correct u, v and their analytic screen-space derivatives,
 * which feed the mip-map level-of-detail computation.
 */

#ifndef TEXCACHE_RASTER_TRIANGLE_HH
#define TEXCACHE_RASTER_TRIANGLE_HH

#include "raster/raster_types.hh"

namespace texcache {

/** Inclusive pixel bounding box. */
struct PixelRect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = -1; ///< inclusive; empty when x1 < x0
    int y1 = -1;

    bool empty() const { return x1 < x0 || y1 < y0; }
};

/** A triangle ready for traversal. */
class TriangleSetup
{
  public:
    /**
     * Prepare a triangle from three screen-space vertices. Degenerate
     * (zero-area) triangles yield valid() == false and cover nothing.
     */
    TriangleSetup(const ScreenVertex &a, const ScreenVertex &b,
                  const ScreenVertex &c);

    bool valid() const { return valid_; }

    /** Pixel bounding box clipped to a width x height screen. */
    PixelRect bounds(unsigned screen_w, unsigned screen_h) const;

    /**
     * Test pixel (x, y) (sampled at its center) against the triangle
     * with a top-left fill rule, and produce the fragment's attributes
     * if covered.
     *
     * @return true and fills @p frag when the pixel is covered.
     */
    bool shade(int x, int y, Fragment &frag) const;

    /** The coverage test of shade() alone (exact, including the
     *  positive-1/w requirement). */
    bool covers(int x, int y) const;

    /** Attribute evaluation without the coverage test; only valid for
     *  pixels covers() accepts (the span rasterizer's interior). */
    void attributesAt(int x, int y, Fragment &frag) const;

    /** Read-only view of edge i's half-plane (for span setup). */
    struct EdgeView
    {
        float e0, ex, ey;
        bool topLeft;
    };

    EdgeView
    edge(int i) const
    {
        return {edges_[i].e0, edges_[i].ex, edges_[i].ey, topLeft_[i]};
    }

    /** 1/w plane coefficients (for span setup's positivity bound). */
    EdgeView
    invWPlane() const
    {
        return {invW_.e0, invW_.ex, invW_.ey, false};
    }

    /** u/w plane coefficients (for the SIMD span kernels). */
    EdgeView
    uOverWPlane() const
    {
        return {uOverW_.e0, uOverW_.ex, uOverW_.ey, false};
    }

    /** v/w plane coefficients (for the SIMD span kernels). */
    EdgeView
    vOverWPlane() const
    {
        return {vOverW_.e0, vOverW_.ex, vOverW_.ey, false};
    }

    /** Signed double area in pixels^2 (positive after orientation fix). */
    float area2() const { return area2_; }

  private:
    /** An affine screen-space function e0 + ex * x + ey * y. */
    struct Plane
    {
        float e0 = 0.0f;
        float ex = 0.0f;
        float ey = 0.0f;

        float
        at(float x, float y) const
        {
            return e0 + ex * x + ey * y;
        }
    };

    static Plane fromValues(const ScreenVertex &a, const ScreenVertex &b,
                            const ScreenVertex &c, float va, float vb,
                            float vc, float inv_area2);

    bool valid_ = false;
    float area2_ = 0.0f;
    float minX_, minY_, maxX_, maxY_;

    // Edge functions; pixel covered when all three >= 0 (with top-left
    // tie-breaking). Each edge i is opposite vertex i.
    Plane edges_[3];
    bool topLeft_[3];

    // Attribute planes (linear in screen space).
    Plane invW_;
    Plane uOverW_;
    Plane vOverW_;
    Plane depth_;
    Plane shade_;
};

} // namespace texcache

#endif // TEXCACHE_RASTER_TRIANGLE_HH
