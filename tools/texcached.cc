/**
 * @file
 * texcached: the simulation-as-a-service daemon.
 *
 * Serves texcache-bench-1 manifests over an AF_UNIX socket. One
 * frame in (a JSON request, service/request.hh schema), one frame
 * out (the deterministic manifest, or a typed error body). Each
 * accepted connection gets its own thread that blocks on the
 * ServiceEngine future; concurrency, batching and admission control
 * all live in the engine (service/engine.hh). One process-wide
 * TraceStore memoizes rendered traces across every request.
 *
 * Lifecycle: SIGINT/SIGTERM (self-pipe, async-signal-safe) and the
 * "shutdown" control request all take the same drain path - stop
 * accepting, let queued work finish, resolve every in-flight future,
 * dump the service stats tree to stderr and SERVICE_texcached.json
 * (TEXCACHE_STATS_DIR aware), flush the tracing rings when
 * TEXCACHE_TRACE is on, then exit 0. --once adds an idle timeout:
 * after --idle-ms with no connections and an empty queue the daemon
 * drains itself, which gives CI a deterministic end without kill(1).
 *
 * Telemetry: while running, the poll loop captures a stats snapshot
 * every --snapshot-ms (default 1000) into a bounded in-memory ring
 * (newest --snapshot-keep, default 120); the drain path dumps it to
 * SERVICE_texcached_snapshots.json - a flight recorder for the
 * daemon's final minutes. Live visibility goes through the "metrics"
 * control request (Prometheus exposition text; tools/texcached_top.py
 * renders it) which never pauses the engine.
 *
 * Usage:
 *   texcached --socket /tmp/texcached.sock [--queue-depth 64]
 *             [--batch-window-ms 5] [--once] [--idle-ms 2000]
 *             [--snapshot-ms 1000] [--snapshot-keep 120]
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/engine.hh"
#include "service/socket.hh"
#include "stats/snapshot.hh"
#include "tracing/tracing.hh"

using namespace texcache;
using namespace texcache::service;

namespace {

int gSignalPipe[2] = {-1, -1};

void
onSignal(int)
{
    char b = 1;
    // Best effort; the pipe is non-blocking and one byte suffices.
    [[maybe_unused]] ssize_t r = ::write(gSignalPipe[1], &b, 1);
}

struct Args
{
    std::string socketPath = "texcached.sock";
    size_t queueDepth = 64;
    unsigned batchWindowMs = 5;
    bool once = false;
    unsigned idleMs = 2000;
    unsigned snapshotMs = 1000; ///< periodic snapshot interval; 0 = off
    size_t snapshotKeep = 120;  ///< ring capacity (newest kept)
};

bool
parseArgs(int argc, char **argv, Args &args)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "texcached: " << what
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--socket") {
            const char *v = next("--socket");
            if (!v)
                return false;
            args.socketPath = v;
        } else if (a == "--queue-depth") {
            const char *v = next("--queue-depth");
            if (!v)
                return false;
            args.queueDepth = std::strtoul(v, nullptr, 10);
        } else if (a == "--batch-window-ms") {
            const char *v = next("--batch-window-ms");
            if (!v)
                return false;
            args.batchWindowMs = std::strtoul(v, nullptr, 10);
        } else if (a == "--once") {
            args.once = true;
        } else if (a == "--idle-ms") {
            const char *v = next("--idle-ms");
            if (!v)
                return false;
            args.idleMs = std::strtoul(v, nullptr, 10);
        } else if (a == "--snapshot-ms") {
            const char *v = next("--snapshot-ms");
            if (!v)
                return false;
            args.snapshotMs = std::strtoul(v, nullptr, 10);
        } else if (a == "--snapshot-keep") {
            const char *v = next("--snapshot-keep");
            if (!v)
                return false;
            args.snapshotKeep = std::strtoul(v, nullptr, 10);
            if (args.snapshotKeep == 0) {
                std::cerr << "texcached: --snapshot-keep must be > 0\n";
                return false;
            }
        } else if (a == "--help" || a == "-h") {
            std::cout
                << "usage: texcached [--socket PATH] "
                   "[--queue-depth N]\n"
                   "                 [--batch-window-ms N] [--once] "
                   "[--idle-ms N]\n"
                   "                 [--snapshot-ms N] "
                   "[--snapshot-keep N]\n";
            return false;
        } else {
            std::cerr << "texcached: unknown option " << a << "\n";
            return false;
        }
        if (args.queueDepth == 0) {
            std::cerr << "texcached: --queue-depth must be > 0\n";
            return false;
        }
    }
    return true;
}

/** Open client connections, so shutdown can unblock their reads. */
class ConnRegistry
{
  public:
    void
    add(int fd)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        fds_.insert(fd);
    }

    void
    remove(int fd)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        fds_.erase(fd);
    }

    size_t
    count() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return fds_.size();
    }

    /** SHUT_RDWR every live connection (readers return immediately). */
    void
    shutdownAll()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (int fd : fds_)
            ::shutdown(fd, SHUT_RDWR);
    }

  private:
    mutable std::mutex mutex_;
    std::set<int> fds_;
};

std::string
statsDumpPath(const char *name)
{
    const char *dir = std::getenv("TEXCACHE_STATS_DIR");
    if (dir && *dir)
        return std::string(dir) + "/" + name;
    return name;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 2;

    if (::pipe(gSignalPipe) != 0) {
        std::cerr << "texcached: pipe: " << std::strerror(errno)
                  << "\n";
        return 1;
    }
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    int listenFd = listenUnix(args.socketPath);
    if (listenFd < 0) {
        std::cerr << "texcached: cannot listen on " << args.socketPath
                  << ": " << std::strerror(errno) << "\n";
        return 1;
    }

    TraceStore store;
    ServiceEngine::Options opts;
    opts.queueDepth = args.queueDepth;
    opts.batchWindowMs = args.batchWindowMs;
    ServiceEngine engine(store, opts);

    inform("texcached listening on ", args.socketPath,
           " (queue depth ", args.queueDepth, ", batch window ",
           args.batchWindowMs, "ms", args.once ? ", --once" : "", ")");

    ConnRegistry conns;
    std::mutex threadsMutex;
    std::vector<std::thread> threads;
    // Any accept or completed request refreshes the idle clock.
    std::atomic<int64_t> lastActivityMs{
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count()};
    auto touchActivity = [&lastActivityMs] {
        lastActivityMs.store(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    };

    auto serveConnection = [&](int fd) {
        std::string body;
        while (readFrame(fd, body)) {
            std::string resp = engine.submit(body).get();
            touchActivity();
            bool wrote = writeFrame(fd, resp);
            if (engine.shutdownRequested())
                onSignal(0); // wake the accept loop; same drain path
            if (!wrote)
                break;
        }
        conns.remove(fd);
        ::close(fd);
        touchActivity();
    };

    // Flight recorder: periodic engine snapshots, newest N retained,
    // dumped on the drain path. Captured from this (accept) thread so
    // the engine is never paused and nothing extra synchronizes.
    stats::SnapshotRing snapshots(args.snapshotKeep);
    int64_t lastSnapshotMs = 0;

    for (;;) {
        pollfd fds[2] = {{listenFd, POLLIN, 0},
                         {gSignalPipe[0], POLLIN, 0}};
        int r = ::poll(fds, 2, 100);
        if (r < 0 && errno != EINTR)
            break;

        if (args.snapshotMs) {
            int64_t now =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now()
                        .time_since_epoch())
                    .count();
            if (now - lastSnapshotMs >=
                static_cast<int64_t>(args.snapshotMs)) {
                snapshots.push(engine.snapshot());
                lastSnapshotMs = now;
            }
        }

        if (r > 0 && (fds[1].revents & POLLIN))
            break; // signal or shutdown request

        if (r > 0 && (fds[0].revents & POLLIN)) {
            int cfd = ::accept(listenFd, nullptr, nullptr);
            if (cfd >= 0) {
                conns.add(cfd);
                touchActivity();
                std::lock_guard<std::mutex> lk(threadsMutex);
                threads.emplace_back(serveConnection, cfd);
            }
        }

        if (args.once && conns.count() == 0 &&
            engine.queueDepth() == 0) {
            int64_t now =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now()
                        .time_since_epoch())
                    .count();
            if (now - lastActivityMs.load() >=
                static_cast<int64_t>(args.idleMs)) {
                inform("texcached idle for ", args.idleMs,
                       "ms; draining (--once)");
                break;
            }
        }
    }

    // Drain: no new connections or requests, finish queued work,
    // resolve every in-flight response, then flush observability.
    ::close(listenFd);
    ::unlink(args.socketPath.c_str());
    engine.beginShutdown();
    conns.shutdownAll();
    {
        std::lock_guard<std::mutex> lk(threadsMutex);
        for (std::thread &t : threads)
            t.join();
    }
    engine.drain();

    std::string stats = engine.statsJson();
    std::cerr << "texcached service stats:\n" << stats;
    std::ofstream out(statsDumpPath("SERVICE_texcached.json"));
    if (out) {
        out << stats;
        inform("wrote service stats ",
               statsDumpPath("SERVICE_texcached.json"));
    }
    if (args.snapshotMs) {
        // Final capture so the dump always reflects end-of-life state,
        // then flush the ring.
        snapshots.push(engine.snapshot());
        std::string path =
            statsDumpPath("SERVICE_texcached_snapshots.json");
        std::ofstream snapOut(path);
        if (snapOut) {
            JsonWriter w(snapOut);
            snapshots.writeJson(w);
            snapOut << "\n";
            inform("wrote snapshot ring ", path, " (",
                   snapshots.size(), " of ", snapshots.pushed(),
                   " snapshots retained)");
        }
    }
    if (tracing::active()) {
        tracing::DumpInfo t = tracing::dumpToFiles("texcached");
        inform("flushed trace rings: ", t.recorded, " events (",
               t.dropped, " dropped)");
    }
    return 0;
}
