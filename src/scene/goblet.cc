/**
 * @file
 * The Goblet benchmark: a single texture wrapped around a surface of
 * revolution built from many small triangles (paper Fig 4.4).
 *
 * Published characteristics targeted (Table 4.1): 800x800, 7200
 * triangles (60 rings x 60 segments x 2) averaging ~41 px, one 512x512
 * texture (~1.4 MB). Level-of-detail varies sharply where the curved
 * surface turns 90 degrees to the viewing direction (the silhouette),
 * and the small triangles make the working set insensitive to screen
 * tiling (section 6.1).
 */

#include <cmath>

#include "img/procedural.hh"
#include "scene/benchmarks.hh"
#include "scene/mesh_util.hh"

namespace texcache {

namespace {

constexpr unsigned kRings = 60;
constexpr unsigned kSegments = 60;
constexpr float kPi = 3.14159265f;

/** Goblet profile: radius as a function of height t in [0, 1]. */
float
profileRadius(float t)
{
    // Control points (t, r) describing base, stem, and bowl.
    static const float ts[] = {0.00f, 0.04f, 0.10f, 0.20f, 0.45f,
                               0.55f, 0.70f, 0.85f, 1.00f};
    static const float rs[] = {0.40f, 0.38f, 0.10f, 0.07f, 0.08f,
                               0.28f, 0.42f, 0.46f, 0.44f};
    constexpr int n = 9;
    if (t <= ts[0])
        return rs[0];
    for (int i = 1; i < n; ++i) {
        if (t <= ts[i]) {
            float f = (t - ts[i - 1]) / (ts[i] - ts[i - 1]);
            // Smoothstep between control points for a rounded shape.
            f = f * f * (3.0f - 2.0f * f);
            return rs[i - 1] + (rs[i] - rs[i - 1]) * f;
        }
    }
    return rs[n - 1];
}

} // namespace

Scene
makeGobletScene()
{
    Scene scene;
    scene.name = "Goblet";
    scene.screenW = 800;
    scene.screenH = 800;

    scene.textures.emplace_back(makeMarble(512, 77u)); // 1.4 MB mipped

    Vec3 light{0.5f, -0.6f, -0.8f};
    const float height = 2.0f;

    auto vertexAt = [&](unsigned seg, unsigned ring) {
        float t = static_cast<float>(ring) / kRings;
        float a = 2.0f * kPi * static_cast<float>(seg) / kSegments;
        float r = profileRadius(t);
        SceneVertex v;
        v.pos = {r * std::cos(a), t * height, r * std::sin(a)};
        // Wrap the texture once around; a slight overshoot (1.1) gives
        // the paper's small repetition factor for this scene.
        v.uv = {1.1f * static_cast<float>(seg) / kSegments, t};

        // Approximate surface normal from the profile slope.
        float dt = 1.0f / kRings;
        float dr = (profileRadius(std::min(1.0f, t + dt)) -
                    profileRadius(std::max(0.0f, t - dt))) /
                   (2.0f * dt * height);
        Vec3 n{std::cos(a), -dr, std::sin(a)};
        v.shade = lambertShade(n, light);
        return v;
    };

    // Ring by ring, so screen-adjacent small triangles are submitted
    // consecutively (section 6.1's recommendation for small triangles).
    for (unsigned ring = 0; ring < kRings; ++ring) {
        for (unsigned seg = 0; seg < kSegments; ++seg) {
            unsigned seg1 = (seg + 1) % kSegments;
            SceneVertex a = vertexAt(seg, ring);
            SceneVertex b = vertexAt(seg1, ring);
            SceneVertex c = vertexAt(seg1, ring + 1);
            SceneVertex d = vertexAt(seg, ring + 1);
            // Use unwrapped u at the seam so interpolation is correct.
            if (seg1 == 0) {
                b.uv.x = 1.1f;
                c.uv.x = 1.1f;
            }
            scene.triangles.push_back({{a, b, c}, 0});
            scene.triangles.push_back({{a, c, d}, 0});
        }
    }

    scene.view = Mat4::lookAt(Vec3{0.0f, 1.5f, 2.3f},
                              Vec3{0.0f, 0.95f, 0.0f}, Vec3{0, 1, 0});
    scene.proj = Mat4::perspective(/*fovy=*/0.9f, /*aspect=*/1.0f,
                                   /*near=*/0.3f, /*far=*/20.0f);
    return scene;
}

} // namespace texcache
