/**
 * @file
 * Reproduces section 7's rendering-performance analysis: the achieved
 * textured-fragment rate of the 100 MHz machine model as a function of
 * cache size, with and without prefetch-FIFO latency hiding.
 *
 * The paper's argument: the machine is designed for 50 M fragments/s;
 * cache misses cost ~50 cycles each, so without latency hiding the
 * achieved rate sags with the miss rate, and robustness across scenes
 * requires both a sufficient cache (bandwidth) and prefetching
 * (latency). With both, even 4 KB caches sustain near-peak rates -
 * the latency problem and the bandwidth problem are separable.
 */

#include "bench/bench_util.hh"
#include "timing/prefetch_model.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;
    constexpr unsigned kLine = 128;

    const uint64_t sizes[] = {4 << 10, 16 << 10, 32 << 10, 128 << 10};

    TextTable table("Section 7: achieved fragment rate (Mfrag/s) vs "
                    "cache size; no-prefetch / fifo=32; peak 50");
    std::vector<std::string> header = {"Scene"};
    for (uint64_t s : sizes)
        header.push_back(fmtBytes(s));
    table.header(header);

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, /*tiled=*/true, 8));
        SceneLayout layout(store().scene(s), params);
        std::vector<std::string> row = {benchSceneName(s)};
        for (uint64_t size : sizes) {
            CacheConfig cache{size, kLine, 2};
            TimingConfig no_pf;
            no_pf.fifoDepth = 0;
            TimingConfig pf;
            pf.fifoDepth = 32;
            TimingResult a =
                simulateTiming(out.trace, layout, cache, no_pf);
            TimingResult b =
                simulateTiming(out.trace, layout, cache, pf);
            row.push_back(
                fmtFixed(a.fragmentsPerSecond(no_pf.clockHz) / 1e6,
                         1) +
                " / " +
                fmtFixed(b.fragmentsPerSecond(pf.clockHz) / 1e6, 1));
        }
        table.row(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: the memory latency must be "
                 "hidden to sustain the peak rate; with prefetching, "
                 "performance is robust across scenes and nearly "
                 "independent of cache size down to 4KB (bandwidth "
                 "permitting).\n";
    return 0;
}
