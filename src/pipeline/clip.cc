#include "pipeline/clip.hh"

namespace texcache {

namespace {

constexpr float kNearEpsilon = 1e-5f;

/** Signed distance to the near plane (positive = visible side). */
inline float
nearDist(const ClipVertex &v)
{
    return v.pos.z + v.pos.w - kNearEpsilon;
}

inline ClipVertex
intersect(const ClipVertex &a, const ClipVertex &b, float da, float db)
{
    float t = da / (da - db);
    ClipVertex r;
    r.pos = a.pos + (b.pos - a.pos) * t;
    r.uv = a.uv + (b.uv - a.uv) * t;
    r.shade = a.shade + (b.shade - a.shade) * t;
    return r;
}

} // namespace

unsigned
clipNear(const ClipVertex in[3], ClipVertex out[4])
{
    unsigned n = 0;
    for (int i = 0; i < 3; ++i) {
        const ClipVertex &cur = in[i];
        const ClipVertex &nxt = in[(i + 1) % 3];
        float dc = nearDist(cur);
        float dn = nearDist(nxt);
        if (dc >= 0.0f) {
            out[n++] = cur;
            if (dn < 0.0f)
                out[n++] = intersect(cur, nxt, dc, dn);
        } else if (dn >= 0.0f) {
            out[n++] = intersect(cur, nxt, dc, dn);
        }
    }
    return n;
}

} // namespace texcache
