/**
 * @file
 * Tests for the event-tracing layer (src/tracing/): gating, event
 * ordering, sampling determinism, drop accounting, source tags, the
 * binary event log round trip and the Chrome trace shape.
 *
 * The tracer is process-global; every test re-arms it with
 * configure() and disarms at the end so tests stay independent.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cache/cache_sim.hh"
#include "cache/hierarchy.hh"
#include "cache/three_c.hh"
#include "core/sweep.hh"
#include "timing/dram_model.hh"
#include "tracing/tracing.hh"
#include "vt/fetch_queue.hh"

using namespace texcache;
using namespace texcache::tracing;

namespace {

/** Re-arm the tracer and guarantee disarming on scope exit. */
struct TracerGuard
{
    explicit TracerGuard(uint32_t mask, uint64_t sample_n = 1,
                         uint64_t capacity = 1 << 16)
    {
        configure({mask, sample_n, capacity});
        clearTexelContext();
    }
    ~TracerGuard() { configure({0, 1, 1 << 16}); }
};

std::vector<Event>
eventsOfKind(const std::vector<Event> &all, EventKind k)
{
    std::vector<Event> out;
    for (const Event &ev : all)
        if (ev.kind == static_cast<uint8_t>(k))
            out.push_back(ev);
    return out;
}

} // namespace

TEST(Tracing, DisabledByDefaultAndNoOp)
{
    TracerGuard guard(0);
    EXPECT_FALSE(active());
    EXPECT_FALSE(enabled(kMisses));
    cacheMiss(0x1234, MissClass::Cold, kTagStandalone);
    cacheHit(0x1234, kTagStandalone);
    CacheSim cache({1024, 64, 1});
    for (Addr a = 0; a < 4096; a += 64)
        cache.access(a);
    // With the mask clear nothing records, not even direct emitter
    // calls - the whole layer is inert.
    EXPECT_EQ(snapshotEvents().size(), 0u);
    EXPECT_EQ(recordedCount(), 0u);
    EXPECT_EQ(droppedCount(), 0u);
}

TEST(Tracing, SpanOrderingWithinThread)
{
    TracerGuard guard(kSpans);
    uint16_t outer = nameId("test.outer");
    uint16_t inner = nameId("test.inner");
    {
        ScopedSpan a(outer, 7);
        ScopedSpan b(inner);
    }
    std::vector<Event> evs = snapshotEvents();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs[0].kind, uint8_t(EventKind::SpanBegin));
    EXPECT_EQ(evs[0].a, outer);
    EXPECT_EQ(evs[0].addr, 7u);
    EXPECT_EQ(evs[1].a, inner);
    // LIFO: inner ends before outer.
    EXPECT_EQ(evs[2].kind, uint8_t(EventKind::SpanEnd));
    EXPECT_EQ(evs[2].a, inner);
    EXPECT_EQ(evs[3].a, outer);
    // Timestamps are monotone within the thread.
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_GE(evs[i].ts, evs[i - 1].ts);
}

TEST(Tracing, CacheSimEmitsMissEventsWithColdClass)
{
    TracerGuard guard(kMisses);
    CacheSim cache({1024, 64, 1});
    // 32 distinct lines (cold), then revisit the first 16 lines of a
    // 16-line cache after they were evicted (non-cold misses).
    for (Addr a = 0; a < 32 * 64; a += 64)
        cache.access(a);
    for (Addr a = 0; a < 16 * 64; a += 64)
        cache.access(a);

    std::vector<Event> misses =
        eventsOfKind(snapshotEvents(), EventKind::CacheMiss);
    ASSERT_EQ(misses.size(), cache.stats().misses);
    uint64_t cold = 0;
    for (const Event &ev : misses) {
        EXPECT_EQ(ev.tag, kTagStandalone);
        // No replay driver set a texel context here.
        EXPECT_EQ(ev.a, kNoContext);
        if (ev.cls == uint8_t(MissClass::Cold))
            ++cold;
        else
            EXPECT_EQ(ev.cls, uint8_t(MissClass::Other));
    }
    EXPECT_EQ(cold, cache.stats().coldMisses);
}

TEST(Tracing, TexelContextIsCarriedOnMissEvents)
{
    TracerGuard guard(kMisses);
    setTexelContext(/*x=*/100, /*y=*/200, /*tex=*/3, /*level=*/2,
                    /*u=*/40, /*v=*/50);
    CacheSim cache({1024, 64, 1});
    cache.access(0x4000);
    clearTexelContext();
    cache.access(0x8000);

    std::vector<Event> misses =
        eventsOfKind(snapshotEvents(), EventKind::CacheMiss);
    ASSERT_EQ(misses.size(), 2u);
    EXPECT_EQ(misses[0].a, (100u << 16) | 200u);
    EXPECT_EQ(misses[0].b, (3u << 16) | 2u);
    EXPECT_EQ(misses[0].c, (40u << 16) | 50u);
    EXPECT_EQ(misses[1].a, kNoContext);
}

TEST(Tracing, SamplingIsDeterministic)
{
    auto run = [] {
        CacheSim cache({1024, 64, 1});
        uint32_t x = 7;
        for (int i = 0; i < 4000; ++i) {
            x = x * 1664525u + 1013904223u;
            cache.access((x >> 8) & 0xffffc0);
        }
        std::vector<uint64_t> addrs;
        for (const Event &ev :
             eventsOfKind(snapshotEvents(), EventKind::CacheMiss))
            addrs.push_back(ev.addr);
        return addrs;
    };

    std::vector<uint64_t> first, second;
    uint64_t all = 0;
    {
        TracerGuard guard(kMisses, /*sample_n=*/1);
        all = run().size();
    }
    {
        TracerGuard guard(kMisses, /*sample_n=*/4);
        first = run();
    }
    {
        TracerGuard guard(kMisses, /*sample_n=*/4);
        second = run();
    }
    ASSERT_GT(all, 100u);
    // Every 4th emission is kept, deterministically.
    EXPECT_EQ(first.size(), (all + 3) / 4);
    EXPECT_EQ(first, second);
}

TEST(Tracing, DropAccountingWhenRingFills)
{
    TracerGuard guard(kMisses, 1, /*capacity=*/16);
    CacheSim cache({1024, 64, 1});
    for (Addr a = 0; a < 100 * 64; a += 64)
        cache.access(a); // 100 cold misses
    EXPECT_EQ(recordedCount(), 16u);
    EXPECT_EQ(droppedCount(), 84u);
    // The accounting survives into the binary log header.
    std::stringstream ss;
    writeEventLog(ss);
    EventLog log;
    std::string err;
    ASSERT_TRUE(readEventLog(ss, log, err)) << err;
    EXPECT_EQ(log.dropped, 84u);
    EXPECT_EQ(log.eventCount(), 16u);
}

TEST(Tracing, HierarchyTagsL1AndL2)
{
    TracerGuard guard(kMisses);
    TwoLevelCache h(2, {1024, 64, 1}, {4096, 64, 2});
    for (Addr a = 0; a < 32 * 64; a += 64)
        h.access(a & 1 ? 1 : 0, a);
    std::vector<Event> misses =
        eventsOfKind(snapshotEvents(), EventKind::CacheMiss);
    ASSERT_FALSE(misses.empty());
    bool saw_l1 = false, saw_l2 = false;
    for (const Event &ev : misses) {
        if (ev.tag == kTagL1)
            saw_l1 = true;
        else if (ev.tag == kTagL2)
            saw_l2 = true;
        else
            FAIL() << "unexpected tag " << ev.tag;
    }
    EXPECT_TRUE(saw_l1);
    EXPECT_TRUE(saw_l2);
}

TEST(Tracing, MissClassifierEmitsRefinedThreeCClasses)
{
    TracerGuard guard(kMisses);
    // Direct-mapped 4-line cache: lines 0 and 4 conflict on set 0
    // while an FA cache of the same size holds both.
    MissClassifier mc({4 * 64, 64, 1});
    auto line = [](uint64_t n) { return n * 64; };
    mc.access(line(0));
    mc.access(line(4));
    for (int rep = 0; rep < 8; ++rep) {
        mc.access(line(0));
        mc.access(line(4));
    }
    MissBreakdown b = mc.breakdown();
    ASSERT_GT(b.conflict, 0u);

    std::vector<Event> misses =
        eventsOfKind(snapshotEvents(), EventKind::CacheMiss);
    // Exactly the set-associative misses, all from the classifier
    // (the silent twins emit nothing), classes matching breakdown().
    ASSERT_EQ(misses.size(), b.misses);
    uint64_t cold = 0, conflict = 0, capacity = 0;
    for (const Event &ev : misses) {
        EXPECT_EQ(ev.tag, kTagClassified);
        switch (MissClass(ev.cls)) {
          case MissClass::Cold:
            ++cold;
            break;
          case MissClass::Conflict:
            ++conflict;
            break;
          case MissClass::Capacity:
            ++capacity;
            break;
          default:
            FAIL() << "unrefined class on classifier event";
        }
    }
    EXPECT_EQ(cold, b.cold);
    EXPECT_EQ(conflict, b.conflict);
    EXPECT_EQ(capacity, b.capacity);
}

TEST(Tracing, FetchQueueEventsInSimDomain)
{
    TracerGuard guard(kFetches);
    FetchQueue q({/*maxInFlight=*/2, /*baseLatency=*/10}, DramConfig{},
                 4096);
    EXPECT_EQ(q.request(1, 0x1000, 0), FetchResult::Issued);
    EXPECT_EQ(q.request(1, 0x1000, 1), FetchResult::Merged);
    EXPECT_EQ(q.request(2, 0x2000, 2), FetchResult::Issued);
    EXPECT_EQ(q.request(3, 0x3000, 3), FetchResult::Dropped);
    unsigned completed = 0;
    q.drainAll([&](PageId) { ++completed; });
    EXPECT_EQ(completed, 2u);

    std::vector<Event> evs = snapshotEvents();
    EXPECT_EQ(eventsOfKind(evs, EventKind::FetchIssue).size(), 2u);
    EXPECT_EQ(eventsOfKind(evs, EventKind::FetchMerge).size(), 1u);
    EXPECT_EQ(eventsOfKind(evs, EventKind::FetchDrop).size(), 1u);
    std::vector<Event> done =
        eventsOfKind(evs, EventKind::FetchComplete);
    ASSERT_EQ(done.size(), 2u);
    for (const Event &ev : done) {
        // Latency (issue -> data) must cover the fixed base latency.
        EXPECT_GE(ev.b, 10u);
        EXPECT_GE(ev.ts, ev.b); // completion tick >= latency
    }
}

TEST(Tracing, SweepEmitsRunAndPointSpans)
{
    TracerGuard guard(kSpans);
    std::vector<int> points(17);
    for (int i = 0; i < 17; ++i)
        points[i] = i;
    auto results = Sweep::run(points, [](int p) { return p * 2; });
    ASSERT_EQ(results.size(), 17u);

    std::vector<Event> evs = snapshotEvents();
    std::vector<Event> begins = eventsOfKind(evs, EventKind::SpanBegin);
    uint64_t point_begins = 0;
    std::vector<bool> seen(17, false);
    uint16_t point_id = nameId("sweep.point");
    uint16_t run_id = nameId("sweep.run");
    bool saw_run = false;
    for (const Event &ev : begins) {
        if (ev.a == point_id) {
            ++point_begins;
            ASSERT_LT(ev.addr, 17u);
            seen[ev.addr] = true;
        } else if (ev.a == run_id) {
            saw_run = true;
        }
    }
    EXPECT_TRUE(saw_run);
    EXPECT_EQ(point_begins, 17u); // every point exactly once
    for (bool s : seen)
        EXPECT_TRUE(s);
    // Begin/end counts balance.
    EXPECT_EQ(begins.size(),
              eventsOfKind(evs, EventKind::SpanEnd).size());
}

TEST(Tracing, BinaryLogRoundTripPreservesEverything)
{
    TracerGuard guard(kSpans | kMisses, /*sample_n=*/2);
    uint16_t name = nameId("roundtrip.span");
    spanBegin(name, 42);
    setTexelContext(1, 2, 3, 0, 5, 6);
    CacheSim cache({1024, 64, 1});
    for (Addr a = 0; a < 10 * 64; a += 64)
        cache.access(a);
    spanEnd(name);

    std::vector<Event> live = snapshotEvents();
    std::stringstream ss;
    writeEventLog(ss);
    EventLog log;
    std::string err;
    ASSERT_TRUE(readEventLog(ss, log, err)) << err;
    EXPECT_EQ(log.sampleN, 2u);
    EXPECT_EQ(log.name(name), "roundtrip.span");
    ASSERT_EQ(log.eventCount(), live.size());
    size_t i = 0;
    for (const tracing::RingData &ring : log.rings) {
        for (const Event &ev : ring.events) {
            EXPECT_EQ(ev.ts, live[i].ts);
            EXPECT_EQ(ev.addr, live[i].addr);
            EXPECT_EQ(ev.kind, live[i].kind);
            EXPECT_EQ(ev.a, live[i].a);
            EXPECT_EQ(ev.b, live[i].b);
            EXPECT_EQ(ev.c, live[i].c);
            ++i;
        }
    }
}

TEST(Tracing, RejectsCorruptEventLogs)
{
    std::stringstream empty;
    EventLog log;
    std::string err;
    EXPECT_FALSE(readEventLog(empty, log, err));
    std::stringstream garbage("this is not an event log at all");
    EXPECT_FALSE(readEventLog(garbage, log, err));
    EXPECT_FALSE(err.empty());
}

TEST(Tracing, ChromeTraceShape)
{
    TracerGuard guard(kSpans | kFetches);
    uint16_t name = nameId("chrome.test");
    {
        ScopedSpan s(name, 3);
    }
    FetchQueue q({4, 10}, DramConfig{}, 4096);
    q.request(9, 0x9000, 0);
    q.drainAll([](PageId) {});

    std::stringstream ss;
    writeChromeTrace(ss);
    std::string json = ss.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"chrome.test\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("texcache sim-ticks"), std::string::npos);
    // Balanced braces is a cheap proxy for well-formed JSON here; CI
    // additionally json.load()s a real trace.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

#include "vt/page_pool.hh"

TEST(Tracing, PagePoolEvictionEvents)
{
    TracerGuard guard(kFetches);
    PagePool pool({/*pageBytes=*/4096, /*poolPages=*/2});
    pool.insert(1);
    pool.insert(2);
    pool.insert(3); // evicts page 1 (LRU)
    pool.touch(3);
    pool.insert(4); // evicts page 2

    std::vector<Event> evs =
        eventsOfKind(snapshotEvents(), EventKind::PageEvict);
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].addr, 1u);
    EXPECT_EQ(evs[1].addr, 2u);
    // Payload b is the resident-page count right after the eviction.
    EXPECT_EQ(evs[0].b, 1u);
    EXPECT_EQ(evs[1].b, 1u);
}

TEST(Tracing, AsyncSpansRecordIdAndDetail)
{
    TracerGuard guard(kSpans);
    uint16_t req = nameId("async.request");
    uint16_t queue = nameId("async.queue");
    // Interleaved lifetimes that thread-scoped spans cannot express:
    // request 7 outlives request 9's whole queue residency.
    asyncBegin(req, 7, /*detail=*/2);
    asyncBegin(queue, 9);
    asyncEnd(queue, 9);
    asyncEnd(req, 7);

    std::vector<Event> evs = snapshotEvents();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs[0].kind, uint8_t(EventKind::AsyncBegin));
    EXPECT_EQ(evs[0].a, req);
    EXPECT_EQ(evs[0].addr, 7u); // correlation id rides in addr
    EXPECT_EQ(evs[0].c, 2u);    // detail payload
    EXPECT_EQ(evs[1].addr, 9u);
    EXPECT_EQ(evs[2].kind, uint8_t(EventKind::AsyncEnd));
    EXPECT_EQ(evs[2].a, queue);
    EXPECT_EQ(evs[3].a, req);
}

TEST(Tracing, AsyncSpansAreInertWhenDisabled)
{
    TracerGuard guard(kMisses); // spans category off
    asyncBegin(nameId("async.off"), 1);
    asyncEnd(nameId("async.off"), 1);
    EXPECT_EQ(snapshotEvents().size(), 0u);
}

TEST(Tracing, ChromeTraceAsyncShape)
{
    TracerGuard guard(kSpans);
    uint16_t name = nameId("async.chrome");
    asyncBegin(name, 0xabc, 5);
    asyncEnd(name, 0xabc);

    std::stringstream ss;
    writeChromeTrace(ss);
    std::string json = ss.str();
    // Nestable async begin/end, matched by (cat, id, name); the id is
    // a hex string so Perfetto treats it opaquely.
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"async\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":\"0xabc\""), std::string::npos);
    EXPECT_NE(json.find("\"async.chrome\""), std::string::npos);
    EXPECT_NE(json.find("\"detail\":5"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}
