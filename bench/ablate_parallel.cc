/**
 * @file
 * Ablation for the paper's parallel-architecture question (section 8):
 * multiple fragment generators sharing one texture memory, each with a
 * private cache - "how to balance the work among multiple fragment
 * generators without reducing the spatial locality in each reference
 * stream."
 *
 * Fragments of each benchmark frame are distributed across N
 * generators under three screen-space policies. Reported: aggregate
 * miss rate (= total memory traffic of the shared DRAM) and load
 * imbalance (max/mean texel accesses). Fine interleaving balances work
 * but replicates the working set into every cache; coarse bands keep
 * locality but can skew load.
 */

#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "core/parallel.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

ParallelStats
run(BenchScene s, unsigned n_gen, WorkDistribution dist,
    const SceneLayout &layout, const CacheConfig &cache)
{
    const Scene &scene = store().scene(s);
    MultiGeneratorSim sim(n_gen, dist, cache, /*tile=*/32,
                          scene.screenH);
    RenderOptions opts;
    opts.captureTrace = false;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    opts.onFragment = [&](const Fragment &f, const SampleResult &sr,
                          uint16_t tex) {
        Addr addrs[24];
        unsigned n = 0;
        for (unsigned i = 0; i < sr.numTouches; ++i) {
            Addr out[3];
            unsigned k = layout.layout(tex).addresses(
                {sr.touches[i].level, sr.touches[i].u, sr.touches[i].v},
                out);
            for (unsigned j = 0; j < k; ++j)
                addrs[n++] = out[j];
        }
        sim.addFragment(f.x, f.y, addrs, n);
    };
    render(scene, sceneOrder(s, /*tiled=*/true, 8), opts);
    return sim.finish();
}

} // namespace

int
main()
{
    const CacheConfig cache{32 * 1024, 128, 2};
    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;

    TextTable table("Section 8 extension: N fragment generators, "
                    "32KB/128B/2way private caches; aggregate miss "
                    "rate (load imbalance)");
    table.header({"Scene", "Policy", "N=1", "N=2", "N=4", "N=8"});

    for (BenchScene s : {BenchScene::Town, BenchScene::Flight}) {
        SceneLayout layout(store().scene(s), params);
        for (WorkDistribution dist :
             {WorkDistribution::ScanlineInterleaved,
              WorkDistribution::TileInterleaved,
              WorkDistribution::Bands}) {
            std::vector<std::string> row = {benchSceneName(s),
                                            workDistributionName(dist)};
            for (unsigned n : {1u, 2u, 4u, 8u}) {
                ParallelStats stats = run(s, n, dist, layout, cache);
                row.push_back(
                    fmtPercent(stats.aggregateMissRate()) + " (" +
                    fmtFixed(stats.loadImbalance(), 2) + ")");
            }
            table.row(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpectation: scanline interleaving balances load "
                 "(~1.0) but multiplies misses; bands preserve "
                 "locality at the cost of imbalance; tile "
                 "interleaving sits between.\n\n";

    // Second panel: a shared L2 between the private L1s and memory.
    // Texture data is read-only (no coherence needed, section 8), so
    // a shared level can absorb the cross-generator re-fetches that
    // fine-grained distribution causes.
    TextTable l2table(
        "Shared 256KB 4-way L2 under the private L1s: memory fills "
        "per 1000 texel accesses");
    l2table.header({"Scene", "N", "no L2 (L1 misses)",
                    "with shared L2", "L2 filters"});

    const CacheConfig l1{32 * 1024, 128, 2};
    const CacheConfig l2{256 * 1024, 128, 4};
    for (BenchScene s : {BenchScene::Town, BenchScene::Flight}) {
        SceneLayout layout(store().scene(s), params);
        const Scene &scene = store().scene(s);
        for (unsigned n : {1u, 4u, 8u}) {
            TwoLevelCache hier(n,
                               l1, l2);
            MultiGeneratorSim router(
                n, WorkDistribution::ScanlineInterleaved, l1, 32,
                scene.screenH);
            RenderOptions opts;
            opts.captureTrace = false;
            opts.writeFramebuffer = false;
            opts.countRepetition = false;
            opts.onFragment = [&](const Fragment &f,
                                  const SampleResult &sr,
                                  uint16_t tex) {
                unsigned g = router.generatorFor(f.x, f.y);
                for (unsigned i = 0; i < sr.numTouches; ++i) {
                    Addr out[3];
                    unsigned k = layout.layout(tex).addresses(
                        {sr.touches[i].level, sr.touches[i].u,
                         sr.touches[i].v},
                        out);
                    for (unsigned j = 0; j < k; ++j)
                        hier.access(g, out[j]);
                }
            };
            render(scene, sceneOrder(s, /*tiled=*/true, 8), opts);

            uint64_t l1_misses = 0;
            for (unsigned g = 0; g < n; ++g)
                l1_misses += hier.l1Stats(g).misses;
            double per_k = 1000.0 / hier.totalAccesses();
            l2table.row(
                {benchSceneName(s), std::to_string(n),
                 fmtFixed(l1_misses * per_k, 2),
                 fmtFixed(hier.memoryFills() * per_k, 2),
                 fmtFixed(l1_misses
                              ? 1.0 - static_cast<double>(
                                          hier.memoryFills()) /
                                          l1_misses
                              : 0.0,
                          2)});
        }
    }
    l2table.print(std::cout);
    std::cout << "\nExpectation: the shared L2 absorbs most of the "
                 "extra misses fine interleaving causes, restoring "
                 "near-N=1 memory traffic.\n";
    return 0;
}
