#include "vt/vt_sampler.hh"

#include <cmath>

namespace texcache {

namespace {

/// A 2x2 bilinear footprint touches at most 4 texels of at most 3
/// addresses each (Williams), so at most 12 distinct pages.
constexpr unsigned kMaxFootprintPages = 12;

/** The trilinear lower level for @p lambda (mirrors sampleMipMap). */
unsigned
trilinearLower(float lambda, unsigned max_level)
{
    float clamped = std::min(lambda, static_cast<float>(max_level));
    unsigned lower = static_cast<unsigned>(clamped);
    if (lower > max_level - (max_level ? 1 : 0) && max_level > 0)
        lower = max_level - 1;
    if (max_level == 0)
        lower = 0;
    return lower;
}

} // namespace

double
DegradationStats::avgDelta() const
{
    if (!degraded)
        return 0.0;
    uint64_t sum = 0;
    for (size_t d = 0; d < histogram.size(); ++d)
        sum += d * histogram[d];
    return static_cast<double>(sum) / degraded;
}

unsigned
DegradationStats::maxDelta() const
{
    for (size_t d = histogram.size(); d > 0; --d)
        if (histogram[d - 1])
            return static_cast<unsigned>(d - 1);
    return 0;
}

void
DegradationStats::clear()
{
    fragments = 0;
    degraded = 0;
    histogram.clear();
}

VtSampler::VtSampler(const SceneLayout &layout,
                     VirtualTextureMemory &mem)
    : layout_(layout), mem_(mem)
{
    // Pin every texture's coarsest (1x1) level so a fallback level
    // always exists and sampling can never stall.
    for (unsigned t = 0; t < layout_.numTextures(); ++t) {
        const TextureLayout &lay = layout_.layout(t);
        uint16_t coarsest =
            static_cast<uint16_t>(lay.numLevels() - 1);
        Addr addrs[3];
        unsigned n = lay.addresses({coarsest, 0, 0}, addrs);
        for (unsigned i = 0; i < n; ++i)
            mem_.pinRange(addrs[i], kBytesPerTexel);
    }
}

void
VtSampler::prefaultAll()
{
    mem_.prefaultRange(0, layout_.totalFootprint());
}

unsigned
VtSampler::footprintPages(uint16_t tex, unsigned level, float u,
                          float v, PageId out[]) const
{
    const TextureLayout &lay = layout_.layout(tex);
    LevelDims d = lay.dims(level);

    // Mirror the GL texel addressing of sampleBilinearLevel with
    // GL_REPEAT wrap (the mode every benchmark scene uses).
    float su = u * static_cast<float>(d.w) - 0.5f;
    float sv = v * static_cast<float>(d.h) - 0.5f;
    int i0 = static_cast<int>(std::floor(su));
    int j0 = static_cast<int>(std::floor(sv));
    uint16_t u0 = static_cast<uint16_t>(
        static_cast<unsigned>(i0) & (d.w - 1));
    uint16_t u1 = static_cast<uint16_t>(
        static_cast<unsigned>(i0 + 1) & (d.w - 1));
    uint16_t v0 = static_cast<uint16_t>(
        static_cast<unsigned>(j0) & (d.h - 1));
    uint16_t v1 = static_cast<uint16_t>(
        static_cast<unsigned>(j0 + 1) & (d.h - 1));

    uint16_t lvl = static_cast<uint16_t>(level);
    const TexelTouch touches[4] = {
        {lvl, u0, v0}, {lvl, u1, v0}, {lvl, u0, v1}, {lvl, u1, v1}};

    unsigned count = 0;
    Addr addrs[3];
    for (const TexelTouch &t : touches) {
        unsigned n = lay.addresses(t, addrs);
        for (unsigned i = 0; i < n; ++i) {
            PageId p = mem_.pageOf(addrs[i]);
            bool seen = false;
            for (unsigned k = 0; k < count; ++k)
                seen = seen || out[k] == p;
            if (!seen)
                out[count++] = p;
        }
    }
    return count;
}

bool
VtSampler::levelResident(uint16_t tex, unsigned level, float u,
                         float v) const
{
    PageId pages[kMaxFootprintPages];
    unsigned n = footprintPages(tex, level, u, v, pages);
    for (unsigned i = 0; i < n; ++i)
        if (!mem_.pool().resident(pages[i]))
            return false;
    return true;
}

bool
VtSampler::touchLevel(uint16_t tex, unsigned level, float u, float v)
{
    PageId pages[kMaxFootprintPages];
    unsigned n = footprintPages(tex, level, u, v, pages);
    bool all_resident = true;
    for (unsigned i = 0; i < n; ++i) {
        VtAccess a = mem_.touch(mem_.pool().baseOf(pages[i]));
        all_resident = all_resident && a == VtAccess::Hit;
    }
    return all_resident;
}

void
VtSampler::recordDegradation(unsigned delta)
{
    ++frame_.degraded;
    if (frame_.histogram.size() <= delta)
        frame_.histogram.resize(delta + 1, 0);
    ++frame_.histogram[delta];
}

VtDecision
VtSampler::resolve(uint16_t tex, float u, float v, float lambda)
{
    ++frame_.fragments;
    const TextureLayout &lay = layout_.layout(tex);
    unsigned max_level = lay.numLevels() - 1;

    // Which level(s) does the filter want? Mirrors sampleMipMap.
    unsigned desired;
    bool all_resident;
    if (lambda <= 0.0f) {
        // Magnification: bilinear from level 0.
        desired = 0;
        all_resident = touchLevel(tex, 0, u, v);
    } else {
        // Minification: trilinear between lower and upper. Touch both
        // levels unconditionally so both fetch when missing.
        unsigned lower = trilinearLower(lambda, max_level);
        unsigned upper = std::min(lower + 1, max_level);
        bool lo = touchLevel(tex, lower, u, v);
        bool hi = upper == lower || touchLevel(tex, upper, u, v);
        desired = lower;
        all_resident = lo && hi;
    }
    if (all_resident)
        return VtDecision{};

    // Fall back to the finest fully-resident ancestor, bilinearly.
    // For a broken trilinear pair that can be the desired level itself
    // (delta 0: filter-only degradation); magnification starts one
    // level coarser. The fallback search is residency-query only; the
    // level actually sampled is then touched (all hits).
    unsigned first = lambda <= 0.0f ? 1 : desired;
    for (unsigned level = first; level <= max_level; ++level) {
        if (!levelResident(tex, level, u, v))
            continue;
        touchLevel(tex, level, u, v);
        recordDegradation(level - desired);
        return VtDecision{true, static_cast<uint16_t>(level)};
    }
    panic("no resident fallback level for texture ", tex,
          "; the coarsest level must be pinned");
}

} // namespace texcache
