/**
 * @file
 * perf_probe: CI helper reporting whether perf_event_open works here.
 *
 * Prints one line and exits 0 when the process-wide hardware counters
 * opened, 1 when they did not (with the reason). CI's telemetry job
 * uses the exit code to decide between asserting the perf block in
 * fresh manifests and printing an explicit SKIP - degradation must be
 * visible, never silent. --json emits the same facts as a JSON
 * object, plus a current reading when available.
 */

#include <iostream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "perf/perf_counters.hh"

using namespace texcache;

int
main(int argc, char **argv)
{
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            json = true;
        } else if (a == "--help" || a == "-h") {
            std::cout << "usage: perf_probe [--json]\n"
                         "exit 0: perf counters available; exit 1: "
                         "not\n";
            return 0;
        } else {
            std::cerr << "perf_probe: unknown option " << a << "\n";
            return 2;
        }
    }

    bool ok = perf::available();
    if (json) {
        std::ostringstream os;
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("available", ok);
        if (!ok) {
            w.kv("reason", perf::unavailableReason());
        } else {
            perf::Reading r = perf::read();
            w.kv("cycles", r.cycles);
            w.kv("instructions", r.instructions);
            w.kv("llc_loads", r.llcLoads);
            w.kv("llc_misses", r.llcMisses);
            w.kv("branch_misses", r.branchMisses);
            w.kv("multiplexed", r.multiplexed);
        }
        w.endObject();
        std::cout << os.str() << "\n";
    } else if (ok) {
        std::cout << "perf: available\n";
    } else {
        std::cout << "perf: unavailable (" << perf::unavailableReason()
                  << ")\n";
    }
    return ok ? 0 : 1;
}
