#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace texcache {

void
JsonWriter::preValue(bool is_key)
{
    if (keyPending_) {
        // A key was just written; this is its value on the same line.
        panic_if(is_key, "JSON key written while another key awaits "
                         "its value");
        keyPending_ = false;
        return;
    }
    panic_if(!is_key && !frames_.empty() &&
                 frames_.back() == Frame::Object,
             "JSON value inside an object needs a key first");
    if (frames_.empty())
        return;
    if (!firstInFrame_.back())
        os_ << (pretty_ ? ",\n" : ",");
    else if (pretty_)
        os_ << "\n";
    firstInFrame_.back() = false;
    if (pretty_)
        for (size_t i = 0; i < frames_.size(); ++i)
            os_ << "  ";
}

void
JsonWriter::beginObject()
{
    preValue(false);
    os_ << "{";
    frames_.push_back(Frame::Object);
    firstInFrame_.push_back(true);
}

void
JsonWriter::endObject()
{
    panic_if(frames_.empty() || frames_.back() != Frame::Object ||
                 keyPending_,
             "unbalanced JSON endObject");
    bool empty = firstInFrame_.back();
    frames_.pop_back();
    firstInFrame_.pop_back();
    if (pretty_ && !empty) {
        os_ << "\n";
        for (size_t i = 0; i < frames_.size(); ++i)
            os_ << "  ";
    }
    os_ << "}";
}

void
JsonWriter::beginArray()
{
    preValue(false);
    os_ << "[";
    frames_.push_back(Frame::Array);
    firstInFrame_.push_back(true);
}

void
JsonWriter::endArray()
{
    panic_if(frames_.empty() || frames_.back() != Frame::Array,
             "unbalanced JSON endArray");
    bool empty = firstInFrame_.back();
    frames_.pop_back();
    firstInFrame_.pop_back();
    if (pretty_ && !empty) {
        os_ << "\n";
        for (size_t i = 0; i < frames_.size(); ++i)
            os_ << "  ";
    }
    os_ << "]";
}

void
JsonWriter::key(std::string_view k)
{
    panic_if(frames_.empty() || frames_.back() != Frame::Object,
             "JSON key '", std::string(k), "' outside an object");
    preValue(true);
    writeEscaped(k);
    os_ << (pretty_ ? ": " : ":");
    keyPending_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    preValue(false);
    writeEscaped(v);
}

void
JsonWriter::value(bool v)
{
    preValue(false);
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(uint64_t v)
{
    preValue(false);
    os_ << v;
}

void
JsonWriter::value(int64_t v)
{
    preValue(false);
    os_ << v;
}

void
JsonWriter::value(double v)
{
    preValue(false);
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os_ << "null";
        return;
    }
    // Shortest representation that round-trips to the same double.
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os_.write(buf, res.ptr - buf);
}

void
JsonWriter::rawValue(std::string_view v)
{
    preValue(false);
    os_ << v;
}

void
JsonWriter::writeEscaped(std::string_view s)
{
    os_ << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            os_ << "\\\"";
            break;
          case '\\':
            os_ << "\\\\";
            break;
          case '\n':
            os_ << "\\n";
            break;
          case '\t':
            os_ << "\\t";
            break;
          case '\r':
            os_ << "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << static_cast<char>(c);
            }
        }
    }
    os_ << '"';
}

} // namespace texcache
