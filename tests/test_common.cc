/** @file Unit tests for common/table.hh and common/rng.hh. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/table.hh"

using namespace texcache;

TEST(Table, FormatFixed)
{
    EXPECT_EQ(fmtFixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmtFixed(1.23556, 2), "1.24");
    EXPECT_EQ(fmtFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(fmtFixed(3.0, 0), "3");
}

TEST(Table, FormatPercent)
{
    EXPECT_EQ(fmtPercent(0.0153), "1.53%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
    EXPECT_EQ(fmtPercent(0.0028, 2), "0.28%");
}

TEST(Table, FormatBytes)
{
    EXPECT_EQ(fmtBytes(32), "32B");
    EXPECT_EQ(fmtBytes(1024), "1KB");
    EXPECT_EQ(fmtBytes(32 * 1024), "32KB");
    EXPECT_EQ(fmtBytes(1 << 20), "1MB");
    EXPECT_EQ(fmtBytes(1536), "1536B"); // not a whole KB
}

TEST(Table, AlignsColumns)
{
    TextTable t("demo");
    t.header({"a", "bbbb"});
    t.row({"xxx", "y"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("a    bbbb"), std::string::npos);
    EXPECT_NE(s.find("xxx  y"), std::string::npos);
}

TEST(Table, Csv)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowIsInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformIsInRange)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        float v = r.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Rng, BelowCoversValues)
{
    Rng r(11);
    std::set<uint32_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Table, CsvEnvSwitchesPrintToCsv)
{
    TextTable t("env");
    t.header({"a", "b"});
    t.row({"1", "2"});
    setenv("TEXCACHE_CSV", "1", 1);
    std::ostringstream os;
    t.print(os);
    unsetenv("TEXCACHE_CSV");
    EXPECT_EQ(os.str(), "# env\na,b\n1,2\n");
    // And back to aligned text once unset.
    std::ostringstream os2;
    t.print(os2);
    EXPECT_NE(os2.str().find("== env =="), std::string::npos);
}

// --- JsonWriter escaping ---------------------------------------------

#include "common/json.hh"

namespace {

std::string
jsonString(std::string_view raw)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("k", raw);
        w.endObject();
    }
    return os.str();
}

} // namespace

TEST(JsonWriter, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonString("say \"hi\""),
              "{\"k\":\"say \\\"hi\\\"\"}");
    EXPECT_EQ(jsonString("C:\\temp\\x"),
              "{\"k\":\"C:\\\\temp\\\\x\"}");
    // A backslash before a quote must escape to four characters, not
    // collapse into an escaped quote.
    EXPECT_EQ(jsonString("\\\""), "{\"k\":\"\\\\\\\"\"}");
}

TEST(JsonWriter, EscapesNamedControlCharacters)
{
    EXPECT_EQ(jsonString("a\nb"), "{\"k\":\"a\\nb\"}");
    EXPECT_EQ(jsonString("a\tb"), "{\"k\":\"a\\tb\"}");
    EXPECT_EQ(jsonString("a\rb"), "{\"k\":\"a\\rb\"}");
}

TEST(JsonWriter, EscapesOtherControlCharactersAsUnicode)
{
    EXPECT_EQ(jsonString(std::string_view("\x01", 1)),
              "{\"k\":\"\\u0001\"}");
    EXPECT_EQ(jsonString(std::string_view("\x1f", 1)),
              "{\"k\":\"\\u001f\"}");
    // NUL embedded in a string_view must not truncate the output.
    EXPECT_EQ(jsonString(std::string_view("a\0b", 3)),
              "{\"k\":\"a\\u0000b\"}");
}

TEST(JsonWriter, PassesNonAsciiUtf8Through)
{
    // UTF-8 bytes >= 0x80 are valid inside JSON strings and must not
    // be escaped or mangled (snowman, e-acute, 4-byte emoji).
    EXPECT_EQ(jsonString("\xe2\x98\x83"), "{\"k\":\"\xe2\x98\x83\"}");
    EXPECT_EQ(jsonString("caf\xc3\xa9"), "{\"k\":\"caf\xc3\xa9\"}");
    EXPECT_EQ(jsonString("\xf0\x9f\x8e\xa8"),
              "{\"k\":\"\xf0\x9f\x8e\xa8\"}");
}

TEST(JsonWriter, EscapesKeysToo)
{
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/false);
        w.beginObject();
        w.kv("we\"ird\nkey", 1u);
        w.endObject();
    }
    EXPECT_EQ(os.str(), "{\"we\\\"ird\\nkey\":1}");
}

// --- json::parse (the reader half of the round trip) -----------------

#include "common/json_reader.hh"

namespace {

json::Value
parseOk(std::string_view text)
{
    json::Value v;
    json::ParseError err;
    EXPECT_TRUE(json::parse(text, v, err)) << err.message;
    return v;
}

json::ParseError
parseErr(std::string_view text)
{
    json::Value v;
    json::ParseError err;
    EXPECT_FALSE(json::parse(text, v, err));
    return err;
}

} // namespace

TEST(JsonReader, ParsesScalarsAndContainers)
{
    json::Value v = parseOk(
        R"({"n": null, "t": true, "f": false, "num": -12.5e1,)"
        R"( "s": "hi", "a": [1, 2, 3], "o": {"k": 7}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_TRUE(v.find("t")->boolean());
    EXPECT_FALSE(v.find("f")->boolean());
    EXPECT_DOUBLE_EQ(v.find("num")->number(), -125.0);
    EXPECT_EQ(v.find("s")->str(), "hi");
    ASSERT_EQ(v.find("a")->size(), 3u);
    EXPECT_EQ(v.find("a")->at(2).u64(), 3u);
    EXPECT_EQ(v.find("o")->find("k")->u64(), 7u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, ExactIntegerDetection)
{
    EXPECT_TRUE(parseOk("1024").isU64());
    EXPECT_EQ(parseOk("1024").u64(), 1024u);
    EXPECT_FALSE(parseOk("-3").isU64());
    EXPECT_FALSE(parseOk("1.5").isU64());
    // 2^40 survives the double round trip exactly.
    EXPECT_EQ(parseOk("1099511627776").u64(), 1099511627776ull);
}

TEST(JsonReader, RejectsTrailingGarbage)
{
    json::ParseError e = parseErr("{\"a\": 1} x");
    EXPECT_EQ(e.kind, json::ParseError::Kind::TrailingGarbage);
    EXPECT_STREQ(e.code(), "trailing_garbage");
    // Trailing whitespace is fine.
    parseOk("{\"a\": 1}  \n\t ");
    // Two top-level values are not.
    EXPECT_EQ(parseErr("1 2").kind,
              json::ParseError::Kind::TrailingGarbage);
}

TEST(JsonReader, RejectsDepthBeyondLimit)
{
    std::string deep(json::kMaxDepth, '[');
    deep += std::string(json::kMaxDepth, ']');
    parseOk(deep); // exactly kMaxDepth nests is legal
    std::string toodeep = "[" + deep + "]";
    json::ParseError e = parseErr(toodeep);
    EXPECT_EQ(e.kind, json::ParseError::Kind::TooDeep);
    EXPECT_STREQ(e.code(), "too_deep");
}

TEST(JsonReader, TypedErrorsCarryOffsets)
{
    json::ParseError e = parseErr("{\"a\": @}");
    EXPECT_EQ(e.kind, json::ParseError::Kind::BadToken);
    EXPECT_EQ(e.offset, 6u);

    EXPECT_EQ(parseErr("{\"a\": 1").kind,
              json::ParseError::Kind::Truncated);
    EXPECT_EQ(parseErr("\"ab").kind,
              json::ParseError::Kind::BadString);
    EXPECT_EQ(parseErr("\"a\\q\"").kind,
              json::ParseError::Kind::BadEscape);
    EXPECT_EQ(parseErr("01").kind,
              json::ParseError::Kind::TrailingGarbage);
    EXPECT_EQ(parseErr("-x").kind,
              json::ParseError::Kind::BadNumber);
    EXPECT_EQ(parseErr("1.e3").kind,
              json::ParseError::Kind::BadNumber);
    EXPECT_EQ(parseErr("").kind, json::ParseError::Kind::Truncated);
}

TEST(JsonReader, RejectsRawControlCharactersInStrings)
{
    EXPECT_EQ(parseErr(std::string_view("\"a\nb\"", 5)).kind,
              json::ParseError::Kind::BadString);
}

TEST(JsonReader, DecodesEscapesAndSurrogatePairs)
{
    json::Value v = parseOk(R"("a\"\\\/\b\f\n\r\tz")");
    EXPECT_EQ(v.str(), "a\"\\/\b\f\n\r\tz");
    // \u escapes: BMP, and an emoji via a surrogate pair.
    EXPECT_EQ(parseOk(R"("\u0041")").str(), "A");
    EXPECT_EQ(parseOk(R"("\u00e9")").str(), "\xc3\xa9");
    EXPECT_EQ(parseOk(R"("\u2603")").str(), "\xe2\x98\x83");
    EXPECT_EQ(parseOk(R"("\ud83c\udfa8")").str(),
              "\xf0\x9f\x8e\xa8");
    // Broken surrogate pairs are typed escape errors.
    EXPECT_EQ(parseErr(R"("\ud83c")").kind,
              json::ParseError::Kind::BadEscape);
    EXPECT_EQ(parseErr(R"("\udfa8")").kind,
              json::ParseError::Kind::BadEscape);
    EXPECT_EQ(parseErr(R"("\ud83cx")").kind,
              json::ParseError::Kind::BadEscape);
}

TEST(JsonReader, RoundTripsJsonWriterOutput)
{
    // Everything the writer can emit - escapes, control characters,
    // UTF-8, nested containers, numbers - must parse back to the same
    // logical document. The writer is the reference implementation for
    // the harness's escaping rules.
    std::ostringstream os;
    {
        JsonWriter w(os, /*pretty=*/true);
        w.beginObject();
        w.kv("quote", "say \"hi\"");
        w.kv("back", "C:\\temp");
        w.kv("ctrl", std::string_view("a\0\x01\n\x1f", 5));
        w.kv("utf8", "caf\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x8e\xa8");
        w.kv("u", uint64_t(18446744073709549568ull));
        w.kv("neg", int64_t(-42));
        w.kv("pi", 3.25);
        w.key("nested");
        w.beginArray();
        w.beginObject();
        w.kv("deep", true);
        w.endObject();
        w.value(false);
        w.endArray();
        w.endObject();
    }
    json::Value v = parseOk(os.str());
    EXPECT_EQ(v.find("quote")->str(), "say \"hi\"");
    EXPECT_EQ(v.find("back")->str(), "C:\\temp");
    EXPECT_EQ(v.find("ctrl")->str(),
              std::string("a\0\x01\n\x1f", 5));
    EXPECT_EQ(v.find("utf8")->str(),
              "caf\xc3\xa9 \xe2\x98\x83 \xf0\x9f\x8e\xa8");
    EXPECT_EQ(v.find("u")->u64(), 18446744073709549568ull);
    EXPECT_DOUBLE_EQ(v.find("neg")->number(), -42.0);
    EXPECT_DOUBLE_EQ(v.find("pi")->number(), 3.25);
    EXPECT_TRUE(v.find("nested")->at(0).find("deep")->boolean());
    EXPECT_FALSE(v.find("nested")->at(1).boolean());
}
