#include "core/run_manifest.hh"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/resource.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/version.hh"
#include "perf/perf_counters.hh"
#include "simd/isa.hh"

extern char **environ;

namespace texcache {

namespace {

/** Process wall-clock origin (static init ~= process start). */
const auto processStart = std::chrono::steady_clock::now();

/** Peak resident set size so far, in bytes (0 when unavailable). */
uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is kilobytes on Linux.
    return uint64_t(ru.ru_maxrss) * 1024;
}

std::string
renderDouble(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

} // namespace

void
RunManifest::config(std::string key, std::string value)
{
    configs_.push_back({std::move(key), std::move(value), true});
}

void
RunManifest::config(std::string key, uint64_t value)
{
    configs_.push_back({std::move(key), std::to_string(value), false});
}

void
RunManifest::config(std::string key, double value)
{
    configs_.push_back({std::move(key), renderDouble(value), false});
}

void
RunManifest::metric(std::string name, double value,
                    std::string direction, double tolerance)
{
    metrics_.push_back({std::move(name), value, std::move(direction),
                        tolerance});
}

void
RunManifest::write(std::ostream &os, const stats::Group *root) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "texcache-bench-1");
    w.kv("bench", bench_);
    if (!scene_.empty())
        w.kv("scene", scene_);

    w.key("build");
    w.beginObject();
    w.kv("git_sha", TEXCACHE_GIT_SHA);
    w.kv("build_type", TEXCACHE_BUILD_TYPE);
    w.kv("compiler", TEXCACHE_COMPILER);
    w.kv("compiled", __DATE__ " " __TIME__);
    w.endObject();

    // Host execution context: machine-dependent facts a reader needs
    // to judge the throughput metrics (a parallel speedup below 1 on
    // a 1-core box is expected, not a regression) and the SIMD level
    // the kernels dispatched to. check_bench.py refuses to compare
    // "exact" metrics across manifests with different simd_isa.
    // Deterministic (service-response) manifests omit the block: the
    // serving host is not part of the request.
    if (!deterministic_) {
        w.key("host");
        w.beginObject();
        w.kv("hardware_concurrency",
             uint64_t(std::thread::hardware_concurrency()));
        w.kv("simd_isa", simd::isaName(simd::activeIsa()));
        w.kv("peak_rss_bytes", peakRssBytes());
        w.endObject();
    }

    // Host hardware-counter mirror of the run (report-only; never
    // gated - CI containers routinely lack perf_event_open, in which
    // case the block says so instead of lying with zeros). Omitted
    // from deterministic service responses like the host block.
    if (!deterministic_) {
        perf::Reading r = perf::read();
        uint64_t sim = perf::simulatedAccesses();
        w.key("perf");
        w.beginObject();
        w.kv("available", r.available);
        if (!r.available) {
            w.kv("reason", perf::unavailableReason());
        } else {
            w.kv("cycles", r.cycles);
            w.kv("instructions", r.instructions);
            w.kv("ipc", r.ipc());
            w.kv("llc_loads", r.llcLoads);
            w.kv("llc_misses", r.llcMisses);
            w.kv("llc_miss_rate", r.llcMissRate());
            w.kv("branch_misses", r.branchMisses);
            w.kv("multiplexed", r.multiplexed);
        }
        w.kv("simulated_accesses", sim);
        // The paper's own metric, mirrored onto the host: how often
        // the *simulator* misses in the host LLC per texel access it
        // simulates.
        w.kv("llc_misses_per_simulated_access",
             (r.available && sim) ? double(r.llcMisses) / double(sim)
                                  : 0.0);
        w.endObject();
    }

    // Every TEXCACHE_* override in effect; thread count and trace
    // cache placement change what a run measures. Deterministic
    // (service-response) manifests omit the block: the serving
    // process's environment is not part of the request.
    if (!deterministic_) {
        w.key("env");
        w.beginObject();
        for (char **e = environ; e && *e; ++e) {
            if (std::strncmp(*e, "TEXCACHE_", 9) != 0)
                continue;
            const char *eq = std::strchr(*e, '=');
            if (!eq)
                continue;
            w.kv(std::string_view(*e, eq - *e),
                 std::string_view(eq + 1));
        }
        w.endObject();
    }

    if (!configs_.empty()) {
        w.key("config");
        w.beginObject();
        for (const ConfigRow &c : configs_) {
            w.key(c.key);
            if (c.quoted)
                w.value(c.text);
            else
                w.rawValue(c.text);
        }
        w.endObject();
    }

    w.kv("wall_ms",
         deterministic_
             ? 0.0
             : std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - processStart)
                   .count());

    if (!trace_.chromePath.empty() || !trace_.eventsPath.empty()) {
        w.key("trace");
        w.beginObject();
        if (!trace_.chromePath.empty())
            w.kv("chrome", trace_.chromePath);
        if (!trace_.eventsPath.empty())
            w.kv("events", trace_.eventsPath);
        w.kv("recorded_events", trace_.recorded);
        w.kv("dropped_events", trace_.dropped);
        w.kv("sample_n", trace_.sampleN);
        w.endObject();
    }

    if (!deterministic_ && (!profile_.collapsedPath.empty() ||
                            !profile_.speedscopePath.empty())) {
        w.key("profile");
        w.beginObject();
        if (!profile_.collapsedPath.empty())
            w.kv("collapsed", profile_.collapsedPath);
        if (!profile_.speedscopePath.empty())
            w.kv("speedscope", profile_.speedscopePath);
        w.kv("samples", profile_.samples);
        w.kv("dropped_samples", profile_.dropped);
        w.kv("hz", uint64_t(profile_.hz));
        w.endObject();
    }

    w.key("metrics");
    w.beginObject();
    for (const Metric &m : metrics_) {
        w.key(m.name);
        w.beginObject();
        w.kv("value", m.value);
        w.kv("direction", m.direction);
        if (m.direction == "higher" || m.direction == "lower" ||
            m.direction == "ceiling")
            w.kv("tolerance", m.tolerance);
        w.endObject();
    }
    w.endObject();

    if (root) {
        w.key("stats");
        root->writeJson(w);
    }
    w.endObject();
    os << "\n";
}

std::string
RunManifest::toString(const stats::Group *root) const
{
    std::ostringstream os;
    write(os, root);
    return os.str();
}

std::string
RunManifest::defaultPath() const
{
    std::string name = "BENCH_" + bench_ + ".json";
    const char *dir = std::getenv("TEXCACHE_STATS_DIR");
    if (dir && *dir)
        return std::string(dir) + "/" + name;
    return name;
}

void
RunManifest::writeFile(const stats::Group *root) const
{
    std::string path = defaultPath();
    std::ofstream os(path);
    if (!os) {
        warn("cannot write run manifest to ", path);
        return;
    }
    write(os, root);
    inform("wrote run manifest ", path);
}

} // namespace texcache
