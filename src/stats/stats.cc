#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace texcache {
namespace stats {

Scalar::Scalar(Group &parent, std::string name, std::string desc)
{
    parent.add(*this, std::move(name), std::move(desc));
}

void
Scalar::writeJson(JsonWriter &w) const
{
    w.value(value_);
}

Distribution::Distribution(Group &parent, std::string name,
                           std::string desc)
{
    parent.add(*this, std::move(name), std::move(desc));
}

void
Distribution::merge(const Distribution &other)
{
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_) {
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }
}

void
Distribution::subtractCounts(const Distribution &earlier)
{
    for (unsigned i = 0; i < kBuckets; ++i) {
        buckets_[i] = buckets_[i] >= earlier.buckets_[i]
                          ? buckets_[i] - earlier.buckets_[i]
                          : 0;
    }
    count_ = count_ >= earlier.count_ ? count_ - earlier.count_ : 0;
    sum_ = sum_ >= earlier.sum_ ? sum_ - earlier.sum_ : 0;
    // min_/max_ keep the later reading's values (see header); an empty
    // delta reverts to the pristine sentinels so min() reports 0.
    if (!count_) {
        min_ = ~0ULL;
        max_ = 0;
    }
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::percentile(double p) const
{
    if (!count_)
        return 0.0;
    // A NaN p would slide through min/max clamping (every comparison
    // is false) and poison the rank; treat it as p=0.
    if (!std::isfinite(p))
        p = p > 0 ? 1.0 : 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    // Rank of the target sample, 1-based; p=0 -> first, p=1 -> last.
    double rank = 1.0 + p * static_cast<double>(count_ - 1);
    uint64_t below = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (!buckets_[i])
            continue;
        if (rank > static_cast<double>(below + buckets_[i])) {
            below += buckets_[i];
            continue;
        }
        // Bucket i covers [2^(i-1), 2^i) for i >= 1 and {0} for i = 0;
        // spread its samples uniformly across that range.
        double lo = i ? static_cast<double>(1ULL << (i - 1)) : 0.0;
        double hi = i ? static_cast<double>(lo * 2.0) : 1.0;
        double frac = (rank - static_cast<double>(below)) /
                      static_cast<double>(buckets_[i]);
        double v = lo + frac * (hi - lo);
        v = std::min(v, static_cast<double>(max_));
        v = std::max(v, static_cast<double>(min()));
        return v;
    }
    return static_cast<double>(max_);
}

void
Distribution::writeJson(JsonWriter &w) const
{
    // Trim the bucket array at the last non-empty bucket; the log2
    // rule reconstructs each bucket's range from its index.
    unsigned top = 0;
    for (unsigned i = 0; i < kBuckets; ++i)
        if (buckets_[i])
            top = i + 1;
    w.beginObject();
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("min", min());
    w.kv("max", max_);
    w.kv("mean", mean());
    w.kv("p50", percentile(0.50));
    w.kv("p95", percentile(0.95));
    w.kv("p99", percentile(0.99));
    w.kv("bucketing", "log2");
    w.key("buckets");
    w.beginArray();
    for (unsigned i = 0; i < top; ++i)
        w.value(buckets_[i]);
    w.endArray();
    w.endObject();
}

Formula::Formula(Group &parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : fn_(std::move(fn))
{
    parent.add(*this, std::move(name), std::move(desc));
}

double
Formula::total() const
{
    double v = fn_ ? fn_() : 0.0;
    return std::isfinite(v) ? v : 0.0;
}

void
Formula::writeJson(JsonWriter &w) const
{
    w.value(total());
}

Group::Group(std::string name) : name_(std::move(name)) {}

Group::Group(Group &parent, std::string name)
{
    parent.checkName(name);
    name_ = std::move(name);
    parent.childOrder_.push_back(this);
}

void
Group::checkName(const std::string &name) const
{
    panic_if(name.empty(), "stats: empty name in group '", name_, "'");
    panic_if(name.find('.') != std::string::npos,
             "stats: name '", name, "' contains the path separator '.'");
    for (const StatBase *s : statsOrder_)
        panic_if(s->name() == name, "stats: duplicate name '", name,
                 "' in group '", name_, "'");
    for (const Group *g : childOrder_)
        panic_if(g->name() == name, "stats: duplicate name '", name,
                 "' in group '", name_, "'");
}

void
Group::add(StatBase &stat, std::string name, std::string desc)
{
    checkName(name);
    stat.name_ = std::move(name);
    stat.desc_ = std::move(desc);
    statsOrder_.push_back(&stat);
}

Group &
Group::group(std::string name)
{
    auto child = std::make_unique<Group>(*this, std::move(name));
    Group &ref = *child;
    ownedChildren_.push_back(std::move(child));
    return ref;
}

Scalar &
Group::scalar(std::string name, std::string desc)
{
    auto stat = std::make_unique<Scalar>();
    Scalar &ref = *stat;
    add(ref, std::move(name), std::move(desc));
    ownedStats_.push_back(std::move(stat));
    return ref;
}

Scalar &
Group::constant(std::string name, uint64_t value, std::string desc)
{
    Scalar &s = scalar(std::move(name), std::move(desc));
    s.set(value);
    return s;
}

Formula &
Group::real(std::string name, double value, std::string desc)
{
    return formula(std::move(name), std::move(desc),
                   [value] { return value; });
}

Formula &
Group::formula(std::string name, std::string desc,
               std::function<double()> fn)
{
    auto stat = std::make_unique<Formula>();
    stat->bind(std::move(fn));
    Formula &ref = *stat;
    add(ref, std::move(name), std::move(desc));
    ownedStats_.push_back(std::move(stat));
    return ref;
}

Distribution &
Group::distribution(std::string name, std::string desc)
{
    auto stat = std::make_unique<Distribution>();
    Distribution &ref = *stat;
    add(ref, std::move(name), std::move(desc));
    ownedStats_.push_back(std::move(stat));
    return ref;
}

Distribution &
Group::distribution(std::string name, std::string desc,
                    const Distribution &src)
{
    Distribution &d = distribution(std::move(name), std::move(desc));
    d.merge(src);
    return d;
}

const StatBase *
Group::find(std::string_view path) const
{
    size_t dot = path.find('.');
    if (dot == std::string_view::npos) {
        for (const StatBase *s : statsOrder_)
            if (s->name() == path)
                return s;
        return nullptr;
    }
    for (const Group *g : childOrder_)
        if (g->name() == path.substr(0, dot))
            return g->find(path.substr(dot + 1));
    return nullptr;
}

const Group *
Group::findGroup(std::string_view path) const
{
    size_t dot = path.find('.');
    std::string_view head = path.substr(0, dot);
    for (const Group *g : childOrder_) {
        if (g->name() == head) {
            return dot == std::string_view::npos
                       ? g
                       : g->findGroup(path.substr(dot + 1));
        }
    }
    return nullptr;
}

double
Group::value(std::string_view path) const
{
    const StatBase *s = find(path);
    panic_if(!s, "stats: no stat at path '", std::string(path),
             "' under group '", name_, "'");
    return s->total();
}

void
Group::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const StatBase *s : statsOrder_) {
        w.key(s->name());
        s->writeJson(w);
    }
    for (const Group *g : childOrder_) {
        w.key(g->name());
        g->writeJson(w);
    }
    w.endObject();
}

void
Group::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    writeJson(w);
    os << "\n";
}

} // namespace stats
} // namespace texcache
