/** @file Tests for the Mattson stack-distance profiler. */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"
#include "cache/stack_dist.hh"
#include "common/rng.hh"

using namespace texcache;

TEST(StackDist, ColdMissesAreFirstTouches)
{
    StackDistProfiler p(32);
    p.access(0);
    p.access(32);
    p.access(64);
    EXPECT_EQ(p.coldMisses(), 3u);
    EXPECT_EQ(p.accesses(), 3u);
    // All accesses cold -> every size misses all three.
    EXPECT_EQ(p.misses(1 << 20), 3u);
}

TEST(StackDist, ImmediateReuseHasDistanceOne)
{
    StackDistProfiler p(32);
    p.access(0);
    p.access(0);
    ASSERT_GT(p.histogram().size(), 1u);
    EXPECT_EQ(p.histogram()[1], 1u);
    // A 1-line cache (32 B) captures the reuse.
    EXPECT_EQ(p.misses(32), 1u);
}

TEST(StackDist, DistanceCountsDistinctIntermediates)
{
    StackDistProfiler p(32);
    p.access(0);
    p.access(32);
    p.access(32); // duplicate must not inflate the next distance
    p.access(64);
    p.access(0); // distance 3: lines {0, 32, 64}
    const auto &h = p.histogram();
    ASSERT_GT(h.size(), 3u);
    EXPECT_EQ(h[3], 1u);
    // 2-line cache misses the distance-3 reuse; 3-line cache hits it.
    EXPECT_EQ(p.misses(2 * 32), 3u + 1u);
    EXPECT_EQ(p.misses(3 * 32), 3u);
}

TEST(StackDist, MissesAreMonotonicInSize)
{
    StackDistProfiler p(32);
    Rng rng(5);
    uint64_t cur = 0;
    for (int i = 0; i < 50000; ++i) {
        cur = (cur + rng.below(512)) & 0x3ffff;
        p.access(cur);
    }
    uint64_t prev = ~0ULL;
    for (uint64_t size = 32; size <= (1 << 20); size <<= 1) {
        uint64_t m = p.misses(size);
        EXPECT_LE(m, prev);
        prev = m;
    }
    EXPECT_EQ(p.misses(1 << 30), p.coldMisses());
}

/**
 * Property: the profiler's miss count at size S equals an explicit
 * fully associative LRU simulation at size S (Mattson's theorem made
 * executable). This also exercises the Fenwick compaction paths.
 */
class StackDistEquivalence
    : public ::testing::TestWithParam<std::pair<uint64_t, unsigned>>
{};

TEST_P(StackDistEquivalence, MatchesExplicitLru)
{
    auto [seed, line] = GetParam();
    StackDistProfiler prof(line);
    Rng rng(seed);
    std::vector<uint64_t> trace;
    uint64_t cur = 0;
    for (int i = 0; i < 30000; ++i) {
        if (rng.below(100) < 3)
            cur = rng.below(1 << 18);
        else
            cur = (cur + rng.below(300)) & 0x3ffff;
        trace.push_back(cur);
        prof.access(cur);
    }
    for (uint64_t size : {1024u, 4096u, 32768u, 262144u}) {
        FullyAssocLru lru(size, line);
        for (uint64_t a : trace)
            lru.access(a);
        EXPECT_EQ(prof.misses(size), lru.stats().misses)
            << "size " << size;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLines, StackDistEquivalence,
    ::testing::Values(std::make_pair(1ull, 32u),
                      std::make_pair(2ull, 32u),
                      std::make_pair(3ull, 64u),
                      std::make_pair(4ull, 128u),
                      std::make_pair(99ull, 16u)));

TEST(StackDist, SurvivesManyDistinctLines)
{
    // Force repeated tree growth/compaction: 200k distinct lines, then
    // re-touch an early one.
    StackDistProfiler p(32);
    for (uint64_t i = 0; i < 200000; ++i)
        p.access(i * 32);
    p.access(0);
    EXPECT_EQ(p.coldMisses(), 200000u);
    // The reuse distance of the final access is 200000.
    EXPECT_EQ(p.misses(200000ull * 32), 200000u);
    EXPECT_EQ(p.misses(199999ull * 32), 200001u);
}
