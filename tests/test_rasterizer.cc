/** @file Tests for pixel traversal orders and triangle rasterization. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "raster/rasterizer.hh"

using namespace texcache;

namespace {

std::vector<std::pair<int, int>>
visitOrder(const PixelRect &r, const RasterOrder &o)
{
    std::vector<std::pair<int, int>> seq;
    traverseRect(r, o, [&](int x, int y) { seq.emplace_back(x, y); });
    return seq;
}

ScreenVertex
sv(float x, float y)
{
    ScreenVertex r;
    r.x = x;
    r.y = y;
    r.invW = 1.0f;
    return r;
}

} // namespace

TEST(Traversal, HorizontalIsRowMajor)
{
    auto seq = visitOrder({0, 0, 2, 1}, RasterOrder::horizontal());
    std::vector<std::pair<int, int>> expect = {{0, 0}, {1, 0}, {2, 0},
                                               {0, 1}, {1, 1}, {2, 1}};
    EXPECT_EQ(seq, expect);
}

TEST(Traversal, VerticalIsColumnMajor)
{
    auto seq = visitOrder({0, 0, 1, 2}, RasterOrder::vertical());
    std::vector<std::pair<int, int>> expect = {{0, 0}, {0, 1}, {0, 2},
                                               {1, 0}, {1, 1}, {1, 2}};
    EXPECT_EQ(seq, expect);
}

TEST(Traversal, EmptyRectVisitsNothing)
{
    auto seq = visitOrder(PixelRect{}, RasterOrder::horizontal());
    EXPECT_TRUE(seq.empty());
}

TEST(Traversal, AllOrdersVisitTheSamePixelSet)
{
    PixelRect r{3, 5, 20, 17};
    std::set<std::pair<int, int>> ref;
    for (auto &p : visitOrder(r, RasterOrder::horizontal()))
        ref.insert(p);
    for (RasterOrder o : {RasterOrder::vertical(),
                          RasterOrder::tiledOrder(8, 8),
                          RasterOrder::tiledOrder(4, 4,
                                                  ScanDirection::Vertical),
                          RasterOrder::tiledOrder(16, 2)}) {
        auto seq = visitOrder(r, o);
        std::set<std::pair<int, int>> got(seq.begin(), seq.end());
        EXPECT_EQ(got, ref) << o.str();
        EXPECT_EQ(seq.size(), ref.size()) << o.str(); // no duplicates
    }
}

TEST(Traversal, TiledVisitsWholeTileBeforeNext)
{
    // Tiles aligned to the screen origin: rect {0,0,15,15} with 8x8
    // tiles -> 4 tiles of 64 pixels each, visited contiguously.
    auto seq = visitOrder({0, 0, 15, 15}, RasterOrder::tiledOrder(8, 8));
    ASSERT_EQ(seq.size(), 256u);
    auto tile_of = [](std::pair<int, int> p) {
        return std::make_pair(p.first / 8, p.second / 8);
    };
    for (size_t i = 0; i < seq.size(); ++i) {
        size_t tile_index = i / 64;
        std::pair<int, int> expect_tile = {
            static_cast<int>(tile_index % 2),
            static_cast<int>(tile_index / 2)};
        ASSERT_EQ(tile_of(seq[i]), expect_tile) << "i=" << i;
    }
}

TEST(Traversal, TiledVerticalOrdersTilesByColumn)
{
    auto seq = visitOrder({0, 0, 15, 15},
                          RasterOrder::tiledOrder(
                              8, 8, ScanDirection::Vertical));
    // First 128 pixels come from tile column 0 (x < 8).
    for (size_t i = 0; i < 128; ++i)
        ASSERT_LT(seq[i].first, 8);
    for (size_t i = 128; i < 256; ++i)
        ASSERT_GE(seq[i].first, 8);
}

TEST(Traversal, TilesAreScreenAlignedForOffsetRects)
{
    // A rect straddling a tile boundary: the partial tile is visited
    // first, exactly as a full-screen tiled pass would reach it.
    auto seq = visitOrder({6, 0, 9, 1}, RasterOrder::tiledOrder(8, 8));
    std::vector<std::pair<int, int>> expect = {
        {6, 0}, {7, 0}, {6, 1}, {7, 1}, // tile 0 part
        {8, 0}, {9, 0}, {8, 1}, {9, 1}, // tile 1 part
    };
    EXPECT_EQ(seq, expect);
}

TEST(Rasterize, OrdersProduceSameFragmentSet)
{
    TriangleSetup t(sv(2, 3), sv(40, 7), sv(11, 37));
    std::set<std::pair<int, int>> ref;
    rasterizeTriangle(t, 64, 64, RasterOrder::horizontal(),
                      [&](const Fragment &f) {
                          ref.insert({f.x, f.y});
                      });
    ASSERT_FALSE(ref.empty());
    for (RasterOrder o : {RasterOrder::vertical(),
                          RasterOrder::tiledOrder(8, 8)}) {
        std::set<std::pair<int, int>> got;
        rasterizeTriangle(t, 64, 64, o, [&](const Fragment &f) {
            got.insert({f.x, f.y});
        });
        EXPECT_EQ(got, ref) << o.str();
    }
}

TEST(Rasterize, ClipsToScreen)
{
    TriangleSetup t(sv(-20, -20), sv(200, -20), sv(-20, 200));
    unsigned count = 0;
    rasterizeTriangle(t, 32, 32, RasterOrder::horizontal(),
                      [&](const Fragment &f) {
                          EXPECT_GE(f.x, 0);
                          EXPECT_GE(f.y, 0);
                          EXPECT_LT(f.x, 32);
                          EXPECT_LT(f.y, 32);
                          ++count;
                      });
    EXPECT_EQ(count, 32u * 32u); // triangle covers the whole screen
}

TEST(RasterOrder, StringNames)
{
    EXPECT_EQ(RasterOrder::horizontal().str(), "horizontal");
    EXPECT_EQ(RasterOrder::vertical().str(), "vertical");
    EXPECT_EQ(RasterOrder::tiledOrder(8, 8).str(), "tiled-8x8-horizontal");
    EXPECT_EQ(RasterOrder::tiledOrder(4, 2, ScanDirection::Vertical).str(),
              "tiled-4x2-vertical");
}
