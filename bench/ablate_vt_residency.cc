/**
 * @file
 * Extension: virtual texturing residency ablation (src/vt/).
 *
 * The paper assumes every texture is fully resident in DRAM. This
 * ablation drops that assumption: each scene renders with only a
 * bounded physical page pool resident, misses fetched asynchronously
 * and sampling degrading to the finest resident ancestor mip level
 * meanwhile. The sweep crosses pool budget x page size, cold-started
 * (nothing resident but the pinned coarsest levels); the "warm" row
 * prefaults the whole footprint and must show zero degradation -
 * the subsystem is bit-neutral when memory suffices.
 *
 * The second table puts the paper's cache hierarchy in front of the
 * pool: an L1/L2 filters the baseline texel stream and only true
 * memory fills probe page residency.
 *
 * Every sweep point owns its full VT stack (pool, fetch queue,
 * sampler) and re-renders from the prebuilt read-only scene, so the
 * 28 cold/warm points and the 4 front-cache replays all execute on
 * the sweep thread pool; rows print in deterministic point order.
 */

#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "cache/stats_export.hh"
#include "vt/vt_memory.hh"
#include "vt/vt_sampler.hh"
#include "vt/vt_stats.hh"

using namespace texcache;
using namespace texcache::benchutil;

namespace {

VtConfig
vtConfig(const Scene &scene, unsigned page_bytes, uint64_t pool_bytes)
{
    VtConfig cfg;
    cfg.pageBytes = page_bytes;
    cfg.poolPages = pool_bytes / page_bytes;
    // The pool must at least hold every texture's pinned fallback
    // level plus in-flight fills; scenes with many textures (Town: 51)
    // push the floor above the smallest budgets.
    uint64_t floor = scene.textures.size() + cfg.maxInFlight;
    if (cfg.poolPages < floor)
        cfg.poolPages = floor;
    return cfg;
}

/** One cold- or warm-started VT render of @p scene; returns the row. */
std::vector<std::string>
runVt(const Scene &scene, const SceneLayout &layout,
      const RasterOrder &order, const VtConfig &cfg, bool warm)
{
    VirtualTextureMemory mem(cfg);
    VtSampler vt(layout, mem);
    if (warm)
        vt.prefaultAll();

    RenderOptions opts;
    opts.captureTrace = false;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    opts.vtResolve = vt.hook();
    render(scene, order, opts);

    const DegradationStats &deg = vt.degradation();
    const FetchQueueStats &fq = mem.fetchQueue().stats();
    const PagePoolStats &pool = mem.pool().stats();
    return {scene.name, fmtBytes(cfg.pageBytes),
            warm ? "warm" : fmtBytes(cfg.poolBytes()),
            fmtPercent(deg.degradedFraction()),
            fmtFixed(deg.avgDelta(), 2),
            std::to_string(deg.maxDelta()),
            std::to_string(fq.issued), std::to_string(fq.dedupHits),
            std::to_string(fq.drops),
            std::to_string(pool.evictions),
            fmtPercent(pool.hitRate()),
            std::to_string(pool.residentHighWater)};
}

} // namespace

int
main()
{
    TextTable sweep(
        "Ablation: virtual texturing, pool budget x page size (cold "
        "start; warm row prefaults the full footprint)");
    sweep.header({"Scene", "Page", "Pool", "Degraded", "AvgDelta",
                  "MaxDelta", "Fetches", "Dedup", "Drops", "Evict",
                  "PoolHit", "ResidentHW"});

    const unsigned page_sizes[] = {16 * 1024, 64 * 1024};
    const uint64_t pool_budgets[] = {1 << 20, 4 << 20, 16 << 20};

    // Serial phase: build scenes and one shared read-only layout per
    // scene, then enumerate every (scene, page, budget) render as an
    // independent sweep point (warm rows included, in row order).
    struct Point
    {
        const Scene *scene;
        std::shared_ptr<SceneLayout> layout;
        RasterOrder order;
        VtConfig cfg;
        bool warm;
    };
    std::vector<Point> points;
    for (BenchScene s : allBenchScenes()) {
        const Scene &scene = store().scene(s);
        auto layout =
            std::make_shared<SceneLayout>(scene, blockedForLine(64));
        RasterOrder order = sceneOrder(s);
        for (unsigned page : page_sizes)
            for (uint64_t budget : pool_budgets)
                points.push_back({&scene, layout, order,
                                  vtConfig(scene, page, budget), false});
        // Warm start sized to the whole footprint: must not degrade.
        VtConfig cfg = vtConfig(scene, 64 * 1024, 0);
        cfg.poolPages = layout->totalFootprint() / cfg.pageBytes + 2;
        points.push_back({&scene, layout, order, cfg, true});
    }

    auto rows = Sweep::run(points, [](const Point &p) {
        return runVt(*p.scene, *p.layout, p.order, p.cfg, p.warm);
    });
    for (const auto &r : rows)
        sweep.row(r.value);
    sweep.print(std::cout);
    std::cout << "\n";

    // The cache hierarchy in front of the pool: replay the baseline
    // trace through a private L1 + shared L2 and let only the memory
    // fills probe residency.
    TextTable front(
        "L1/L2 in front of the VT pool (baseline trace replay, 64KB "
        "pages, 4MB pool)");
    front.header({"Scene", "Accesses", "MemFills", "PoolLookups",
                  "PoolHit", "Fetches"});

    struct FrontPoint
    {
        const Scene *scene;
        std::shared_ptr<SceneLayout> layout;
        const TexelTrace *trace;
    };
    std::vector<FrontPoint> fronts;
    for (BenchScene s : allBenchScenes()) {
        const Scene &scene = store().scene(s);
        fronts.push_back({&scene,
                          std::make_shared<SceneLayout>(
                              scene, blockedForLine(64)),
                          &store().trace(s, sceneOrder(s))});
    }

    auto frontRows = Sweep::run(fronts, [&](const FrontPoint &p) {
        VirtualTextureMemory mem(
            vtConfig(*p.scene, 64 * 1024, 4 << 20));
        TwoLevelCache h(1, CacheConfig{16 * 1024, 64, 2},
                        CacheConfig{128 * 1024, 64, 4});
        h.setMemoryBackend([&](Addr a) { mem.touch(a); });
        // Cache hits never reach the pool, but they still take time:
        // advance the VT clock once per texel access so in-flight
        // fetches retire while the hierarchy absorbs the traffic.
        p.layout->forEachAddress(*p.trace, [&](Addr a) {
            mem.advance(1);
            h.access(0, a);
        });
        const PagePoolStats &pool = mem.pool().stats();
        return std::vector<std::string>{
            p.scene->name, std::to_string(h.totalAccesses()),
            std::to_string(h.memoryFills()),
            std::to_string(pool.lookups),
            fmtPercent(pool.hitRate()),
            std::to_string(mem.fetchQueue().stats().issued)};
    });
    for (const auto &r : frontRows)
        front.row(r.value);
    front.print(std::cout);

    // One canonical cold point re-run with its stacks kept alive in
    // this scope, so the run manifest can dump the *full* VT and cache
    // hierarchy stats trees that the table rows above only summarize.
    BenchScene repScene = allBenchScenes().front();
    const FrontPoint &rep = fronts.front();
    VirtualTextureMemory repMem(vtConfig(*rep.scene, 64 * 1024,
                                         4 << 20));
    VtSampler repVt(*rep.layout, repMem);
    {
        RenderOptions opts;
        opts.captureTrace = false;
        opts.writeFramebuffer = false;
        opts.countRepetition = false;
        opts.vtResolve = repVt.hook();
        render(*rep.scene, sceneOrder(repScene), opts);
    }
    TwoLevelCache repHier(1, CacheConfig{16 * 1024, 64, 2},
                          CacheConfig{128 * 1024, 64, 4});
    rep.layout->forEachAddress(*rep.trace,
                               [&](Addr a) { repHier.access(0, a); });

    dumpStats("ablate_vt_residency", [&](RunManifest &m,
                                         stats::Group &root) {
        m.setScene("all");
        m.config("rep_scene", std::string(benchSceneName(repScene)));
        m.config("rep_page_bytes", uint64_t(64 * 1024));
        m.config("rep_pool_bytes", uint64_t(4) << 20);
        exportPointTimes(*root.findGroup("sweep"), rows);
        exportVtStats(root.group("vt"), repMem, &repVt.degradation());
        exportHierarchyStats(root.group("cache"), repHier);
        // The VT stack is cycle-driven and single-threaded per point:
        // everything below is deterministic, so pin it exactly.
        m.metric("rep_degraded_fraction",
                 repVt.degradation().degradedFraction(), "exact");
        m.metric("rep_pool_hit_rate", repMem.pool().stats().hitRate(),
                 "exact");
        m.metric("rep_l1_miss_rate", root.value("cache.l1.miss_rate"),
                 "exact");
    });
    return 0;
}
