/**
 * @file
 * Tile-parallel deterministic rendering (DESIGN.md section 11).
 *
 * The screen is decomposed into tiles aligned to the rasterization
 * order's own traversal structure, clipped triangles are binned into
 * the tiles their bounding boxes overlap, and the tiles render
 * concurrently on the core/sweep work-stealing pool - each worker
 * emitting into a private texel-record buffer, private statistics and
 * a private (disjoint) framebuffer region. A deterministic merge then
 * reassembles the per-(triangle, tile) segments in (triangle order,
 * canonical tile order), which reproduces the serial traversal
 * exactly: the trace, framebuffer and statistics are byte-identical
 * to renderReference() at any thread count.
 *
 * Tile decompositions per order (each chosen so a tile boundary never
 * splits the serial traversal of a triangle *within* one tile's
 * region out of order):
 *
 *  - horizontal scanline: full-width row strips;
 *  - vertical scanline:   full-height column strips;
 *  - tiled:               exactly the order's screen-aligned tile
 *                         grid, in its tile traversal order;
 *  - Hilbert:             origin-aligned 2^k blocks, which occupy
 *                         contiguous Hilbert index ranges, ordered by
 *                         curve position.
 */

#ifndef TEXCACHE_PIPELINE_TILE_RENDER_HH
#define TEXCACHE_PIPELINE_TILE_RENDER_HH

#include "pipeline/renderer.hh"

namespace texcache {

/**
 * Render @p scene with the tile engine. Byte-identical to
 * renderReference(scene, order, opts) for any TEXCACHE_THREADS value;
 * does not support the per-fragment hooks (render() routes those to
 * the reference path).
 */
RenderOutput renderTiled(const Scene &scene, const RasterOrder &order,
                         const RenderOptions &opts);

} // namespace texcache

#endif // TEXCACHE_PIPELINE_TILE_RENDER_HH
