/**
 * @file
 * Ablation (extension): texture base-address alignment vs cache
 * conflicts.
 *
 * The paper allocates texture arrays with malloc(), which for
 * megabyte arrays means page-aligned bases - every texture starts at
 * the same low address bits and therefore maps to the same cache sets.
 * Section 5.3.3's conflict analysis is intra-texture; this harness
 * measures the *inter-texture* component by sweeping the allocator's
 * base alignment: fine (line-sized) alignment staggers textures across
 * sets, cache-sized alignment piles every texture onto set 0.
 * Scenes with many textures (Town: 51) are the sensitive case.
 */

#include "bench/bench_util.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    constexpr unsigned kLine = 128;

    TextTable table("Extension: texture base alignment vs conflict "
                    "misses, blocked 8x8, 128B lines, tiled 8x8");
    table.header({"Scene", "Cache", "align=128B", "align=4KB",
                  "align=32KB"});

    for (BenchScene s : {BenchScene::Town, BenchScene::Flight}) {
        const RenderOutput &out =
            store().output(s, sceneOrder(s, /*tiled=*/true, 8));
        for (CacheConfig cache :
             {CacheConfig{8 * 1024, kLine, 1},
              CacheConfig{8 * 1024, kLine, 2},
              CacheConfig{32 * 1024, kLine, 2}}) {
            std::vector<std::string> row = {benchSceneName(s),
                                            cache.str()};
            for (uint64_t align : {128ull, 4096ull, 32768ull}) {
                LayoutParams params;
                params.kind = LayoutKind::Blocked;
                params.blockW = params.blockH = 8;
                params.baseAlign = align;
                SceneLayout layout(store().scene(s), params);
                CacheStats stats = runCache(out.trace, layout, cache);
                row.push_back(fmtPercent(stats.missRate()));
            }
            table.row(row);
        }
    }
    table.print(std::cout);
    std::cout << "\nExpectation: coarser base alignment concentrates "
                 "texture bases onto the same sets and raises "
                 "conflict misses at low associativity; a fully "
                 "associative cache would be indifferent.\n";
    return 0;
}
