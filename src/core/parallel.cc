#include "core/parallel.hh"

#include <algorithm>

namespace texcache {

const char *
workDistributionName(WorkDistribution d)
{
    switch (d) {
      case WorkDistribution::ScanlineInterleaved:
        return "scanline-interleaved";
      case WorkDistribution::TileInterleaved:
        return "tile-interleaved";
      case WorkDistribution::Bands:
        return "bands";
    }
    panic("unknown distribution");
}

double
ParallelStats::loadImbalance() const
{
    if (perGenerator.empty() || fragments == 0)
        return 0.0;
    // Imbalance over texel accesses (the unit of generator work).
    uint64_t max_acc = 0;
    for (const CacheStats &s : perGenerator)
        max_acc = std::max(max_acc, s.accesses);
    double mean = static_cast<double>(totalAccesses()) /
                  static_cast<double>(perGenerator.size());
    return mean > 0.0 ? static_cast<double>(max_acc) / mean : 0.0;
}

MultiGeneratorSim::MultiGeneratorSim(unsigned num_generators,
                                     WorkDistribution dist,
                                     const CacheConfig &per_cache,
                                     unsigned tile, unsigned screen_h)
    : n_(num_generators), dist_(dist), tile_(tile), screenH_(screen_h)
{
    fatal_if(n_ == 0, "need at least one fragment generator");
    fatal_if(tile_ == 0, "tile size must be nonzero");
    caches_.reserve(n_);
    for (unsigned i = 0; i < n_; ++i)
        caches_.emplace_back(per_cache);
    fragmentsPer_.assign(n_, 0);
}

void
MultiGeneratorSim::addFragment(int x, int y, const Addr *addrs,
                               unsigned n)
{
    unsigned g = generatorFor(x, y);
    CacheSim &cache = caches_[g];
    for (unsigned i = 0; i < n; ++i)
        cache.access(addrs[i]);
    ++fragmentsPer_[g];
    ++fragments_;
}

ParallelStats
MultiGeneratorSim::finish() const
{
    ParallelStats stats;
    stats.fragments = fragments_;
    for (const CacheSim &c : caches_)
        stats.perGenerator.push_back(c.stats());
    return stats;
}

} // namespace texcache
