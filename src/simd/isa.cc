#include "simd/isa.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "simd/span_kernels.hh"

namespace texcache {
namespace simd {

namespace {

constexpr Isa kAllIsas[] = {Isa::Scalar, Isa::Sse41, Isa::Avx2};

/** CPUID feature test (build-independent). */
bool
cpuSupports(Isa isa)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (isa) {
      case Isa::Scalar:
        return true;
      case Isa::Sse41:
        return __builtin_cpu_supports("sse4.1");
      case Isa::Avx2:
        return __builtin_cpu_supports("avx2");
    }
    return false;
#else
    return isa == Isa::Scalar;
#endif
}

std::string
supportedList()
{
    std::string s;
    for (Isa isa : kAllIsas) {
        if (!isaSupported(isa))
            continue;
        if (!s.empty())
            s += "|";
        s += isaName(isa);
    }
    return s;
}

/** The dispatched level; -1 until first resolved from the env. */
std::atomic<int> g_active{-1};

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return "scalar";
      case Isa::Sse41:
        return "sse41";
      case Isa::Avx2:
        return "avx2";
    }
    return "?";
}

bool
isaSupported(Isa isa)
{
    return kernelsFor(isa) != nullptr && cpuSupports(isa);
}

Isa
bestIsa()
{
    if (isaSupported(Isa::Avx2))
        return Isa::Avx2;
    if (isaSupported(Isa::Sse41))
        return Isa::Sse41;
    return Isa::Scalar;
}

std::vector<Isa>
supportedIsas()
{
    std::vector<Isa> out;
    for (Isa isa : kAllIsas)
        if (isaSupported(isa))
            out.push_back(isa);
    return out;
}

Isa
resolveIsa(const char *spec)
{
    if (!spec || !*spec || std::strcmp(spec, "native") == 0)
        return bestIsa();
    for (Isa isa : kAllIsas) {
        if (std::strcmp(spec, isaName(isa)) != 0)
            continue;
        fatal_if(!isaSupported(isa), "TEXCACHE_SIMD=", spec,
                 " is not available on this build/CPU (available: ",
                 supportedList(), ")");
        return isa;
    }
    fatal("TEXCACHE_SIMD=", spec,
          " is not one of scalar|sse41|avx2|native");
}

Isa
isaFromEnv()
{
    return resolveIsa(std::getenv("TEXCACHE_SIMD"));
}

Isa
activeIsa()
{
    int v = g_active.load(std::memory_order_acquire);
    if (v >= 0)
        return static_cast<Isa>(v);
    Isa isa = isaFromEnv();
    // First resolution wins if two threads race; both saw the same
    // environment, so the value is the same either way.
    int expected = -1;
    if (g_active.compare_exchange_strong(expected,
                                         static_cast<int>(isa),
                                         std::memory_order_acq_rel))
        return isa;
    return static_cast<Isa>(expected);
}

void
setActiveIsa(Isa isa)
{
    fatal_if(!isaSupported(isa), "cannot activate ISA level ",
             isaName(isa), " (available: ", supportedList(), ")");
    g_active.store(static_cast<int>(isa), std::memory_order_release);
}

} // namespace simd
} // namespace texcache
