/**
 * @file
 * Sampling-profiler tests: attribution correctness on a synthetic
 * two-phase workload, ring wraparound accounting, dump formats,
 * request-tag slicing, and worker-thread discovery.
 *
 * Sample-count assertions are deliberately loose: the kernel clamps
 * per-thread CPU-clock timer delivery to its tick rate (~250 Hz on
 * CONFIG_HZ=250 boxes) regardless of the requested 997 Hz, so tests
 * assert fractions and floors, never hz * seconds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include "common/json_reader.hh"
#include "prof/prof.hh"
#include "tracing/tracing.hh"

using namespace texcache;

namespace {

/** Spin this thread for @p cpu_ms of its own CPU time. The volatile
 *  accumulator keeps the loop from folding away. */
volatile uint64_t gSink = 0;

double
threadCpuMs()
{
    struct timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return ts.tv_sec * 1e3 + ts.tv_nsec / 1e6;
}

/** Forced inline so the hot loop lives bodily inside each caller:
 *  a plain call here would be a tail call at -O2, erasing the caller
 *  frame the attribution tests key on. */
inline __attribute__((always_inline)) void
burnCpu(double cpu_ms)
{
    double start = threadCpuMs();
    uint64_t h = 1469598103934665603ull;
    while (threadCpuMs() - start < cpu_ms) {
        for (int i = 0; i < 4096; ++i) {
            h ^= static_cast<uint64_t>(i);
            h *= 1099511628211ull;
        }
        gSink = h;
    }
}

/** Total sample count across a profile run. */
size_t
sampleTotal()
{
    return prof::snapshotSamples().size();
}

} // namespace

// Out of line and exported (not static) so dladdr can name them; the
// two-phase test keys its attribution checks on these symbols.
__attribute__((noinline)) void
profTestPhaseA(double cpu_ms)
{
    burnCpu(cpu_ms);
}

__attribute__((noinline)) void
profTestPhaseB(double cpu_ms)
{
    burnCpu(cpu_ms);
}

TEST(Prof, DisarmedCostsNothingAndCaptureNothing)
{
    ASSERT_FALSE(prof::armed());
    EXPECT_EQ(prof::hz(), 0u);
    prof::Counts c = prof::counts();
    EXPECT_EQ(c.total, 0u);
    EXPECT_EQ(c.dropped, 0u);
    // The request-tag store must be safe disarmed (texcached calls it
    // unconditionally around every batch).
    prof::setRequestTag(7);
    prof::setRequestTag(0);
    EXPECT_TRUE(prof::snapshotSamples().empty());
}

TEST(Prof, TwoPhaseSymbolAndSpanAttribution)
{
    prof::Options opts;
    opts.hz = 997;
    ASSERT_TRUE(prof::start(opts));
    uint64_t before = prof::counts().total;

    uint16_t idA = tracing::nameId("phase.A");
    uint16_t idB = tracing::nameId("phase.B");
    {
        tracing::ScopedSpan span(idA);
        profTestPhaseA(400.0);
    }
    {
        tracing::ScopedSpan span(idB);
        profTestPhaseB(400.0);
    }
    prof::stop();

    std::vector<prof::Sample> samples = prof::snapshotSamples();
    ASSERT_GE(prof::counts().total - before, 40u)
        << "timer delivered implausibly few samples";

    prof::Symbolizer sym;
    size_t inA = 0, inB = 0;
    size_t aCorrectSpan = 0, bCorrectSpan = 0;
    size_t spanA = 0, spanB = 0;
    size_t spanACorrectSym = 0, spanBCorrectSym = 0;
    for (const prof::Sample &s : samples) {
        std::string stack = sym.stackLine(s);
        bool hasA = stack.find("profTestPhaseA") != std::string::npos;
        bool hasB = stack.find("profTestPhaseB") != std::string::npos;
        if (hasA) {
            ++inA;
            aCorrectSpan += s.span == idA;
        }
        if (hasB) {
            ++inB;
            bCorrectSpan += s.span == idB;
        }
        if (s.span == idA) {
            ++spanA;
            spanACorrectSym += hasA;
        }
        if (s.span == idB) {
            ++spanB;
            spanBCorrectSym += hasB;
        }
    }
    // Both phases burned equal CPU; both must show up substantially.
    ASSERT_GE(inA, 10u) << "phase A never symbolized";
    ASSERT_GE(inB, 10u) << "phase B never symbolized";
    // >= 80% agreement in both directions: samples whose stack names
    // a phase carry that phase's span, and samples inside a span
    // resolve to that phase's symbol.
    EXPECT_GE(aCorrectSpan * 100, inA * 80);
    EXPECT_GE(bCorrectSpan * 100, inB * 80);
    EXPECT_GE(spanACorrectSym * 100, spanA * 80);
    EXPECT_GE(spanBCorrectSym * 100, spanB * 80);
}

TEST(Prof, RingWraparoundAccounting)
{
    prof::Options opts;
    opts.hz = 997;
    opts.capacity = 32;
    ASSERT_TRUE(prof::start(opts));
    // Spin until the ring has provably wrapped; cap the wait so a
    // refusing kernel fails loudly instead of hanging.
    double start = threadCpuMs();
    while (prof::counts().total < 80 &&
           threadCpuMs() - start < 10000.0)
        burnCpu(20.0);
    prof::stop();

    prof::Counts c = prof::counts();
    ASSERT_GT(c.total, 32u) << "ring never wrapped";
    EXPECT_EQ(c.retained, 32u);
    EXPECT_EQ(c.dropped, c.total - 32u);
    EXPECT_LE(sampleTotal(), 32u);
}

TEST(Prof, CollapsedAndSpeedscopeFormats)
{
    prof::Options opts;
    opts.hz = 997;
    ASSERT_TRUE(prof::start(opts));
    {
        uint16_t id = tracing::nameId("fmt.phase");
        tracing::ScopedSpan span(id);
        profTestPhaseA(250.0);
    }
    prof::stop();
    ASSERT_GE(sampleTotal(), 10u);

    std::ostringstream collapsed;
    prof::writeCollapsed(collapsed);
    std::istringstream lines(collapsed.str());
    std::string line;
    size_t nlines = 0;
    uint64_t total = 0;
    while (std::getline(lines, line)) {
        ++nlines;
        // "frame;frame;...;frame count": exactly one space, a
        // span-rooted stack, and a positive trailing count.
        size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_EQ(line.find(' '), sp) << line;
        EXPECT_EQ(line.rfind("span:", 0), 0u) << line;
        uint64_t count = std::stoull(line.substr(sp + 1));
        EXPECT_GT(count, 0u);
        total += count;
    }
    ASSERT_GT(nlines, 0u);
    EXPECT_EQ(total, sampleTotal());

    std::ostringstream speedscope;
    prof::writeSpeedscope(speedscope, "fmt");
    json::Value doc;
    json::ParseError err;
    ASSERT_TRUE(json::parse(speedscope.str(), doc, err))
        << err.message;
    EXPECT_EQ(doc.find("$schema")->str(),
              "https://www.speedscope.app/file-format-schema.json");
    const json::Value &frames =
        *doc.find("shared")->find("frames");
    ASSERT_GT(frames.size(), 0u);
    const json::Value &profile = doc.find("profiles")->at(0);
    EXPECT_EQ(profile.find("type")->str(), "sampled");
    const json::Value &stacks = *profile.find("samples");
    const json::Value &weights = *profile.find("weights");
    ASSERT_EQ(stacks.size(), weights.size());
    uint64_t weightSum = 0;
    for (size_t i = 0; i < weights.size(); ++i)
        weightSum += weights.at(i).u64();
    EXPECT_EQ(weightSum, profile.find("endValue")->u64());
    // Every frame index must be in range.
    for (size_t i = 0; i < stacks.size(); ++i)
        for (size_t j = 0; j < stacks.at(i).size(); ++j)
            EXPECT_LT(stacks.at(i).at(j).u64(), frames.size());
}

TEST(Prof, RequestTagSlicing)
{
    prof::Options opts;
    opts.hz = 997;
    ASSERT_TRUE(prof::start(opts));
    prof::setRequestTag(42);
    profTestPhaseA(250.0);
    prof::setRequestTag(0);
    prof::stop();

    std::ostringstream os;
    prof::writeProfileJson(os);
    json::Value doc;
    json::ParseError err;
    ASSERT_TRUE(json::parse(os.str(), doc, err)) << err.message;
    EXPECT_FALSE(doc.find("armed")->boolean()); // stopped above
    const json::Value *reqs = doc.find("requests");
    ASSERT_NE(reqs, nullptr);
    const json::Value *tagged = reqs->find("42");
    ASSERT_NE(tagged, nullptr) << os.str().substr(0, 400);
    EXPECT_GT(tagged->find("samples")->u64(), 0u);
    ASSERT_GT(tagged->find("stacks")->members().size(), 0u);
}

TEST(Prof, DiscoversThreadsStartedAfterArming)
{
    prof::Options opts;
    opts.hz = 997;
    ASSERT_TRUE(prof::start(opts));
    // The watcher rescans /proc/self/task every ~100 ms; half a
    // second of spinning leaves plenty of sampled windows. Main
    // blocks in join() burning no CPU, so key on the worker's actual
    // tid rather than comparing against whoever sampled first.
    std::atomic<uint32_t> workerTid{0};
    std::thread worker([&workerTid] {
        workerTid = static_cast<uint32_t>(syscall(SYS_gettid));
        burnCpu(500.0);
    });
    worker.join();
    prof::stop();

    size_t fromWorker = 0;
    for (const prof::Sample &s : prof::snapshotSamples())
        fromWorker += s.tid == workerTid.load();
    EXPECT_GE(fromWorker, 10u)
        << "no samples from the late-started worker thread";
}

TEST(Prof, DumpToFilesWritesBothArtifacts)
{
    prof::Options opts;
    opts.hz = 997;
    ASSERT_TRUE(prof::start(opts));
    profTestPhaseA(120.0);
    prof::stop();

    prof::DumpInfo info = prof::dumpToFiles("prof_test");
    ASSERT_FALSE(info.collapsedPath.empty());
    ASSERT_FALSE(info.speedscopePath.empty());
    EXPECT_GT(info.samples, 0u);
    std::ifstream collapsed(info.collapsedPath);
    ASSERT_TRUE(collapsed.good());
    std::string first;
    ASSERT_TRUE(static_cast<bool>(std::getline(collapsed, first)));
    EXPECT_EQ(first.rfind("span:", 0), 0u);
    std::ifstream speedscope(info.speedscopePath);
    ASSERT_TRUE(speedscope.good());
    std::remove(info.collapsedPath.c_str());
    std::remove(info.speedscopePath.c_str());
}
