/**
 * @file
 * Mattson stack-distance profiler.
 *
 * For an LRU-managed fully associative cache, an access hits iff its
 * reuse (stack) distance - the number of distinct lines touched since the
 * previous access to the same line - is at most the cache's line
 * capacity. Profiling the distance histogram in one pass therefore
 * yields the miss-rate-versus-cache-size curve for *every* cache size at
 * once, which is how the working-set figures of the paper (5.2, 5.6,
 * 6.2, ...) are regenerated efficiently.
 *
 * Distances are computed with a Fenwick tree over access timestamps:
 * each line contributes a 1 at its last-access time, and the distance of
 * a new access is the count of set positions after the line's previous
 * timestamp. The tree is periodically compacted so its size stays
 * proportional to the number of distinct lines.
 */

#ifndef TEXCACHE_CACHE_STACK_DIST_HH
#define TEXCACHE_CACHE_STACK_DIST_HH

#include <cstdint>
#include <vector>

#include "cache/line_table.hh"
#include "layout/address_space.hh"

namespace texcache {

/** One-pass LRU stack-distance profiler at line granularity. */
class StackDistProfiler
{
  public:
    explicit StackDistProfiler(unsigned line_bytes);

    /** Record one byte access. */
    void access(Addr addr);

    /** Total accesses recorded. */
    uint64_t accesses() const { return accesses_; }

    /** Cold (first-touch) accesses - misses at any cache size. */
    uint64_t coldMisses() const { return cold_; }

    /**
     * Misses a fully associative LRU cache of @p size_bytes would take
     * on the recorded trace (cold + reuse distances > capacity).
     */
    uint64_t misses(uint64_t size_bytes) const;

    /** Miss rate at @p size_bytes. */
    double
    missRate(uint64_t size_bytes) const
    {
        return accesses_
                   ? static_cast<double>(misses(size_bytes)) / accesses_
                   : 0.0;
    }

    /** The raw histogram: hist[d] = accesses with stack distance d
     *  (d >= 1; index 0 unused). */
    const std::vector<uint64_t> &histogram() const { return hist_; }

    /**
     * Record every cold (first-touch) line address into @p log, in
     * touch order. The sharded profiler (cache/shard_sim.hh) replays
     * exactly these accesses against a global LRU-stack oracle to
     * reconcile per-segment passes into the exact whole-trace
     * histogram. Pass nullptr to stop logging; @p log must outlive
     * the accesses recorded while set.
     */
    void setFirstTouchLog(std::vector<uint64_t> *log)
    {
        firstTouchLog_ = log;
    }

    /**
     * Every distinct line seen, ordered by last access (LRU first,
     * MRU last) - the profiler's LRU stack at this instant. Used by
     * segment reconciliation to re-establish the true global recency
     * order after a segment's pass merges (see shard_sim.cc).
     */
    std::vector<uint64_t> stackOrder() const;

  private:
    void compact();
    void fenwickAdd(size_t pos, int delta);
    uint64_t fenwickSuffix(size_t pos) const;

    unsigned lineShift_;
    uint64_t accesses_ = 0;
    uint64_t cold_ = 0;
    std::vector<uint64_t> hist_;

    /**
     * The top of the LRU stack, held exactly as a tiny array in true
     * recency order (front = MRU). Position i permanently owns the
     * (i+1)-th newest live timestamp, so re-accessing one of these
     * lines is a pure rotation of the line fields - the timestamp
     * multiset the Fenwick tree indexes never changes. A line's map
     * entry is allowed to go stale while it sits here; the true
     * timestamp is written back when the line is demoted off the end.
     * Texel streams (bilinear/trilinear fragments re-touch 2-4 lines)
     * resolve almost entirely inside this array.
     */
    struct TopEntry
    {
        uint64_t line;
        uint64_t time;
    };
    static constexpr size_t kTopK = 8;
    TopEntry top_[kTopK];
    size_t topSize_ = 0;

    std::vector<uint64_t> *firstTouchLog_ = nullptr;

    LineMap lastTime_; ///< line -> last access timestamp
    std::vector<uint64_t> tree_; ///< Fenwick over timestamps
    std::vector<bool> present_;  ///< timestamp still live
    uint64_t now_ = 0;           ///< next timestamp
};

} // namespace texcache

#endif // TEXCACHE_CACHE_STACK_DIST_HH
