/**
 * @file
 * The single kernel body behind every ISA level (DESIGN.md section 13).
 *
 * Included by exactly one per-ISA translation unit per traits type
 * (kernels_scalar.cc / kernels_sse41.cc / kernels_avx2.cc), each
 * compiled with its own -m flags. The traits type parameter keeps the
 * template instantiations distinct link symbols, so the linker can
 * never substitute a wider build's code into a narrower dispatch
 * target.
 *
 * Byte-identity rules this file lives by:
 *
 *  - Vectorize across fragments only; per fragment, perform the exact
 *    float operations of attributesAt / computeLod /
 *    sampleTouchesMipMapMode in the reference's association order.
 *    add/sub/mul/div/sqrt/floor and int converts are IEEE-exact per
 *    lane, so lane i equals the scalar run on fragment i bit for bit.
 *  - No FMA: the per-ISA sources are compiled with -ffp-contract=off
 *    and without -mfma, because the scalar reference (baseline x86-64)
 *    cannot contract either.
 *  - std::max(a, b) semantics (equal or NaN selects a) map to the
 *    intrinsic max with *swapped* operands; the traits' maxStd
 *    encapsulates that.
 *  - log2 stays scalar per lane: libm's polynomial cannot be
 *    reproduced exactly in vector form, so each lane calls the very
 *    same std::log2 the reference calls.
 *  - Mip level selection stays scalar per lane (it is branchy and
 *    feeds per-lane level dimensions); the dimension arrays are then
 *    re-loaded as vectors for the address math, avoiding gathers.
 *  - Batch tails (n % lanes != 0) are padded by repeating the last
 *    real pixel, so no lane ever computes on garbage (ASan-clean) and
 *    padded results are simply never read.
 */

#ifndef TEXCACHE_SIMD_KERNEL_BODY_HH
#define TEXCACHE_SIMD_KERNEL_BODY_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "simd/span_kernels.hh"
#include "texture/mipmap.hh"
#include "trace/texel_trace.hh"

namespace texcache {
namespace simd {

template <class V>
void
touchesKernel(const SpanContext &ctx, const int32_t *xs,
              const int32_t *ys, int n, SpanBatchOut &out)
{
    constexpr int W = V::kW;
    static_assert(kSpanBatch % W == 0, "batch must hold whole vectors");

    // Pad the tail with the last real pixel: full vector groups, every
    // lane a valid covered pixel.
    int np = (n + W - 1) / W * W;
    alignas(32) int32_t px[kSpanBatch], py[kSpanBatch];
    for (int i = 0; i < n; ++i) {
        px[i] = xs[i];
        py[i] = ys[i];
    }
    for (int i = n; i < np; ++i) {
        px[i] = xs[n - 1];
        py[i] = ys[n - 1];
    }

    // ---- Stage 1+2 (vector): attributesAt + the LOD footprint ------
    alignas(32) float U[kSpanBatch], Vc[kSpanBatch], Rho[kSpanBatch];
    const auto half = V::set1(0.5f);
    for (int g = 0; g < np; g += W) {
        auto pxc = V::add(V::toF(V::iload(px + g)), half);
        auto pyc = V::add(V::toF(V::iload(py + g)), half);
        // Plane::at: e0 + ex * x + ey * y, left to right.
        auto iw = V::add(V::add(V::set1(ctx.iwE0),
                                V::mul(V::set1(ctx.iwEx), pxc)),
                         V::mul(V::set1(ctx.iwEy), pyc));
        auto w = V::div(V::set1(1.0f), iw);
        auto uw = V::add(V::add(V::set1(ctx.uwE0),
                                V::mul(V::set1(ctx.uwEx), pxc)),
                         V::mul(V::set1(ctx.uwEy), pyc));
        auto vw = V::add(V::add(V::set1(ctx.vwE0),
                                V::mul(V::set1(ctx.vwEx), pxc)),
                         V::mul(V::set1(ctx.vwEy), pyc));
        auto u = V::mul(uw, w);
        auto v = V::mul(vw, w);
        // Quotient rule, exactly as attributesAt.
        auto dudx = V::mul(V::sub(V::set1(ctx.uwEx),
                                  V::mul(u, V::set1(ctx.iwEx))), w);
        auto dudy = V::mul(V::sub(V::set1(ctx.uwEy),
                                  V::mul(u, V::set1(ctx.iwEy))), w);
        auto dvdx = V::mul(V::sub(V::set1(ctx.vwEx),
                                  V::mul(v, V::set1(ctx.iwEx))), w);
        auto dvdy = V::mul(V::sub(V::set1(ctx.vwEy),
                                  V::mul(v, V::set1(ctx.iwEy))), w);
        // computeLod on derivatives scaled by the level-0 dimensions.
        auto a = V::mul(dudx, V::set1(ctx.texW));
        auto b = V::mul(dvdx, V::set1(ctx.texH));
        auto c = V::mul(dudy, V::set1(ctx.texW));
        auto d = V::mul(dvdy, V::set1(ctx.texH));
        auto rx = V::sqrt(V::add(V::mul(a, a), V::mul(b, b)));
        auto ry = V::sqrt(V::add(V::mul(c, c), V::mul(d, d)));
        auto rho = V::maxStd(rx, ry);
        V::store(U + g, u);
        V::store(Vc + g, v);
        V::store(Rho + g, rho);
    }

    // lambda per lane: libm log2 is not reproducible in vector form.
    float lam[kSpanBatch];
    for (int i = 0; i < np; ++i)
        lam[i] = Rho[i] <= 1e-20f ? -20.0f : std::log2(Rho[i]);

    // ---- Stage 3 (scalar per lane): mip level selection -------------
    const MipMap &mip = *ctx.mip;
    unsigned max_level = mip.numLevels() - 1;
    FilterKind kind[kSpanBatch];
    uint8_t ntouch[kSpanBatch];
    unsigned L0[kSpanBatch], L1[kSpanBatch];
    bool anyUpper = false;
    if (ctx.mode == FilterMode::Trilinear) {
        // Mirror sampleTouchesMipMapMode's trilinear branch exactly.
        for (int i = 0; i < np; ++i) {
            float lambda = lam[i];
            if (lambda <= 0.0f) {
                kind[i] = FilterKind::Bilinear;
                ntouch[i] = 4;
                L0[i] = 0;
                L1[i] = 0;
            } else {
                float clamped =
                    std::min(lambda, static_cast<float>(max_level));
                unsigned lower = static_cast<unsigned>(clamped);
                if (lower > max_level - (max_level ? 1 : 0) &&
                    max_level > 0)
                    lower = max_level - 1;
                if (max_level == 0)
                    lower = 0;
                unsigned upper = std::min(lower + 1, max_level);
                kind[i] = FilterKind::Trilinear;
                ntouch[i] = 8;
                L0[i] = lower;
                L1[i] = upper;
                anyUpper = true;
            }
        }
    } else {
        // Nearest-mip level selection (round-to-nearest past 0.5).
        for (int i = 0; i < np; ++i) {
            float lambda = lam[i];
            unsigned level = 0;
            if (lambda > 0.5f) {
                level = static_cast<unsigned>(lambda + 0.5f);
                if (level > max_level)
                    level = max_level;
            }
            L0[i] = level;
            L1[i] = level;
            if (ctx.mode == FilterMode::BilinearMipNearest) {
                kind[i] = FilterKind::Bilinear;
                ntouch[i] = 4;
            } else {
                kind[i] = FilterKind::Nearest;
                ntouch[i] = 1;
            }
        }
    }

    // Per-lane level dimensions, SoA so stage 4 loads vectors instead
    // of gathering.
    alignas(32) float fw0[kSpanBatch] = {}, fh0[kSpanBatch] = {};
    alignas(32) float fw1[kSpanBatch] = {}, fh1[kSpanBatch] = {};
    alignas(32) int32_t wm0[kSpanBatch] = {}, hm0[kSpanBatch] = {};
    alignas(32) int32_t wm1[kSpanBatch] = {}, hm1[kSpanBatch] = {};
    for (int i = 0; i < np; ++i) {
        const Image &l0 = mip.level(L0[i]);
        fw0[i] = static_cast<float>(l0.width());
        fh0[i] = static_cast<float>(l0.height());
        wm0[i] = static_cast<int32_t>(l0.width()) - 1;
        hm0[i] = static_cast<int32_t>(l0.height()) - 1;
        if (anyUpper) {
            const Image &l1 = mip.level(L1[i]);
            fw1[i] = static_cast<float>(l1.width());
            fh1[i] = static_cast<float>(l1.height());
            wm1[i] = static_cast<int32_t>(l1.width()) - 1;
            hm1[i] = static_cast<int32_t>(l1.height()) - 1;
        }
    }

    // ---- Stage 4 (vector): texel address generation -----------------
    const bool repeat = ctx.wrap == WrapMode::Repeat;
    auto wrapVec = [&](auto idx, auto sizeMinus1) {
        // wrapRepeat: (unsigned)coord & (size - 1); the bit pattern of
        // a signed AND is identical. wrapClamp: clamp to [0, size-1],
        // which min/max over ints reproduces exactly.
        if (repeat)
            return V::iand(idx, sizeMinus1);
        return V::imax(V::imin(idx, sizeMinus1), V::iset1(0));
    };

    // Repetition anchor (all filter kinds): the unwrapped integer
    // texel coordinate floor(u*w - 0.5) at the filter's first level,
    // as the tile renderer's countRepetition block computes it.
    alignas(32) int32_t aU[kSpanBatch], aV[kSpanBatch];
    for (int g = 0; g < np; g += W) {
        auto u = V::load(U + g);
        auto v = V::load(Vc + g);
        auto su = V::sub(V::mul(u, V::load(fw0 + g)), half);
        auto sv = V::sub(V::mul(v, V::load(fh0 + g)), half);
        V::istore(aU + g, V::trunc(V::floor(su)));
        V::istore(aV + g, V::trunc(V::floor(sv)));
    }

    // Touch coordinates, pre-combined into the packed record's low
    // half (u | v << 16) while still in vector registers, so record
    // emission below is one 64-bit OR per record. Slot c = the
    // filter's first level, slot d = the trilinear upper level;
    // cXY = u_X | v_Y << 16 in touchesBilinearLevel's touch order.
    alignas(32) int32_t c00[kSpanBatch] = {}, c10[kSpanBatch] = {};
    alignas(32) int32_t c01[kSpanBatch] = {}, c11[kSpanBatch] = {};
    alignas(32) int32_t d00[kSpanBatch] = {}, d10[kSpanBatch] = {};
    alignas(32) int32_t d01[kSpanBatch] = {}, d11[kSpanBatch] = {};
    if (ctx.mode == FilterMode::NearestMipNearest) {
        // One texel: floor(u * w), no half-texel offset.
        for (int g = 0; g < np; g += W) {
            auto u = V::load(U + g);
            auto v = V::load(Vc + g);
            auto iu = V::trunc(V::floor(V::mul(u, V::load(fw0 + g))));
            auto iv = V::trunc(V::floor(V::mul(v, V::load(fh0 + g))));
            V::istore(c00 + g,
                      V::ior(wrapVec(iu, V::iload(wm0 + g)),
                             V::ishl16(wrapVec(iv, V::iload(hm0 + g)))));
        }
    } else {
        // touchesBilinearLevel for one level slot.
        auto bilinearSlot = [&](const float *fw, const float *fh,
                                const int32_t *wm, const int32_t *hm,
                                int32_t *s00, int32_t *s10, int32_t *s01,
                                int32_t *s11) {
            for (int g = 0; g < np; g += W) {
                auto u = V::load(U + g);
                auto v = V::load(Vc + g);
                auto su = V::sub(V::mul(u, V::load(fw + g)), half);
                auto sv = V::sub(V::mul(v, V::load(fh + g)), half);
                auto i0 = V::trunc(V::floor(su));
                auto j0 = V::trunc(V::floor(sv));
                auto i1 = V::iadd(i0, V::iset1(1));
                auto j1 = V::iadd(j0, V::iset1(1));
                auto wmv = V::iload(wm + g);
                auto hmv = V::iload(hm + g);
                auto w0 = wrapVec(i0, wmv);
                auto w1 = wrapVec(i1, wmv);
                auto z0 = V::ishl16(wrapVec(j0, hmv));
                auto z1 = V::ishl16(wrapVec(j1, hmv));
                V::istore(s00 + g, V::ior(w0, z0));
                V::istore(s10 + g, V::ior(w1, z0));
                V::istore(s01 + g, V::ior(w0, z1));
                V::istore(s11 + g, V::ior(w1, z1));
            }
        };
        bilinearSlot(fw0, fh0, wm0, hm0, c00, c10, c01, c11);
        if (anyUpper)
            bilinearSlot(fw1, fh1, wm1, hm1, d00, d10, d01, d11);
    }

    // ---- Stage 5 (scalar): record emission in touch order -----------
    // TexelRecord::pack = u | v<<16 | level<<32 | texture<<37 |
    // kind<<48; u | v<<16 is the cXY word, the rest is one per-level
    // base. Field-width checks hoisted out of the record loop (the
    // texture is constant across the batch).
    panic_if(ctx.texture >= 2048, "texture id ", ctx.texture,
             " exceeds 11-bit field");
    const uint64_t texBits = static_cast<uint64_t>(ctx.texture) << 37;
    uint32_t cnt = 0;
    for (int i = 0; i < n; ++i) {
        const uint16_t lvl0 = static_cast<uint16_t>(L0[i]);
        panic_if(lvl0 >= 32, "level ", lvl0, " exceeds 5-bit field");
        switch (kind[i]) {
          case FilterKind::Nearest: {
            const uint64_t base =
                texBits | (static_cast<uint64_t>(lvl0) << 32) |
                (static_cast<uint64_t>(TouchKind::Nearest) << 48);
            out.records[cnt++] =
                base | static_cast<uint32_t>(c00[i]);
            break;
          }
          case FilterKind::Bilinear: {
            const uint64_t base =
                texBits | (static_cast<uint64_t>(lvl0) << 32) |
                (static_cast<uint64_t>(TouchKind::Bilinear) << 48);
            out.records[cnt++] = base | static_cast<uint32_t>(c00[i]);
            out.records[cnt++] = base | static_cast<uint32_t>(c10[i]);
            out.records[cnt++] = base | static_cast<uint32_t>(c01[i]);
            out.records[cnt++] = base | static_cast<uint32_t>(c11[i]);
            break;
          }
          case FilterKind::Trilinear: {
            const uint16_t lvl1 = static_cast<uint16_t>(L1[i]);
            panic_if(lvl1 >= 32, "level ", lvl1,
                     " exceeds 5-bit field");
            const uint64_t lo =
                texBits | (static_cast<uint64_t>(lvl0) << 32) |
                (static_cast<uint64_t>(TouchKind::TrilinearLower)
                 << 48);
            const uint64_t up =
                texBits | (static_cast<uint64_t>(lvl1) << 32) |
                (static_cast<uint64_t>(TouchKind::TrilinearUpper)
                 << 48);
            out.records[cnt++] = lo | static_cast<uint32_t>(c00[i]);
            out.records[cnt++] = lo | static_cast<uint32_t>(c10[i]);
            out.records[cnt++] = lo | static_cast<uint32_t>(c01[i]);
            out.records[cnt++] = lo | static_cast<uint32_t>(c11[i]);
            out.records[cnt++] = up | static_cast<uint32_t>(d00[i]);
            out.records[cnt++] = up | static_cast<uint32_t>(d10[i]);
            out.records[cnt++] = up | static_cast<uint32_t>(d01[i]);
            out.records[cnt++] = up | static_cast<uint32_t>(d11[i]);
            break;
          }
        }
        out.kind[i] = kind[i];
        out.numTouches[i] = ntouch[i];
        out.firstLevel[i] = lvl0;
        out.firstU[i] = static_cast<uint16_t>(c00[i]);
        out.firstV[i] =
            static_cast<uint16_t>(static_cast<uint32_t>(c00[i]) >> 16);
        out.anchorU[i] = aU[i];
        out.anchorV[i] = aV[i];
        out.recEnd[i] = cnt;
    }
}

template <class V>
uint32_t
coverKernel(const SpanContext &ctx, const int32_t *xs, const int32_t *ys,
            int n)
{
    constexpr int W = V::kW;
    int np = (n + W - 1) / W * W;
    alignas(32) int32_t px[kSpanBatch], py[kSpanBatch];
    for (int i = 0; i < n; ++i) {
        px[i] = xs[i];
        py[i] = ys[i];
    }
    for (int i = n; i < np; ++i) {
        px[i] = xs[n - 1];
        py[i] = ys[n - 1];
    }

    const auto half = V::set1(0.5f);
    const auto zero = V::set1(0.0f);
    uint32_t mask = 0;
    for (int g = 0; g < np; g += W) {
        auto pxc = V::add(V::toF(V::iload(px + g)), half);
        auto pyc = V::add(V::toF(V::iload(py + g)), half);
        auto ok = V::trueMask();
        for (int e = 0; e < 3; ++e) {
            auto ev = V::add(V::add(V::set1(ctx.edgeE0[e]),
                                    V::mul(V::set1(ctx.edgeEx[e]), pxc)),
                             V::mul(V::set1(ctx.edgeEy[e]), pyc));
            // covers(): reject e < 0, and e == 0 unless the edge is
            // top-left - i.e. a top-left edge rejects e < 0 only,
            // any other edge rejects e <= 0.
            auto fail = ctx.topLeft[e] ? V::cmpLt(ev, zero)
                                       : V::cmpLe(ev, zero);
            ok = V::andnot(fail, ok);
        }
        auto iw = V::add(V::add(V::set1(ctx.iwE0),
                                V::mul(V::set1(ctx.iwEx), pxc)),
                         V::mul(V::set1(ctx.iwEy), pyc));
        ok = V::and_(ok, V::cmpGt(iw, zero));
        mask |= V::moveMask(ok) << g;
    }
    return mask & ((1u << n) - 1);
}

} // namespace simd
} // namespace texcache

#endif // TEXCACHE_SIMD_KERNEL_BODY_HH
