#include "vt/page_pool.hh"

#include "tracing/tracing.hh"

namespace texcache {

PagePool::PagePool(const PagePoolConfig &config) : config_(config)
{
    fatal_if(!isPowerOfTwo(config.pageBytes), "page size ",
             config.pageBytes, " is not a power of two");
    fatal_if(config.poolPages == 0, "page pool with zero pages");
    pageShift_ = log2Exact(config.pageBytes);
}

bool
PagePool::touch(PageId p)
{
    ++stats_.lookups;
    auto it = entries_.find(p);
    if (it == entries_.end())
        return false;
    ++stats_.hits;
    if (!it->second.pinned && it->second.it != lru_.begin())
        lru_.splice(lru_.begin(), lru_, it->second.it);
    return true;
}

void
PagePool::makeRoom()
{
    if (entries_.size() < config_.poolPages)
        return;
    // Pinned pages never appear on the LRU list, so the victim is
    // always evictable; an empty list means the pool is all pins.
    fatal_if(lru_.empty(), "page pool of ", config_.poolPages,
             " pages is entirely pinned; enlarge the pool");
    PageId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    // The pool has no external clock; its lookup count is the natural
    // sim-domain tick for residency churn.
    if (tracing::enabled(tracing::kFetches)) [[unlikely]]
        tracing::fetchEvent(
            tracing::EventKind::PageEvict, victim, stats_.lookups,
            static_cast<uint32_t>(entries_.size()));
}

void
PagePool::insert(PageId p)
{
    auto it = entries_.find(p);
    if (it != entries_.end()) {
        if (!it->second.pinned && it->second.it != lru_.begin())
            lru_.splice(lru_.begin(), lru_, it->second.it);
        return;
    }
    makeRoom();
    lru_.push_front(p);
    entries_[p] = Entry{lru_.begin(), false};
    ++stats_.insertions;
    if (entries_.size() > stats_.residentHighWater)
        stats_.residentHighWater = entries_.size();
}

void
PagePool::pin(PageId p)
{
    auto it = entries_.find(p);
    if (it != entries_.end()) {
        if (it->second.pinned)
            return;
        lru_.erase(it->second.it);
        it->second.pinned = true;
        ++pinned_;
        return;
    }
    fatal_if(pinned_ + 1 > config_.poolPages,
             "pinning page ", p, " exceeds the pool (", config_.poolPages,
             " pages, all pinned); enlarge the pool");
    makeRoom();
    entries_[p] = Entry{lru_.end(), true};
    ++pinned_;
    ++stats_.insertions;
    if (entries_.size() > stats_.residentHighWater)
        stats_.residentHighWater = entries_.size();
}

} // namespace texcache
