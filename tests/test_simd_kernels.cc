/**
 * @file
 * The SIMD span kernels (src/simd/) against the scalar reference
 * chain, for every compiled ISA level: randomized triangles, mip
 * pyramids, filter modes and wrap modes, with batch sizes 1..8 so
 * unaligned tails (n % lanes != 0) are always exercised. A kernel
 * lane must reproduce
 *
 *   attributesAt -> computeLod -> sampleTouchesMipMapMode ->
 *   packSampleRecords
 *
 * bit for bit, plus the tile renderer's repetition anchor. Also
 * covers coverMask vs TriangleSetup::covers and the TEXCACHE_SIMD
 * dispatch rules (fatal on unknown or unsupported levels).
 */

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "raster/triangle.hh"
#include "simd/isa.hh"
#include "simd/span_kernels.hh"
#include "texture/mipmap.hh"
#include "texture/sampler.hh"
#include "trace/texel_trace.hh"

namespace texcache {
namespace {

uint32_t
lcg(uint32_t &x)
{
    x = x * 1664525u + 1013904223u;
    return x;
}

float
frand(uint32_t &x, float lo, float hi)
{
    return lo + (hi - lo) *
                    (static_cast<float>(lcg(x) >> 8) / 16777216.0f);
}

MipMap
gradientMip(unsigned w, unsigned h)
{
    Image img(w, h);
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            img.at(x, y) = {static_cast<uint8_t>(x * 7),
                            static_cast<uint8_t>(y * 11),
                            static_cast<uint8_t>(x + y), 255};
    return MipMap(std::move(img));
}

/** A random valid triangle with some covered pixels, or nullopt-ish. */
bool
randomTriangle(uint32_t &rng, TriangleSetup &setup,
               std::vector<std::pair<int, int>> &covered)
{
    auto vert = [&](ScreenVertex &v) {
        v.x = frand(rng, 0.0f, 64.0f);
        v.y = frand(rng, 0.0f, 64.0f);
        v.z = frand(rng, 0.0f, 1.0f);
        v.invW = frand(rng, 0.3f, 3.0f);
        v.uOverW = frand(rng, -3.0f, 3.0f);
        v.vOverW = frand(rng, -3.0f, 3.0f);
        v.shade = 1.0f;
    };
    ScreenVertex a, b, c;
    vert(a);
    vert(b);
    vert(c);
    setup = TriangleSetup(a, b, c);
    if (!setup.valid())
        return false;
    covered.clear();
    PixelRect box = setup.bounds(64, 64);
    for (int y = box.y0; y <= box.y1; ++y)
        for (int x = box.x0; x <= box.x1; ++x)
            if (setup.covers(x, y))
                covered.emplace_back(x, y);
    return !covered.empty();
}

/** The scalar reference chain for one covered pixel. */
struct Truth
{
    FilterKind kind;
    unsigned numTouches;
    uint16_t firstLevel, firstU, firstV;
    int32_t anchorU, anchorV;
    uint64_t recs[8];
    unsigned recCount;
};

Truth
referenceAt(const TriangleSetup &setup, const MipMap &mip, uint16_t tex,
            FilterMode mode, WrapMode wrap, int x, int y)
{
    float texW = static_cast<float>(mip.width(0));
    float texH = static_cast<float>(mip.height(0));
    Fragment f;
    setup.attributesAt(x, y, f);
    float lambda = computeLod(f.dudx * texW, f.dvdx * texH,
                              f.dudy * texW, f.dvdy * texH);
    SampleResult s;
    sampleTouchesMipMapMode(mip, f.u, f.v, lambda, mode, s, wrap);

    Truth t;
    t.kind = s.kind;
    t.numTouches = s.numTouches;
    t.firstLevel = s.touches[0].level;
    t.firstU = s.touches[0].u;
    t.firstV = s.touches[0].v;
    t.recCount = packSampleRecords(tex, s, t.recs);
    // The repetition anchor, as the tile renderer computes it.
    const Image &li = mip.level(s.touches[0].level);
    float su = f.u * li.width() - 0.5f;
    float sv = f.v * li.height() - 0.5f;
    t.anchorU = static_cast<int32_t>(std::floor(su));
    t.anchorV = static_cast<int32_t>(std::floor(sv));
    return t;
}

TEST(SimdKernels, TouchesMatchReferenceFuzz)
{
    const std::vector<simd::Isa> isas = simd::supportedIsas();
    ASSERT_FALSE(isas.empty());

    std::vector<MipMap> mips;
    mips.push_back(gradientMip(64, 64));
    mips.push_back(gradientMip(64, 16));
    mips.push_back(gradientMip(1, 1));
    const FilterMode modes[] = {FilterMode::Trilinear,
                                FilterMode::BilinearMipNearest,
                                FilterMode::NearestMipNearest};
    const WrapMode wraps[] = {WrapMode::Repeat, WrapMode::Clamp};
    // Batch sizes cycle through every tail residue, 8-wide included.
    const int sizes[] = {1, 8, 3, 5, 2, 7, 4, 6};

    uint32_t rng = 0xdecafbadu;
    uint64_t lanesChecked = 0;
    for (const MipMap &mip : mips) {
        for (FilterMode mode : modes) {
            for (WrapMode wrap : wraps) {
                TriangleSetup setup({}, {}, {});
                std::vector<std::pair<int, int>> covered;
                int made = 0;
                while (made < 4) {
                    if (!randomTriangle(rng, setup, covered))
                        continue;
                    ++made;
                    uint16_t tex =
                        static_cast<uint16_t>(lcg(rng) % 2048);
                    simd::SpanContext ctx = simd::makeSpanContext(
                        setup, mip, tex,
                        static_cast<float>(mip.width(0)),
                        static_cast<float>(mip.height(0)), mode, wrap);

                    size_t at = 0;
                    int szi = 0;
                    while (at < covered.size()) {
                        int n = std::min<int>(
                            sizes[szi++ % 8],
                            static_cast<int>(covered.size() - at));
                        int32_t xs[simd::kSpanBatch];
                        int32_t ys[simd::kSpanBatch];
                        for (int i = 0; i < n; ++i) {
                            xs[i] = covered[at + i].first;
                            ys[i] = covered[at + i].second;
                        }
                        for (simd::Isa isa : isas) {
                            SCOPED_TRACE(std::string("isa=") +
                                         simd::isaName(isa));
                            const simd::SpanKernels *k =
                                simd::kernelsFor(isa);
                            ASSERT_NE(k, nullptr);
                            simd::SpanBatchOut out;
                            k->touches(ctx, xs, ys, n, out);
                            uint32_t prevEnd = 0;
                            for (int i = 0; i < n; ++i) {
                                SCOPED_TRACE("lane " +
                                             std::to_string(i) + " of " +
                                             std::to_string(n));
                                Truth t = referenceAt(setup, mip, tex,
                                                      mode, wrap, xs[i],
                                                      ys[i]);
                                EXPECT_EQ(out.kind[i], t.kind);
                                EXPECT_EQ(out.numTouches[i],
                                          t.numTouches);
                                EXPECT_EQ(out.firstLevel[i],
                                          t.firstLevel);
                                EXPECT_EQ(out.firstU[i], t.firstU);
                                EXPECT_EQ(out.firstV[i], t.firstV);
                                EXPECT_EQ(out.anchorU[i], t.anchorU);
                                EXPECT_EQ(out.anchorV[i], t.anchorV);
                                ASSERT_EQ(out.recEnd[i] - prevEnd,
                                          t.recCount);
                                for (unsigned r = 0; r < t.recCount;
                                     ++r)
                                    EXPECT_EQ(
                                        out.records[prevEnd + r],
                                        t.recs[r])
                                        << "record " << r;
                                prevEnd = out.recEnd[i];
                                ++lanesChecked;
                            }
                        }
                        at += static_cast<size_t>(n);
                    }
                }
            }
        }
    }
    // Make sure the fuzz actually covered a meaningful population.
    EXPECT_GT(lanesChecked, 10000u);
}

TEST(SimdKernels, CoverMaskMatchesCovers)
{
    const std::vector<simd::Isa> isas = simd::supportedIsas();
    MipMap mip = gradientMip(64, 64);
    uint32_t rng = 0x5eedf00du;
    const int sizes[] = {8, 1, 5, 8, 3, 7, 2, 6, 4};

    int made = 0;
    uint64_t checked = 0;
    while (made < 32) {
        TriangleSetup setup({}, {}, {});
        std::vector<std::pair<int, int>> covered;
        if (!randomTriangle(rng, setup, covered))
            continue;
        ++made;
        simd::SpanContext ctx = simd::makeSpanContext(
            setup, mip, 0, 64.0f, 64.0f, FilterMode::Trilinear,
            WrapMode::Repeat);
        PixelRect box = setup.bounds(64, 64);
        // Pixels in and around the box: a mix of covered, uncovered
        // and boundary cases.
        for (int trial = 0; trial < 16; ++trial) {
            int n = sizes[trial % 9];
            int32_t xs[simd::kSpanBatch], ys[simd::kSpanBatch];
            for (int i = 0; i < n; ++i) {
                xs[i] = box.x0 - 2 +
                        static_cast<int>(lcg(rng) %
                                         (box.x1 - box.x0 + 5));
                ys[i] = box.y0 - 2 +
                        static_cast<int>(lcg(rng) %
                                         (box.y1 - box.y0 + 5));
            }
            for (simd::Isa isa : isas) {
                SCOPED_TRACE(std::string("isa=") + simd::isaName(isa));
                uint32_t m =
                    simd::kernelsFor(isa)->coverMask(ctx, xs, ys, n);
                EXPECT_EQ(m >> n, 0u) << "bits past n must be clear";
                for (int i = 0; i < n; ++i) {
                    EXPECT_EQ((m >> i) & 1u,
                              setup.covers(xs[i], ys[i]) ? 1u : 0u)
                        << "pixel (" << xs[i] << ", " << ys[i] << ")";
                    ++checked;
                }
            }
        }
    }
    EXPECT_GT(checked, 1000u);
}

TEST(SimdKernels, DispatchRules)
{
    std::vector<simd::Isa> isas = simd::supportedIsas();
    // Scalar is always compiled and always supported.
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), simd::Isa::Scalar);
    EXPECT_STREQ(simd::isaName(simd::Isa::Scalar), "scalar");
    EXPECT_STREQ(simd::isaName(simd::Isa::Sse41), "sse41");
    EXPECT_STREQ(simd::isaName(simd::Isa::Avx2), "avx2");

    // "native", empty and unset all resolve to the best level.
    EXPECT_EQ(simd::resolveIsa("native"), simd::bestIsa());
    EXPECT_EQ(simd::resolveIsa(""), simd::bestIsa());
    EXPECT_EQ(simd::resolveIsa(nullptr), simd::bestIsa());
    EXPECT_EQ(simd::resolveIsa("scalar"), simd::Isa::Scalar);
    // The best level is the last supported one.
    EXPECT_EQ(simd::bestIsa(), isas.back());

    // Every supported level can be activated and yields kernels.
    simd::Isa prev = simd::activeIsa();
    for (simd::Isa isa : isas) {
        simd::setActiveIsa(isa);
        EXPECT_EQ(simd::activeIsa(), isa);
        EXPECT_EQ(&simd::kernels(), simd::kernelsFor(isa));
    }
    simd::setActiveIsa(prev);
}

using SimdKernelsDeathTest = ::testing::Test;

TEST(SimdKernelsDeathTest, UnknownIsaSpecIsFatal)
{
    EXPECT_EXIT(simd::resolveIsa("turbo"),
                testing::ExitedWithCode(1),
                "not one of scalar\\|sse41\\|avx2\\|native");
}

TEST(SimdKernelsDeathTest, UnsupportedIsaSpecIsFatal)
{
    // Only exercisable when some compiled level is unsupported here
    // (e.g. an avx2 build running on an SSE-only box).
    bool anyUnsupported = false;
    for (simd::Isa isa :
         {simd::Isa::Scalar, simd::Isa::Sse41, simd::Isa::Avx2}) {
        if (simd::isaSupported(isa))
            continue;
        anyUnsupported = true;
        EXPECT_EXIT(simd::resolveIsa(simd::isaName(isa)),
                    testing::ExitedWithCode(1), "not available");
        EXPECT_EXIT(simd::setActiveIsa(isa),
                    testing::ExitedWithCode(1), "cannot activate");
    }
    if (!anyUnsupported)
        GTEST_SKIP() << "every compiled ISA level is supported here";
}

} // namespace
} // namespace texcache
