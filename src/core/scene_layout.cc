#include "core/scene_layout.hh"

namespace texcache {

SceneLayout::SceneLayout(const Scene &scene, const LayoutParams &params)
    : params_(params), space_(params.baseAlign)
{
    layouts_.reserve(scene.textures.size());
    for (const MipMap &mip : scene.textures)
        layouts_.push_back(makeLayout(params, levelDims(mip), space_));
    footprint_ = space_.used();
}

} // namespace texcache
