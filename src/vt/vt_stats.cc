#include "vt/vt_stats.hh"

namespace texcache {

double
vtAvgResidentPages(const VirtualTextureMemory &mem)
{
    const std::vector<uint64_t> &samples = mem.residencySamples();
    if (samples.empty())
        return 0.0;
    uint64_t sum = 0;
    for (uint64_t s : samples)
        sum += s;
    return static_cast<double>(sum) / samples.size();
}

TextTable
vtSummaryTable(const std::string &title,
               const VirtualTextureMemory &mem,
               const DegradationStats *deg)
{
    const VtConfig &cfg = mem.config();
    const PagePoolStats &pool = mem.pool().stats();
    const FetchQueueStats &fq = mem.fetchQueue().stats();
    const DramStats &dram = mem.fetchQueue().dramStats();

    TextTable t(title);
    t.header({"Metric", "Value"});
    t.row({"Page size", fmtBytes(cfg.pageBytes)});
    t.row({"Pool", fmtBytes(cfg.poolBytes()) + " (" +
                       std::to_string(cfg.poolPages) + " pages)"});
    t.row({"Pages touched", std::to_string(mem.pagesTouched())});
    t.row({"Resident high water",
           std::to_string(pool.residentHighWater)});
    t.row({"Resident avg (sampled)",
           fmtFixed(vtAvgResidentPages(mem), 1)});
    t.row({"Pool lookups", std::to_string(pool.lookups)});
    t.row({"Pool hit rate", fmtPercent(pool.hitRate())});
    t.row({"Evictions", std::to_string(pool.evictions)});
    t.row({"Fetches issued", std::to_string(fq.issued)});
    t.row({"Fetch dedup hits", std::to_string(fq.dedupHits)});
    t.row({"Fetch drops (queue full)", std::to_string(fq.drops)});
    t.row({"Fetch queue depth avg/max",
           fmtFixed(fq.avgDepth(), 2) + "/" +
               std::to_string(fq.maxDepth)});
    t.row({"DRAM row hit rate", fmtPercent(dram.rowHitRate())});
    t.row({"DRAM bus cycles", std::to_string(dram.cycles)});
    if (deg) {
        t.row({"Fragments", std::to_string(deg->fragments)});
        t.row({"Degraded fragments",
               std::to_string(deg->degraded) + " (" +
                   fmtPercent(deg->degradedFraction()) + ")"});
        t.row({"Degradation avg/max delta",
               fmtFixed(deg->avgDelta(), 2) + "/" +
                   std::to_string(deg->maxDelta())});
    }
    return t;
}

TextTable
vtDegradationTable(const std::string &title,
                   const DegradationStats &deg)
{
    TextTable t(title);
    t.header({"LevelsCoarser", "Fragments", "OfDegraded"});
    for (size_t d = 0; d < deg.histogram.size(); ++d) {
        if (!deg.histogram[d])
            continue;
        t.row({std::to_string(d), std::to_string(deg.histogram[d]),
               fmtPercent(deg.degraded
                              ? static_cast<double>(deg.histogram[d]) /
                                    deg.degraded
                              : 0.0)});
    }
    return t;
}

} // namespace texcache
