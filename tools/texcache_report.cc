/**
 * @file
 * Offline miss-diagnostics report generator.
 *
 * Folds a binary event log (TRACE_<bench>.events.bin, written by the
 * tracing layer when TEXCACHE_TRACE is set) into the spatial and
 * temporal views ISSUE/DESIGN call out:
 *
 *  - screen_misses.pgm     miss density per screen pixel (log-scaled
 *                          8-bit grayscale, P5),
 *  - texture_misses_<t>.ppm  miss density per level-0 texel of each
 *                          texture, colored by 3-C class (P6:
 *                          cold=blue, capacity=green, conflict=red,
 *                          unrefined=gray),
 *  - reuse_over_time.csv   time-bucketed series: events, misses,
 *                          re-reference gap of repeated lines, and the
 *                          cold fraction per bucket,
 *  - report.json           totals, per-class/per-tag/per-texture
 *                          breakdowns and the hottest miss lines,
 *  - a stdout summary table.
 *
 * Usage:
 *   texcache_report <events.bin> [--out DIR] [--buckets N] [--top N]
 *
 * The tool only reads event logs; rendering and simulation stay in
 * the bench/example binaries. tools/texcache_report.py wraps this
 * binary to produce a self-contained HTML page.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "tracing/trace_format.hh"

using namespace texcache;
using namespace texcache::tracing;

namespace {

struct Options
{
    std::string eventsPath;
    std::string outDir = ".";
    unsigned buckets = 64;  ///< time buckets in the reuse series
    unsigned top = 10;      ///< hottest lines listed in report.json
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: texcache_report <events.bin> [--out DIR] "
                 "[--buckets N] [--top N]\n");
    std::exit(1);
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--out" && i + 1 < argc)
            o.outDir = argv[++i];
        else if (a == "--buckets" && i + 1 < argc)
            o.buckets = std::atoi(argv[++i]);
        else if (a == "--top" && i + 1 < argc)
            o.top = std::atoi(argv[++i]);
        else if (!a.empty() && a[0] == '-')
            usage();
        else if (o.eventsPath.empty())
            o.eventsPath = a;
        else
            usage();
    }
    if (o.eventsPath.empty() || o.buckets == 0)
        usage();
    return o;
}

/** A dense 2-D accumulation grid sized on first use. */
struct Grid
{
    unsigned w = 0, h = 0;
    std::vector<uint32_t> cells; // row-major counts

    void
    add(unsigned x, unsigned y, unsigned weight = 1)
    {
        if (x >= w || y >= h)
            grow(std::max(w, x + 1), std::max(h, y + 1));
        cells[static_cast<size_t>(y) * w + x] += weight;
    }

    uint32_t
    at(unsigned x, unsigned y) const
    {
        return cells[static_cast<size_t>(y) * w + x];
    }

    uint32_t
    maxCell() const
    {
        uint32_t m = 0;
        for (uint32_t c : cells)
            m = std::max(m, c);
        return m;
    }

  private:
    void
    grow(unsigned nw, unsigned nh)
    {
        std::vector<uint32_t> next(static_cast<size_t>(nw) * nh, 0);
        for (unsigned y = 0; y < h; ++y)
            std::memcpy(&next[static_cast<size_t>(y) * nw],
                        &cells[static_cast<size_t>(y) * w],
                        w * sizeof(uint32_t));
        cells.swap(next);
        w = nw;
        h = nh;
    }
};

/** Per-texture miss grids, one per 3-C class, in level-0 texels. */
struct TextureGrids
{
    Grid byClass[4]; // indexed by MissClass
    uint64_t misses = 0;
};

/** log-scale a count against the grid maximum into 0..255. */
uint8_t
shade(uint32_t count, uint32_t max_count)
{
    if (count == 0 || max_count == 0)
        return 0;
    // 1 + log(c) / log(max) spread over the byte range; a single-count
    // cell is still clearly visible.
    double num = std::log(static_cast<double>(count) + 1.0);
    double den = std::log(static_cast<double>(max_count) + 1.0);
    double v = 32.0 + 223.0 * (num / den);
    return static_cast<uint8_t>(v);
}

bool
writePgm(const std::string &path, const Grid &g)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << "P5\n" << g.w << " " << g.h << "\n255\n";
    uint32_t m = g.maxCell();
    std::vector<uint8_t> row(g.w);
    for (unsigned y = 0; y < g.h; ++y) {
        for (unsigned x = 0; x < g.w; ++x)
            row[x] = shade(g.at(x, y), m);
        os.write(reinterpret_cast<const char *>(row.data()), g.w);
    }
    return static_cast<bool>(os);
}

/** Compose the per-class grids of one texture into an RGB heatmap. */
bool
writeClassPpm(const std::string &path, const TextureGrids &t)
{
    unsigned w = 0, h = 0;
    for (const Grid &g : t.byClass) {
        w = std::max(w, g.w);
        h = std::max(h, g.h);
    }
    if (w == 0 || h == 0)
        return false;
    uint32_t maxc = 0;
    for (const Grid &g : t.byClass)
        maxc = std::max(maxc, g.maxCell());
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << "P6\n" << w << " " << h << "\n255\n";
    std::vector<uint8_t> row(static_cast<size_t>(w) * 3);
    auto cell = [](const Grid &g, unsigned x, unsigned y) -> uint32_t {
        return x < g.w && y < g.h ? g.at(x, y) : 0;
    };
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            uint8_t cold = shade(
                cell(t.byClass[unsigned(MissClass::Cold)], x, y), maxc);
            uint8_t cap = shade(
                cell(t.byClass[unsigned(MissClass::Capacity)], x, y),
                maxc);
            uint8_t conf = shade(
                cell(t.byClass[unsigned(MissClass::Conflict)], x, y),
                maxc);
            uint8_t other = shade(
                cell(t.byClass[unsigned(MissClass::Other)], x, y),
                maxc);
            // conflict->R, capacity->G, cold->B; unrefined as gray.
            row[3 * x + 0] = std::max(conf, other);
            row[3 * x + 1] = std::max(cap, other);
            row[3 * x + 2] = std::max(cold, other);
        }
        os.write(reinterpret_cast<const char *>(row.data()),
                 row.size());
    }
    return static_cast<bool>(os);
}

const char *
className(uint8_t cls)
{
    switch (MissClass(cls)) {
      case MissClass::Cold:
        return "cold";
      case MissClass::Capacity:
        return "capacity";
      case MissClass::Conflict:
        return "conflict";
      default:
        return "other";
    }
}

const char *
tagName(uint16_t tag)
{
    switch (tag) {
      case kTagStandalone:
        return "standalone";
      case kTagL1:
        return "l1";
      case kTagL2:
        return "l2";
      case kTagClassified:
        return "classified";
      default:
        return "unknown";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    std::ifstream is(opt.eventsPath, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "texcache_report: cannot open %s\n",
                     opt.eventsPath.c_str());
        return 1;
    }
    EventLog log;
    std::string err;
    if (!readEventLog(is, log, err)) {
        std::fprintf(stderr, "texcache_report: %s: %s\n",
                     opt.eventsPath.c_str(), err.c_str());
        return 1;
    }

    // Merge the per-thread rings into one time-ordered stream; all
    // spatial folding below is order-independent, the reuse series is
    // not.
    std::vector<Event> events;
    events.reserve(log.eventCount());
    for (const RingData &ring : log.rings)
        events.insert(events.end(), ring.events.begin(),
                      ring.events.end());
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    Grid screen;
    std::map<unsigned, TextureGrids> textures;
    uint64_t byClass[4] = {0, 0, 0, 0};
    std::map<uint16_t, uint64_t> byTag;
    std::unordered_map<uint64_t, uint64_t> lineMisses;
    uint64_t misses = 0, located = 0;

    for (const Event &ev : events) {
        if (ev.kind != uint8_t(EventKind::CacheMiss))
            continue;
        ++misses;
        ++byClass[ev.cls & 3];
        ++byTag[ev.tag];
        ++lineMisses[ev.addr];
        if (ev.a == kNoContext)
            continue;
        ++located;
        screen.add(ev.a >> 16, ev.a & 0xffff);
        unsigned tex = ev.b >> 16;
        unsigned level = ev.b & 0xffff;
        unsigned u = ev.c >> 16, v = ev.c & 0xffff;
        TextureGrids &tg = textures[tex];
        ++tg.misses;
        // Scale every level's texels to level-0 resolution so one
        // grid overlays the whole pyramid.
        tg.byClass[ev.cls & 3].add(u << level, v << level);
    }

    // --- reuse-over-time series ------------------------------------
    // Bucket the classified/miss stream by timestamp and, per bucket,
    // average the re-reference gap (in events) of lines missed before:
    // rising gaps mean the working set is cycling through the cache.
    std::string csv_path = opt.outDir + "/reuse_over_time.csv";
    {
        std::ofstream csv(csv_path);
        if (csv) {
            csv << "bucket,t_start,events,misses,cold,repeat_misses,"
                   "mean_reuse_gap\n";
            uint64_t t0 = events.empty() ? 0 : events.front().ts;
            uint64_t t1 = events.empty() ? 0 : events.back().ts;
            uint64_t span = t1 > t0 ? t1 - t0 : 1;
            struct Bucket
            {
                uint64_t events = 0, misses = 0, cold = 0;
                uint64_t repeats = 0;
                double gapSum = 0.0;
            };
            std::vector<Bucket> buckets(opt.buckets);
            std::unordered_map<uint64_t, uint64_t> lastSeen;
            uint64_t index = 0;
            for (const Event &ev : events) {
                size_t b = static_cast<size_t>(
                    (ev.ts - t0) * (opt.buckets - 1) / span);
                Bucket &bk = buckets[b];
                ++bk.events;
                if (ev.kind == uint8_t(EventKind::CacheMiss)) {
                    ++bk.misses;
                    if (ev.cls == uint8_t(MissClass::Cold))
                        ++bk.cold;
                    auto it = lastSeen.find(ev.addr);
                    if (it != lastSeen.end()) {
                        ++bk.repeats;
                        bk.gapSum +=
                            static_cast<double>(index - it->second);
                    }
                    lastSeen[ev.addr] = index;
                }
                ++index;
            }
            for (unsigned b = 0; b < opt.buckets; ++b) {
                const Bucket &bk = buckets[b];
                csv << b << "," << t0 + span * b / opt.buckets << ","
                    << bk.events << "," << bk.misses << "," << bk.cold
                    << "," << bk.repeats << ","
                    << (bk.repeats
                            ? bk.gapSum / static_cast<double>(bk.repeats)
                            : 0.0)
                    << "\n";
            }
        } else {
            std::fprintf(stderr,
                         "texcache_report: cannot write %s\n",
                         csv_path.c_str());
        }
    }

    // --- heatmaps ---------------------------------------------------
    std::vector<std::string> written;
    std::string screen_path = opt.outDir + "/screen_misses.pgm";
    if (screen.w && writePgm(screen_path, screen))
        written.push_back(screen_path);
    for (auto &[tex, tg] : textures) {
        std::string p = opt.outDir + "/texture_misses_" +
                        std::to_string(tex) + ".ppm";
        if (writeClassPpm(p, tg))
            written.push_back(p);
    }

    // --- hottest lines ----------------------------------------------
    std::vector<std::pair<uint64_t, uint64_t>> hot(lineMisses.begin(),
                                                   lineMisses.end());
    std::sort(hot.begin(), hot.end(), [](auto &a, auto &b) {
        return a.second != b.second ? a.second > b.second
                                    : a.first < b.first;
    });
    if (hot.size() > opt.top)
        hot.resize(opt.top);

    // --- report.json ------------------------------------------------
    std::string json_path = opt.outDir + "/report.json";
    {
        std::ofstream os(json_path);
        JsonWriter w(os);
        w.beginObject();
        w.kv("events_file", opt.eventsPath);
        w.kv("sample_n", log.sampleN);
        w.kv("recorded_events", log.eventCount());
        w.kv("dropped_events", log.dropped);
        w.kv("rings", static_cast<uint64_t>(log.rings.size()));
        w.kv("misses", misses);
        w.kv("misses_with_context", located);
        w.key("by_class");
        w.beginObject();
        for (unsigned c = 0; c < 4; ++c)
            w.kv(className(c), byClass[c]);
        w.endObject();
        w.key("by_tag");
        w.beginObject();
        for (auto &[tag, n] : byTag)
            w.kv(tagName(tag), n);
        w.endObject();
        w.key("by_texture");
        w.beginObject();
        for (auto &[tex, tg] : textures)
            w.kv(std::to_string(tex), tg.misses);
        w.endObject();
        w.key("hot_lines");
        w.beginArray();
        for (auto &[addr, n] : hot) {
            w.beginObject();
            w.kv("addr", addr);
            w.kv("misses", n);
            w.endObject();
        }
        w.endArray();
        w.key("outputs");
        w.beginArray();
        w.value(csv_path);
        for (const std::string &p : written)
            w.value(p);
        w.endArray();
        w.endObject();
        os << "\n";
    }

    // --- stdout summary ---------------------------------------------
    std::printf("event log        %s\n", opt.eventsPath.c_str());
    std::printf("events           %llu recorded, %llu dropped "
                "(1/%llu sampling)\n",
                (unsigned long long)log.eventCount(),
                (unsigned long long)log.dropped,
                (unsigned long long)log.sampleN);
    std::printf("miss events      %llu (%llu with screen context)\n",
                (unsigned long long)misses,
                (unsigned long long)located);
    std::printf("  cold           %llu\n",
                (unsigned long long)byClass[0]);
    std::printf("  capacity       %llu\n",
                (unsigned long long)byClass[1]);
    std::printf("  conflict       %llu\n",
                (unsigned long long)byClass[2]);
    std::printf("  unrefined      %llu\n",
                (unsigned long long)byClass[3]);
    std::printf("unique lines     %llu\n",
                (unsigned long long)lineMisses.size());
    for (const std::string &p : written)
        std::printf("wrote            %s\n", p.c_str());
    std::printf("wrote            %s\n", csv_path.c_str());
    std::printf("wrote            %s\n", json_path.c_str());
    return 0;
}
