/**
 * @file
 * Render one benchmark frame with full spatial miss diagnostics.
 *
 * This is the tracing layer's end-to-end driver: it renders a paper
 * scene and replays every texel touch through a 3-C miss classifier
 * *while the screen and texture coordinates are still known*, so that
 * - with TEXCACHE_TRACE=misses (or all) - each recorded miss event
 * carries its screen pixel, texture id, mip level and (u, v). The
 * resulting TRACE_traced_frame.events.bin feeds tools/texcache-report,
 * which folds the events into screen-space and texture-space heatmaps.
 *
 * Stdout is a deterministic summary (same bytes with tracing on or
 * off); the manifest and trace files go wherever TEXCACHE_STATS_DIR
 * points.
 *
 * Usage:
 *   traced_frame [scene] [cache_kb] [line_bytes]
 *     scene      flight | town | guitar | goblet | quad  (default quad)
 *     cache_kb   set-associative cache size in KB        (default 16)
 *     line_bytes cache line size in bytes                (default 64)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cache/three_c.hh"
#include "core/run_manifest.hh"
#include "core/scene_layout.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "stats/stats.hh"
#include "tracing/tracing.hh"

using namespace texcache;

namespace {

[[noreturn]] void
usage()
{
    std::cerr << "usage: traced_frame [scene] [cache_kb] [line_bytes]\n"
                 "scenes: flight town guitar goblet quad\n";
    std::exit(1);
}

/** The paper's square-ish block shape whose storage fills one line. */
LayoutParams
blockedLayoutForLine(unsigned line_bytes)
{
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    switch (line_bytes) {
      case 16:  p.blockW = 2;  p.blockH = 2; break;
      case 32:  p.blockW = 4;  p.blockH = 2; break;
      case 64:  p.blockW = 4;  p.blockH = 4; break;
      case 128: p.blockW = 8;  p.blockH = 4; break;
      case 256: p.blockW = 8;  p.blockH = 8; break;
      default:
        fatal("no block shape for line size ", line_bytes);
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scene_name = argc > 1 ? argv[1] : "quad";
    unsigned cache_kb = argc > 2 ? std::atoi(argv[2]) : 16;
    unsigned line_bytes = argc > 3 ? std::atoi(argv[3]) : 64;
    if (argc > 4 || cache_kb == 0 || line_bytes == 0)
        usage();

    Scene scene;
    RasterOrder order;
    if (scene_name == "quad") {
        scene = makeQuadTestScene(256, 256, 1.0f);
    } else {
        BenchScene bs;
        if (scene_name == "flight")
            bs = BenchScene::Flight;
        else if (scene_name == "town")
            bs = BenchScene::Town;
        else if (scene_name == "guitar")
            bs = BenchScene::Guitar;
        else if (scene_name == "goblet")
            bs = BenchScene::Goblet;
        else
            usage();
        scene = makeScene(bs);
        order.dir = paperScanDirection(bs);
    }

    SceneLayout layout(scene, blockedLayoutForLine(line_bytes));
    CacheConfig cfg{cache_kb * 1024, line_bytes, 2};
    MissClassifier classifier(cfg);

    // Replay texel touches in-line with rendering: publish the
    // fragment's screen position and the touch's texture coordinates
    // so miss events record where on screen and where in the texture
    // the miss happened.
    RenderOptions opts;
    opts.captureTrace = false;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    opts.onFragment = [&](const Fragment &frag, const SampleResult &s,
                          uint16_t texture) {
        Addr out[3];
        for (unsigned i = 0; i < s.numTouches; ++i) {
            const TexelTouch &t = s.touches[i];
            tracing::setTexelContext(
                static_cast<uint32_t>(frag.x),
                static_cast<uint32_t>(frag.y), texture, t.level, t.u,
                t.v);
            unsigned n = layout.layout(texture).addresses(t, out);
            for (unsigned k = 0; k < n; ++k)
                classifier.access(out[k]);
        }
    };

    RenderOutput frame = render(scene, order, opts);
    tracing::clearTexelContext();

    MissBreakdown b = classifier.breakdown();
    std::printf("scene            %s\n", scene.name.c_str());
    std::printf("screen           %ux%u\n", scene.screenW,
                scene.screenH);
    std::printf("cache            %u KB, %u B lines, 2-way\n", cache_kb,
                line_bytes);
    std::printf("fragments        %llu\n",
                (unsigned long long)frame.stats.fragments);
    std::printf("texel accesses   %llu\n",
                (unsigned long long)frame.stats.texelAccesses);
    std::printf("cache accesses   %llu\n",
                (unsigned long long)b.accesses);
    std::printf("misses           %llu (%.4f%%)\n",
                (unsigned long long)b.misses, 100.0 * b.missRate());
    std::printf("  cold           %llu\n", (unsigned long long)b.cold);
    std::printf("  capacity       %llu\n",
                (unsigned long long)b.capacity);
    std::printf("  conflict       %llu\n",
                (unsigned long long)b.conflict);

    RunManifest manifest("traced_frame");
    manifest.setScene(scene.name);
    manifest.config("scene", scene_name);
    manifest.config("cache_kb", static_cast<uint64_t>(cache_kb));
    manifest.config("line_bytes", static_cast<uint64_t>(line_bytes));
    manifest.metric("fragments",
                    static_cast<double>(frame.stats.fragments),
                    "exact");
    manifest.metric("texel_accesses",
                    static_cast<double>(frame.stats.texelAccesses),
                    "exact");
    manifest.metric("miss_rate", b.missRate(), "report");

    stats::Group root;
    stats::Group &cg = root.group("cache");
    cg.constant("accesses", b.accesses, "classified cache accesses");
    cg.constant("misses", b.misses, "set-associative misses");
    cg.constant("cold", b.cold, "cold misses");
    cg.constant("capacity", b.capacity, "capacity misses");
    cg.constant("conflict", b.conflict, "conflict misses");

    if (tracing::active()) {
        tracing::DumpInfo t = tracing::dumpToFiles("traced_frame");
        manifest.setTrace({t.chromePath, t.eventsPath, t.recorded,
                           t.dropped, t.sampleN});
    }
    manifest.writeFile(&root);
    return 0;
}
