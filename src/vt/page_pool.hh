/**
 * @file
 * Bounded physical page pool with LRU eviction and pinning.
 *
 * The paper assumes every texture is fully resident in DRAM; virtual
 * texturing (Neu 2010, PAPERS.md) drops that assumption. The simulated
 * texture address space is divided into fixed-size virtual pages, of
 * which only a bounded number - the physical pool - are resident at a
 * time. Residency is the memory-side backing of the whole vt/
 * subsystem: the cache hierarchy's fills hit or miss the pool, and the
 * sampler degrades to a coarser mip level while a missing page is in
 * flight (vt_sampler.hh).
 *
 * Pages a fallback must always find - each texture's coarsest mip
 * level - are pinned: resident from the start and never evicted.
 */

#ifndef TEXCACHE_VT_PAGE_POOL_HH
#define TEXCACHE_VT_PAGE_POOL_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/bits.hh"
#include "layout/address_space.hh"

namespace texcache {

/** Virtual page number: an Addr right-shifted by the page size. */
using PageId = uint64_t;

/** Geometry of the paged texture memory. */
struct PagePoolConfig
{
    unsigned pageBytes = 64 * 1024; ///< virtual page size (power of two)
    uint64_t poolPages = 64;        ///< physical pool capacity in pages
};

/** Residency counters accumulated over a run. */
struct PagePoolStats
{
    uint64_t lookups = 0;    ///< touch() calls
    uint64_t hits = 0;       ///< touches that found the page resident
    uint64_t insertions = 0; ///< pages made resident (fills + pins)
    uint64_t evictions = 0;  ///< LRU victims dropped for a new page
    uint64_t residentHighWater = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

/**
 * The physical page pool: an LRU-ordered set of resident virtual
 * pages, capped at poolPages, with pinned pages exempt from eviction.
 */
class PagePool
{
  public:
    explicit PagePool(const PagePoolConfig &config);

    PageId pageOf(Addr a) const { return a >> pageShift_; }
    Addr baseOf(PageId p) const { return p << pageShift_; }
    unsigned pageShift() const { return pageShift_; }

    /** Residency query; no statistics or recency side effects. */
    bool resident(PageId p) const { return entries_.count(p) != 0; }

    /**
     * Counted access. A resident page moves to the LRU front and the
     * touch counts as a hit; a non-resident page counts as a miss (the
     * caller decides whether to fetch it).
     */
    bool touch(PageId p);

    /**
     * Make @p p resident (a completed fetch or a warm-start prefault),
     * evicting the LRU unpinned page when the pool is full. Inserting
     * an already-resident page only refreshes its recency.
     */
    void insert(PageId p);

    /** Make @p p resident and exempt from eviction forever. */
    void pin(PageId p);

    uint64_t residentPages() const { return entries_.size(); }
    uint64_t pinnedPages() const { return pinned_; }
    const PagePoolStats &stats() const { return stats_; }
    const PagePoolConfig &config() const { return config_; }

  private:
    struct Entry
    {
        std::list<PageId>::iterator it; ///< valid only when !pinned
        bool pinned = false;
    };

    void makeRoom();

    PagePoolConfig config_;
    unsigned pageShift_;
    std::list<PageId> lru_; ///< unpinned resident pages, MRU first
    std::unordered_map<PageId, Entry> entries_;
    uint64_t pinned_ = 0;
    PagePoolStats stats_;
};

} // namespace texcache

#endif // TEXCACHE_VT_PAGE_POOL_HH
