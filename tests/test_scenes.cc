/** @file
 * Tests that the generated benchmark scenes match the paper's Table 4.1
 * characteristics (within the tolerance bands DESIGN.md commits to).
 */

#include <gtest/gtest.h>

#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "scene/mesh_util.hh"

using namespace texcache;

namespace {

double
mb(uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace

TEST(Scenes, FlightMatchesTable41)
{
    Scene s = makeFlightScene();
    EXPECT_EQ(s.screenW, 1280u);
    EXPECT_EQ(s.screenH, 1024u);
    EXPECT_NEAR(s.triangles.size(), 9152.0, 9152.0 * 0.05);
    EXPECT_EQ(s.textures.size(), 15u);
    EXPECT_NEAR(mb(s.textureStorageBytes()), 56.0, 56.0 * 0.25);
}

TEST(Scenes, TownMatchesTable41)
{
    Scene s = makeTownScene();
    EXPECT_EQ(s.screenW, 1280u);
    EXPECT_NEAR(s.triangles.size(), 5317.0, 5317.0 * 0.05);
    EXPECT_EQ(s.textures.size(), 51u);
    EXPECT_NEAR(mb(s.textureStorageBytes()), 4.7, 4.7 * 0.25);
}

TEST(Scenes, GuitarMatchesTable41)
{
    Scene s = makeGuitarScene();
    EXPECT_EQ(s.screenW, 800u);
    EXPECT_NEAR(s.triangles.size(), 719.0, 719.0 * 0.05);
    EXPECT_EQ(s.textures.size(), 8u);
    EXPECT_NEAR(mb(s.textureStorageBytes()), 4.9, 4.9 * 0.25);
}

TEST(Scenes, GobletMatchesTable41)
{
    Scene s = makeGobletScene();
    EXPECT_EQ(s.screenW, 800u);
    EXPECT_EQ(s.triangles.size(), 7200u); // exactly 60 x 60 x 2
    EXPECT_EQ(s.textures.size(), 1u);
    EXPECT_NEAR(mb(s.textureStorageBytes()), 1.4, 1.4 * 0.25);
}

TEST(Scenes, AllTrianglesReferenceValidTextures)
{
    for (BenchScene b : allBenchScenes()) {
        Scene s = makeScene(b);
        for (const SceneTriangle &t : s.triangles)
            ASSERT_LT(t.texture, s.textures.size()) << s.name;
    }
}

TEST(Scenes, AllTexturesArePowerOfTwoMipped)
{
    for (BenchScene b : allBenchScenes()) {
        Scene s = makeScene(b);
        for (const MipMap &m : s.textures) {
            ASSERT_GE(m.numLevels(), 1u);
            ASSERT_EQ(m.width(m.numLevels() - 1), 1u);
            ASSERT_EQ(m.height(m.numLevels() - 1), 1u);
        }
    }
}

TEST(Scenes, PaperScanDirections)
{
    EXPECT_EQ(paperScanDirection(BenchScene::Town),
              ScanDirection::Vertical);
    EXPECT_EQ(paperScanDirection(BenchScene::Flight),
              ScanDirection::Horizontal);
    EXPECT_EQ(paperScanDirection(BenchScene::Guitar),
              ScanDirection::Horizontal);
    EXPECT_EQ(paperScanDirection(BenchScene::Goblet),
              ScanDirection::Horizontal);
}

TEST(Scenes, NamesAreStable)
{
    EXPECT_STREQ(benchSceneName(BenchScene::Flight), "Flight");
    EXPECT_STREQ(benchSceneName(BenchScene::Town), "Town");
    EXPECT_STREQ(benchSceneName(BenchScene::Guitar), "Guitar");
    EXPECT_STREQ(benchSceneName(BenchScene::Goblet), "Goblet");
}

TEST(MeshUtil, QuadPatchTriangleCount)
{
    Scene s;
    s.textures.emplace_back(Image(4, 4));
    unsigned n = addQuadPatch(s, 0, {0, 0, 0}, {1, 0, 0}, {1, 1, 0},
                              {0, 1, 0}, {0, 0}, {1, 1}, 3, 5,
                              {0, 0, -1});
    EXPECT_EQ(n, 30u);
    EXPECT_EQ(s.triangles.size(), 30u);
}

TEST(MeshUtil, QuadPatchUvSpansRequestedRange)
{
    Scene s;
    s.textures.emplace_back(Image(4, 4));
    addQuadPatch(s, 0, {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                 {0, 0}, {3, 2}, 2, 2, {0, 0, -1});
    float umax = 0, vmax = 0;
    for (const SceneTriangle &t : s.triangles)
        for (const SceneVertex &v : t.v) {
            umax = std::max(umax, v.uv.x);
            vmax = std::max(vmax, v.uv.y);
        }
    EXPECT_FLOAT_EQ(umax, 3.0f);
    EXPECT_FLOAT_EQ(vmax, 2.0f);
}

TEST(MeshUtil, LambertShadeBounds)
{
    EXPECT_NEAR(lambertShade({0, 1, 0}, {0, -1, 0}), 1.0f, 1e-5f);
    EXPECT_NEAR(lambertShade({0, 1, 0}, {0, 1, 0}), 0.35f, 1e-5f);
    float s = lambertShade({1, 1, 0}, {0, -1, 0});
    EXPECT_GT(s, 0.35f);
    EXPECT_LT(s, 1.0f);
}

TEST(WorstCaseScene, FillsTheScreenAtUnitTexelRatio)
{
    Scene s = makeWorstCaseScene(256, 128, 0.0f);
    RenderOptions opts;
    opts.writeFramebuffer = false;
    RenderOutput out = render(s, RasterOrder::horizontal(), opts);
    // The quad covers the viewport exactly once.
    EXPECT_EQ(out.stats.fragments, 128u * 128u);
    // ~1 texel/pixel: LOD straddles 0, so fragments are bilinear or
    // low-level trilinear, never deep in the pyramid.
    out.trace.forEach([&](const TexelRecord &r) {
        ASSERT_LE(r.level, 2);
    });
}

TEST(WorstCaseScene, RotationChangesTheAccessPattern)
{
    Scene a = makeWorstCaseScene(128, 128, 0.0f);
    Scene b = makeWorstCaseScene(128, 128, 0.7f);
    RenderOptions opts;
    opts.writeFramebuffer = false;
    RenderOutput oa = render(a, RasterOrder::horizontal(), opts);
    RenderOutput ob = render(b, RasterOrder::horizontal(), opts);
    EXPECT_EQ(oa.stats.fragments, ob.stats.fragments);
    // Different orientations touch different texel sequences.
    bool differs = false;
    size_t n = std::min(oa.trace.size(), ob.trace.size());
    for (size_t i = 0; i < n && !differs; i += 1009)
        differs = oa.trace[i].pack() != ob.trace[i].pack();
    EXPECT_TRUE(differs);
}
