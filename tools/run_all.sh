#!/bin/sh
# Regenerate every figure/table of the reproduction into results/.
# Usage: tools/run_all.sh [--fail-fast] [--service] [--profile]
#                         [build_dir] [out_dir]
# Set TEXCACHE_CSV=1 for machine-readable output.
#
# With --profile, every bench runs with the in-process sampling
# profiler armed (TEXCACHE_PROF_HZ, default 97 Hz - a prime, so the
# sampler does not beat against periodic work). Each bench then dumps
# PROF_<bench>.collapsed / PROF_<bench>.speedscope.json into $OUT;
# the merged run_manifest.json rows carry the paths, and (with
# python3) a self-contained FLAME_<bench>.html flamegraph is rendered
# next to each dump via tools/texcache_flame.py.
#
# With --service, the run additionally starts the texcached daemon on
# a socket under $OUT, drives it with texcached_load (8 clients, 1000
# mixed requests, byte-identity + fold assertions), and records the
# result as one more row in run_manifest.json; the gated
# BENCH_texcached.json lands in $OUT like every other bench manifest.
#
# Each bench writes stdout to $OUT/<name>.txt and stderr to
# $OUT/<name>.err. By default a failing bench does not stop the run;
# the script exits nonzero at the end listing every failure. With
# --fail-fast the run stops at the first failing bench instead (the
# partial run_manifest.json still covers every bench that ran).
#
# Rendered texel traces are cached under $OUT/trace-cache (see
# DESIGN.md section 8), so re-runs skip the expensive renders; delete
# that directory to force re-rendering. Per-bench and cumulative
# wall-clock are printed as each bench finishes, along with the
# bench's worker-thread count and its trace-generation vs simulation
# wall-clock split (read from the bench's BENCH_*.json manifest;
# needs python3, silently omitted without it).
#
# Besides the per-bench BENCH_*.json run manifests the benches write
# into $OUT themselves (TEXCACHE_STATS_DIR), the whole run is
# summarized in $OUT/run_manifest.json: per-bench pass/fail and
# wall-clock plus the totals.
set -u
FAIL_FAST=0
SERVICE=0
PROFILE=0
while :; do
    case "${1:-}" in
        --fail-fast)
            FAIL_FAST=1
            shift
            ;;
        --service)
            SERVICE=1
            shift
            ;;
        --profile)
            PROFILE=1
            shift
            ;;
        --*)
            echo "usage: tools/run_all.sh [--fail-fast] [--service]" \
                 "[--profile] [build_dir] [out_dir]" >&2
            exit 2
            ;;
        *)
            break
            ;;
    esac
done
BUILD="${1:-build}"
OUT="${2:-results}"
TOOLS_DIR=$(dirname "$0")
if [ "$PROFILE" = 1 ]; then
    TEXCACHE_PROF_HZ="${TEXCACHE_PROF_HZ:-97}"
    export TEXCACHE_PROF_HZ
fi
mkdir -p "$OUT"
TEXCACHE_TRACE_CACHE_DIR="${TEXCACHE_TRACE_CACHE_DIR:-$OUT/trace-cache}"
export TEXCACHE_TRACE_CACHE_DIR
TEXCACHE_STATS_DIR="${TEXCACHE_STATS_DIR:-$OUT}"
export TEXCACHE_STATS_DIR
# micro_shard defaults to a 10^9-access stream (its CI job runs that
# in full); for the local suite a 10^8 slice exercises the same paths
# in a fraction of the time. Its manifest drops the logical_accesses
# exact pin at non-default targets, so the reduced run stays
# comparable. Override by exporting a different value.
TEXCACHE_SHARD_TARGET="${TEXCACHE_SHARD_TARGET:-100000000}"
export TEXCACHE_SHARD_TARGET
HAVE_PY=0
command -v python3 > /dev/null 2>&1 && HAVE_PY=1
failed=""
total=0
npass=0
nfail=0
rows=""
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    : > "$OUT/.bench_marker"
    start=$(date +%s)
    if "$b" > "$OUT/$name.txt" 2> "$OUT/$name.err"; then
        status=ok
        npass=$((npass + 1))
    else
        echo "== $name FAILED (exit $?); stderr in $OUT/$name.err" >&2
        failed="$failed $name"
        status=FAILED
        nfail=$((nfail + 1))
    fi
    end=$(date +%s)
    elapsed=$((end - start))
    total=$((total + elapsed))
    # Attribute this bench's freshly written manifests (newer than the
    # marker) and pull out its thread count and how much of its wall-
    # clock went to trace generation versus simulation.
    split_txt=""
    split_json=""
    if [ "$HAVE_PY" = 1 ]; then
        info=$(find "$OUT" -maxdepth 1 -name 'BENCH_*.json' \
                   -newer "$OUT/.bench_marker" 2> /dev/null |
            python3 -c '
import json, sys
trace_ms, threads, seen, isa, rss = 0.0, 0, False, "?", 0
for line in sys.stdin:
    path = line.strip()
    if not path:
        continue
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        continue
    seen = True
    tg = doc.get("stats", {}).get("trace_gen", {})
    trace_ms += float(tg.get("render_wall_ms", 0) or 0)
    threads = max(threads, int(tg.get("threads", 0) or 0))
    isa = str(doc.get("host", {}).get("simd_isa", isa)).split()[0]
    rss = max(rss, int(doc.get("host", {}).get("peak_rss_bytes", 0) or 0))
if seen:
    sim_ms = max(0.0, float(sys.argv[1]) * 1000.0 - trace_ms)
    print("%d %.0f %.0f %s %d" % (threads, trace_ms, sim_ms, isa, rss))
' "$elapsed")
        if [ -n "$info" ]; then
            set -- $info
            split_txt=" [threads=$1 isa=$4 trace-gen ${2}ms / sim ${3}ms rss $(($5 / 1048576))MiB]"
            split_json=", \"threads\": $1, \"simd_isa\": \"$4\", \"trace_gen_ms\": $2, \"sim_ms\": $3, \"peak_rss_bytes\": $5"
        fi
    fi
    # --profile: attribute this bench's fresh profiler dumps, render
    # an HTML flamegraph per dump, and thread the paths into the row.
    prof_json=""
    if [ "$PROFILE" = 1 ]; then
        plist=""
        for p in $(find "$OUT" -maxdepth 1 -name 'PROF_*.collapsed' \
                       -newer "$OUT/.bench_marker" 2> /dev/null); do
            [ -s "$p" ] || continue
            flame=""
            if [ "$HAVE_PY" = 1 ]; then
                flame="$OUT/FLAME_$(basename "$p" .collapsed |
                    sed 's/^PROF_//').html"
                python3 "$TOOLS_DIR/texcache_flame.py" "$p" \
                    --out "$flame" 2>> "$OUT/$name.err" || flame=""
            fi
            entry="{\"collapsed\": \"$p\""
            [ -n "$flame" ] && entry="$entry, \"flamegraph\": \"$flame\""
            entry="$entry}"
            if [ -n "$plist" ]; then
                plist="$plist, $entry"
            else
                plist="$entry"
            fi
        done
        [ -n "$plist" ] && prof_json=", \"profiles\": [$plist]"
    fi
    echo "== $name ${elapsed}s (cumulative ${total}s) $status$split_txt"
    row="    {\"bench\": \"$name\", \"status\": \"$status\", \"seconds\": $elapsed$split_json$prof_json}"
    if [ -n "$rows" ]; then
        rows="$rows,
$row"
    else
        rows="$row"
    fi
    if [ "$FAIL_FAST" = 1 ] && [ "$status" = FAILED ]; then
        echo "== stopping: --fail-fast and $name failed" >&2
        break
    fi
done
# --service: one daemon round-trip smoke on top of the batch benches.
# The daemon drains itself via the load driver's --shutdown control
# request; --once is a belt-and-braces idle exit if the driver dies.
if [ "$SERVICE" = 1 ] && { [ "$FAIL_FAST" = 0 ] || [ -z "$failed" ]; }; then
    name=texcached
    SOCK="$OUT/texcached.sock"
    start=$(date +%s)
    "$BUILD/tools/texcached" --socket "$SOCK" --once --idle-ms 10000 \
        > "$OUT/$name.daemon.txt" 2> "$OUT/$name.daemon.err" &
    daemon_pid=$!
    tries=0
    while [ ! -S "$SOCK" ] && [ "$tries" -lt 100 ]; do
        sleep 0.1
        tries=$((tries + 1))
    done
    if "$BUILD/tools/texcached_load" --socket "$SOCK" --clients 8 \
        --requests 1000 --min-fold 1.5 --shutdown \
        > "$OUT/$name.txt" 2> "$OUT/$name.err" && wait "$daemon_pid"
    then
        status=ok
        npass=$((npass + 1))
    else
        echo "== $name FAILED; see $OUT/$name.err and $OUT/$name.daemon.err" >&2
        failed="$failed $name"
        status=FAILED
        nfail=$((nfail + 1))
        kill "$daemon_pid" 2> /dev/null
        wait "$daemon_pid" 2> /dev/null
    fi
    end=$(date +%s)
    elapsed=$((end - start))
    total=$((total + elapsed))
    echo "== $name ${elapsed}s (cumulative ${total}s) $status"
    row="    {\"bench\": \"$name\", \"status\": \"$status\", \"seconds\": $elapsed}"
    if [ -n "$rows" ]; then
        rows="$rows,
$row"
    else
        rows="$row"
    fi
fi
{
    printf '{\n'
    printf '  "schema": "texcache-runall-1",\n'
    printf '  "passed": %s,\n' "$npass"
    printf '  "failed": %s,\n' "$nfail"
    printf '  "total_seconds": %s,\n' "$total"
    printf '  "benches": [\n%s\n  ]\n' "$rows"
    printf '}\n'
} > "$OUT/run_manifest.json"
rm -f "$OUT/.bench_marker"
echo "wrote $(ls "$OUT" | wc -l) result files to $OUT/ in ${total}s"
if [ -n "$failed" ]; then
    echo "FAILED benches:$failed" >&2
    exit 1
fi
