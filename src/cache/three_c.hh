/**
 * @file
 * 3-C miss classification (cold / capacity / conflict).
 *
 * The paper attributes miss-rate differences between set-associative and
 * fully associative caches of equal size to conflict misses (sections
 * 5.3.3, 6.2). This helper runs both organizations side by side over the
 * same address stream and splits the set-associative cache's misses:
 *
 *   cold     = first touch of a line address,
 *   conflict = set-associative misses - fully-associative misses,
 *   capacity = the remainder.
 */

#ifndef TEXCACHE_CACHE_THREE_C_HH
#define TEXCACHE_CACHE_THREE_C_HH

#include <algorithm>

#include "cache/cache_sim.hh"
#include "tracing/tracing.hh"

namespace texcache {

/** Breakdown of a set-associative cache's misses. */
struct MissBreakdown
{
    uint64_t accesses = 0;
    uint64_t misses = 0;   ///< total misses of the set-associative cache
    uint64_t cold = 0;
    uint64_t capacity = 0;
    uint64_t conflict = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** Runs a set-associative cache and an FA twin over the same stream. */
class MissClassifier
{
  public:
    explicit MissClassifier(const CacheConfig &config)
        : sa_(config), fa_(config.sizeBytes, config.lineBytes)
    {
        // The twins stay silent; this classifier emits one refined
        // event per set-associative miss with the exact 3C class the
        // FA twin resolves (the aggregate breakdown() cannot see).
        sa_.setTraceTag(tracing::kTagSilent);
        fa_.setTraceTag(tracing::kTagSilent);
    }

    void
    access(Addr addr)
    {
        uint64_t cold_before = sa_.stats().coldMisses;
        bool sa_hit = sa_.access(addr);
        bool fa_hit = fa_.access(addr);
        if (!sa_hit &&
            tracing::enabled(tracing::kMisses | tracing::kTexels)) {
            tracing::MissClass cls;
            if (sa_.stats().coldMisses != cold_before)
                cls = tracing::MissClass::Cold;
            else if (fa_hit)
                cls = tracing::MissClass::Conflict;
            else
                cls = tracing::MissClass::Capacity;
            tracing::cacheMiss(addr, cls, tracing::kTagClassified);
        }
    }

    /** Final classification (call after the stream is done). */
    MissBreakdown
    breakdown() const
    {
        MissBreakdown b;
        const CacheStats &s = sa_.stats();
        const CacheStats &f = fa_.stats();
        b.accesses = s.accesses;
        b.misses = s.misses;
        b.cold = s.coldMisses;
        // An FA cache can in rare corner cases miss *more* than a
        // set-associative one (LRU is not optimal); clamp at zero as the
        // standard 3-C model does.
        b.conflict = s.misses > f.misses ? s.misses - f.misses : 0;
        uint64_t fa_noncold = f.misses - f.coldMisses;
        b.capacity = std::min(fa_noncold, b.misses - b.cold - b.conflict);
        return b;
    }

    const CacheStats &setAssocStats() const { return sa_.stats(); }
    const CacheStats &fullyAssocStats() const { return fa_.stats(); }

  private:
    CacheSim sa_;
    FullyAssocLru fa_;
};

} // namespace texcache

#endif // TEXCACHE_CACHE_THREE_C_HH
