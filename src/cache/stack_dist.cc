#include "cache/stack_dist.hh"

#include <algorithm>

#include "common/bits.hh"

namespace texcache {

StackDistProfiler::StackDistProfiler(unsigned line_bytes)
{
    fatal_if(!isPowerOfTwo(line_bytes), "line size ", line_bytes,
             " not a power of two");
    lineShift_ = log2Exact(line_bytes);
    hist_.resize(kTopK + 1, 0); // fast-path distances need no resize
}

void
StackDistProfiler::fenwickAdd(size_t pos, int delta)
{
    // 1-based Fenwick update.
    for (size_t i = pos + 1; i <= tree_.size(); i += i & (~i + 1))
        tree_[i - 1] += static_cast<uint64_t>(static_cast<int64_t>(delta));
}

uint64_t
StackDistProfiler::fenwickSuffix(size_t pos) const
{
    // Count of live timestamps at positions > pos:
    // total - prefix(pos + 1).
    uint64_t prefix = 0;
    for (size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        prefix += tree_[i - 1];
    // Every live line has exactly one set timestamp, so the total live
    // count is the map size (the caller queries before inserting).
    uint64_t total = lastTime_.size();
    return total - prefix;
}

void
StackDistProfiler::compact()
{
    // The map entries of top-array lines are allowed to be stale; make
    // them truthful before renumbering, and refresh the array after.
    for (size_t i = 0; i < topSize_; ++i)
        *lastTime_.find(top_[i].line) = top_[i].time;

    // Renumber live timestamps densely, preserving order.
    std::vector<std::pair<uint64_t, uint64_t>> live; // (old time, line)
    live.reserve(lastTime_.size());
    lastTime_.forEach(
        [&](uint64_t line, uint64_t t) { live.emplace_back(t, line); });
    std::sort(live.begin(), live.end());

    present_.assign(live.size() * 2 + 64, false);
    tree_.assign(present_.size(), 0);
    now_ = 0;
    for (const auto &[t, line] : live) {
        *lastTime_.find(line) = now_;
        present_[now_] = true;
        fenwickAdd(now_, 1);
        ++now_;
    }

    for (size_t i = 0; i < topSize_; ++i)
        top_[i].time = *lastTime_.find(top_[i].line);
}

void
StackDistProfiler::access(Addr addr)
{
    uint64_t line = addr >> lineShift_;
    ++accesses_;

    // Fast path: a hit in the top-of-stack array is a pure rotation.
    // Position i owns the (i+1)-th newest timestamp, so moving the line
    // to the front while the timestamps stay put realises the LRU
    // reordering without touching the Fenwick tree or the map.
    for (size_t j = 0; j < topSize_; ++j) {
        if (top_[j].line == line) {
            ++hist_[j + 1];
            for (size_t i = j; i > 0; --i)
                top_[i].line = top_[i - 1].line;
            top_[0].line = line;
            return;
        }
    }

    if (now_ >= tree_.size()) {
        if (lastTime_.size() * 2 + 64 < tree_.size()) {
            compact();
        } else {
            size_t new_size = tree_.size() ? tree_.size() * 2 : 1024;
            // Rebuild the Fenwick tree at the larger size.
            std::vector<bool> old_present = present_;
            present_.assign(new_size, false);
            tree_.assign(new_size, 0);
            for (size_t i = 0; i < old_present.size(); ++i) {
                if (old_present[i]) {
                    present_[i] = true;
                    fenwickAdd(i, 1);
                }
            }
        }
    }

    uint64_t *slot = lastTime_.find(line);
    if (!slot) {
        ++cold_;
        if (firstTouchLog_)
            firstTouchLog_->push_back(line);
        lastTime_.insert(line, now_);
    } else {
        uint64_t prev = *slot;
        // Distance = live timestamps after prev, plus this line itself.
        // The top-array lines own exactly the newest live timestamps,
        // so the suffix count includes them without consulting the
        // array's internal order.
        uint64_t dist = fenwickSuffix(prev) + 1;
        if (hist_.size() <= dist)
            hist_.resize(dist + 1, 0);
        ++hist_[dist];
        present_[prev] = false;
        fenwickAdd(prev, -1);
        *slot = now_;
    }
    present_[now_] = true;
    fenwickAdd(now_, 1);

    // Push the line onto the top-of-stack array; the demoted line gets
    // its true (smallest-of-the-array) timestamp written back.
    if (topSize_ == kTopK)
        *lastTime_.find(top_[kTopK - 1].line) = top_[kTopK - 1].time;
    else
        ++topSize_;
    for (size_t i = topSize_ - 1; i > 0; --i)
        top_[i] = top_[i - 1];
    top_[0] = {line, now_};
    ++now_;
}

std::vector<uint64_t>
StackDistProfiler::stackOrder() const
{
    // Top-array lines own the newest timestamps, but their map entries
    // may be stale (fast-path rotations never write the map back), so
    // they are excluded from the timestamp sort and appended by array
    // position: top_[topSize_-1] is the (topSize_)-th newest, top_[0]
    // the MRU.
    auto inTop = [&](uint64_t line) {
        for (size_t i = 0; i < topSize_; ++i)
            if (top_[i].line == line)
                return true;
        return false;
    };

    std::vector<std::pair<uint64_t, uint64_t>> rest; // (time, line)
    rest.reserve(lastTime_.size());
    lastTime_.forEach([&](uint64_t line, uint64_t t) {
        if (!inTop(line))
            rest.emplace_back(t, line);
    });
    std::sort(rest.begin(), rest.end());

    std::vector<uint64_t> order;
    order.reserve(rest.size() + topSize_);
    for (const auto &[t, line] : rest)
        order.push_back(line);
    for (size_t i = topSize_; i > 0; --i)
        order.push_back(top_[i - 1].line);
    return order;
}

uint64_t
StackDistProfiler::misses(uint64_t size_bytes) const
{
    uint64_t capacity = size_bytes >> lineShift_;
    uint64_t m = cold_;
    for (uint64_t d = capacity + 1; d < hist_.size(); ++d)
        m += hist_[d];
    return m;
}

} // namespace texcache
