/**
 * @file
 * Runtime ISA dispatch for the vectorized raster/sampler kernels
 * (DESIGN.md section 13).
 *
 * One kernel body (kernel_body.hh) is compiled three times - scalar,
 * SSE4.1 and AVX2 - and the level actually executed is chosen once at
 * startup from CPUID, overridable with TEXCACHE_SIMD=scalar|sse41|
 * avx2|native (fatal on unknown or unsupported values). Every level
 * produces byte-identical traces, framebuffers and statistics: the
 * kernels perform the same IEEE float operations in the same order
 * per fragment, vectorized across fragments, which the identity
 * matrix in tests/test_parallel_render.cc and the batch fuzz in
 * tests/test_simd_kernels.cc enforce.
 */

#ifndef TEXCACHE_SIMD_ISA_HH
#define TEXCACHE_SIMD_ISA_HH

#include <vector>

namespace texcache {
namespace simd {

/** Instruction-set level of the span kernels, in increasing width. */
enum class Isa : int
{
    Scalar = 0, ///< one fragment at a time (the identity reference)
    Sse41 = 1,  ///< 4 fragments per vector
    Avx2 = 2,   ///< 8 fragments per vector
};

/** Display name: "scalar", "sse41", "avx2". */
const char *isaName(Isa isa);

/** True when the level is both compiled in and supported by the CPU. */
bool isaSupported(Isa isa);

/** The widest compiled-and-supported level ("native"). */
Isa bestIsa();

/** Every compiled-and-supported level, narrowest first (test matrix). */
std::vector<Isa> supportedIsas();

/**
 * Parse a TEXCACHE_SIMD-style spec. "scalar"/"sse41"/"avx2" select
 * that level, "native" (or an empty/unset spec) selects bestIsa().
 * fatal() on an unknown spec or a level the build or CPU lacks -
 * silently falling back would make a run's ISA (recorded in every
 * manifest) disagree with what the user pinned.
 */
Isa resolveIsa(const char *spec);

/** resolveIsa(getenv("TEXCACHE_SIMD")) - re-reads the environment. */
Isa isaFromEnv();

/**
 * The level the render engine dispatches to. Resolved from the
 * environment once on first use, then cached; setActiveIsa overrides
 * it (tests and the micro_raster SIMD ablation switch levels within
 * one process).
 */
Isa activeIsa();

/** Override the active level; fatal() when unsupported. */
void setActiveIsa(Isa isa);

} // namespace simd
} // namespace texcache

#endif // TEXCACHE_SIMD_ISA_HH
