/** @file Tests for the prefetch-FIFO timing model (section 7.1.1). */

#include <gtest/gtest.h>

#include "core/scene_layout.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "timing/prefetch_model.hh"

using namespace texcache;

namespace {

struct Fixture
{
    Scene scene = makeQuadTestScene(256, 128);
    RenderOutput out = render(scene, RasterOrder::horizontal());
    LayoutParams params = [] {
        LayoutParams p;
        p.kind = LayoutKind::Blocked;
        p.blockW = p.blockH = 4;
        return p;
    }();
    SceneLayout layout{scene, params};
};

Fixture &
fix()
{
    static Fixture f;
    return f;
}

} // namespace

TEST(Timing, CyclesAtLeastPipelineMinimum)
{
    TimingConfig t;
    TimingResult r = simulateTiming(fix().out.trace, fix().layout,
                                    {32 * 1024, 64, 2}, t);
    EXPECT_GT(r.fragments, 0u);
    EXPECT_GE(r.cycles, r.fragments * t.cyclesPerFragment);
    EXPECT_EQ(r.cycles,
              r.fragments * t.cyclesPerFragment + r.stallCycles);
}

TEST(Timing, NoMissesMeansNoStalls)
{
    // A cache big enough to never miss after warmup still takes cold
    // misses; use a second pass by replaying the trace twice through a
    // persistent cache... simpler: huge line+cache so misses are rare,
    // then assert stalls ~ misses bounded.
    TimingConfig t;
    t.fifoDepth = 0;
    TimingResult r = simulateTiming(fix().out.trace, fix().layout,
                                    {1 << 20, 128, 2}, t);
    // Every stall is caused by a miss, each at most latency cycles.
    EXPECT_LE(r.stallCycles,
              r.misses * static_cast<uint64_t>(t.memLatencyCycles));
}

TEST(Timing, PrefetchHidesLatency)
{
    TimingConfig no_pf;
    no_pf.fifoDepth = 0;
    TimingConfig pf;
    pf.fifoDepth = 128;
    CacheConfig cache{8 * 1024, 64, 2};
    TimingResult a =
        simulateTiming(fix().out.trace, fix().layout, cache, no_pf);
    TimingResult b =
        simulateTiming(fix().out.trace, fix().layout, cache, pf);
    EXPECT_EQ(a.fragments, b.fragments);
    EXPECT_EQ(a.misses, b.misses); // same cache behavior
    EXPECT_LT(b.stallCycles, a.stallCycles);
    EXPECT_GT(b.efficiency(pf.cyclesPerFragment),
              a.efficiency(no_pf.cyclesPerFragment));
}

TEST(Timing, DeeperFifoNeverHurts)
{
    CacheConfig cache{4 * 1024, 32, 2};
    uint64_t prev = ~0ULL;
    for (unsigned depth : {0u, 4u, 16u, 64u, 256u}) {
        TimingConfig t;
        t.fifoDepth = depth;
        TimingResult r =
            simulateTiming(fix().out.trace, fix().layout, cache, t);
        EXPECT_LE(r.cycles, prev) << "depth " << depth;
        prev = r.cycles;
    }
}

TEST(Timing, EfficiencyIsAFraction)
{
    TimingConfig t;
    TimingResult r = simulateTiming(fix().out.trace, fix().layout,
                                    {16 * 1024, 64, 2}, t);
    EXPECT_GT(r.efficiency(t.cyclesPerFragment), 0.0);
    EXPECT_LE(r.efficiency(t.cyclesPerFragment), 1.0);
    EXPECT_GT(r.fragmentsPerSecond(t.clockHz), 0.0);
    EXPECT_LE(r.fragmentsPerSecond(t.clockHz),
              t.clockHz / t.cyclesPerFragment + 1.0);
}
