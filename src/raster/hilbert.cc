#include "raster/hilbert.hh"

namespace texcache {

// Classic iterative rotate-and-fold conversion (Hilbert 1891 via the
// well-known Wikipedia/Warren formulation).

uint64_t
hilbertIndex(unsigned k, uint32_t x, uint32_t y)
{
    uint64_t n = 1ULL << k;
    uint64_t rx, ry, d = 0;
    for (uint64_t s = n / 2; s > 0; s /= 2) {
        rx = (x & s) > 0 ? 1 : 0;
        ry = (y & s) > 0 ? 1 : 0;
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant (over the full n x n grid).
        if (ry == 0) {
            if (rx == 1) {
                x = static_cast<uint32_t>(n - 1 - x);
                y = static_cast<uint32_t>(n - 1 - y);
            }
            uint32_t t = x;
            x = y;
            y = t;
        }
    }
    return d;
}

void
hilbertPoint(unsigned k, uint64_t d, uint32_t &x, uint32_t &y)
{
    uint64_t rx, ry, t = d;
    x = y = 0;
    for (uint64_t s = 1; s < (1ULL << k); s *= 2) {
        rx = 1 & (t / 2);
        ry = 1 & (t ^ rx);
        if (ry == 0) {
            if (rx == 1) {
                x = static_cast<uint32_t>(s - 1 - x);
                y = static_cast<uint32_t>(s - 1 - y);
            }
            uint32_t tmp = x;
            x = y;
            y = tmp;
        }
        x += static_cast<uint32_t>(s * rx);
        y += static_cast<uint32_t>(s * ry);
        t /= 4;
    }
}

} // namespace texcache
