#include "raster/triangle.hh"

#include <algorithm>
#include <cmath>

namespace texcache {

TriangleSetup::Plane
TriangleSetup::fromValues(const ScreenVertex &a, const ScreenVertex &b,
                          const ScreenVertex &c, float va, float vb,
                          float vc, float inv_area2)
{
    // Solve for the affine function f with f(a) = va, f(b) = vb,
    // f(c) = vc using the standard cross-product formulation.
    Plane p;
    p.ex = (va * (b.y - c.y) + vb * (c.y - a.y) + vc * (a.y - b.y)) *
           inv_area2;
    p.ey = (va * (c.x - b.x) + vb * (a.x - c.x) + vc * (b.x - a.x)) *
           inv_area2;
    p.e0 = va - p.ex * a.x - p.ey * a.y;
    return p;
}

TriangleSetup::TriangleSetup(const ScreenVertex &a0, const ScreenVertex &b0,
                             const ScreenVertex &c0)
{
    ScreenVertex a = a0, b = b0, c = c0;
    float area2 = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    if (area2 == 0.0f || !std::isfinite(area2)) {
        valid_ = false;
        return;
    }
    if (area2 < 0.0f) {
        // Normalize winding so edge functions are positive inside.
        std::swap(b, c);
        area2 = -area2;
    }
    valid_ = true;
    area2_ = area2;
    float inv_area2 = 1.0f / area2;

    minX_ = std::min({a.x, b.x, c.x});
    maxX_ = std::max({a.x, b.x, c.x});
    minY_ = std::min({a.y, b.y, c.y});
    maxY_ = std::max({a.y, b.y, c.y});

    // Edge i runs from vertex (i+1) to vertex (i+2); E >= 0 inside.
    const ScreenVertex *v[3] = {&a, &b, &c};
    for (int i = 0; i < 3; ++i) {
        const ScreenVertex &p = *v[(i + 1) % 3];
        const ScreenVertex &q = *v[(i + 2) % 3];
        Plane e;
        e.ex = p.y - q.y;
        e.ey = q.x - p.x;
        e.e0 = p.x * q.y - q.x * p.y;
        edges_[i] = e;
        // Top-left rule: edges that are horizontal-going-left ("top") or
        // any left edge own their boundary pixels.
        topLeft_[i] = (p.y == q.y && q.x < p.x) || (q.y < p.y);
    }

    invW_ = fromValues(a, b, c, a.invW, b.invW, c.invW, inv_area2);
    uOverW_ = fromValues(a, b, c, a.uOverW, b.uOverW, c.uOverW, inv_area2);
    vOverW_ = fromValues(a, b, c, a.vOverW, b.vOverW, c.vOverW, inv_area2);
    depth_ = fromValues(a, b, c, a.z, b.z, c.z, inv_area2);
    shade_ = fromValues(a, b, c, a.shade, b.shade, c.shade, inv_area2);
}

PixelRect
TriangleSetup::bounds(unsigned screen_w, unsigned screen_h) const
{
    PixelRect r;
    if (!valid_)
        return r;
    r.x0 = std::max(0, static_cast<int>(std::floor(minX_ - 0.5f)));
    r.y0 = std::max(0, static_cast<int>(std::floor(minY_ - 0.5f)));
    r.x1 = std::min(static_cast<int>(screen_w) - 1,
                    static_cast<int>(std::ceil(maxX_ - 0.5f)));
    r.y1 = std::min(static_cast<int>(screen_h) - 1,
                    static_cast<int>(std::ceil(maxY_ - 0.5f)));
    return r;
}

bool
TriangleSetup::covers(int x, int y) const
{
    if (!valid_)
        return false;
    float px = static_cast<float>(x) + 0.5f;
    float py = static_cast<float>(y) + 0.5f;
    for (int i = 0; i < 3; ++i) {
        float e = edges_[i].at(px, py);
        if (e < 0.0f || (e == 0.0f && !topLeft_[i]))
            return false;
    }
    // Behind the eye; clipping should prevent this.
    return invW_.at(px, py) > 0.0f;
}

void
TriangleSetup::attributesAt(int x, int y, Fragment &frag) const
{
    float px = static_cast<float>(x) + 0.5f;
    float py = static_cast<float>(y) + 0.5f;
    float iw = invW_.at(px, py);
    float w = 1.0f / iw;
    float uw = uOverW_.at(px, py);
    float vw = vOverW_.at(px, py);

    frag.x = x;
    frag.y = y;
    frag.depth = depth_.at(px, py);
    frag.shade = shade_.at(px, py);
    frag.u = uw * w;
    frag.v = vw * w;
    frag.dudx = (uOverW_.ex - frag.u * invW_.ex) * w;
    frag.dudy = (uOverW_.ey - frag.u * invW_.ey) * w;
    frag.dvdx = (vOverW_.ex - frag.v * invW_.ex) * w;
    frag.dvdy = (vOverW_.ey - frag.v * invW_.ey) * w;
}

bool
TriangleSetup::shade(int x, int y, Fragment &frag) const
{
    if (!valid_)
        return false;
    float px = static_cast<float>(x) + 0.5f;
    float py = static_cast<float>(y) + 0.5f;

    for (int i = 0; i < 3; ++i) {
        float e = edges_[i].at(px, py);
        if (e < 0.0f || (e == 0.0f && !topLeft_[i]))
            return false;
    }

    float iw = invW_.at(px, py);
    if (iw <= 0.0f)
        return false; // behind the eye; clipping should prevent this
    float w = 1.0f / iw;
    float uw = uOverW_.at(px, py);
    float vw = vOverW_.at(px, py);

    frag.x = x;
    frag.y = y;
    frag.depth = depth_.at(px, py);
    frag.shade = shade_.at(px, py);
    frag.u = uw * w;
    frag.v = vw * w;

    // d(u)/dx for u = U(x,y) / W(x,y) (quotient rule); all planes are
    // affine so their partials are constants.
    frag.dudx = (uOverW_.ex - frag.u * invW_.ex) * w;
    frag.dudy = (uOverW_.ey - frag.u * invW_.ey) * w;
    frag.dvdx = (vOverW_.ex - frag.v * invW_.ex) * w;
    frag.dvdy = (vOverW_.ey - frag.v * invW_.ey) * w;
    return true;
}

} // namespace texcache
