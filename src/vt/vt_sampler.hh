/**
 * @file
 * Graceful-degradation sampling over partially resident textures.
 *
 * The resolver sits between LOD computation and filtering (the
 * RenderOptions::vtResolve hook). For each fragment it derives the mip
 * level(s) the filter wants, touches the pages their footprint lives
 * on (driving fetches for the missing ones), and decides:
 *
 *  - every desired page resident -> sample normally, bit-identical to
 *    the fully-resident pipeline;
 *  - otherwise -> deterministically fall back to the finest ancestor
 *    level whose footprint is fully resident and sample it bilinearly,
 *    recording the level delta in the per-frame degradation histogram.
 *
 * Each texture's coarsest (1x1) level is pinned at construction, so a
 * resident ancestor always exists and rendering never stalls. The
 * fallback search only queries residency; only the level actually
 * sampled counts as pool accesses, and only the desired level fetches.
 */

#ifndef TEXCACHE_VT_VT_SAMPLER_HH
#define TEXCACHE_VT_VT_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/scene_layout.hh"
#include "pipeline/renderer.hh"
#include "vt/vt_memory.hh"

namespace texcache {

/** Per-frame record of how often and how far sampling degraded. */
struct DegradationStats
{
    uint64_t fragments = 0; ///< fragments resolved this frame
    uint64_t degraded = 0;  ///< fragments that fell back
    /** histogram[d] = fragments that fell back d levels coarser than
     *  the desired level (d >= 1). */
    std::vector<uint64_t> histogram;

    double
    degradedFraction() const
    {
        return fragments ? static_cast<double>(degraded) / fragments
                         : 0.0;
    }

    double avgDelta() const;
    unsigned maxDelta() const;
    void clear();
};

/** Resolves fragments against page residency for one scene layout. */
class VtSampler
{
  public:
    /**
     * @param layout byte addresses of every texture (shared with the
     *               cache replay so pages line up).
     * @param mem    the paged memory behind the textures.
     */
    VtSampler(const SceneLayout &layout, VirtualTextureMemory &mem);

    /** Resolve one fragment; drives fetches, records degradation. */
    VtDecision resolve(uint16_t tex, float u, float v, float lambda);

    /** Adapter for RenderOptions::vtResolve. */
    std::function<VtDecision(uint16_t, float, float, float)>
    hook()
    {
        return [this](uint16_t tex, float u, float v, float lambda) {
            return resolve(tex, u, v, lambda);
        };
    }

    /** Warm start: prefault the whole texture address space. */
    void prefaultAll();

    /** Reset the per-frame degradation record. */
    void startFrame() { frame_.clear(); }

    const DegradationStats &degradation() const { return frame_; }
    VirtualTextureMemory &memory() { return mem_; }

  private:
    /** Distinct pages under one level's 2x2 filter footprint. */
    unsigned footprintPages(uint16_t tex, unsigned level, float u,
                            float v, PageId out[]) const;

    bool levelResident(uint16_t tex, unsigned level, float u,
                       float v) const;

    /** Touch (and on miss, fetch) one level's footprint pages.
     *  @return true iff all of them were already resident. */
    bool touchLevel(uint16_t tex, unsigned level, float u, float v);

    void recordDegradation(unsigned delta);

    const SceneLayout &layout_;
    VirtualTextureMemory &mem_;
    DegradationStats frame_;
};

} // namespace texcache

#endif // TEXCACHE_VT_VT_SAMPLER_HH
