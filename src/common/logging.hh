/**
 * @file
 * Error and status reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal invariant of the simulator was violated; aborts.
 * fatal()  - the user supplied an impossible configuration; exits cleanly.
 * warn()   - something is suspicious but the run can continue.
 * inform() - a normal status message.
 */

#ifndef TEXCACHE_COMMON_LOGGING_HH
#define TEXCACHE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace texcache {

namespace detail {

/** Concatenate a parameter pack into a single string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace texcache

/** Abort: an internal invariant was violated (a texcache bug). */
#define panic(...) \
    ::texcache::detail::panicImpl(__FILE__, __LINE__, \
                                  ::texcache::detail::concat(__VA_ARGS__))

/** Exit(1): the configuration or input is invalid (a user error). */
#define fatal(...) \
    ::texcache::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::texcache::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition to stderr. */
#define warn(...) \
    ::texcache::detail::warnImpl(::texcache::detail::concat(__VA_ARGS__))

/** Report normal status to stderr. */
#define inform(...) \
    ::texcache::detail::informImpl(::texcache::detail::concat(__VA_ARGS__))

/** panic() unless the given invariant holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

/** fatal() unless the given user-facing precondition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // TEXCACHE_COMMON_LOGGING_HH
