/**
 * @file
 * Reproduces the locality measurements of sections 3.1.2 and 5.2.3:
 *
 *  - accesses per texel for trilinear-lower / trilinear-upper /
 *    bilinear filtering (paper: ~4 / ~14 / ~18 averaged over scenes;
 *    the expectation is 4 and 16 for the two trilinear levels);
 *  - texture repetition factors (paper: Town 2.9, Guitar 1.7,
 *    Goblet 1.1, Flight 1.0);
 *  - average texture runlengths (paper: Town 223,629; Guitar 553,745;
 *    Flight 562,154 - demonstrating the working set holds one texture
 *    at a time).
 */

#include "bench/bench_util.hh"
#include "trace/trace_stats.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    TextTable table("Sections 3.1.2 / 5.2.3: locality of reference");
    table.header({"Scene", "Acc/texel lower", "Acc/texel upper",
                  "Acc/texel bilinear", "Repetition", "Runlength",
                  "Runs"});

    for (BenchScene s : allBenchScenes()) {
        const RenderOutput &out = store().output(s, sceneOrder(s));
        TraceStats stats = analyzeTrace(out.trace);

        table.row({benchSceneName(s),
                   fmtFixed(stats.trilinearLower.accessesPerTexel(), 1),
                   fmtFixed(stats.trilinearUpper.accessesPerTexel(), 1),
                   stats.bilinear.accesses
                       ? fmtFixed(stats.bilinear.accessesPerTexel(), 1)
                       : std::string("-"),
                   fmtFixed(out.repetition.repetitionFactor(), 2),
                   fmtFixed(stats.averageRunlength(), 0),
                   std::to_string(stats.textureRuns)});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference: accesses/texel lower ~4, upper "
                 "~14-16; repetition Town 2.9, Guitar 1.7, Goblet 1.1, "
                 "Flight 1.0; runlengths in the hundreds of thousands.\n";
    return 0;
}
