#include "service/request.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.hh"
#include "common/json_reader.hh"
#include "core/run_manifest.hh"
#include "vt/vt_memory.hh"
#include "vt/vt_sampler.hh"

namespace texcache {
namespace service {

namespace {

bool
isPow2(uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

std::string
u64str(uint64_t v)
{
    return std::to_string(v);
}

} // namespace

// --- RequestError ----------------------------------------------------

const char *
RequestError::codeName() const
{
    switch (code) {
      case Code::None:
        return "ok";
      case Code::Parse:
        return "parse_error";
      case Code::BadRequest:
        return "bad_request";
      case Code::QueueFull:
        return "queue_full";
      case Code::ShuttingDown:
        return "shutting_down";
    }
    return "unknown";
}

std::string
RequestError::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("status", "error");
    w.kv("code", codeName());
    w.kv("message", message);
    w.endObject();
    os << "\n";
    return os.str();
}

RequestError
RequestError::parse(std::string msg)
{
    return {Code::Parse, std::move(msg)};
}

RequestError
RequestError::bad(std::string msg)
{
    return {Code::BadRequest, std::move(msg)};
}

RequestError
RequestError::queueFull(std::string msg)
{
    return {Code::QueueFull, std::move(msg)};
}

RequestError
RequestError::shuttingDown(std::string msg)
{
    return {Code::ShuttingDown, std::move(msg)};
}

// --- ServiceRequest identity -----------------------------------------

const char *
ServiceRequest::kindName() const
{
    switch (kind) {
      case Kind::Sweep:
        return "sweep";
      case Kind::Classify:
        return "classify";
      case Kind::WorkingSet:
        return "working_set";
      case Kind::VtResidency:
        return "vt_residency";
      case Kind::Ping:
        return "ping";
      case Kind::Stats:
        return "stats";
      case Kind::Metrics:
        return "metrics";
      case Kind::Profile:
        return "profile";
      case Kind::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

std::string
layoutDesc(const LayoutParams &p)
{
    // Every parameter that changes addressing takes part, so two
    // requests share a batch key only when their replays are truly
    // interchangeable.
    std::ostringstream os;
    os << layoutKindName(p.kind) << "/" << p.blockW << "x" << p.blockH
       << "/pad" << p.padBlocks << "/coarse" << p.coarseBytes << "/comp"
       << p.compressionRatio << "/align" << p.baseAlign;
    return os.str();
}

std::string
ServiceRequest::batchKey() const
{
    return scene.key() + "|" + order.str() + "|" + layoutDesc(layout);
}

// --- parsing ---------------------------------------------------------

namespace {

/** Field-walking context: first error wins, unknown keys rejected. */
struct Ctx
{
    RequestError err;

    bool ok() const { return !err; }

    bool
    fail(std::string msg)
    {
        if (!err)
            err = RequestError::bad(std::move(msg));
        return false;
    }
};

bool
knownKeys(Ctx &c, const json::Value &obj, std::string_view where,
          std::initializer_list<std::string_view> keys)
{
    for (const auto &[k, v] : obj.members()) {
        (void)v;
        if (std::find(keys.begin(), keys.end(), k) == keys.end())
            return c.fail("unknown field \"" + k + "\" in " +
                          std::string(where));
    }
    return true;
}

bool
getU64(Ctx &c, const json::Value &obj, std::string_view key,
       uint64_t &out)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return true; // optional; caller keeps the default
    if (!v->isU64())
        return c.fail("\"" + std::string(key) +
                      "\" must be a non-negative integer");
    out = v->u64();
    return true;
}

bool
getUnsigned(Ctx &c, const json::Value &obj, std::string_view key,
            unsigned &out)
{
    uint64_t v = out;
    if (!getU64(c, obj, key, v))
        return false;
    if (v > 0xffffffffull)
        return c.fail("\"" + std::string(key) + "\" is out of range");
    out = static_cast<unsigned>(v);
    return true;
}

bool
getBool(Ctx &c, const json::Value &obj, std::string_view key, bool &out)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return true;
    if (!v->isBool())
        return c.fail("\"" + std::string(key) + "\" must be a boolean");
    out = v->boolean();
    return true;
}

bool
getDouble(Ctx &c, const json::Value &obj, std::string_view key,
          double &out)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return true;
    if (!v->isNumber())
        return c.fail("\"" + std::string(key) + "\" must be a number");
    out = v->number();
    return true;
}

bool
checkPow2Range(Ctx &c, std::string_view what, uint64_t v, uint64_t lo,
               uint64_t hi)
{
    if (!isPow2(v) || v < lo || v > hi)
        return c.fail(std::string(what) + " must be a power of two in [" +
                      u64str(lo) + ", " + u64str(hi) + "], got " +
                      u64str(v));
    return true;
}

bool
parseKind(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *v = root.find("kind");
    if (!v || !v->isString())
        return c.fail("\"kind\" (string) is required");
    const std::string &k = v->str();
    if (k == "sweep")
        req.kind = ServiceRequest::Kind::Sweep;
    else if (k == "classify")
        req.kind = ServiceRequest::Kind::Classify;
    else if (k == "working_set")
        req.kind = ServiceRequest::Kind::WorkingSet;
    else if (k == "vt_residency")
        req.kind = ServiceRequest::Kind::VtResidency;
    else if (k == "ping")
        req.kind = ServiceRequest::Kind::Ping;
    else if (k == "stats")
        req.kind = ServiceRequest::Kind::Stats;
    else if (k == "metrics")
        req.kind = ServiceRequest::Kind::Metrics;
    else if (k == "profile")
        req.kind = ServiceRequest::Kind::Profile;
    else if (k == "shutdown")
        req.kind = ServiceRequest::Kind::Shutdown;
    else
        return c.fail("unknown kind \"" + k +
                      "\"; expected sweep, classify, working_set, "
                      "vt_residency, ping, stats, metrics, profile "
                      "or shutdown");
    return true;
}

bool
parseName(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *v = root.find("name");
    if (!v)
        return true;
    if (!v->isString())
        return c.fail("\"name\" must be a string");
    const std::string &n = v->str();
    if (n.empty() || n.size() > 64)
        return c.fail("\"name\" must be 1..64 characters");
    for (char ch : n) {
        bool legal = (ch >= 'a' && ch <= 'z') ||
                     (ch >= 'A' && ch <= 'Z') ||
                     (ch >= '0' && ch <= '9') || ch == '_' ||
                     ch == '-' || ch == '.';
        if (!legal)
            return c.fail("\"name\" may contain only [A-Za-z0-9_.-]");
    }
    req.name = n;
    return true;
}

bool
parseScene(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *v = root.find("scene");
    if (!v || !v->isString())
        return c.fail("\"scene\" (string) is required");
    const std::string &s = v->str();
    if (s == "quad") {
        unsigned tex = 64, screen = 128;
        double repeat = 1.0;
        if (const json::Value *q = root.find("quad")) {
            if (!q->isObject())
                return c.fail("\"quad\" must be an object");
            if (!knownKeys(c, *q, "quad", {"tex", "screen", "repeat"}) ||
                !getUnsigned(c, *q, "tex", tex) ||
                !getUnsigned(c, *q, "screen", screen) ||
                !getDouble(c, *q, "repeat", repeat))
                return false;
        }
        if (!checkPow2Range(c, "quad.tex", tex, 8, 1024))
            return false;
        if (screen < 16 || screen > 2048)
            return c.fail("quad.screen must be in [16, 2048]");
        if (!(repeat > 0.0) || repeat > 64.0)
            return c.fail("quad.repeat must be in (0, 64]");
        req.scene = SceneSpec::quadScene(tex, screen,
                                         static_cast<float>(repeat));
        return true;
    }
    if (root.find("quad"))
        return c.fail("\"quad\" is only valid with scene \"quad\"");
    for (BenchScene b : allBenchScenes()) {
        if (s == benchSceneName(b)) {
            req.scene = SceneSpec(b);
            return true;
        }
    }
    return c.fail("unknown scene \"" + s +
                  "\"; expected Flight, Town, Guitar, Goblet or quad");
}

bool
parseOrder(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *v = root.find("order");
    if (!v)
        return true; // default horizontal
    auto fromDir = [&](const std::string &d, ScanDirection &out) {
        if (d == "horizontal")
            out = ScanDirection::Horizontal;
        else if (d == "vertical")
            out = ScanDirection::Vertical;
        else
            return c.fail("unknown scan direction \"" + d +
                          "\"; expected horizontal or vertical");
        return true;
    };
    if (v->isString()) {
        const std::string &s = v->str();
        if (s == "hilbert") {
            req.order = RasterOrder::hilbertOrder();
            return true;
        }
        ScanDirection dir;
        if (!fromDir(s, dir))
            return false;
        req.order.dir = dir;
        return true;
    }
    if (!v->isObject())
        return c.fail("\"order\" must be a string or an object");
    if (!knownKeys(c, *v, "order",
                   {"dir", "tiled", "tile_w", "tile_h", "hilbert"}))
        return false;
    RasterOrder o;
    if (const json::Value *d = v->find("dir")) {
        if (!d->isString())
            return c.fail("order.dir must be a string");
        if (!fromDir(d->str(), o.dir))
            return false;
    }
    o.tileW = 8;
    o.tileH = 8;
    if (!getBool(c, *v, "tiled", o.tiled) ||
        !getBool(c, *v, "hilbert", o.hilbert) ||
        !getUnsigned(c, *v, "tile_w", o.tileW) ||
        !getUnsigned(c, *v, "tile_h", o.tileH))
        return false;
    if (o.tiled) {
        if (!checkPow2Range(c, "order.tile_w", o.tileW, 2, 256) ||
            !checkPow2Range(c, "order.tile_h", o.tileH, 2, 256))
            return false;
    } else {
        o.tileW = 0;
        o.tileH = 0;
    }
    req.order = o;
    return true;
}

bool
parseLayout(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *v = root.find("layout");
    if (!v)
        return true; // default nonblocked
    if (!v->isObject())
        return c.fail("\"layout\" must be an object");
    if (!knownKeys(c, *v, "layout",
                   {"kind", "block_w", "block_h", "pad_blocks",
                    "coarse_bytes", "compression", "base_align"}))
        return false;
    LayoutParams p;
    if (const json::Value *k = v->find("kind")) {
        if (!k->isString())
            return c.fail("layout.kind must be a string");
        const std::string &s = k->str();
        if (s == "williams")
            p.kind = LayoutKind::Williams;
        else if (s == "nonblocked")
            p.kind = LayoutKind::Nonblocked;
        else if (s == "blocked")
            p.kind = LayoutKind::Blocked;
        else if (s == "padded")
            p.kind = LayoutKind::PaddedBlocked;
        else if (s == "blocked6d")
            p.kind = LayoutKind::Blocked6D;
        else if (s == "compressed")
            p.kind = LayoutKind::CompressedBlocked;
        else
            return c.fail("unknown layout kind \"" + s +
                          "\"; expected williams, nonblocked, blocked, "
                          "padded, blocked6d or compressed");
    }
    uint64_t coarse = p.coarseBytes, align = p.baseAlign;
    if (!getUnsigned(c, *v, "block_w", p.blockW) ||
        !getUnsigned(c, *v, "block_h", p.blockH) ||
        !getUnsigned(c, *v, "pad_blocks", p.padBlocks) ||
        !getU64(c, *v, "coarse_bytes", coarse) ||
        !getUnsigned(c, *v, "compression", p.compressionRatio) ||
        !getU64(c, *v, "base_align", align))
        return false;
    p.coarseBytes = coarse;
    p.baseAlign = align;
    if (!checkPow2Range(c, "layout.block_w", p.blockW, 1, 64) ||
        !checkPow2Range(c, "layout.block_h", p.blockH, 1, 64) ||
        !checkPow2Range(c, "layout.pad_blocks", p.padBlocks, 1, 64) ||
        !checkPow2Range(c, "layout.coarse_bytes", p.coarseBytes,
                        1 << 10, 1 << 20) ||
        !checkPow2Range(c, "layout.compression", p.compressionRatio, 2,
                        16) ||
        !checkPow2Range(c, "layout.base_align", p.baseAlign, 1,
                        1 << 20))
        return false;
    req.layout = p;
    return true;
}

bool
checkConfig(Ctx &c, const CacheConfig &cfg)
{
    if (!checkPow2Range(c, "config.line", cfg.lineBytes, 4, 1024))
        return false;
    if (!checkPow2Range(c, "config.size", cfg.sizeBytes, cfg.lineBytes,
                        16ull << 20))
        return false;
    if (cfg.assoc != CacheConfig::kFullyAssoc) {
        if (!isPow2(cfg.assoc) || cfg.assoc > cfg.numLines())
            return c.fail("config.assoc must be 0 (fully associative) "
                          "or a power of two <= lines (" +
                          u64str(cfg.numLines()) + "), got " +
                          u64str(cfg.assoc));
    }
    return true;
}

bool
parseConfigs(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *list = root.find("configs");
    const json::Value *product = root.find("sweep");
    if (req.kind == ServiceRequest::Kind::VtResidency) {
        if (list || product)
            return c.fail("vt_residency takes \"vt\" parameters, not "
                          "configs");
        return true;
    }
    if ((list != nullptr) == (product != nullptr))
        return c.fail("exactly one of \"configs\" or \"sweep\" is "
                      "required");

    constexpr size_t kMaxConfigs = 256;
    if (list) {
        if (!list->isArray() || list->size() == 0)
            return c.fail("\"configs\" must be a non-empty array");
        if (list->size() > kMaxConfigs)
            return c.fail("\"configs\" is limited to " +
                          u64str(kMaxConfigs) + " entries");
        for (size_t i = 0; i < list->size(); ++i) {
            const json::Value &e = list->at(i);
            if (!e.isObject())
                return c.fail("configs[" + u64str(i) +
                              "] must be an object");
            if (!knownKeys(c, e, "configs[]", {"size", "line", "assoc"}))
                return false;
            CacheConfig cfg;
            cfg.assoc = CacheConfig::kFullyAssoc;
            uint64_t size = 0;
            if (!getU64(c, e, "size", size))
                return false;
            if (!size)
                return c.fail("configs[" + u64str(i) +
                              "].size is required");
            cfg.sizeBytes = size;
            cfg.lineBytes = 32;
            if (!getUnsigned(c, e, "line", cfg.lineBytes) ||
                !getUnsigned(c, e, "assoc", cfg.assoc))
                return false;
            if (!checkConfig(c, cfg))
                return false;
            req.configs.push_back(cfg);
        }
    } else {
        if (!product->isObject())
            return c.fail("\"sweep\" must be an object");
        if (!knownKeys(c, *product, "sweep",
                       {"sizes", "lines", "assocs"}))
            return false;
        auto readList = [&](std::string_view key, bool required,
                            std::vector<uint64_t> &out) {
            const json::Value *a = product->find(key);
            if (!a) {
                if (required)
                    return c.fail("sweep." + std::string(key) +
                                  " is required");
                return true;
            }
            if (!a->isArray() || a->size() == 0)
                return c.fail("sweep." + std::string(key) +
                              " must be a non-empty array");
            for (size_t i = 0; i < a->size(); ++i) {
                if (!a->at(i).isU64())
                    return c.fail("sweep." + std::string(key) +
                                  " entries must be non-negative "
                                  "integers");
                out.push_back(a->at(i).u64());
            }
            return true;
        };
        std::vector<uint64_t> sizes, lines{32}, assocs{0};
        if (!readList("sizes", true, sizes))
            return false;
        lines.clear();
        assocs.clear();
        if (!readList("lines", false, lines) ||
            !readList("assocs", false, assocs))
            return false;
        if (lines.empty())
            lines.push_back(32);
        if (assocs.empty())
            assocs.push_back(CacheConfig::kFullyAssoc);
        // Deterministic product order: lines, then assocs, then sizes
        // (matches how the figure sweeps iterate).
        if (lines.size() * assocs.size() * sizes.size() > kMaxConfigs)
            return c.fail("sweep product is limited to " +
                          u64str(kMaxConfigs) + " configurations");
        for (uint64_t line : lines) {
            for (uint64_t assoc : assocs) {
                for (uint64_t size : sizes) {
                    CacheConfig cfg;
                    cfg.sizeBytes = size;
                    if (line > 0xffffffffull || assoc > 0xffffffffull)
                        return c.fail("sweep.lines/assocs entries are "
                                      "out of range");
                    cfg.lineBytes = static_cast<unsigned>(line);
                    cfg.assoc = static_cast<unsigned>(assoc);
                    if (!checkConfig(c, cfg))
                        return false;
                    req.configs.push_back(cfg);
                }
            }
        }
    }

    if (req.kind == ServiceRequest::Kind::Classify &&
        req.configs.size() != 1)
        return c.fail("classify takes exactly one configuration");
    if (req.kind == ServiceRequest::Kind::WorkingSet) {
        for (const CacheConfig &cfg : req.configs) {
            if (cfg.assoc != CacheConfig::kFullyAssoc ||
                cfg.lineBytes != req.configs[0].lineBytes)
                return c.fail("working_set needs fully associative "
                              "configs sharing one line size");
        }
    }
    return true;
}

bool
parseVt(Ctx &c, const json::Value &root, ServiceRequest &req)
{
    const json::Value *v = root.find("vt");
    if (req.kind != ServiceRequest::Kind::VtResidency) {
        if (v)
            return c.fail("\"vt\" is only valid with kind "
                          "vt_residency");
        return true;
    }
    if (v) {
        if (!v->isObject())
            return c.fail("\"vt\" must be an object");
        if (!knownKeys(c, *v, "vt", {"page", "pool", "warm"}))
            return false;
        uint64_t pool = req.vtPoolBytes;
        if (!getUnsigned(c, *v, "page", req.vtPageBytes) ||
            !getU64(c, *v, "pool", pool) ||
            !getBool(c, *v, "warm", req.vtWarm))
            return false;
        req.vtPoolBytes = pool;
    }
    if (!checkPow2Range(c, "vt.page", req.vtPageBytes, 4 << 10,
                        1 << 20))
        return false;
    if (req.vtPoolBytes < req.vtPageBytes ||
        req.vtPoolBytes > (512ull << 20))
        return c.fail("vt.pool must be in [vt.page, 512MB]");
    return true;
}

} // namespace

RequestError
parseRequest(std::string_view body, ServiceRequest &out)
{
    constexpr size_t kMaxBody = 1 << 20;
    if (body.size() > kMaxBody)
        return RequestError::parse("request body exceeds 1MB");

    json::Value root;
    json::ParseError jerr;
    if (!json::parse(body, root, jerr)) {
        return RequestError::parse(
            std::string(jerr.code()) + " at byte " +
            std::to_string(jerr.offset) + ": " + jerr.message);
    }
    if (!root.isObject())
        return RequestError::bad("request must be a JSON object");

    out = ServiceRequest();
    Ctx c;
    if (!parseKind(c, root, out))
        return c.err;
    if (out.control()) {
        knownKeys(c, root, "request", {"kind", "name"});
        parseName(c, root, out);
        return c.err;
    }
    if (!knownKeys(c, root, "request",
                   {"kind", "name", "scene", "quad", "order", "layout",
                    "configs", "sweep", "capture", "vt"}))
        return c.err;
    parseName(c, root, out) && parseScene(c, root, out) &&
        parseOrder(c, root, out) && parseLayout(c, root, out) &&
        parseConfigs(c, root, out) && parseVt(c, root, out);
    if (c.ok()) {
        if (!getDouble(c, root, "capture", out.capture))
            return c.err;
        if (out.kind != ServiceRequest::Kind::WorkingSet &&
            root.find("capture"))
            return c.err = RequestError::bad(
                       "\"capture\" is only valid with working_set"),
                   c.err;
        if (!(out.capture > 0.0) || out.capture > 1.0)
            return c.err = RequestError::bad(
                       "\"capture\" must be in (0, 1]"),
                   c.err;
    }
    return c.err;
}

// --- execution / manifest builders -----------------------------------

namespace {

/** Shared manifest preamble: identity + request echo rows. */
RunManifest
baseManifest(const ServiceRequest &req)
{
    RunManifest m(req.name);
    m.setDeterministic(true);
    m.setScene(req.scene.key());
    m.config("kind", std::string(req.kindName()));
    m.config("order", req.order.str());
    m.config("layout", layoutDesc(req.layout));
    return m;
}

/** Per-config result subtree: results.cfg_<i>.{accesses,misses,...}. */
void
exportConfigStats(stats::Group &results, size_t i,
                  const CacheStats &s)
{
    stats::Group &g = results.group("cfg_" + std::to_string(i));
    g.constant("accesses", s.accesses);
    g.constant("misses", s.misses);
    g.constant("cold_misses", s.coldMisses);
    g.constant("evictions", s.evictions);
    g.real("miss_rate", s.missRate());
}

std::string
buildClassifyManifest(const ServiceRequest &req,
                      const MissBreakdown &b)
{
    RunManifest m = baseManifest(req);
    m.config("cfg", req.configs[0].str());
    m.metric("accesses", double(b.accesses), "exact");
    m.metric("misses", double(b.misses), "exact");
    m.metric("cold", double(b.cold), "exact");
    m.metric("capacity", double(b.capacity), "exact");
    m.metric("conflict", double(b.conflict), "exact");
    stats::Group root;
    stats::Group &g = root.group("classify");
    g.constant("accesses", b.accesses);
    g.constant("misses", b.misses);
    g.constant("cold", b.cold);
    g.constant("capacity", b.capacity);
    g.constant("conflict", b.conflict);
    g.real("miss_rate", b.missRate());
    return m.toString(&root);
}

std::string
buildWorkingSetManifest(const ServiceRequest &req,
                        const std::vector<CacheStats> &stats)
{
    std::vector<double> rates;
    std::vector<uint64_t> sizes;
    for (size_t i = 0; i < stats.size(); ++i) {
        rates.push_back(stats[i].missRate());
        sizes.push_back(req.configs[i].sizeBytes);
    }
    uint64_t ws = firstWorkingSet(rates, sizes, req.capture);

    RunManifest m = baseManifest(req);
    m.config("line_bytes", uint64_t(req.configs[0].lineBytes));
    m.config("capture", req.capture);
    m.config("configs", uint64_t(req.configs.size()));
    m.metric("first_working_set_bytes", double(ws), "exact");
    m.metric("configs", double(req.configs.size()), "exact");
    stats::Group root;
    stats::Group &results = root.group("results");
    for (size_t i = 0; i < stats.size(); ++i)
        exportConfigStats(results, i, stats[i]);
    return m.toString(&root);
}

std::string
buildVtManifest(const ServiceRequest &req, const DegradationStats &deg,
                const FetchQueueStats &fq, const PagePoolStats &pool)
{
    RunManifest m = baseManifest(req);
    m.config("page_bytes", uint64_t(req.vtPageBytes));
    m.config("pool_bytes", req.vtPoolBytes);
    m.config("warm", std::string(req.vtWarm ? "true" : "false"));
    m.metric("degraded_fraction", deg.degradedFraction(), "exact");
    m.metric("fetches_issued", double(fq.issued), "exact");
    m.metric("fetch_drops", double(fq.drops), "exact");
    m.metric("pool_evictions", double(pool.evictions), "exact");
    stats::Group root;
    stats::Group &g = root.group("vt");
    g.real("degraded_fraction", deg.degradedFraction());
    g.real("avg_delta", deg.avgDelta());
    g.constant("max_delta", deg.maxDelta());
    g.constant("fetches_issued", fq.issued);
    g.constant("fetch_dedup_hits", fq.dedupHits);
    g.constant("fetch_drops", fq.drops);
    g.constant("pool_evictions", pool.evictions);
    g.real("pool_hit_rate", pool.hitRate());
    g.constant("resident_high_water", pool.residentHighWater);
    return m.toString(&root);
}

std::string
runVtResidency(TraceStore &store, const ServiceRequest &req)
{
    const Scene &scene = store.scene(req.scene);
    SceneLayout layout(scene, req.layout);

    VtConfig cfg;
    cfg.pageBytes = req.vtPageBytes;
    cfg.poolPages = req.vtPoolBytes / req.vtPageBytes;
    // The pool must at least hold every texture's pinned fallback
    // level plus in-flight fills (same floor the residency ablation
    // bench applies).
    uint64_t floor = scene.textures.size() + cfg.maxInFlight;
    if (cfg.poolPages < floor)
        cfg.poolPages = floor;

    VirtualTextureMemory mem(cfg);
    VtSampler vt(layout, mem);
    if (req.vtWarm)
        vt.prefaultAll();

    RenderOptions opts;
    opts.captureTrace = false;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    opts.vtResolve = vt.hook();
    render(scene, req.order, opts);

    return buildVtManifest(req, vt.degradation(),
                           mem.fetchQueue().stats(),
                           mem.pool().stats());
}

} // namespace

std::string
buildSweepManifest(const ServiceRequest &req,
                   const std::vector<CacheStats> &stats)
{
    uint64_t accesses = 0, misses = 0;
    for (const CacheStats &s : stats) {
        accesses += s.accesses;
        misses += s.misses;
    }
    RunManifest m = baseManifest(req);
    m.config("configs", uint64_t(req.configs.size()));
    for (size_t i = 0; i < req.configs.size(); ++i)
        m.config("cfg_" + std::to_string(i), req.configs[i].str());
    m.metric("configs", double(req.configs.size()), "exact");
    m.metric("accesses", double(accesses), "exact");
    m.metric("misses", double(misses), "exact");
    stats::Group root;
    stats::Group &results = root.group("results");
    for (size_t i = 0; i < stats.size(); ++i)
        exportConfigStats(results, i, stats[i]);
    return m.toString(&root);
}

std::string
runServiceRequest(TraceStore &store, const ServiceRequest &req)
{
    panic_if(req.control(), "control request reached the runner");
    if (req.kind == ServiceRequest::Kind::VtResidency)
        return runVtResidency(store, req);

    const TexelTrace &trace = store.trace(req.scene, req.order);
    SceneLayout layout(store.scene(req.scene), req.layout);

    switch (req.kind) {
      case ServiceRequest::Kind::Sweep:
        return buildSweepManifest(
            req, runCacheSweep(trace, layout, req.configs));
      case ServiceRequest::Kind::Classify:
        return buildClassifyManifest(
            req, classifyCache(trace, layout, req.configs[0]));
      case ServiceRequest::Kind::WorkingSet:
        return buildWorkingSetManifest(
            req, runCacheSweep(trace, layout, req.configs));
      default:
        panic("unreachable request kind");
    }
}

} // namespace service
} // namespace texcache
