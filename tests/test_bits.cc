/** @file Unit tests for common/bits.hh. */

#include <gtest/gtest.h>

#include "common/bits.hh"

using namespace texcache;

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
    EXPECT_FALSE(isPowerOfTwo(~0ULL));
}

TEST(Bits, Log2Exact)
{
    for (unsigned i = 0; i < 63; ++i)
        EXPECT_EQ(log2Exact(1ULL << i), i) << "i=" << i;
}

TEST(Bits, Log2ExactPanicsOnNonPower)
{
    EXPECT_DEATH(log2Exact(3), "not a power of two");
    EXPECT_DEATH(log2Exact(0), "not a power of two");
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(Bits, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

/** Morton encode/decode must be a bijection on 16-bit pairs. */
class MortonRoundTrip : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(MortonRoundTrip, RoundTrips)
{
    uint32_t x = GetParam() & 0xffff;
    uint32_t y = (GetParam() * 2654435761u) & 0xffff;
    uint32_t code = mortonEncode(x, y);
    uint32_t dx, dy;
    mortonDecode(code, dx, dy);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MortonRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 0xffu, 0x100u,
                                           0xffffu, 12345u, 54321u,
                                           0xaaaau, 0x5555u));

TEST(Bits, MortonOrderIsInterleaved)
{
    // The 2x2 block {(0,0),(1,0),(0,1),(1,1)} maps to codes 0..3.
    EXPECT_EQ(mortonEncode(0, 0), 0u);
    EXPECT_EQ(mortonEncode(1, 0), 1u);
    EXPECT_EQ(mortonEncode(0, 1), 2u);
    EXPECT_EQ(mortonEncode(1, 1), 3u);
    // And (2,0) starts the next 2x2 block.
    EXPECT_EQ(mortonEncode(2, 0), 4u);
}
