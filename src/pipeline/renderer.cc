#include "pipeline/renderer.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pipeline/clip.hh"
#include "pipeline/tile_render.hh"
#include "pipeline/viewport.hh"
#include "tracing/tracing.hh"

namespace texcache {

ScreenVertex
toScreenVertex(const ClipVertex &cv, unsigned screen_w, unsigned screen_h)
{
    Vec3 ndc = cv.pos.project();
    ScreenVertex sv;
    sv.x = (ndc.x * 0.5f + 0.5f) * static_cast<float>(screen_w);
    sv.y = (0.5f - ndc.y * 0.5f) * static_cast<float>(screen_h);
    sv.z = ndc.z * 0.5f + 0.5f;
    sv.invW = 1.0f / cv.pos.w;
    sv.uOverW = cv.uv.x * sv.invW;
    sv.vOverW = cv.uv.y * sv.invW;
    sv.shade = cv.shade;
    return sv;
}

namespace {

inline uint8_t
modulate(uint8_t c, float s)
{
    float v = static_cast<float>(c) * s;
    v = v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v);
    return static_cast<uint8_t>(v + 0.5f);
}

} // namespace

RenderOutput
render(const Scene &scene, const RasterOrder &order,
       const RenderOptions &opts)
{
    bool hooks = static_cast<bool>(opts.onFragment) ||
                 static_cast<bool>(opts.vtResolve);
    switch (opts.parallelTiles) {
      case ParallelTiles::Serial:
        return renderReference(scene, order, opts);
      case ParallelTiles::Force:
        fatal_if(hooks,
                 "RenderOptions::parallelTiles == Force is incompatible "
                 "with the per-fragment hooks (onFragment / vtResolve): "
                 "they observe fragments in traversal order and may "
                 "carry state, which tile-parallel execution would "
                 "reorder; use Auto or Serial");
        return renderTiled(scene, order, opts);
      case ParallelTiles::Auto:
        return hooks ? renderReference(scene, order, opts)
                     : renderTiled(scene, order, opts);
    }
    fatal("invalid RenderOptions::parallelTiles value ",
          static_cast<int>(opts.parallelTiles));
}

RenderOutput
renderReference(const Scene &scene, const RasterOrder &order,
                const RenderOptions &opts)
{
    static const uint16_t kRenderSpan =
        tracing::nameId("render.frame");
    tracing::ScopedSpan span(kRenderSpan, scene.triangles.size());

    RenderOutput out;
    if (opts.writeFramebuffer)
        out.framebuffer = Image(scene.screenW, scene.screenH,
                                Rgba8{16, 16, 32, 255});
    std::vector<float> zbuf(
        static_cast<size_t>(scene.screenW) * scene.screenH, 1e30f);

    Mat4 mvp = scene.proj * scene.view;

    // Rough reservation: most fragments are trilinear (8 touches).
    if (opts.captureTrace && !opts.traceSink)
        out.trace.reserve(static_cast<size_t>(scene.screenW) *
                          scene.screenH * 8);

    for (const SceneTriangle &tri : scene.triangles) {
        ++out.stats.trianglesIn;
        fatal_if(tri.texture >= scene.textures.size(),
                 "triangle references texture ", tri.texture, " of ",
                 scene.textures.size());
        const MipMap &mip = scene.textures[tri.texture];
        float tex_w = static_cast<float>(mip.width(0));
        float tex_h = static_cast<float>(mip.height(0));

        ClipVertex cv[3];
        for (int i = 0; i < 3; ++i) {
            cv[i].pos = mvp.transformPoint(tri.v[i].pos);
            cv[i].uv = tri.v[i].uv;
            cv[i].shade = tri.v[i].shade;
        }

        ClipVertex poly[4];
        unsigned n = clipNear(cv, poly);
        if (n < 3) {
            ++out.stats.trianglesculled;
            continue;
        }

        uint64_t covered_before = out.stats.fragments;

        // Fan-triangulate the clipped polygon.
        for (unsigned k = 2; k < n; ++k) {
            ScreenVertex a = toScreenVertex(poly[0], scene.screenW,
                                      scene.screenH);
            ScreenVertex b = toScreenVertex(poly[k - 1], scene.screenW,
                                      scene.screenH);
            ScreenVertex c = toScreenVertex(poly[k], scene.screenW,
                                      scene.screenH);
            TriangleSetup setup(a, b, c);
            if (!setup.valid())
                continue;
            ++out.stats.trianglesRasterized;

            PixelRect box = setup.bounds(scene.screenW, scene.screenH);
            if (!box.empty()) {
                out.stats.sumBoxWidth += box.x1 - box.x0 + 1;
                out.stats.sumBoxHeight += box.y1 - box.y0 + 1;
                ++out.stats.boxSamples;
            }

            rasterizeTriangle(
                setup, scene.screenW, scene.screenH, order,
                [&](const Fragment &frag) {
                    ++out.stats.fragments;

                    // LOD from derivatives scaled to level-0 texels.
                    float lambda = computeLod(
                        frag.dudx * tex_w, frag.dvdx * tex_h,
                        frag.dudy * tex_w, frag.dvdy * tex_h);

                    SampleResult s;
                    if (opts.vtResolve) {
                        VtDecision vt = opts.vtResolve(
                            tri.texture, frag.u, frag.v, lambda);
                        s = vt.degraded
                                ? sampleLevelBilinear(mip, vt.level,
                                                      frag.u, frag.v)
                                : sampleMipMapMode(mip, frag.u, frag.v,
                                                   lambda,
                                                   opts.filterMode);
                    } else {
                        s = sampleMipMapMode(mip, frag.u, frag.v,
                                             lambda, opts.filterMode);
                    }
                    out.stats.texelAccesses += s.numTouches;
                    out.stats.lodLevels.sample(s.touches[0].level);
                    if (s.kind == FilterKind::Bilinear)
                        ++out.stats.bilinearFragments;
                    else if (s.kind == FilterKind::Nearest)
                        ++out.stats.nearestFragments;
                    else
                        ++out.stats.trilinearFragments;

                    if (opts.captureTrace) {
                        if (opts.traceSink) {
                            uint64_t rec[8];
                            unsigned nr = packSampleRecords(
                                tri.texture, s, rec);
                            opts.traceSink->append(rec, nr);
                        } else {
                            out.trace.appendSample(tri.texture, s);
                        }
                    }
                    if (opts.onFragment)
                        opts.onFragment(frag, s, tri.texture);

                    if (opts.countRepetition) {
                        // Footprint anchor at the filter's first level:
                        // unwrapped vs wrapped integer texel coordinate.
                        unsigned lvl = s.touches[0].level;
                        const Image &li = mip.level(lvl);
                        float su = frag.u * li.width() - 0.5f;
                        float sv = frag.v * li.height() - 0.5f;
                        int32_t iu = static_cast<int32_t>(std::floor(su));
                        int32_t iv = static_cast<int32_t>(std::floor(sv));
                        out.repetition.record(
                            tri.texture, static_cast<uint16_t>(lvl), iu,
                            iv, s.touches[0].u, s.touches[0].v);
                    }

                    // Depth test after texturing (paper Fig 2.1).
                    size_t pix = static_cast<size_t>(frag.y) *
                                     scene.screenW +
                                 frag.x;
                    if (frag.depth < zbuf[pix]) {
                        zbuf[pix] = frag.depth;
                        if (opts.writeFramebuffer) {
                            auto toByte = [](float f) {
                                f = f < 0.0f ? 0.0f
                                             : (f > 1.0f ? 1.0f : f);
                                return static_cast<uint8_t>(f * 255.0f +
                                                            0.5f);
                            };
                            Rgba8 texel = {toByte(s.color.x),
                                           toByte(s.color.y),
                                           toByte(s.color.z),
                                           toByte(s.color.w)};
                            out.framebuffer.texel(frag.x, frag.y) = {
                                modulate(texel.r, frag.shade),
                                modulate(texel.g, frag.shade),
                                modulate(texel.b, frag.shade), texel.a};
                        }
                    }
                });
        }

        out.stats.sumCoveredArea +=
            static_cast<double>(out.stats.fragments - covered_before);
    }

    return out;
}

void
exportRenderStats(stats::Group &g, const RenderStats &s)
{
    g.formula("triangles_in", "scene triangles submitted",
              [&s] { return double(s.trianglesIn); });
    g.formula("triangles_rasterized", "post-clip screen triangles",
              [&s] { return double(s.trianglesRasterized); });
    g.formula("fragments", "textured pixels (with overdraw)",
              [&s] { return double(s.fragments); });
    g.formula("texel_accesses", "texels touched by the filters",
              [&s] { return double(s.texelAccesses); });
    g.formula("bilinear_fragments", "single-level bilinear fragments",
              [&s] { return double(s.bilinearFragments); });
    g.formula("trilinear_fragments", "two-level trilinear fragments",
              [&s] { return double(s.trilinearFragments); });
    g.formula("nearest_fragments", "nearest-filter fragments",
              [&s] { return double(s.nearestFragments); });
    g.distribution("lod_levels", "base mip level sampled per fragment",
                   s.lodLevels);
}

} // namespace texcache
