/**
 * @file
 * Simulated texture memory address space.
 *
 * The paper assigns texture arrays with malloc(); we use a deterministic
 * bump allocator instead so traces are reproducible run-to-run. Addresses
 * are abstract byte addresses fed to the cache simulator; no real storage
 * backs them (texel colors live in the MipMap images).
 */

#ifndef TEXCACHE_LAYOUT_ADDRESS_SPACE_HH
#define TEXCACHE_LAYOUT_ADDRESS_SPACE_HH

#include <cstdint>

#include "common/bits.hh"
#include "common/logging.hh"

namespace texcache {

/** A byte address in the simulated texture memory. */
using Addr = uint64_t;

/** Deterministic, monotonically growing allocator of texture memory. */
class AddressSpace
{
  public:
    /**
     * @param base_align every allocation is aligned to this many bytes
     *                   (default 4 KB, mimicking page-aligned mallocs of
     *                   large texture arrays).
     */
    explicit AddressSpace(uint64_t base_align = 4096)
        : align_(base_align)
    {
        fatal_if(!isPowerOfTwo(base_align), "alignment ", base_align,
                 " is not a power of two");
    }

    /** Reserve @p bytes and return the base address of the region. */
    Addr
    allocate(uint64_t bytes)
    {
        panic_if(bytes == 0, "zero-byte allocation");
        Addr base = (next_ + align_ - 1) & ~(align_ - 1);
        fatal_if(base < next_ || base + bytes < base,
                 "address space overflow: ", bytes,
                 " bytes do not fit above ", next_);
        next_ = base + bytes;
        return base;
    }

    /** Total bytes spanned so far (high-water mark). */
    uint64_t used() const { return next_; }

  private:
    uint64_t align_;
    Addr next_ = 0;
};

} // namespace texcache

#endif // TEXCACHE_LAYOUT_ADDRESS_SPACE_HH
