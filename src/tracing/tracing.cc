#include "tracing/tracing.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "tracing/sink_internal.hh"

namespace texcache {
namespace tracing {

uint32_t gMask = 0;
thread_local TexelContext tlsContext;
thread_local SpanStack tlsSpanStack;

namespace {

using Clock = std::chrono::steady_clock;

/** One thread's event buffer. Owned by the registry so it survives
 *  the thread; the owning thread writes, dumps read after joins. */
struct Ring
{
    std::vector<Event> buf;
    uint64_t dropped = 0;
    uint64_t sampleTick = 0; ///< deterministic per-thread decimation
    uint32_t tid = 0;
    uint64_t recordedBy[CategoryCounts::kCount] = {};
    uint64_t droppedBy[CategoryCounts::kCount] = {};
};

/** Ring-health counter slot for an event category. */
enum CatIndex : unsigned
{
    kCatSpans = 0,
    kCatMisses = 1,
    kCatTexels = 2,
    kCatFetches = 3,
};

struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<Ring>> rings;
    std::vector<std::string> names;
    uint64_t generation = 1; ///< bumped by configure() to detach TLS
    uint64_t sampleN = 1;
    uint64_t capacity = 1ull << 20;
    Clock::time_point epoch = Clock::now();
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local Ring *tlsRing = nullptr;
thread_local uint64_t tlsGeneration = 0;

Ring &
ring()
{
    Registry &reg = registry();
    if (tlsGeneration != reg.generation) {
        std::lock_guard<std::mutex> g(reg.mu);
        auto owned = std::make_unique<Ring>();
        owned->tid = static_cast<uint32_t>(reg.rings.size());
        owned->buf.reserve(
            std::min<uint64_t>(reg.capacity, 1ull << 16));
        tlsRing = owned.get();
        tlsGeneration = reg.generation;
        reg.rings.push_back(std::move(owned));
    }
    return *tlsRing;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - registry().epoch)
            .count());
}

/** Append @p ev to this thread's ring, honoring the capacity bound. */
void
record(const Event &ev, unsigned cat)
{
    Ring &r = ring();
    if (r.buf.size() >= registry().capacity) {
        ++r.dropped;
        ++r.droppedBy[cat];
        return;
    }
    r.buf.push_back(ev);
    ++r.recordedBy[cat];
}

/** Push/pop the signal-readable span stack (kSpanCtx). The id store
 *  is fenced before the depth store so a SIGPROF arriving between the
 *  two sees the old depth and a fully written prefix. */
void
spanCtxPush(uint16_t name)
{
    SpanStack &s = tlsSpanStack;
    uint32_t d = s.depth;
    if (d < SpanStack::kMaxDepth)
        s.ids[d] = name;
    std::atomic_signal_fence(std::memory_order_release);
    s.depth = d + 1;
}

void
spanCtxPop()
{
    SpanStack &s = tlsSpanStack;
    if (s.depth > 0)
        s.depth = s.depth - 1;
}

/** Sampled record for the high-frequency categories: keeps every
 *  Nth emission per thread, deterministically. */
bool
sampledOut(Ring &r)
{
    uint64_t n = registry().sampleN;
    return n > 1 && (r.sampleTick++ % n) != 0;
}

/** Parse "spans,misses,..." into a category mask. */
uint32_t
parseCategories(const char *env)
{
    uint32_t mask = 0;
    std::string_view rest(env);
    while (!rest.empty()) {
        size_t comma = rest.find(',');
        std::string_view tok = rest.substr(0, comma);
        rest = comma == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(comma + 1);
        if (tok.empty())
            continue;
        if (tok == "spans")
            mask |= kSpans;
        else if (tok == "misses")
            mask |= kMisses;
        else if (tok == "texels")
            mask |= kTexels;
        else if (tok == "fetches")
            mask |= kFetches;
        else if (tok == "all")
            mask |= kAll;
        else
            fatal("TEXCACHE_TRACE: unknown category '",
                  std::string(tok),
                  "' (want spans,misses,texels,fetches,all)");
    }
    return mask;
}

/** Parse "1/N" (or plain "N") into a sampling divisor. */
uint64_t
parseSample(const char *env)
{
    std::string_view s(env);
    if (s.substr(0, 2) == "1/")
        s = s.substr(2);
    uint64_t n = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            fatal("TEXCACHE_TRACE_SAMPLE='", env,
                  "' is not 1/N or N");
        n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    fatal_if(n == 0, "TEXCACHE_TRACE_SAMPLE='", env,
             "' must be at least 1");
    return n;
}

uint64_t
parseCapacity(const char *env)
{
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    fatal_if(end == env || *end != '\0' || v < 1,
             "TEXCACHE_TRACE_BUF='", env,
             "' is not a positive event count");
    return static_cast<uint64_t>(v);
}

/** One-time environment initialization, before main(). */
struct EnvInit
{
    EnvInit()
    {
        Registry &reg = registry();
        if (const char *env = std::getenv("TEXCACHE_TRACE"))
            gMask = parseCategories(env);
        if (const char *env = std::getenv("TEXCACHE_TRACE_SAMPLE"))
            reg.sampleN = parseSample(env);
        if (const char *env = std::getenv("TEXCACHE_TRACE_BUF"))
            reg.capacity = parseCapacity(env);
    }
} envInit;

} // namespace

void
enableSpanContext()
{
    gMask |= kSpanCtx;
}

void
disableSpanContext()
{
    gMask &= ~uint32_t(kSpanCtx);
}

std::vector<std::string>
spanNames()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    return reg.names;
}

const char *
categoryName(unsigned index)
{
    static const char *const names[CategoryCounts::kCount] = {
        "spans", "misses", "texels", "fetches"};
    return index < CategoryCounts::kCount ? names[index] : "?";
}

CategoryCounts
categoryCounts()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    CategoryCounts out;
    for (const auto &r : reg.rings) {
        for (unsigned i = 0; i < CategoryCounts::kCount; ++i) {
            out.recorded[i] += r->recordedBy[i];
            out.dropped[i] += r->droppedBy[i];
        }
    }
    return out;
}

uint16_t
nameId(std::string_view name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    for (size_t i = 0; i < reg.names.size(); ++i)
        if (reg.names[i] == name)
            return static_cast<uint16_t>(i);
    panic_if(reg.names.size() >= 0xffff,
             "tracing: span name table overflow");
    reg.names.emplace_back(name);
    return static_cast<uint16_t>(reg.names.size() - 1);
}

void
spanBegin(uint16_t name, uint64_t detail)
{
    if (enabled(kSpanCtx))
        spanCtxPush(name);
    if (!enabled(kSpans))
        return;
    Event ev{};
    ev.ts = nowNs();
    ev.addr = detail;
    ev.a = name;
    ev.c = static_cast<uint32_t>(detail);
    ev.kind = static_cast<uint8_t>(EventKind::SpanBegin);
    record(ev, kCatSpans);
}

void
spanEnd(uint16_t name)
{
    if (enabled(kSpanCtx))
        spanCtxPop();
    if (!enabled(kSpans))
        return;
    Event ev{};
    ev.ts = nowNs();
    ev.a = name;
    ev.kind = static_cast<uint8_t>(EventKind::SpanEnd);
    record(ev, kCatSpans);
}

void
asyncBegin(uint16_t name, uint64_t id, uint32_t detail)
{
    if (!enabled(kSpans))
        return;
    Event ev{};
    ev.ts = nowNs();
    ev.addr = id;
    ev.a = name;
    ev.c = detail;
    ev.kind = static_cast<uint8_t>(EventKind::AsyncBegin);
    record(ev, kCatSpans);
}

void
asyncEnd(uint16_t name, uint64_t id)
{
    if (!enabled(kSpans))
        return;
    Event ev{};
    ev.ts = nowNs();
    ev.addr = id;
    ev.a = name;
    ev.kind = static_cast<uint8_t>(EventKind::AsyncEnd);
    record(ev, kCatSpans);
}

void
cacheMiss(uint64_t addr, MissClass cls, uint16_t tag)
{
    if (tag == kTagSilent)
        return;
    Ring &r = ring();
    if (sampledOut(r))
        return;
    Event ev{};
    ev.ts = nowNs();
    ev.addr = addr;
    ev.a = tlsContext.screen;
    ev.b = tlsContext.texLevel;
    ev.c = tlsContext.uv;
    ev.cls = static_cast<uint8_t>(cls);
    ev.tag = tag;
    if (enabled(kMisses)) {
        ev.kind = static_cast<uint8_t>(EventKind::CacheMiss);
        record(ev, kCatMisses);
    }
    if (enabled(kTexels)) {
        ev.kind = static_cast<uint8_t>(EventKind::CacheAccess);
        ev.cls = 0; // not a hit
        record(ev, kCatTexels);
    }
}

void
cacheHit(uint64_t addr, uint16_t tag)
{
    if (tag == kTagSilent || !enabled(kTexels))
        return;
    Ring &r = ring();
    if (sampledOut(r))
        return;
    Event ev{};
    ev.ts = nowNs();
    ev.addr = addr;
    ev.a = tlsContext.screen;
    ev.b = tlsContext.texLevel;
    ev.c = tlsContext.uv;
    ev.kind = static_cast<uint8_t>(EventKind::CacheAccess);
    ev.cls = 1; // hit
    ev.tag = tag;
    record(ev, kCatTexels);
}

void
fetchEvent(EventKind kind, uint64_t page, uint64_t tick,
           uint32_t payload)
{
    if (!enabled(kFetches))
        return;
    Event ev{};
    ev.ts = tick;
    ev.addr = page;
    ev.b = payload;
    ev.kind = static_cast<uint8_t>(kind);
    record(ev, kCatFetches);
}

void
configure(const TraceConfig &config)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    reg.rings.clear();
    // The name table is deliberately kept: span sites intern their
    // ids once per process (function-local statics), so ids must
    // stay valid across re-configuration.
    ++reg.generation; // detaches every thread's cached ring pointer
    reg.sampleN = config.sampleN ? config.sampleN : 1;
    reg.capacity = config.capacity ? config.capacity : 1;
    reg.epoch = Clock::now();
    // kSpanCtx is owned by the profiler (enableSpanContext), not by
    // trace configuration; keep it across re-configuration.
    gMask = config.mask | (gMask & kSpanCtx);
}

TraceConfig
currentConfig()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    // Report only the event categories; kSpanCtx is profiler-internal.
    return {gMask & ~uint32_t(kSpanCtx), reg.sampleN, reg.capacity};
}

uint64_t
recordedCount()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    uint64_t n = 0;
    for (const auto &r : reg.rings)
        n += r->buf.size();
    return n;
}

uint64_t
droppedCount()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    uint64_t n = 0;
    for (const auto &r : reg.rings)
        n += r->dropped;
    return n;
}

std::vector<Event>
snapshotEvents()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    std::vector<Event> out;
    for (const auto &r : reg.rings)
        out.insert(out.end(), r->buf.begin(), r->buf.end());
    return out;
}

namespace detail {

/** Sink-side view over the registry (trace_sink.cc). */
void
visitRings(const std::function<void(uint32_t tid, uint64_t dropped,
                                    const std::vector<Event> &)> &fn,
           std::vector<std::string> &names, uint64_t &sample_n)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> g(reg.mu);
    names = reg.names;
    sample_n = reg.sampleN;
    for (const auto &r : reg.rings)
        fn(r->tid, r->dropped, r->buf);
}

} // namespace detail

DumpInfo
dumpToFiles(const std::string &name)
{
    DumpInfo info;
    info.recorded = recordedCount();
    info.dropped = droppedCount();
    info.sampleN = currentConfig().sampleN;

    std::string dir;
    if (const char *env = std::getenv("TEXCACHE_STATS_DIR"))
        if (*env)
            dir = std::string(env) + "/";
    info.chromePath = dir + "TRACE_" + name + ".chrome.json";
    info.eventsPath = dir + "TRACE_" + name + ".events.bin";

    std::ofstream chrome(info.chromePath);
    if (!chrome) {
        warn("cannot write trace ", info.chromePath);
        info.chromePath.clear();
    } else {
        writeChromeTrace(chrome);
        inform("wrote chrome trace ", info.chromePath, " (",
               info.recorded, " events, ", info.dropped, " dropped)");
    }

    std::ofstream events(info.eventsPath, std::ios::binary);
    if (!events) {
        warn("cannot write trace ", info.eventsPath);
        info.eventsPath.clear();
    } else {
        writeEventLog(events);
        inform("wrote event log ", info.eventsPath);
    }
    return info;
}

} // namespace tracing
} // namespace texcache
