#!/usr/bin/env python3
"""texcached_top: live terminal view of a running texcached daemon.

Polls the daemon's ``metrics`` control request (Prometheus text
exposition over the AF_UNIX length-prefixed framing) and renders the
numbers an operator actually watches: request rate, queue depth, fold
factor, latency percentiles, rejections and slow requests. Stdlib
only - no curses, no third-party clients - so it runs anywhere the
daemon does.

Usage:
  texcached_top.py --socket /tmp/texcached.sock [--interval 1.0]
  texcached_top.py --socket ... --once          # one dashboard, exit
  texcached_top.py --socket ... --once --raw    # raw exposition text

``--raw`` exists for scripting/CI: it prints exactly what the daemon
returned, so a validator (tools/check_metrics.py) can parse it.
"""

import argparse
import socket
import sys
import time

REQUEST = b'{"kind":"metrics"}'


def scrape(sock_path, timeout=5.0):
    """One metrics round-trip; returns the exposition text."""
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(timeout)
    try:
        s.connect(sock_path)
        s.sendall(str(len(REQUEST)).encode() + b"\n" + REQUEST)
        # Frame header: decimal byte count terminated by newline.
        header = b""
        while not header.endswith(b"\n"):
            ch = s.recv(1)
            if not ch:
                raise ConnectionError("short frame header")
            header += ch
            if len(header) > 20:
                raise ConnectionError("oversized frame header")
        n = int(header.strip())
        payload = b""
        while len(payload) < n:
            chunk = s.recv(n - len(payload))
            if not chunk:
                raise ConnectionError("short frame payload")
            payload += chunk
        return payload.decode("utf-8", "replace")
    finally:
        s.close()


def parse_exposition(text):
    """Exposition text -> {metric name: float} for plain samples.

    Histogram series keep their suffixed names (``x_sum``,
    ``x_count``, ``x_p50`` ...); ``_bucket`` lines are skipped - the
    dashboard reads the registry's own percentile gauges instead of
    re-deriving quantiles from log2 buckets.
    """
    values = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            continue
        name, value = parts
        if "{" in name:  # bucket (labelled) series
            continue
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values


def metric(values, name, default=0.0):
    return values.get("texcache_service_" + name, default)


def render(values, prev, dt):
    """One dashboard string from the current and previous scrape."""

    def rate(name):
        if prev is None or dt <= 0:
            return 0.0
        return max(0.0, (metric(values, name) - metric(prev, name)) / dt)

    lines = []
    lines.append(
        "texcached  qps %7.1f   ctrl/s %6.1f   queue %3d   %s"
        % (
            rate("accepted"),
            rate("control"),
            int(metric(values, "queue_depth_now")),
            "busy" if metric(values, "busy") else "idle",
        )
    )
    lines.append(
        "requests   accepted %8d   folded %6d   batches %6d   "
        "fold x%.2f"
        % (
            int(metric(values, "accepted")),
            int(metric(values, "folded")),
            int(metric(values, "batches")),
            metric(values, "fold_factor"),
        )
    )
    lines.append(
        "latency    p50 %8.0fus   p95 %8.0fus   p99 %8.0fus   "
        "mean %8.0fus"
        % (
            metric(values, "latency_us_p50"),
            metric(values, "latency_us_p95"),
            metric(values, "latency_us_p99"),
            metric(values, "latency_us_sum")
            / max(1.0, metric(values, "latency_us_count")),
        )
    )
    rejected = sum(
        int(metric(values, "rejected_" + k))
        for k in ("queue_full", "parse", "bad_request", "shutdown")
    )
    lines.append(
        "health     rejected %6d (full %d)   slow %6d   accepting %s"
        % (
            rejected,
            int(metric(values, "rejected_queue_full")),
            int(metric(values, "slow_requests")),
            "yes" if metric(values, "accepting") else "no",
        )
    )
    if metric(values, "perf_available") or "texcache_service_host_cycles" in values:
        sim = values.get("texcache_service_host_simulated_accesses", 0.0)
        misses = values.get("texcache_service_host_llc_misses", 0.0)
        lines.append(
            "host       llc misses %12d   sim accesses %12d   "
            "miss/access %.4g"
            % (int(misses), int(sim), misses / sim if sim else 0.0)
        )
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--socket", default="texcached.sock",
                    help="daemon AF_UNIX socket path")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="poll interval in seconds")
    ap.add_argument("--once", action="store_true",
                    help="print one report and exit")
    ap.add_argument("--raw", action="store_true",
                    help="with --once: print the raw exposition text")
    ap.add_argument("--count", type=int, default=0,
                    help="exit after N polls (0 = run forever)")
    args = ap.parse_args()

    if args.once:
        try:
            text = scrape(args.socket)
        except (OSError, ConnectionError) as e:
            print("texcached_top: cannot scrape %s: %s"
                  % (args.socket, e), file=sys.stderr)
            return 1
        if args.raw:
            sys.stdout.write(text)
        else:
            print(render(parse_exposition(text), None, 0.0))
        return 0

    prev = None
    prev_t = None
    polls = 0
    try:
        while True:
            try:
                text = scrape(args.socket)
            except (OSError, ConnectionError) as e:
                print("texcached_top: cannot scrape %s: %s"
                      % (args.socket, e), file=sys.stderr)
                return 1
            now = time.monotonic()
            values = parse_exposition(text)
            dt = (now - prev_t) if prev_t is not None else 0.0
            # Clear screen + home, then the dashboard.
            sys.stdout.write("\x1b[2J\x1b[H")
            print(time.strftime("%H:%M:%S"), "every %.1fs" % args.interval,
                  " (ctrl-c to quit)")
            print(render(values, prev, dt))
            sys.stdout.flush()
            prev, prev_t = values, now
            polls += 1
            if args.count and polls >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
