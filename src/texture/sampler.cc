#include "texture/sampler.hh"

#include <algorithm>
#include <cmath>

namespace texcache {

namespace {

/** Convert an 8-bit channel to float in [0,1]. */
inline float
toFloat(uint8_t c)
{
    return static_cast<float>(c) * (1.0f / 255.0f);
}

inline Vec4
toVec(const Rgba8 &c)
{
    return {toFloat(c.r), toFloat(c.g), toFloat(c.b), toFloat(c.a)};
}

/** GL_REPEAT wrap of an integer texel coordinate (power-of-two size). */
inline unsigned
wrapRepeat(int coord, unsigned size)
{
    return static_cast<unsigned>(coord) & (size - 1);
}

/** GL_CLAMP(-to-edge) of an integer texel coordinate. */
inline unsigned
wrapClamp(int coord, unsigned size)
{
    if (coord < 0)
        return 0;
    if (coord >= static_cast<int>(size))
        return size - 1;
    return static_cast<unsigned>(coord);
}

inline unsigned
applyWrap(int coord, unsigned size, WrapMode wrap)
{
    return wrap == WrapMode::Repeat ? wrapRepeat(coord, size)
                                    : wrapClamp(coord, size);
}

/**
 * The texel-address computation of sampleBilinearLevel without the
 * color fetches and lerps. Kept in this translation unit next to the
 * full filter so both compile to the identical float sequence; any
 * change here must mirror sampleBilinearLevel (and vice versa), which
 * the sampler fuzz test enforces.
 */
inline void
touchesBilinearLevel(const MipMap &mip, unsigned level, float u, float v,
                     TexelTouch *touches, WrapMode wrap)
{
    const Image &img = mip.level(level);
    unsigned w = img.width();
    unsigned h = img.height();

    float su = u * static_cast<float>(w) - 0.5f;
    float sv = v * static_cast<float>(h) - 0.5f;
    int i0 = static_cast<int>(std::floor(su));
    int j0 = static_cast<int>(std::floor(sv));

    unsigned u0 = applyWrap(i0, w, wrap);
    unsigned u1 = applyWrap(i0 + 1, w, wrap);
    unsigned v0 = applyWrap(j0, h, wrap);
    unsigned v1 = applyWrap(j0 + 1, h, wrap);

    touches[0] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u0),
                  static_cast<uint16_t>(v0)};
    touches[1] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u1),
                  static_cast<uint16_t>(v0)};
    touches[2] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u0),
                  static_cast<uint16_t>(v1)};
    touches[3] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u1),
                  static_cast<uint16_t>(v1)};
}

} // namespace

float
computeLod(float dudx, float dvdx, float dudy, float dvdy)
{
    float rho_x = std::sqrt(dudx * dudx + dvdx * dvdx);
    float rho_y = std::sqrt(dudy * dudy + dvdy * dvdy);
    float rho = std::max(rho_x, rho_y);
    // rho is the texel footprint of one pixel step; lambda = log2(rho).
    // Guard against degenerate (zero-area) footprints.
    if (rho <= 1e-20f)
        return -20.0f;
    return std::log2(rho);
}

Vec4
sampleBilinearLevel(const MipMap &mip, unsigned level, float u, float v,
                    TexelTouch *touches, WrapMode wrap)
{
    const Image &img = mip.level(level);
    unsigned w = img.width();
    unsigned h = img.height();

    // GL texel addressing: the sample point in texel units is
    // (u * w - 0.5, v * h - 0.5); the four nearest texels surround it.
    float su = u * static_cast<float>(w) - 0.5f;
    float sv = v * static_cast<float>(h) - 0.5f;
    int i0 = static_cast<int>(std::floor(su));
    int j0 = static_cast<int>(std::floor(sv));
    float fu = su - static_cast<float>(i0);
    float fv = sv - static_cast<float>(j0);

    unsigned u0 = applyWrap(i0, w, wrap);
    unsigned u1 = applyWrap(i0 + 1, w, wrap);
    unsigned v0 = applyWrap(j0, h, wrap);
    unsigned v1 = applyWrap(j0 + 1, h, wrap);

    touches[0] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u0),
                  static_cast<uint16_t>(v0)};
    touches[1] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u1),
                  static_cast<uint16_t>(v0)};
    touches[2] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u0),
                  static_cast<uint16_t>(v1)};
    touches[3] = {static_cast<uint16_t>(level), static_cast<uint16_t>(u1),
                  static_cast<uint16_t>(v1)};

    Vec4 c00 = toVec(img.texel(u0, v0));
    Vec4 c10 = toVec(img.texel(u1, v0));
    Vec4 c01 = toVec(img.texel(u0, v1));
    Vec4 c11 = toVec(img.texel(u1, v1));

    Vec4 top = c00 + (c10 - c00) * fu;
    Vec4 bot = c01 + (c11 - c01) * fu;
    return top + (bot - top) * fv;
}

SampleResult
sampleMipMap(const MipMap &mip, float u, float v, float lambda,
             WrapMode wrap)
{
    SampleResult res;
    if (lambda <= 0.0f) {
        // Magnification: bilinear from the most detailed level.
        res.kind = FilterKind::Bilinear;
        res.numTouches = 4;
        res.color = sampleBilinearLevel(mip, 0, u, v, res.touches,
                                        wrap);
        return res;
    }

    // Minification: trilinear between the two adjacent levels.
    unsigned max_level = mip.numLevels() - 1;
    float clamped = std::min(lambda, static_cast<float>(max_level));
    unsigned lower = static_cast<unsigned>(clamped);
    if (lower > max_level - (max_level ? 1 : 0) && max_level > 0)
        lower = max_level - 1;
    if (max_level == 0)
        lower = 0;
    unsigned upper = std::min(lower + 1, max_level);
    float frac = clamped - static_cast<float>(lower);
    if (frac < 0.0f)
        frac = 0.0f;
    if (frac > 1.0f)
        frac = 1.0f;

    res.kind = FilterKind::Trilinear;
    res.numTouches = 8;
    Vec4 c_lo = sampleBilinearLevel(mip, lower, u, v, res.touches,
                                    wrap);
    Vec4 c_hi = sampleBilinearLevel(mip, upper, u, v, res.touches + 4,
                                    wrap);
    res.color = c_lo + (c_hi - c_lo) * frac;
    return res;
}

SampleResult
sampleLevelBilinear(const MipMap &mip, unsigned level, float u, float v,
                    WrapMode wrap)
{
    panic_if(level >= mip.numLevels(), "level ", level, " of ",
             mip.numLevels());
    SampleResult res;
    res.kind = FilterKind::Bilinear;
    res.numTouches = 4;
    res.color = sampleBilinearLevel(mip, level, u, v, res.touches, wrap);
    return res;
}

SampleResult
sampleMipMapMode(const MipMap &mip, float u, float v, float lambda,
                 FilterMode mode, WrapMode wrap)
{
    if (mode == FilterMode::Trilinear)
        return sampleMipMap(mip, u, v, lambda, wrap);

    // Nearest-mip level selection per the GL spec: level ceil(lambda +
    // 0.5) - 1 for lambda > 0.5, i.e. round-to-nearest; magnification
    // stays on level 0.
    unsigned max_level = mip.numLevels() - 1;
    unsigned level = 0;
    if (lambda > 0.5f) {
        level = static_cast<unsigned>(lambda + 0.5f);
        if (level > max_level)
            level = max_level;
    }

    SampleResult res;
    if (mode == FilterMode::BilinearMipNearest) {
        res.kind = FilterKind::Bilinear;
        res.numTouches = 4;
        res.color = sampleBilinearLevel(mip, level, u, v, res.touches,
                                        wrap);
        return res;
    }

    // NearestMipNearest: one texel, the one whose cell contains (u,v).
    const Image &img = mip.level(level);
    unsigned w = img.width();
    unsigned h = img.height();
    int iu = static_cast<int>(std::floor(u * static_cast<float>(w)));
    int iv = static_cast<int>(std::floor(v * static_cast<float>(h)));
    unsigned tu = applyWrap(iu, w, wrap);
    unsigned tv = applyWrap(iv, h, wrap);
    res.kind = FilterKind::Nearest;
    res.numTouches = 1;
    res.touches[0] = {static_cast<uint16_t>(level),
                      static_cast<uint16_t>(tu),
                      static_cast<uint16_t>(tv)};
    const Rgba8 &c = img.texel(tu, tv);
    res.color = {c.r / 255.0f, c.g / 255.0f, c.b / 255.0f,
                 c.a / 255.0f};
    return res;
}

void
sampleTouchesMipMapMode(const MipMap &mip, float u, float v,
                        float lambda, FilterMode mode, SampleResult &res,
                        WrapMode wrap)
{
    if (mode == FilterMode::Trilinear) {
        // Mirror sampleMipMap's level selection exactly.
        if (lambda <= 0.0f) {
            res.kind = FilterKind::Bilinear;
            res.numTouches = 4;
            touchesBilinearLevel(mip, 0, u, v, res.touches, wrap);
            return;
        }
        unsigned max_level = mip.numLevels() - 1;
        float clamped = std::min(lambda, static_cast<float>(max_level));
        unsigned lower = static_cast<unsigned>(clamped);
        if (lower > max_level - (max_level ? 1 : 0) && max_level > 0)
            lower = max_level - 1;
        if (max_level == 0)
            lower = 0;
        unsigned upper = std::min(lower + 1, max_level);
        res.kind = FilterKind::Trilinear;
        res.numTouches = 8;
        touchesBilinearLevel(mip, lower, u, v, res.touches, wrap);
        touchesBilinearLevel(mip, upper, u, v, res.touches + 4, wrap);
        return;
    }

    // Nearest-mip level selection, exactly as sampleMipMapMode.
    unsigned max_level = mip.numLevels() - 1;
    unsigned level = 0;
    if (lambda > 0.5f) {
        level = static_cast<unsigned>(lambda + 0.5f);
        if (level > max_level)
            level = max_level;
    }

    if (mode == FilterMode::BilinearMipNearest) {
        res.kind = FilterKind::Bilinear;
        res.numTouches = 4;
        touchesBilinearLevel(mip, level, u, v, res.touches, wrap);
        return;
    }

    const Image &img = mip.level(level);
    unsigned w = img.width();
    unsigned h = img.height();
    int iu = static_cast<int>(std::floor(u * static_cast<float>(w)));
    int iv = static_cast<int>(std::floor(v * static_cast<float>(h)));
    unsigned tu = applyWrap(iu, w, wrap);
    unsigned tv = applyWrap(iv, h, wrap);
    res.kind = FilterKind::Nearest;
    res.numTouches = 1;
    res.touches[0] = {static_cast<uint16_t>(level),
                      static_cast<uint16_t>(tu),
                      static_cast<uint16_t>(tv)};
}

} // namespace texcache
