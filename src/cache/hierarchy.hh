/**
 * @file
 * Two-level cache hierarchy.
 *
 * The paper's parallel proposal (section 8) has several fragment
 * generators with private SRAM caches sharing one DRAM texture memory.
 * The natural architectural refinement - and this module's subject -
 * inserts a shared second-level cache between the private L1s and
 * DRAM: texture data is read-only, so the L2 needs no coherence and
 * simply absorbs the inter-generator re-fetches that private L1s
 * cause. The parallel ablation uses this to show a shared L2 recovers
 * most of the locality lost to fine-grained work distribution.
 *
 * The model is a miss-path composition: an access probes L1; on an L1
 * miss the line's address probes L2; on an L2 miss the fill comes from
 * memory. Lines are read-only so no writeback path exists.
 */

#ifndef TEXCACHE_CACHE_HIERARCHY_HH
#define TEXCACHE_CACHE_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache_sim.hh"

namespace texcache {

/** Result of one access through a hierarchy. */
enum class HierarchyHit : uint8_t
{
    L1,     ///< served by the private first level
    L2,     ///< L1 miss, shared second level hit
    Memory, ///< missed both levels
};

/** N private L1 caches over one shared L2. */
class TwoLevelCache
{
  public:
    /**
     * @param num_l1   number of private first-level caches
     * @param l1       geometry of each L1
     * @param l2       geometry of the shared L2
     */
    TwoLevelCache(unsigned num_l1, const CacheConfig &l1,
                  const CacheConfig &l2);

    /** Access @p addr through L1 @p l1_index. */
    HierarchyHit access(unsigned l1_index, Addr addr);

    const CacheStats &l1Stats(unsigned i) const
    {
        return l1s_[i].stats();
    }

    const CacheStats &l2Stats() const { return l2_.stats(); }

    unsigned numL1() const
    {
        return static_cast<unsigned>(l1s_.size());
    }

    const CacheConfig &l1Config() const { return l1s_.front().config(); }
    const CacheConfig &l2Config() const { return l2_.config(); }

    /** Total accesses across all L1s. */
    uint64_t totalAccesses() const;

    /**
     * Install an optional memory-side backend invoked with the address
     * of every fill that misses both levels. This is how a paged
     * texture memory (src/vt/) sits behind the hierarchy: the L1/L2
     * filter the texel stream and only true fills probe page
     * residency. Unset = the paper's fully-resident DRAM.
     */
    void
    setMemoryBackend(std::function<void(Addr)> backend)
    {
        backend_ = std::move(backend);
    }

    /** Fills from memory (the shared DRAM's read traffic, in lines). */
    uint64_t
    memoryFills() const
    {
        return l2_.stats().misses;
    }

    /** Bytes fetched from memory. */
    uint64_t
    memoryBytes() const
    {
        return l2_.stats().bytesFetched(l2_.config().lineBytes);
    }

  private:
    std::vector<CacheSim> l1s_;
    CacheSim l2_;
    std::function<void(Addr)> backend_;
};

} // namespace texcache

#endif // TEXCACHE_CACHE_HIERARCHY_HH
