/** @file
 * Integration tests for the experiment harness: trace -> layout ->
 * cache simulation, cross-validating the fast paths against the
 * explicit simulators.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/scene_layout.hh"
#include "trace/trace_io.hh"

using namespace texcache;

namespace {

/** A shared small scene + trace for the whole file (built once). */
struct Fixture
{
    Scene scene = makeQuadTestScene(128, 160, 2.0f);
    RenderOutput out = render(scene, RasterOrder::horizontal());
};

Fixture &
fix()
{
    static Fixture f;
    return f;
}

} // namespace

TEST(SceneLayout, AddressCountMatchesTraceSize)
{
    LayoutParams p;
    p.kind = LayoutKind::Nonblocked;
    SceneLayout lay(fix().scene, p);
    uint64_t n = 0;
    lay.forEachAddress(fix().out.trace, [&](Addr) { ++n; });
    EXPECT_EQ(n, fix().out.trace.size());
}

TEST(SceneLayout, WilliamsTriplesTheAddressStream)
{
    LayoutParams p;
    p.kind = LayoutKind::Williams;
    SceneLayout lay(fix().scene, p);
    uint64_t n = 0;
    lay.forEachAddress(fix().out.trace, [&](Addr) { ++n; });
    EXPECT_EQ(n, fix().out.trace.size() * 3);
}

TEST(SceneLayout, FootprintCoversAllTextures)
{
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    SceneLayout lay(fix().scene, p);
    EXPECT_EQ(lay.numTextures(), fix().scene.textures.size());
    uint64_t texel_bytes = 0;
    for (const MipMap &m : fix().scene.textures)
        texel_bytes += m.storageBytes();
    EXPECT_GE(lay.totalFootprint(), texel_bytes);
}

TEST(Experiment, ProfilerMatchesExplicitFaCache)
{
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    p.blockW = p.blockH = 4;
    SceneLayout lay(fix().scene, p);
    StackDistProfiler prof = profileTrace(fix().out.trace, lay, 32);
    for (uint64_t size : {2048u, 8192u, 32768u}) {
        CacheStats fa = runCache(
            fix().out.trace, lay,
            {size, 32, CacheConfig::kFullyAssoc});
        EXPECT_EQ(prof.misses(size), fa.misses) << "size " << size;
        EXPECT_EQ(prof.accesses(), fa.accesses);
        EXPECT_EQ(prof.coldMisses(), fa.coldMisses);
    }
}

TEST(Experiment, MissRatesDecreaseWithAssociativityOnAverage)
{
    LayoutParams p;
    p.kind = LayoutKind::Nonblocked;
    SceneLayout lay(fix().scene, p);
    CacheStats dm = runCache(fix().out.trace, lay, {4096, 32, 1});
    CacheStats fa = runCache(fix().out.trace, lay,
                             {4096, 32, CacheConfig::kFullyAssoc});
    EXPECT_GE(dm.misses, fa.misses);
}

TEST(Experiment, ClassifierIdentity)
{
    LayoutParams p;
    p.kind = LayoutKind::Nonblocked;
    SceneLayout lay(fix().scene, p);
    MissBreakdown b =
        classifyCache(fix().out.trace, lay, {4096, 32, 2});
    EXPECT_EQ(b.cold + b.capacity + b.conflict, b.misses);
    EXPECT_EQ(b.accesses, fix().out.trace.size());
}

TEST(Experiment, CacheSizeSweepIsPowerOfTwo)
{
    auto sizes = cacheSizeSweep(1024, 65536);
    ASSERT_EQ(sizes.size(), 7u);
    EXPECT_EQ(sizes.front(), 1024u);
    EXPECT_EQ(sizes.back(), 65536u);
    for (size_t i = 1; i < sizes.size(); ++i)
        EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

TEST(Experiment, FirstWorkingSetFindsThePlateau)
{
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    SceneLayout lay(fix().scene, p);
    StackDistProfiler prof = profileTrace(fix().out.trace, lay, 32);
    auto sizes = cacheSizeSweep(1024, 256 * 1024);
    uint64_t ws = firstWorkingSet(prof, sizes);
    EXPECT_GE(ws, sizes.front());
    EXPECT_LE(ws, sizes.back());
    // By definition, the working-set size captures >= 85% of the
    // achievable miss-rate reduction.
    double top = prof.missRate(sizes.front());
    double floor_rate = prof.missRate(sizes.back());
    EXPECT_LE(prof.missRate(ws),
              top - 0.85 * (top - floor_rate) + 1e-12);
}

TEST(Experiment, BlockedBeatsNonblockedAtLargeLines)
{
    // The paper's core finding (section 5.3.2): with a large line, a
    // blocked representation exploits spatial locality much better
    // than the row-major one on a 2-D access pattern.
    LayoutParams pn;
    pn.kind = LayoutKind::Nonblocked;
    LayoutParams pb;
    pb.kind = LayoutKind::Blocked;
    pb.blockW = pb.blockH = 8; // 8x8 texels = 256 B... use 128 B: 8x4
    pb.blockH = 4;
    SceneLayout ln(fix().scene, pn);
    SceneLayout lb(fix().scene, pb);
    StackDistProfiler profile_n = profileTrace(fix().out.trace, ln, 128);
    StackDistProfiler profile_b = profileTrace(fix().out.trace, lb, 128);
    EXPECT_LT(profile_b.missRate(32 * 1024),
              profile_n.missRate(32 * 1024));
}

TEST(TraceStore, MemoizesScenesAndOutputs)
{
    TraceStore store;
    const Scene &a = store.scene(BenchScene::Goblet);
    const Scene &b = store.scene(BenchScene::Goblet);
    EXPECT_EQ(&a, &b);
    const RenderOutput &o1 =
        store.output(BenchScene::Goblet, RasterOrder::horizontal());
    const RenderOutput &o2 =
        store.output(BenchScene::Goblet, RasterOrder::horizontal());
    EXPECT_EQ(&o1, &o2);
    EXPECT_GT(o1.trace.size(), 0u);
    // A different order is a different cache entry.
    const RenderOutput &o3 =
        store.output(BenchScene::Goblet, RasterOrder::vertical());
    EXPECT_NE(&o1, &o3);
}

TEST(TraceStore, StaleRevisionCacheEntryIsNotServed)
{
    // Regression test for a poisoned on-disk trace cache: an entry
    // keyed by an older render-path revision must never satisfy the
    // current build, even within the same compilation stamp.
    std::string dir = ::testing::TempDir() + "texcache-poison-test";
    std::filesystem::remove_all(dir);
    setenv("TEXCACHE_TRACE_CACHE_DIR", dir.c_str(), 1);
    std::filesystem::create_directories(dir);

    // Plant a poisoned (clearly wrong) trace at the *previous*
    // revision's path for this (scene, order, build).
    RasterOrder order = RasterOrder::horizontal();
    std::string stale =
        traceCachePath(BenchScene::Goblet, order, kRenderPathRevision - 1);
    ASSERT_FALSE(stale.empty());
    TexelTrace poison;
    poison.append(TexelRecord{1, 2, 3, 0, TouchKind::Nearest});
    writeTrace(poison, stale);

    std::string current = traceCachePath(BenchScene::Goblet, order);
    ASSERT_NE(stale, current);
    ASSERT_FALSE(std::filesystem::exists(current));

    // The store must ignore the stale entry and render fresh...
    TraceStore store;
    const TexelTrace &fresh = store.trace(BenchScene::Goblet, order);
    EXPECT_EQ(store.diskHits(), 0u);
    EXPECT_EQ(store.renders(), 1u);
    EXPECT_GT(store.renderMillis(), 0.0);
    EXPECT_NE(fresh.size(), poison.size());

    // ...and populate the current-revision path, which a second store
    // then serves from disk, byte for byte.
    ASSERT_TRUE(std::filesystem::exists(current));
    TraceStore store2;
    const TexelTrace &cached = store2.trace(BenchScene::Goblet, order);
    EXPECT_EQ(store2.diskHits(), 1u);
    EXPECT_EQ(store2.renders(), 0u);
    EXPECT_TRUE(cached.packed() == fresh.packed());

    unsetenv("TEXCACHE_TRACE_CACHE_DIR");
    std::filesystem::remove_all(dir);
}

TEST(Experiment, FirstWorkingSetPanicsOnEmptySweep)
{
    LayoutParams p;
    p.kind = LayoutKind::Nonblocked;
    SceneLayout lay(fix().scene, p);
    StackDistProfiler prof = profileTrace(fix().out.trace, lay, 32);
    std::vector<uint64_t> empty;
    EXPECT_DEATH(firstWorkingSet(prof, empty), "empty size sweep");
}

TEST(Experiment, LayoutKindNamesAreStable)
{
    EXPECT_STREQ(layoutKindName(LayoutKind::Williams), "williams");
    EXPECT_STREQ(layoutKindName(LayoutKind::Nonblocked), "nonblocked");
    EXPECT_STREQ(layoutKindName(LayoutKind::Blocked), "blocked");
    EXPECT_STREQ(layoutKindName(LayoutKind::PaddedBlocked), "padded");
    EXPECT_STREQ(layoutKindName(LayoutKind::Blocked6D), "blocked6d");
    EXPECT_STREQ(layoutKindName(LayoutKind::CompressedBlocked),
                 "compressed");
}

TEST(Experiment, StatsHelpersHandleZeroAccesses)
{
    CacheStats empty;
    EXPECT_DOUBLE_EQ(empty.missRate(), 0.0);
    EXPECT_EQ(empty.bytesFetched(64), 0u);
}

TEST(Experiment, BaseAlignIsHonored)
{
    LayoutParams fine;
    fine.kind = LayoutKind::Blocked;
    fine.baseAlign = 64;
    LayoutParams coarse = fine;
    coarse.baseAlign = 32768;
    SceneLayout a(fix().scene, fine);
    SceneLayout b(fix().scene, coarse);
    // Coarser alignment can only grow the footprint.
    EXPECT_LE(a.totalFootprint(), b.totalFootprint());
}

// ---- Streamed spills and the trace-cache size cap ------------------

namespace {

void
writeBytes(const std::string &path, size_t n)
{
    std::ofstream out(path, std::ios::binary);
    std::string buf(n, 'x');
    out.write(buf.data(), static_cast<std::streamsize>(n));
}

void
ageFile(const std::string &path, int seconds_ago)
{
    namespace fs = std::filesystem;
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::seconds(seconds_ago));
}

} // namespace

TEST(TraceCache, PruneEvictsLruUntilUnderCap)
{
    std::string dir = ::testing::TempDir() + "texcache-prune-test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    writeBytes(dir + "/a.trace", 100);
    writeBytes(dir + "/b.ctrace", 200);
    writeBytes(dir + "/c.tmp", 50);
    writeBytes(dir + "/unrelated.txt", 400); // never cache-managed
    ageFile(dir + "/a.trace", 3000);  // oldest -> first victim
    ageFile(dir + "/b.ctrace", 2000);
    ageFile(dir + "/c.tmp", 1000);

    // 350 cache bytes vs a 260 cap: evicting a (100) reaches 250.
    uint64_t removed = pruneTraceCache(dir, 260);
    EXPECT_EQ(removed, 100u);
    EXPECT_FALSE(std::filesystem::exists(dir + "/a.trace"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/b.ctrace"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/c.tmp"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/unrelated.txt"));

    // The keep file survives even when LRU order says otherwise.
    removed = pruneTraceCache(dir, 40, dir + "/b.ctrace");
    EXPECT_EQ(removed, 50u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/b.ctrace"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/c.tmp"));

    // Cap 0 = uncapped: nothing is touched.
    EXPECT_EQ(pruneTraceCache(dir, 0), 0u);
    EXPECT_TRUE(std::filesystem::exists(dir + "/b.ctrace"));
    std::filesystem::remove_all(dir);
}

TEST(TraceCache, CapParsesSuffixes)
{
    setenv("TEXCACHE_TRACE_CACHE_CAP", "512", 1);
    EXPECT_EQ(traceCacheCapBytes(), 512u);
    setenv("TEXCACHE_TRACE_CACHE_CAP", "64k", 1);
    EXPECT_EQ(traceCacheCapBytes(), 64u << 10);
    setenv("TEXCACHE_TRACE_CACHE_CAP", "3M", 1);
    EXPECT_EQ(traceCacheCapBytes(), 3u << 20);
    setenv("TEXCACHE_TRACE_CACHE_CAP", "2G", 1);
    EXPECT_EQ(traceCacheCapBytes(), 2ull << 30);
    setenv("TEXCACHE_TRACE_CACHE_CAP", "0", 1);
    EXPECT_EQ(traceCacheCapBytes(), 0u);
    unsetenv("TEXCACHE_TRACE_CACHE_CAP");
    EXPECT_EQ(traceCacheCapBytes(), 0u);
    setenv("TEXCACHE_TRACE_CACHE_CAP", "12parsecs", 1);
    EXPECT_EXIT(traceCacheCapBytes(), ::testing::ExitedWithCode(1),
                "TEXCACHE_TRACE_CACHE_CAP");
    unsetenv("TEXCACHE_TRACE_CACHE_CAP");
}

TEST(TraceStore, SpillTraceReusesValidFilesAndPrunes)
{
    std::string dir = ::testing::TempDir() + "texcache-spill-test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    SceneSpec spec = SceneSpec::quadScene(32, 64, 1.0f);
    RasterOrder order = RasterOrder::horizontal();
    TraceStore store;
    std::string path = store.spillTrace(spec, order, dir);
    EXPECT_EQ(store.renders(), 1u);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Second spill (fresh store, same build) reuses the file.
    TraceStore store2;
    EXPECT_EQ(store2.spillTrace(spec, order, dir), path);
    EXPECT_EQ(store2.renders(), 0u);
    EXPECT_EQ(store2.diskHits(), 1u);

    // A torn file (finalized flag never set) is re-rendered in place.
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    uint32_t zero = 0;
    f.seekp(24);
    f.write(reinterpret_cast<const char *>(&zero), sizeof(zero));
    f.close();
    TraceStore store3;
    EXPECT_EQ(store3.spillTrace(spec, order, dir), path);
    EXPECT_EQ(store3.renders(), 1u);

    // With a tiny cap, pruning after the spill never evicts the file
    // just produced.
    setenv("TEXCACHE_TRACE_CACHE_CAP", "1", 1);
    writeBytes(dir + "/old.trace", 1000);
    ageFile(dir + "/old.trace", 5000);
    TraceStore store4;
    EXPECT_EQ(store4.spillTrace(spec, order, dir), path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(dir + "/old.trace"));
    unsetenv("TEXCACHE_TRACE_CACHE_CAP");
    std::filesystem::remove_all(dir);
}
