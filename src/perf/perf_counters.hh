/**
 * @file
 * Host hardware performance counters via perf_event_open(2).
 *
 * The paper's analysis is built on *simulated* miss rates; this layer
 * measures the host's own cache behaviour while it simulates, so a
 * bench manifest can report the mirror metric: host LLC misses per
 * simulated texel access. Five process-wide counters open before
 * main() (cycles, instructions, LLC loads, LLC misses, branch
 * misses), each with inherit=1 so threads spawned later - the sweep
 * pool, the tile-render workers, the service dispatcher - are
 * aggregated into one read().
 *
 * Degradation contract: perf_event_open is frequently unavailable
 * (seccomp'd containers, perf_event_paranoid >= 3, non-Linux). Every
 * entry point then stays safe and cheap: available() is false,
 * read() returns a Reading with available=false, and consumers emit
 * report-only blocks that say so instead of failing. Nothing in the
 * harness *gates* on these numbers; they are observability, like the
 * tracing layer. TEXCACHE_PERF=0 disables the counters explicitly.
 *
 * Counter values are scaled for kernel multiplexing using
 * time_enabled/time_running (Reading::multiplexed flags when scaling
 * happened). Counts are user-space only (exclude_kernel), which is
 * also what lets the syscall succeed at perf_event_paranoid=2.
 *
 * The denominator for the mirror metric is explicit, not inferred:
 * replay drivers call addSimulatedAccesses() once per pass (a relaxed
 * atomic add per *pass*, never per access), and simulatedAccesses()
 * reads the process total.
 */

#ifndef TEXCACHE_PERF_PERF_COUNTERS_HH
#define TEXCACHE_PERF_PERF_COUNTERS_HH

#include <cstdint>
#include <string>

namespace texcache {
namespace perf {

/** One aggregated reading of the process-wide counter set. */
struct Reading
{
    bool available = false; ///< at least cycles+instructions opened
    bool multiplexed = false; ///< any counter was time-sliced (scaled)
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llcLoads = 0;
    uint64_t llcMisses = 0;
    uint64_t branchMisses = 0;

    /** Counter-wise delta (this - earlier); flags OR together. */
    Reading since(const Reading &earlier) const;

    double
    ipc() const
    {
        return cycles ? double(instructions) / double(cycles) : 0.0;
    }

    double
    llcMissRate() const
    {
        return llcLoads ? double(llcMisses) / double(llcLoads) : 0.0;
    }
};

/** Did the process-wide counters open? Stable after process start. */
bool available();

/** Human-readable reason when available() is false ("" otherwise). */
const std::string &unavailableReason();

/** Cumulative counts since process start, all threads aggregated. */
Reading read();

/**
 * Credit @p n simulated texel accesses to the process total. Replay
 * drivers call this once per trace pass with the pass length.
 */
void addSimulatedAccesses(uint64_t n);

/** Total simulated texel accesses credited so far. */
uint64_t simulatedAccesses();

} // namespace perf
} // namespace texcache

#endif // TEXCACHE_PERF_PERF_COUNTERS_HH
