/** @file
 * End-to-end integration tests: full benchmark scene -> render ->
 * layout -> cache, anchoring the paper's headline results as
 * regression bands. Uses Goblet (the cheapest scene) so the suite
 * stays fast.
 */

#include <gtest/gtest.h>

#include "cache/bandwidth.hh"
#include "core/experiment.hh"
#include "core/scene_layout.hh"
#include "trace/trace_stats.hh"

using namespace texcache;

namespace {

/** Render Goblet once for the whole file. */
struct Fixture
{
    Scene scene = makeGobletScene();
    RenderOutput out = [this] {
        RenderOptions opts;
        opts.writeFramebuffer = false;
        return render(scene, RasterOrder::tiledOrder(8, 8), opts);
    }();
};

Fixture &
fix()
{
    static Fixture f;
    return f;
}

LayoutParams
paddedParams()
{
    LayoutParams p;
    p.kind = LayoutKind::PaddedBlocked;
    p.blockW = p.blockH = 8;
    return p;
}

} // namespace

TEST(Integration, GobletTrafficIsDeterministic)
{
    // Regression anchor: the exact trace length of the deterministic
    // Goblet render. If this moves, every figure changes.
    EXPECT_EQ(fix().out.trace.size(), fix().out.stats.texelAccesses);
    EXPECT_GT(fix().out.stats.fragments, 250000u);
    EXPECT_LT(fix().out.stats.fragments, 350000u);
}

TEST(Integration, PaperHeadlineWorkingSetBand)
{
    // "Working set sizes are relatively small (at most 16KB)": the
    // 32 KB / 32 B fully associative miss rate must sit on the cold
    // floor (within 2x of the 512 KB rate).
    LayoutParams p;
    p.kind = LayoutKind::Nonblocked;
    SceneLayout layout(fix().scene, p);
    StackDistProfiler prof = profileTrace(fix().out.trace, layout, 32);
    EXPECT_LE(prof.missRate(32 * 1024),
              prof.missRate(512 * 1024) * 2.0);
}

TEST(Integration, PaperHeadlineBandwidthReduction)
{
    // "At least three times and as much as fifteen times" lower
    // bandwidth with a 32 KB cache than the 1.6 GB/s uncached system.
    SceneLayout layout(fix().scene, paddedParams());
    CacheStats stats =
        runCache(fix().out.trace, layout, {32 * 1024, 128, 2});
    MachineModel machine;
    double reduction =
        machine.reductionFactor(stats.missRate(), 128);
    EXPECT_GE(reduction, 3.0);
    EXPECT_LE(reduction, 40.0); // sanity ceiling
}

TEST(Integration, TwoWayRemovesMipLevelConflicts)
{
    // Fig 5.7(a)'s claim on the real scene: 2-way ~= fully
    // associative, direct-mapped notably worse (8 KB cache).
    SceneLayout layout(fix().scene, paddedParams());
    CacheStats dm =
        runCache(fix().out.trace, layout, {8 * 1024, 128, 1});
    CacheStats w2 =
        runCache(fix().out.trace, layout, {8 * 1024, 128, 2});
    CacheStats fa = runCache(fix().out.trace, layout,
                             {8 * 1024, 128, CacheConfig::kFullyAssoc});
    EXPECT_GT(dm.missRate(), w2.missRate() * 1.3);
    EXPECT_LT(w2.missRate(), fa.missRate() * 1.6);
}

TEST(Integration, BlockedBeatsWilliamsLayout)
{
    // Section 5.1's argument: Williams' representation needs 3
    // accesses per texel and conflicts between component planes; the
    // blocked RGBA representation generates far less memory traffic.
    LayoutParams williams;
    williams.kind = LayoutKind::Williams;
    SceneLayout lw(fix().scene, williams);
    SceneLayout lb(fix().scene, paddedParams());

    CacheConfig cache{16 * 1024, 64, 2};
    CacheStats sw = runCache(fix().out.trace, lw, cache);
    CacheStats sb = runCache(fix().out.trace, lb, cache);
    // Three accesses per texel for Williams.
    EXPECT_EQ(sw.accesses, fix().out.trace.size() * 3);
    EXPECT_EQ(sb.accesses, fix().out.trace.size());
    // And more fetched bytes overall.
    EXPECT_GT(sw.bytesFetched(cache.lineBytes),
              sb.bytesFetched(cache.lineBytes));
}

TEST(Integration, TraceReplayEqualsInlineSimulation)
{
    // The factored replay path (trace -> layout -> cache) must agree
    // with feeding the cache during rendering via onFragment.
    SceneLayout layout(fix().scene, paddedParams());
    CacheConfig config{16 * 1024, 128, 2};

    CacheStats replay = runCache(fix().out.trace, layout, config);

    CacheSim inline_cache(config);
    RenderOptions opts;
    opts.captureTrace = false;
    opts.writeFramebuffer = false;
    opts.countRepetition = false;
    opts.onFragment = [&](const Fragment &, const SampleResult &s,
                          uint16_t tex) {
        for (unsigned i = 0; i < s.numTouches; ++i) {
            Addr out[3];
            unsigned n = layout.layout(tex).addresses(
                {s.touches[i].level, s.touches[i].u, s.touches[i].v},
                out);
            for (unsigned j = 0; j < n; ++j)
                inline_cache.access(out[j]);
        }
    };
    render(fix().scene, RasterOrder::tiledOrder(8, 8), opts);

    EXPECT_EQ(inline_cache.stats().accesses, replay.accesses);
    EXPECT_EQ(inline_cache.stats().misses, replay.misses);
}

TEST(Integration, PaddingNeverIncreasesMissesMuch)
{
    // Padding exists to remove conflicts; on a fully associative
    // cache it must be essentially neutral (same texels, same lines
    // per block).
    LayoutParams blocked = paddedParams();
    blocked.kind = LayoutKind::Blocked;
    SceneLayout lb(fix().scene, blocked);
    SceneLayout lp(fix().scene, paddedParams());
    CacheConfig fa{16 * 1024, 128, CacheConfig::kFullyAssoc};
    CacheStats sb = runCache(fix().out.trace, lb, fa);
    CacheStats sp = runCache(fix().out.trace, lp, fa);
    EXPECT_NEAR(static_cast<double>(sp.misses),
                static_cast<double>(sb.misses),
                static_cast<double>(sb.misses) * 0.02 + 16);
}
