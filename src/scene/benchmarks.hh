/**
 * @file
 * The four benchmark scenes of the study (paper section 4.2, Table 4.1).
 *
 * The paper captures GL traces of real SGI applications; we rebuild each
 * scene procedurally to the published characteristics:
 *
 *  - Flight: satellite-textured mountainous terrain, 1280x1024, ~9.2k
 *    triangles, 15 large textures (~56 MB), large level-of-detail
 *    variation.
 *  - Town:   many small upright facade textures on flat surfaces,
 *    1280x1024, ~5.3k triangles, 51 textures (~4.7 MB), repeated
 *    texture (factor ~2.9).
 *  - Guitar: large triangles, large non-uniformly oriented textures,
 *    800x800, ~719 triangles, 8 textures (~4.9 MB).
 *  - Goblet: one 512x512 texture wrapped around a surface of
 *    revolution built from small triangles, 800x800, 7200 triangles.
 *
 * DESIGN.md section 2 documents this substitution.
 */

#ifndef TEXCACHE_SCENE_BENCHMARKS_HH
#define TEXCACHE_SCENE_BENCHMARKS_HH

#include <vector>

#include "pipeline/scene_types.hh"
#include "raster/raster_types.hh"

namespace texcache {

/** Identifies one of the four paper benchmarks. */
enum class BenchScene
{
    Flight,
    Town,
    Guitar,
    Goblet,
};

/** All four benchmarks in the paper's reporting order. */
std::vector<BenchScene> allBenchScenes();

/** Display name ("Flight", ...). */
const char *benchSceneName(BenchScene s);

/**
 * The rasterization scan direction the paper reports each scene with
 * (section 5.2.3): vertical for Town (its worst case), horizontal for
 * the others.
 */
ScanDirection paperScanDirection(BenchScene s);

/** Build a benchmark scene (deterministic; ~1-60 MB of textures). */
Scene makeScene(BenchScene s);

Scene makeFlightScene();

/**
 * Flight at a later point of its camera path (frame @p time of an
 * animation; frame 0 is makeFlightScene). Consecutive frames overlap
 * heavily in the texture regions they touch, which is the inter-frame
 * temporal locality the paper notes caches cannot exploit but a large
 * texture *memory* can (section 3.1.2).
 */
Scene makeFlightSceneAt(float time);
Scene makeTownScene();
Scene makeGuitarScene();
Scene makeGobletScene();

/**
 * A small single-quad test scene: one @p tex_size texture on a unit
 * quad filling most of a @p screen x @p screen viewport. Used by unit
 * and integration tests that need cheap but realistic traffic.
 */
Scene makeQuadTestScene(unsigned tex_size = 64, unsigned screen = 128,
                        float uv_repeat = 1.0f);

/**
 * The worst-case analysis scene of section 5.2.3: one large triangle
 * pair filling the whole @p screen x @p screen viewport, textured at
 * ~1 texel per pixel with the texture axes rotated by
 * @p angle_radians on screen. Sweeping the angle exercises arbitrary
 * texture-space traversal directions; the paper bounds the resulting
 * first-level working set by line size x texture diagonal (texture
 * smaller than screen, wrapped) or line size x screen dimension
 * (texture larger than screen).
 */
Scene makeWorstCaseScene(unsigned tex_size, unsigned screen,
                         float angle_radians);

} // namespace texcache

#endif // TEXCACHE_SCENE_BENCHMARKS_HH
