/**
 * @file
 * Reproduces Table 2.1: per-fragment computational costs of a fragment
 * generator, plus the representation-dependent texel addressing costs
 * the table defers to section 5.
 *
 * The fixed-function rows are the paper's unoptimized operation counts
 * for the pipeline stages we implement (they are properties of the
 * algorithms, not of a particular machine). The addressing rows come
 * from the implemented layouts' AddressingCost models, and a dynamic
 * measurement cross-checks the texture-lookup count per fragment on a
 * rendered scene.
 */

#include "bench/bench_util.hh"
#include "layout/blocked.hh"
#include "layout/nonblocked.hh"
#include "layout/williams.hh"

using namespace texcache;
using namespace texcache::benchutil;

int
main()
{
    TextTable fixed("Table 2.1: fragment generator computation costs "
                    "(per fragment unless noted)");
    fixed.header({"Phase", "Add/Sub", "Multiply", "Divide",
                  "TexAccesses"});
    fixed.row({"Per-triangle setup", "89", "64", "1", "-"});
    fixed.row({"Rasterization + shading", "11", "1", "-", "-"});
    fixed.row({"Level-of-detail (d)", "9", "9", "-", "-"});
    fixed.row({"Texel coords nearest (u,v,d)", "5+14", "5", "-", "-"});
    fixed.row({"Trilinear interpolation", "56", "28", "-", "8"});
    fixed.row({"Bilinear interpolation", "24", "12", "-", "4"});
    fixed.row({"Modulate fragment color", "8", "4", "-", "-"});
    fixed.print(std::cout);

    std::cout << "\n";

    TextTable addr("Texel address calculation per representation "
                   "(sections 5.2.1, 5.3.1, 6.2; per texel)");
    addr.header({"Representation", "Adds", "VarShifts", "ConstShifts",
                 "Masks", "MemAccesses/texel"});
    std::vector<LevelDims> dims;
    for (unsigned w = 64; w >= 1; w /= 2)
        dims.push_back({w, w});
    AddressSpace space;
    NonblockedLayout nb(dims, space);
    WilliamsLayout wl(dims, space);
    BlockedLayout bl(dims, space, 4, 4);
    PaddedBlockedLayout pl(dims, space, 4, 4, 4);
    Blocked6DLayout sl(dims, space, 4, 4, 32 * 1024);
    const TextureLayout *lays[] = {&wl, &nb, &bl, &pl, &sl};
    for (const TextureLayout *l : lays) {
        AddressingCost c = l->cost();
        addr.row({l->name(), std::to_string(c.adds),
                  std::to_string(c.shifts),
                  std::to_string(c.constShifts),
                  std::to_string(c.ands),
                  std::to_string(c.accessesPerTexel)});
    }
    addr.print(std::cout);

    // Dynamic cross-check on a real render: texel accesses/fragment.
    const RenderOutput &out = store().output(
        BenchScene::Goblet, sceneOrder(BenchScene::Goblet));
    double per_frag = static_cast<double>(out.stats.texelAccesses) /
                      out.stats.fragments;
    std::cout << "\nMeasured texture accesses per fragment (Goblet): "
              << fmtFixed(per_frag, 2)
              << " (8 for trilinear, 4 for bilinear fragments)\n";
    return 0;
}
