/** @file Tests for the virtual texturing subsystem (src/vt/). */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "core/experiment.hh"
#include "pipeline/renderer.hh"
#include "scene/benchmarks.hh"
#include "vt/vt_memory.hh"
#include "vt/vt_sampler.hh"
#include "vt/vt_stats.hh"

using namespace texcache;

namespace {

LayoutParams
testLayoutParams()
{
    LayoutParams p;
    p.kind = LayoutKind::Blocked;
    p.blockW = 4;
    p.blockH = 4;
    return p;
}

} // namespace

// ---------------------------------------------------------------- pool

TEST(PagePool, LruEvictsLeastRecentlyTouched)
{
    PagePool pool(PagePoolConfig{4096, 3});
    pool.insert(1);
    pool.insert(2);
    pool.insert(3);
    EXPECT_TRUE(pool.touch(1)); // 1 most recent; 2 now LRU
    pool.insert(4);             // evicts 2
    EXPECT_TRUE(pool.resident(1));
    EXPECT_FALSE(pool.resident(2));
    EXPECT_TRUE(pool.resident(3));
    EXPECT_TRUE(pool.resident(4));
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_EQ(pool.residentPages(), 3u);
}

TEST(PagePool, TouchCountsHitsAndMisses)
{
    PagePool pool(PagePoolConfig{4096, 2});
    EXPECT_FALSE(pool.touch(9));
    pool.insert(9);
    EXPECT_TRUE(pool.touch(9));
    EXPECT_EQ(pool.stats().lookups, 2u);
    EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(PagePool, PinnedPagesSurviveAnyPressure)
{
    PagePool pool(PagePoolConfig{4096, 4});
    pool.pin(1000);
    for (PageId p = 0; p < 100; ++p)
        pool.insert(p);
    EXPECT_TRUE(pool.resident(1000));
    EXPECT_LE(pool.residentPages(), 4u);
    EXPECT_EQ(pool.pinnedPages(), 1u);
}

TEST(PagePool, FullyPinnedPoolIsFatal)
{
    PagePool pool(PagePoolConfig{4096, 1});
    pool.pin(1);
    EXPECT_EXIT(pool.pin(2), ::testing::ExitedWithCode(1), "pinned");
    EXPECT_EXIT(pool.insert(3), ::testing::ExitedWithCode(1),
                "pinned");
}

// --------------------------------------------------------- fetch queue

TEST(FetchQueue, DedupNeverReissuesAnInFlightPage)
{
    FetchQueue q(FetchQueueConfig{4, 10}, DramConfig{}, 4096);
    EXPECT_EQ(q.request(5, 5 * 4096, 1), FetchResult::Issued);
    for (uint64_t now = 2; now < 12; ++now)
        EXPECT_EQ(q.request(5, 5 * 4096, now), FetchResult::Merged);
    EXPECT_EQ(q.stats().issued, 1u);
    EXPECT_EQ(q.stats().dedupHits, 10u);
    EXPECT_TRUE(q.inFlight(5));

    std::vector<PageId> done;
    q.drainAll([&](PageId p) { done.push_back(p); });
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0], 5u);
    EXPECT_FALSE(q.inFlight(5));

    // Once retired, the page may be fetched again (e.g. re-evicted).
    EXPECT_EQ(q.request(5, 5 * 4096, 100000), FetchResult::Issued);
}

TEST(FetchQueue, DropsBeyondOutstandingLimit)
{
    FetchQueue q(FetchQueueConfig{2, 10}, DramConfig{}, 4096);
    EXPECT_EQ(q.request(1, 1 * 4096, 0), FetchResult::Issued);
    EXPECT_EQ(q.request(2, 2 * 4096, 0), FetchResult::Issued);
    EXPECT_EQ(q.request(3, 3 * 4096, 0), FetchResult::Dropped);
    EXPECT_EQ(q.stats().drops, 1u);
    EXPECT_EQ(q.depth(), 2u);
}

TEST(FetchQueue, DataArrivesAfterLatencyNotBefore)
{
    FetchQueue q(FetchQueueConfig{4, 10}, DramConfig{}, 4096);
    q.request(1, 4096, 0);
    unsigned completed = 0;
    q.drain(1, [&](PageId) { ++completed; });
    EXPECT_EQ(completed, 0u); // still in flight one tick later
    q.drain(~0ULL - 1, [&](PageId) { ++completed; });
    EXPECT_EQ(completed, 1u);
    EXPECT_EQ(q.stats().completed, 1u);
}

TEST(FetchQueue, RandomizedMshrInvariant)
{
    // Property: against a mirror model, the queue never issues a page
    // already in flight, merges exactly when it is, and drops exactly
    // when the outstanding limit is reached.
    const unsigned kMax = 4;
    FetchQueue q(FetchQueueConfig{kMax, 16}, DramConfig{}, 4096);
    std::unordered_set<PageId> mirror;
    Rng rng(7);
    uint64_t now = 0;
    for (int i = 0; i < 20000; ++i) {
        now += rng.below(4);
        q.drain(now, [&](PageId p) { mirror.erase(p); });
        PageId page = rng.below(32);
        FetchResult r = q.request(page, page * 4096, now);
        if (mirror.count(page)) {
            EXPECT_EQ(r, FetchResult::Merged);
        } else if (mirror.size() >= kMax) {
            EXPECT_EQ(r, FetchResult::Dropped);
        } else {
            EXPECT_EQ(r, FetchResult::Issued);
            mirror.insert(page);
        }
    }
    EXPECT_EQ(q.stats().issued,
              q.stats().requests - q.stats().dedupHits -
                  q.stats().drops);
}

// ------------------------------------------------------------ vt memory

TEST(VtMemory, MissBecomesHitOnceTheFetchLands)
{
    VtConfig cfg;
    cfg.pageBytes = 4096;
    cfg.poolPages = 8;
    VirtualTextureMemory mem(cfg);
    EXPECT_EQ(mem.touch(0), VtAccess::Miss);
    EXPECT_EQ(mem.touch(8), VtAccess::Miss); // same page, still away
    EXPECT_EQ(mem.fetchQueue().stats().issued, 1u);
    EXPECT_EQ(mem.fetchQueue().stats().dedupHits, 1u);
    mem.settle();
    EXPECT_EQ(mem.touch(16), VtAccess::Hit);
    EXPECT_EQ(mem.pagesTouched(), 1u);
}

TEST(VtMemory, PrefaultIsResidencyWithoutTraffic)
{
    VtConfig cfg;
    cfg.pageBytes = 4096;
    cfg.poolPages = 16;
    VirtualTextureMemory mem(cfg);
    mem.prefaultRange(0, 16 * 4096);
    EXPECT_EQ(mem.fetchQueue().stats().issued, 0u);
    for (Addr a = 0; a < 16 * 4096; a += 4096)
        EXPECT_EQ(mem.touch(a), VtAccess::Hit);
}

TEST(VtMemory, PinRangeCoversPartialPages)
{
    VtConfig cfg;
    cfg.pageBytes = 4096;
    cfg.poolPages = 8;
    VirtualTextureMemory mem(cfg);
    mem.pinRange(4000, 200); // straddles pages 0 and 1
    EXPECT_TRUE(mem.resident(0));
    EXPECT_TRUE(mem.resident(4200));
    EXPECT_EQ(mem.pool().pinnedPages(), 2u);
}

// ----------------------------------------------- render-coupled checks

TEST(VtRender, WarmPoolIsBitIdenticalToFullyResidentBaseline)
{
    Scene scene = makeQuadTestScene(256, 96);
    RenderOutput base = render(scene, RasterOrder::horizontal());

    SceneLayout layout(scene, testLayoutParams());
    VtConfig cfg;
    cfg.pageBytes = 16 * 1024;
    cfg.poolPages = layout.totalFootprint() / cfg.pageBytes + 2;
    VirtualTextureMemory mem(cfg);
    VtSampler vt(layout, mem);
    vt.prefaultAll();

    RenderOptions opts;
    opts.vtResolve = vt.hook();
    RenderOutput out = render(scene, RasterOrder::horizontal(), opts);

    // No page ever missed, so nothing degraded...
    EXPECT_EQ(vt.degradation().degraded, 0u);
    EXPECT_EQ(mem.fetchQueue().stats().issued, 0u);
    EXPECT_GT(mem.pool().stats().hits, 0u);

    // ...the frame is bit-identical...
    ASSERT_EQ(out.framebuffer.width(), base.framebuffer.width());
    ASSERT_EQ(out.framebuffer.height(), base.framebuffer.height());
    for (unsigned y = 0; y < base.framebuffer.height(); ++y) {
        for (unsigned x = 0; x < base.framebuffer.width(); ++x) {
            Rgba8 a = base.framebuffer.texel(x, y);
            Rgba8 b = out.framebuffer.texel(x, y);
            ASSERT_TRUE(a.r == b.r && a.g == b.g && a.b == b.b &&
                        a.a == b.a)
                << "pixel (" << x << "," << y << ") diverged";
        }
    }

    // ...and so is the texel trace, hence any cache's miss counts.
    ASSERT_EQ(out.trace.size(), base.trace.size());
    for (size_t i = 0; i < base.trace.size(); ++i)
        ASSERT_EQ(out.trace[i].pack(), base.trace[i].pack());
    CacheStats a = runCache(base.trace, layout, CacheConfig{});
    CacheStats b = runCache(out.trace, layout, CacheConfig{});
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.coldMisses, b.coldMisses);
}

TEST(VtRender, ConstrainedPoolDegradesDeterministically)
{
    Scene scene = makeQuadTestScene(512, 64); // heavy minification

    auto run = [&](DegradationStats &deg, FetchQueueStats &fq,
                   PagePoolStats &pool) {
        SceneLayout layout(scene, testLayoutParams());
        VtConfig cfg;
        cfg.pageBytes = 4096;
        cfg.poolPages = 16;
        cfg.maxInFlight = 8;
        VirtualTextureMemory mem(cfg);
        VtSampler vt(layout, mem);
        RenderOptions opts;
        opts.captureTrace = false;
        opts.vtResolve = vt.hook();
        render(scene, RasterOrder::horizontal(), opts);
        deg = vt.degradation();
        fq = mem.fetchQueue().stats();
        pool = mem.pool().stats();
    };

    DegradationStats d1, d2;
    FetchQueueStats f1, f2;
    PagePoolStats p1, p2;
    run(d1, f1, p1);
    run(d2, f2, p2);

    // The pool is far too small: the histogram must be populated.
    EXPECT_GT(d1.degraded, 0u);
    EXPECT_FALSE(d1.histogram.empty());
    EXPECT_GT(d1.fragments, d1.degraded); // but not everything degrades

    // Deterministic across runs: identical histogram and counters.
    EXPECT_EQ(d1.fragments, d2.fragments);
    EXPECT_EQ(d1.degraded, d2.degraded);
    ASSERT_EQ(d1.histogram.size(), d2.histogram.size());
    for (size_t i = 0; i < d1.histogram.size(); ++i)
        EXPECT_EQ(d1.histogram[i], d2.histogram[i]);
    EXPECT_EQ(f1.issued, f2.issued);
    EXPECT_EQ(f1.dedupHits, f2.dedupHits);
    EXPECT_EQ(f1.drops, f2.drops);
    EXPECT_EQ(p1.evictions, p2.evictions);

    // MSHR accounting: every request either issued, merged or dropped.
    EXPECT_EQ(f1.issued + f1.dedupHits + f1.drops, f1.requests);
    EXPECT_GT(f1.dedupHits, 0u);
}

TEST(VtRender, CoarsestLevelsArePinnedPerTexture)
{
    Scene scene = makeQuadTestScene(64, 32);
    SceneLayout layout(scene, testLayoutParams());
    VtConfig cfg;
    cfg.pageBytes = 4096;
    cfg.poolPages = 4;
    VirtualTextureMemory mem(cfg);
    VtSampler vt(layout, mem);
    EXPECT_GE(mem.pool().pinnedPages(), scene.textures.size());
}

TEST(VtRender, StatsTablesCoverTheRun)
{
    Scene scene = makeQuadTestScene(256, 48);
    SceneLayout layout(scene, testLayoutParams());
    VtConfig cfg;
    cfg.pageBytes = 4096;
    cfg.poolPages = 8;
    cfg.sampleInterval = 64;
    VirtualTextureMemory mem(cfg);
    VtSampler vt(layout, mem);
    RenderOptions opts;
    opts.captureTrace = false;
    opts.vtResolve = vt.hook();
    render(scene, RasterOrder::horizontal(), opts);

    EXPECT_FALSE(mem.residencySamples().empty());
    EXPECT_GT(vtAvgResidentPages(mem), 0.0);
    // The tables render without dying and carry the headline rows.
    std::ostringstream os;
    vtSummaryTable("t", mem, &vt.degradation()).print(os);
    vtDegradationTable("h", vt.degradation()).print(os);
    EXPECT_NE(os.str().find("Pool hit rate"), std::string::npos);
}

// --------------------------------------------------- cache integration

TEST(VtHierarchy, BackendSeesExactlyTheMemoryFills)
{
    VtConfig cfg;
    cfg.pageBytes = 4096;
    cfg.poolPages = 64;
    VirtualTextureMemory mem(cfg);

    TwoLevelCache h(1, CacheConfig{1024, 32, 2},
                    CacheConfig{8 * 1024, 32, 4});
    h.setMemoryBackend([&](Addr a) { mem.touch(a); });

    Rng rng(11);
    uint64_t cursor = 0;
    for (int i = 0; i < 50000; ++i) {
        cursor = (cursor + rng.below(512)) & 0xfffff;
        h.access(0, cursor);
    }
    EXPECT_EQ(mem.pool().stats().lookups, h.memoryFills());
    EXPECT_GT(mem.pool().stats().lookups, 0u);
    // The pool filtered the fills further: some were already resident.
    EXPECT_GT(mem.pool().stats().hits, 0u);
}
