/**
 * @file
 * Single-pass multi-configuration cache simulation.
 *
 * Every figure of the paper is a sweep: one address stream replayed
 * under many cache organizations. Replaying once per organization pays
 * the trace walk and the address mapping N times. Two collapses remove
 * almost all of that (DESIGN.md section 8):
 *
 *  - FaCapacitySweep: Mattson's inclusion property - an LRU stack of
 *    capacity C always holds a superset of the lines a smaller LRU
 *    stack holds - means one stack-distance pass yields the *exact*
 *    miss count of a fully associative LRU cache at every capacity
 *    simultaneously.
 *
 *  - GroupSim: set-associative caches do not obey inclusion across
 *    set counts (a different index function reshuffles which lines
 *    conflict), so each organization still needs its own simulator
 *    state; but all of them can consume one shared pass over the
 *    stream, paying trace decode + layout mapping once for the whole
 *    (size, line) family.
 *
 * Both consume plain address spans so they stay below core/ in the
 * layering; core/experiment.cc glues them to traces and layouts.
 */

#ifndef TEXCACHE_CACHE_MULTI_SIM_HH
#define TEXCACHE_CACHE_MULTI_SIM_HH

#include <cstddef>
#include <vector>

#include "cache/cache_sim.hh"
#include "cache/stack_dist.hh"

namespace texcache {

/**
 * Exact fully-associative LRU statistics for an arbitrary set of
 * capacities from one pass over the address stream.
 */
class FaCapacitySweep
{
  public:
    /** @p sizes are capacities in bytes; any order, need not be sorted. */
    FaCapacitySweep(unsigned line_bytes, std::vector<uint64_t> sizes);

    void access(Addr a) { prof_.access(a); }

    /** Feed a contiguous span of addresses (the mapRange fast path). */
    void
    accessRange(const Addr *a, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            prof_.access(a[i]);
    }

    /**
     * Statistics per requested capacity, aligned with the constructor's
     * size list. Identical to what a FullyAssocLru of that capacity
     * would have returned after the same stream.
     */
    std::vector<CacheStats> stats() const;

    /** The underlying profiler (for working-set analysis). */
    const StackDistProfiler &profiler() const { return prof_; }

  private:
    std::vector<uint64_t> sizes_;
    StackDistProfiler prof_;
};

/**
 * An arbitrary group of cache organizations driven by one shared
 * address stream - one trace decode and one layout mapping amortized
 * over every member.
 */
class GroupSim
{
  public:
    explicit GroupSim(const std::vector<CacheConfig> &configs);

    void
    access(Addr a)
    {
        for (CacheSim &sim : sims_)
            sim.access(a);
    }

    /** Feed a contiguous span of addresses to every member. */
    void
    accessRange(const Addr *a, size_t n)
    {
        // Iterate sims outermost: each simulator's tables stay hot in
        // cache while it consumes the whole span.
        for (CacheSim &sim : sims_)
            for (size_t i = 0; i < n; ++i)
                sim.access(a[i]);
    }

    /** Statistics aligned with the constructor's config list. */
    std::vector<CacheStats> stats() const;

  private:
    std::vector<CacheSim> sims_;
};

} // namespace texcache

#endif // TEXCACHE_CACHE_MULTI_SIM_HH
