/** @file Unit tests for the image module (Image, PPM, procedural). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "img/image.hh"
#include "img/procedural.hh"

using namespace texcache;

TEST(Image, DimensionsAndFill)
{
    Image img(4, 3, Rgba8{1, 2, 3, 4});
    EXPECT_EQ(img.width(), 4u);
    EXPECT_EQ(img.height(), 3u);
    EXPECT_FALSE(img.empty());
    EXPECT_EQ(img.at(3, 2), (Rgba8{1, 2, 3, 4}));
}

TEST(Image, AtIsRowMajor)
{
    Image img(3, 2);
    img.at(2, 0) = {10, 0, 0, 255};
    img.at(0, 1) = {20, 0, 0, 255};
    EXPECT_EQ(img.pixels()[2].r, 10);
    EXPECT_EQ(img.pixels()[3].r, 20);
}

TEST(Image, OutOfBoundsPanics)
{
    Image img(2, 2);
    EXPECT_DEATH(img.at(2, 0), "out of");
    EXPECT_DEATH(img.at(0, 2), "out of");
}

TEST(Image, PpmRoundTrip)
{
    Image img(2, 2);
    img.at(0, 0) = {255, 0, 0, 255};
    img.at(1, 0) = {0, 255, 0, 255};
    img.at(0, 1) = {0, 0, 255, 255};
    img.at(1, 1) = {9, 8, 7, 255};

    std::string path = ::testing::TempDir() + "/texcache_test.ppm";
    img.writePpm(path);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::string magic, dims;
    std::getline(in, magic);
    EXPECT_EQ(magic, "P6");
    std::getline(in, dims);
    EXPECT_EQ(dims, "2 2");
    std::string maxval;
    std::getline(in, maxval);
    EXPECT_EQ(maxval, "255");
    char px[12];
    in.read(px, 12);
    EXPECT_EQ(static_cast<uint8_t>(px[0]), 255);
    EXPECT_EQ(static_cast<uint8_t>(px[1]), 0);
    EXPECT_EQ(static_cast<uint8_t>(px[9]), 9);
    std::remove(path.c_str());
}

TEST(Procedural, CheckerAlternates)
{
    Rgba8 a{255, 255, 255, 255}, b{0, 0, 0, 255};
    Image img = makeChecker(8, 4, a, b);
    // 4 cells of 2 pixels each; (0,0) is in cell (0,0) -> color b.
    EXPECT_EQ(img.at(0, 0), b);
    EXPECT_EQ(img.at(2, 0), a);
    EXPECT_EQ(img.at(0, 2), a);
    EXPECT_EQ(img.at(2, 2), b);
}

TEST(Procedural, NoiseIsDeterministicAndBounded)
{
    for (int i = 0; i < 100; ++i) {
        float x = i * 0.37f, y = i * 0.11f;
        float v1 = valueNoise(x, y, 4, 7);
        float v2 = valueNoise(x, y, 4, 7);
        EXPECT_EQ(v1, v2);
        EXPECT_GE(v1, 0.0f);
        EXPECT_LE(v1, 1.0f);
    }
}

TEST(Procedural, NoiseSeedMatters)
{
    int diff = 0;
    for (int i = 0; i < 50; ++i) {
        float x = i * 0.73f, y = i * 0.19f;
        diff += valueNoise(x, y, 3, 1) != valueNoise(x, y, 3, 2);
    }
    EXPECT_GT(diff, 40);
}

TEST(Procedural, GeneratorsProduceRequestedSizes)
{
    EXPECT_EQ(makeSatellite(64, 1).width(), 64u);
    EXPECT_EQ(makeBricks(32, 16, 1).width(), 32u);
    EXPECT_EQ(makeBricks(32, 16, 1).height(), 16u);
    EXPECT_EQ(makeWood(64, 32, 1).height(), 32u);
    EXPECT_EQ(makeMarble(64, 1).width(), 64u);
}

TEST(Procedural, GeneratorsAreDeterministic)
{
    Image a = makeSatellite(32, 9);
    Image b = makeSatellite(32, 9);
    for (unsigned y = 0; y < 32; ++y)
        for (unsigned x = 0; x < 32; ++x)
            ASSERT_EQ(a.at(x, y), b.at(x, y));
}
