/** @file
 * Randomized property tests for triangle setup and rasterization:
 * seeded fuzz over triangle shapes, checking coverage invariants that
 * must hold for *any* input.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "raster/rasterizer.hh"

using namespace texcache;

namespace {

ScreenVertex
randomVertex(Rng &rng, float span)
{
    ScreenVertex v;
    v.x = rng.uniform(-span * 0.2f, span * 1.2f);
    v.y = rng.uniform(-span * 0.2f, span * 1.2f);
    v.z = rng.uniform();
    v.invW = 1.0f / rng.uniform(0.5f, 8.0f);
    v.uOverW = rng.uniform() * v.invW;
    v.vOverW = rng.uniform() * v.invW;
    v.shade = rng.uniform();
    return v;
}

} // namespace

class RasterFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RasterFuzz, FragmentsAreInBoundsAndFinite)
{
    Rng rng(GetParam());
    for (int t = 0; t < 200; ++t) {
        TriangleSetup tri(randomVertex(rng, 64), randomVertex(rng, 64),
                          randomVertex(rng, 64));
        rasterizeTriangle(tri, 64, 64, RasterOrder::horizontal(),
                          [&](const Fragment &f) {
                              ASSERT_GE(f.x, 0);
                              ASSERT_LT(f.x, 64);
                              ASSERT_GE(f.y, 0);
                              ASSERT_LT(f.y, 64);
                              ASSERT_TRUE(std::isfinite(f.u));
                              ASSERT_TRUE(std::isfinite(f.v));
                              ASSERT_TRUE(std::isfinite(f.dudx));
                              ASSERT_TRUE(std::isfinite(f.dvdy));
                          });
    }
}

TEST_P(RasterFuzz, AllTraversalOrdersAgreeOnCoverage)
{
    Rng rng(GetParam() + 1000);
    for (int t = 0; t < 50; ++t) {
        TriangleSetup tri(randomVertex(rng, 48), randomVertex(rng, 48),
                          randomVertex(rng, 48));
        std::set<std::pair<int, int>> ref;
        rasterizeTriangle(tri, 48, 48, RasterOrder::horizontal(),
                          [&](const Fragment &f) {
                              ref.insert({f.x, f.y});
                          });
        for (RasterOrder o :
             {RasterOrder::vertical(), RasterOrder::tiledOrder(8, 8),
              RasterOrder::tiledOrder(4, 16,
                                      ScanDirection::Vertical),
              RasterOrder::hilbertOrder()}) {
            std::set<std::pair<int, int>> got;
            size_t visits = 0;
            rasterizeTriangle(tri, 48, 48, o, [&](const Fragment &f) {
                got.insert({f.x, f.y});
                ++visits;
            });
            ASSERT_EQ(got, ref) << o.str() << " triangle " << t;
            ASSERT_EQ(visits, got.size()) << "duplicate fragments";
        }
    }
}

TEST_P(RasterFuzz, MeshPartitionCoversEachPixelOnce)
{
    // Split the screen rectangle at a random interior point into 4
    // triangles; every interior pixel must be covered exactly once
    // (the fill-rule watertightness property that keeps fragment
    // counts exact in the renderer).
    Rng rng(GetParam() + 77);
    for (int t = 0; t < 40; ++t) {
        float cx = rng.uniform(8.0f, 40.0f);
        float cy = rng.uniform(8.0f, 40.0f);
        ScreenVertex c;
        c.x = cx;
        c.y = cy;
        c.invW = 1.0f;
        auto corner = [](float x, float y) {
            ScreenVertex v;
            v.x = x;
            v.y = y;
            v.invW = 1.0f;
            return v;
        };
        ScreenVertex p0 = corner(2, 2), p1 = corner(46, 2),
                     p2 = corner(46, 46), p3 = corner(2, 46);
        TriangleSetup tris[4] = {{c, p0, p1},
                                 {c, p1, p2},
                                 {c, p2, p3},
                                 {c, p3, p0}};
        Fragment f;
        for (int y = 3; y < 45; ++y) {
            for (int x = 3; x < 45; ++x) {
                int hits = 0;
                for (auto &tr : tris)
                    hits += tr.shade(x, y, f);
                ASSERT_EQ(hits, 1)
                    << "(" << x << "," << y << ") center (" << cx
                    << "," << cy << ")";
            }
        }
    }
}

TEST_P(RasterFuzz, CoverageMatchesSignedArea)
{
    // Over many random triangles, total covered pixels approximate
    // total geometric area (within a perimeter-proportional error).
    Rng rng(GetParam() + 31);
    double total_area = 0.0;
    uint64_t total_covered = 0;
    double total_perimeter = 0.0;
    for (int t = 0; t < 100; ++t) {
        ScreenVertex a = randomVertex(rng, 96);
        ScreenVertex b = randomVertex(rng, 96);
        ScreenVertex c = randomVertex(rng, 96);
        // Keep fully on screen to make the area bookkeeping exact.
        auto clampv = [](ScreenVertex &v) {
            v.x = std::min(std::max(v.x, 1.0f), 95.0f);
            v.y = std::min(std::max(v.y, 1.0f), 95.0f);
        };
        clampv(a);
        clampv(b);
        clampv(c);
        TriangleSetup tri(a, b, c);
        if (!tri.valid())
            continue;
        total_area += tri.area2() / 2.0;
        auto dist = [](const ScreenVertex &p, const ScreenVertex &q) {
            return std::sqrt((p.x - q.x) * (p.x - q.x) +
                             (p.y - q.y) * (p.y - q.y));
        };
        total_perimeter += dist(a, b) + dist(b, c) + dist(c, a);
        rasterizeTriangle(tri, 96, 96, RasterOrder::horizontal(),
                          [&](const Fragment &) { ++total_covered; });
    }
    EXPECT_NEAR(static_cast<double>(total_covered), total_area,
                total_perimeter + 64.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RasterFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 17ull,
                                           2024ull));
