/**
 * @file
 * Shared glue for the figure/table reproduction binaries.
 *
 * Every bench binary renders scenes through a process-local TraceStore,
 * replays the texel trace under the layouts/caches its figure sweeps,
 * and prints the same rows or series the paper reports. Absolute miss
 * rates depend on our synthetic stand-in scenes; the *shapes* (who
 * wins, crossover points) are the reproduction targets recorded in
 * EXPERIMENTS.md.
 */

#ifndef TEXCACHE_BENCH_BENCH_UTIL_HH
#define TEXCACHE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/experiment.hh"

namespace texcache {
namespace benchutil {

/** The square-ish block dimensions whose storage equals a line size. */
inline LayoutParams
blockedForLine(unsigned line_bytes, LayoutKind kind = LayoutKind::Blocked)
{
    LayoutParams p;
    p.kind = kind;
    switch (line_bytes) {
      case 16:
        p.blockW = 2;
        p.blockH = 2;
        break;
      case 32:
        p.blockW = 4;
        p.blockH = 2;
        break;
      case 64:
        p.blockW = 4;
        p.blockH = 4;
        break;
      case 128:
        p.blockW = 8;
        p.blockH = 4;
        break;
      case 256:
        p.blockW = 8;
        p.blockH = 8;
        break;
      case 512:
        p.blockW = 16;
        p.blockH = 8;
        break;
      default:
        fatal("no block shape for line size ", line_bytes);
    }
    return p;
}

/** The paper's per-scene scan direction, optionally tiled. */
inline RasterOrder
sceneOrder(BenchScene s, bool tiled = false, unsigned tile = 8)
{
    RasterOrder order;
    order.dir = paperScanDirection(s);
    if (tiled) {
        order.tiled = true;
        order.tileW = tile;
        order.tileH = tile;
    }
    return order;
}

/** Process-wide trace store shared by one bench binary. */
inline TraceStore &
store()
{
    static TraceStore s;
    return s;
}

} // namespace benchutil
} // namespace texcache

#endif // TEXCACHE_BENCH_BENCH_UTIL_HH
