/** @file
 * Differential tests: the span rasterizer must produce bit-identical
 * fragment sets (and attributes) to the bounding-box edge-function
 * rasterizer, for any triangle.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hh"
#include "raster/span_rasterizer.hh"

using namespace texcache;

namespace {

ScreenVertex
sv(float x, float y, float w = 1.0f, float u = 0.0f, float v = 0.0f)
{
    ScreenVertex r;
    r.x = x;
    r.y = y;
    r.z = 0.5f;
    r.invW = 1.0f / w;
    r.uOverW = u / w;
    r.vOverW = v / w;
    return r;
}

ScreenVertex
randomVertex(Rng &rng, float span)
{
    ScreenVertex v;
    v.x = rng.uniform(-span * 0.3f, span * 1.3f);
    v.y = rng.uniform(-span * 0.3f, span * 1.3f);
    v.z = rng.uniform();
    v.invW = 1.0f / rng.uniform(0.5f, 6.0f);
    v.uOverW = rng.uniform() * v.invW;
    v.vOverW = rng.uniform() * v.invW;
    v.shade = rng.uniform();
    return v;
}

using FragMap = std::map<std::pair<int, int>, Fragment>;

FragMap
collectBbox(const TriangleSetup &tri, unsigned w, unsigned h)
{
    FragMap m;
    rasterizeTriangle(tri, w, h, RasterOrder::horizontal(),
                      [&](const Fragment &f) {
                          m[{f.x, f.y}] = f;
                      });
    return m;
}

FragMap
collectSpans(const TriangleSetup &tri, unsigned w, unsigned h,
             ScanDirection dir)
{
    FragMap m;
    rasterizeTriangleSpans(tri, w, h, dir, [&](const Fragment &f) {
        auto [it, fresh] = m.insert({{f.x, f.y}, f});
        EXPECT_TRUE(fresh) << "duplicate fragment (" << f.x << ","
                           << f.y << ")";
    });
    return m;
}

} // namespace

TEST(SpanRasterizer, SimpleTriangleMatches)
{
    TriangleSetup tri(sv(2, 3), sv(40, 7), sv(11, 37));
    FragMap a = collectBbox(tri, 64, 64);
    FragMap b = collectSpans(tri, 64, 64, ScanDirection::Horizontal);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a.size(), b.size());
    for (const auto &[k, f] : a)
        ASSERT_TRUE(b.count(k)) << k.first << "," << k.second;
}

TEST(SpanRasterizer, AttributesMatchExactly)
{
    TriangleSetup tri(sv(0, 0, 1, 0, 0), sv(60, 4, 3, 1, 0),
                      sv(8, 60, 2, 0, 1));
    FragMap a = collectBbox(tri, 64, 64);
    FragMap b = collectSpans(tri, 64, 64, ScanDirection::Horizontal);
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[k, fa] : a) {
        const Fragment &fb = b.at(k);
        // Same formulas evaluated at the same pixel: bit-identical.
        EXPECT_EQ(fa.u, fb.u);
        EXPECT_EQ(fa.v, fb.v);
        EXPECT_EQ(fa.depth, fb.depth);
        EXPECT_EQ(fa.dudx, fb.dudx);
    }
}

TEST(SpanRasterizer, SpanOnScanlineExposesInterval)
{
    TriangleSetup tri(sv(10, 10), sv(50, 10), sv(10, 50));
    int lo = 0, hi = 63;
    ASSERT_TRUE(spanOnScanline(tri, 12, lo, hi));
    EXPECT_GE(lo, 10);
    EXPECT_LE(hi, 50);
    // Each end is covered; one beyond each end is not.
    Fragment f;
    EXPECT_TRUE(tri.shade(lo, 12, f));
    EXPECT_TRUE(tri.shade(hi, 12, f));
    EXPECT_FALSE(tri.shade(lo - 1, 12, f));
    EXPECT_FALSE(tri.shade(hi + 1, 12, f));

    lo = 0;
    hi = 63;
    EXPECT_FALSE(spanOnScanline(tri, 60, lo, hi)); // below the triangle
}

TEST(SpanRasterizer, DegenerateEmitsNothing)
{
    TriangleSetup tri(sv(0, 0), sv(10, 10), sv(20, 20));
    unsigned n = 0;
    rasterizeTriangleSpans(tri, 64, 64, ScanDirection::Horizontal,
                           [&](const Fragment &) { ++n; });
    EXPECT_EQ(n, 0u);
}

class SpanFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SpanFuzz, MatchesBboxRasterizerOnRandomTriangles)
{
    Rng rng(GetParam());
    for (int t = 0; t < 300; ++t) {
        TriangleSetup tri(randomVertex(rng, 80), randomVertex(rng, 80),
                          randomVertex(rng, 80));
        FragMap a = collectBbox(tri, 80, 80);
        FragMap b =
            collectSpans(tri, 80, 80, ScanDirection::Horizontal);
        ASSERT_EQ(a.size(), b.size()) << "triangle " << t;
        for (const auto &[k, f] : a)
            ASSERT_TRUE(b.count(k))
                << "triangle " << t << " pixel " << k.first << ","
                << k.second;
        FragMap c = collectSpans(tri, 80, 80, ScanDirection::Vertical);
        ASSERT_EQ(a.size(), c.size()) << "vertical, triangle " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanFuzz,
                         ::testing::Values(11ull, 22ull, 33ull));
