/**
 * @file
 * Procedural texture-content generators.
 *
 * The paper's benchmark textures are photographs (satellite imagery,
 * building facades, wood grain). Texel values never affect the address
 * stream, but visually distinct content makes the rendered validation
 * images meaningful, so each generator imitates the look of its scene's
 * texture class.
 */

#ifndef TEXCACHE_IMG_PROCEDURAL_HH
#define TEXCACHE_IMG_PROCEDURAL_HH

#include <cstdint>

#include "img/image.hh"

namespace texcache {

/** 2-D value-noise in [0,1] with @p octaves octaves (deterministic). */
float valueNoise(float x, float y, unsigned octaves, uint32_t seed);

/** A checkerboard of @p cells x @p cells squares in two colors. */
Image makeChecker(unsigned size, unsigned cells, Rgba8 a, Rgba8 b);

/** Fractal-noise terrain imagery (greens/browns), satellite-photo-like. */
Image makeSatellite(unsigned size, uint32_t seed);

/** Brick-wall facade texture (mortar grid over noisy brick color). */
Image makeBricks(unsigned width, unsigned height, uint32_t seed);

/** Wood-grain texture (concentric noisy rings), guitar-body-like. */
Image makeWood(unsigned width, unsigned height, uint32_t seed);

/** Marble-like texture used for the goblet surface. */
Image makeMarble(unsigned size, uint32_t seed);

} // namespace texcache

#endif // TEXCACHE_IMG_PROCEDURAL_HH
