/**
 * @file
 * The Town benchmark: a street of brick buildings with small facade
 * textures that appear *upright* on screen (paper Fig 4.2).
 *
 * Published characteristics targeted (Table 4.1): 1280x1024, ~5317
 * triangles, 51 textures totalling ~4.7 MB, texture repetition factor
 * ~2.9 (facades tile a small brick image). Because the textures are
 * upright, rasterizing this scene vertically makes texel accesses run
 * perpendicular to the rows of the nonblocked representation - the
 * paper's worst case (Fig 5.2(b)).
 */

#include "img/procedural.hh"
#include "scene/benchmarks.hh"
#include "scene/mesh_util.hh"

#include "common/rng.hh"

namespace texcache {

namespace {

constexpr unsigned kBuildings = 26;     // 13 per street side
constexpr unsigned kFacadeTextures = 48;
constexpr float kUvRepeat = 2.0f;       // facade tiling factor
constexpr uint16_t kRoofTex = 48;
constexpr uint16_t kRoadTex = 49;
constexpr uint16_t kSignTex = 50;

} // namespace

Scene
makeTownScene()
{
    Scene scene;
    scene.name = "Town";
    scene.screenW = 1280;
    scene.screenH = 1024;

    // 48 facade brick variants + roof + sign at 128x128, road at
    // 256x256: ~4.7 MB of mip-mapped storage (paper: 4.7 MB).
    for (unsigned i = 0; i < kFacadeTextures; ++i)
        scene.textures.emplace_back(makeBricks(128, 128, 500u + i));
    scene.textures.emplace_back(
        makeChecker(128, 16, Rgba8{70, 60, 55, 255},
                    Rgba8{90, 80, 70, 255})); // roof
    scene.textures.emplace_back(makeBricks(256, 256, 999u)); // road
    scene.textures.emplace_back(
        makeChecker(128, 4, Rgba8{220, 40, 40, 255},
                    Rgba8{240, 230, 200, 255})); // sign

    Vec3 light{0.5f, -1.0f, 0.2f};
    Rng rng(4242);

    // Road plane along +z; 10 x 11 patch = 220 triangles.
    addQuadPatch(scene, kRoadTex, Vec3{-60, 0, -20}, Vec3{60, 0, -20},
                 Vec3{60, 0, 420}, Vec3{-60, 0, 420}, Vec2{0, 0},
                 Vec2{2, 8}, 10, 11, light);

    // Buildings: 13 per side. 26 * (2*96 + 2) = 5044 triangles.
    for (unsigned b = 0; b < kBuildings; ++b) {
        bool left = (b & 1) == 0;
        unsigned slot = b / 2;
        float zc = 18.0f + 30.0f * static_cast<float>(slot);
        float half_w = 8.0f + rng.uniform() * 3.0f;  // half width (x)
        float half_d = 8.0f + rng.uniform() * 3.0f;  // half depth (z)
        float h = 18.0f + rng.uniform() * 24.0f;     // height
        float xc = left ? -(13.0f + half_w) : (13.0f + half_w);

        uint16_t tex = static_cast<uint16_t>(b % kFacadeTextures);

        float x0 = xc - half_w, x1 = xc + half_w;
        float z0 = zc - half_d, z1 = zc + half_d;
        Vec2 uv0{0, 0}, uv1{kUvRepeat, kUvRepeat};

        // Only the two camera-facing facades are modelled (the demo
        // scenes texture flat surfaces, and walls facing away would be
        // backface-culled by GL anyway): the wall toward the street and
        // the wall toward the camera, each subdivided 8 x 6, plus a
        // 2-triangle roof. Facade v runs up the wall so the texture
        // stands upright on screen.
        addQuadPatch(scene, tex, Vec3{x0, 0, z0}, Vec3{x1, 0, z0},
                     Vec3{x1, h, z0}, Vec3{x0, h, z0}, uv0, uv1, 8, 6,
                     light); // front (-z, toward camera)
        if (left) {
            addQuadPatch(scene, tex, Vec3{x1, 0, z0}, Vec3{x1, 0, z1},
                         Vec3{x1, h, z1}, Vec3{x1, h, z0}, uv0, uv1, 8,
                         6, light); // right (+x, toward street)
        } else {
            addQuadPatch(scene, tex, Vec3{x0, 0, z1}, Vec3{x0, 0, z0},
                         Vec3{x0, h, z0}, Vec3{x0, h, z1}, uv0, uv1, 8,
                         6, light); // left (-x, toward street)
        }
        addQuadPatch(scene, kRoofTex, Vec3{x0, h, z0}, Vec3{x1, h, z0},
                     Vec3{x1, h, z1}, Vec3{x0, h, z1}, Vec2{0, 0},
                     Vec2{1, 1}, 1, 1, light); // roof
    }

    // A billboard sign at the end of the street (uses the 51st
    // texture): 2 triangles. Total 5318 (paper: 5317).
    addQuadPatch(scene, kSignTex, Vec3{-8, 6, 400}, Vec3{8, 6, 400},
                 Vec3{8, 16, 400}, Vec3{-8, 16, 400}, Vec2{0, 0},
                 Vec2{1, 1}, 1, 1, light);

    // Street-level camera looking down the road; facades upright.
    scene.view = Mat4::lookAt(Vec3{0.0f, 9.0f, -14.0f},
                              Vec3{0.0f, 8.5f, 120.0f}, Vec3{0, 1, 0});
    scene.proj = Mat4::perspective(/*fovy=*/0.95f,
                                   /*aspect=*/1280.0f / 1024.0f,
                                   /*near=*/1.0f, /*far=*/800.0f);
    return scene;
}

} // namespace texcache
