/**
 * @file
 * Re-grouping a texel trace into per-fragment filter footprints.
 *
 * The trace is a flat record stream, but several models operate per
 * fragment: the banked-cache model reads 2x2 quads per cycle
 * (section 7.1.2) and the prefetch timing model advances fragment by
 * fragment (section 7.1.1). Records were appended as 4 bilinear touches
 * or 4 trilinear-lower + 4 trilinear-upper touches, so fragments can be
 * reconstructed exactly from the kind tags.
 */

#ifndef TEXCACHE_TRACE_FRAGMENT_ITER_HH
#define TEXCACHE_TRACE_FRAGMENT_ITER_HH

#include "trace/texel_trace.hh"

namespace texcache {

/** One fragment's texel touches (1/4/8 by filter kind). */
struct FragmentTouches
{
    TexelRecord recs[8];
    unsigned count = 0;

    bool
    trilinear() const
    {
        return count == 8;
    }
};

/**
 * Visit the trace fragment by fragment.
 *
 * @param fn invoked with a FragmentTouches per textured fragment.
 */
template <typename Fn>
void
forEachFragment(const TexelTrace &trace, Fn &&fn)
{
    FragmentTouches cur;
    size_t n = trace.size();
    size_t i = 0;
    while (i < n) {
        TexelRecord first = trace[i];
        unsigned take = first.kind == TouchKind::Nearest
                            ? 1
                            : (first.kind == TouchKind::Bilinear ? 4
                                                                 : 8);
        panic_if(i + take > n, "truncated fragment at record ", i);
        cur.count = take;
        for (unsigned k = 0; k < take; ++k)
            cur.recs[k] = trace[i + k];
        fn(cur);
        i += take;
    }
}

} // namespace texcache

#endif // TEXCACHE_TRACE_FRAGMENT_ITER_HH
