/**
 * @file
 * The viewport transform shared by both render paths.
 *
 * Defined once (in renderer.cc) so the serial reference renderer and
 * the tile engine run the identical compiled instance - the float
 * expressions must not be duplicated per path, or compiler expression
 * rearrangement could break the byte-identity contract between them.
 */

#ifndef TEXCACHE_PIPELINE_VIEWPORT_HH
#define TEXCACHE_PIPELINE_VIEWPORT_HH

#include "pipeline/clip.hh"
#include "raster/raster_types.hh"

namespace texcache {

/** Clip-space -> window-space with perspective-correct interpolants. */
ScreenVertex toScreenVertex(const ClipVertex &cv, unsigned screen_w,
                            unsigned screen_h);

} // namespace texcache

#endif // TEXCACHE_PIPELINE_VIEWPORT_HH
