#include "core/shard_replay.hh"

#include <map>
#include <numeric>
#include <utility>

#include "common/logging.hh"
#include "core/sweep.hh"
#include "perf/perf_counters.hh"

namespace texcache {

unsigned
resolveShards(unsigned shards)
{
    return shards ? shards : Sweep::threadCount();
}

namespace {

/** Chunk range of segment @p seg of @p segs (contiguous, exhaustive). */
std::pair<uint64_t, uint64_t>
segmentRange(uint64_t chunks, unsigned seg, unsigned segs)
{
    return {chunks * seg / segs, chunks * (seg + 1) / segs};
}

/** Segments for a time-partitioned pass: never more than chunks. */
unsigned
segmentCount(const TraceSource &src, unsigned shards)
{
    return static_cast<unsigned>(std::min<uint64_t>(
        shards, std::max<uint64_t>(1, src.chunkCount())));
}

/** Time-partitioned stack pass over the whole stream, reconciled. */
ShardedStackProfile
stackPass(const TraceSource &src, const SceneLayout &layout,
          unsigned line_bytes, unsigned shards)
{
    perf::addSimulatedAccesses(src.records());
    unsigned segs = segmentCount(src, shards);
    std::vector<unsigned> ids(segs);
    std::iota(ids.begin(), ids.end(), 0u);
    auto results = Sweep::run(ids, [&](unsigned seg) {
        auto [b, e] = segmentRange(src.chunkCount(), seg, segs);
        StackSegmentPass pass(line_bytes);
        replaySegment(src, layout, b, e,
                      [&](const Addr *a, size_t n) {
                          pass.accessRange(a, n);
                      });
        return pass.finish();
    });
    std::vector<StackShardPass> passes;
    passes.reserve(results.size());
    for (auto &r : results)
        passes.push_back(std::move(r.value));
    return mergeStackShards(passes, line_bytes);
}

/** Set-partitioned pass: every worker filters the full stream. */
std::vector<CacheStats>
setPass(const TraceSource &src, const SceneLayout &layout,
        const std::vector<CacheConfig> &configs, unsigned shards)
{
    perf::addSimulatedAccesses(src.records());
    std::vector<unsigned> ids(shards);
    std::iota(ids.begin(), ids.end(), 0u);
    auto results = Sweep::run(ids, [&](unsigned shard) {
        SetShardSim sim(configs, shard, shards);
        replaySegment(src, layout, 0, src.chunkCount(),
                      [&](const Addr *a, size_t n) {
                          sim.accessRange(a, n);
                      });
        return sim.stats();
    });
    std::vector<std::vector<CacheStats>> per;
    per.reserve(results.size());
    for (auto &r : results)
        per.push_back(std::move(r.value));
    return mergeShardStats(per);
}

/**
 * Stats of a fully associative LRU cache of @p size_bytes derived
 * from the reconciled profile. A flush-free FA LRU's occupancy grows
 * by one per miss until full and then stays full, so its eviction
 * count is misses - min(capacity, misses); @p derive_evictions
 * selects between that (CacheSim semantics - runCache, runCacheGroup)
 * and zero (collapsed-pass semantics - runFaSweep, runCacheSweep).
 */
CacheStats
faStats(const ShardedStackProfile &prof, uint64_t size_bytes,
        unsigned line_bytes, bool derive_evictions)
{
    CacheStats s;
    s.accesses = prof.accesses;
    s.misses = prof.misses(size_bytes);
    s.coldMisses = prof.cold;
    if (derive_evictions) {
        uint64_t capacity = size_bytes / line_bytes;
        s.evictions = s.misses - std::min(capacity, s.misses);
    }
    return s;
}

/** Shared engine of the group/sweep runners (they differ only in FA
 *  eviction semantics). */
std::vector<CacheStats>
runConfigsSharded(const TraceSource &src, const SceneLayout &layout,
                  const std::vector<CacheConfig> &configs,
                  unsigned shards, bool fa_evictions)
{
    fatal_if(configs.empty(), "sharded sweep with no configs");

    std::vector<CacheConfig> sa;
    std::vector<size_t> sa_idx;
    std::map<unsigned, std::vector<size_t>> fa_by_line;
    for (size_t i = 0; i < configs.size(); ++i) {
        if (configs[i].assoc == CacheConfig::kFullyAssoc) {
            fa_by_line[configs[i].lineBytes].push_back(i);
        } else {
            sa.push_back(configs[i]);
            sa_idx.push_back(i);
        }
    }

    std::vector<CacheStats> out(configs.size());
    if (!sa.empty()) {
        std::vector<CacheStats> stats = setPass(src, layout, sa, shards);
        for (size_t k = 0; k < sa_idx.size(); ++k)
            out[sa_idx[k]] = stats[k];
    }
    for (const auto &[line, idx] : fa_by_line) {
        ShardedStackProfile prof =
            stackPass(src, layout, line, shards);
        for (size_t i : idx)
            out[i] = faStats(prof, configs[i].sizeBytes, line,
                             fa_evictions);
    }
    return out;
}

} // namespace

ShardedStackProfile
profileTraceSharded(const TraceSource &src, const SceneLayout &layout,
                    unsigned line_bytes, unsigned shards)
{
    return stackPass(src, layout, line_bytes, resolveShards(shards));
}

CacheStats
runCacheSharded(const TraceSource &src, const SceneLayout &layout,
                const CacheConfig &config, unsigned shards)
{
    shards = resolveShards(shards);
    if (config.assoc == CacheConfig::kFullyAssoc) {
        // Set partitioning degenerates for one set; the segmented
        // stack pass parallelizes instead (CacheSim semantics, so
        // evictions are derived).
        ShardedStackProfile prof =
            stackPass(src, layout, config.lineBytes, shards);
        return faStats(prof, config.sizeBytes, config.lineBytes, true);
    }
    return setPass(src, layout, {config}, shards)[0];
}

MissBreakdown
classifySharded(const TraceSource &src, const SceneLayout &layout,
                const CacheConfig &config, unsigned shards)
{
    shards = resolveShards(shards);
    CacheStats s = runCacheSharded(src, layout, config, shards);
    ShardedStackProfile prof =
        stackPass(src, layout, config.lineBytes, shards);
    uint64_t fa_misses = prof.misses(config.sizeBytes);

    // Mirrors MissClassifier::breakdown() - the FA twin's misses and
    // cold misses are exactly the profile's at this capacity.
    MissBreakdown b;
    b.accesses = s.accesses;
    b.misses = s.misses;
    b.cold = s.coldMisses;
    b.conflict = s.misses > fa_misses ? s.misses - fa_misses : 0;
    uint64_t fa_noncold = fa_misses - prof.cold;
    b.capacity = std::min(fa_noncold, b.misses - b.cold - b.conflict);
    return b;
}

std::vector<CacheStats>
runFaSweepSharded(const TraceSource &src, const SceneLayout &layout,
                  unsigned line_bytes,
                  const std::vector<uint64_t> &sizes, unsigned shards)
{
    fatal_if(sizes.empty(), "capacity sweep with no sizes");
    ShardedStackProfile prof =
        stackPass(src, layout, line_bytes, resolveShards(shards));
    std::vector<CacheStats> out;
    out.reserve(sizes.size());
    for (uint64_t size : sizes)
        out.push_back(faStats(prof, size, line_bytes, false));
    return out;
}

std::vector<CacheStats>
runCacheGroupSharded(const TraceSource &src, const SceneLayout &layout,
                     const std::vector<CacheConfig> &configs,
                     unsigned shards)
{
    return runConfigsSharded(src, layout, configs,
                             resolveShards(shards), true);
}

std::vector<CacheStats>
runCacheSweepSharded(const TraceSource &src, const SceneLayout &layout,
                     const std::vector<CacheConfig> &configs,
                     unsigned shards)
{
    return runConfigsSharded(src, layout, configs,
                             resolveShards(shards), false);
}

} // namespace texcache
