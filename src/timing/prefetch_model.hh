/**
 * @file
 * Fragment-generator timing model with prefetch-FIFO latency hiding
 * (paper section 7.1.1).
 *
 * The paper's machine is a 100 MHz fragment generator reading four
 * texels per cycle (one trilinear fragment every two cycles). A cache
 * miss costs ~50 cycles of DRAM latency; hidden, the pipeline sustains
 * 50 M fragments/s; exposed, every miss stalls the pipe. The
 * latency-hiding scheme (after Talisman [13]) rasterizes each triangle
 * twice: a lead rasterizer computes texel addresses and prefetches
 * missing lines up to a FIFO depth ahead of the texturing rasterizer.
 *
 * The model simulates the fragment stream against a cache: each miss is
 * issued when (a) the lead rasterizer has reached that fragment (it may
 * run at most `fifoDepth` fragments ahead of the texturing pipe) and
 * (b) the memory port is free (one outstanding fill per
 * `fillCycles`). The fragment retires when the pipe slot and all its
 * line fills are complete.
 */

#ifndef TEXCACHE_TIMING_PREFETCH_MODEL_HH
#define TEXCACHE_TIMING_PREFETCH_MODEL_HH

#include <cstdint>

#include "cache/cache_sim.hh"
#include "core/scene_layout.hh"
#include "trace/texel_trace.hh"

namespace texcache {

/** Timing parameters of the machine model. */
struct TimingConfig
{
    double clockHz = 100e6;
    unsigned cyclesPerFragment = 2; ///< 8 texels at 4 ports/cycle
    unsigned memLatencyCycles = 50; ///< miss latency (fill of a line)
    unsigned fillCycles = 8;        ///< memory occupancy per line fill
    unsigned fifoDepth = 64;        ///< lead rasterizer headroom
                                    ///< (fragments); 0 = no prefetch
};

/** Result of a timed run. */
struct TimingResult
{
    uint64_t fragments = 0;
    uint64_t cycles = 0;
    uint64_t stallCycles = 0;
    uint64_t misses = 0;

    /** Achieved textured-fragment rate in fragments per second. */
    double
    fragmentsPerSecond(double clock_hz) const
    {
        return cycles ? static_cast<double>(fragments) * clock_hz /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of the no-stall fragment rate achieved. */
    double
    efficiency(unsigned cycles_per_fragment) const
    {
        return cycles ? static_cast<double>(fragments) *
                            cycles_per_fragment /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * Run the timing model over a trace: the cache decides which texel
 * accesses miss; the prefetch FIFO decides how much of the miss latency
 * the pipeline can hide.
 */
TimingResult simulateTiming(const TexelTrace &trace,
                            const SceneLayout &layout,
                            const CacheConfig &cache_config,
                            const TimingConfig &timing);

} // namespace texcache

#endif // TEXCACHE_TIMING_PREFETCH_MODEL_HH
