/** @file Tests for the simulated texture address space allocator. */

#include <gtest/gtest.h>

#include "layout/address_space.hh"

using namespace texcache;

TEST(AddressSpace, AllocationsAreAligned)
{
    AddressSpace space(256);
    for (uint64_t bytes : {1ull, 100ull, 255ull, 256ull, 1000ull}) {
        Addr a = space.allocate(bytes);
        EXPECT_EQ(a % 256, 0u) << "allocation of " << bytes;
    }
}

TEST(AddressSpace, DefaultAlignmentIsPageSized)
{
    AddressSpace space;
    space.allocate(1);
    Addr second = space.allocate(1);
    EXPECT_EQ(second, 4096u);
}

TEST(AddressSpace, AllocationsAreMonotonicAndDisjoint)
{
    AddressSpace space(64);
    Addr prev_end = 0;
    for (uint64_t bytes : {7ull, 4096ull, 63ull, 64ull, 129ull, 1ull}) {
        Addr base = space.allocate(bytes);
        EXPECT_GE(base, prev_end) << "regions overlap";
        prev_end = base + bytes;
        EXPECT_EQ(space.used(), prev_end);
    }
}

TEST(AddressSpace, RejectsNonPowerOfTwoAlignment)
{
    EXPECT_EXIT(AddressSpace(3000), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(AddressSpace, OverflowOfTheRegionEndIsFatal)
{
    AddressSpace space;
    space.allocate(~0ULL - 8192); // fills almost the whole space
    // The next aligned base fits, but base + bytes would wrap.
    EXPECT_EXIT(space.allocate(8192), ::testing::ExitedWithCode(1),
                "overflow");
}

TEST(AddressSpace, OverflowOfTheAlignedBaseIsFatal)
{
    AddressSpace space;
    space.allocate(~0ULL); // high-water mark at the very top
    // Aligning the next base wraps past zero.
    EXPECT_EXIT(space.allocate(1), ::testing::ExitedWithCode(1),
                "overflow");
}
