#include "img/image.hh"

#include <cstdio>
#include <fstream>

namespace texcache {

void
Image::writePpm(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot open '", path, "' for writing");
    out << "P6\n" << width_ << " " << height_ << "\n255\n";
    for (const Rgba8 &p : pixels_) {
        char rgb[3] = {static_cast<char>(p.r), static_cast<char>(p.g),
                       static_cast<char>(p.b)};
        out.write(rgb, 3);
    }
    fatal_if(!out, "short write to '", path, "'");
}

} // namespace texcache
