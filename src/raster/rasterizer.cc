#include "raster/rasterizer.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "raster/hilbert.hh"

namespace texcache {

namespace {

/** Visit one (possibly partial) tile's pixels in scan order. */
void
visitSpan(int x0, int y0, int x1, int y1, ScanDirection dir,
          const std::function<void(int, int)> &visit)
{
    if (dir == ScanDirection::Horizontal) {
        for (int y = y0; y <= y1; ++y)
            for (int x = x0; x <= x1; ++x)
                visit(x, y);
    } else {
        for (int x = x0; x <= x1; ++x)
            for (int y = y0; y <= y1; ++y)
                visit(x, y);
    }
}

} // namespace

namespace {

/** Visit the rect's pixels along the screen's Hilbert curve. */
void
visitHilbert(const PixelRect &rect,
             const std::function<void(int, int)> &visit)
{
    // Fixed curve order covering any screen used in the study (2048^2).
    constexpr unsigned kOrder = 11;
    std::vector<std::pair<uint64_t, std::pair<int, int>>> cells;
    cells.reserve(static_cast<size_t>(rect.x1 - rect.x0 + 1) *
                  (rect.y1 - rect.y0 + 1));
    for (int y = rect.y0; y <= rect.y1; ++y)
        for (int x = rect.x0; x <= rect.x1; ++x)
            cells.emplace_back(
                hilbertIndex(kOrder, static_cast<uint32_t>(x),
                             static_cast<uint32_t>(y)),
                std::make_pair(x, y));
    std::sort(cells.begin(), cells.end());
    for (const auto &c : cells)
        visit(c.second.first, c.second.second);
}

} // namespace

void
traverseRect(const PixelRect &rect, const RasterOrder &order,
             const std::function<void(int, int)> &visit)
{
    if (rect.empty())
        return;

    if (order.hilbert) {
        visitHilbert(rect, visit);
        return;
    }

    if (!order.tiled) {
        visitSpan(rect.x0, rect.y0, rect.x1, rect.y1, order.dir, visit);
        return;
    }

    fatal_if(order.tileW == 0 || order.tileH == 0,
             "tiled order with zero tile dimensions");
    int tw = static_cast<int>(order.tileW);
    int th = static_cast<int>(order.tileH);

    // Screen-aligned tile indices covering the rect.
    int tx0 = rect.x0 / tw, tx1 = rect.x1 / tw;
    int ty0 = rect.y0 / th, ty1 = rect.y1 / th;

    auto tile = [&](int tx, int ty) {
        int x0 = std::max(rect.x0, tx * tw);
        int x1 = std::min(rect.x1, tx * tw + tw - 1);
        int y0 = std::max(rect.y0, ty * th);
        int y1 = std::min(rect.y1, ty * th + th - 1);
        visitSpan(x0, y0, x1, y1, order.dir, visit);
    };

    // The scan direction also orders the tiles themselves
    // (Fig 6.4(a): "column major order within and between tiles").
    if (order.dir == ScanDirection::Horizontal) {
        for (int ty = ty0; ty <= ty1; ++ty)
            for (int tx = tx0; tx <= tx1; ++tx)
                tile(tx, ty);
    } else {
        for (int tx = tx0; tx <= tx1; ++tx)
            for (int ty = ty0; ty <= ty1; ++ty)
                tile(tx, ty);
    }
}

void
rasterizeTriangle(const TriangleSetup &tri, unsigned screen_w,
                  unsigned screen_h, const RasterOrder &order,
                  const FragmentSink &sink)
{
    if (!tri.valid())
        return;
    PixelRect box = tri.bounds(screen_w, screen_h);
    Fragment frag;
    traverseRect(box, order, [&](int x, int y) {
        if (tri.shade(x, y, frag))
            sink(frag);
    });
}

std::string
RasterOrder::str() const
{
    if (hilbert)
        return "hilbert";
    std::string d = dir == ScanDirection::Horizontal ? "horizontal"
                                                     : "vertical";
    if (!tiled)
        return d;
    return "tiled-" + std::to_string(tileW) + "x" + std::to_string(tileH) +
           "-" + d;
}

} // namespace texcache
