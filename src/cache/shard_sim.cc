#include "cache/shard_sim.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "tracing/tracing.hh"

namespace texcache {

// ---- Set partitioning ----------------------------------------------

SetShardSim::SetShardSim(const std::vector<CacheConfig> &configs,
                         unsigned shard, unsigned shards)
    : shard_(shard), shards_(shards)
{
    fatal_if(configs.empty(), "sharded simulation with no configs");
    fatal_if(!shards || shard >= shards, "shard ", shard, " of ",
             shards);
    members_.reserve(configs.size());
    for (const CacheConfig &c : configs) {
        Member m{CacheSim(c), log2Exact(c.lineBytes), c.numSets() - 1};
        // Shard replays run many sims of the same organization; the
        // per-access trace stream would interleave nonsensically.
        m.sim.setTraceTag(tracing::kTagSilent);
        members_.push_back(std::move(m));
    }
}

void
SetShardSim::accessRange(const Addr *a, size_t n)
{
    // Sims outermost, like GroupSim: each simulator's tables stay hot
    // while it consumes the whole span.
    for (Member &m : members_) {
        if (shards_ == 1) {
            for (size_t i = 0; i < n; ++i)
                m.sim.access(a[i]);
            continue;
        }
        for (size_t i = 0; i < n; ++i) {
            uint64_t set = (a[i] >> m.lineShift) & m.setMask;
            if (set % shards_ == shard_)
                m.sim.access(a[i]);
        }
    }
}

std::vector<CacheStats>
SetShardSim::stats() const
{
    std::vector<CacheStats> out;
    out.reserve(members_.size());
    for (const Member &m : members_)
        out.push_back(m.sim.stats());
    return out;
}

std::vector<CacheStats>
mergeShardStats(const std::vector<std::vector<CacheStats>> &per_shard)
{
    fatal_if(per_shard.empty(), "merging zero shards");
    std::vector<CacheStats> out = per_shard[0];
    for (size_t s = 1; s < per_shard.size(); ++s) {
        panic_if(per_shard[s].size() != out.size(),
                 "shard ", s, " has ", per_shard[s].size(),
                 " configs, shard 0 has ", out.size());
        for (size_t c = 0; c < out.size(); ++c) {
            out[c].accesses += per_shard[s][c].accesses;
            out[c].misses += per_shard[s][c].misses;
            out[c].coldMisses += per_shard[s][c].coldMisses;
            out[c].evictions += per_shard[s][c].evictions;
        }
    }
    return out;
}

// ---- Time partitioning ---------------------------------------------

StackSegmentPass::StackSegmentPass(unsigned line_bytes)
    : prof_(line_bytes)
{
    prof_.setFirstTouchLog(&firstTouch_);
}

StackShardPass
StackSegmentPass::finish()
{
    prof_.setFirstTouchLog(nullptr);
    StackShardPass pass;
    pass.accesses = prof_.accesses();
    pass.hist = prof_.histogram();
    pass.firstTouch = std::move(firstTouch_);
    pass.finalOrder = prof_.stackOrder();
    return pass;
}

// ---- Global LRU-stack oracle ---------------------------------------

void
LruStackOracle::fenwickAdd(size_t pos, int delta)
{
    for (size_t i = pos + 1; i <= tree_.size(); i += i & (~i + 1))
        tree_[i - 1] +=
            static_cast<uint64_t>(static_cast<int64_t>(delta));
}

uint64_t
LruStackOracle::fenwickSuffix(size_t pos) const
{
    uint64_t prefix = 0;
    for (size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        prefix += tree_[i - 1];
    // One live timestamp per line, so total live = map size (queried
    // before any insert of the current line).
    return lastTime_.size() - prefix;
}

void
LruStackOracle::compact()
{
    std::vector<std::pair<uint64_t, uint64_t>> live; // (time, line)
    live.reserve(lastTime_.size());
    lastTime_.forEach(
        [&](uint64_t line, uint64_t t) { live.emplace_back(t, line); });
    std::sort(live.begin(), live.end());

    present_.assign(live.size() * 2 + 64, false);
    tree_.assign(present_.size(), 0);
    now_ = 0;
    for (const auto &[t, line] : live) {
        *lastTime_.find(line) = now_;
        present_[now_] = true;
        fenwickAdd(now_, 1);
        ++now_;
    }
}

void
LruStackOracle::ensureRoom()
{
    if (now_ < tree_.size())
        return;
    if (lastTime_.size() * 2 + 64 < tree_.size()) {
        compact();
        return;
    }
    size_t new_size = tree_.size() ? tree_.size() * 2 : 1024;
    std::vector<bool> old_present = present_;
    present_.assign(new_size, false);
    tree_.assign(new_size, 0);
    for (size_t i = 0; i < old_present.size(); ++i) {
        if (old_present[i]) {
            present_[i] = true;
            fenwickAdd(i, 1);
        }
    }
}

void
LruStackOracle::moveToTop(uint64_t *slot)
{
    present_[*slot] = false;
    fenwickAdd(*slot, -1);
    *slot = now_;
    present_[now_] = true;
    fenwickAdd(now_, 1);
    ++now_;
}

uint64_t
LruStackOracle::touch(uint64_t line)
{
    ensureRoom();
    uint64_t *slot = lastTime_.find(line);
    if (!slot) {
        lastTime_.insert(line, now_);
        present_[now_] = true;
        fenwickAdd(now_, 1);
        ++now_;
        return 0;
    }
    uint64_t dist = fenwickSuffix(*slot) + 1;
    moveToTop(slot);
    return dist;
}

void
LruStackOracle::promote(uint64_t line)
{
    ensureRoom();
    uint64_t *slot = lastTime_.find(line);
    panic_if(!slot, "promote of line ", line,
             " absent from the oracle stack");
    moveToTop(slot);
}

// ---- Merge ---------------------------------------------------------

ShardedStackProfile
mergeStackShards(const std::vector<StackShardPass> &passes,
                 unsigned line_bytes)
{
    ShardedStackProfile out;
    out.lineShift = log2Exact(line_bytes);

    LruStackOracle oracle;
    for (const StackShardPass &pass : passes) {
        out.accesses += pass.accesses;

        // Locally-exact distances merge as-is.
        if (pass.hist.size() > out.hist.size())
            out.hist.resize(pass.hist.size(), 0);
        for (size_t d = 0; d < pass.hist.size(); ++d)
            out.hist[d] += pass.hist[d];

        // Resolve the segment's locally-cold accesses. Touching in
        // first-touch order keeps every line the segment saw before
        // access k above the stack position of line k's previous
        // (earlier-segment) touch, so the oracle distance is the exact
        // global one.
        for (uint64_t line : pass.firstTouch) {
            uint64_t d = oracle.touch(line);
            if (!d) {
                ++out.cold;
                continue;
            }
            if (d >= out.hist.size())
                out.hist.resize(d + 1, 0);
            ++out.hist[d];
        }

        // Restore the true global stack: the segment's lines belong at
        // the top, ordered by their *last* local access, not their
        // first touch.
        for (uint64_t line : pass.finalOrder)
            oracle.promote(line);
    }
    return out;
}

} // namespace texcache
