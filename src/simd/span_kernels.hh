/**
 * @file
 * Batched fragment kernels for trace-only rendering.
 *
 * A SpanKernels table holds function pointers for one ISA level
 * (isa.hh): `touches` turns a batch of up to kSpanBatch covered pixels
 * of one triangle into their texel-touch records, `coverMask` batches
 * the top-left coverage test for scattered pixels (the Hilbert
 * traversal). Per fragment, `touches` is the exact float sequence of
 *
 *     TriangleSetup::attributesAt -> computeLod ->
 *     sampleTouchesMipMapMode -> packSampleRecords
 *
 * vectorized *across* fragments, so every lane reproduces the scalar
 * reference bit for bit (tests/test_simd_kernels.cc fuzzes this for
 * every compiled level, unaligned tails included).
 */

#ifndef TEXCACHE_SIMD_SPAN_KERNELS_HH
#define TEXCACHE_SIMD_SPAN_KERNELS_HH

#include <cstdint>

#include "raster/triangle.hh"
#include "simd/isa.hh"
#include "texture/sampler.hh"

namespace texcache {

class MipMap;

namespace simd {

/** Fragments per kernel call: one AVX2 vector, two SSE4.1 vectors. */
constexpr int kSpanBatch = 8;

/**
 * Everything the kernels need about one raster task: the triangle's
 * attribute planes and edge functions, the texture and the filter
 * configuration. Built once per (triangle, tile) by makeSpanContext.
 */
struct SpanContext
{
    // 1/w, u/w, v/w attribute planes (value = e0 + ex*px + ey*py).
    float iwE0, iwEx, iwEy;
    float uwE0, uwEx, uwEy;
    float vwE0, vwEx, vwEy;
    // Edge functions and their top-left ownership for coverMask.
    float edgeE0[3], edgeEx[3], edgeEy[3];
    bool topLeft[3];
    // Level-0 texture dimensions (LOD derivative scaling).
    float texW, texH;
    const MipMap *mip;
    uint16_t texture;
    FilterMode mode;
    WrapMode wrap;
};

SpanContext makeSpanContext(const TriangleSetup &setup, const MipMap &mip,
                            uint16_t texture, float texW, float texH,
                            FilterMode mode,
                            WrapMode wrap = WrapMode::Repeat);

/**
 * Per-fragment results of one `touches` call, SoA across the batch.
 * Exactly what the tile renderer's fragment loop consumes: filter
 * statistics, the packed trace records, and the repetition-counter
 * anchor (the *unwrapped* integer texel coordinate at the filter's
 * first level).
 */
struct SpanBatchOut
{
    FilterKind kind[kSpanBatch];
    uint8_t numTouches[kSpanBatch];
    uint16_t firstLevel[kSpanBatch]; ///< touches[0].level
    uint16_t firstU[kSpanBatch];     ///< touches[0].u (wrapped)
    uint16_t firstV[kSpanBatch];
    int32_t anchorU[kSpanBatch];     ///< floor(u*w - 0.5) at firstLevel
    int32_t anchorV[kSpanBatch];
    /** Cumulative end offset of each fragment's records. */
    uint32_t recEnd[kSpanBatch];
    /** Packed TexelRecords in packSampleRecords order. */
    uint64_t records[kSpanBatch * 8];
};

/** The kernel entry points of one ISA level. */
struct SpanKernels
{
    /**
     * Texel touches of fragments (xs[i], ys[i]) for i < n,
     * 1 <= n <= kSpanBatch. Every pixel must be covered (the span
     * interior / a coverMask survivor). Lanes beyond n are padding
     * inside the kernel and must not be read from @p out.
     */
    void (*touches)(const SpanContext &ctx, const int32_t *xs,
                    const int32_t *ys, int n, SpanBatchOut &out);

    /**
     * Coverage of pixels (xs[i], ys[i]) for i < n: bit i is set iff
     * TriangleSetup::covers(xs[i], ys[i]) - same edge tests, same
     * top-left rule, same positive-1/w requirement.
     */
    uint32_t (*coverMask)(const SpanContext &ctx, const int32_t *xs,
                          const int32_t *ys, int n);
};

/** The kernel table of the active ISA level (never null). */
const SpanKernels &kernels();

/** The kernel table of one level; null when not compiled in. */
const SpanKernels *kernelsFor(Isa isa);

// Per-ISA translation units (kernels_<isa>.cc). Each returns null
// when its instruction set was not available at build time.
const SpanKernels *scalarKernels();
const SpanKernels *sse41Kernels();
const SpanKernels *avx2Kernels();

} // namespace simd
} // namespace texcache

#endif // TEXCACHE_SIMD_SPAN_KERNELS_HH
