/**
 * @file
 * Hierarchical statistics registry in the gem5 idiom.
 *
 * Every number the harness reports flows through one tree of named
 * groups (stats::Group) holding three statistic kinds:
 *
 *  - Scalar       a plain uint64_t counter behind the handle; the hot
 *                 path pays one memory increment, nothing else;
 *  - Distribution a log2-bucketed histogram (bucket 0 holds value 0,
 *                 bucket k holds [2^(k-1), 2^k)) with count/sum/min/
 *                 max, for quantities like queue depths and latencies;
 *  - Formula      a derived value (ratios, rates) evaluated only at
 *                 dump time, so hot paths never divide.
 *
 * Names register at construction and nest through groups, giving
 * dotted paths like "l1.misses" or "vt.pool.evictions"; duplicate
 * names within a group panic immediately. Groups do not own
 * externally-registered stats (the registering object must outlive
 * the group dump), but provide owned creation helpers for dump-time
 * views over a subsystem's live legacy counters - the pattern the
 * export functions in cache/, vt/ and pipeline/ use, mirroring gem5's
 * regStats().
 *
 * Dumping renders the subtree as one nested JSON object (leaves are
 * numbers; distributions are objects), the format the bench run
 * manifests embed (core/run_manifest.hh) and tools/check_bench.py
 * consumes.
 */

#ifndef TEXCACHE_STATS_STATS_HH
#define TEXCACHE_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace texcache {

class JsonWriter;

namespace stats {

class Group;

/** Base of every named statistic in a group tree. */
class StatBase
{
  public:
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Primary scalar reading: a counter's count, a formula's value. */
    virtual double total() const = 0;

    /** Emit the dump-time JSON value. */
    virtual void writeJson(JsonWriter &w) const = 0;

  private:
    friend class Group;
    std::string name_;
    std::string desc_;
};

/**
 * Monotonic event counter. The increment is one add on a plain
 * uint64_t member - safe for the hottest paths. Default-constructed
 * Scalars are detached and can be registered later via Group::add
 * (the pattern for counters embedded in hot statistics structs).
 */
class Scalar : public StatBase
{
  public:
    Scalar() = default;
    Scalar(Group &parent, std::string name, std::string desc = "");

    Scalar &
    operator++()
    {
        ++value_;
        return *this;
    }

    Scalar &
    operator+=(uint64_t v)
    {
        value_ += v;
        return *this;
    }

    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }

    double total() const override
    {
        return static_cast<double>(value_);
    }
    void writeJson(JsonWriter &w) const override;

  private:
    uint64_t value_ = 0;
};

/**
 * Log2-bucketed histogram. sample(v) costs a handful of instructions:
 * one bit scan for the bucket plus four updates. Bucket 0 counts
 * zero-valued samples; bucket k >= 1 counts samples in [2^(k-1), 2^k).
 */
class Distribution : public StatBase
{
  public:
    Distribution() = default;
    Distribution(Group &parent, std::string name, std::string desc = "");

    void
    sample(uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Bucket index a value falls into (0 for 0, else log2Floor+1). */
    static unsigned
    bucketOf(uint64_t v)
    {
        return v ? 64 - __builtin_clzll(v) : 0;
    }

    static constexpr unsigned kBuckets = 65;

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    uint64_t bucket(unsigned i) const { return buckets_[i]; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /**
     * Estimate the @p p quantile (p in [0, 1]) from the log2 buckets:
     * locate the bucket holding the p-th sample and interpolate
     * linearly across its value range, clamped to the observed
     * [min, max]. Exact for the bucket, approximate within it - the
     * resolution any log2 histogram has.
     */
    double percentile(double p) const;

    /** Fold another histogram into this one (per-thread merges). */
    void merge(const Distribution &other);

    /**
     * Subtract an earlier reading of the *same* histogram, leaving the
     * counts accumulated since it (snapshot deltas). Buckets, count
     * and sum subtract exactly; min/max cannot be un-merged from a
     * histogram, so the later reading's values are kept - a documented
     * approximation interval percentiles stay clamped to.
     */
    void subtractCounts(const Distribution &earlier);

    void reset();

    double total() const override
    {
        return static_cast<double>(count_);
    }
    void writeJson(JsonWriter &w) const override;

  private:
    uint64_t buckets_[kBuckets] = {};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ULL;
    uint64_t max_ = 0;
};

/** Derived value evaluated only when the tree is dumped or queried. */
class Formula : public StatBase
{
  public:
    Formula() = default;
    Formula(Group &parent, std::string name, std::string desc,
            std::function<double()> fn);

    void bind(std::function<double()> fn) { fn_ = std::move(fn); }

    /**
     * Evaluate the bound function. Unbound formulas and non-finite
     * results (0/0 ratios over empty runs, inf from a zero
     * denominator) collapse to 0.0 so a dumped tree never contains
     * NaN/inf - both are invalid JSON.
     */
    double total() const override;
    void writeJson(JsonWriter &w) const override;

  private:
    std::function<double()> fn_;
};

/**
 * A named node of the stats tree. Holds child groups and statistics
 * in registration order; names are unique within a group and must not
 * contain '.' (the path separator used by find()).
 */
class Group
{
  public:
    /** A detached root (typically one per bench run). */
    explicit Group(std::string name = "");

    /** A child registered under @p parent at construction. */
    Group(Group &parent, std::string name);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /**
     * Register an externally-owned stat under @p name. The stat must
     * outlive every dump of this group.
     */
    void add(StatBase &stat, std::string name, std::string desc = "");

    /** Create an owned child group. */
    Group &group(std::string name);

    /** Create an owned counter. */
    Scalar &scalar(std::string name, std::string desc = "");

    /** Create an owned counter preloaded with @p value (snapshots). */
    Scalar &constant(std::string name, uint64_t value,
                     std::string desc = "");

    /** Create an owned snapshot of an already-computed real value. */
    Formula &real(std::string name, double value, std::string desc = "");

    /** Create an owned dump-time formula. */
    Formula &formula(std::string name, std::string desc,
                     std::function<double()> fn);

    /** Create an owned distribution. */
    Distribution &distribution(std::string name, std::string desc = "");

    /** Create an owned snapshot copy of @p src. */
    Distribution &distribution(std::string name, std::string desc,
                               const Distribution &src);

    /** Stat at a dotted path ("l1.misses"); nullptr if absent. */
    const StatBase *find(std::string_view path) const;

    /** Child group at a dotted path; nullptr if absent. */
    const Group *findGroup(std::string_view path) const;

    Group *
    findGroup(std::string_view path)
    {
        return const_cast<Group *>(
            static_cast<const Group *>(this)->findGroup(path));
    }

    /** find(path)->total(); panics when the path is missing. */
    double value(std::string_view path) const;

    /** Render this subtree as one JSON object value. */
    void writeJson(JsonWriter &w) const;

    /** Render as a standalone pretty-printed JSON document. */
    void dumpJson(std::ostream &os) const;

    const std::vector<StatBase *> &statsInOrder() const
    {
        return statsOrder_;
    }
    const std::vector<Group *> &groupsInOrder() const
    {
        return childOrder_;
    }

  private:
    /** Panic unless @p name is legal and unused in this group. */
    void checkName(const std::string &name) const;

    std::string name_;
    std::vector<StatBase *> statsOrder_;
    std::vector<Group *> childOrder_;
    std::vector<std::unique_ptr<StatBase>> ownedStats_;
    std::vector<std::unique_ptr<Group>> ownedChildren_;
};

} // namespace stats
} // namespace texcache

#endif // TEXCACHE_STATS_STATS_HH
