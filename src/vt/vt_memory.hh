/**
 * @file
 * Virtual texture memory: paged residency over the simulated address
 * space.
 *
 * Combines the physical page pool (page_pool.hh) and the asynchronous
 * fetch queue (fetch_queue.hh) behind one page-granular access point.
 * Every touch advances the subsystem clock by one tick, first retiring
 * any fetches whose data has arrived (their pages become resident),
 * then probing the pool:
 *
 *   touch hit  -> the page was resident; recency is refreshed.
 *   touch miss -> an asynchronous fetch is enqueued (deduplicated
 *                 against in-flight fetches) and the caller proceeds
 *                 without the page - the sampler degrades, the cache
 *                 hierarchy counts a pool miss.
 *
 * It also records the residency feedback a frame scheduler would use:
 * unique pages touched and the resident-set size sampled over time.
 */

#ifndef TEXCACHE_VT_VT_MEMORY_HH
#define TEXCACHE_VT_VT_MEMORY_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "vt/fetch_queue.hh"
#include "vt/page_pool.hh"

namespace texcache {

/** Full parameter set of the virtual texturing backend. */
struct VtConfig
{
    unsigned pageBytes = 64 * 1024; ///< virtual page size (power of two)
    uint64_t poolPages = 64;        ///< physical pool capacity
    unsigned maxInFlight = 16;      ///< outstanding fetch limit
    uint64_t fetchLatency = 64;     ///< fixed ticks from issue to data
    DramConfig dram;                ///< bus the page bursts are charged to
    uint64_t sampleInterval = 4096; ///< ticks between resident-set samples

    uint64_t poolBytes() const { return poolPages * pageBytes; }
};

/** Residency of a page at the moment it was touched. */
enum class VtAccess : uint8_t
{
    Hit,  ///< resident
    Miss, ///< not resident; fetch requested (or merged/dropped)
};

/** Paged texture memory with asynchronous miss handling. */
class VirtualTextureMemory
{
  public:
    explicit VirtualTextureMemory(const VtConfig &config);

    PageId pageOf(Addr a) const { return pool_.pageOf(a); }

    /** Page-granular access; advances the clock by one tick. */
    VtAccess touch(Addr addr);

    /**
     * Advance the clock by @p ticks without an access, retiring any
     * fetches whose data has arrived. Lets traffic the pool never
     * sees - e.g. texel accesses filtered by the cache hierarchy in
     * front of it - still move time forward.
     */
    void advance(uint64_t ticks = 1);

    /** Residency query; no clock, statistics or recency effects. */
    bool resident(Addr addr) const
    {
        return pool_.resident(pool_.pageOf(addr));
    }

    /** Pin every page overlapping [base, base+bytes): never evicted. */
    void pinRange(Addr base, uint64_t bytes);

    /**
     * Warm start: make every page overlapping [base, base+bytes)
     * resident immediately, with no fetch traffic.
     */
    void prefaultRange(Addr base, uint64_t bytes);

    /** Retire all in-flight fetches (end-of-frame settle). */
    void settle();

    uint64_t now() const { return now_; }
    uint64_t pagesTouched() const { return touched_.size(); }
    const PagePool &pool() const { return pool_; }
    const FetchQueue &fetchQueue() const { return fetch_; }
    const VtConfig &config() const { return config_; }

    /** Resident-set size sampled every config().sampleInterval ticks. */
    const std::vector<uint64_t> &residencySamples() const
    {
        return residencySamples_;
    }

  private:
    VtConfig config_;
    PagePool pool_;
    FetchQueue fetch_;
    uint64_t now_ = 0;
    std::unordered_set<PageId> touched_;
    std::vector<uint64_t> residencySamples_;
};

} // namespace texcache

#endif // TEXCACHE_VT_VT_MEMORY_HH
