#include "timing/prefetch_model.hh"

#include <algorithm>
#include <deque>

#include "trace/fragment_iter.hh"

namespace texcache {

TimingResult
simulateTiming(const TexelTrace &trace, const SceneLayout &layout,
               const CacheConfig &cache_config, const TimingConfig &timing)
{
    TimingResult res;
    CacheSim cache(cache_config);

    // Retire times of the last `fifoDepth` fragments; the lead
    // rasterizer may not run further ahead than that, so a miss of
    // fragment f cannot issue before fragment (f - fifoDepth) started.
    std::deque<uint64_t> start_times;

    uint64_t pipe_time = 0; // when the texturing pipe frees up
    uint64_t mem_free = 0;  // when the memory port frees up

    Addr out[3];
    forEachFragment(trace, [&](const FragmentTouches &frag) {
        ++res.fragments;

        // Lead-rasterizer constraint on this fragment's prefetches.
        uint64_t issue_floor = 0;
        if (timing.fifoDepth == 0) {
            // No prefetching: misses issue when the fragment reaches
            // the texturing stage itself.
            issue_floor = pipe_time;
        } else if (start_times.size() >= timing.fifoDepth) {
            issue_floor = start_times.front();
        }

        uint64_t data_ready = 0;
        for (unsigned i = 0; i < frag.count; ++i) {
            const TexelRecord &r = frag.recs[i];
            unsigned n =
                layout.layout(r.texture).addresses({r.level, r.u, r.v},
                                                   out);
            for (unsigned k = 0; k < n; ++k) {
                if (!cache.access(out[k])) {
                    ++res.misses;
                    uint64_t issue = std::max(issue_floor, mem_free);
                    mem_free = issue + timing.fillCycles;
                    data_ready = std::max(
                        data_ready, issue + timing.memLatencyCycles);
                }
            }
        }

        uint64_t start =
            std::max(pipe_time, data_ready);
        res.stallCycles += start - pipe_time;
        pipe_time = start + timing.cyclesPerFragment;

        start_times.push_back(start);
        if (start_times.size() > std::max(1u, timing.fifoDepth))
            start_times.pop_front();
    });

    res.cycles = pipe_time;
    return res;
}

} // namespace texcache
