#include "common/json_reader.hh"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/logging.hh"

namespace texcache {
namespace json {

const char *
ParseError::code() const
{
    switch (kind) {
      case Kind::None:
        return "ok";
      case Kind::Truncated:
        return "truncated";
      case Kind::BadToken:
        return "bad_token";
      case Kind::BadString:
        return "bad_string";
      case Kind::BadEscape:
        return "bad_escape";
      case Kind::BadNumber:
        return "bad_number";
      case Kind::TooDeep:
        return "too_deep";
      case Kind::TrailingGarbage:
        return "trailing_garbage";
    }
    return "unknown";
}

bool
Value::isU64() const
{
    if (type_ != Type::Number)
        return false;
    return num_ >= 0.0 && num_ <= 18446744073709549568.0 &&
           std::floor(num_) == num_;
}

uint64_t
Value::u64() const
{
    panic_if(!isU64(), "JSON number is not an exact unsigned integer");
    return static_cast<uint64_t>(num_);
}

const Value &
Value::at(size_t i) const
{
    panic_if(type_ != Type::Array, "at() on a non-array JSON value");
    panic_if(i >= elems_.size(), "JSON array index ", i, " of ",
             elems_.size());
    return elems_[i];
}

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray()
{
    Value v;
    v.type_ = Type::Array;
    return v;
}

Value
Value::makeObject()
{
    Value v;
    v.type_ = Type::Object;
    return v;
}

namespace {

/** One parse attempt over an immutable input; cursor + error state. */
class Parser
{
  public:
    Parser(std::string_view text, ParseError &err)
        : text_(text), err_(err)
    {}

    bool
    document(Value &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail(ParseError::Kind::TrailingGarbage,
                        "bytes after the first JSON value");
        return true;
    }

  private:
    bool
    fail(ParseError::Kind kind, std::string msg)
    {
        // Keep the first (innermost) error; callers unwind through it.
        if (!err_) {
            err_.kind = kind;
            err_.offset = pos_;
            err_.message = std::move(msg);
        }
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail(ParseError::Kind::BadToken,
                        "expected '" + std::string(word) + "'");
        pos_ += word.size();
        return true;
    }

    bool
    value(Value &out, unsigned depth)
    {
        if (atEnd())
            return fail(ParseError::Kind::Truncated,
                        "input ended where a value was expected");
        switch (peek()) {
          case 'n':
            out = Value::makeNull();
            return literal("null");
          case 't':
            out = Value::makeBool(true);
            return literal("true");
          case 'f':
            out = Value::makeBool(false);
            return literal("false");
          case '"':
            return string(out);
          case '[':
            return array(out, depth);
          case '{':
            return object(out, depth);
          default:
            if (peek() == '-' || (peek() >= '0' && peek() <= '9'))
                return number(out);
            return fail(ParseError::Kind::BadToken,
                        std::string("unexpected character '") + peek() +
                            "'");
        }
    }

    bool
    number(Value &out)
    {
        size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        // Integer part: one digit, or a nonzero digit followed by more.
        if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
            return fail(ParseError::Kind::BadNumber,
                        "digit expected after '-'");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!atEnd() && peek() == '.') {
            ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail(ParseError::Kind::BadNumber,
                            "digit expected after '.'");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++pos_;
            if (atEnd() ||
                !std::isdigit(static_cast<unsigned char>(peek())))
                return fail(ParseError::Kind::BadNumber,
                            "digit expected in exponent");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        double d = 0.0;
        auto res = std::from_chars(text_.data() + start,
                                   text_.data() + pos_, d);
        if (res.ec != std::errc() ||
            res.ptr != text_.data() + pos_)
            return fail(ParseError::Kind::BadNumber,
                        "unparseable numeric literal");
        out = Value::makeNumber(d);
        return true;
    }

    /** Append @p cp to @p s as UTF-8. */
    static void
    appendUtf8(std::string &s, uint32_t cp)
    {
        if (cp < 0x80) {
            s.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            s.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            s.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            s.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    bool
    hex4(uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return fail(ParseError::Kind::BadEscape,
                        "\\u needs four hex digits");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + i];
            uint32_t d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = 10 + c - 'a';
            else if (c >= 'A' && c <= 'F')
                d = 10 + c - 'A';
            else
                return fail(ParseError::Kind::BadEscape,
                            "non-hex digit in \\u escape");
            out = (out << 4) | d;
        }
        pos_ += 4;
        return true;
    }

    bool
    stringBody(std::string &s)
    {
        ++pos_; // opening quote
        while (true) {
            if (atEnd())
                return fail(ParseError::Kind::BadString,
                            "unterminated string");
            unsigned char c = static_cast<unsigned char>(peek());
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail(ParseError::Kind::BadString,
                            "raw control character in string");
            if (c != '\\') {
                s.push_back(static_cast<char>(c));
                ++pos_;
                continue;
            }
            ++pos_; // backslash
            if (atEnd())
                return fail(ParseError::Kind::BadEscape,
                            "input ended inside an escape");
            char e = peek();
            ++pos_;
            switch (e) {
              case '"':
                s.push_back('"');
                break;
              case '\\':
                s.push_back('\\');
                break;
              case '/':
                s.push_back('/');
                break;
              case 'b':
                s.push_back('\b');
                break;
              case 'f':
                s.push_back('\f');
                break;
              case 'n':
                s.push_back('\n');
                break;
              case 'r':
                s.push_back('\r');
                break;
              case 't':
                s.push_back('\t');
                break;
              case 'u': {
                uint32_t cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a \uDC00-\uDFFF pair must follow.
                    if (pos_ + 2 > text_.size() || peek() != '\\' ||
                        text_[pos_ + 1] != 'u')
                        return fail(ParseError::Kind::BadEscape,
                                    "unpaired high surrogate");
                    pos_ += 2;
                    uint32_t lo;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail(ParseError::Kind::BadEscape,
                                    "invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    return fail(ParseError::Kind::BadEscape,
                                "unpaired low surrogate");
                }
                appendUtf8(s, cp);
                break;
              }
              default:
                return fail(ParseError::Kind::BadEscape,
                            std::string("unknown escape '\\") + e + "'");
            }
        }
    }

    bool
    string(Value &out)
    {
        std::string s;
        if (!stringBody(s))
            return false;
        out = Value::makeString(std::move(s));
        return true;
    }

    bool
    array(Value &out, unsigned depth)
    {
        if (depth >= kMaxDepth)
            return fail(ParseError::Kind::TooDeep,
                        "nesting deeper than kMaxDepth containers");
        ++pos_; // '['
        out = Value::makeArray();
        skipWs();
        if (atEnd())
            return fail(ParseError::Kind::Truncated,
                        "unterminated array");
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Value elem;
            if (!value(elem, depth + 1))
                return false;
            out.append(std::move(elem));
            skipWs();
            if (atEnd())
                return fail(ParseError::Kind::Truncated,
                            "unterminated array");
            if (peek() == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail(ParseError::Kind::BadToken,
                        "expected ',' or ']' in array");
        }
    }

    bool
    object(Value &out, unsigned depth)
    {
        if (depth >= kMaxDepth)
            return fail(ParseError::Kind::TooDeep,
                        "nesting deeper than kMaxDepth containers");
        ++pos_; // '{'
        out = Value::makeObject();
        skipWs();
        if (atEnd())
            return fail(ParseError::Kind::Truncated,
                        "unterminated object");
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            if (atEnd() || peek() != '"')
                return fail(ParseError::Kind::BadToken,
                            "expected a string key in object");
            std::string key;
            if (!stringBody(key))
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return fail(ParseError::Kind::BadToken,
                            "expected ':' after object key");
            ++pos_;
            skipWs();
            Value member;
            if (!value(member, depth + 1))
                return false;
            out.set(std::move(key), std::move(member));
            skipWs();
            if (atEnd())
                return fail(ParseError::Kind::Truncated,
                            "unterminated object");
            if (peek() == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail(ParseError::Kind::BadToken,
                        "expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    ParseError &err_;
};

} // namespace

bool
parse(std::string_view text, Value &out, ParseError &err)
{
    err = ParseError();
    Parser p(text, err);
    return p.document(out);
}

} // namespace json
} // namespace texcache
