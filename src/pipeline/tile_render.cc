#include "pipeline/tile_render.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "core/sweep.hh"
#include "pipeline/clip.hh"
#include "pipeline/viewport.hh"
#include "raster/hilbert.hh"
#include "raster/span_rasterizer.hh"
#include "simd/span_kernels.hh"
#include "tracing/tracing.hh"

namespace texcache {

namespace {

/** Strip thickness for the whole-screen scanline orders: thick enough
 *  to amortize per-tile overhead, thin enough that 8 workers load-
 *  balance on an 800-pixel screen. */
constexpr int kStripSize = 16;

/** Hilbert tile edge. Origin-aligned power-of-two blocks occupy
 *  contiguous index ranges on the curve, so whole blocks can be
 *  ordered by the index of any member cell. */
constexpr int kHilbertBlock = 32;

/** Must match visitHilbert in raster/rasterizer.cc. */
constexpr unsigned kHilbertOrder = 11;

inline uint8_t
modulate(uint8_t c, float s)
{
    float v = static_cast<float>(c) * s;
    v = v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v);
    return static_cast<uint8_t>(v + 0.5f);
}

/** One post-clip screen triangle ready to rasterize. */
struct RasterTask
{
    TriangleSetup setup;
    PixelRect box;      ///< screen-clipped bounding box (non-empty)
    uint32_t sceneTri;  ///< index of the *input* scene triangle
    uint16_t texture;
    float texW;         ///< level-0 texture dimensions (LOD scaling)
    float texH;

    RasterTask(const TriangleSetup &s, const PixelRect &b, uint32_t tri,
               uint16_t tex, float tw, float th)
        : setup(s), box(b), sceneTri(tri), texture(tex), texW(tw),
          texH(th)
    {}
};

/**
 * The screen's tile decomposition for one raster order: tile rects in
 * canonical (serial traversal) order plus the (tx, ty) -> canonical
 * position map the binning step uses.
 */
struct TileGrid
{
    int tw = 0;
    int th = 0;
    int nx = 0;
    int ny = 0;
    bool hilbert = false;
    std::vector<uint32_t> posOfTile;  ///< ty * nx + tx -> canonical pos
    std::vector<PixelRect> rects;     ///< canonical pos -> tile rect

    uint32_t
    pos(int tx, int ty) const
    {
        return posOfTile[static_cast<size_t>(ty) * nx + tx];
    }
};

TileGrid
buildGrid(unsigned screen_w, unsigned screen_h, const RasterOrder &order)
{
    TileGrid g;
    int w = static_cast<int>(screen_w);
    int h = static_cast<int>(screen_h);

    if (order.hilbert) {
        fatal_if(screen_w > (1u << kHilbertOrder) ||
                     screen_h > (1u << kHilbertOrder),
                 "screen ", screen_w, "x", screen_h,
                 " exceeds the Hilbert curve order (",
                 1u << kHilbertOrder, ")");
        g.hilbert = true;
        g.tw = g.th = kHilbertBlock;
    } else if (order.tiled) {
        fatal_if(order.tileW == 0 || order.tileH == 0,
                 "tiled order with zero tile dimensions");
        g.tw = static_cast<int>(order.tileW);
        g.th = static_cast<int>(order.tileH);
    } else if (order.dir == ScanDirection::Horizontal) {
        g.tw = w;
        g.th = kStripSize;
    } else {
        g.tw = kStripSize;
        g.th = h;
    }
    g.nx = (w + g.tw - 1) / g.tw;
    g.ny = (h + g.th - 1) / g.th;

    size_t n = static_cast<size_t>(g.nx) * g.ny;
    std::vector<uint32_t> tileOfPos(n);
    if (g.hilbert) {
        // Canonical block order = curve order. Blocks are disjoint
        // contiguous index ranges, so comparing the origin cells'
        // indices orders the ranges themselves.
        std::vector<std::pair<uint64_t, uint32_t>> blocks;
        blocks.reserve(n);
        for (int ty = 0; ty < g.ny; ++ty)
            for (int tx = 0; tx < g.nx; ++tx)
                blocks.emplace_back(
                    hilbertIndex(kHilbertOrder,
                                 static_cast<uint32_t>(tx * g.tw),
                                 static_cast<uint32_t>(ty * g.th)),
                    static_cast<uint32_t>(ty) * g.nx + tx);
        std::sort(blocks.begin(), blocks.end());
        for (size_t p = 0; p < n; ++p)
            tileOfPos[p] = blocks[p].second;
    } else if (!order.tiled || order.dir == ScanDirection::Horizontal) {
        // Row strips (nx == 1), column strips (ny == 1) and
        // horizontally-traversed tiles are all row-major == id order.
        for (size_t p = 0; p < n; ++p)
            tileOfPos[p] = static_cast<uint32_t>(p);
    } else {
        // Vertically-traversed tiles: column-major between tiles
        // (Fig 6.4(a)), matching traverseRect.
        size_t p = 0;
        for (int tx = 0; tx < g.nx; ++tx)
            for (int ty = 0; ty < g.ny; ++ty)
                tileOfPos[p++] = static_cast<uint32_t>(ty) * g.nx + tx;
    }

    g.posOfTile.resize(n);
    g.rects.resize(n);
    for (size_t p = 0; p < n; ++p) {
        uint32_t tile = tileOfPos[p];
        int tx = static_cast<int>(tile) % g.nx;
        int ty = static_cast<int>(tile) / g.nx;
        g.posOfTile[tile] = static_cast<uint32_t>(p);
        PixelRect r;
        r.x0 = tx * g.tw;
        r.y0 = ty * g.th;
        r.x1 = std::min(w - 1, r.x0 + g.tw - 1);
        r.y1 = std::min(h - 1, r.y0 + g.th - 1);
        g.rects[p] = r;
    }
    return g;
}

/** Everything one tile produces; merged in canonical order. */
struct TileResult
{
    /** Packed texel records, segment per binned task, in task order. */
    std::vector<uint64_t> records;
    /** Per binned task (aligned with the tile's bin): end offset into
     *  records, and the task's fragment count in this tile. */
    std::vector<uint32_t> segRecEnd;
    std::vector<uint32_t> segFrags;

    uint64_t texelAccesses = 0;
    uint64_t bilinearFragments = 0;
    uint64_t trilinearFragments = 0;
    uint64_t nearestFragments = 0;
    stats::Distribution lod;
    /** Buffered repetition-set keys, bucketed by the counter's shard:
     *  pushing here is much cheaper than per-tile hash sets, and the
     *  merge hands each shard's keys to exactly one worker, so the
     *  total hashing work equals the serial path's but runs in
     *  parallel (a set union is order-free). */
    std::array<std::vector<uint64_t>, RepetitionCounter::kShards> uwKeys;
    std::array<std::vector<uint64_t>, RepetitionCounter::kShards> wrKeys;
};

inline PixelRect
intersect(const PixelRect &a, const PixelRect &b)
{
    PixelRect r;
    r.x0 = std::max(a.x0, b.x0);
    r.y0 = std::max(a.y0, b.y0);
    r.x1 = std::min(a.x1, b.x1);
    r.y1 = std::min(a.y1, b.y1);
    return r;
}

} // namespace

RenderOutput
renderTiled(const Scene &scene, const RasterOrder &order,
            const RenderOptions &opts)
{
    static const uint16_t kRenderSpan = tracing::nameId("render.frame");
    static const uint16_t kTileSpan = tracing::nameId("render.tile");
    tracing::ScopedSpan span(kRenderSpan, scene.triangles.size());

    RenderOutput out;
    if (opts.writeFramebuffer)
        out.framebuffer = Image(scene.screenW, scene.screenH,
                                Rgba8{16, 16, 32, 255});
    // The z-buffer only gates framebuffer writes (the paper's machine
    // model textures before the depth test), so trace-only renders
    // skip it entirely.
    std::vector<float> zbuf;
    if (opts.writeFramebuffer)
        zbuf.assign(static_cast<size_t>(scene.screenW) * scene.screenH,
                    1e30f);

    Mat4 mvp = scene.proj * scene.view;

    // ---- Front end: clip, set up and bin triangles (serial) --------
    // Statistics here replicate renderReference's geometry loop
    // exactly; the fragment-side statistics come from the tiles.
    std::vector<RasterTask> tasks;
    tasks.reserve(scene.triangles.size());
    for (size_t tri_i = 0; tri_i < scene.triangles.size(); ++tri_i) {
        const SceneTriangle &tri = scene.triangles[tri_i];
        ++out.stats.trianglesIn;
        fatal_if(tri.texture >= scene.textures.size(),
                 "triangle references texture ", tri.texture, " of ",
                 scene.textures.size());
        const MipMap &mip = scene.textures[tri.texture];
        float tex_w = static_cast<float>(mip.width(0));
        float tex_h = static_cast<float>(mip.height(0));

        ClipVertex cv[3];
        for (int i = 0; i < 3; ++i) {
            cv[i].pos = mvp.transformPoint(tri.v[i].pos);
            cv[i].uv = tri.v[i].uv;
            cv[i].shade = tri.v[i].shade;
        }

        ClipVertex poly[4];
        unsigned n = clipNear(cv, poly);
        if (n < 3) {
            ++out.stats.trianglesculled;
            continue;
        }

        for (unsigned k = 2; k < n; ++k) {
            ScreenVertex a = toScreenVertex(poly[0], scene.screenW,
                                            scene.screenH);
            ScreenVertex b = toScreenVertex(poly[k - 1], scene.screenW,
                                            scene.screenH);
            ScreenVertex c = toScreenVertex(poly[k], scene.screenW,
                                            scene.screenH);
            TriangleSetup setup(a, b, c);
            if (!setup.valid())
                continue;
            ++out.stats.trianglesRasterized;

            PixelRect box = setup.bounds(scene.screenW, scene.screenH);
            if (!box.empty()) {
                out.stats.sumBoxWidth += box.x1 - box.x0 + 1;
                out.stats.sumBoxHeight += box.y1 - box.y0 + 1;
                ++out.stats.boxSamples;
                tasks.emplace_back(setup, box,
                                   static_cast<uint32_t>(tri_i),
                                   tri.texture, tex_w, tex_h);
            }
        }
    }

    TileGrid grid = buildGrid(scene.screenW, scene.screenH, order);
    size_t n_tiles = grid.rects.size();

    std::vector<std::vector<uint32_t>> bins(n_tiles);
    std::vector<std::vector<uint32_t>> tilesOfTask(tasks.size());
    for (uint32_t t = 0; t < tasks.size(); ++t) {
        const PixelRect &box = tasks[t].box;
        int tx0 = box.x0 / grid.tw, tx1 = box.x1 / grid.tw;
        int ty0 = box.y0 / grid.th, ty1 = box.y1 / grid.th;
        for (int ty = ty0; ty <= ty1; ++ty)
            for (int tx = tx0; tx <= tx1; ++tx) {
                uint32_t pos = grid.pos(tx, ty);
                bins[pos].push_back(t);
                tilesOfTask[t].push_back(pos);
            }
        // Canonical order for the merge (binning enumerates the grid
        // row-major, which is not canonical for vertically-traversed
        // tiles or the Hilbert curve).
        std::sort(tilesOfTask[t].begin(), tilesOfTask[t].end());
    }

    std::vector<uint32_t> work; // canonical positions with tasks
    work.reserve(n_tiles);
    for (uint32_t pos = 0; pos < n_tiles; ++pos)
        if (!bins[pos].empty())
            work.push_back(pos);

    // ---- Tile workers (core/sweep pool; deterministic results) -----
    const bool touchOnly = !opts.writeFramebuffer;
    const bool horiz = order.dir == ScanDirection::Horizontal;
    // Trace-only renders (the actual trace-generation workload) run
    // the batched SIMD kernels of the dispatched ISA level; their
    // per-fragment float sequence is the reference's exactly, so the
    // output stays byte-identical at every level (DESIGN.md section
    // 13). Framebuffer renders keep the scalar path: they are the
    // interactive/debug mode and need the color fetches.
    const simd::SpanKernels *simdK =
        touchOnly ? &simd::kernels() : nullptr;

    auto renderTile = [&](uint32_t pos) -> TileResult {
        tracing::ScopedSpan tileSpan(kTileSpan, pos);
        TileResult res;
        const PixelRect &trect = grid.rects[pos];
        res.segRecEnd.reserve(bins[pos].size());
        res.segFrags.reserve(bins[pos].size());

        // Hilbert tiles: the block's cells in curve order, computed
        // once per tile and filtered per task (cheaper than the
        // reference's per-triangle bounding-box sort).
        std::vector<std::pair<uint64_t, std::pair<int, int>>> cells;
        if (grid.hilbert) {
            cells.reserve(static_cast<size_t>(trect.x1 - trect.x0 + 1) *
                          (trect.y1 - trect.y0 + 1));
            for (int y = trect.y0; y <= trect.y1; ++y)
                for (int x = trect.x0; x <= trect.x1; ++x)
                    cells.emplace_back(
                        hilbertIndex(kHilbertOrder,
                                     static_cast<uint32_t>(x),
                                     static_cast<uint32_t>(y)),
                        std::make_pair(x, y));
            std::sort(cells.begin(), cells.end());
        }

        uint32_t fragCount = 0;
        const RasterTask *task = nullptr;
        const MipMap *mip = nullptr;

        auto emitFragment = [&](const Fragment &frag) {
            ++fragCount;
            float lambda = computeLod(frag.dudx * task->texW,
                                      frag.dvdx * task->texH,
                                      frag.dudy * task->texW,
                                      frag.dvdy * task->texH);
            SampleResult s;
            if (touchOnly)
                sampleTouchesMipMapMode(*mip, frag.u, frag.v, lambda,
                                        opts.filterMode, s);
            else
                s = sampleMipMapMode(*mip, frag.u, frag.v, lambda,
                                     opts.filterMode);
            res.texelAccesses += s.numTouches;
            res.lod.sample(s.touches[0].level);
            if (s.kind == FilterKind::Bilinear)
                ++res.bilinearFragments;
            else if (s.kind == FilterKind::Nearest)
                ++res.nearestFragments;
            else
                ++res.trilinearFragments;

            if (opts.captureTrace) {
                // Batched append: all of the fragment's touches in
                // one bulk insert instead of a push per texel.
                uint64_t buf[8];
                unsigned cnt = packSampleRecords(task->texture, s, buf);
                res.records.insert(res.records.end(), buf, buf + cnt);
            }

            if (tracing::enabled(tracing::kTexels))
                tracing::setTexelContext(
                    static_cast<uint16_t>(frag.x),
                    static_cast<uint16_t>(frag.y), task->texture,
                    s.touches[0].level, s.touches[0].u,
                    s.touches[0].v);

            if (opts.countRepetition) {
                // Footprint anchor at the filter's first level:
                // unwrapped vs wrapped integer texel coordinate.
                unsigned lvl = s.touches[0].level;
                const Image &li = mip->level(lvl);
                float su = frag.u * li.width() - 0.5f;
                float sv = frag.v * li.height() - 0.5f;
                int32_t iu = static_cast<int32_t>(std::floor(su));
                int32_t iv = static_cast<int32_t>(std::floor(sv));
                RepetitionCounter::KeyPair k = RepetitionCounter::keys(
                    task->texture, static_cast<uint16_t>(lvl), iu, iv,
                    s.touches[0].u, s.touches[0].v);
                res.uwKeys[RepetitionCounter::shardOf(k.unwrapped)]
                    .push_back(k.unwrapped);
                res.wrKeys[RepetitionCounter::shardOf(k.wrapped)]
                    .push_back(k.wrapped);
            }

            if (opts.writeFramebuffer) {
                // Depth test after texturing (paper Fig 2.1). Tiles
                // cover disjoint pixels, so the shared z-buffer and
                // framebuffer need no synchronization.
                size_t pix = static_cast<size_t>(frag.y) *
                                 scene.screenW +
                             frag.x;
                if (frag.depth < zbuf[pix]) {
                    zbuf[pix] = frag.depth;
                    auto toByte = [](float f) {
                        f = f < 0.0f ? 0.0f : (f > 1.0f ? 1.0f : f);
                        return static_cast<uint8_t>(f * 255.0f + 0.5f);
                    };
                    Rgba8 texel = {toByte(s.color.x), toByte(s.color.y),
                                   toByte(s.color.z), toByte(s.color.w)};
                    out.framebuffer.texel(frag.x, frag.y) = {
                        modulate(texel.r, frag.shade),
                        modulate(texel.g, frag.shade),
                        modulate(texel.b, frag.shade), texel.a};
                }
            }
        };

        // Batched equivalent of emitFragment for the touch-only SIMD
        // path: one kernel call covers attributes, LOD, level select
        // and address generation for up to kSpanBatch fragments; this
        // consumer folds the per-fragment results into the same
        // statistics, trace records and repetition keys, in the same
        // fragment order.
        simd::SpanContext sctx{};
        auto consumeBatch = [&](const int32_t *bxs, const int32_t *bys,
                                int bn, const simd::SpanBatchOut &bo) {
            fragCount += static_cast<uint32_t>(bn);
            for (int i = 0; i < bn; ++i) {
                res.texelAccesses += bo.numTouches[i];
                res.lod.sample(bo.firstLevel[i]);
                if (bo.kind[i] == FilterKind::Bilinear)
                    ++res.bilinearFragments;
                else if (bo.kind[i] == FilterKind::Nearest)
                    ++res.nearestFragments;
                else
                    ++res.trilinearFragments;
            }
            if (opts.captureTrace)
                res.records.insert(res.records.end(), bo.records,
                                   bo.records + bo.recEnd[bn - 1]);
            if (tracing::enabled(tracing::kTexels))
                for (int i = 0; i < bn; ++i)
                    tracing::setTexelContext(
                        static_cast<uint16_t>(bxs[i]),
                        static_cast<uint16_t>(bys[i]), task->texture,
                        bo.firstLevel[i], bo.firstU[i], bo.firstV[i]);
            if (opts.countRepetition) {
                for (int i = 0; i < bn; ++i) {
                    RepetitionCounter::KeyPair k =
                        RepetitionCounter::keys(
                            task->texture, bo.firstLevel[i],
                            bo.anchorU[i], bo.anchorV[i], bo.firstU[i],
                            bo.firstV[i]);
                    res.uwKeys[RepetitionCounter::shardOf(k.unwrapped)]
                        .push_back(k.unwrapped);
                    res.wrKeys[RepetitionCounter::shardOf(k.wrapped)]
                        .push_back(k.wrapped);
                }
            }
        };

        Fragment frag;
        int32_t bxs[simd::kSpanBatch], bys[simd::kSpanBatch];
        simd::SpanBatchOut bo;
        for (uint32_t t : bins[pos]) {
            task = &tasks[t];
            mip = &scene.textures[task->texture];
            fragCount = 0;
            PixelRect r = intersect(task->box, trect);
            if (simdK)
                sctx = simd::makeSpanContext(task->setup, *mip,
                                             task->texture, task->texW,
                                             task->texH,
                                             opts.filterMode);

            if (grid.hilbert) {
                if (simdK) {
                    // Candidate cells in curve order; coverage tested
                    // kSpanBatch at a time, survivors compacted (in
                    // curve order) into full touch batches.
                    int32_t txs[simd::kSpanBatch];
                    int32_t tys[simd::kSpanBatch];
                    int cand = 0, pend = 0;
                    auto flushPend = [&]() {
                        if (!pend)
                            return;
                        simdK->touches(sctx, bxs, bys, pend, bo);
                        consumeBatch(bxs, bys, pend, bo);
                        pend = 0;
                    };
                    auto testCand = [&]() {
                        if (!cand)
                            return;
                        uint32_t m =
                            simdK->coverMask(sctx, txs, tys, cand);
                        for (int i = 0; i < cand; ++i) {
                            if (!(m >> i & 1u))
                                continue;
                            bxs[pend] = txs[i];
                            bys[pend] = tys[i];
                            if (++pend == simd::kSpanBatch)
                                flushPend();
                        }
                        cand = 0;
                    };
                    for (const auto &c : cells) {
                        int x = c.second.first, y = c.second.second;
                        if (x < r.x0 || x > r.x1 || y < r.y0 ||
                            y > r.y1)
                            continue;
                        txs[cand] = x;
                        tys[cand] = y;
                        if (++cand == simd::kSpanBatch)
                            testCand();
                    }
                    testCand();
                    flushPend();
                } else {
                    for (const auto &c : cells) {
                        int x = c.second.first, y = c.second.second;
                        if (x < r.x0 || x > r.x1 || y < r.y0 ||
                            y > r.y1)
                            continue;
                        if (task->setup.shade(x, y, frag))
                            emitFragment(frag);
                    }
                }
            } else if (horiz) {
                if (simdK) {
                    // Interior pixels need no coverage test. Batches
                    // fill *across* spans: the paper scenes' triangles
                    // average only a handful of pixels per row, so
                    // per-span batches would run the wide kernels
                    // mostly on tails. Traversal order is preserved -
                    // pixels enter the batch exactly in row-major
                    // span order and flush in order.
                    int pend = 0;
                    for (int y = r.y0; y <= r.y1; ++y) {
                        int lo = r.x0, hi = r.x1;
                        if (!spanOnLine(task->setup, true, y, lo, hi))
                            continue;
                        for (int x = lo; x <= hi; ++x) {
                            bxs[pend] = x;
                            bys[pend] = y;
                            if (++pend == simd::kSpanBatch) {
                                simdK->touches(sctx, bxs, bys, pend,
                                               bo);
                                consumeBatch(bxs, bys, pend, bo);
                                pend = 0;
                            }
                        }
                    }
                    if (pend) {
                        simdK->touches(sctx, bxs, bys, pend, bo);
                        consumeBatch(bxs, bys, pend, bo);
                    }
                } else {
                    for (int y = r.y0; y <= r.y1; ++y) {
                        int lo = r.x0, hi = r.x1;
                        if (!spanOnLine(task->setup, true, y, lo, hi))
                            continue;
                        for (int x = lo; x <= hi; ++x) {
                            // Interior pixels need no coverage test:
                            // coverage along a line is an interval
                            // and both endpoints were verified.
                            task->setup.attributesAt(x, y, frag);
                            emitFragment(frag);
                        }
                    }
                }
            } else {
                if (simdK) {
                    int pend = 0;
                    for (int x = r.x0; x <= r.x1; ++x) {
                        int lo = r.y0, hi = r.y1;
                        if (!spanOnLine(task->setup, false, x, lo, hi))
                            continue;
                        for (int y = lo; y <= hi; ++y) {
                            bxs[pend] = x;
                            bys[pend] = y;
                            if (++pend == simd::kSpanBatch) {
                                simdK->touches(sctx, bxs, bys, pend,
                                               bo);
                                consumeBatch(bxs, bys, pend, bo);
                                pend = 0;
                            }
                        }
                    }
                    if (pend) {
                        simdK->touches(sctx, bxs, bys, pend, bo);
                        consumeBatch(bxs, bys, pend, bo);
                    }
                } else {
                    for (int x = r.x0; x <= r.x1; ++x) {
                        int lo = r.y0, hi = r.y1;
                        if (!spanOnLine(task->setup, false, x, lo, hi))
                            continue;
                        for (int y = lo; y <= hi; ++y) {
                            task->setup.attributesAt(x, y, frag);
                            emitFragment(frag);
                        }
                    }
                }
            }
            res.segFrags.push_back(fragCount);
            res.segRecEnd.push_back(
                static_cast<uint32_t>(res.records.size()));
        }
        if (tracing::enabled(tracing::kTexels))
            tracing::clearTexelContext();
        return res;
    };

    std::vector<SweepResult<TileResult>> results;
    if (!work.empty())
        results = Sweep::run(work, renderTile);

    // ---- Deterministic merge ---------------------------------------
    // Order-free statistics first (integer counters, histogram
    // buckets), folded in canonical tile order.
    size_t totalRecords = 0;
    for (const auto &r : results) {
        const TileResult &tr = r.value;
        out.stats.texelAccesses += tr.texelAccesses;
        out.stats.bilinearFragments += tr.bilinearFragments;
        out.stats.trilinearFragments += tr.trilinearFragments;
        out.stats.nearestFragments += tr.nearestFragments;
        out.stats.lodLevels.merge(tr.lod);
        totalRecords += tr.records.size();
    }

    // Repetition-set union, one counter shard per sweep point. Each
    // shard's set is touched by exactly one worker and a union yields
    // the same set in any insertion order, so this is both race-free
    // and bit-identical to the serial insert sequence.
    if (opts.countRepetition && !results.empty()) {
        std::vector<unsigned> shards(RepetitionCounter::kShards);
        for (unsigned s = 0; s < RepetitionCounter::kShards; ++s)
            shards[s] = s;
        Sweep::run(shards, [&](unsigned s) -> int {
            for (const auto &r : results) {
                const TileResult &tr = r.value;
                out.repetition.insertUnwrapped(s, tr.uwKeys[s].data(),
                                               tr.uwKeys[s].size());
                out.repetition.insertWrapped(s, tr.wrKeys[s].data(),
                                             tr.wrKeys[s].size());
            }
            return 0;
        });
    }

    // The trace is order-sensitive: the serial renderer is triangle-
    // major (raster order applies *within* each triangle's box), so
    // concatenating whole tiles would interleave triangles wrongly.
    // Instead, every (task, tile) segment lands in (task order,
    // canonical tile order) - exactly the serial traversal. A cheap
    // serial pass assigns each segment its destination offset (and
    // folds the order-sensitive fragment statistics); the segment
    // copies themselves go to disjoint ranges, so they run on the
    // pool.
    std::vector<uint32_t> posToWork(n_tiles, 0);
    for (uint32_t i = 0; i < work.size(); ++i)
        posToWork[work[i]] = i;
    std::vector<uint32_t> cursor(n_tiles, 0);
    std::vector<uint64_t> triFrags(scene.triangles.size(), 0);
    std::vector<std::vector<size_t>> segDst(results.size());
    for (size_t i = 0; i < results.size(); ++i)
        segDst[i].resize(results[i].value.segRecEnd.size());
    size_t dst = 0;
    for (uint32_t t = 0; t < tasks.size(); ++t) {
        for (uint32_t pos : tilesOfTask[t]) {
            uint32_t wi = posToWork[pos];
            const TileResult &tr = results[wi].value;
            uint32_t seg = cursor[pos]++;
            uint32_t beg = seg ? tr.segRecEnd[seg - 1] : 0;
            segDst[wi][seg] = dst;
            dst += tr.segRecEnd[seg] - beg;
            if (opts.traceSink && tr.segRecEnd[seg] > beg)
                opts.traceSink->append(tr.records.data() + beg,
                                       tr.segRecEnd[seg] - beg);
            uint64_t frags = tr.segFrags[seg];
            out.stats.fragments += frags;
            triFrags[tasks[t].sceneTri] += frags;
        }
    }
    if (opts.captureTrace && totalRecords && !opts.traceSink) {
        out.trace.resizePacked(totalRecords);
        uint64_t *base = out.trace.mutablePacked();
        std::vector<uint32_t> copyWork(results.size());
        for (uint32_t i = 0; i < copyWork.size(); ++i)
            copyWork[i] = i;
        Sweep::run(copyWork, [&](uint32_t wi) -> int {
            const TileResult &tr = results[wi].value;
            for (size_t seg = 0; seg < segDst[wi].size(); ++seg) {
                uint32_t beg = seg ? tr.segRecEnd[seg - 1] : 0;
                uint32_t len = tr.segRecEnd[seg] - beg;
                if (len)
                    std::copy_n(tr.records.data() + beg, len,
                                base + segDst[wi][seg]);
            }
            return 0;
        });
    }
    // sumCoveredArea accumulates one exact integer-valued double per
    // input triangle, in input order - the same additions, in the
    // same order, as the reference path.
    for (uint64_t f : triFrags)
        out.stats.sumCoveredArea += static_cast<double>(f);

    return out;
}

} // namespace texcache
