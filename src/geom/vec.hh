/**
 * @file
 * Small fixed-size vector types used by the software graphics pipeline.
 *
 * These are deliberately minimal: float storage, value semantics, and the
 * handful of operations a rasterizer needs (arithmetic, dot/cross,
 * normalization, homogeneous divide).
 */

#ifndef TEXCACHE_GEOM_VEC_HH
#define TEXCACHE_GEOM_VEC_HH

#include <cmath>

namespace texcache {

/** 2-component float vector (texture coordinates, screen positions). */
struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2() = default;
    constexpr Vec2(float x_, float y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
};

/** 3-component float vector (positions, normals, colors). */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(Vec3 o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(Vec3 o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }

    constexpr float dot(Vec3 o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    constexpr Vec3
    cross(Vec3 o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float length() const { return std::sqrt(dot(*this)); }

    Vec3
    normalized() const
    {
        float l = length();
        return l > 0.0f ? (*this) * (1.0f / l) : Vec3{};
    }
};

/** 4-component homogeneous vector. */
struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(float x_, float y_, float z_, float w_)
        : x(x_), y(y_), z(z_), w(w_)
    {}
    constexpr Vec4(Vec3 v, float w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

    constexpr Vec4 operator+(Vec4 o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }
    constexpr Vec4 operator-(Vec4 o) const
    {
        return {x - o.x, y - o.y, z - o.z, w - o.w};
    }
    constexpr Vec4 operator*(float s) const
    {
        return {x * s, y * s, z * s, w * s};
    }

    constexpr Vec3 xyz() const { return {x, y, z}; }

    /** Perspective divide (caller must ensure w != 0). */
    constexpr Vec3 project() const
    {
        return {x / w, y / w, z / w};
    }
};

/** Linear interpolation between two values by t in [0, 1]. */
template <typename T>
constexpr T
lerp(T a, T b, float t)
{
    return a + (b - a) * t;
}

} // namespace texcache

#endif // TEXCACHE_GEOM_VEC_HH
