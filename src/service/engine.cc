#include "service/engine.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/json.hh"
#include "common/logging.hh"

namespace texcache {
namespace service {

namespace {

using ConfigKey = std::tuple<uint64_t, unsigned, unsigned>;

ConfigKey
keyOf(const CacheConfig &c)
{
    return {c.sizeBytes, c.lineBytes, c.assoc};
}

std::string
controlOk(const char *kind)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.kv("status", "ok");
    w.kv("kind", kind);
    w.endObject();
    os << "\n";
    return os.str();
}

} // namespace

ServiceEngine::ServiceEngine(TraceStore &store)
    : ServiceEngine(store, Options{})
{}

ServiceEngine::ServiceEngine(TraceStore &store, Options opts)
    : store_(store), opts_(opts), paused_(opts.startPaused),
      accepted_(statsRoot_.scalar("accepted",
                                  "requests admitted to the queue")),
      rejectedFull_(statsRoot_.scalar(
          "rejected_queue_full", "requests refused at full depth")),
      rejectedParse_(statsRoot_.scalar("rejected_parse",
                                       "bodies that were not JSON")),
      rejectedBad_(statsRoot_.scalar(
          "rejected_bad_request", "requests failing validation")),
      rejectedShutdown_(statsRoot_.scalar(
          "rejected_shutdown", "requests refused while draining")),
      controlRequests_(statsRoot_.scalar(
          "control", "ping/stats/shutdown control requests")),
      batchable_(statsRoot_.scalar("batchable",
                                   "accepted sweep-kind requests")),
      batches_(statsRoot_.scalar("batches",
                                 "shared-replay passes executed")),
      foldedRequests_(statsRoot_.scalar(
          "folded", "requests served from multi-request batches")),
      queueDepthDist_(statsRoot_.distribution(
          "queue_depth", "depth observed at each enqueue")),
      latencyUs_(statsRoot_.distribution(
          "latency_us", "enqueue-to-response microseconds"))
{
    statsRoot_.formula("fold_factor",
                       "batchable requests per executed batch", [this] {
                           uint64_t b = batches_.value();
                           return b ? double(batchable_.value()) / b
                                    : 0.0;
                       });
    panic_if(opts_.queueDepth == 0, "queue depth must be positive");
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

ServiceEngine::~ServiceEngine()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stopping_ = true;
        accepting_ = false;
    }
    cv_.notify_all();
    dispatcher_.join();
}

std::future<std::string>
ServiceEngine::submit(std::string_view body)
{
    std::promise<std::string> promise;
    std::future<std::string> future = promise.get_future();

    ServiceRequest req;
    RequestError err = parseRequest(body, req);
    if (err) {
        std::lock_guard<std::mutex> lk(mutex_);
        if (err.code == RequestError::Code::Parse)
            ++rejectedParse_;
        else
            ++rejectedBad_;
        promise.set_value(err.toJson());
        return future;
    }

    if (req.control()) {
        std::string resp;
        {
            std::lock_guard<std::mutex> lk(mutex_);
            ++controlRequests_;
            switch (req.kind) {
              case ServiceRequest::Kind::Ping:
                resp = controlOk("ping");
                break;
              case ServiceRequest::Kind::Shutdown:
                accepting_ = false;
                shutdownReq_ = true;
                resp = controlOk("shutdown");
                break;
              default:
                break; // stats: dump outside the lock
            }
        }
        if (resp.empty())
            resp = statsJson();
        promise.set_value(std::move(resp));
        return future;
    }

    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!accepting_) {
            ++rejectedShutdown_;
            promise.set_value(
                RequestError::shuttingDown("daemon is draining")
                    .toJson());
            return future;
        }
        if (queue_.size() >= opts_.queueDepth) {
            ++rejectedFull_;
            promise.set_value(
                RequestError::queueFull(
                    "queue is at depth " +
                    std::to_string(opts_.queueDepth) +
                    "; retry later")
                    .toJson());
            return future;
        }
        ++accepted_;
        if (req.batchable())
            ++batchable_;
        queueDepthDist_.sample(queue_.size());
        Pending p;
        p.req = std::move(req);
        p.promise = std::move(promise);
        p.enqueued = std::chrono::steady_clock::now();
        queue_.push_back(std::move(p));
    }
    cv_.notify_all();
    return future;
}

void
ServiceEngine::pause()
{
    std::lock_guard<std::mutex> lk(mutex_);
    paused_ = true;
}

void
ServiceEngine::resume()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

void
ServiceEngine::beginShutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        accepting_ = false;
    }
    cv_.notify_all();
}

bool
ServiceEngine::shutdownRequested() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return shutdownReq_;
}

void
ServiceEngine::drain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    idleCv_.wait(lk, [this] {
        return queue_.empty() && !busy_;
    });
}

size_t
ServiceEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.size();
}

std::string
ServiceEngine::statsJson() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::ostringstream os;
    statsRoot_.dumpJson(os);
    return os.str();
}

void
ServiceEngine::dispatchLoop()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        cv_.wait(lk, [this] {
            return stopping_ || (!queue_.empty() && !paused_);
        });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        // Give concurrent clients one batch window to coalesce with
        // the head request before collecting (skipped when draining -
        // nothing new can arrive).
        if (opts_.batchWindowMs && queue_.front().req.batchable() &&
            !stopping_ && accepting_) {
            cv_.wait_for(
                lk, std::chrono::milliseconds(opts_.batchWindowMs),
                [this] { return stopping_; });
            if (queue_.empty())
                continue;
        }

        std::vector<Pending> batch;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (batch.front().req.batchable()) {
            const std::string key = batch.front().req.batchKey();
            for (auto it = queue_.begin(); it != queue_.end();) {
                if (it->req.batchable() && it->req.batchKey() == key) {
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        busy_ = true;
        lk.unlock();
        runBatch(std::move(batch));
        lk.lock();
        busy_ = false;
        idleCv_.notify_all();
    }
}

void
ServiceEngine::runBatch(std::vector<Pending> batch)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++batches_;
        if (batch.size() > 1)
            foldedRequests_ += batch.size();
    }

    if (batch.size() == 1 && !batch.front().req.batchable()) {
        finish(batch.front(),
               runServiceRequest(store_, batch.front().req));
        return;
    }

    // Shared replay over the union of every member's configurations.
    // runCacheSweep() is exact for any partitioning, so each member's
    // manifest matches the direct path byte for byte.
    std::map<ConfigKey, size_t> index;
    std::vector<CacheConfig> uni;
    for (const Pending &p : batch) {
        for (const CacheConfig &c : p.req.configs) {
            if (index.try_emplace(keyOf(c), uni.size()).second)
                uni.push_back(c);
        }
    }

    const ServiceRequest &head = batch.front().req;
    const TexelTrace &trace = store_.trace(head.scene, head.order);
    SceneLayout layout(store_.scene(head.scene), head.layout);
    std::vector<CacheStats> stats = runCacheSweep(trace, layout, uni);

    for (Pending &p : batch) {
        std::vector<CacheStats> mine;
        mine.reserve(p.req.configs.size());
        for (const CacheConfig &c : p.req.configs)
            mine.push_back(stats[index.at(keyOf(c))]);
        finish(p, buildSweepManifest(p.req, mine));
    }
}

void
ServiceEngine::finish(Pending &p, std::string body)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - p.enqueued)
                  .count();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        latencyUs_.sample(static_cast<uint64_t>(us));
    }
    p.promise.set_value(std::move(body));
}

} // namespace service
} // namespace texcache
