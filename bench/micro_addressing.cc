/**
 * @file
 * Google-benchmark microbenchmark for texel address computation
 * (sections 5.2.1, 5.3.1, 6.2): the software cost of each memory
 * representation's addressing, corroborating the paper's claim that
 * blocking adds only a couple of adds (in hardware: two adders).
 */

#include <benchmark/benchmark.h>

#include "layout/layout.hh"

using namespace texcache;

namespace {

std::vector<LevelDims>
pyramid(unsigned size)
{
    std::vector<LevelDims> d;
    for (unsigned w = size; w >= 1; w /= 2)
        d.push_back({w, w});
    return d;
}

void
runAddressing(benchmark::State &state, LayoutKind kind)
{
    AddressSpace space;
    LayoutParams p;
    p.kind = kind;
    p.blockW = p.blockH = 8;
    p.padBlocks = 4;
    p.coarseBytes = 32 * 1024;
    auto lay = makeLayout(p, pyramid(256), space);

    // A texture-walk access pattern touching varied levels.
    uint32_t x = 12345;
    Addr out[3];
    for (auto _ : state) {
        x = x * 1664525u + 1013904223u;
        uint16_t level = (x >> 28) & 7;
        uint16_t w = static_cast<uint16_t>(256 >> level);
        TexelTouch t{level, static_cast<uint16_t>(x & (w - 1)),
                     static_cast<uint16_t>((x >> 8) & (w - 1))};
        unsigned n = lay->addresses(t, out);
        benchmark::DoNotOptimize(out[0]);
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK_CAPTURE(runAddressing, williams, LayoutKind::Williams);
BENCHMARK_CAPTURE(runAddressing, nonblocked, LayoutKind::Nonblocked);
BENCHMARK_CAPTURE(runAddressing, blocked, LayoutKind::Blocked);
BENCHMARK_CAPTURE(runAddressing, padded, LayoutKind::PaddedBlocked);
BENCHMARK_CAPTURE(runAddressing, blocked6d, LayoutKind::Blocked6D);

BENCHMARK_MAIN();
