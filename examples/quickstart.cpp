/**
 * @file
 * Quickstart: the whole library in ~60 lines.
 *
 * Renders a textured scene with the software pipeline, places its
 * textures in memory under the paper's recommended representation
 * (blocked + padded), replays the texel trace into a 16 KB 2-way
 * texture cache, and reports miss rate and memory bandwidth - the
 * end-to-end flow of Hakura & Gupta's study.
 */

#include <iostream>

#include "cache/bandwidth.hh"
#include "core/experiment.hh"
#include "core/scene_layout.hh"

using namespace texcache;

int
main()
{
    // 1. A scene: the Goblet benchmark (one 512x512 mip-mapped texture
    //    wrapped around 7200 small triangles).
    Scene scene = makeGobletScene();

    // 2. Render one frame, capturing the texel-coordinate trace. The
    //    rasterizer walks the screen in 8x8 tiles, the order the paper
    //    recommends (section 6).
    RasterOrder order = RasterOrder::tiledOrder(8, 8);
    RenderOutput frame = render(scene, order);
    frame.framebuffer.writePpm("quickstart.ppm");

    std::cout << "rendered " << scene.name << ": "
              << frame.stats.fragments << " textured fragments, "
              << frame.trace.size() << " texel accesses\n";

    // 3. Choose a memory representation for the textures: 8x8-texel
    //    blocks matching a 128-byte cache line, padded so vertically
    //    adjacent blocks never conflict (sections 5.3 and 6.2).
    LayoutParams params;
    params.kind = LayoutKind::PaddedBlocked;
    params.blockW = params.blockH = 8;
    SceneLayout layout(scene, params);

    // 4. Replay the trace into a texture cache.
    CacheConfig config{16 * 1024, 128, 2};
    CacheStats stats = runCache(frame.trace, layout, config);

    // 5. Relate miss rate to memory bandwidth at the paper's machine
    //    model (100 MHz, 4 texels/cycle -> 50M fragments/s).
    MachineModel machine;
    double bw = machine.cachedBandwidth(stats.missRate(),
                                        config.lineBytes);

    std::cout << "cache " << config.str() << ": miss rate "
              << stats.missRate() * 100.0 << "%, memory bandwidth "
              << bw / 1e6 << " MB/s (uncached system: "
              << machine.uncachedBandwidth() / 1e9 << " GB/s, saving "
              << machine.reductionFactor(stats.missRate(),
                                         config.lineBytes)
              << "x)\n";
    return 0;
}
