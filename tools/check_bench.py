#!/usr/bin/env python3
"""Perf-regression gate over texcache bench run manifests.

Compares the "metrics" block of a fresh BENCH_*.json run manifest
(schema "texcache-bench-1", written by core/run_manifest.cc) against a
committed baseline manifest, metric by metric:

  direction "higher"  regression when fresh < base * (1 - tolerance)
  direction "lower"   regression when fresh > base * (1 + tolerance)
  direction "ceiling" regression when fresh > base * (1 + tolerance),
                      default tolerance 0: the baseline value is a
                      hard budget (e.g. peak RSS of a streamed
                      replay), not a noisy measurement
  direction "exact"   any difference fails (determinism pins)
  direction "report"  printed, never compared (machine-dependent)

Tolerance precedence per metric: --metric NAME=TOL on the command line,
else --tolerance, else the baseline metric's own "tolerance" field,
else 0.15 (0 for "ceiling"). Direction and the metric set are always
taken from the baseline: a metric the baseline gates on must exist in
the fresh run.

Exit status: 0 when every gated metric passes, 1 on any regression or
missing metric, 2 on malformed input - including comparing manifests
produced at different SIMD ISA levels (host.simd_isa) when the
baseline carries "exact" pins; exact comparisons are only meaningful
at one ISA level.

--against compares two manifests structurally instead: every JSON
path of both documents must match exactly (values, types, presence).
That is the gate for deterministic-mode manifests, e.g. a texcached
response saved next to the equivalent direct batch-CLI run; it exits
1 listing the first differing paths.

--diff renders a hierarchical metric-delta report instead of gating:
every numeric leaf of both manifests (metrics values, the stats tree,
wall_ms, host and perf blocks, ...) is flattened to its dotted path
and the two values are printed with absolute and percent deltas,
sorted by percent magnitude, largest first. --top N bounds the rows
(default 40). Reporting only: --diff always exits 0 on well-formed
input.

Usage:
  tools/check_bench.py BASELINE FRESH [--tolerance T]
                       [--metric NAME=TOL]... [--quiet]
  tools/check_bench.py MANIFEST --against OTHER
  tools/check_bench.py A --diff B [--top N]
  tools/check_bench.py MANIFEST --list-metrics
"""

import argparse
import json
import sys

DEFAULT_TOLERANCE = 0.15
SCHEMA = "texcache-bench-1"


def die(msg):
    print(f"check_bench: {msg}", file=sys.stderr)
    sys.exit(2)


def load_manifest(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema {doc.get('schema')!r} is not {SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        die(f"{path}: no metrics block")
    return doc


def pick_tolerance(name, base_metric, args, default=DEFAULT_TOLERANCE):
    if name in args.metric_tol:
        return args.metric_tol[name], "command line"
    if args.tolerance is not None:
        return args.tolerance, "command line (global)"
    if "tolerance" in base_metric:
        return float(base_metric["tolerance"]), "baseline"
    return default, "default"


def list_metrics(doc):
    """Print every metric of one manifest: name, value, gating."""
    print(f"{doc['bench']}: {len(doc['metrics'])} metrics")
    width = max((len(n) for n in doc["metrics"]), default=0)
    for name, m in doc["metrics"].items():
        direction = m.get("direction", "report")
        gate = direction
        if direction in ("higher", "lower", "ceiling") and "tolerance" in m:
            gate += f" (tolerance {m['tolerance']:g})"
        print(f"  {name:<{width}}  {float(m['value']):g}  [{gate}]")


def check_metric(name, base_metric, fresh_metric, fresh_names, args):
    """Returns (ok, message)."""
    direction = base_metric.get("direction", "report")
    base = float(base_metric["value"])
    if fresh_metric is None:
        if direction == "report":
            return True, f"  {name}: report-only, absent in fresh run"
        available = ", ".join(sorted(fresh_names)) or "(none)"
        return False, (f"  {name}: gated ({direction}) in the baseline "
                       f"but missing from the fresh run; the fresh "
                       f"manifest has: {available}. Did the bench "
                       f"rename or drop this metric? If intentional, "
                       f"refresh the committed baseline.")
    fresh = float(fresh_metric["value"])
    if base:
        delta = (fresh - base) / base
    else:
        delta = 0.0 if fresh == base else float("inf")

    if direction == "report":
        return True, (f"  {name}: {base:g} -> {fresh:g} "
                      f"({delta:+.1%}) [report only]")
    if direction == "exact":
        if fresh == base:
            return True, f"  {name}: {base:g} [exact, unchanged]"
        return False, (f"  {name}: EXACT MISMATCH {base:g} -> {fresh:g} "
                       f"({delta:+.1%}); the simulation is expected to "
                       f"be deterministic")

    if direction == "higher":
        tol, src = pick_tolerance(name, base_metric, args)
        limit = base * (1.0 - tol)
        ok = fresh >= limit
        side = "below"
    elif direction == "lower":
        tol, src = pick_tolerance(name, base_metric, args)
        limit = base * (1.0 + tol)
        ok = fresh <= limit
        side = "above"
    elif direction == "ceiling":
        # A budget, not a measurement: no noise allowance by default.
        tol, src = pick_tolerance(name, base_metric, args, default=0.0)
        limit = base * (1.0 + tol)
        ok = fresh <= limit
        side = "above"
    else:
        return False, (f"  {name}: unknown direction "
                       f"{direction!r} in baseline")
    verdict = "ok" if ok else f"REGRESSION: {side} limit {limit:g}"
    return ok, (f"  {name}: {base:g} -> {fresh:g} ({delta:+.1%}), "
                f"tolerance {tol:g} ({src}) [{verdict}]")


def diff_paths(a, b, path, out, limit=50):
    """Collect dotted paths where two JSON documents differ."""
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append(f"{path or '(root)'}: type {type(a).__name__} vs "
                   f"{type(b).__name__}")
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else key
            if key not in a:
                out.append(f"{sub}: only in second manifest")
            elif key not in b:
                out.append(f"{sub}: only in first manifest")
            else:
                diff_paths(a[key], b[key], sub, out, limit)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} vs {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            diff_paths(x, y, f"{path}[{i}]", out, limit)
    elif a != b:
        out.append(f"{path}: {a!r} vs {b!r}")


def compare_against(path_a, path_b):
    """Structural equality gate between two manifests."""
    doc_a = load_manifest(path_a)
    doc_b = load_manifest(path_b)
    diffs = []
    diff_paths(doc_a, doc_b, "", diffs)
    if diffs:
        print(f"check_bench: {path_a} differs from {path_b}:")
        for d in diffs:
            print(f"  {d}")
        print(f"check_bench: FAIL ({len(diffs)} differing path"
              f"{'s' if len(diffs) != 1 else ''} shown)")
        return 1
    print(f"check_bench: {path_a} and {path_b} are structurally "
          f"identical")
    return 0


def numeric_leaves(doc, path, out):
    """Flatten every numeric leaf into {dotted.path: float}."""
    if isinstance(doc, bool):
        return  # bool is an int subclass; deltas are meaningless
    if isinstance(doc, (int, float)):
        out[path or "(root)"] = float(doc)
    elif isinstance(doc, dict):
        for key in doc:
            numeric_leaves(doc[key], f"{path}.{key}" if path else key,
                           out)
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            numeric_leaves(item, f"{path}[{i}]", out)


def diff_report(path_a, path_b, top):
    """Hierarchical numeric delta report between two manifests."""
    doc_a = load_manifest(path_a)
    doc_b = load_manifest(path_b)
    a, b = {}, {}
    numeric_leaves(doc_a, "", a)
    numeric_leaves(doc_b, "", b)

    rows = []
    for name in sorted(set(a) & set(b)):
        va, vb = a[name], b[name]
        delta = vb - va
        if va:
            pct = delta / abs(va)
        else:
            pct = 0.0 if delta == 0 else float("inf")
        rows.append((name, va, vb, delta, pct))
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))

    # Largest percent movement first; ties (and both-zero rows) by
    # absolute movement so structural noise sinks to the bottom.
    rows.sort(key=lambda r: (-abs(r[4]), -abs(r[3]), r[0]))
    changed = sum(1 for r in rows if r[3] != 0.0)
    print(f"check_bench: diff {path_a} -> {path_b}: "
          f"{len(rows)} shared numeric leaves, {changed} changed")
    width = max((len(r[0]) for r in rows[:top]), default=0)
    for name, va, vb, delta, pct in rows[:top]:
        if delta == 0.0:
            print(f"  {name:<{width}}  {va:g} (unchanged)")
            continue
        pct_s = "new" if pct == float("inf") else f"{pct:+.1%}"
        print(f"  {name:<{width}}  {va:g} -> {vb:g}  "
              f"({delta:+g}, {pct_s})")
    if len(rows) > top:
        print(f"  ... {len(rows) - top} more rows "
              f"(raise --top to see them)")
    for label, only in ((path_a, only_a), (path_b, only_b)):
        for name in only[:top]:
            print(f"  {name}: only in {label}")
        if len(only) > top:
            print(f"  ... {len(only) - top} more leaves only in "
                  f"{label}")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="Compare a fresh bench run manifest against a "
                    "committed baseline.")
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("fresh", nargs="?", default=None,
                    help="freshly produced BENCH_*.json")
    ap.add_argument("--against", default=None, metavar="OTHER",
                    help="compare the first manifest structurally "
                         "against OTHER (every JSON path must match "
                         "exactly) and exit")
    ap.add_argument("--diff", default=None, metavar="OTHER",
                    help="print a numeric delta report (absolute and "
                         "percent, sorted by percent magnitude) "
                         "between the first manifest and OTHER, then "
                         "exit 0; no gating")
    ap.add_argument("--top", type=int, default=40, metavar="N",
                    help="rows to show in the --diff report "
                         "(default 40)")
    ap.add_argument("--list-metrics", action="store_true",
                    help="list the first manifest's metrics (name, "
                         "value, direction, tolerance) and exit")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="override every higher/lower metric's "
                         "tolerance (exact pins are unaffected)")
    ap.add_argument("--metric", action="append", default=[],
                    metavar="NAME=TOL",
                    help="override one metric's tolerance; repeatable")
    ap.add_argument("--quiet", action="store_true",
                    help="print failing metrics only")
    args = ap.parse_args()

    args.metric_tol = {}
    for spec in args.metric:
        name, sep, tol = spec.partition("=")
        if not sep:
            ap.error(f"--metric {spec!r} is not NAME=TOL")
        try:
            args.metric_tol[name] = float(tol)
        except ValueError:
            ap.error(f"--metric {spec!r}: {tol!r} is not a number")

    if args.against is not None:
        return compare_against(args.baseline, args.against)
    if args.diff is not None:
        if args.top < 1:
            ap.error("--top must be at least 1")
        return diff_report(args.baseline, args.diff, args.top)
    base_doc = load_manifest(args.baseline)
    if args.list_metrics:
        list_metrics(base_doc)
        return 0
    if args.fresh is None:
        ap.error("a fresh manifest is required unless --list-metrics "
                 "is given")
    fresh_doc = load_manifest(args.fresh)
    if base_doc.get("bench") != fresh_doc.get("bench"):
        die(f"bench mismatch: baseline is {base_doc.get('bench')!r}, "
            f"fresh is {fresh_doc.get('bench')!r}")

    # Manifests record the SIMD level the span kernels dispatched to
    # (host.simd_isa). The kernels are byte-identical across levels,
    # so an "exact" pin that differs between ISA levels is a real
    # identity bug - but comparing across levels would misattribute
    # it to nondeterminism. Refuse, naming both levels, so the caller
    # re-runs one side under TEXCACHE_SIMD=<level> instead.
    base_isa = base_doc.get("host", {}).get("simd_isa")
    fresh_isa = fresh_doc.get("host", {}).get("simd_isa")
    if (base_isa is not None and fresh_isa is not None
            and base_isa != fresh_isa
            and any(m.get("direction") == "exact"
                    for m in base_doc["metrics"].values())):
        die(f"ISA mismatch for exact metrics: baseline "
            f"{args.baseline} was produced at simd_isa={base_isa!r} "
            f"but fresh {args.fresh} at simd_isa={fresh_isa!r}; "
            f"exact pins must be compared at one ISA level. Re-run "
            f"the fresh bench with TEXCACHE_SIMD={base_isa} (or "
            f"refresh the baseline at {fresh_isa}).")

    print(f"check_bench: {base_doc['bench']}: "
          f"baseline {args.baseline} (git "
          f"{base_doc.get('build', {}).get('git_sha', '?')}) vs "
          f"fresh {args.fresh} (git "
          f"{fresh_doc.get('build', {}).get('git_sha', '?')})")

    failures = 0
    fresh_metrics = fresh_doc["metrics"]
    for name, base_metric in base_doc["metrics"].items():
        ok, msg = check_metric(name, base_metric,
                               fresh_metrics.get(name),
                               fresh_metrics.keys(), args)
        if not ok:
            failures += 1
        if not ok or not args.quiet:
            print(msg)
    for name in fresh_metrics:
        if name not in base_doc["metrics"] and not args.quiet:
            print(f"  {name}: new metric, not in baseline (ignored)")

    if failures:
        print(f"check_bench: FAIL ({failures} metric"
              f"{'s' if failures != 1 else ''} regressed)")
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
