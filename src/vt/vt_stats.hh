/**
 * @file
 * Residency feedback reporting for the virtual texturing subsystem.
 *
 * Turns one VT run's counters - pages touched, resident-set size over
 * time, fetch-queue behavior, degradation histogram - into the
 * common/table form every other reproduction binary reports with, so
 * VT results print (and export as CSV via TEXCACHE_CSV) like the
 * paper's figures do.
 */

#ifndef TEXCACHE_VT_VT_STATS_HH
#define TEXCACHE_VT_VT_STATS_HH

#include <string>

#include "common/table.hh"
#include "stats/stats.hh"
#include "vt/vt_memory.hh"
#include "vt/vt_sampler.hh"

namespace texcache {

/**
 * Metric/value summary of one VT run: pool residency, fetch queue,
 * DRAM bus and (when @p deg is given) sampler degradation.
 */
TextTable vtSummaryTable(const std::string &title,
                         const VirtualTextureMemory &mem,
                         const DegradationStats *deg = nullptr);

/** The per-frame degradation histogram as delta/count rows. */
TextTable vtDegradationTable(const std::string &title,
                             const DegradationStats &deg);

/** Mean of the sampled resident-set sizes (pages), 0 if unsampled. */
double vtAvgResidentPages(const VirtualTextureMemory &mem);

/**
 * Register the whole VT subsystem under @p g: "pool" (residency),
 * "fetch" (queue behavior incl. the depth distribution), "dram" (bus),
 * and - when @p deg is given - "degradation" (fallback histogram).
 * Dump-time views over live counters: @p mem / @p deg must outlive
 * every dump of the group (stats/stats.hh).
 */
void exportVtStats(stats::Group &g, const VirtualTextureMemory &mem,
                   const DegradationStats *deg = nullptr);

} // namespace texcache

#endif // TEXCACHE_VT_VT_STATS_HH
