/** @file Tests for the open-row DRAM fill model (section 3.2). */

#include <gtest/gtest.h>

#include "timing/dram_model.hh"

using namespace texcache;

TEST(Dram, FirstFillIsARowMiss)
{
    DramModel dram(DramConfig{});
    uint64_t cycles = dram.fill(0, 32);
    // tRowMiss (12) + 32/8 burst = 16 cycles.
    EXPECT_EQ(cycles, 16u);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    EXPECT_EQ(dram.stats().rowHits, 0u);
}

TEST(Dram, SameRowHitsOpenBuffer)
{
    DramModel dram(DramConfig{});
    dram.fill(0, 32);
    uint64_t cycles = dram.fill(128, 32); // same 2 KB row
    EXPECT_EQ(cycles, 4u + 4u);           // tCas + burst
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(Dram, DifferentRowSameBankMisses)
{
    DramConfig cfg;
    DramModel dram(cfg);
    dram.fill(0, 32);
    // Row 0 -> bank 0; row 4 (addr 4*2048) -> bank 0 again, row 1.
    uint64_t addr = static_cast<uint64_t>(cfg.rowBytes) * cfg.numBanks;
    uint64_t cycles = dram.fill(addr, 32);
    EXPECT_EQ(cycles, 16u);
    EXPECT_EQ(dram.stats().rowMisses, 2u);
}

TEST(Dram, BanksBufferIndependently)
{
    DramConfig cfg;
    DramModel dram(cfg);
    dram.fill(0, 32);                      // bank 0
    dram.fill(cfg.rowBytes, 32);           // bank 1 (row miss)
    EXPECT_EQ(dram.fill(64, 32), 8u);      // bank 0 still open
    EXPECT_EQ(dram.fill(cfg.rowBytes + 64, 32), 8u); // bank 1 open
    EXPECT_EQ(dram.stats().rowHits, 2u);
    EXPECT_EQ(dram.stats().rowMisses, 2u);
}

TEST(Dram, LargerBurstsRaiseBusUtilization)
{
    // The paper's section-3.2 argument: longer bursts amortize setup.
    auto utilization = [](unsigned line) {
        DramModel dram(DramConfig{});
        // Random-ish line fills, all row misses (worst case).
        for (int i = 0; i < 1000; ++i)
            dram.fill(static_cast<uint64_t>(i) * 8192 * 5, line);
        return dram.stats().busUtilization(8);
    };
    double u32 = utilization(32);
    double u128 = utilization(128);
    double u512 = utilization(512);
    EXPECT_LT(u32, u128);
    EXPECT_LT(u128, u512);
    // 32B: 4 cycles data / 16 total = 0.25; 512B: 64/76 = 0.84.
    EXPECT_NEAR(u32, 0.25, 1e-9);
    EXPECT_NEAR(u512, 64.0 / 76.0, 1e-9);
}

TEST(Dram, StatsAccumulate)
{
    DramModel dram(DramConfig{});
    dram.fill(0, 64);
    dram.fill(64, 64);
    EXPECT_EQ(dram.stats().fills, 2u);
    EXPECT_EQ(dram.stats().bytes, 128u);
    EXPECT_GT(dram.stats().cycles, 16u);
    EXPECT_DOUBLE_EQ(dram.stats().rowHitRate(), 0.5);
}

TEST(Dram, RejectsBadGeometry)
{
    DramConfig cfg;
    cfg.numBanks = 3;
    EXPECT_EXIT(DramModel{cfg}, ::testing::ExitedWithCode(1),
                "powers of two");
}
