#include "gl/command_stream.hh"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "gl/gl_context.hh"

namespace texcache {

namespace {

constexpr char kMagic[8] = {'G', 'L', 'T', 'R', 'C', '0', '0', '1'};

} // namespace

void
GlRecorder::viewport(unsigned width, unsigned height)
{
    GlCommand c;
    c.op = GlOp::Viewport;
    c.u32a = width;
    c.u32b = height;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->viewport(width, height);
}

void
GlRecorder::loadProjection(const Mat4 &m)
{
    GlCommand c;
    c.op = GlOp::LoadProjection;
    c.matrix = m;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->loadProjection(m);
}

void
GlRecorder::loadModelView(const Mat4 &m)
{
    GlCommand c;
    c.op = GlOp::LoadModelView;
    c.matrix = m;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->loadModelView(m);
}

GlTexture
GlRecorder::genTexture()
{
    GlCommand c;
    c.op = GlOp::GenTexture;
    GlTexture name = nextName_++;
    c.u32a = name;
    stream_.push_back(std::move(c));
    if (forward_) {
        GlTexture fwd = forward_->genTexture();
        panic_if(fwd != name,
                 "forwarded context handed out a different name");
    }
    return name;
}

void
GlRecorder::bindTexture(GlTexture tex)
{
    GlCommand c;
    c.op = GlOp::BindTexture;
    c.u32a = tex;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->bindTexture(tex);
}

void
GlRecorder::texImage2D(const Image &base)
{
    GlCommand c;
    c.op = GlOp::TexImage2D;
    c.image = base;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->texImage2D(base);
}

void
GlRecorder::begin(GlPrimitive prim)
{
    GlCommand c;
    c.op = GlOp::Begin;
    c.u32a = static_cast<uint32_t>(prim);
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->begin(prim);
}

void
GlRecorder::texCoord(float u, float v)
{
    GlCommand c;
    c.op = GlOp::TexCoord;
    c.f0 = u;
    c.f1 = v;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->texCoord(u, v);
}

void
GlRecorder::shade(float s)
{
    GlCommand c;
    c.op = GlOp::Shade;
    c.f0 = s;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->shade(s);
}

void
GlRecorder::vertex(float x, float y, float z)
{
    GlCommand c;
    c.op = GlOp::Vertex;
    c.f0 = x;
    c.f1 = y;
    c.f2 = z;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->vertex(x, y, z);
}

void
GlRecorder::end()
{
    GlCommand c;
    c.op = GlOp::End;
    stream_.push_back(std::move(c));
    if (forward_)
        forward_->end();
}

void
playCommands(const GlCommandStream &stream, GlApi &target)
{
    // Recorded texture names -> names the target handed out.
    std::unordered_map<GlTexture, GlTexture> names;
    for (const GlCommand &c : stream) {
        switch (c.op) {
          case GlOp::Viewport:
            target.viewport(c.u32a, c.u32b);
            break;
          case GlOp::LoadProjection:
            target.loadProjection(c.matrix);
            break;
          case GlOp::LoadModelView:
            target.loadModelView(c.matrix);
            break;
          case GlOp::GenTexture:
            names[c.u32a] = target.genTexture();
            break;
          case GlOp::BindTexture: {
              auto it = names.find(c.u32a);
              fatal_if(it == names.end(),
                       "trace binds texture ", c.u32a,
                       " before generating it");
              target.bindTexture(it->second);
              break;
          }
          case GlOp::TexImage2D:
            target.texImage2D(c.image);
            break;
          case GlOp::Begin:
            target.begin(static_cast<GlPrimitive>(c.u32a));
            break;
          case GlOp::TexCoord:
            target.texCoord(c.f0, c.f1);
            break;
          case GlOp::Shade:
            target.shade(c.f0);
            break;
          case GlOp::Vertex:
            target.vertex(c.f0, c.f1, c.f2);
            break;
          case GlOp::End:
            target.end();
            break;
        }
    }
}

namespace {

template <typename T>
void
put(std::ofstream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
void
get(std::ifstream &in, T &v, const std::string &path)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    fatal_if(!in, "GL trace '", path, "' is truncated");
}

} // namespace

void
writeGlTrace(const GlCommandStream &stream, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot open GL trace '", path, "' for writing");
    out.write(kMagic, sizeof(kMagic));
    uint64_t count = stream.size();
    put(out, count);
    for (const GlCommand &c : stream) {
        put(out, static_cast<uint8_t>(c.op));
        switch (c.op) {
          case GlOp::Viewport:
            put(out, c.u32a);
            put(out, c.u32b);
            break;
          case GlOp::LoadProjection:
          case GlOp::LoadModelView:
            put(out, c.matrix);
            break;
          case GlOp::GenTexture:
          case GlOp::BindTexture:
          case GlOp::Begin:
            put(out, c.u32a);
            break;
          case GlOp::TexCoord:
            put(out, c.f0);
            put(out, c.f1);
            break;
          case GlOp::Shade:
            put(out, c.f0);
            break;
          case GlOp::Vertex:
            put(out, c.f0);
            put(out, c.f1);
            put(out, c.f2);
            break;
          case GlOp::TexImage2D: {
              uint32_t w = c.image.width(), h = c.image.height();
              put(out, w);
              put(out, h);
              out.write(reinterpret_cast<const char *>(
                            c.image.pixels().data()),
                        static_cast<std::streamsize>(
                            static_cast<size_t>(w) * h *
                            sizeof(Rgba8)));
              break;
          }
          case GlOp::End:
            break;
        }
    }
    fatal_if(!out, "short write to GL trace '", path, "'");
}

GlCommandStream
readGlTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open GL trace '", path, "'");
    char magic[8];
    in.read(magic, sizeof(magic));
    fatal_if(!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
             "'", path, "' is not a texcache GL trace");
    uint64_t count = 0;
    get(in, count, path);

    GlCommandStream stream;
    stream.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        uint8_t op_byte = 0;
        get(in, op_byte, path);
        GlCommand c;
        c.op = static_cast<GlOp>(op_byte);
        switch (c.op) {
          case GlOp::Viewport:
            get(in, c.u32a, path);
            get(in, c.u32b, path);
            break;
          case GlOp::LoadProjection:
          case GlOp::LoadModelView:
            get(in, c.matrix, path);
            break;
          case GlOp::GenTexture:
          case GlOp::BindTexture:
          case GlOp::Begin:
            get(in, c.u32a, path);
            break;
          case GlOp::TexCoord:
            get(in, c.f0, path);
            get(in, c.f1, path);
            break;
          case GlOp::Shade:
            get(in, c.f0, path);
            break;
          case GlOp::Vertex:
            get(in, c.f0, path);
            get(in, c.f1, path);
            get(in, c.f2, path);
            break;
          case GlOp::TexImage2D: {
              uint32_t w = 0, h = 0;
              get(in, w, path);
              get(in, h, path);
              fatal_if(w == 0 || h == 0 || w > 16384 || h > 16384,
                       "GL trace '", path,
                       "' has an implausible texture size");
              Image img(w, h);
              in.read(reinterpret_cast<char *>(img.data()),
                      static_cast<std::streamsize>(
                          static_cast<size_t>(w) * h * sizeof(Rgba8)));
              fatal_if(!in, "GL trace '", path, "' is truncated");
              c.image = std::move(img);
              break;
          }
          case GlOp::End:
            break;
          default:
            fatal("GL trace '", path, "' has unknown opcode ",
                  static_cast<int>(op_byte));
        }
        stream.push_back(std::move(c));
    }
    return stream;
}

void
emitScene(const Scene &scene, GlApi &api)
{
    api.viewport(scene.screenW, scene.screenH);
    api.loadProjection(scene.proj);
    api.loadModelView(scene.view);

    std::vector<GlTexture> names;
    names.reserve(scene.textures.size());
    for (const MipMap &mip : scene.textures) {
        GlTexture name = api.genTexture();
        api.bindTexture(name);
        api.texImage2D(mip.level(0));
        names.push_back(name);
    }

    // Batch consecutive same-texture triangles into one begin/end.
    size_t i = 0;
    while (i < scene.triangles.size()) {
        uint16_t tex = scene.triangles[i].texture;
        api.bindTexture(names.at(tex));
        api.begin(GlPrimitive::Triangles);
        while (i < scene.triangles.size() &&
               scene.triangles[i].texture == tex) {
            for (const SceneVertex &v : scene.triangles[i].v) {
                api.texCoord(v.uv.x, v.uv.y);
                api.shade(v.shade);
                api.vertex(v.pos.x, v.pos.y, v.pos.z);
            }
            ++i;
        }
        api.end();
    }
}

} // namespace texcache
