/** @file Tests for triangle setup, coverage and interpolation. */

#include <gtest/gtest.h>

#include <cmath>

#include "raster/triangle.hh"

using namespace texcache;

namespace {

ScreenVertex
sv(float x, float y, float w = 1.0f, float u = 0.0f, float v = 0.0f)
{
    ScreenVertex r;
    r.x = x;
    r.y = y;
    r.z = 0.5f;
    r.invW = 1.0f / w;
    r.uOverW = u / w;
    r.vOverW = v / w;
    r.shade = 1.0f;
    return r;
}

unsigned
countCovered(const TriangleSetup &t, unsigned w, unsigned h)
{
    unsigned n = 0;
    Fragment f;
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x)
            n += t.shade(static_cast<int>(x), static_cast<int>(y), f);
    return n;
}

} // namespace

TEST(Triangle, DegenerateIsInvalid)
{
    TriangleSetup t(sv(0, 0), sv(10, 10), sv(20, 20));
    EXPECT_FALSE(t.valid());
    Fragment f;
    EXPECT_FALSE(t.shade(5, 5, f));
}

TEST(Triangle, WindingOrderIsNormalized)
{
    TriangleSetup ccw(sv(0, 0), sv(8, 0), sv(0, 8));
    TriangleSetup cw(sv(0, 0), sv(0, 8), sv(8, 0));
    EXPECT_TRUE(ccw.valid());
    EXPECT_TRUE(cw.valid());
    EXPECT_EQ(countCovered(ccw, 16, 16), countCovered(cw, 16, 16));
}

TEST(Triangle, CoverageApproximatesArea)
{
    // Right triangle with legs 32: area 512 pixels.
    TriangleSetup t(sv(0, 0), sv(32, 0), sv(0, 32));
    unsigned covered = countCovered(t, 64, 64);
    EXPECT_NEAR(static_cast<double>(covered), 512.0, 32.0);
}

TEST(Triangle, SharedEdgeCoversEachPixelExactlyOnce)
{
    // A square split into two triangles along the diagonal: every
    // pixel inside must be covered exactly once (top-left fill rule).
    TriangleSetup a(sv(4, 4), sv(60, 4), sv(60, 60));
    TriangleSetup b(sv(4, 4), sv(60, 60), sv(4, 60));
    Fragment f;
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            int hits = a.shade(x, y, f) + b.shade(x, y, f);
            float px = x + 0.5f, py = y + 0.5f;
            bool inside = px > 4 && px < 60 && py > 4 && py < 60;
            if (inside)
                ASSERT_EQ(hits, 1) << "(" << x << "," << y << ")";
            else
                ASSERT_LE(hits, 1);
        }
    }
}

TEST(Triangle, AbuttingTrianglesTileWithoutGapsOrOverlap)
{
    // A fan of 4 triangles around a center: interior pixels covered
    // exactly once.
    float cx = 32, cy = 32;
    ScreenVertex c = sv(cx, cy);
    ScreenVertex p0 = sv(4, 4), p1 = sv(60, 4), p2 = sv(60, 60),
                 p3 = sv(4, 60);
    TriangleSetup tris[4] = {{c, p0, p1}, {c, p1, p2}, {c, p2, p3},
                             {c, p3, p0}};
    Fragment f;
    for (int y = 6; y < 58; ++y) {
        for (int x = 6; x < 58; ++x) {
            int hits = 0;
            for (auto &t : tris)
                hits += t.shade(x, y, f);
            ASSERT_EQ(hits, 1) << "(" << x << "," << y << ")";
        }
    }
}

TEST(Triangle, BoundsClipToScreen)
{
    TriangleSetup t(sv(-10, -10), sv(100, -10), sv(-10, 100));
    PixelRect r = t.bounds(64, 64);
    EXPECT_EQ(r.x0, 0);
    EXPECT_EQ(r.y0, 0);
    EXPECT_EQ(r.x1, 63);
    EXPECT_EQ(r.y1, 63);
}

TEST(Triangle, AffineInterpolationIsExact)
{
    // With w = 1 everywhere, u interpolates affinely: u = x/64 at
    // (x, y) for this parameterization.
    TriangleSetup t(sv(0, 0, 1, 0, 0), sv(64, 0, 1, 1, 0),
                    sv(0, 64, 1, 0, 1));
    Fragment f;
    ASSERT_TRUE(t.shade(16, 8, f));
    EXPECT_NEAR(f.u, 16.5f / 64.0f, 1e-5f);
    EXPECT_NEAR(f.v, 8.5f / 64.0f, 1e-5f);
}

TEST(Triangle, PerspectiveCorrectInterpolation)
{
    // Vertices at w=1 and w=4 with u proportional to w-distance: the
    // perspective-correct midpoint differs from the affine midpoint.
    // Reference: u(x) = (u0/w0 + s*(u1/w1 - u0/w0)) /
    //                   (1/w0 + s*(1/w1 - 1/w0)), s in [0,1].
    TriangleSetup t(sv(0, 0, 1, 0, 0), sv(64, 0, 4, 1, 0),
                    sv(0, 64, 1, 0, 1));
    Fragment f;
    ASSERT_TRUE(t.shade(32, 0, f));
    float s = 32.5f / 64.0f;
    float num = 0.0f + s * (1.0f / 4.0f - 0.0f);
    float den = 1.0f + s * (1.0f / 4.0f - 1.0f);
    EXPECT_NEAR(f.u, num / den, 1e-4f);
    // The affine value (s) would be very different.
    EXPECT_GT(std::abs(f.u - s), 0.1f);
}

TEST(Triangle, DerivativesMatchFiniteDifferences)
{
    TriangleSetup t(sv(0, 0, 1, 0, 0), sv(64, 0, 3, 2, 0),
                    sv(0, 64, 2, 0, 2));
    Fragment f00, f10, f01;
    ASSERT_TRUE(t.shade(20, 20, f00));
    ASSERT_TRUE(t.shade(21, 20, f10));
    ASSERT_TRUE(t.shade(20, 21, f01));
    // Analytic derivative at the pixel vs central-ish difference; the
    // function is smooth so one-sided differences agree to ~1e-2.
    EXPECT_NEAR(f00.dudx, f10.u - f00.u, 5e-3f);
    EXPECT_NEAR(f00.dudy, f01.u - f00.u, 5e-3f);
    EXPECT_NEAR(f00.dvdx, f10.v - f00.v, 5e-3f);
    EXPECT_NEAR(f00.dvdy, f01.v - f00.v, 5e-3f);
}

TEST(Triangle, DepthAndShadeInterpolate)
{
    ScreenVertex a = sv(0, 0), b = sv(64, 0), c = sv(0, 64);
    a.z = 0.0f;
    b.z = 1.0f;
    c.z = 0.0f;
    a.shade = 0.0f;
    b.shade = 0.0f;
    c.shade = 1.0f;
    TriangleSetup t(a, b, c);
    Fragment f;
    ASSERT_TRUE(t.shade(31, 0, f));
    EXPECT_NEAR(f.depth, 31.5f / 64.0f, 1e-4f);
    ASSERT_TRUE(t.shade(0, 31, f));
    EXPECT_NEAR(f.shade, 31.5f / 64.0f, 1e-4f);
}
